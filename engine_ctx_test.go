package qmatch_test

import (
	"bytes"
	"context"
	"testing"

	"qmatch"
)

// MatchContext with a live context must behave exactly like Match: same
// report, same wire bytes, nil error.
func TestMatchContextEquivalentToMatch(t *testing.T) {
	eng, err := qmatch.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	src, tgt := poPairXSD(t)

	report, err := eng.MatchContext(context.Background(), src, tgt)
	if err != nil {
		t.Fatalf("MatchContext: %v", err)
	}
	var got, want bytes.Buffer
	if err := report.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if err := eng.Match(src, tgt).WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("MatchContext report differs from Match:\n%s\nvs\n%s", got.Bytes(), want.Bytes())
	}
}

// A nil context is tolerated and treated as background.
func TestMatchContextNilContext(t *testing.T) {
	eng, err := qmatch.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	src, tgt := poPairXSD(t)
	report, err := eng.MatchContext(nil, src, tgt)
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if report == nil || report.TreeQoM <= 0 {
		t.Errorf("bad report: %+v", report)
	}
}

// A context already expired when MatchContext is called still yields a
// (partial) report alongside ctx.Err(); with a Tracing engine the aborted
// pair-table fill is visible as a span marked partial — this is the
// mechanism qmatchd uses for its 504-with-partial-trace bodies.
func TestMatchContextPreExpired(t *testing.T) {
	eng, err := qmatch.NewEngine(qmatch.WithObserver(qmatch.Observer{Tracing: true, Metrics: true}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	src, tgt := poPairXSD(t)
	report, err := eng.MatchContext(ctx, src, tgt)
	if err == nil {
		t.Fatal("expected ctx.Err() from a cancelled context")
	}
	if report == nil {
		t.Fatal("cancelled match must still return the partial report")
	}
	if report.Trace == nil {
		t.Fatal("Tracing engine returned no trace on the partial report")
	}
	partial := false
	for _, sp := range report.Trace.Spans {
		partial = partial || sp.Partial
	}
	if !partial {
		t.Errorf("no partial span recorded: %+v", report.Trace.Spans)
	}
	// The aborted match counts as cancelled, not completed.
	if v, ok := eng.MetricValue(qmatch.MetricCancelled); !ok || v != 1 {
		t.Errorf("cancelled counter = %d (%v), want 1", v, ok)
	}
	if v, _ := eng.MetricValue(qmatch.MetricMatches); v != 0 {
		t.Errorf("completed counter = %d, want 0", v)
	}
}

// After a cancelled call the engine stays healthy: the next uncancelled
// MatchContext on the same engine completes normally.
func TestMatchContextRecoversAfterCancellation(t *testing.T) {
	eng, err := qmatch.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	src, tgt := poPairXSD(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.MatchContext(ctx, src, tgt); err == nil {
		t.Fatal("expected cancellation error")
	}
	report, err := eng.MatchContext(context.Background(), src, tgt)
	if err != nil {
		t.Fatalf("engine unhealthy after cancellation: %v", err)
	}
	want := eng.Match(src, tgt)
	if report.TreeQoM != want.TreeQoM || len(report.Correspondences) != len(want.Correspondences) {
		t.Errorf("post-cancellation report differs: %+v vs %+v", report, want)
	}
}
