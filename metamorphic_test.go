// Metamorphic properties of the matcher: relations that must hold between
// the outputs of related inputs, checked over internal/synth-generated
// schema families. Unlike the golden tests these need no oracle — the
// algorithm's own structure supplies the expected relation.
package qmatch_test

import (
	"fmt"
	"sort"
	"testing"

	"qmatch"
	"qmatch/internal/synth"
	"qmatch/internal/xmltree"
	"qmatch/internal/xsd"
)

// synthPair generates a schema and a shape-preserving variant (renames,
// reorders, retypes, optionalizations — no drops, so both trees keep the
// same node set).
func synthPair(t *testing.T, seed int64) (*qmatch.Schema, *qmatch.Schema) {
	t.Helper()
	a := synth.Generate(synth.Config{Seed: seed, Elements: 25, MaxDepth: 4, MaxChildren: 5, AttributeRatio: 0.2})
	b, _ := synth.Derive(a, synth.MutationConfig{
		Seed:            seed + 1,
		RenameProb:      0.4,
		ReorderProb:     0.3,
		RetypeProb:      0.3,
		OptionalizeProb: 0.3,
	})
	return schemaOf(t, a), schemaOf(t, b)
}

func schemaOf(t *testing.T, tree *xmltree.Node) *qmatch.Schema {
	t.Helper()
	s, err := qmatch.ParseSchemaString(xsd.Render(tree))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newEngine(t *testing.T, opts ...qmatch.Option) *qmatch.Engine {
	t.Helper()
	eng, err := qmatch.NewEngine(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// Swapping source and target must not change the match quality: the QoM
// model scores node pairs symmetrically, so for algorithms whose tree
// score aggregates the same pair table in both directions (hybrid,
// linguistic, cupid) the tree QoM and the number of selected
// correspondences are direction-independent on equal-shape trees.
// (structural is excluded by design: its bottom-up aggregation is
// directional.)
func TestMetamorphicSwapSymmetry(t *testing.T) {
	for _, alg := range []qmatch.Algorithm{qmatch.Hybrid, qmatch.Linguistic, qmatch.Cupid} {
		eng := newEngine(t, qmatch.WithAlgorithm(alg))
		for seed := int64(1); seed <= 5; seed++ {
			a, b := synthPair(t, seed)
			fwd := eng.Match(a, b)
			rev := eng.Match(b, a)
			if d := fwd.TreeQoM - rev.TreeQoM; d > 1e-9 || d < -1e-9 {
				t.Errorf("%s seed %d: tree QoM not symmetric: %v vs %v",
					alg, seed, fwd.TreeQoM, rev.TreeQoM)
			}
			if len(fwd.Correspondences) != len(rev.Correspondences) {
				t.Errorf("%s seed %d: |Rs| not symmetric: %d vs %d",
					alg, seed, len(fwd.Correspondences), len(rev.Correspondences))
			}
		}
	}
}

// renamed returns a copy of the tree with every label rewritten through a
// deterministic injective map shared by both trees of a pair: distinct
// labels stay distinct, equal labels stay equal, and the new labels are
// opaque tokens carrying no linguistic signal.
func renamed(trees ...*xmltree.Node) []*xmltree.Node {
	labels := map[string]string{}
	for _, tree := range trees {
		tree.Walk(func(n *xmltree.Node) bool {
			labels[n.Label] = ""
			return true
		})
	}
	distinct := make([]string, 0, len(labels))
	for l := range labels {
		distinct = append(distinct, l)
	}
	sort.Strings(distinct)
	for i, l := range distinct {
		labels[l] = fmt.Sprintf("zq%dx", i)
	}
	out := make([]*xmltree.Node, len(trees))
	for i, tree := range trees {
		out[i] = cloneRenamed(tree, labels)
	}
	return out
}

func cloneRenamed(n *xmltree.Node, labels map[string]string) *xmltree.Node {
	c := xmltree.New(labels[n.Label], n.Props)
	for _, child := range n.Children {
		c.Add(cloneRenamed(child, labels))
	}
	return c
}

// Consistently renaming every label must not change what a label-blind
// score sees: the structural algorithm's tree QoM is exactly invariant,
// as is the hybrid algorithm with the label axis weighted to zero. With
// default weights, invariance holds for self-matches: the renamed pair
// (σa, σa') where a' is a clone of a scores exactly like (a, a'), since
// every compared label pair is still an exact-equality pair.
func TestMetamorphicRenameInvariance(t *testing.T) {
	structural := newEngine(t, qmatch.WithAlgorithm(qmatch.Structural))
	labelBlind := newEngine(t, qmatch.WithWeights(qmatch.Weights{Label: 0, Properties: 0.4, Level: 0.3, Children: 0.3}))
	hybrid := newEngine(t)

	for seed := int64(1); seed <= 5; seed++ {
		a := synth.Generate(synth.Config{Seed: seed, Elements: 20, MaxDepth: 4, MaxChildren: 4, AttributeRatio: 0.2})
		b, _ := synth.Derive(a, synth.MutationConfig{Seed: seed + 1, ReorderProb: 0.4, RetypeProb: 0.4, OptionalizeProb: 0.3})
		sigma := renamed(a, b)
		sa, sb := schemaOf(t, a), schemaOf(t, b)
		ra, rb := schemaOf(t, sigma[0]), schemaOf(t, sigma[1])

		plain := structural.Match(sa, sb)
		ren := structural.Match(ra, rb)
		if plain.TreeQoM != ren.TreeQoM {
			t.Errorf("structural seed %d: rename changed tree QoM: %v vs %v",
				seed, plain.TreeQoM, ren.TreeQoM)
		}

		plain = labelBlind.Match(sa, sb)
		ren = labelBlind.Match(ra, rb)
		if plain.TreeQoM != ren.TreeQoM {
			t.Errorf("label-weight-0 seed %d: rename changed tree QoM: %v vs %v",
				seed, plain.TreeQoM, ren.TreeQoM)
		}
		if len(plain.Correspondences) != len(ren.Correspondences) {
			t.Errorf("label-weight-0 seed %d: rename changed |Rs|: %d vs %d",
				seed, len(plain.Correspondences), len(ren.Correspondences))
		}

		// Self-match: a against a structural clone of itself, renamed
		// consistently. Every label comparison is identity either way.
		clone := cloneRenamed(a, identityLabels(a))
		sigmaSelf := renamed(a, clone)
		selfPlain := hybrid.Match(schemaOf(t, a), schemaOf(t, clone))
		selfRen := hybrid.Match(schemaOf(t, sigmaSelf[0]), schemaOf(t, sigmaSelf[1]))
		if selfPlain.TreeQoM != selfRen.TreeQoM {
			t.Errorf("self-match seed %d: rename changed tree QoM: %v vs %v",
				seed, selfPlain.TreeQoM, selfRen.TreeQoM)
		}
	}
}

func identityLabels(tree *xmltree.Node) map[string]string {
	labels := map[string]string{}
	tree.Walk(func(n *xmltree.Node) bool {
		labels[n.Label] = n.Label
		return true
	})
	return labels
}

// Raising the selection threshold can only remove correspondences, never
// add or change them: greedy selection visits pairs in the same order, so
// the Rs at a higher threshold is exactly the prefix of pairs scoring at
// or above it — a subset of the Rs at any lower threshold.
func TestMetamorphicThresholdMonotonicity(t *testing.T) {
	thresholds := []float64{0.3, 0.5, 0.7, 0.9}
	for _, alg := range []qmatch.Algorithm{qmatch.Hybrid, qmatch.Linguistic} {
		for seed := int64(1); seed <= 4; seed++ {
			a, b := synthPair(t, seed)
			var prev map[string]float64
			prevCount := -1
			for i, th := range thresholds {
				eng := newEngine(t, qmatch.WithAlgorithm(alg), qmatch.WithSelectionThreshold(th))
				report := eng.Match(a, b)
				cur := map[string]float64{}
				for _, c := range report.Correspondences {
					if c.Score < th {
						t.Errorf("%s seed %d t=%v: selected pair below threshold: %+v", alg, seed, th, c)
					}
					cur[c.Source+"\x00"+c.Target] = c.Score
				}
				if prev != nil {
					if len(cur) > prevCount {
						t.Errorf("%s seed %d: |Rs| grew when threshold rose to %v: %d > %d",
							alg, seed, th, len(cur), prevCount)
					}
					for key, score := range cur {
						if pscore, ok := prev[key]; !ok {
							t.Errorf("%s seed %d t=%v: pair %q absent at threshold %v",
								alg, seed, th, key, thresholds[i-1])
						} else if pscore != score {
							t.Errorf("%s seed %d t=%v: pair %q rescored %v -> %v",
								alg, seed, th, key, pscore, score)
						}
					}
				}
				prev, prevCount = cur, len(cur)
			}
		}
	}
}
