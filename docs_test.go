package qmatch_test

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

// The documentation set whose intra-repo links must resolve. CI runs
// this test as the docs-link gate: a renamed file, a dropped heading or
// a typo'd anchor in any of these files fails the build.
var docFiles = []string{
	"README.md",
	"DESIGN.md",
	"API.md",
	"OPERATIONS.md",
	"EXPERIMENTS.md",
}

var markdownLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
var markdownHeading = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

// githubSlug reduces a heading to GitHub's auto-generated anchor id:
// lowercase, punctuation stripped, spaces hyphenated.
func githubSlug(heading string) string {
	heading = strings.ReplaceAll(heading, "`", "")
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

func headingSlugs(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	slugs := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		if m := markdownHeading.FindStringSubmatch(line); m != nil {
			slug := githubSlug(m[1])
			// GitHub dedupes repeats as slug-1, slug-2, ...
			if slugs[slug] {
				for i := 1; ; i++ {
					next := fmt.Sprintf("%s-%d", slug, i)
					if !slugs[next] {
						slugs[next] = true
						break
					}
				}
			}
			slugs[slug] = true
		}
	}
	return slugs
}

// TestDocLinksResolve walks every markdown link in the documentation set
// and asserts that relative targets exist on disk and that #anchors name
// a real heading in the target file.
func TestDocLinksResolve(t *testing.T) {
	slugCache := map[string]map[string]bool{}
	slugsOf := func(path string) map[string]bool {
		if s, ok := slugCache[path]; ok {
			return s
		}
		s := headingSlugs(t, path)
		slugCache[path] = s
		return s
	}

	for _, doc := range docFiles {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("read %s: %v", doc, err)
		}
		for _, m := range markdownLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") ||
				strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, anchor, _ := strings.Cut(target, "#")
			if path == "" {
				path = doc // same-file anchor
			}
			if strings.HasPrefix(path, "/") {
				t.Errorf("%s: link %q is absolute; use a repo-relative path", doc, target)
				continue
			}
			info, err := os.Stat(path)
			if err != nil {
				t.Errorf("%s: link %q: target does not exist", doc, target)
				continue
			}
			if anchor == "" {
				continue
			}
			if info.IsDir() || !strings.HasSuffix(path, ".md") {
				t.Errorf("%s: link %q: #anchor on a non-markdown target", doc, target)
				continue
			}
			if !slugsOf(path)[anchor] {
				t.Errorf("%s: link %q: no heading in %s slugs to %q", doc, target, path, anchor)
			}
		}
	}
}
