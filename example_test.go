package qmatch_test

import (
	"fmt"
	"strings"

	"qmatch"
)

const exampleSource = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PO">
    <xs:complexType><xs:sequence>
      <xs:element name="OrderNo" type="xs:integer"/>
      <xs:element name="Quantity" type="xs:integer"/>
      <xs:element name="PurchaseDate" type="xs:date"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>`

const exampleTarget = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PurchaseOrder">
    <xs:complexType><xs:sequence>
      <xs:element name="OrderNo" type="xs:integer"/>
      <xs:element name="Qty" type="xs:integer"/>
      <xs:element name="Date" type="xs:date"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>`

func ExampleMatch() {
	src, _ := qmatch.ParseSchemaString(exampleSource)
	tgt, _ := qmatch.ParseSchemaString(exampleTarget)
	report := qmatch.Match(src, tgt)
	for _, c := range report.Correspondences {
		fmt.Println(c)
	}
	// Output:
	// PO/OrderNo -> PurchaseOrder/OrderNo (1.00)
	// PO/PurchaseDate -> PurchaseOrder/Date (0.96)
	// PO/Quantity -> PurchaseOrder/Qty (0.96)
	// PO -> PurchaseOrder (0.95)
}

func ExampleQoM() {
	src, _ := qmatch.ParseSchemaString(exampleSource)
	tgt, _ := qmatch.ParseSchemaString(exampleTarget)
	q := qmatch.QoM(src, tgt)
	fmt.Println(q.Class)
	// Output:
	// total relaxed
}

func ExampleMatch_algorithms() {
	src, _ := qmatch.ParseSchemaString(exampleSource)
	tgt, _ := qmatch.ParseSchemaString(exampleTarget)
	for _, alg := range []qmatch.Algorithm{qmatch.Linguistic, qmatch.Structural, qmatch.Hybrid} {
		r := qmatch.Match(src, tgt, qmatch.WithAlgorithm(alg))
		fmt.Printf("%s found %d correspondences\n", r.Algorithm, len(r.Correspondences))
	}
	// Output:
	// linguistic found 4 correspondences
	// structural found 4 correspondences
	// hybrid found 4 correspondences
}

func ExampleEvaluate() {
	src, _ := qmatch.ParseSchemaString(exampleSource)
	tgt, _ := qmatch.ParseSchemaString(exampleTarget)
	report := qmatch.Match(src, tgt)
	gold := [][2]string{
		{"PO", "PurchaseOrder"},
		{"PO/OrderNo", "PurchaseOrder/OrderNo"},
		{"PO/Quantity", "PurchaseOrder/Qty"},
		{"PO/PurchaseDate", "PurchaseOrder/Date"},
	}
	e := qmatch.Evaluate(report, gold)
	fmt.Printf("precision %.2f recall %.2f overall %.2f\n", e.Precision, e.Recall, e.Overall)
	// Output:
	// precision 1.00 recall 1.00 overall 1.00
}

func ExampleWithThesaurus() {
	src, _ := qmatch.ParseSchemaString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="Gadget" type="xs:string"/></xs:schema>`)
	tgt, _ := qmatch.ParseSchemaString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="Appliance" type="xs:string"/></xs:schema>`)
	th := qmatch.NewThesaurus()
	th.AddSynonym("gadget", "appliance")
	report := qmatch.Match(src, tgt, qmatch.WithThesaurus(th))
	fmt.Println(report.Correspondences[0])
	// Output:
	// Gadget -> Appliance (1.00)
}

func ExampleValidate() {
	schema, _ := qmatch.ParseSchemaString(exampleSource)
	violations, _ := qmatch.ValidateString(schema, `<PO>
	  <OrderNo>not-a-number</OrderNo>
	  <Quantity>2</Quantity>
	  <PurchaseDate>2005-04-05</PurchaseDate>
	</PO>`)
	for _, v := range violations {
		fmt.Println(v)
	}
	// Output:
	// PO/OrderNo: type: value "not-a-number" is not a valid integer
}

func ExampleNewTranslator() {
	src, _ := qmatch.ParseSchemaString(exampleSource)
	tgt, _ := qmatch.ParseSchemaString(exampleTarget)
	report := qmatch.Match(src, tgt)
	tr, _ := qmatch.NewTranslator(src, tgt, report)
	out, _ := tr.TranslateString(`<PO>
	  <OrderNo>7</OrderNo><Quantity>3</Quantity><PurchaseDate>2005-04-05</PurchaseDate>
	</PO>`)
	fmt.Println(strings.Contains(out, "<Qty>3</Qty>"))
	// Output:
	// true
}

func ExampleEngine_Rematch() {
	// An Engine built WithRematchState retains the pair table of each
	// compiled-path match, so when one schema evolves the new pair is
	// re-matched incrementally: unchanged subtrees are copied, only
	// dirty nodes are rescored.
	eng, _ := qmatch.NewEngine(qmatch.WithRematchState())
	src, _ := qmatch.ParseSchemaString(exampleSource)
	tgt, _ := qmatch.ParseSchemaString(exampleTarget)
	csrc, _ := eng.Compile(src)
	ctgt, _ := eng.Compile(tgt)
	prev := eng.MatchCompiled(csrc, ctgt)

	// The target evolves: one leaf is renamed, the rest is untouched.
	evolved, _ := qmatch.ParseSchemaString(
		strings.Replace(exampleTarget, `name="Qty"`, `name="Quantity"`, 1))
	cevolved, _ := eng.Compile(evolved)

	rep, _ := eng.Rematch(prev, ctgt, cevolved)
	st := rep.Rematch
	fmt.Printf("%s side: %d dirty, %d clean nodes\n", st.Side, st.DirtyNodes, st.CleanNodes)
	fmt.Printf("cells: %d copied, %d rescored\n", st.CopiedCells, st.RescoredCells)
	for _, c := range rep.Correspondences {
		fmt.Println(c)
	}
	// Output:
	// target side: 2 dirty, 2 clean nodes
	// cells: 8 copied, 8 rescored
	// PO/OrderNo -> PurchaseOrder/OrderNo (1.00)
	// PO/Quantity -> PurchaseOrder/Quantity (1.00)
	// PO/PurchaseDate -> PurchaseOrder/Date (0.96)
	// PO -> PurchaseOrder (0.95)
}

func ExampleInferSchemaString() {
	s, _ := qmatch.InferSchemaString(`<Order><Id>7</Id><Total>9.99</Total></Order>`)
	fmt.Println(s.Dump())
	// Output:
	// Order
	//   Id [integer]
	//   Total [decimal]
}
