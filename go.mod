module qmatch

go 1.22
