package qmatch_test

import (
	"strings"
	"testing"

	"qmatch"
)

const pipelineSourceDoc = `<PO>
  <OrderNo>42</OrderNo>
  <PurchaseInfo>
    <BillingAddr>bill</BillingAddr>
    <ShippingAddr>ship</ShippingAddr>
    <Lines><Item>w</Item><Quantity>1</Quantity><UnitOfMeasure>kg</UnitOfMeasure></Lines>
  </PurchaseInfo>
  <PurchaseDate>2005-01-02</PurchaseDate>
</PO>`

func pipelineSchemas(t *testing.T) (*qmatch.Schema, *qmatch.Schema) {
	t.Helper()
	src, err := qmatch.ParseSchemaString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="PO"><xs:complexType><xs:sequence>
	    <xs:element name="OrderNo" type="xs:integer"/>
	    <xs:element name="PurchaseInfo"><xs:complexType><xs:sequence>
	      <xs:element name="BillingAddr" type="xs:string"/>
	      <xs:element name="ShippingAddr" type="xs:string"/>
	      <xs:element name="Lines"><xs:complexType><xs:sequence>
	        <xs:element name="Item" type="xs:string"/>
	        <xs:element name="Quantity" type="xs:integer"/>
	        <xs:element name="UnitOfMeasure" type="xs:string"/>
	      </xs:sequence></xs:complexType></xs:element>
	    </xs:sequence></xs:complexType></xs:element>
	    <xs:element name="PurchaseDate" type="xs:date"/>
	  </xs:sequence></xs:complexType></xs:element>
	</xs:schema>`)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := qmatch.ParseSchemaString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="PurchaseOrder"><xs:complexType><xs:sequence>
	    <xs:element name="OrderNo" type="xs:integer"/>
	    <xs:element name="BillTo" type="xs:string"/>
	    <xs:element name="ShipTo" type="xs:string"/>
	    <xs:element name="Items"><xs:complexType><xs:sequence>
	      <xs:element name="ItemNo" type="xs:string"/>
	      <xs:element name="Qty" type="xs:integer"/>
	      <xs:element name="UOM" type="xs:string"/>
	    </xs:sequence></xs:complexType></xs:element>
	    <xs:element name="Date" type="xs:date"/>
	  </xs:sequence></xs:complexType></xs:element>
	</xs:schema>`)
	if err != nil {
		t.Fatal(err)
	}
	return src, tgt
}

// TestPipeline exercises match → translate → validate end to end through
// the public API.
func TestPipeline(t *testing.T) {
	src, tgt := pipelineSchemas(t)
	report := qmatch.Match(src, tgt)
	if len(report.Correspondences) < 7 {
		t.Fatalf("correspondences = %d", len(report.Correspondences))
	}
	tr, err := qmatch.NewTranslator(src, tgt, report)
	if err != nil {
		t.Fatal(err)
	}
	translated, err := tr.TranslateString(pipelineSourceDoc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(translated, "<Qty>1</Qty>") || !strings.Contains(translated, "<BillTo>bill</BillTo>") {
		t.Fatalf("translated:\n%s", translated)
	}
	violations, err := qmatch.ValidateString(tgt, translated)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("violations: %v\n%s", violations, translated)
	}
}

func TestValidateFindsViolations(t *testing.T) {
	src, _ := pipelineSchemas(t)
	vs, err := qmatch.ValidateString(src, `<PO><OrderNo>not-a-number</OrderNo></PO>`)
	if err != nil {
		t.Fatal(err)
	}
	var rules []string
	for _, v := range vs {
		rules = append(rules, v.Rule)
		if v.String() == "" {
			t.Fatal("empty violation string")
		}
	}
	joined := strings.Join(rules, ",")
	if !strings.Contains(joined, "type") || !strings.Contains(joined, "required") {
		t.Fatalf("rules = %v", rules)
	}
}

func TestValidateMalformed(t *testing.T) {
	src, _ := pipelineSchemas(t)
	if _, err := qmatch.ValidateString(src, "<PO><oops>"); err == nil {
		t.Fatal("malformed accepted")
	}
}

func TestNewTranslatorRejectsForeignReport(t *testing.T) {
	src, tgt := pipelineSchemas(t)
	bogus := &qmatch.Report{Correspondences: []qmatch.Correspondence{
		{Source: "Nope/Nope", Target: "PurchaseOrder/OrderNo"},
	}}
	if _, err := qmatch.NewTranslator(src, tgt, bogus); err == nil {
		t.Fatal("foreign report accepted")
	}
}

func TestDiffAPI(t *testing.T) {
	oldS, err := qmatch.ParseSchemaString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="R"><xs:complexType><xs:sequence>
	    <xs:element name="Quantity" type="xs:integer"/>
	  </xs:sequence></xs:complexType></xs:element></xs:schema>`)
	if err != nil {
		t.Fatal(err)
	}
	newS, err := qmatch.ParseSchemaString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="R"><xs:complexType><xs:sequence>
	    <xs:element name="Qty" type="xs:integer"/>
	  </xs:sequence></xs:complexType></xs:element></xs:schema>`)
	if err != nil {
		t.Fatal(err)
	}
	r := qmatch.Diff(oldS, newS)
	var renames int
	for _, e := range r.Entries {
		if e.Kind == qmatch.DiffRenamed {
			renames++
			if e.OldPath != "R/Quantity" || e.NewPath != "R/Qty" {
				t.Fatalf("rename = %+v", e)
			}
		}
	}
	if renames != 1 {
		t.Fatalf("renames = %d\n%s", renames, r.Format(true))
	}
	if !strings.Contains(r.Format(false), "renamed") {
		t.Fatal("format missing rename")
	}
}

func TestMatchComplexAPI(t *testing.T) {
	src, err := qmatch.ParseSchemaString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="Record"><xs:complexType><xs:sequence>
	    <xs:element name="AuthorName" type="xs:string"/>
	    <xs:element name="ISBN" type="xs:string"/>
	  </xs:sequence></xs:complexType></xs:element></xs:schema>`)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := qmatch.ParseSchemaString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="Entry"><xs:complexType><xs:sequence>
	    <xs:element name="Author"><xs:complexType><xs:sequence>
	      <xs:element name="FirstName" type="xs:string"/>
	      <xs:element name="LastName" type="xs:string"/>
	    </xs:sequence></xs:complexType></xs:element>
	    <xs:element name="BookNumber" type="xs:string"/>
	  </xs:sequence></xs:complexType></xs:element></xs:schema>`)
	if err != nil {
		t.Fatal(err)
	}
	report := qmatch.Match(src, tgt)
	complexes := qmatch.MatchComplex(src, tgt, report, qmatch.WithoutBuiltinThesaurus())
	// AuthorName has no 1:1 counterpart; the complex pass must split it.
	var hit *qmatch.ComplexCorrespondence
	for i := range complexes {
		if complexes[i].Source == "Record/AuthorName" {
			hit = &complexes[i]
		}
	}
	if hit == nil || len(hit.Targets) != 2 {
		t.Fatalf("complex = %v (report %v)", complexes, report.Correspondences)
	}
	if !strings.Contains(hit.String(), "{FirstName, LastName}") {
		t.Fatalf("String = %q", hit.String())
	}
}
