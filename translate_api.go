package qmatch

import (
	"io"

	"qmatch/internal/match"
	"qmatch/internal/translate"
)

// Translator converts instance documents from a source schema's structure
// into a target schema's structure, driven by matched correspondences.
type Translator struct {
	inner *translate.Translator
}

// NewTranslator compiles a translator from a match report (typically the
// output of Match on the same two schemas).
func NewTranslator(src, tgt *Schema, report *Report) (*Translator, error) {
	cs := make([]match.Correspondence, len(report.Correspondences))
	for i, c := range report.Correspondences {
		cs[i] = match.Correspondence{Source: c.Source, Target: c.Target, Score: c.Score}
	}
	inner, err := translate.New(src.root, tgt.root, cs)
	if err != nil {
		return nil, err
	}
	return &Translator{inner: inner}, nil
}

// Translate reads a source-structured XML document and writes the
// target-structured equivalent.
func (t *Translator) Translate(r io.Reader, w io.Writer) error {
	return t.inner.Translate(r, w)
}

// TranslateString is Translate over strings.
func (t *Translator) TranslateString(doc string) (string, error) {
	return t.inner.TranslateString(doc)
}
