//go:build !race

package qmatch_test

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
