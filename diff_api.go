package qmatch

import (
	"qmatch/internal/diff"
	"qmatch/internal/lingo"
)

// DiffKind classifies one element's evolution between two schema versions.
type DiffKind string

// The evolution kinds.
const (
	DiffUnchanged DiffKind = "unchanged"
	DiffRenamed   DiffKind = "renamed"
	DiffModified  DiffKind = "modified"
	DiffMoved     DiffKind = "moved"
	DiffRemoved   DiffKind = "removed"
	DiffAdded     DiffKind = "added"
)

// DiffEntry is one element's evolution record.
type DiffEntry struct {
	Kind    DiffKind
	OldPath string
	NewPath string
	Detail  string
}

// DiffReport is the evolution analysis of two schema versions.
type DiffReport struct {
	Entries []DiffEntry

	inner *diff.Report
}

// Format renders the report grouped by kind; verbose includes unchanged
// elements.
func (r *DiffReport) Format(verbose bool) string { return r.inner.Format(verbose) }

// Diff aligns an old and a new schema version with the hybrid matcher and
// classifies every element as unchanged, renamed, modified, moved, removed
// or added — schema-evolution analysis built on schema matching.
func Diff(oldSchema, newSchema *Schema, opts ...Option) *DiffReport {
	cfg := newConfig()
	for _, o := range opts {
		o(cfg)
	}
	var th *lingo.Thesaurus
	if cfg.custom != nil || cfg.noBuiltin {
		th = cfg.thesaurus()
	}
	inner := diff.Schemas(oldSchema.root, newSchema.root, th)
	out := &DiffReport{inner: inner}
	for _, e := range inner.Entries {
		out.Entries = append(out.Entries, DiffEntry{
			Kind:    DiffKind(e.Kind.String()),
			OldPath: e.OldPath,
			NewPath: e.NewPath,
			Detail:  e.Detail,
		})
	}
	return out
}
