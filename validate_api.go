package qmatch

import (
	"io"
	"strings"

	"qmatch/internal/validate"
)

// Violation is one finding from validating an instance document against a
// schema.
type Violation struct {
	// Path locates the offending document node ("PO/Lines/Item[2]").
	Path string
	// Rule names the violated constraint: "root", "undeclared",
	// "required", "occurs", "type" or "fixed".
	Rule string
	// Detail explains the finding.
	Detail string
}

// String renders "PO/OrderNo: type: value "abc" is not a valid integer".
func (v Violation) String() string {
	return validate.Violation(v).String()
}

// Validate checks an XML instance document against the schema and returns
// the violations found (empty for a valid document). An error is returned
// only for malformed XML.
func Validate(schema *Schema, doc io.Reader) ([]Violation, error) {
	vs, err := validate.Against(schema.root, doc)
	if err != nil {
		return nil, err
	}
	out := make([]Violation, len(vs))
	for i, v := range vs {
		out[i] = Violation(v)
	}
	return out, nil
}

// ValidateString is Validate over a string.
func ValidateString(schema *Schema, doc string) ([]Violation, error) {
	return Validate(schema, strings.NewReader(doc))
}
