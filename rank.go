package qmatch

// Ranked is one corpus schema scored against a query schema.
type Ranked struct {
	// Index is the schema's position in the input corpus.
	Index int `json:"index"`
	// Schema is the corpus schema.
	Schema *Schema `json:"-"`
	// Score is the query→schema tree QoM.
	Score float64 `json:"score"`
	// Correspondences are the element mappings found for this schema.
	Correspondences []Correspondence `json:"correspondences"`
}

// Rank matches one query schema against every schema of a corpus
// concurrently and returns the corpus sorted by descending overall match
// value — the paper's motivating scenario of locating, among many
// heterogeneous web documents, those whose schema best matches a query
// schema (§1). It builds a throwaway Engine per call; callers ranking
// repeatedly should build one Engine and use Engine.Rank. Option semantics
// are identical to Match, including the panic on invalid options.
func Rank(query *Schema, corpus []*Schema, opts ...Option) []Ranked {
	return mustEngine(opts).Rank(query, corpus)
}
