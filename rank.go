package qmatch

// Ranked is one corpus schema scored against a query schema.
type Ranked struct {
	// Index is the schema's position in the input corpus.
	Index int `json:"index"`
	// Schema is the corpus schema.
	Schema *Schema `json:"-"`
	// Score is the query→schema tree QoM.
	Score float64 `json:"score"`
	// Correspondences are the element mappings found for this schema.
	Correspondences []Correspondence `json:"correspondences"`
}

// Rank matches one query schema against every schema of a corpus
// concurrently and returns the corpus sorted by descending overall match
// value — the paper's motivating scenario of locating, among many
// heterogeneous web documents, those whose schema best matches a query
// schema (§1). Option semantics are identical to Match: option-less calls
// share one lazily-built default Engine, calls with options build a
// throwaway Engine (callers ranking repeatedly under a fixed non-default
// configuration should build one Engine and use Engine.Rank), and invalid
// options panic.
func Rank(query *Schema, corpus []*Schema, opts ...Option) []Ranked {
	return engineFor(opts).Rank(query, corpus)
}
