package qmatch

import (
	"runtime"
	"sort"
	"sync"
)

// Ranked is one corpus schema scored against a query schema.
type Ranked struct {
	// Index is the schema's position in the input corpus.
	Index int
	// Schema is the corpus schema.
	Schema *Schema
	// Score is the query→schema tree QoM.
	Score float64
	// Correspondences are the element mappings found for this schema.
	Correspondences []Correspondence
}

// Rank matches one query schema against every schema of a corpus
// concurrently and returns the corpus sorted by descending overall match
// value — the paper's motivating scenario of locating, among many
// heterogeneous web documents, those whose schema best matches a query
// schema (§1). Each worker uses its own matcher instance (the linguistic
// caches are not safe for sharing), so Rank is safe to call from any
// goroutine. Option semantics are identical to Match.
func Rank(query *Schema, corpus []*Schema, opts ...Option) []Ranked {
	out := make([]Ranked, len(corpus))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(corpus) {
		workers = len(corpus)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker configuration: matcher state (caches, pair
			// tables) must not be shared across goroutines.
			cfg := newConfig()
			for _, o := range opts {
				o(cfg)
			}
			alg := cfg.algorithm()
			for i := range jobs {
				tgt := corpus[i]
				cs := alg.Match(query.root, tgt.root)
				r := Ranked{Index: i, Schema: tgt, Score: alg.TreeScore(query.root, tgt.root)}
				r.Correspondences = make([]Correspondence, len(cs))
				for j, c := range cs {
					r.Correspondences[j] = Correspondence{Source: c.Source, Target: c.Target, Score: c.Score}
				}
				out[i] = r
			}
		}()
	}
	for i := range corpus {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Index < out[j].Index
	})
	return out
}
