package qmatch

import (
	"context"
	"errors"
	"time"

	"qmatch/internal/core"
	"qmatch/internal/match"
	"qmatch/internal/obs"
)

// Incremental delta re-match: the registry flow where one side of a
// previously matched pair evolves (a schema PUT on an existing id) and the
// new pair must be matched again. A pair-table cell depends only on the
// two subtrees below it, so the columns (or rows) of unchanged subtrees
// are copied from the previous table and only changed nodes are rescored —
// with a result equal to a full re-match (see internal/core/rematch.go for
// the precise invariant and the equivalence suite pinning it).

// RematchStats reports how much work an incremental re-match saved.
type RematchStats struct {
	// Side is the evolved side: "source" or "target".
	Side string `json:"side"`
	// CopiedCells and RescoredCells partition the new pair table: copied
	// cells were taken verbatim from the previous match.
	CopiedCells   int64 `json:"copiedCells"`
	RescoredCells int64 `json:"rescoredCells"`
	// CleanNodes and DirtyNodes partition the evolved side's elements.
	CleanNodes int `json:"cleanNodes"`
	DirtyNodes int `json:"dirtyNodes"`
	// Full marks a degraded full re-match (no reusable previous table).
	Full bool `json:"full,omitempty"`
}

// rematchState is the retained pair table a WithRematchState Engine
// attaches to compiled-path Reports — the seed of the next Rematch call.
type rematchState struct {
	result   *core.Result
	src, tgt *CompiledSchema
}

// WithRematchState makes the Engine's compiled-path matches (MatchCompiled
// and Rematch itself) retain their pair table on the returned Report, so a
// later Engine.Rematch against an evolved schema version can reuse it.
// The retained table pins O(sourceSize·targetSize) memory for the Report's
// lifetime — opt in only where re-matching is expected (the registry's
// schema store does).
func WithRematchState() Option {
	return func(c *config) { c.rematchState = true }
}

// attachRematchState detaches the hybrid matcher's pair table for the just
// matched pair and parks it on the Report, on Engines opted in via
// WithRematchState. Must run before the algorithm handle is released (the
// release drops all un-taken tables back to the arena pool).
func (e *Engine) attachRematchState(rep *Report, alg match.Algorithm, src, tgt *CompiledSchema) {
	if !e.cfg.rematchState || rep == nil {
		return
	}
	h, ok := alg.(*core.Hybrid)
	if !ok {
		return
	}
	if r := h.Take(src.art.Root, tgt.art.Root); r != nil {
		rep.state = &rematchState{result: r, src: src, tgt: tgt}
	}
}

// Rematch matches prev's schema pair with one side replaced by an evolved
// version: old must be one side of the match that produced prev, and new
// its successor. The report equals MatchCompiled over the new pair —
// correspondences, TreeQoM, everything — but unchanged regions of the
// evolved schema are copied from prev's retained pair table instead of
// rescored; Report.Rematch breaks down the savings. prev must come from a
// compiled-path match on an Engine built WithRematchState (Rematch's own
// reports carry state too, so evolution chains keep rematching
// incrementally). prev remains valid afterwards.
func (e *Engine) Rematch(prev *Report, old, new *CompiledSchema) (*Report, error) {
	if old == nil || new == nil {
		return nil, errors.New("qmatch: rematch: nil schema")
	}
	if prev == nil || prev.state == nil {
		return nil, errors.New("qmatch: rematch: previous report carries no pair-table state (match on an Engine built WithRematchState)")
	}
	st := prev.state
	srcCS, tgtCS := st.src, st.tgt
	target := false
	switch old.art.Root {
	case st.tgt.art.Root:
		target, tgtCS = true, new
	case st.src.art.Root:
		srcCS = new
	default:
		return nil, errors.New("qmatch: rematch: old schema is not a side of the previous match")
	}

	h, release := e.hybrid(e.parallelism)
	defer release()
	installInterner(h, compiledInterner(srcCS, tgtCS))
	start := time.Now()
	var r *core.Result
	var stats core.RematchStats
	if target {
		r, stats = h.Matcher.RematchTarget(st.result, new.art.Root)
	} else {
		r, stats = h.Matcher.RematchSource(st.result, new.art.Root)
	}
	if e.collect {
		e.em.phaseNs[obs.PhaseRematch].Add(time.Since(start).Nanoseconds())
	}
	// Seed the matcher's memo with the rematched table: the selection pass
	// in run() finds it and never refills.
	h.Adopt(r)
	rep := e.run(context.Background(), h, srcCS.schema, tgtCS.schema)
	side := "source"
	if target {
		side = "target"
	}
	rep.Rematch = &RematchStats{
		Side:          side,
		CopiedCells:   stats.CopiedCells,
		RescoredCells: stats.RescoredCells,
		CleanNodes:    stats.CleanNodes,
		DirtyNodes:    stats.DirtyNodes,
		Full:          stats.Full,
	}
	e.attachRematchState(rep, h, srcCS, tgtCS)
	return rep, nil
}
