package qmatch

import (
	"expvar"
	"io"

	"qmatch/internal/obs"
)

// The Engine's metric names. Every counter/gauge/histogram the match
// pipeline maintains is listed here; DESIGN.md §"Observability" documents
// semantics. Phase wall time is keyed by a phase label:
// qmatch_phase_ns_total{phase="parse|intern|pairtable|select|compile|prefilter"}.
const (
	MetricMatches        = "qmatch_matches_total"
	MetricCancelled      = "qmatch_matches_cancelled_total"
	MetricCells          = "qmatch_pairtable_cells_total"
	MetricDuration       = "qmatch_match_duration_seconds"
	MetricInflight       = "qmatch_inflight_matches"
	MetricWorkers        = "qmatch_matchall_workers"
	MetricCacheHits      = "qmatch_label_cache_hits_total"
	MetricCacheMisses    = "qmatch_label_cache_misses_total"
	MetricCacheEntries   = "qmatch_label_cache_entries"
	MetricCacheEvictions = "qmatch_label_cache_evictions_total"
)

// phaseMetric names the per-phase wall-time counter of one pipeline phase.
func phaseMetric(p obs.Phase) string {
	return `qmatch_phase_ns_total{phase="` + string(p) + `"}`
}

// phaseDurationMetric names the per-phase latency histogram
// (qmatch_phase_duration_seconds{phase="..."}): where the wall-time
// counter reports each phase's aggregate share, the histogram keeps the
// distribution, so tail latency per phase is visible.
func phaseDurationMetric(p obs.Phase) string {
	return `qmatch_phase_duration_seconds{phase="` + string(p) + `"}`
}

// TraceSpan is one phase of a match pipeline trace (paper Fig. 3): parse,
// intern (vocabulary interning into the similarity kernel), pairtable (the
// QoM pair-table fill) and select (correspondence selection). Counts are
// phase-specific: the intern span counts interned vocabulary entries
// (SrcNodes/TgtNodes) and scored kernel cells, the pairtable span counts
// tree nodes and filled table cells, the select span counts candidate
// pairs (Cells) and accepted correspondences (Selected). Partial marks a
// phase cut short by cancellation; its counts cover the work done so far.
//
// Spans form a hierarchy: ID numbers spans in start order from 1, and
// ParentID links a child to its enclosing span (0 marks a root). A match
// run is rooted at a "match" span whose children are the pipeline phases;
// the pairtable span additionally has one "level" child per fill stratum
// (Level carries the 1-based stratum index).
type TraceSpan struct {
	Phase      string `json:"phase"`
	ID         int64  `json:"id,omitempty"`
	ParentID   int64  `json:"parentId,omitempty"`
	StartNs    int64  `json:"startNs"`
	DurationNs int64  `json:"durationNs"`
	SrcNodes   int    `json:"srcNodes,omitempty"`
	TgtNodes   int    `json:"tgtNodes,omitempty"`
	Cells      int64  `json:"cells,omitempty"`
	Workers    int    `json:"workers,omitempty"`
	Selected   int    `json:"selected,omitempty"`
	Level      int    `json:"level,omitempty"`
	Partial    bool   `json:"partial,omitempty"`
}

// MatchTrace is the structured per-match phase trace an Engine built with
// Observer.Tracing attaches to every Report: total wall time and the phase
// spans in start order. The JSON tags define a stable wire format; the
// qmatch CLI's -trace flag prints Format's human-readable breakdown.
// TraceID carries the W3C trace ID the run was correlated under (empty for
// uncorrelated library calls).
type MatchTrace struct {
	TraceID string      `json:"traceId,omitempty"`
	TotalNs int64       `json:"totalNs"`
	Spans   []TraceSpan `json:"spans"`
}

// WriteJSON streams the trace as one indented JSON object.
func (t *MatchTrace) WriteJSON(w io.Writer) error {
	return t.inner().WriteJSON(w)
}

// Format renders the human-readable phase breakdown: one line per span
// with duration, share of total wall time, and phase-specific counts.
func (t *MatchTrace) Format() string {
	return t.inner().Format()
}

// WriteTraceEvents writes the trace in the Chrome trace-event JSON array
// format (loadable in Perfetto or chrome://tracing): one complete event per
// span, nested by time containment, with phase counts as event args. The
// qmatch CLI's -trace-out flag and qmatchd's /v1/match?trace=1 use this.
func (t *MatchTrace) WriteTraceEvents(w io.Writer) error {
	return t.inner().WriteTraceEvents(w)
}

// inner converts back to the internal representation the formatters use.
func (t *MatchTrace) inner() *obs.MatchTrace {
	mt := &obs.MatchTrace{TraceID: t.TraceID, TotalNs: t.TotalNs, Spans: make([]obs.Span, len(t.Spans))}
	for i, s := range t.Spans {
		mt.Spans[i] = obs.Span{
			Phase: obs.Phase(s.Phase), ID: s.ID, ParentID: s.ParentID,
			StartNs: s.StartNs, DurationNs: s.DurationNs,
			SrcNodes: s.SrcNodes, TgtNodes: s.TgtNodes, Cells: s.Cells,
			Workers: s.Workers, Selected: s.Selected, Level: s.Level, Partial: s.Partial,
		}
	}
	return mt
}

// publicMatchTrace mirrors a finished internal trace into the wire type.
func publicMatchTrace(mt *obs.MatchTrace) *MatchTrace {
	if mt == nil {
		return nil
	}
	t := &MatchTrace{TraceID: mt.TraceID, TotalNs: mt.TotalNs, Spans: make([]TraceSpan, len(mt.Spans))}
	for i, s := range mt.Spans {
		t.Spans[i] = TraceSpan{
			Phase: string(s.Phase), ID: s.ID, ParentID: s.ParentID,
			StartNs: s.StartNs, DurationNs: s.DurationNs,
			SrcNodes: s.SrcNodes, TgtNodes: s.TgtNodes, Cells: s.Cells,
			Workers: s.Workers, Selected: s.Selected, Level: s.Level, Partial: s.Partial,
		}
	}
	return t
}

// WriteMetrics writes the Engine's metrics registry in the Prometheus text
// exposition format — counters and gauges as single samples, the duration
// histogram as cumulative _bucket/_sum/_count series. The label-score
// cache gauges are always present; per-match counters fill in when the
// Engine was built with Observer.Metrics.
func (e *Engine) WriteMetrics(w io.Writer) error {
	return e.metrics.WritePrometheus(w)
}

// WriteMetricsJSON writes a point-in-time JSON snapshot of every metric —
// the machine-readable artifact qbench -metrics emits.
func (e *Engine) WriteMetricsJSON(w io.Writer) error {
	return e.metrics.WriteJSON(w)
}

// PublishExpvar exposes the Engine's metrics registry on the process
// /debug/vars page under the given name, as one JSON object. Idempotent:
// if the name is already taken, it does nothing (expvar registrations are
// process-global and permanent, so prefer one name per long-lived Engine).
func (e *Engine) PublishExpvar(name string) {
	e.metrics.Publish(name)
}

// MetricValue returns the current value of a counter or gauge by metric
// name (see the Metric constants), and whether that metric exists.
func (e *Engine) MetricValue(name string) (int64, bool) {
	return e.metrics.Value(name)
}

// interface guard: the registry stays an expvar.Var.
var _ expvar.Var = (*obs.Registry)(nil)
