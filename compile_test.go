package qmatch_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"qmatch"
	"qmatch/internal/dataset"
	"qmatch/internal/xsd"
)

// compilePair compiles the PO test pair.
func compilePair(t *testing.T, opts ...qmatch.CompileOption) (src, tgt *qmatch.CompiledSchema) {
	t.Helper()
	s, g := poPairXSD(t)
	cs, err := qmatch.Compile(s, opts...)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := qmatch.Compile(g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return cs, cg
}

// wireBytes renders a report through the library serializer — the wire
// format pinned by testdata/wire_golden.json.
func wireBytes(t *testing.T, r *qmatch.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCompiledMatchEquivalence pins the core contract of the compiled
// path: MatchCompiled produces wire bytes bit-identical to Match over the
// same schemas — the parse-path side of which is itself pinned against
// testdata/wire_golden.json by TestWireFormatGolden.
func TestCompiledMatchEquivalence(t *testing.T) {
	src, tgt := poPairXSD(t)
	eng, err := qmatch.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	parsed := wireBytes(t, eng.Match(src, tgt))

	csrc, err := qmatch.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	ctgt, err := qmatch.Compile(tgt)
	if err != nil {
		t.Fatal(err)
	}
	compiled := wireBytes(t, eng.MatchCompiled(csrc, ctgt))
	if !bytes.Equal(parsed, compiled) {
		t.Errorf("compiled path diverged from parse path:\ncompiled:\n%s\nparsed:\n%s", compiled, parsed)
	}

	// And through a full encode→decode cycle: a schema matched from a
	// stored artifact must still be bit-identical.
	var blob bytes.Buffer
	if err := csrc.Encode(&blob); err != nil {
		t.Fatal(err)
	}
	decoded, err := qmatch.DecodeCompiled(&blob)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.ID() != csrc.ID() {
		t.Fatalf("ID changed across encode/decode: %s != %s", decoded.ID(), csrc.ID())
	}
	fromDisk := wireBytes(t, eng.MatchCompiled(decoded, ctgt))
	if !bytes.Equal(parsed, fromDisk) {
		t.Errorf("decoded-artifact path diverged from parse path:\ngot:\n%s\nwant:\n%s", fromDisk, parsed)
	}
}

// TestCompiledMatchContextEquivalence covers the context variant and its
// cancellation contract.
func TestCompiledMatchContextEquivalence(t *testing.T) {
	eng, err := qmatch.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	csrc, ctgt := compilePair(t)
	report, err := eng.MatchCompiledContext(context.Background(), csrc, ctgt)
	if err != nil {
		t.Fatal(err)
	}
	want := wireBytes(t, eng.MatchCompiled(csrc, ctgt))
	if !bytes.Equal(wireBytes(t, report), want) {
		t.Error("MatchCompiledContext diverged from MatchCompiled")
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.MatchCompiledContext(cancelled, csrc, ctgt); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context: got err %v, want context.Canceled", err)
	}
}

func TestMatchAllCompiledEquivalence(t *testing.T) {
	eng, err := qmatch.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	trees := []*qmatch.Schema{
		qmatch.FromTree(dataset.PO1()),
		qmatch.FromTree(dataset.PO2()),
		qmatch.FromTree(dataset.Book()),
	}
	compiled := make([]*qmatch.CompiledSchema, len(trees))
	for i, s := range trees {
		if compiled[i], err = qmatch.Compile(s); err != nil {
			t.Fatal(err)
		}
	}
	plain, err := eng.MatchAll(context.Background(), trees, trees)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := eng.MatchAllCompiled(context.Background(), compiled, compiled)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, fast) {
		t.Error("MatchAllCompiled reports differ from MatchAll")
	}
}

// rankCorpus builds a small heterogeneous corpus around the PO query.
func rankCorpus(t *testing.T) (*qmatch.Schema, []*qmatch.Schema) {
	t.Helper()
	query := qmatch.FromTree(dataset.PO1())
	corpus := []*qmatch.Schema{
		qmatch.FromTree(dataset.Human()),
		qmatch.FromTree(dataset.PO2()),
		qmatch.FromTree(dataset.Book()),
		qmatch.FromTree(dataset.Article()),
		qmatch.FromTree(dataset.Library()),
	}
	return query, corpus
}

// TestPrefilterRecall pins the prefilter's correctness property: the
// prefilter only selects candidates, the order always comes from the full
// QoM — so RankCompiled with k ≥ len(corpus) must reproduce the
// exhaustive Rank order, scores and correspondences exactly.
func TestPrefilterRecall(t *testing.T) {
	eng, err := qmatch.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	query, corpus := rankCorpus(t)
	exhaustive := eng.Rank(query, corpus)

	cq, err := qmatch.Compile(query)
	if err != nil {
		t.Fatal(err)
	}
	ccorpus := make([]*qmatch.CompiledSchema, len(corpus))
	for i, s := range corpus {
		if ccorpus[i], err = qmatch.Compile(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []int{0, len(corpus), len(corpus) + 7} {
		ranked, err := eng.RankCompiled(context.Background(), cq, ccorpus, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ranked, exhaustive) {
			t.Errorf("k=%d: RankCompiled diverged from exhaustive Rank\ngot:  %+v\nwant: %+v",
				k, summarize(ranked), summarize(exhaustive))
		}
	}

	// With k=1 the single survivor must be the exhaustive winner: on this
	// corpus the best QoM match (po2) is also the best vocabulary overlap.
	top1, err := eng.RankCompiled(context.Background(), cq, ccorpus, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top1) != 1 || top1[0].Index != exhaustive[0].Index {
		t.Errorf("k=1: got index %v, want the exhaustive winner %d", summarize(top1), exhaustive[0].Index)
	}
}

// summarize renders ranked results compactly for failure messages.
func summarize(rs []qmatch.Ranked) string {
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(r.Schema.Name())
		b.WriteByte(' ')
	}
	return b.String()
}

func TestPrefilterTopKOrder(t *testing.T) {
	query, corpus := rankCorpus(t)
	cq, err := qmatch.Compile(query)
	if err != nil {
		t.Fatal(err)
	}
	ccorpus := make([]*qmatch.CompiledSchema, len(corpus))
	for i, s := range corpus {
		if ccorpus[i], err = qmatch.Compile(s); err != nil {
			t.Fatal(err)
		}
	}
	all := qmatch.PrefilterTopK(cq, ccorpus, 0)
	if len(all) != len(corpus) {
		t.Fatalf("k=0 kept %d of %d", len(all), len(corpus))
	}
	for i := 1; i < len(all); i++ {
		a := cq.Overlap(ccorpus[all[i-1]])
		b := cq.Overlap(ccorpus[all[i]])
		if a < b {
			t.Errorf("prefilter order violated at %d: overlap %v before %v", i, a, b)
		}
	}
	two := qmatch.PrefilterTopK(cq, ccorpus, 2)
	if len(two) != 2 || two[0] != all[0] || two[1] != all[1] {
		t.Errorf("k=2 is not the prefix of the full order: %v vs %v", two, all[:2])
	}
}

func TestRankContext(t *testing.T) {
	eng, err := qmatch.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	query, corpus := rankCorpus(t)
	want := eng.Rank(query, corpus)
	got, err := eng.RankContext(context.Background(), query, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("RankContext diverged from Rank")
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := eng.RankContext(cancelled, query, corpus); !errors.Is(err, context.Canceled) || res != nil {
		t.Errorf("cancelled RankContext: got (%v, %v), want (nil, context.Canceled)", res, err)
	}
}

func TestCompileOptionsChangeID(t *testing.T) {
	src, _ := poPairXSD(t)
	plain, err := qmatch.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	tokens, err := qmatch.Compile(src, qmatch.WithLabelTokens())
	if err != nil {
		t.Fatal(err)
	}
	if plain.ID() == tokens.ID() {
		t.Error("WithLabelTokens did not change the content ID")
	}
	if len(tokens.Terms()) <= len(plain.Terms()) {
		t.Error("WithLabelTokens did not grow the prefilter vocabulary")
	}
	again, err := qmatch.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID() != plain.ID() {
		t.Error("recompiling the same schema changed the content ID")
	}
}

func TestDecodeCompiledTypedErrors(t *testing.T) {
	garbage := strings.Repeat("not an artifact blob ", 4) // longer than the header
	if _, err := qmatch.DecodeCompiled(strings.NewReader(garbage)); !errors.Is(err, qmatch.ErrArtifactMagic) {
		t.Errorf("garbage input: got %v, want ErrArtifactMagic", err)
	}
	if _, err := qmatch.DecodeCompiled(strings.NewReader("QM")); !errors.Is(err, qmatch.ErrArtifactTruncated) {
		t.Errorf("short input: got %v, want ErrArtifactTruncated", err)
	}
	src, _ := poPairXSD(t)
	cs, err := qmatch.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cs.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	blob[len(blob)-1] ^= 0xff
	if _, err := qmatch.DecodeCompiled(bytes.NewReader(blob)); !errors.Is(err, qmatch.ErrArtifactChecksum) {
		t.Errorf("corrupted payload: got %v, want ErrArtifactChecksum", err)
	}
}

// TestDefaultEngineRouting exercises the lazily-built default Engine the
// option-less package functions share: results must match an explicit
// default Engine, and option-ful calls must not be affected.
func TestDefaultEngineRouting(t *testing.T) {
	src, tgt := poPairXSD(t)
	eng, err := qmatch.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	want := wireBytes(t, eng.Match(src, tgt))
	if !bytes.Equal(wireBytes(t, qmatch.Match(src, tgt)), want) {
		t.Error("package-level Match diverged from a fresh default Engine")
	}
	// A second call rides the same shared Engine (warm caches) and must
	// stay bit-identical.
	if !bytes.Equal(wireBytes(t, qmatch.Match(src, tgt)), want) {
		t.Error("repeated package-level Match diverged")
	}
	if got := qmatch.QoM(src, tgt); got != eng.QoM(src, tgt) {
		t.Error("package-level QoM diverged from a fresh default Engine")
	}
	// Option-ful calls still get their own configuration.
	structural := qmatch.Match(src, tgt, qmatch.WithAlgorithm(qmatch.Structural))
	if structural.Algorithm != "structural" {
		t.Errorf("option-ful Match ignored options: algorithm %q", structural.Algorithm)
	}
}

// TestCompiledSchemaAccessors covers the metadata views the registry and
// service expose.
func TestCompiledSchemaAccessors(t *testing.T) {
	src, _ := poPairXSD(t)
	cs, err := qmatch.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Name() != src.Name() || cs.Size() != src.Size() {
		t.Errorf("accessor mismatch: %s/%d vs %s/%d", cs.Name(), cs.Size(), src.Name(), src.Size())
	}
	if cs.Schema() != src {
		t.Error("Schema() does not return the compiled schema")
	}
	if xsd.Render(cs.Schema().Tree()) != src.XSD() {
		t.Error("compiled tree renders differently")
	}
	if o := cs.Overlap(cs); o != 1 {
		t.Errorf("self overlap %v, want 1", o)
	}
}

// Compiled-path counterpart of core's TestTreeAllocsBounded: a warm
// MatchCompiled on the DCMD pair must stay within the arena-era ceiling.
// It runs at ~280 allocations — the compiled schemas carry pre-interned
// vocabularies, so selection and report assembly are most of what's left.
// The 600 ceiling trips on any return of per-cell allocation or loss of
// the pooled arena buffers.
func TestMatchCompiledAllocsBounded(t *testing.T) {
	csrc, ctgt := compileDatasetPair(t, dataset.DCMDPair())
	eng, err := qmatch.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	eng.MatchCompiled(csrc, ctgt) // warm memo caches and the buffer pool
	allocs := testing.AllocsPerRun(5, func() {
		eng.MatchCompiled(csrc, ctgt)
	})
	if allocs > 600 {
		t.Errorf("DCMD MatchCompiled = %.0f allocs/run, regression ceiling is 600", allocs)
	}
}
