package qmatch

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"qmatch/internal/artifact"
	"qmatch/internal/core"
	"qmatch/internal/obs"
	"qmatch/internal/xmltree"
)

// CompiledSchema is a schema compiled once into everything a match needs:
// the tree, the interned label/property vocabularies of the similarity
// kernel, and a label-signature sketch for cheap corpus prefiltering.
// Compile it once (or Decode it from a stored artifact), then feed it to
// the Engine's *Compiled methods — they skip the parse and intern phases
// entirely, which is the win for registry workloads where the same schema
// is matched over and over.
//
// A CompiledSchema is immutable and goroutine-safe; the underlying tree
// must not be mutated after Compile.
type CompiledSchema struct {
	art    *artifact.Compiled
	schema *Schema
}

// CompileOption configures Compile.
type CompileOption func(*uint16)

// WithLabelTokens extends the prefilter vocabulary with the tokenized
// forms of compound labels ("ShipTo" contributes "ship" and "to"), so the
// corpus prefilter sees through naming-convention differences at the cost
// of a larger term set. The flag is baked into the artifact's encoding
// and content ID.
func WithLabelTokens() CompileOption {
	return func(flags *uint16) { *flags |= artifact.FlagLabelTokens }
}

// Compile compiles a schema into a reusable, serializable artifact. The
// schema is captured by reference and must not be mutated afterwards.
func Compile(s *Schema, opts ...CompileOption) (*CompiledSchema, error) {
	if s == nil {
		return nil, fmt.Errorf("qmatch: compile: nil schema")
	}
	var flags uint16
	for _, o := range opts {
		o(&flags)
	}
	art, err := artifact.Compile(s.root, flags)
	if err != nil {
		return nil, err
	}
	return &CompiledSchema{art: art, schema: s}, nil
}

// Artifact decode errors, re-exported from the artifact format layer for
// errors.Is matching without importing internal packages:
//
//	ErrArtifactMagic      the blob is not a qmatch schema artifact
//	ErrArtifactVersion    a format version this build does not speak
//	ErrArtifactTruncated  the blob ends inside the header or payload
//	ErrArtifactChecksum   the payload does not hash to its header sum
//	ErrArtifactMalformed  the payload checksums but violates the grammar
var (
	ErrArtifactMagic     = artifact.ErrMagic
	ErrArtifactVersion   = artifact.ErrVersion
	ErrArtifactTruncated = artifact.ErrTruncated
	ErrArtifactChecksum  = artifact.ErrChecksum
	ErrArtifactMalformed = artifact.ErrMalformed
)

// DecodeCompiled reads an artifact written by Encode and rebuilds the
// ready-to-match CompiledSchema, verifying format version and checksum
// first (see the ErrArtifact* sentinels for the failure modes).
func DecodeCompiled(r io.Reader) (*CompiledSchema, error) {
	art, err := artifact.Decode(r)
	if err != nil {
		return nil, err
	}
	return &CompiledSchema{art: art, schema: &Schema{root: art.Root}}, nil
}

// Encode writes the artifact in its versioned binary format. Decoding the
// bytes reproduces this CompiledSchema exactly, including its ID.
func (cs *CompiledSchema) Encode(w io.Writer) error {
	return artifact.Encode(w, cs.art)
}

// ID returns the artifact's content address — the hex SHA-256 of its
// canonical encoding. Two schemas with equal trees compiled with equal
// options share an ID, regardless of the XSD surface syntax they were
// parsed from.
func (cs *CompiledSchema) ID() string { return cs.art.ID() }

// Schema returns the schema view of the compiled tree — the value the
// parse-based Engine methods accept. The tree is shared, not copied.
func (cs *CompiledSchema) Schema() *Schema { return cs.schema }

// Name returns the label of the schema's root element.
func (cs *CompiledSchema) Name() string { return cs.schema.Name() }

// Size returns the number of elements (and attributes) in the schema.
func (cs *CompiledSchema) Size() int { return cs.schema.Size() }

// Terms returns the sorted prefilter vocabulary (lowercase labels, plus
// label tokens when compiled WithLabelTokens). The slice is shared;
// callers must not modify it.
func (cs *CompiledSchema) Terms() []string { return cs.art.Terms }

// Overlap scores the prefilter affinity of two compiled schemas in [0,1]:
// the Jaccard overlap of their term vocabularies. This is the blocking
// score the corpus search ranks candidates by before any full QoM runs.
func (cs *CompiledSchema) Overlap(o *CompiledSchema) float64 {
	return artifact.Overlap(cs.art, o.art)
}

// PrefilterTopK selects the k most promising corpus candidates for a
// query by vocabulary overlap, returning their corpus indices ordered by
// descending overlap (ties by ascending index). k <= 0 or k >= len(corpus)
// keeps every candidate. The prefilter never reorders the final result —
// Engine.RankCompiled ranks the survivors with the full QoM — so with
// k >= len(corpus) a compiled rank reproduces the exhaustive Rank order
// exactly.
func PrefilterTopK(query *CompiledSchema, corpus []*CompiledSchema, k int) []int {
	idx := make([]int, len(corpus))
	overlaps := make([]float64, len(corpus))
	for i, c := range corpus {
		idx[i] = i
		overlaps[i] = artifact.Overlap(query.art, c.art)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if overlaps[idx[a]] != overlaps[idx[b]] {
			return overlaps[idx[a]] > overlaps[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > 0 && k < len(idx) {
		idx = idx[:k]
	}
	return idx
}

// Compile is the package-level Compile with the Engine's observability
// attached: when the Engine collects metrics, the compile wall time feeds
// the qmatch_phase_compile_ns counter alongside the match phases.
func (e *Engine) Compile(s *Schema, opts ...CompileOption) (*CompiledSchema, error) {
	start := time.Now()
	cs, err := Compile(s, opts...)
	if e.collect && err == nil {
		e.em.phaseNs[obs.PhaseCompile].Add(time.Since(start).Nanoseconds())
	}
	return cs, err
}

// compiledInterner builds the vocabulary lookup the core matcher consults
// instead of interning at match entry: tree root → precompiled Interned.
func compiledInterner(cs ...*CompiledSchema) func(*xmltree.Node) *core.Interned {
	m := make(map[*xmltree.Node]*core.Interned, len(cs))
	for _, c := range cs {
		if c != nil {
			m[c.art.Root] = c.art.Interned
		}
	}
	return func(root *xmltree.Node) *core.Interned { return m[root] }
}

// installInterner wires a compiled-vocabulary lookup into an algorithm
// instance when it supports the fast path (the hybrid matcher does; the
// baselines have no intern phase to skip).
func installInterner(alg any, f func(*xmltree.Node) *core.Interned) {
	if si, ok := alg.(interface {
		SetInterner(func(*xmltree.Node) *core.Interned)
	}); ok {
		si.SetInterner(f)
	}
}

// MatchCompiled is Match over compiled schemas: the match starts directly
// at the pair-table phase, reusing each side's precompiled vocabulary.
// The Report is bit-identical to Match(src.Schema(), tgt.Schema()).
func (e *Engine) MatchCompiled(src, tgt *CompiledSchema) *Report {
	alg, release := e.algorithm(e.parallelism)
	defer release()
	installInterner(alg, compiledInterner(src, tgt))
	rep := e.run(context.Background(), alg, src.schema, tgt.schema)
	e.attachRematchState(rep, alg, src, tgt)
	return rep
}

// MatchCompiledContext is MatchContext over compiled schemas; see
// MatchContext for the cancellation contract.
func (e *Engine) MatchCompiledContext(ctx context.Context, src, tgt *CompiledSchema) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	alg, release := e.algorithm(e.parallelism)
	defer release()
	if ds, ok := alg.(interface{ SetDone(<-chan struct{}) }); ok {
		ds.SetDone(ctx.Done())
	}
	installInterner(alg, compiledInterner(src, tgt))
	report := e.run(ctx, alg, src.schema, tgt.schema)
	if ctx.Err() == nil {
		e.attachRematchState(report, alg, src, tgt)
	}
	return report, ctx.Err()
}

// MatchAllCompiled is MatchAll over compiled schemas: every worker skips
// the intern phase for every pair. Reports are bit-identical to MatchAll
// over the corresponding Schema values.
func (e *Engine) MatchAllCompiled(ctx context.Context, sources, targets []*CompiledSchema) ([][]*Report, error) {
	srcs := make([]*Schema, len(sources))
	for i, c := range sources {
		srcs[i] = c.schema
	}
	tgts := make([]*Schema, len(targets))
	for i, c := range targets {
		tgts[i] = c.schema
	}
	return e.matchAll(ctx, srcs, tgts, compiledInterner(append(sources[:len(sources):len(sources)], targets...)...))
}

// RankCompiled is the corpus search: the vocabulary-overlap prefilter
// selects the k most promising corpus schemas (k <= 0 keeps all), and only
// those survivors pay for a full QoM match against the query. The result
// is the survivors ranked exactly as Engine.Rank would rank them — Ranked
// Index values refer to positions in the input corpus — so with k >=
// len(corpus) RankCompiled reproduces the exhaustive Rank order.
func (e *Engine) RankCompiled(ctx context.Context, query *CompiledSchema, corpus []*CompiledSchema, k int) ([]Ranked, error) {
	start := time.Now()
	keep := PrefilterTopK(query, corpus, k)
	if e.collect {
		e.em.phaseNs[obs.PhasePrefilter].Add(time.Since(start).Nanoseconds())
	}
	// Rank the survivors in ascending corpus order so score ties break
	// by original index, exactly as the exhaustive Rank breaks them.
	sort.Ints(keep)
	sub := make([]*Schema, len(keep))
	compiled := make([]*CompiledSchema, 0, len(keep)+1)
	compiled = append(compiled, query)
	for i, ci := range keep {
		sub[i] = corpus[ci].schema
		compiled = append(compiled, corpus[ci])
	}
	out, err := e.rank(ctx, query.schema, sub, compiledInterner(compiled...))
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i].Index = keep[out[i].Index]
	}
	return out, nil
}
