package qmatch_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"qmatch"
)

var updateGolden = flag.Bool("update", false, "rewrite golden wire-format files")

// complexPairXSD builds the 1:n split example (AuthorName ↔ FirstName +
// LastName) so the golden file covers ComplexCorrespondence too.
func complexPairXSD(t *testing.T) (src, tgt *qmatch.Schema) {
	t.Helper()
	src, err := qmatch.ParseSchemaString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="Record"><xs:complexType><xs:sequence>
	    <xs:element name="AuthorName" type="xs:string"/>
	  </xs:sequence></xs:complexType></xs:element></xs:schema>`)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err = qmatch.ParseSchemaString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="Entry"><xs:complexType><xs:sequence>
	    <xs:element name="Author"><xs:complexType><xs:sequence>
	      <xs:element name="FirstName" type="xs:string"/>
	      <xs:element name="LastName" type="xs:string"/>
	    </xs:sequence></xs:complexType></xs:element>
	  </xs:sequence></xs:complexType></xs:element></xs:schema>`)
	if err != nil {
		t.Fatal(err)
	}
	return src, tgt
}

// TestWireFormatGolden pins the JSON wire format of every public
// serialized type — Report, Correspondence, ComplexCorrespondence,
// Evaluation — against a golden file. A diff here means the stable wire
// format changed; update deliberately with `go test -run WireFormat
// -update ./` and call it out in DESIGN.md.
func TestWireFormatGolden(t *testing.T) {
	src, tgt := poPairXSD(t)
	report := qmatch.Match(src, tgt)
	eval := qmatch.Evaluate(report, [][2]string{
		{"PO/OrderNo", "PurchaseOrder/OrderNo"},
		{"PO/PurchaseDate", "PurchaseOrder/Date"},
	})
	cSrc, cTgt := complexPairXSD(t)
	cReport := qmatch.Match(cSrc, cTgt)
	complexes := qmatch.MatchComplex(cSrc, cTgt, cReport)
	if len(complexes) == 0 {
		t.Fatal("complex pass found nothing; golden would not cover ComplexCorrespondence")
	}

	doc := struct {
		Report     *qmatch.Report                 `json:"report"`
		Complex    []qmatch.ComplexCorrespondence `json:"complex"`
		Evaluation qmatch.Evaluation              `json:"evaluation"`
	}{report, complexes, eval}
	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "wire_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire format drifted from %s (run with -update if intentional)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

func TestReportJSONWireKeys(t *testing.T) {
	src, tgt := poPairXSD(t)
	report := qmatch.Match(src, tgt)
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"algorithm"`, `"correspondences"`, `"treeQoM"`, `"source"`, `"target"`, `"score"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("WriteJSON output missing wire key %s:\n%s", key, buf.String())
		}
	}
	back, err := qmatch.ReadReportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, report) {
		t.Fatal("JSON round trip lost data")
	}
}

// TestReadReportJSONLegacyKeys keeps old report files readable: Go's JSON
// decoding matches keys case-insensitively, so pre-wire-format files with
// capitalized field names still load.
func TestReadReportJSONLegacyKeys(t *testing.T) {
	legacy := `{
  "Algorithm": "hybrid",
  "Correspondences": [{"Source": "a", "Target": "b", "Score": 0.9}],
  "TreeQoM": 0.8
}`
	r, err := qmatch.ReadReportJSON(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if r.Algorithm != "hybrid" || r.TreeQoM != 0.8 ||
		len(r.Correspondences) != 1 || r.Correspondences[0].Source != "a" {
		t.Fatalf("legacy report misread: %+v", r)
	}
}
