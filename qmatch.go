// Package qmatch is a from-scratch Go implementation of QMatch, the hybrid
// XML Schema match algorithm of Claypool, Hegde and Tansalarak (ICDE 2005),
// together with the CUPID-style linguistic and structural baselines the
// paper evaluates against, an XML Schema parser, and the QoM (Quality of
// Match) taxonomy and weight model the algorithm is built on.
//
// The package is a thin façade over the implementation packages in
// internal/: parse (or build) two schemas, run Match, and inspect the
// returned Report.
//
//	src, _ := qmatch.ParseSchemaFile("po1.xsd")
//	tgt, _ := qmatch.ParseSchemaFile("po2.xsd")
//	report := qmatch.Match(src, tgt)
//	for _, c := range report.Correspondences {
//		fmt.Println(c)
//	}
//	fmt.Printf("schema QoM: %.2f\n", report.TreeQoM)
package qmatch

import (
	"fmt"
	"io"
	"os"
	"strings"

	"qmatch/internal/core"
	"qmatch/internal/linguistic"
	"qmatch/internal/match"
	"qmatch/internal/structural"
	"qmatch/internal/xmltree"
	"qmatch/internal/xsd"
)

// Schema is a parsed XML schema tree.
type Schema struct {
	root *xmltree.Node
}

// ParseSchema reads an XML Schema document and returns the schema rooted at
// its first global element declaration.
func ParseSchema(r io.Reader) (*Schema, error) {
	root, err := xsd.Parse(r)
	if err != nil {
		return nil, err
	}
	return &Schema{root: root}, nil
}

// ParseSchemaString is ParseSchema over a string.
func ParseSchemaString(s string) (*Schema, error) {
	return ParseSchema(strings.NewReader(s))
}

// ParseSchemaFile is ParseSchema over a file path.
func ParseSchemaFile(path string) (*Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("qmatch: %w", err)
	}
	defer f.Close()
	return ParseSchema(f)
}

// Name returns the label of the schema's root element.
func (s *Schema) Name() string { return s.root.Label }

// Size returns the number of elements (and attributes) in the schema.
func (s *Schema) Size() int { return s.root.Size() }

// MaxDepth returns the schema tree's maximum nesting depth.
func (s *Schema) MaxDepth() int { return s.root.MaxDepth() }

// Paths returns every element path in document order.
func (s *Schema) Paths() []string {
	var out []string
	s.root.Walk(func(n *xmltree.Node) bool {
		out = append(out, n.Path())
		return true
	})
	return out
}

// Dump renders an indented view of the schema tree.
func (s *Schema) Dump() string { return s.root.Dump() }

// XSD renders the schema back to an XML Schema document.
func (s *Schema) XSD() string { return xsd.Render(s.root) }

// Tree exposes the underlying schema tree for advanced use alongside the
// internal packages (examples, benchmarks, tooling inside this module).
func (s *Schema) Tree() *xmltree.Node { return s.root }

// FromTree wraps an existing schema tree.
func FromTree(root *xmltree.Node) *Schema { return &Schema{root: root} }

// Correspondence is one predicted element mapping. The JSON tags define
// the stable wire format shared by the command-line tools and services
// (see DESIGN.md); WriteJSON/ReadReportJSON round-trip it.
type Correspondence struct {
	Source string  `json:"source"`
	Target string  `json:"target"`
	Score  float64 `json:"score"`
}

// String renders "PO/OrderNo -> PurchaseOrder/OrderNo (0.93)".
func (c Correspondence) String() string {
	return fmt.Sprintf("%s -> %s (%.2f)", c.Source, c.Target, c.Score)
}

// Report is the outcome of matching two schemas. The JSON tags define the
// stable wire format shared by the command-line tools and services.
type Report struct {
	// Algorithm that produced the report ("hybrid", "linguistic",
	// "structural", "cupid").
	Algorithm string `json:"algorithm"`
	// Correspondences are the selected one-to-one element mappings,
	// sorted by descending score.
	Correspondences []Correspondence `json:"correspondences"`
	// TreeQoM is the overall match value of the two schema roots — the
	// "total match value presented to the user" of the paper.
	TreeQoM float64 `json:"treeQoM"`
	// Trace is the per-phase pipeline trace of this match. Only Engines
	// built with Observer.Tracing attach one; it is omitted from the wire
	// format otherwise.
	Trace *MatchTrace `json:"trace,omitempty"`
	// Rematch breaks down the copied-vs-rescored work of an incremental
	// re-match; only Engine.Rematch reports attach it.
	Rematch *RematchStats `json:"rematch,omitempty"`

	// state is the retained pair table of a WithRematchState compiled-path
	// match — the seed Engine.Rematch reuses.
	state *rematchState
}

// Match matches the source schema against the target schema with the
// hybrid QMatch algorithm (or a configured alternative) and returns the
// report. Option-less calls share one lazily-built default Engine (warm
// thesaurus, matcher pool and label cache are reused across calls); calls
// with options build a throwaway Engine — services with a fixed non-default
// configuration should build one Engine with NewEngine and reuse it. Match
// panics with the error NewEngine would return when the options are
// invalid (unknown algorithm, negative or all-zero weights, thresholds
// outside [0,1], negative parallelism).
func Match(src, tgt *Schema, opts ...Option) *Report {
	return engineFor(opts).Match(src, tgt)
}

// QoMBreakdown returns the full per-axis QoM of the two schema roots under
// the hybrid model: label, properties, level and children axis scores, the
// weighted value, and the taxonomy classification ("total exact", "total
// relaxed", "partial exact", "partial relaxed", "no match").
type QoMBreakdown struct {
	Label, Properties, Level, Children float64
	Value                              float64
	Class                              string
}

// QoM computes the hybrid QoM breakdown for two schemas. Option semantics
// are identical to Match, including the shared default Engine on
// option-less calls and the panic on invalid options.
func QoM(src, tgt *Schema, opts ...Option) QoMBreakdown {
	return engineFor(opts).QoM(src, tgt)
}

// ComplexCorrespondence maps one source element to a combination of
// sibling target elements (a 1:n split such as Name ↔ FirstName +
// LastName). The JSON tags define the stable wire format shared by the
// command-line tools and services.
type ComplexCorrespondence struct {
	Source  string   `json:"source"`
	Targets []string `json:"targets"`
	Score   float64  `json:"score"`
}

// String renders "Record/AuthorName -> {FirstName, LastName} (0.95)".
func (c ComplexCorrespondence) String() string {
	return match.ComplexCorrespondence{
		Source: c.Source, Targets: c.Targets, Score: c.Score,
	}.String()
}

// MatchComplex runs the 1:n complex-correspondence pass over the elements
// a 1:1 report left unmatched: source leaves that correspond to a
// combination of sibling target leaves (shared head token, qualifier
// coverage). Pass the Report of a prior Match call so already-explained
// elements are excluded; a nil report searches the whole schemas.
func MatchComplex(src, tgt *Schema, report *Report, opts ...Option) []ComplexCorrespondence {
	return engineFor(opts).MatchComplex(src, tgt, report)
}

// ExplainTop returns human-readable derivations of the n best pairs' QoM
// under the hybrid model: per-axis scores and kinds, weighted
// contributions, and the per-child best matches behind the children axis.
func ExplainTop(src, tgt *Schema, n int, opts ...Option) string {
	return engineFor(opts).ExplainTop(src, tgt, n)
}

// Evaluation mirrors the paper's match-quality measures for a report
// against a reference mapping. The JSON tags define the stable wire
// format shared by the command-line tools and services.
type Evaluation struct {
	TruePositives  int     `json:"truePositives"`
	FalsePositives int     `json:"falsePositives"`
	Missed         int     `json:"missed"`
	Precision      float64 `json:"precision"`
	Recall         float64 `json:"recall"`
	Overall        float64 `json:"overall"`
	F1             float64 `json:"f1"`
}

// Evaluate scores a report against the real matches, given as
// source-path/target-path pairs.
func Evaluate(r *Report, real [][2]string) Evaluation {
	gold := match.NewGold(real...)
	pred := make([]match.Correspondence, len(r.Correspondences))
	for i, c := range r.Correspondences {
		pred[i] = match.Correspondence{Source: c.Source, Target: c.Target, Score: c.Score}
	}
	e := match.Evaluate(pred, gold)
	return Evaluation{
		TruePositives:  e.TruePositives,
		FalsePositives: e.FalsePositives,
		Missed:         e.Missed,
		Precision:      e.Precision,
		Recall:         e.Recall,
		Overall:        e.Overall,
		F1:             e.F1,
	}
}

// interface guards: the three algorithms stay interchangeable.
var (
	_ match.Algorithm = (*core.Hybrid)(nil)
	_ match.Algorithm = (*linguistic.Matcher)(nil)
	_ match.Algorithm = (*structural.Matcher)(nil)
)
