// Command schemagen generates synthetic XML Schemas, optionally together
// with a perturbed variant and the gold-standard mapping between the two —
// ready-made match tasks for experimenting with the matchers at arbitrary
// scale.
//
// Usage:
//
//	schemagen -elements 200 -depth 5 > schema.xsd
//	schemagen -elements 200 -variant 0.3 -out pair   # writes pair.src.xsd,
//	                                                 # pair.tgt.xsd, pair.gold.tsv
//
// Flags:
//
//	-seed N          generation seed (default 1)
//	-elements N      number of elements (default 50)
//	-depth N         maximum nesting depth (default 4)
//	-children N      maximum fan-out (default 8)
//	-attrs RATIO     fraction of leaves generated as attributes (default 0.1)
//	-variant P       also derive a variant with mutation intensity P in [0,1]
//	-out PREFIX      write files PREFIX.src.xsd [PREFIX.tgt.xsd PREFIX.gold.tsv]
//	                 instead of printing to stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"qmatch/internal/synth"
	"qmatch/internal/xsd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "schemagen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("schemagen", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "generation seed")
	elements := fs.Int("elements", 50, "number of elements")
	depth := fs.Int("depth", 4, "maximum nesting depth")
	children := fs.Int("children", 8, "maximum fan-out")
	attrs := fs.Float64("attrs", 0.1, "fraction of leaves as attributes")
	variant := fs.Float64("variant", -1, "derive a variant with this mutation intensity")
	outPrefix := fs.String("out", "", "output file prefix")
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := synth.Generate(synth.Config{
		Seed:           *seed,
		Elements:       *elements,
		MaxDepth:       *depth,
		MaxChildren:    *children,
		AttributeRatio: *attrs,
	})
	srcXSD := xsd.Render(src)

	if *variant < 0 {
		if *outPrefix == "" {
			fmt.Fprint(out, srcXSD)
			return nil
		}
		return os.WriteFile(*outPrefix+".src.xsd", []byte(srcXSD), 0o644)
	}

	tgt, gold := synth.Derive(src, synth.Uniform(*seed+1, *variant))
	tgtXSD := xsd.Render(tgt)
	var goldTSV strings.Builder
	for _, c := range gold.List() {
		fmt.Fprintf(&goldTSV, "%s\t%s\n", c.Source, c.Target)
	}

	if *outPrefix == "" {
		fmt.Fprintln(out, "=== source schema ===")
		fmt.Fprint(out, srcXSD)
		fmt.Fprintln(out, "=== target schema ===")
		fmt.Fprint(out, tgtXSD)
		fmt.Fprintln(out, "=== gold standard (source-path TAB target-path) ===")
		fmt.Fprint(out, goldTSV.String())
		return nil
	}
	if err := os.WriteFile(*outPrefix+".src.xsd", []byte(srcXSD), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(*outPrefix+".tgt.xsd", []byte(tgtXSD), 0o644); err != nil {
		return err
	}
	return os.WriteFile(*outPrefix+".gold.tsv", []byte(goldTSV.String()), 0o644)
}
