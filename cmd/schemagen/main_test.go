package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qmatch/internal/xsd"
)

func TestRunSchemaOnly(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "solo")
	if err := run([]string{"-seed", "3", "-elements", "40", "-out", prefix}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(prefix + ".src.xsd")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := xsd.ParseString(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 40 {
		t.Fatalf("size = %d", tree.Size())
	}
}

func TestRunWithVariant(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "pair")
	if err := run([]string{"-seed", "5", "-elements", "60", "-variant", "0.3", "-out", prefix}, io.Discard); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(prefix + ".src.xsd")
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := os.ReadFile(prefix + ".tgt.xsd")
	if err != nil {
		t.Fatal(err)
	}
	gold, err := os.ReadFile(prefix + ".gold.tsv")
	if err != nil {
		t.Fatal(err)
	}
	srcTree, err := xsd.ParseString(string(src))
	if err != nil {
		t.Fatal(err)
	}
	tgtTree, err := xsd.ParseString(string(tgt))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(gold)), "\n")
	if len(lines) == 0 {
		t.Fatal("empty gold")
	}
	for _, line := range lines {
		parts := strings.Split(line, "\t")
		if len(parts) != 2 {
			t.Fatalf("bad gold line %q", line)
		}
		if srcTree.Find(parts[0]) == nil {
			t.Fatalf("gold source path %q not in source schema", parts[0])
		}
		if tgtTree.Find(parts[1]) == nil {
			t.Fatalf("gold target path %q not in target schema", parts[1])
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a")
	b := filepath.Join(dir, "b")
	for _, p := range []string{a, b} {
		if err := run([]string{"-seed", "9", "-elements", "30", "-out", p}, io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	da, _ := os.ReadFile(a + ".src.xsd")
	db, _ := os.ReadFile(b + ".src.xsd")
	if string(da) != string(db) {
		t.Fatal("same seed produced different output")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-elements", "abc"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seed", "2", "-elements", "20"}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := xsd.ParseString(out.String()); err != nil {
		t.Fatalf("stdout schema does not parse: %v", err)
	}
	out.Reset()
	if err := run([]string{"-seed", "2", "-elements", "20", "-variant", "0.2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "=== source schema ===") || !strings.Contains(s, "=== gold standard") {
		t.Fatalf("stdout pair output:\n%s", s)
	}
}
