// Command qbench regenerates every table and figure of the QMatch paper's
// evaluation (§5) from this repository's implementation.
//
// Usage:
//
//	qbench                 # run everything
//	qbench -table 1        # Table 1: schema characteristics
//	qbench -table 2        # Table 2: axis-weight sweep
//	qbench -figure 4       # Figure 4: runtime of the three algorithms
//	qbench -figure 5       # Figure 5: Overall quality per domain
//	qbench -figure 6       # Figure 6: manual vs found match counts
//	qbench -figure 9       # Figure 9: structure-only extreme case
//	qbench -ext scalability   # extension: runtime vs synthetic size
//	qbench -ext robustness    # extension: quality vs perturbation
//	qbench -ext ablation      # extension: label-gate + selection ablations
//	qbench -ext composite     # extension: QMatch vs CUPID vs composite
//	qbench -ext instances     # extension: instance evidence under renames
//	qbench -ext parallel      # extension: MatchAll batch scaling vs workers
//	qbench -ext pairtable     # extension: pair-table fill vs interned pairs
//	qbench -ext compiled      # extension: re-parse per match vs compiled artifacts
//	qbench -ext rematch       # extension: incremental re-match vs full refill
//	qbench -reps N         # repetitions for runtime measurements (default 3)
//	qbench -fast           # skip the slow experiments (Figure 4's protein
//	                       # workload and the full Table 2 sweep)
//	qbench -json FILE      # with -ext pairtable: also write rows as JSON
//	qbench -metrics FILE   # run an instrumented Engine over the corpus
//	                       # pairs and write its metrics snapshot as JSON
//	qbench -cpuprofile FILE   # write a CPU profile of the run
//	qbench -memprofile FILE   # write a heap profile at the end of the run
//
// The profiling flags turn any experiment into a profiling target for the
// matcher itself — see README.md "Profiling the matcher".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"qmatch"
	"qmatch/internal/bench"
	"qmatch/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qbench", flag.ContinueOnError)
	table := fs.Int("table", 0, "regenerate only this table (1 or 2)")
	figure := fs.Int("figure", 0, "regenerate only this figure (4, 5, 6 or 9)")
	ext := fs.String("ext", "", "extension experiment: scalability, robustness or ablation")
	reps := fs.Int("reps", 3, "repetitions for runtime measurements")
	fast := fs.Bool("fast", false, "skip the slowest experiments")
	jsonOut := fs.String("json", "", "with -ext pairtable: also write the rows as JSON to this file")
	gate := fs.String("gate", "", "with -ext pairtable: fail if any workload's best_ms regresses >25% vs this baseline JSON")
	metricsOut := fs.String("metrics", "", "write an instrumented-Engine metrics snapshot as JSON to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	if *metricsOut != "" {
		if err := writeMetricsSnapshot(*metricsOut, *fast); err != nil {
			return err
		}
	}

	if *ext != "" {
		switch *ext {
		case "scalability":
			sizes := []int{50, 100, 200, 400, 800}
			if *fast {
				sizes = sizes[:3]
			}
			fmt.Fprint(out, bench.FormatScalability(bench.Scalability(sizes, *reps)))
		case "robustness":
			fmt.Fprint(out, bench.FormatRobustness(
				bench.Robustness(120, []float64{0, 0.1, 0.2, 0.3, 0.5, 0.7})))
		case "ablation":
			fmt.Fprint(out, bench.FormatAblation("label-evidence selection gate",
				bench.AblationLabelGate()))
			fmt.Fprintln(out)
			fmt.Fprint(out, bench.FormatAblation("greedy vs optimal (Hungarian) selection",
				bench.AblationSelection()))
		case "composite":
			fmt.Fprint(out, bench.FormatComparison(bench.CompositeComparison()))
		case "instances":
			rows, err := bench.InstanceBlend(40, []float64{0, 0.3, 0.6, 1})
			if err != nil {
				return err
			}
			fmt.Fprint(out, bench.FormatInstanceBlend(rows))
		case "parallel":
			schemas, elements := 6, 150
			if *fast {
				schemas, elements = 4, 80
			}
			rows, err := bench.ParallelScaling(schemas, elements, []int{2, 4, 8})
			if err != nil {
				return err
			}
			fmt.Fprint(out, bench.FormatParallel(rows))
		case "compiled":
			pairs := dataset.Pairs()
			if *fast {
				pairs = pairs[:3] // drop the 3984-element protein workload
			}
			rows, err := bench.CompiledLatency(pairs, *reps)
			if err != nil {
				return err
			}
			fmt.Fprint(out, bench.FormatCompiled(rows))
		case "rematch":
			pairs := dataset.Pairs()
			if *fast {
				pairs = pairs[:3] // drop the 3984-element protein workload
			}
			fmt.Fprint(out, bench.FormatRematch(bench.Rematch(pairs, *reps)))
		case "pairtable":
			pairs := dataset.Pairs()
			if *fast {
				pairs = pairs[:3] // drop the 3984-element protein workload
			}
			rows := bench.PairTableFor(pairs, *reps)
			fmt.Fprint(out, bench.FormatPairTable(rows))
			if *jsonOut != "" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					return err
				}
				if err := bench.WritePairTableJSON(f, rows); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
			if *gate != "" {
				f, err := os.Open(*gate)
				if err != nil {
					return err
				}
				baseline, err := bench.ReadPairTableJSON(f)
				f.Close()
				if err != nil {
					return err
				}
				if err := bench.GatePairTable(baseline, rows, 0.25); err != nil {
					return err
				}
				fmt.Fprintf(out, "perf gate: within 25%% of %s\n", *gate)
			}
		default:
			return fmt.Errorf("unknown extension %q", *ext)
		}
		return nil
	}

	all := *table == 0 && *figure == 0
	section := func(f func() error) error {
		start := time.Now()
		if err := f(); err != nil {
			return err
		}
		fmt.Fprintf(out, "[%s]\n\n", time.Since(start).Round(time.Millisecond))
		return nil
	}

	if all || *table == 1 {
		if err := section(func() error {
			fmt.Fprint(out, bench.FormatTable1())
			return nil
		}); err != nil {
			return err
		}
	}
	if all || *table == 2 {
		if err := section(func() error {
			pairs := []dataset.Pair{dataset.POPair(), dataset.BookPair(), dataset.DCMDPair()}
			if *fast {
				pairs = pairs[:2]
			}
			fmt.Fprint(out, bench.FormatTable2(bench.Table2WeightSweep(pairs), 10))
			return nil
		}); err != nil {
			return err
		}
	}
	if all || *figure == 4 {
		if err := section(func() error {
			pairs := dataset.Pairs()
			if *fast {
				pairs = pairs[:3] // drop the 3984-element protein workload
			}
			fmt.Fprint(out, bench.FormatFigure4(bench.Figure4RuntimeFor(pairs, *reps)))
			return nil
		}); err != nil {
			return err
		}
	}
	if all || *figure == 5 {
		if err := section(func() error {
			fmt.Fprint(out, bench.FormatFigure5(bench.Figure5Quality()))
			return nil
		}); err != nil {
			return err
		}
	}
	if all || *figure == 6 {
		if err := section(func() error {
			fmt.Fprint(out, bench.FormatFigure6(bench.Figure6Counts()))
			return nil
		}); err != nil {
			return err
		}
	}
	if all || *figure == 9 {
		if err := section(func() error {
			fmt.Fprint(out, bench.FormatFigure9(bench.Figure9Extremes()))
			return nil
		}); err != nil {
			return err
		}
	}
	if !all && *table != 0 && *table != 1 && *table != 2 {
		return fmt.Errorf("unknown table %d", *table)
	}
	if !all && *figure != 0 && *figure != 4 && *figure != 5 && *figure != 6 && *figure != 9 {
		return fmt.Errorf("unknown figure %d", *figure)
	}
	return nil
}

// writeMetricsSnapshot matches every corpus pair on one metrics-collecting
// Engine and writes its registry snapshot as JSON — the machine-readable
// observability artifact CI uploads next to BENCH_pairtable.json.
func writeMetricsSnapshot(path string, fast bool) error {
	eng, err := qmatch.NewEngine(qmatch.WithObserver(qmatch.Observer{Metrics: true}))
	if err != nil {
		return err
	}
	pairs := dataset.Pairs()
	if fast {
		pairs = pairs[:3] // drop the 3984-element protein workload
	}
	for _, p := range pairs {
		eng.Match(qmatch.FromTree(p.Source), qmatch.FromTree(p.Target))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := eng.WriteMetricsJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// startProfiles begins CPU profiling and arranges the heap profile, per the
// given file paths (either may be empty). The returned stop function ends
// the CPU profile and snapshots the heap; profile write failures at stop
// time are reported on stderr since the experiment itself already ran.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "qbench: cpu profile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "qbench: heap profile:", err)
				return
			}
			runtime.GC() // settle allocations so the snapshot reflects live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "qbench: heap profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "qbench: heap profile:", err)
			}
		}
	}, nil
}
