package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleSections(t *testing.T) {
	cases := map[string][]string{
		"Table 1.":  {"-table", "1"},
		"Figure 6.": {"-figure", "6"},
		"Figure 9.": {"-figure", "9"},
	}
	for want, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if !strings.Contains(out.String(), want) {
			t.Errorf("%v: missing %q:\n%s", args, want, out.String())
		}
	}
}

func TestRunFigure4Fast(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-figure", "4", "-fast", "-reps", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Figure 4.") || !strings.Contains(s, "DCMD") {
		t.Fatalf("output:\n%s", s)
	}
	if strings.Contains(s, "Protein") {
		t.Fatal("-fast should skip the protein workload")
	}
}

func TestRunTable2Fast(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "2", "-fast"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 2.") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunExtensions(t *testing.T) {
	cases := map[string][]string{
		"Extension: runtime":       {"-ext", "scalability", "-fast", "-reps", "1"},
		"Ablation: label-evidence": {"-ext", "ablation"},
	}
	for want, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if !strings.Contains(out.String(), want) {
			t.Errorf("%v: missing %q:\n%s", args, want, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-table", "7"},
		{"-figure", "2"},
		{"-ext", "bogus"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRunMetricsSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var out bytes.Buffer
	if err := run([]string{"-ext", "pairtable", "-fast", "-reps", "1", "-metrics", path}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	// Three -fast corpus pairs matched on the instrumented Engine.
	for _, want := range []string{
		`"qmatch_matches_total": 3`,
		`"qmatch_phase_ns_total{phase=\"pairtable\"}"`,
		`"qmatch_match_duration_seconds"`,
		`"qmatch_phase_duration_seconds{phase=\"pairtable\"}"`,
		`"qmatch_label_cache_hits_total"`,
		// Every non-empty histogram carries the p50/p90/p99 summary.
		`"percentiles"`,
		`"p50"`, `"p90"`, `"p99"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("snapshot missing %q:\n%s", want, s)
		}
	}
}
