// Command qmatchd serves the matcher over HTTP: a long-running, hardened
// service around a shared qmatch.Engine for deployments that match many
// schema pairs from many clients.
//
// Usage:
//
//	qmatchd [flags]
//
// Endpoints:
//
//	POST   /v1/match        match one schema pair; response is the Report
//	                        wire format, byte-identical to the qmatch CLI's
//	                        -format json output
//	POST   /v1/matchall     match a sources×targets grid in one request
//	POST   /v1/rank         rank a corpus against a query schema
//	PUT    /v1/schemas/{id} compile and register a schema in the registry
//	GET    /v1/schemas/{id} inspect one registered schema
//	DELETE /v1/schemas/{id} unregister a schema
//	GET    /v1/schemas      list the registry
//	POST   /v1/search       rank the registered corpus against a query
//	                        schema (top-K prefilter + full QoM)
//	POST   /v1/jobs         submit an async batch-match job (sharded
//	                        MatchAll over inline or registered schemas)
//	GET    /v1/jobs         list retained jobs
//	GET    /v1/jobs/{id}    poll job progress (?shards=1, ?trace=1)
//	GET    /v1/jobs/{id}/results  stream completed cells as NDJSON (?after=N)
//	DELETE /v1/jobs/{id}    cancel an active job / forget a finished one
//	GET    /healthz         liveness (503 while draining)
//	GET    /metrics         Prometheus text: Engine match metrics + HTTP metrics
//
// Flags:
//
//	-addr HOST:PORT                           listen address (default 127.0.0.1:8764)
//	-algorithm hybrid|linguistic|structural|cupid   default matcher (default hybrid)
//	-threshold FLOAT                          selection threshold (default per algorithm)
//	-weights WL,WP,WH,WC                      hybrid axis weights
//	-parallel N                               worker bound (0 = GOMAXPROCS)
//	-config FILE                              JSON matcher configuration file
//	-thesaurus FILE                           merge custom relations (TSV)
//	-max-concurrent N                         matches running at once (0 = GOMAXPROCS)
//	-max-queue N                              requests queued for a slot (-1 = 2×max-concurrent)
//	-max-body BYTES                           request body cap (default 4194304)
//	-max-pairs N                              per-request schema-pair cap (default 4096)
//	-timeout DUR                              default per-request deadline (default 10s)
//	-max-timeout DUR                          clamp on request-supplied deadlines (default 60s)
//	-registry DIR                             persist registered schemas as artifact blobs
//	                                          in DIR (default: in-memory only)
//	-max-schemas N                            registry capacity (default 4096)
//	-debug-addr HOST:PORT                     admin debug plane: net/http/pprof, expvar,
//	                                          /debug/requests (in-flight table) and
//	                                          /debug/slow (slowest requests with traces);
//	                                          keep it loopback-only (default: disabled)
//	-slow-requests N                          /debug/slow ring size (default 32)
//	-max-jobs N                               completed async jobs retained for
//	                                          polling (default 64, LRU-evicted)
//	-job-workers N                            async job shard workers
//	                                          (default max(1, max-concurrent/2))
//	-job-shard-cost N                         pair-table cost budget of one job
//	                                          shard in srcNodes×tgtNodes units
//	                                          (default 1048576)
//	-job-retries N                            re-dispatches of one failed shard
//	                                          before the job fails (default 3)
//	-max-job-cells N                          per-job source×target grid cap
//	                                          (default 65536)
//	-drain DUR                                shutdown drain budget (default 15s)
//	-log text|json                            access/lifecycle log format (default text)
//	-quiet                                    disable logging
//
// qmatchd shuts down gracefully on SIGINT/SIGTERM: /healthz flips to 503,
// new match requests are refused, and in-flight matches drain within the
// -drain budget before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"qmatch"
	"qmatch/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "qmatchd:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until ctx is cancelled (signal) or the
// listener fails; out receives the human-readable lifecycle lines (the
// structured logs go there too). It returns nil on a clean drained
// shutdown.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qmatchd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "127.0.0.1:8764", "listen address")
	algorithm := fs.String("algorithm", "hybrid", "default matcher: hybrid, linguistic, structural or cupid")
	threshold := fs.Float64("threshold", -1, "selection threshold override")
	weights := fs.String("weights", "", "hybrid axis weights as WL,WP,WH,WC")
	parallel := fs.Int("parallel", 0, "worker bound (0 = GOMAXPROCS)")
	configPath := fs.String("config", "", "JSON matcher configuration file")
	thesaurusPath := fs.String("thesaurus", "", "file with custom thesaurus relations")
	maxConcurrent := fs.Int("max-concurrent", 0, "matches running at once (0 = GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", -1, "requests queued for a match slot (-1 = 2x max-concurrent)")
	maxBody := fs.Int64("max-body", 4<<20, "request body size cap in bytes")
	maxPairs := fs.Int("max-pairs", 4096, "per-request schema-pair cap")
	timeout := fs.Duration("timeout", 10*time.Second, "default per-request deadline")
	maxTimeout := fs.Duration("max-timeout", 60*time.Second, "clamp on request-supplied deadlines")
	registryDir := fs.String("registry", "", "persist registered schemas as artifact blobs in this directory")
	maxSchemas := fs.Int("max-schemas", 0, "registry capacity (0 = default 4096)")
	debugAddr := fs.String("debug-addr", "", "listen address of the admin debug plane (pprof, expvar, /debug/requests, /debug/slow); empty disables it")
	slowRequests := fs.Int("slow-requests", 0, "slowest completed requests kept with full traces for /debug/slow (0 = default 32, negative disables)")
	maxJobs := fs.Int("max-jobs", 0, "completed async jobs retained for polling (0 = default 64)")
	jobWorkers := fs.Int("job-workers", 0, "async job shard workers (0 = half of max-concurrent)")
	jobShardCost := fs.Int64("job-shard-cost", 0, "pair-table cost budget of one job shard (0 = default 1048576)")
	jobRetries := fs.Int("job-retries", 0, "re-dispatches of one failed job shard (0 = default 3)")
	maxJobCells := fs.Int("max-job-cells", 0, "per-job source x target grid cap (0 = default 65536)")
	drain := fs.Duration("drain", 15*time.Second, "shutdown drain budget")
	logFormat := fs.String("log", "text", "log format: text or json")
	quiet := fs.Bool("quiet", false, "disable logging")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}

	logger, err := buildLogger(out, *logFormat, *quiet)
	if err != nil {
		return err
	}
	opts, err := buildOptions(*configPath, *algorithm, *threshold, *weights, *parallel, *thesaurusPath)
	if err != nil {
		return err
	}
	s, err := serve.New(serve.Config{
		Options:        opts,
		Logger:         logger,
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
		MaxBodyBytes:   *maxBody,
		MaxPairs:       *maxPairs,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		RegistryDir:    *registryDir,
		MaxSchemas:     *maxSchemas,
		SlowRequests:   *slowRequests,
		MaxJobs:        *maxJobs,
		JobWorkers:     *jobWorkers,
		JobShardCost:   *jobShardCost,
		JobRetries:     *jobRetries,
		MaxJobCells:    *maxJobCells,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(out, "qmatchd listening on http://%s\n", ln.Addr())

	// The debug plane listens separately (typically loopback-only): pprof
	// and the request tables are operator surfaces, not API surface.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		debugSrv = &http.Server{
			Handler:           s.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		fmt.Fprintf(out, "qmatchd debug plane on http://%s\n", dln.Addr())
		go func() { _ = debugSrv.Serve(dln) }()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Drain: stop advertising healthy, refuse new matches, then let
	// http.Server.Shutdown wait for in-flight handlers within the budget.
	s.Drain()
	fmt.Fprintf(out, "qmatchd draining (budget %s)\n", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if debugSrv != nil {
		_ = debugSrv.Shutdown(shutdownCtx)
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "qmatchd stopped")
	return nil
}

func buildLogger(out io.Writer, format string, quiet bool) (*slog.Logger, error) {
	if quiet {
		return nil, nil
	}
	hopts := &slog.HandlerOptions{Level: slog.LevelInfo}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(out, hopts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(out, hopts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// buildOptions resolves the matcher configuration the same way the qmatch
// CLI does: config file first, explicit flags override it.
func buildOptions(configPath, algorithm string, threshold float64, weights string, parallel int, thesaurusPath string) ([]qmatch.Option, error) {
	var opts []qmatch.Option
	if configPath != "" {
		fromFile, err := qmatch.LoadOptionsFile(configPath)
		if err != nil {
			return nil, err
		}
		opts = append(opts, fromFile...)
	}
	alg, err := qmatch.ParseAlgorithm(algorithm)
	if err != nil {
		return nil, err
	}
	opts = append(opts, qmatch.WithAlgorithm(alg))
	if threshold >= 0 {
		opts = append(opts, qmatch.WithSelectionThreshold(threshold))
	}
	if weights != "" {
		w, err := parseWeights(weights)
		if err != nil {
			return nil, err
		}
		opts = append(opts, qmatch.WithWeights(w))
	}
	if parallel != 0 {
		opts = append(opts, qmatch.WithParallelism(parallel))
	}
	if thesaurusPath != "" {
		th, err := qmatch.LoadThesaurusFile(thesaurusPath)
		if err != nil {
			return nil, err
		}
		opts = append(opts, qmatch.WithThesaurus(th))
	}
	return opts, nil
}

func parseWeights(s string) (qmatch.Weights, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return qmatch.Weights{}, fmt.Errorf("weights must be WL,WP,WH,WC, got %q", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return qmatch.Weights{}, fmt.Errorf("invalid weight %q", p)
		}
		vals[i] = v
	}
	return qmatch.Weights{Label: vals[0], Properties: vals[1], Level: vals[2], Children: vals[3]}, nil
}
