package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read the daemon's output while run() writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenLine = regexp.MustCompile(`qmatchd listening on (http://[^\s]+)`)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus the cancel that triggers graceful shutdown and the channel
// carrying run's result.
func startDaemon(t *testing.T, extraArgs ...string) (url string, stop context.CancelFunc, done chan error, out *syncBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out = &syncBuffer{}
	args := append([]string{"-addr", "127.0.0.1:0", "-quiet"}, extraArgs...)
	done = make(chan error, 1)
	go func() { done <- run(ctx, args, out) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			return m[1], cancel, done, out
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never announced its address; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The full lifecycle: start on an ephemeral port, serve health and one
// match, drain cleanly on signal (ctx cancel) with exit status nil.
func TestDaemonLifecycle(t *testing.T) {
	url, stop, done, out := startDaemon(t)
	defer stop()

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	matchReq := `{
  "source": {"data": "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\"><xs:element name=\"PO\"/></xs:schema>"},
  "target": {"data": "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\"><xs:element name=\"PurchaseOrder\"/></xs:schema>"}
}`
	resp, err = http.Post(url+"/v1/match", "application/json", strings.NewReader(matchReq))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match: %d %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"algorithm": "hybrid"`)) {
		t.Errorf("match response missing report fields: %s", body)
	}

	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte("qmatch_matches_total 1")) {
		t.Errorf("metrics missing match counter:\n%s", body)
	}

	stop() // deliver the "signal"
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil after graceful drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down within 5s")
	}
	if !strings.Contains(out.String(), "qmatchd stopped") {
		t.Errorf("missing stop line in output:\n%s", out.String())
	}
}

// Daemon flags configure the default engine, mirroring the qmatch CLI.
func TestDaemonEngineFlags(t *testing.T) {
	url, stop, done, _ := startDaemon(t, "-algorithm", "linguistic", "-threshold", "0.5")
	defer stop()
	matchReq := `{
  "source": {"data": "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\"><xs:element name=\"PO\"/></xs:schema>"},
  "target": {"data": "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\"><xs:element name=\"PO\"/></xs:schema>"}
}`
	resp, err := http.Post(url+"/v1/match", "application/json", strings.NewReader(matchReq))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match: %d %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"algorithm": "linguistic"`)) {
		t.Errorf("-algorithm flag ignored: %s", body)
	}
	stop()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// Bad invocations fail fast with an error, not a hung server.
func TestDaemonBadFlags(t *testing.T) {
	cases := [][]string{
		{"-algorithm", "psychic"},
		{"-weights", "1,2"},
		{"-log", "yaml"},
		{"-addr", "127.0.0.1:0", "stray-arg"},
		{"-config", "/nonexistent/config.json"},
	}
	for _, args := range cases {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		err := run(ctx, args, io.Discard)
		cancel()
		if err == nil {
			t.Errorf("run(%q) = nil, want error", args)
		}
	}
}

func TestDaemonListenError(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-addr", "256.0.0.1:99999", "-quiet"}, io.Discard); err == nil {
		t.Error("bad listen address accepted")
	}
}

func TestParseWeights(t *testing.T) {
	w, err := parseWeights("0.4,0.2,0.2,0.2")
	if err != nil {
		t.Fatal(err)
	}
	if w.Label != 0.4 || w.Properties != 0.2 || w.Level != 0.2 || w.Children != 0.2 {
		t.Errorf("parsed %+v", w)
	}
	for _, bad := range []string{"", "1,2,3", "a,b,c,d", "-1,0,0,0"} {
		if _, err := parseWeights(bad); err == nil {
			t.Errorf("parseWeights(%q) accepted", bad)
		}
	}
}
