package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qmatch/internal/serve"
)

func xsd(name string) string {
	return `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="` + name + `">
    <xs:complexType><xs:sequence>
      <xs:element name="name" type="xs:string"/>
      <xs:element name="price" type="xs:decimal"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>`
}

// startServer runs a full qmatchd handler on an httptest listener.
func startServer(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(serve.Config{JobWorkers: 2})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func writeSchema(t *testing.T, dir, name, doc string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSubmitWaitResultsAndList(t *testing.T) {
	_, ts := startServer(t)
	dir := t.TempDir()
	src := writeSchema(t, dir, "src.xsd", xsd("item"))
	tgt := writeSchema(t, dir, "tgt.xsd", xsd("product"))

	var out strings.Builder
	err := run([]string{"-server", ts.URL, "submit",
		"-source", src, "-target", tgt, "-target", src, "-wait", "-poll", "10ms"}, &out)
	if err != nil {
		t.Fatalf("submit -wait: %v\n%s", err, out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "completed") || !strings.Contains(last, "cells 2/2") {
		t.Fatalf("final progress line = %q, want completed with cells 2/2", last)
	}
	id := strings.Fields(last)[0]

	var res strings.Builder
	if err := run([]string{"-server", ts.URL, "results", id}, &res); err != nil {
		t.Fatalf("results: %v", err)
	}
	got := strings.Split(strings.TrimSpace(res.String()), "\n")
	if len(got) != 3 { // 2 cells + trailer
		t.Fatalf("results stream has %d lines, want 3:\n%s", len(got), res.String())
	}
	if !strings.Contains(got[2], `"done":true`) {
		t.Fatalf("missing trailer: %q", got[2])
	}

	// -after resumes past already-received cells.
	var resumed strings.Builder
	if err := run([]string{"-server", ts.URL, "results", "-after", "1", id}, &resumed); err != nil {
		t.Fatalf("results -after: %v", err)
	}
	if n := len(strings.Split(strings.TrimSpace(resumed.String()), "\n")); n != 2 {
		t.Fatalf("resumed stream has %d lines, want 2:\n%s", n, resumed.String())
	}

	var list strings.Builder
	if err := run([]string{"-server", ts.URL, "list"}, &list); err != nil {
		t.Fatalf("list: %v", err)
	}
	if !strings.Contains(list.String(), id) {
		t.Fatalf("list output %q missing job %s", list.String(), id)
	}

	// cancel on a terminal job forgets it; a second status poll is 404.
	var cancel strings.Builder
	if err := run([]string{"-server", ts.URL, "cancel", id}, &cancel); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if err := run([]string{"-server", ts.URL, "status", id}, &cancel); err == nil {
		t.Fatal("status after forget: want error, got nil")
	}
}

func TestSubmitRegistryRefsAndStatusShards(t *testing.T) {
	_, ts := startServer(t)
	// Register a schema so -source-id resolves.
	body, err := json.Marshal(map[string]any{"schema": map[string]string{"data": xsd("order")}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/schemas/order", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT schema: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT schema: status %d", resp.StatusCode)
	}

	dir := t.TempDir()
	tgt := writeSchema(t, dir, "tgt.xsd", xsd("invoice"))
	var out strings.Builder
	err = run([]string{"-server", ts.URL, "submit",
		"-source-id", "order", "-target", tgt, "-wait", "-poll", "10ms"}, &out)
	if err != nil {
		t.Fatalf("submit registry ref: %v\n%s", err, out.String())
	}
	id := strings.Fields(strings.TrimSpace(out.String()))[0]

	var status strings.Builder
	if err := run([]string{"-server", ts.URL, "status", "-shards", id}, &status); err != nil {
		t.Fatalf("status -shards: %v", err)
	}
	if !strings.Contains(status.String(), "shard 0") {
		t.Fatalf("status -shards output missing shard detail:\n%s", status.String())
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := startServer(t)
	if err := run([]string{"-server", ts.URL, "submit"}, &strings.Builder{}); err == nil {
		t.Fatal("submit with no schemas: want error")
	}
	if err := run([]string{"-server", ts.URL, "nope"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown subcommand: want error")
	}
	if err := run([]string{"-server", ts.URL, "status", "missing"}, &strings.Builder{}); err == nil {
		t.Fatal("status of unknown job: want error")
	}
}
