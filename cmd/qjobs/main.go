// Command qjobs drives qmatchd's asynchronous job API from the command
// line: submit a sharded batch-match job, poll its progress, stream its
// results, cancel it.
//
// Usage:
//
//	qjobs [-server URL] submit [-source FILE|-source-id ID]...
//	                           [-target FILE|-target-id ID]...
//	                           [-algorithm ALG] [-threshold T]
//	                           [-wait [-poll DUR]]       submit a job
//	qjobs [-server URL] status [-shards] ID              poll one job
//	qjobs [-server URL] results [-after N] ID            stream NDJSON results
//	qjobs [-server URL] cancel ID                        cancel / forget a job
//	qjobs [-server URL] list                             list retained jobs
//
// Schema files parse server-side by extension: .xsd (XML Schema), .dtd
// (DTD), .xml (schema inference); -source-id/-target-id reference schemas
// already registered with PUT /v1/schemas/{id}. Sources and targets mix
// freely, and flags repeat: every -source/-source-id adds one grid row,
// every -target/-target-id one column.
//
// With -wait, submit polls until the job reaches a terminal state and
// exits non-zero unless it completed. results writes the NDJSON stream
// verbatim to stdout — one {"cell","source","target","report"} line per
// finished cell, then a {"done":true,...} trailer; after a disconnect,
// resume with -after set to the number of report lines already received.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"time"

	"qmatch/internal/jobs"
	"qmatch/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qjobs:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: qjobs [-server URL] submit|status|results|cancel|list ... (run with a subcommand)")
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qjobs", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	server := fs.String("server", "http://127.0.0.1:8764", "qmatchd base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return usage()
	}
	c := &client{base: strings.TrimRight(*server, "/")}
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "submit":
		return cmdSubmit(c, rest, out)
	case "status":
		return cmdStatus(c, rest, out)
	case "results":
		return cmdResults(c, rest, out)
	case "cancel":
		return cmdCancel(c, rest, out)
	case "list":
		return cmdList(c, rest, out)
	default:
		return fmt.Errorf("unknown subcommand %q: %w", cmd, usage())
	}
}

// client wraps the handful of qmatchd calls the subcommands make,
// translating non-2xx responses into the server's error message.
type client struct {
	base string
	http http.Client
}

// do performs one request; when into is non-nil the 2xx body is decoded
// into it, otherwise the caller receives the open body to stream.
func (c *client) do(method, path string, body, into any) (io.ReadCloser, error) {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = strings.NewReader(string(raw))
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		defer resp.Body.Close()
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return nil, fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return nil, fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	if into == nil {
		return resp.Body, nil
	}
	defer resp.Body.Close()
	return nil, json.NewDecoder(resp.Body).Decode(into)
}

// multiFlag collects a repeatable string flag in order.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// refFlags builds one grid side from interleaved file and registry-id
// flags. Files ship inline with the format the server infers from the
// extension qregistry uses.
func loadRefs(files, ids multiFlag) ([]serve.JobSchemaRef, error) {
	refs := make([]serve.JobSchemaRef, 0, len(files)+len(ids))
	for _, path := range files {
		var format string
		switch strings.ToLower(filepath.Ext(path)) {
		case ".xsd":
			format = "xsd"
		case ".dtd":
			format = "dtd"
		case ".xml":
			format = "xml"
		default:
			return nil, fmt.Errorf("%s: unknown schema extension (want .xsd, .dtd or .xml)", path)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		refs = append(refs, serve.JobSchemaRef{
			Schema: &serve.SchemaInput{Format: format, Data: string(data)},
		})
	}
	for _, id := range ids {
		refs = append(refs, serve.JobSchemaRef{ID: id})
	}
	return refs, nil
}

func cmdSubmit(c *client, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qjobs submit", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var srcFiles, srcIDs, tgtFiles, tgtIDs multiFlag
	fs.Var(&srcFiles, "source", "source schema file (repeatable)")
	fs.Var(&srcIDs, "source-id", "registered source schema id (repeatable)")
	fs.Var(&tgtFiles, "target", "target schema file (repeatable)")
	fs.Var(&tgtIDs, "target-id", "registered target schema id (repeatable)")
	algorithm := fs.String("algorithm", "", "matcher override: hybrid, linguistic, structural or cupid")
	threshold := fs.Float64("threshold", -1, "selection threshold override")
	wait := fs.Bool("wait", false, "poll until the job reaches a terminal state")
	poll := fs.Duration("poll", 500*time.Millisecond, "poll interval with -wait")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	req := serve.JobSubmitRequest{}
	var err error
	if req.Sources, err = loadRefs(srcFiles, srcIDs); err != nil {
		return err
	}
	if req.Targets, err = loadRefs(tgtFiles, tgtIDs); err != nil {
		return err
	}
	if len(req.Sources) == 0 || len(req.Targets) == 0 {
		return fmt.Errorf("need at least one -source/-source-id and one -target/-target-id")
	}
	req.Algorithm = *algorithm
	if *threshold >= 0 {
		req.Threshold = threshold
	}
	var job serve.JobStatusResponse
	if _, err := c.do(http.MethodPost, "/v1/jobs", req, &job); err != nil {
		return err
	}
	printProgress(out, job.Progress)
	if !*wait {
		return nil
	}
	for !job.Status.Terminal() {
		time.Sleep(*poll)
		if _, err := c.do(http.MethodGet, "/v1/jobs/"+url.PathEscape(job.ID), nil, &job); err != nil {
			return err
		}
		printProgress(out, job.Progress)
	}
	if job.Status != jobs.StatusCompleted {
		return fmt.Errorf("job %s %s: %s", job.ID, job.Status, job.Error)
	}
	return nil
}

func printProgress(out io.Writer, p jobs.Progress) {
	fmt.Fprintf(out, "%s %-9s cells %d/%d shards %d/%d retries %d\n",
		p.ID, p.Status, p.CompletedCells, p.Cells, p.ShardsDone, p.ShardsTotal, p.Retries)
}

func cmdStatus(c *client, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qjobs status", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	shards := fs.Bool("shards", false, "include per-shard detail")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: qjobs status [-shards] ID")
	}
	path := "/v1/jobs/" + url.PathEscape(fs.Arg(0))
	if *shards {
		path += "?shards=1"
	}
	var job serve.JobStatusResponse
	if _, err := c.do(http.MethodGet, path, nil, &job); err != nil {
		return err
	}
	printProgress(out, job.Progress)
	if job.Error != "" {
		fmt.Fprintf(out, "error: %s\n", job.Error)
	}
	for _, sh := range job.Shards {
		fmt.Fprintf(out, "  shard %-3d cells [%d,%d) cost %-8d %-8s attempts %d\n",
			sh.Index, sh.Start, sh.End, sh.Cost, sh.Status, sh.Attempts)
	}
	return nil
}

func cmdResults(c *client, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qjobs results", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	after := fs.Int("after", 0, "skip the first N cells (resume a cut stream)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: qjobs results [-after N] ID")
	}
	path := fmt.Sprintf("/v1/jobs/%s/results", url.PathEscape(fs.Arg(0)))
	if *after > 0 {
		path += fmt.Sprintf("?after=%d", *after)
	}
	body, err := c.do(http.MethodGet, path, nil, nil)
	if err != nil {
		return err
	}
	defer body.Close()
	_, err = io.Copy(out, body)
	return err
}

func cmdCancel(c *client, args []string, out io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: qjobs cancel ID")
	}
	var job serve.JobStatusResponse
	if _, err := c.do(http.MethodDelete, "/v1/jobs/"+url.PathEscape(args[0]), nil, &job); err != nil {
		return err
	}
	printProgress(out, job.Progress)
	return nil
}

func cmdList(c *client, args []string, out io.Writer) error {
	if len(args) != 0 {
		return fmt.Errorf("usage: qjobs list")
	}
	var resp serve.JobListResponse
	if _, err := c.do(http.MethodGet, "/v1/jobs", nil, &resp); err != nil {
		return err
	}
	for _, p := range resp.Jobs {
		printProgress(out, p)
	}
	return nil
}
