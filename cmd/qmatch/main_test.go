package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qmatch/internal/dataset"
	"qmatch/internal/xsd"
)

func TestRunBuiltinPair(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-builtin", "-qom", "PO1", "PO2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"algorithm: hybrid",
		"schema QoM:",
		"PO/OrderNo -> PurchaseOrder/OrderNo (1.00)",
		"QoM breakdown:",
		`class="total relaxed"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunFiles(t *testing.T) {
	dir := t.TempDir()
	srcPath := filepath.Join(dir, "a.xsd")
	tgtPath := filepath.Join(dir, "b.xsd")
	os.WriteFile(srcPath, []byte(xsd.Render(dataset.PO1())), 0o644)
	os.WriteFile(tgtPath, []byte(xsd.Render(dataset.PO2())), 0o644)
	var out bytes.Buffer
	if err := run([]string{"-dump", srcPath, tgtPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "--- source: PO") {
		t.Fatalf("dump missing:\n%s", out.String())
	}
}

func TestRunAlgorithms(t *testing.T) {
	for _, alg := range []string{"linguistic", "structural"} {
		var out bytes.Buffer
		if err := run([]string{"-builtin", "-algorithm", alg, "PO1", "PO2"}, &out); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), "algorithm: "+alg) {
			t.Errorf("%s: wrong header:\n%s", alg, out.String())
		}
	}
}

func TestRunWeightsAndThreshold(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-builtin", "-weights", "0.5,0.2,0.1,0.2", "-threshold", "0.9", "PO1", "PO2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "correspondences") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunFormats(t *testing.T) {
	var jsonOut bytes.Buffer
	if err := run([]string{"-builtin", "-format", "json", "PO1", "PO2"}, &jsonOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonOut.String(), `"algorithm": "hybrid"`) {
		t.Fatalf("json:\n%s", jsonOut.String())
	}
	var tsvOut bytes.Buffer
	if err := run([]string{"-builtin", "-format", "tsv", "PO1", "PO2"}, &tsvOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tsvOut.String(), "PO/OrderNo\tPurchaseOrder/OrderNo") {
		t.Fatalf("tsv:\n%s", tsvOut.String())
	}
	var bad bytes.Buffer
	if err := run([]string{"-builtin", "-format", "yaml", "PO1", "PO2"}, &bad); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunExplain(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-builtin", "-explain", "2", "PO1", "PO2"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "QoM(") != 2 {
		t.Fatalf("explain output:\n%s", out.String())
	}
}

func TestRunThesaurusFile(t *testing.T) {
	dir := t.TempDir()
	thPath := filepath.Join(dir, "domain.tsv")
	os.WriteFile(thPath, []byte("synonym\tgizmo\twidget\n"), 0o644)
	a := filepath.Join(dir, "a.xsd")
	b := filepath.Join(dir, "b.xsd")
	os.WriteFile(a, []byte(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="Gizmo" type="xs:string"/></xs:schema>`), 0o644)
	os.WriteFile(b, []byte(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="Widget" type="xs:string"/></xs:schema>`), 0o644)
	var out bytes.Buffer
	if err := run([]string{"-thesaurus", thPath, a, b}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Gizmo -> Widget (1.00)") {
		t.Fatalf("thesaurus not applied:\n%s", out.String())
	}
	// Bad thesaurus files error out.
	bad := filepath.Join(dir, "bad.tsv")
	os.WriteFile(bad, []byte("nonsense line without tabs\n"), 0o644)
	if err := run([]string{"-thesaurus", bad, a, b}, &out); err == nil {
		t.Fatal("bad thesaurus accepted")
	}
	if err := run([]string{"-thesaurus", filepath.Join(dir, "missing.tsv"), a, b}, &out); err == nil {
		t.Fatal("missing thesaurus accepted")
	}
}

func TestRunDTDAndXMLInputs(t *testing.T) {
	dir := t.TempDir()
	dtdPath := filepath.Join(dir, "po.dtd")
	xmlPath := filepath.Join(dir, "po.xml")
	os.WriteFile(dtdPath, []byte(`
<!ELEMENT PO (OrderNo, PurchaseDate)>
<!ELEMENT OrderNo (#PCDATA)>
<!ELEMENT PurchaseDate (#PCDATA)>
`), 0o644)
	os.WriteFile(xmlPath, []byte(`<PurchaseOrder><OrderNo>7</OrderNo><Date>2005-01-02</Date></PurchaseOrder>`), 0o644)
	var out bytes.Buffer
	if err := run([]string{dtdPath, xmlPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "PO/OrderNo -> PurchaseOrder/OrderNo") {
		t.Fatalf("cross-format match:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"onlyone"},                                        // wrong arg count
		{"-builtin", "PO1", "NoSuchSchema"},                // unknown builtin
		{"-algorithm", "bogus", "-builtin", "PO1", "PO2"},  // unknown algorithm
		{"-weights", "1,2", "-builtin", "PO1", "PO2"},      // bad weights arity
		{"-weights", "a,b,c,d", "-builtin", "PO1", "PO2"},  // bad weight value
		{"-weights", "-1,0,0,1", "-builtin", "PO1", "PO2"}, // negative weight
		{"/no/such/file.xsd", "/no/such/other.xsd"},        // missing files
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRunComplexFlag(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.xsd")
	b := filepath.Join(dir, "b.xsd")
	os.WriteFile(a, []byte(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="Record"><xs:complexType><xs:sequence>
	    <xs:element name="AuthorName" type="xs:string"/>
	  </xs:sequence></xs:complexType></xs:element></xs:schema>`), 0o644)
	os.WriteFile(b, []byte(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="Entry"><xs:complexType><xs:sequence>
	    <xs:element name="Author"><xs:complexType><xs:sequence>
	      <xs:element name="FirstName" type="xs:string"/>
	      <xs:element name="LastName" type="xs:string"/>
	    </xs:sequence></xs:complexType></xs:element>
	  </xs:sequence></xs:complexType></xs:element></xs:schema>`), 0o644)
	var out bytes.Buffer
	if err := run([]string{"-complex", a, b}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "{FirstName, LastName}") {
		t.Fatalf("complex output:\n%s", out.String())
	}
}

func TestRunConfigFile(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "match.json")
	os.WriteFile(cfgPath, []byte(`{"selectionThreshold": 0.99}`), 0o644)
	var out bytes.Buffer
	if err := run([]string{"-config", cfgPath, "-builtin", "PO1", "PO2"}, &out); err != nil {
		t.Fatal(err)
	}
	// Only perfect-score pairs survive a 0.99 threshold.
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.Contains(line, "->") && !strings.Contains(line, "(1.00)") {
			t.Fatalf("threshold from config ignored: %s", line)
		}
	}
	if err := run([]string{"-config", filepath.Join(dir, "nope.json"), "-builtin", "PO1", "PO2"}, &out); err == nil {
		t.Fatal("missing config accepted")
	}
}

func TestRunTrace(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-builtin", "-trace", "PO1", "PO2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"phase breakdown", "parse", "intern", "pairtable", "select"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace output missing %q:\n%s", want, s)
		}
	}

	out.Reset()
	if err := run([]string{"-builtin", "-trace", "-format", "json", "PO1", "PO2"}, &out); err != nil {
		t.Fatal(err)
	}
	s = out.String()
	if !strings.Contains(s, `"trace"`) || !strings.Contains(s, `"phase": "pairtable"`) {
		t.Fatalf("-trace JSON missing trace object:\n%s", s)
	}

	// Without -trace the wire format must stay trace-free.
	out.Reset()
	if err := run([]string{"-builtin", "-format", "json", "PO1", "PO2"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), `"trace"`) {
		t.Fatalf("untraced JSON leaks a trace key:\n%s", out.String())
	}
}
