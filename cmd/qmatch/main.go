// Command qmatch matches two XML Schemas and prints the discovered
// correspondences and the overall schema QoM.
//
// Usage:
//
//	qmatch [flags] SOURCE TARGET
//
// SOURCE and TARGET are schema files — .xsd (XML Schema), .dtd (DTD),
// .xml (schema inferred from the instance document), .json (JSON
// Schema) or .sql/.ddl (SQL CREATE TABLE statements); other extensions
// are sniffed from the content — or, with -builtin, names of built-in
// corpus schemas (PO1, PO2, Article, Book, DCMDItem, DCMDOrd, PIR, PDB,
// XBenchCatalog, XBenchStore, Library, Human).
//
// Flags:
//
//	-algorithm hybrid|linguistic|structural|cupid   matcher to run (default hybrid)
//	-threshold FLOAT                          selection threshold (default per algorithm)
//	-weights WL,WP,WH,WC                      hybrid axis weights (default 0.3,0.2,0.1,0.4)
//	-parallel N                               worker bound (0 = GOMAXPROCS)
//	-builtin                                  treat arguments as corpus schema names
//	-format text|json|tsv                     output format (default text)
//	-config FILE                              load matcher settings from a JSON config file
//	-thesaurus FILE                           merge custom relations (TSV: relation, term-a, term-b)
//	-explain N                                explain the N best pairs' QoM derivations
//	-complex                                  also report 1:n splits over the unmatched remainder
//	-qom                                      also print the per-axis QoM breakdown (text only)
//	-trace                                    record the per-phase pipeline trace (parse, intern,
//	                                          pairtable, select); printed in text mode, embedded
//	                                          as "trace" in JSON output
//	-trace-out FILE                           write the trace as Chrome trace-event JSON to FILE
//	                                          (implies -trace; load in Perfetto or chrome://tracing)
//	-dump                                     print both schema trees before matching
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"qmatch"
	"qmatch/internal/dataset"
	"qmatch/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qmatch:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qmatch", flag.ContinueOnError)
	algorithm := fs.String("algorithm", "hybrid", "matcher: hybrid, linguistic, structural or cupid")
	threshold := fs.Float64("threshold", -1, "selection threshold override")
	weights := fs.String("weights", "", "hybrid axis weights as WL,WP,WH,WC")
	parallel := fs.Int("parallel", 0, "worker bound (0 = GOMAXPROCS)")
	builtin := fs.Bool("builtin", false, "treat arguments as built-in corpus schema names")
	format := fs.String("format", "text", "output format: text, json or tsv")
	configPath := fs.String("config", "", "JSON matcher configuration file")
	thesaurusPath := fs.String("thesaurus", "", "file with custom thesaurus relations")
	explain := fs.Int("explain", 0, "explain the N best pairs")
	complexFlag := fs.Bool("complex", false, "report 1:n complex correspondences")
	showQoM := fs.Bool("qom", false, "print the per-axis QoM breakdown")
	trace := fs.Bool("trace", false, "record and report the per-phase pipeline trace")
	traceOut := fs.String("trace-out", "", "write the pipeline trace as Chrome trace events to FILE (implies -trace; load in Perfetto)")
	dump := fs.Bool("dump", false, "print both schema trees")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("want exactly 2 arguments (source, target), got %d", fs.NArg())
	}

	// Time the two schema loads: the Engine's trace covers the match
	// pipeline from vocabulary interning onward, and the parse phase
	// happens out here, so the CLI contributes those spans itself.
	loadStart := time.Now()
	src, err := load(fs.Arg(0), *builtin)
	if err != nil {
		return err
	}
	srcLoadNs := time.Since(loadStart).Nanoseconds()
	loadStart = time.Now()
	tgt, err := load(fs.Arg(1), *builtin)
	if err != nil {
		return err
	}
	tgtLoadNs := time.Since(loadStart).Nanoseconds()

	var opts []qmatch.Option
	if *configPath != "" {
		fromFile, err := qmatch.LoadOptionsFile(*configPath)
		if err != nil {
			return err
		}
		// Config first: explicit flags below override it.
		opts = append(opts, fromFile...)
	}
	alg, err := qmatch.ParseAlgorithm(*algorithm)
	if err != nil {
		return err
	}
	opts = append(opts, qmatch.WithAlgorithm(alg))
	if *threshold >= 0 {
		opts = append(opts, qmatch.WithSelectionThreshold(*threshold))
	}
	if *weights != "" {
		w, err := parseWeights(*weights)
		if err != nil {
			return err
		}
		opts = append(opts, qmatch.WithWeights(w))
	}
	if *parallel != 0 {
		opts = append(opts, qmatch.WithParallelism(*parallel))
	}
	if *thesaurusPath != "" {
		th, err := qmatch.LoadThesaurusFile(*thesaurusPath)
		if err != nil {
			return err
		}
		opts = append(opts, qmatch.WithThesaurus(th))
	}
	if *traceOut != "" {
		*trace = true
	}
	if *trace {
		opts = append(opts, qmatch.WithObserver(qmatch.Observer{Tracing: true}))
	}
	eng, err := qmatch.NewEngine(opts...)
	if err != nil {
		return err
	}

	if *dump {
		fmt.Fprintf(out, "--- source: %s (%d elements, depth %d) ---\n%s\n",
			src.Name(), src.Size(), src.MaxDepth(), src.Dump())
		fmt.Fprintf(out, "--- target: %s (%d elements, depth %d) ---\n%s\n",
			tgt.Name(), tgt.Size(), tgt.MaxDepth(), tgt.Dump())
	}

	report := eng.Match(src, tgt)
	if *trace && report.Trace != nil {
		report.Trace = withParseSpans(report.Trace, src, tgt, srcLoadNs, tgtLoadNs)
	}
	if *traceOut != "" && report.Trace != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := report.Trace.WriteTraceEvents(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace events written to %s (load in Perfetto or chrome://tracing)\n", *traceOut)
	}
	switch *format {
	case "json":
		return report.WriteJSON(out)
	case "tsv":
		return report.WriteTSV(out)
	case "text":
		// fallthrough to the human-readable rendering below
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	fmt.Fprintf(out, "algorithm: %s\n", report.Algorithm)
	fmt.Fprintf(out, "schema QoM: %.3f\n", report.TreeQoM)
	fmt.Fprintf(out, "correspondences (%d):\n", len(report.Correspondences))
	for _, c := range report.Correspondences {
		fmt.Fprintf(out, "  %s\n", c)
	}

	if *showQoM {
		q := eng.QoM(src, tgt)
		fmt.Fprintf(out, "QoM breakdown: label=%.2f properties=%.2f level=%.2f children=%.2f value=%.2f class=%q\n",
			q.Label, q.Properties, q.Level, q.Children, q.Value, q.Class)
	}
	if *complexFlag {
		complexes := eng.MatchComplex(src, tgt, report)
		fmt.Fprintf(out, "complex correspondences (%d):\n", len(complexes))
		for _, c := range complexes {
			fmt.Fprintf(out, "  %s\n", c)
		}
	}
	if *explain > 0 {
		fmt.Fprintf(out, "\n%s", eng.ExplainTop(src, tgt, *explain))
	}
	if *trace && report.Trace != nil {
		fmt.Fprintf(out, "\n%s", report.Trace.Format())
	}
	return nil
}

// withParseSpans prepends the CLI-measured schema-load durations as parse
// spans: the Engine's trace starts at vocabulary interning, so the full
// Fig. 3 pipeline picture needs the parse phase stitched in front. The
// match spans shift right by the combined load time and the trace total
// grows accordingly.
func withParseSpans(t *qmatch.MatchTrace, src, tgt *qmatch.Schema, srcNs, tgtNs int64) *qmatch.MatchTrace {
	shift := srcNs + tgtNs
	// The stitched parse spans take IDs past the engine trace's maximum so
	// the combined span list keeps unique IDs for trace-event export.
	var maxID int64
	for _, s := range t.Spans {
		if s.ID > maxID {
			maxID = s.ID
		}
	}
	out := &qmatch.MatchTrace{
		TraceID: t.TraceID,
		TotalNs: t.TotalNs + shift,
		Spans: []qmatch.TraceSpan{
			{Phase: string(obs.PhaseParse), ID: maxID + 1, StartNs: 0, DurationNs: srcNs, SrcNodes: src.Size()},
			{Phase: string(obs.PhaseParse), ID: maxID + 2, StartNs: srcNs, DurationNs: tgtNs, TgtNodes: tgt.Size()},
		},
	}
	for _, s := range t.Spans {
		s.StartNs += shift
		out.Spans = append(out.Spans, s)
	}
	return out
}

func load(arg string, builtin bool) (*qmatch.Schema, error) {
	if builtin {
		tree, err := dataset.ByName(arg)
		if err != nil {
			return nil, fmt.Errorf("%w (known: %s)", err, strings.Join(dataset.Names(), ", "))
		}
		return qmatch.FromTree(tree), nil
	}
	return qmatch.LoadSchema(arg)
}

func parseWeights(s string) (qmatch.Weights, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return qmatch.Weights{}, fmt.Errorf("weights must be WL,WP,WH,WC, got %q", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return qmatch.Weights{}, fmt.Errorf("invalid weight %q", p)
		}
		vals[i] = v
	}
	return qmatch.Weights{Label: vals[0], Properties: vals[1], Level: vals[2], Children: vals[3]}, nil
}
