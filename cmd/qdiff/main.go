// Command qdiff compares two versions of a schema and reports how every
// element evolved — unchanged, renamed, modified, moved, removed or added.
// The alignment between the versions is computed by the hybrid QMatch
// matcher, so renames to abbreviations or synonyms are recognized as
// renames rather than remove+add pairs.
//
// Usage:
//
//	qdiff [flags] OLD NEW
//
// OLD and NEW are schema files: .xsd, .dtd or .xml (inferred).
//
// Flags:
//
//	-verbose          also list unchanged elements
//	-thesaurus FILE   merge custom relations (TSV: relation, term-a, term-b)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"qmatch"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qdiff", flag.ContinueOnError)
	verbose := fs.Bool("verbose", false, "also list unchanged elements")
	thesaurusPath := fs.String("thesaurus", "", "file with custom thesaurus relations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("want exactly 2 arguments (old, new), got %d", fs.NArg())
	}
	oldSchema, err := qmatch.LoadSchema(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("old: %w", err)
	}
	newSchema, err := qmatch.LoadSchema(fs.Arg(1))
	if err != nil {
		return fmt.Errorf("new: %w", err)
	}
	var opts []qmatch.Option
	if *thesaurusPath != "" {
		th, err := qmatch.LoadThesaurusFile(*thesaurusPath)
		if err != nil {
			return err
		}
		opts = append(opts, qmatch.WithThesaurus(th))
	}
	report := qmatch.Diff(oldSchema, newSchema, opts...)
	_, err = io.WriteString(out, report.Format(*verbose))
	return err
}
