package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const oldXSD = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Order"><xs:complexType><xs:sequence>
    <xs:element name="OrderNo" type="xs:integer"/>
    <xs:element name="Quantity" type="xs:integer"/>
    <xs:element name="LegacyCode" type="xs:string"/>
  </xs:sequence></xs:complexType></xs:element>
</xs:schema>`

const newXSD = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Order"><xs:complexType><xs:sequence>
    <xs:element name="OrderNo" type="xs:long"/>
    <xs:element name="Qty" type="xs:integer"/>
    <xs:element name="TrackingId" type="xs:string"/>
  </xs:sequence></xs:complexType></xs:element>
</xs:schema>`

func writePair(t *testing.T) (oldPath, newPath string) {
	t.Helper()
	dir := t.TempDir()
	oldPath = filepath.Join(dir, "v1.xsd")
	newPath = filepath.Join(dir, "v2.xsd")
	os.WriteFile(oldPath, []byte(oldXSD), 0o644)
	os.WriteFile(newPath, []byte(newXSD), 0o644)
	return oldPath, newPath
}

func TestRunDiff(t *testing.T) {
	oldPath, newPath := writePair(t)
	var out bytes.Buffer
	if err := run([]string{oldPath, newPath}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"renamed   Order/Quantity -> Order/Qty",
		"modified  Order/OrderNo -> Order/OrderNo (type integer -> long)",
		"removed   Order/LegacyCode",
		"added     Order/TrackingId",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "unchanged Order\n") {
		t.Errorf("non-verbose output lists unchanged:\n%s", s)
	}
}

func TestRunDiffVerbose(t *testing.T) {
	oldPath, newPath := writePair(t)
	var out bytes.Buffer
	if err := run([]string{"-verbose", oldPath, newPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "unchanged Order") {
		t.Fatalf("verbose output:\n%s", out.String())
	}
}

func TestRunDiffErrors(t *testing.T) {
	oldPath, _ := writePair(t)
	for _, args := range [][]string{
		{oldPath},
		{oldPath, filepath.Join(t.TempDir(), "missing.xsd")},
		{filepath.Join(t.TempDir(), "missing.xsd"), oldPath},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
