package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qmatch/internal/dataset"
	"qmatch/internal/xsd"
)

// corpusDir materializes a small on-disk corpus: the PO pair as XSD, a
// book DTD and an unrelated inferred-XML document.
func corpusDir(t *testing.T) (dir, query string) {
	t.Helper()
	dir = t.TempDir()
	query = filepath.Join(dir, "query.xsd")
	os.WriteFile(query, []byte(xsd.Render(dataset.PO1())), 0o644)
	os.WriteFile(filepath.Join(dir, "po2.xsd"), []byte(xsd.Render(dataset.PO2())), 0o644)
	os.WriteFile(filepath.Join(dir, "book.dtd"), []byte(`
<!ELEMENT Book (Title, Author, Year)>
<!ELEMENT Title (#PCDATA)>
<!ELEMENT Author (#PCDATA)>
<!ELEMENT Year (#PCDATA)>
`), 0o644)
	os.WriteFile(filepath.Join(dir, "recipe.xml"),
		[]byte(`<Recipe><Name>Bread</Name><Minutes>90</Minutes></Recipe>`), 0o644)
	return dir, query
}

func TestRunDirCorpus(t *testing.T) {
	dir, query := corpusDir(t)
	var out bytes.Buffer
	if err := run([]string{"-dir", dir, "-maps", query}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// The query itself is in the directory and must rank first (score 1).
	var rank1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "1 ") {
			rank1 = l
		}
	}
	if !strings.Contains(rank1, "query.xsd") {
		t.Fatalf("rank 1 = %q\n%s", rank1, s)
	}
	if !strings.Contains(s, "po2.xsd") || !strings.Contains(s, "book.dtd") || !strings.Contains(s, "recipe.xml") {
		t.Fatalf("corpus entries missing:\n%s", s)
	}
	if !strings.Contains(s, "correspondences:") {
		t.Fatalf("-maps output missing:\n%s", s)
	}
}

func TestRunExplicitFilesAndTop(t *testing.T) {
	dir, query := corpusDir(t)
	var out bytes.Buffer
	err := run([]string{"-top", "1", query, filepath.Join(dir, "po2.xsd"), filepath.Join(dir, "book.dtd")}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "po2.xsd") {
		t.Fatalf("best entry missing:\n%s", s)
	}
	if strings.Contains(s, "book.dtd") {
		t.Fatalf("-top 1 printed more than one entry:\n%s", s)
	}
}

func TestRunAlgorithmFlag(t *testing.T) {
	dir, query := corpusDir(t)
	for _, alg := range []string{"linguistic", "structural", "cupid"} {
		var out bytes.Buffer
		if err := run([]string{"-algorithm", alg, query, filepath.Join(dir, "po2.xsd")}, &out); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir, query := corpusDir(t)
	cases := [][]string{
		{},      // no query
		{query}, // no corpus
		{"-algorithm", "bogus", query, filepath.Join(dir, "po2.xsd")},
		{filepath.Join(dir, "missing.xsd"), filepath.Join(dir, "po2.xsd")},
		{query, filepath.Join(dir, "missing.xsd")},
		{"-dir", filepath.Join(dir, "nosuchdir"), query},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRunTrace(t *testing.T) {
	dir, query := corpusDir(t)
	var out bytes.Buffer
	if err := run([]string{"-dir", dir, "-trace", query}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"best match", "phase breakdown", "intern", "pairtable", "select"} {
		if !strings.Contains(s, want) {
			t.Errorf("-trace output missing %q:\n%s", want, s)
		}
	}
}
