// Command qrank ranks a corpus of schema files against a query schema —
// the paper's motivating scenario (§1): locate, among heterogeneous web
// documents, those whose schemas best match a query. Corpus schemas are
// matched concurrently.
//
// Usage:
//
//	qrank [flags] QUERY FILE...
//	qrank [flags] QUERY -dir DIRECTORY
//
// QUERY and every corpus entry are schema files: .xsd (XML Schema), .dtd
// (DTD), .xml (schema inferred from the instance document), .json (JSON
// Schema) or .sql/.ddl (SQL CREATE TABLE statements).
//
// Flags:
//
//	-dir DIRECTORY    rank every .xsd/.dtd/.xml/.json/.sql/.ddl file
//	                  under the directory
//	-algorithm NAME   hybrid (default), linguistic, structural or cupid
//	-top N            print only the N best entries (default: all)
//	-maps             also print the best entry's correspondences
//	-trace            re-match the best entry with phase tracing on and
//	                  print its pipeline breakdown
//	-trace-out FILE   write the best entry's trace as Chrome trace-event
//	                  JSON to FILE (implies -trace; load in Perfetto)
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"qmatch"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qrank:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fsFlags := flag.NewFlagSet("qrank", flag.ContinueOnError)
	dir := fsFlags.String("dir", "", "rank every schema file under this directory")
	algorithm := fsFlags.String("algorithm", "hybrid", "matcher: hybrid, linguistic, structural or cupid")
	top := fsFlags.Int("top", 0, "print only the N best entries")
	maps := fsFlags.Bool("maps", false, "print the best entry's correspondences")
	trace := fsFlags.Bool("trace", false, "print the best entry's pipeline phase breakdown")
	traceOut := fsFlags.String("trace-out", "", "write the best entry's trace as Chrome trace events to FILE (implies -trace)")
	if err := fsFlags.Parse(args); err != nil {
		return err
	}
	if fsFlags.NArg() < 1 {
		return fmt.Errorf("want a query schema file")
	}
	queryPath := fsFlags.Arg(0)
	paths := fsFlags.Args()[1:]
	if *dir != "" {
		found, err := collectSchemas(*dir)
		if err != nil {
			return err
		}
		paths = append(paths, found...)
	}
	if len(paths) == 0 {
		return fmt.Errorf("no corpus schemas given (list files or use -dir)")
	}

	query, err := qmatch.LoadSchema(queryPath)
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	var corpus []*qmatch.Schema
	var names []string
	for _, p := range paths {
		s, err := qmatch.LoadSchema(p)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		corpus = append(corpus, s)
		names = append(names, p)
	}

	alg, err := qmatch.ParseAlgorithm(*algorithm)
	if err != nil {
		return err
	}
	eng, err := qmatch.NewEngine(qmatch.WithAlgorithm(alg))
	if err != nil {
		return err
	}

	ranked := eng.Rank(query, corpus)
	limit := len(ranked)
	if *top > 0 && *top < limit {
		limit = *top
	}
	fmt.Fprintf(out, "query: %s (%s, %d elements)\n\n", queryPath, query.Name(), query.Size())
	fmt.Fprintf(out, "%-4s %8s %6s  %s\n", "rank", "score", "#maps", "schema")
	for i := 0; i < limit; i++ {
		r := ranked[i]
		fmt.Fprintf(out, "%-4d %8.3f %6d  %s (%s)\n",
			i+1, r.Score, len(r.Correspondences), names[r.Index], r.Schema.Name())
	}
	if *maps && len(ranked) > 0 {
		best := ranked[0]
		fmt.Fprintf(out, "\nbest match %s — correspondences:\n", names[best.Index])
		for _, c := range best.Correspondences {
			fmt.Fprintf(out, "  %s\n", c)
		}
	}
	if *traceOut != "" {
		*trace = true
	}
	if *trace && len(ranked) > 0 {
		// Rank itself runs untraced (tracing every corpus entry would
		// skew the ranking wall time); re-match just the winner with a
		// tracing engine to show where its time goes.
		best := ranked[0]
		traced, err := qmatch.NewEngine(qmatch.WithAlgorithm(alg),
			qmatch.WithObserver(qmatch.Observer{Tracing: true}))
		if err != nil {
			return err
		}
		report := traced.Match(query, best.Schema)
		fmt.Fprintf(out, "\nbest match %s — %s", names[best.Index], report.Trace.Format())
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			if err := report.Trace.WriteTraceEvents(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "trace events written to %s (load in Perfetto or chrome://tracing)\n", *traceOut)
		}
	}
	return nil
}

// collectSchemas lists the schema files under root, sorted for
// determinism.
func collectSchemas(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		switch strings.ToLower(filepath.Ext(path)) {
		case ".xsd", ".dtd", ".xml", ".json", ".sql", ".ddl":
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
