// Command qregistry manages a directory-backed registry of compiled
// schema artifacts — the same store qmatchd serves with -registry — and
// runs the top-K corpus search against it offline.
//
// Usage:
//
//	qregistry compile -o FILE [-tokens] SCHEMA        compile a schema to an artifact blob
//	qregistry inspect FILE...                          print artifact metadata
//	qregistry -dir DIR put [-tokens] ID SCHEMA         compile and register a schema
//	qregistry -dir DIR list                            list registered schemas
//	qregistry -dir DIR delete ID                       unregister a schema
//	qregistry -dir DIR search [-k N] [-tokens] SCHEMA  rank the corpus against a query
//
// Schema files parse by extension: .xsd (XML Schema), .dtd (DTD, first
// declared element as root), .xml (schema inference from an instance
// document), .json (JSON Schema), .sql/.ddl (SQL DDL, database labeled
// after the file); other extensions are sniffed from the content. The
// -tokens flag compiles the artifact's prefilter vocabulary with label
// tokens (see qmatch.WithLabelTokens); use it consistently across a
// corpus and its queries.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"qmatch"
	"qmatch/internal/registry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qregistry:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: qregistry [-dir DIR] compile|inspect|put|list|delete|search ... (run with a subcommand)")
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qregistry", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	dir := fs.String("dir", "", "registry directory (required for put/list/delete/search)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return usage()
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "compile":
		return cmdCompile(rest, out)
	case "inspect":
		return cmdInspect(rest, out)
	case "put":
		return cmdPut(*dir, rest, out)
	case "list":
		return cmdList(*dir, rest, out)
	case "delete":
		return cmdDelete(*dir, rest, out)
	case "search":
		return cmdSearch(*dir, rest, out)
	default:
		return fmt.Errorf("unknown subcommand %q: %w", cmd, usage())
	}
}

// compileFile loads and compiles one schema file; the format follows
// the extension, falling back to content sniffing (qmatch.LoadSchema).
func compileFile(path string, tokens bool) (*qmatch.CompiledSchema, error) {
	s, err := qmatch.LoadSchema(path)
	if err != nil {
		return nil, err
	}
	var opts []qmatch.CompileOption
	if tokens {
		opts = append(opts, qmatch.WithLabelTokens())
	}
	return qmatch.Compile(s, opts...)
}

func openRegistry(dir string) (*registry.Registry, error) {
	if dir == "" {
		return nil, fmt.Errorf("this subcommand needs -dir DIR (the registry directory)")
	}
	return registry.Open(dir)
}

func printEntry(out io.Writer, e registry.Entry) {
	fmt.Fprintf(out, "%-24s %-20s nodes=%-5d terms=%-5d %s\n", e.ID, e.Name, e.Size, e.Terms, e.ContentID)
}

func cmdCompile(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qregistry compile", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	outPath := fs.String("o", "", "output artifact file (required)")
	tokens := fs.Bool("tokens", false, "include label tokens in the prefilter vocabulary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" || fs.NArg() != 1 {
		return fmt.Errorf("usage: qregistry compile -o FILE [-tokens] SCHEMA")
	}
	cs, err := compileFile(fs.Arg(0), *tokens)
	if err != nil {
		return err
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	if err := cs.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: %s (%d nodes, %d terms) -> %s\n",
		cs.ID()[:12], cs.Name(), cs.Size(), len(cs.Terms()), *outPath)
	return nil
}

func cmdInspect(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: qregistry inspect FILE...")
	}
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		cs, err := qmatch.DecodeCompiled(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(out, "%s: id=%s root=%s nodes=%d depth=%d terms=%d\n",
			path, cs.ID(), cs.Name(), cs.Size(), cs.Schema().MaxDepth(), len(cs.Terms()))
	}
	return nil
}

func cmdPut(dir string, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qregistry put", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	tokens := fs.Bool("tokens", false, "include label tokens in the prefilter vocabulary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: qregistry -dir DIR put [-tokens] ID SCHEMA")
	}
	reg, err := openRegistry(dir)
	if err != nil {
		return err
	}
	cs, err := compileFile(fs.Arg(1), *tokens)
	if err != nil {
		return err
	}
	if err := reg.Put(fs.Arg(0), cs); err != nil {
		return err
	}
	printEntry(out, registry.EntryOf(fs.Arg(0), cs))
	return nil
}

func cmdList(dir string, args []string, out io.Writer) error {
	if len(args) != 0 {
		return fmt.Errorf("usage: qregistry -dir DIR list")
	}
	reg, err := openRegistry(dir)
	if err != nil {
		return err
	}
	for _, e := range reg.List() {
		printEntry(out, e)
	}
	return nil
}

func cmdDelete(dir string, args []string, out io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: qregistry -dir DIR delete ID")
	}
	reg, err := openRegistry(dir)
	if err != nil {
		return err
	}
	if err := reg.Delete(args[0]); err != nil {
		return err
	}
	fmt.Fprintf(out, "deleted %s\n", args[0])
	return nil
}

func cmdSearch(dir string, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qregistry search", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	k := fs.Int("k", 0, "rank only the top-K prefilter candidates (0 = all)")
	tokens := fs.Bool("tokens", false, "compile the query with label tokens")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: qregistry -dir DIR search [-k N] [-tokens] SCHEMA")
	}
	reg, err := openRegistry(dir)
	if err != nil {
		return err
	}
	query, err := compileFile(fs.Arg(0), *tokens)
	if err != nil {
		return err
	}
	eng, err := qmatch.NewEngine()
	if err != nil {
		return err
	}
	results, stats, err := reg.Search(nil, eng, query, *k)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "corpus=%d candidates=%d\n", stats.Corpus, stats.Candidates)
	for i, r := range results {
		fmt.Fprintf(out, "%2d. %-24s qom=%.4f overlap=%.3f matches=%d\n",
			i+1, r.ID, r.Score, r.Overlap, len(r.Correspondences))
	}
	return nil
}
