package qmatch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"qmatch"
)

// observedGrid builds the sources×targets grid of the small corpus pairs.
func observedGrid() (sources, targets []*qmatch.Schema) {
	for _, p := range enginePairs() {
		sources = append(sources, p[0])
		targets = append(targets, p[1])
	}
	return sources, targets
}

// TestTraceGolden pins the MatchTrace wire format on the purchase-order
// example: phase names, span order and the deterministic counts. Wall
// times are zeroed before comparing — they are the only nondeterministic
// fields. Regenerate deliberately with `go test -run TraceGolden -update ./`.
func TestTraceGolden(t *testing.T) {
	src, tgt := poPairXSD(t)
	eng, err := qmatch.NewEngine(
		qmatch.WithParallelism(1), // deterministic workers field
		qmatch.WithObserver(qmatch.Observer{Tracing: true}))
	if err != nil {
		t.Fatal(err)
	}
	report := eng.Match(src, tgt)
	if report.Trace == nil {
		t.Fatal("tracing engine attached no trace")
	}
	norm := *report.Trace
	norm.TotalNs = 0
	norm.Spans = append([]qmatch.TraceSpan(nil), report.Trace.Spans...)
	for i := range norm.Spans {
		norm.Spans[i].StartNs = 0
		norm.Spans[i].DurationNs = 0
	}
	got, err := json.MarshalIndent(&norm, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace wire format drifted from %s (run with -update if intentional)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// An Engine without Observer.Tracing must never attach a trace — the wire
// format stays exactly as before the instrumentation existed.
func TestTraceOffByDefault(t *testing.T) {
	src, tgt := poPairXSD(t)
	eng, err := qmatch.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if report := eng.Match(src, tgt); report.Trace != nil {
		t.Fatalf("default engine attached a trace: %+v", report.Trace)
	}
	eng, err = qmatch.NewEngine(qmatch.WithObserver(qmatch.Observer{Metrics: true}))
	if err != nil {
		t.Fatal(err)
	}
	if report := eng.Match(src, tgt); report.Trace != nil {
		t.Fatal("metrics-only engine attached a trace")
	}
}

// Per-match counters, the duration histogram and the per-phase wall-time
// counters must survive a parallel MatchAll with concurrent scrapes — the
// registry is hammered from the worker pool while WriteMetrics and
// WriteMetricsJSON read it (run under -race in CI).
func TestMetricsConcurrentMatchAll(t *testing.T) {
	sources, targets := observedGrid()
	eng, err := qmatch.NewEngine(qmatch.WithParallelism(4),
		qmatch.WithObserver(qmatch.Observer{Metrics: true}))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // scrape concurrently with the batch
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sink bytes.Buffer
				eng.WriteMetrics(&sink)
				sink.Reset()
				eng.WriteMetricsJSON(&sink)
			}
		}
	}()
	if _, err := eng.MatchAll(context.Background(), sources, targets); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	jobs := int64(len(sources) * len(targets))
	if got, ok := eng.MetricValue(qmatch.MetricMatches); !ok || got != jobs {
		t.Fatalf("matches counter = %d, %v; want %d", got, ok, jobs)
	}
	var wantCells int64
	for _, s := range sources {
		for _, tg := range targets {
			wantCells += int64(s.Size()) * int64(tg.Size())
		}
	}
	if got, _ := eng.MetricValue(qmatch.MetricCells); got != wantCells {
		t.Fatalf("cells counter = %d, want %d", got, wantCells)
	}
	if got, _ := eng.MetricValue(qmatch.MetricWorkers); got != 4 {
		t.Fatalf("workers gauge = %d, want 4", got)
	}
	if got, _ := eng.MetricValue(qmatch.MetricInflight); got != 0 {
		t.Fatalf("inflight gauge = %d after batch, want 0", got)
	}

	var snap struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count uint64 `json:"count"`
		} `json:"histograms"`
	}
	var buf bytes.Buffer
	if err := eng.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Histograms[qmatch.MetricDuration].Count != uint64(jobs) {
		t.Fatalf("duration histogram count = %d, want %d",
			snap.Histograms[qmatch.MetricDuration].Count, jobs)
	}
	for _, phase := range []string{"intern", "pairtable", "select"} {
		name := `qmatch_phase_ns_total{phase="` + phase + `"}`
		if snap.Counters[name] <= 0 {
			t.Errorf("phase counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}

	buf.Reset()
	if err := eng.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, want := range []string{
		"# TYPE qmatch_matches_total counter",
		"# TYPE qmatch_match_duration_seconds histogram",
		`qmatch_match_duration_seconds_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("Prometheus exposition missing %q:\n%s", want, prom)
		}
	}
}

// A cancelled batch must land every job in the cancelled counter — the
// never-started jobs via MatchAll's completion accounting, the in-flight
// partially-filled ones via their partial trace spans. Nothing may be
// double-counted: cancelled + completed == jobs.
func TestMetricsCancelledMatchAll(t *testing.T) {
	sources, targets := observedGrid()
	eng, err := qmatch.NewEngine(qmatch.WithParallelism(2),
		qmatch.WithObserver(qmatch.Observer{Metrics: true}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.MatchAll(ctx, sources, targets); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	jobs := int64(len(sources) * len(targets))
	cancelled, _ := eng.MetricValue(qmatch.MetricCancelled)
	matches, _ := eng.MetricValue(qmatch.MetricMatches)
	if cancelled == 0 {
		t.Fatal("cancelled batch recorded no cancelled matches")
	}
	if cancelled+matches != jobs {
		t.Fatalf("cancelled %d + matches %d != jobs %d", cancelled, matches, jobs)
	}
}

// The disabled path is the acceptance gate: an Engine with a zero-valued
// Observer must allocate exactly as much per match as an Engine built
// without one.
func TestDisabledObserverAddsNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs sync.Pool retention and alloc counts")
	}
	src, tgt := poPairXSD(t)
	plain, err := qmatch.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	zero, err := qmatch.NewEngine(qmatch.WithObserver(qmatch.Observer{}))
	if err != nil {
		t.Fatal(err)
	}
	plain.Match(src, tgt) // warm the label caches so runs are steady-state
	zero.Match(src, tgt)
	// Min of interleaved batches: a GC emptying the matcher pool mid-batch
	// shows up as a spurious alloc in one batch, not in all three.
	measure := func(eng *qmatch.Engine) float64 {
		best := testing.AllocsPerRun(10, func() { eng.Match(src, tgt) })
		for i := 0; i < 2; i++ {
			if a := testing.AllocsPerRun(10, func() { eng.Match(src, tgt) }); a < best {
				best = a
			}
		}
		return best
	}
	base := measure(plain)
	got := measure(zero)
	if got != base {
		t.Fatalf("zero-valued Observer changed Match allocations: %.1f vs %.1f allocs/run", got, base)
	}
}

// WithLogger emits structured lifecycle events for Match, MatchAll and
// Rank without enabling metrics or tracing.
func TestLoggerLifecycleEvents(t *testing.T) {
	src, tgt := poPairXSD(t)
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	eng, err := qmatch.NewEngine(qmatch.WithLogger(logger))
	if err != nil {
		t.Fatal(err)
	}
	if report := eng.Match(src, tgt); report.Trace != nil {
		t.Fatal("logging-only engine attached a trace")
	}
	if _, err := eng.MatchAll(context.Background(),
		[]*qmatch.Schema{src}, []*qmatch.Schema{tgt}); err != nil {
		t.Fatal(err)
	}
	eng.Rank(src, []*qmatch.Schema{tgt})
	s := buf.String()
	for _, want := range []string{
		`"msg":"match complete"`, `"algorithm":"hybrid"`, `"treeQoM"`,
		`"msg":"matchall start"`, `"msg":"matchall complete"`,
		`"msg":"rank complete"`, `"corpus":1`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("log stream missing %s:\n%s", want, s)
		}
	}
}

// expvar publication is process-global; one registration must expose the
// registry as JSON and a second Publish under the same name must not panic.
func TestPublishExpvar(t *testing.T) {
	src, tgt := poPairXSD(t)
	eng, err := qmatch.NewEngine(qmatch.WithObserver(qmatch.Observer{Metrics: true}))
	if err != nil {
		t.Fatal(err)
	}
	eng.Match(src, tgt)
	eng.PublishExpvar("qmatch_engine_test")
	eng.PublishExpvar("qmatch_engine_test") // second call: no panic
}
