package qmatch

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"qmatch/internal/dtd"
	"qmatch/internal/infer"
)

// ParseDTD reads a Document Type Definition and returns the schema rooted
// at the named element (or the first declared element when root is empty).
func ParseDTD(r io.Reader, root string) (*Schema, error) {
	tree, err := dtd.Parse(r, root)
	if err != nil {
		return nil, err
	}
	return &Schema{root: tree}, nil
}

// ParseDTDString is ParseDTD over a string.
func ParseDTDString(s, root string) (*Schema, error) {
	return ParseDTD(strings.NewReader(s), root)
}

// ParseDTDFile is ParseDTD over a file path.
func ParseDTDFile(path, root string) (*Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("qmatch: %w", err)
	}
	defer f.Close()
	return ParseDTD(f, root)
}

// InferSchema derives a schema from an XML instance document — for
// matching against documents that ship without any schema.
func InferSchema(r io.Reader) (*Schema, error) {
	tree, err := infer.Infer(r)
	if err != nil {
		return nil, err
	}
	return &Schema{root: tree}, nil
}

// InferSchemaString is InferSchema over a string.
func InferSchemaString(s string) (*Schema, error) {
	return InferSchema(strings.NewReader(s))
}

// InferSchemaFile is InferSchema over a file path.
func InferSchemaFile(path string) (*Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("qmatch: %w", err)
	}
	defer f.Close()
	return InferSchema(f)
}

// LoadSchema loads a schema from a file, selecting the format by
// extension: .xsd → XML Schema, .dtd → DTD (first declared element as
// root), .xml → schema inference from the instance document. Other
// extensions are attempted as XSD.
func LoadSchema(path string) (*Schema, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".dtd":
		return ParseDTDFile(path, "")
	case ".xml":
		return InferSchemaFile(path)
	default:
		return ParseSchemaFile(path)
	}
}
