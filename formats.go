package qmatch

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"qmatch/internal/ddl"
	"qmatch/internal/dtd"
	"qmatch/internal/infer"
	"qmatch/internal/jsonschema"
)

// ParseDTD reads a Document Type Definition and returns the schema rooted
// at the named element (or the first declared element when root is empty).
func ParseDTD(r io.Reader, root string) (*Schema, error) {
	tree, err := dtd.Parse(r, root)
	if err != nil {
		return nil, err
	}
	return &Schema{root: tree}, nil
}

// ParseDTDString is ParseDTD over a string.
func ParseDTDString(s, root string) (*Schema, error) {
	return ParseDTD(strings.NewReader(s), root)
}

// ParseDTDFile is ParseDTD over a file path.
func ParseDTDFile(path, root string) (*Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("qmatch: %w", err)
	}
	defer f.Close()
	return ParseDTD(f, root)
}

// InferSchema derives a schema from an XML instance document — for
// matching against documents that ship without any schema.
func InferSchema(r io.Reader) (*Schema, error) {
	tree, err := infer.Infer(r)
	if err != nil {
		return nil, err
	}
	return &Schema{root: tree}, nil
}

// InferSchemaString is InferSchema over a string.
func InferSchemaString(s string) (*Schema, error) {
	return InferSchema(strings.NewReader(s))
}

// InferSchemaFile is InferSchema over a file path.
func InferSchemaFile(path string) (*Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("qmatch: %w", err)
	}
	defer f.Close()
	return InferSchema(f)
}

// ParseJSONSchema reads a JSON Schema document (draft-07 subset: see
// internal/jsonschema) and returns the schema rooted at an element
// labeled with the document's title.
func ParseJSONSchema(r io.Reader) (*Schema, error) {
	tree, err := jsonschema.Parse(r)
	if err != nil {
		return nil, err
	}
	return &Schema{root: tree}, nil
}

// ParseJSONSchemaString is ParseJSONSchema over a string.
func ParseJSONSchemaString(s string) (*Schema, error) {
	return ParseJSONSchema(strings.NewReader(s))
}

// ParseJSONSchemaFile is ParseJSONSchema over a file path.
func ParseJSONSchemaFile(path string) (*Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("qmatch: %w", err)
	}
	defer f.Close()
	return ParseJSONSchema(f)
}

// ParseDDL reads SQL CREATE TABLE statements and returns the
// database → table → column schema tree, rooted at an element labeled
// name ("" = "db").
func ParseDDL(r io.Reader, name string) (*Schema, error) {
	tree, err := ddl.Parse(r, name)
	if err != nil {
		return nil, err
	}
	return &Schema{root: tree}, nil
}

// ParseDDLString is ParseDDL over a string.
func ParseDDLString(s, name string) (*Schema, error) {
	return ParseDDL(strings.NewReader(s), name)
}

// ParseDDLFile is ParseDDL over a file path; an empty name roots the
// tree at the file's base name.
func ParseDDLFile(path, name string) (*Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("qmatch: %w", err)
	}
	defer f.Close()
	if name == "" {
		base := filepath.Base(path)
		name = strings.TrimSuffix(base, filepath.Ext(base))
	}
	return ParseDDL(f, name)
}

// Format identifies a schema ingestion front-end.
type Format string

// The ingestion formats every entry point (CLIs, qmatchd, registry)
// accepts.
const (
	FormatXSD        Format = "xsd"        // XML Schema
	FormatDTD        Format = "dtd"        // Document Type Definition
	FormatXML        Format = "xml"        // schema inferred from an XML instance
	FormatJSONSchema Format = "jsonschema" // JSON Schema (draft-07 subset)
	FormatDDL        Format = "ddl"        // SQL CREATE TABLE statements
)

// ErrUnknownFormat reports input whose schema format could not be
// detected. Errors returned by DetectFormat and ParseAuto match it with
// errors.Is and carry the sniffed input prefix in their message.
var ErrUnknownFormat = errors.New("unknown schema format")

// UnknownFormatError is the typed detection failure: Prefix holds the
// start of the (trimmed) input that no front-end recognized.
type UnknownFormatError struct {
	Prefix string
}

func (e *UnknownFormatError) Error() string {
	return fmt.Sprintf("qmatch: unknown schema format (want xsd, dtd, xml, jsonschema or ddl; input begins %q)", e.Prefix)
}

// Is makes errors.Is(err, ErrUnknownFormat) true for detection failures.
func (e *UnknownFormatError) Is(target error) bool { return target == ErrUnknownFormat }

// DetectFormat sniffs the schema format from the document content: "{"
// opens a JSON Schema, "<!" a DTD, a root tag whose name ends in
// "schema" an XSD, any other XML an instance document, and a leading
// CREATE keyword DDL. Comments and processing instructions are skipped
// before sniffing. Unrecognizable input returns an *UnknownFormatError
// (errors.Is-matchable against ErrUnknownFormat).
func DetectFormat(data []byte) (Format, error) {
	rest := skipPreamble(data)
	switch {
	case len(rest) == 0:
		return "", &UnknownFormatError{Prefix: ""}
	case rest[0] == '{':
		return FormatJSONSchema, nil
	case bytes.HasPrefix(rest, []byte("<!")):
		return FormatDTD, nil
	case rest[0] == '<':
		name := tagName(rest[1:])
		if n := strings.ToLower(name); n == "schema" || strings.HasSuffix(n, ":schema") {
			return FormatXSD, nil
		}
		return FormatXML, nil
	}
	if word := leadingWord(rest); strings.EqualFold(word, "CREATE") {
		return FormatDDL, nil
	}
	return "", &UnknownFormatError{Prefix: sniffPrefix(rest)}
}

// skipPreamble drops a UTF-8 BOM, whitespace, XML processing
// instructions, and XML/SQL comments — none of them identify a format.
func skipPreamble(data []byte) []byte {
	data = bytes.TrimPrefix(data, []byte{0xEF, 0xBB, 0xBF})
	for {
		data = bytes.TrimLeft(data, " \t\r\n")
		switch {
		case bytes.HasPrefix(data, []byte("<?")):
			end := bytes.Index(data, []byte("?>"))
			if end < 0 {
				return nil
			}
			data = data[end+2:]
		case bytes.HasPrefix(data, []byte("<!--")):
			end := bytes.Index(data, []byte("-->"))
			if end < 0 {
				return nil
			}
			data = data[end+3:]
		case bytes.HasPrefix(data, []byte("--")):
			nl := bytes.IndexByte(data, '\n')
			if nl < 0 {
				return nil
			}
			data = data[nl+1:]
		case bytes.HasPrefix(data, []byte("/*")):
			end := bytes.Index(data, []byte("*/"))
			if end < 0 {
				return nil
			}
			data = data[end+2:]
		default:
			return data
		}
	}
}

// tagName reads an XML tag name (prefix included) from the byte after
// "<".
func tagName(data []byte) string {
	for i := 0; i < len(data); i++ {
		c := data[i]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '>' || c == '/' {
			return string(data[:i])
		}
	}
	return string(data)
}

// leadingWord reads the first run of letters.
func leadingWord(data []byte) string {
	for i := 0; i < len(data); i++ {
		c := data[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
			return string(data[:i])
		}
	}
	return string(data)
}

// sniffPrefix bounds the input excerpt an UnknownFormatError reports.
func sniffPrefix(data []byte) string {
	const max = 32
	if len(data) > max {
		data = data[:max]
	}
	return string(data)
}

// ParseAuto detects the schema format of data (DetectFormat) and parses
// it with the matching front-end, reporting which format was used. The
// DDL database label and DTD root fall back to their defaults.
func ParseAuto(data []byte) (*Schema, Format, error) {
	format, err := DetectFormat(data)
	if err != nil {
		return nil, "", err
	}
	s, err := parseAs(data, format, "")
	return s, format, err
}

// parseAs dispatches one format's parser; root carries the DTD root
// element or the DDL database label.
func parseAs(data []byte, format Format, root string) (*Schema, error) {
	switch format {
	case FormatXSD:
		return ParseSchemaString(string(data))
	case FormatDTD:
		return ParseDTDString(string(data), root)
	case FormatXML:
		return InferSchemaString(string(data))
	case FormatJSONSchema:
		return ParseJSONSchemaString(string(data))
	case FormatDDL:
		return ParseDDLString(string(data), root)
	}
	return nil, fmt.Errorf("qmatch: no parser for format %q", format)
}

// LoadSchema loads a schema from a file, selecting the format by
// extension: .xsd → XML Schema, .dtd → DTD (first declared element as
// root), .xml → schema inference from the instance document, .json →
// JSON Schema, .sql/.ddl → SQL DDL (database labeled after the file).
// Other extensions are sniffed from the content (DetectFormat);
// unrecognizable content fails with an error matching ErrUnknownFormat.
func LoadSchema(path string) (*Schema, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".xsd":
		return ParseSchemaFile(path)
	case ".dtd":
		return ParseDTDFile(path, "")
	case ".xml":
		return InferSchemaFile(path)
	case ".json":
		return ParseJSONSchemaFile(path)
	case ".sql", ".ddl":
		return ParseDDLFile(path, "")
	default:
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("qmatch: %w", err)
		}
		s, _, err := ParseAuto(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return s, nil
	}
}
