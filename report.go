package qmatch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteJSON serializes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTSV serializes the correspondences as tab-separated
// source/target/score lines, with a trailing comment line carrying the
// algorithm and tree QoM.
func (r *Report) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range r.Correspondences {
		fmt.Fprintf(bw, "%s\t%s\t%.6f\n", c.Source, c.Target, c.Score)
	}
	fmt.Fprintf(bw, "# algorithm=%s treeQoM=%.6f\n", r.Algorithm, r.TreeQoM)
	return bw.Flush()
}

// ReadReportJSON deserializes a report written by WriteJSON.
func ReadReportJSON(r io.Reader) (*Report, error) {
	var out Report
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("qmatch: read report: %w", err)
	}
	return &out, nil
}

// ReadReportTSV deserializes a report written by WriteTSV. Lines starting
// with '#' are treated as metadata comments; the algorithm and treeQoM
// values are recovered when present.
func ReadReportTSV(r io.Reader) (*Report, error) {
	out := &Report{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			for _, field := range strings.Fields(strings.TrimPrefix(line, "#")) {
				if v, ok := strings.CutPrefix(field, "algorithm="); ok {
					out.Algorithm = v
				}
				if v, ok := strings.CutPrefix(field, "treeQoM="); ok {
					if f, err := strconv.ParseFloat(v, 64); err == nil {
						out.TreeQoM = f
					}
				}
			}
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("qmatch: read report: malformed line %q", line)
		}
		score, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("qmatch: read report: bad score in %q", line)
		}
		out.Correspondences = append(out.Correspondences, Correspondence{
			Source: parts[0], Target: parts[1], Score: score,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("qmatch: read report: %w", err)
	}
	return out, nil
}
