package qmatch_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qmatch"
	"qmatch/internal/dataset"
	"qmatch/internal/xsd"
)

// poPairXSD renders the corpus PO pair to XSD so the façade tests exercise
// the full parse → match → evaluate flow.
func poPairXSD(t *testing.T) (src, tgt *qmatch.Schema) {
	t.Helper()
	s, err := qmatch.ParseSchemaString(xsd.Render(dataset.PO1()))
	if err != nil {
		t.Fatal(err)
	}
	g, err := qmatch.ParseSchemaString(xsd.Render(dataset.PO2()))
	if err != nil {
		t.Fatal(err)
	}
	return s, g
}

func TestMatchEndToEnd(t *testing.T) {
	src, tgt := poPairXSD(t)
	if src.Name() != "PO" || src.Size() != 10 || src.MaxDepth() != 3 {
		t.Fatalf("source parsed wrong: %s/%d/%d", src.Name(), src.Size(), src.MaxDepth())
	}
	report := qmatch.Match(src, tgt)
	if report.Algorithm != "hybrid" {
		t.Fatalf("algorithm = %s", report.Algorithm)
	}
	if len(report.Correspondences) == 0 {
		t.Fatal("no correspondences")
	}
	// Sorted by descending score.
	for i := 1; i < len(report.Correspondences); i++ {
		if report.Correspondences[i].Score > report.Correspondences[i-1].Score {
			t.Fatal("correspondences not sorted")
		}
	}
	// The paper's exact pair leads.
	best := report.Correspondences[0]
	if best.Source != "PO/OrderNo" || best.Target != "PurchaseOrder/OrderNo" || best.Score != 1 {
		t.Fatalf("best = %v", best)
	}
	if report.TreeQoM <= 0.5 || report.TreeQoM >= 1 {
		t.Fatalf("tree QoM = %v", report.TreeQoM)
	}
}

func TestMatchAlgorithmSelection(t *testing.T) {
	src, tgt := poPairXSD(t)
	for _, a := range []qmatch.Algorithm{qmatch.Hybrid, qmatch.Linguistic, qmatch.Structural, qmatch.Cupid} {
		r := qmatch.Match(src, tgt, qmatch.WithAlgorithm(a))
		if r.Algorithm != string(a) {
			t.Errorf("algorithm = %s, want %s", r.Algorithm, a)
		}
		if len(r.Correspondences) == 0 {
			t.Errorf("%s found nothing", a)
		}
	}
}

func TestEvaluate(t *testing.T) {
	src, tgt := poPairXSD(t)
	report := qmatch.Match(src, tgt)
	gold := [][2]string{
		{"PO/OrderNo", "PurchaseOrder/OrderNo"},
		{"PO/PurchaseDate", "PurchaseOrder/Date"},
	}
	e := qmatch.Evaluate(report, gold)
	if e.Recall != 1 {
		t.Fatalf("recall = %v (eval %+v)", e.Recall, e)
	}
	if e.Precision <= 0 || e.Precision > 1 {
		t.Fatalf("precision = %v", e.Precision)
	}
	if e.F1 <= 0 {
		t.Fatalf("f1 = %v", e.F1)
	}
}

func TestQoMBreakdown(t *testing.T) {
	src, tgt := poPairXSD(t)
	q := qmatch.QoM(src, tgt)
	if q.Class != "total relaxed" {
		t.Fatalf("class = %q", q.Class)
	}
	if q.Label <= 0 || q.Children <= 0 || q.Value <= 0 {
		t.Fatalf("breakdown = %+v", q)
	}
	if q.Level != 0 { // heights 3 vs 2
		t.Fatalf("level = %v", q.Level)
	}
}

func TestWithWeights(t *testing.T) {
	src, tgt := poPairXSD(t)
	labelOnly := qmatch.QoM(src, tgt, qmatch.WithWeights(qmatch.Weights{Label: 1}))
	allChildren := qmatch.QoM(src, tgt, qmatch.WithWeights(qmatch.Weights{Children: 1}))
	if labelOnly.Value == allChildren.Value {
		t.Fatal("weights had no effect")
	}
}

func TestWithSelectionThreshold(t *testing.T) {
	src, tgt := poPairXSD(t)
	strict := qmatch.Match(src, tgt, qmatch.WithSelectionThreshold(0.999))
	loose := qmatch.Match(src, tgt, qmatch.WithSelectionThreshold(0.75))
	if len(strict.Correspondences) >= len(loose.Correspondences) {
		t.Fatalf("threshold had no effect: %d vs %d",
			len(strict.Correspondences), len(loose.Correspondences))
	}
}

func TestWithChildThreshold(t *testing.T) {
	src, tgt := poPairXSD(t)
	q1 := qmatch.QoM(src, tgt, qmatch.WithChildThreshold(0))
	q2 := qmatch.QoM(src, tgt, qmatch.WithChildThreshold(0.99))
	if q1.Children <= q2.Children {
		t.Fatalf("child threshold had no effect: %v vs %v", q1.Children, q2.Children)
	}
}

func TestCustomThesaurus(t *testing.T) {
	src, err := qmatch.ParseSchemaString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="Gizmo" type="xs:string"/></xs:schema>`)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := qmatch.ParseSchemaString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="Widget" type="xs:string"/></xs:schema>`)
	if err != nil {
		t.Fatal(err)
	}
	without := qmatch.Match(src, tgt)
	if len(without.Correspondences) != 0 {
		t.Fatalf("unrelated labels matched: %v", without.Correspondences)
	}
	th := qmatch.NewThesaurus()
	th.AddSynonym("gizmo", "widget")
	with := qmatch.Match(src, tgt, qmatch.WithThesaurus(th))
	if len(with.Correspondences) != 1 || with.Correspondences[0].Score != 1 {
		t.Fatalf("custom synonym ignored: %v", with.Correspondences)
	}
}

func TestWithoutBuiltinThesaurus(t *testing.T) {
	src, tgt := poPairXSD(t)
	full := qmatch.Match(src, tgt)
	bare := qmatch.Match(src, tgt, qmatch.WithoutBuiltinThesaurus())
	if len(bare.Correspondences) >= len(full.Correspondences) {
		t.Fatalf("builtin thesaurus removal had no effect: %d vs %d",
			len(bare.Correspondences), len(full.Correspondences))
	}
}

func TestParseSchemaFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "po.xsd")
	if err := os.WriteFile(path, []byte(xsd.Render(dataset.PO1())), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := qmatch.ParseSchemaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "PO" {
		t.Fatalf("name = %s", s.Name())
	}
	if _, err := qmatch.ParseSchemaFile(filepath.Join(dir, "missing.xsd")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSchemaAccessors(t *testing.T) {
	src, _ := poPairXSD(t)
	paths := src.Paths()
	if len(paths) != src.Size() {
		t.Fatalf("paths = %d", len(paths))
	}
	if paths[0] != "PO" {
		t.Fatalf("first path = %s", paths[0])
	}
	if !strings.Contains(src.Dump(), "Quantity") {
		t.Fatal("dump incomplete")
	}
	rendered := src.XSD()
	back, err := qmatch.ParseSchemaString(rendered)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != src.Size() {
		t.Fatalf("XSD round trip size %d vs %d", back.Size(), src.Size())
	}
	tree := src.Tree()
	if tree == nil || qmatch.FromTree(tree).Name() != "PO" {
		t.Fatal("tree access broken")
	}
}

func TestCorrespondenceString(t *testing.T) {
	c := qmatch.Correspondence{Source: "a", Target: "b", Score: 0.5}
	if c.String() != "a -> b (0.50)" {
		t.Fatalf("String = %q", c.String())
	}
}
