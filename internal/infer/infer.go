// Package infer derives a schema tree from an XML instance document. The
// QMatch paper's motivating scenario is querying the open web, where most
// documents arrive without any schema; matching a query schema against
// such documents requires inferring one. The inference merges repeated
// sibling elements into occurrence-constrained declarations and infers
// leaf datatypes from their text values — enough structure for the four
// QoM axes.
package infer

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

import "qmatch/internal/xmltree"

// docNode is one element of the instance document.
type docNode struct {
	name     string
	attrs    []xml.Attr
	children []*docNode
	text     strings.Builder
}

// Infer reads an XML document and returns the inferred schema tree.
func Infer(r io.Reader) (*xmltree.Node, error) {
	root, err := parseDoc(r)
	if err != nil {
		return nil, err
	}
	node := inferElement([]*docNode{root})
	node.Props.MinOccurs, node.Props.MaxOccurs, node.Props.Order = 1, 1, 1
	return node, nil
}

// InferString is Infer over a string.
func InferString(s string) (*xmltree.Node, error) {
	return Infer(strings.NewReader(s))
}

func parseDoc(r io.Reader) (*docNode, error) {
	dec := xml.NewDecoder(r)
	var stack []*docNode
	var root *docNode
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("infer: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &docNode{name: t.Name.Local, attrs: t.Attr}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("infer: multiple document roots")
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				parent.children = append(parent.children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("infer: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].text.Write([]byte(t))
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("infer: empty document")
	}
	return root, nil
}

// inferElement merges every instance of one element name (under merged
// parent instances) into a single schema declaration.
func inferElement(instances []*docNode) *xmltree.Node {
	name := instances[0].name
	node := xmltree.New(name, xmltree.Properties{MinOccurs: 1, MaxOccurs: 1})

	// Attributes: required iff present on every instance; type inferred
	// from the observed values.
	attrOrder := []string{}
	attrVals := map[string][]string{}
	for _, inst := range instances {
		for _, a := range inst.attrs {
			if _, seen := attrVals[a.Name.Local]; !seen {
				attrOrder = append(attrOrder, a.Name.Local)
			}
			attrVals[a.Name.Local] = append(attrVals[a.Name.Local], a.Value)
		}
	}
	for _, an := range attrOrder {
		vals := attrVals[an]
		props := xmltree.Properties{
			Type:        inferType(vals),
			IsAttribute: true,
			MaxOccurs:   1,
		}
		if len(vals) == len(instances) {
			props.MinOccurs = 1
			props.Use = "required"
		} else {
			props.Use = "optional"
		}
		node.Add(xmltree.New(an, props))
	}

	// Child elements: group by name in first-seen order; occurrence
	// constraints from per-instance counts.
	childOrder := []string{}
	childGroups := map[string][]*docNode{}
	counts := map[string][]int{} // per-instance counts
	for i, inst := range instances {
		_ = i
		local := map[string]int{}
		for _, c := range inst.children {
			if _, seen := childGroups[c.name]; !seen {
				childOrder = append(childOrder, c.name)
			}
			childGroups[c.name] = append(childGroups[c.name], c)
			local[c.name]++
		}
		for n := range childGroups {
			counts[n] = append(counts[n], local[n])
		}
	}
	// counts rows can be ragged for names first seen late; pad with the
	// number of instances processed before first sighting implicitly by
	// comparing lengths.
	for _, cn := range childOrder {
		group := childGroups[cn]
		child := inferElement(group)
		minC, maxC := minMaxCounts(counts[cn], len(instances))
		child.Props.MinOccurs = minC
		if maxC > 1 {
			child.Props.MaxOccurs = xmltree.Unbounded
		} else {
			child.Props.MaxOccurs = 1
		}
		node.Add(child)
	}

	// Leaf type inference from text content.
	if len(childOrder) == 0 {
		var vals []string
		for _, inst := range instances {
			if v := strings.TrimSpace(inst.text.String()); v != "" {
				vals = append(vals, v)
			}
		}
		node.Props.Type = inferType(vals)
	}
	return node
}

func minMaxCounts(counts []int, instances int) (minC, maxC int) {
	if len(counts) < instances {
		minC = 0 // absent from at least one instance
	} else {
		minC = counts[0]
	}
	for _, c := range counts {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	return minC, maxC
}

// inferType returns the most specific XSD type covering every observed
// value: integer ⊂ decimal; date / dateTime; boolean; fallback string.
// No observed values infer as string.
func inferType(vals []string) string {
	if len(vals) == 0 {
		return "string"
	}
	isInt, isDec, isBool, isDate, isDateTime := true, true, true, true, true
	for _, v := range vals {
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			isInt = false
		}
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			isDec = false
		}
		if v != "true" && v != "false" && v != "0" && v != "1" {
			isBool = false
		}
		if _, err := time.Parse("2006-01-02", v); err != nil {
			isDate = false
		}
		if _, err := time.Parse(time.RFC3339, v); err != nil {
			isDateTime = false
		}
	}
	switch {
	case isBool && !isInt:
		return "boolean"
	case isInt:
		return "integer"
	case isDec:
		return "decimal"
	case isDate:
		return "date"
	case isDateTime:
		return "dateTime"
	default:
		return "string"
	}
}
