package infer

import (
	"strings"
	"testing"

	"qmatch/internal/xmltree"
)

const orderXML = `<?xml version="1.0"?>
<Order id="17" priority="high">
  <OrderNo>12345</OrderNo>
  <Customer>
    <Name>Ada</Name>
    <Email>ada@example.com</Email>
  </Customer>
  <Line sku="A1"><Qty>2</Qty><Price>9.99</Price></Line>
  <Line sku="B2"><Qty>1</Qty><Price>120.00</Price><Gift>true</Gift></Line>
  <Shipped>2005-04-05</Shipped>
</Order>`

func TestInferStructure(t *testing.T) {
	root, err := InferString(orderXML)
	if err != nil {
		t.Fatal(err)
	}
	if root.Label != "Order" {
		t.Fatalf("root = %s", root.Label)
	}
	// Repeated <Line> elements merge into one unbounded declaration.
	lines := root.FindLabel("Line")
	if len(lines) != 1 {
		t.Fatalf("Line declarations = %d\n%s", len(lines), root.Dump())
	}
	if lines[0].Props.MaxOccurs != xmltree.Unbounded {
		t.Fatalf("Line occurs = %+v", lines[0].Props)
	}
	// <Gift> appears in only one of two Lines → optional.
	gift := root.Find("Order/Line/Gift")
	if gift == nil || gift.Props.MinOccurs != 0 {
		t.Fatalf("Gift = %+v", gift)
	}
	// Qty appears in every Line → required.
	qty := root.Find("Order/Line/Qty")
	if qty == nil || qty.Props.MinOccurs != 1 {
		t.Fatalf("Qty = %+v", qty)
	}
}

func TestInferTypes(t *testing.T) {
	root, err := InferString(orderXML)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"Order/OrderNo":       "integer",
		"Order/Line/Qty":      "integer",
		"Order/Line/Price":    "decimal",
		"Order/Line/Gift":     "boolean",
		"Order/Shipped":       "date",
		"Order/Customer/Name": "string",
	}
	for path, want := range cases {
		n := root.Find(path)
		if n == nil {
			t.Fatalf("path %s missing\n%s", path, root.Dump())
		}
		if n.Props.Type != want {
			t.Errorf("%s type = %q, want %q", path, n.Props.Type, want)
		}
	}
}

func TestInferAttributes(t *testing.T) {
	root, err := InferString(orderXML)
	if err != nil {
		t.Fatal(err)
	}
	id := root.Find("Order/id")
	if id == nil || !id.Props.IsAttribute || id.Props.Type != "integer" || id.Props.Use != "required" {
		t.Fatalf("id = %+v", id)
	}
	sku := root.Find("Order/Line/sku")
	if sku == nil || sku.Props.Use != "required" { // on both Lines
		t.Fatalf("sku = %+v", sku)
	}
}

func TestInferOptionalAttribute(t *testing.T) {
	root, err := InferString(`<R><E a="1"/><E/></R>`)
	if err != nil {
		t.Fatal(err)
	}
	a := root.Find("R/E/a")
	if a == nil || a.Props.MinOccurs != 0 || a.Props.Use != "optional" {
		t.Fatalf("a = %+v", a)
	}
}

func TestInferDateTime(t *testing.T) {
	root, err := InferString(`<R><T>2005-04-05T12:00:00Z</T></R>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Find("R/T").Props.Type; got != "dateTime" {
		t.Fatalf("type = %q", got)
	}
}

func TestInferMixedTypesFallBack(t *testing.T) {
	root, err := InferString(`<R><V>12</V><V>abc</V></R>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Find("R/V").Props.Type; got != "string" {
		t.Fatalf("mixed values type = %q", got)
	}
}

func TestInferIntWidensToDecimal(t *testing.T) {
	root, err := InferString(`<R><V>12</V><V>3.5</V></R>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Find("R/V").Props.Type; got != "decimal" {
		t.Fatalf("widened type = %q", got)
	}
}

func TestInferEmptyLeaf(t *testing.T) {
	root, err := InferString(`<R><E/></R>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Find("R/E").Props.Type; got != "string" {
		t.Fatalf("empty leaf type = %q", got)
	}
}

func TestInferLateSibling(t *testing.T) {
	// A child name first seen in a later instance must still be optional.
	root, err := InferString(`<R><E><A>1</A></E><E><A>2</A><B>x</B></E></R>`)
	if err != nil {
		t.Fatal(err)
	}
	b := root.Find("R/E/B")
	if b == nil || b.Props.MinOccurs != 0 {
		t.Fatalf("late sibling = %+v", b)
	}
	a := root.Find("R/E/A")
	if a == nil || a.Props.MinOccurs != 1 {
		t.Fatalf("common sibling = %+v", a)
	}
}

func TestInferErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"malformed":      "<R><unclosed></R>",
		"multiple roots": "<A/><B/>",
		"text only":      "just text",
	}
	for name, src := range cases {
		if _, err := InferString(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestInferReader(t *testing.T) {
	root, err := Infer(strings.NewReader(`<R><A>x</A></R>`))
	if err != nil {
		t.Fatal(err)
	}
	if root.Size() != 2 {
		t.Fatalf("size = %d", root.Size())
	}
}

// Inferred schemas are matchable: an instance of the paper's PO document
// matched against the Purchase Order schema finds the leaf pairs.
func TestInferredSchemaIsMatchable(t *testing.T) {
	doc := `<PO>
	  <OrderNo>1</OrderNo>
	  <PurchaseInfo>
	    <BillingAddr>x</BillingAddr>
	    <ShippingAddr>y</ShippingAddr>
	    <Lines><Item>i</Item><Quantity>2</Quantity><UnitOfMeasure>kg</UnitOfMeasure></Lines>
	  </PurchaseInfo>
	  <PurchaseDate>2005-04-05</PurchaseDate>
	</PO>`
	root, err := InferString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if root.Size() != 10 {
		t.Fatalf("size = %d\n%s", root.Size(), root.Dump())
	}
	if got := root.Find("PO/PurchaseInfo/Lines/Quantity").Props.Type; got != "integer" {
		t.Fatalf("Quantity type = %q", got)
	}
	if got := root.Find("PO/PurchaseDate").Props.Type; got != "date" {
		t.Fatalf("PurchaseDate type = %q", got)
	}
}
