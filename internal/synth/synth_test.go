package synth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qmatch/internal/xmltree"
	"qmatch/internal/xsd"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Elements: 60, MaxDepth: 4, MaxChildren: 6}
	a := Generate(cfg)
	b := Generate(cfg)
	if !xmltree.Equal(a, b) {
		t.Fatal("same seed produced different trees")
	}
	c := Generate(Config{Seed: 43, Elements: 60, MaxDepth: 4, MaxChildren: 6})
	if xmltree.Equal(a, c) {
		t.Fatal("different seeds produced identical trees")
	}
}

func TestGenerateRespectsConfig(t *testing.T) {
	for _, n := range []int{1, 5, 50, 400} {
		cfg := Config{Seed: 7, Elements: n, MaxDepth: 5, MaxChildren: 10}
		tree := Generate(cfg)
		if got := tree.Size(); got != n {
			t.Errorf("size = %d, want %d", got, n)
		}
		if got := tree.MaxDepth(); got > 5 {
			t.Errorf("depth = %d exceeds limit", got)
		}
		tree.Walk(func(node *xmltree.Node) bool {
			if len(node.Children) > 10 {
				t.Errorf("fan-out %d exceeds limit at %s", len(node.Children), node.Path())
			}
			return true
		})
	}
}

func TestGenerateUniqueLabels(t *testing.T) {
	tree := Generate(Config{Seed: 9, Elements: 500, MaxDepth: 6, MaxChildren: 8})
	seen := map[string]bool{}
	tree.Walk(func(n *xmltree.Node) bool {
		if seen[n.Label] {
			t.Fatalf("duplicate label %q", n.Label)
		}
		seen[n.Label] = true
		return true
	})
}

func TestGenerateNormDefaults(t *testing.T) {
	tree := Generate(Config{}) // all defaults
	if tree.Size() != 20 {
		t.Fatalf("default size = %d", tree.Size())
	}
	n := Config{AttributeRatio: 2}.Norm()
	if n.AttributeRatio != 0.5 {
		t.Fatalf("ratio clamp = %v", n.AttributeRatio)
	}
	if got := (Config{AttributeRatio: -1}).Norm().AttributeRatio; got != 0 {
		t.Fatalf("negative ratio clamp = %v", got)
	}
}

func TestGenerateAttributes(t *testing.T) {
	tree := Generate(Config{Seed: 5, Elements: 200, MaxDepth: 4, MaxChildren: 8, AttributeRatio: 0.4})
	attrs := 0
	tree.Walk(func(n *xmltree.Node) bool {
		if n.Props.IsAttribute {
			attrs++
			if !n.IsLeaf() {
				t.Fatalf("attribute %s has children", n.Path())
			}
		}
		return true
	})
	if attrs == 0 {
		t.Fatal("no attributes generated")
	}
}

// Round-trip property: generated schemas survive Render → Parse intact
// (DESIGN.md §6).
func TestGenerateXSDRoundTrip(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		cfg := Config{Seed: seed, Elements: int(size%100) + 1, MaxDepth: 4, MaxChildren: 6, AttributeRatio: 0.2}
		tree := Generate(cfg)
		back, err := xsd.ParseString(xsd.Render(tree))
		if err != nil {
			t.Logf("parse error: %v", err)
			return false
		}
		return xmltree.Equal(tree, back)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveIdentityAtZero(t *testing.T) {
	src := Generate(Config{Seed: 11, Elements: 80, MaxDepth: 4, MaxChildren: 6})
	variant, gold := Derive(src, Uniform(1, 0))
	if !xmltree.Equal(src, variant) {
		t.Fatal("zero intensity changed the tree")
	}
	if gold.Size() != src.Size() {
		t.Fatalf("gold size = %d, want %d", gold.Size(), src.Size())
	}
}

func TestDeriveDeterministic(t *testing.T) {
	src := Generate(Config{Seed: 11, Elements: 80, MaxDepth: 4, MaxChildren: 6})
	v1, g1 := Derive(src, Uniform(3, 0.4))
	v2, g2 := Derive(src, Uniform(3, 0.4))
	if !xmltree.Equal(v1, v2) || g1.Size() != g2.Size() {
		t.Fatal("Derive not deterministic")
	}
}

func TestDeriveGoldValid(t *testing.T) {
	src := Generate(Config{Seed: 13, Elements: 120, MaxDepth: 5, MaxChildren: 7})
	variant, gold := Derive(src, Uniform(5, 0.5))
	if err := gold.Validate(src, variant); err != nil {
		t.Fatal(err)
	}
	if gold.Size() == 0 {
		t.Fatal("empty gold")
	}
	// Drops shrink the variant and the gold together.
	if variant.Size() > src.Size() {
		t.Fatal("variant grew")
	}
	if gold.Size() > variant.Size() {
		t.Fatalf("gold (%d) exceeds variant (%d)", gold.Size(), variant.Size())
	}
}

func TestDeriveDoesNotTouchSource(t *testing.T) {
	src := Generate(Config{Seed: 17, Elements: 60, MaxDepth: 4, MaxChildren: 6})
	before := src.Clone()
	Derive(src, Uniform(19, 0.8))
	if !xmltree.Equal(src, before) {
		t.Fatal("Derive mutated the source")
	}
}

func TestDeriveMutationsObservable(t *testing.T) {
	src := Generate(Config{Seed: 23, Elements: 100, MaxDepth: 4, MaxChildren: 6})
	variant, _ := Derive(src, Uniform(29, 0.6))
	if xmltree.Equal(src, variant) {
		t.Fatal("high intensity changed nothing")
	}
	// Some labels must differ (renames) while the roots stay related.
	if variant.Size() == src.Size() {
		diff := 0
		sn, vn := src.Nodes(), variant.Nodes()
		for i := range sn {
			if sn[i].Label != vn[i].Label {
				diff++
			}
		}
		if diff == 0 {
			t.Fatal("no renames at 0.6 intensity")
		}
	}
}

func TestAbbreviateToken(t *testing.T) {
	rng := newRng(1)
	for _, tok := range []string{"description", "quantity", "warehouse"} {
		got := abbreviateToken(rng, tok)
		if got == "" || len(got) > len(tok) {
			t.Fatalf("abbreviateToken(%q) = %q", tok, got)
		}
	}
	if got := abbreviateToken(rng, "id"); got != "id" {
		t.Fatalf("short token changed: %q", got)
	}
}

func TestUniformClamps(t *testing.T) {
	if Uniform(1, -0.5).RenameProb != 0 {
		t.Fatal("negative intensity not clamped")
	}
	if Uniform(1, 2).RenameProb != 1 {
		t.Fatal("overflow intensity not clamped")
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
