// Package synth generates synthetic XML schemas and derives matched
// variants from them with a known gold standard. It backs the schemagen
// CLI, the scalability benchmarks (extending the paper's Figure 4 beyond
// its four workload sizes) and the robustness experiments (match accuracy
// as a function of schema perturbation — the paper's "future work" axis of
// tuning and stress-testing the matcher).
//
// All generation is deterministic in the seed.
package synth

import (
	"fmt"
	"math/rand"

	"qmatch/internal/xmltree"
)

// Config controls schema generation.
type Config struct {
	// Seed drives all randomness; equal configs generate equal schemas.
	Seed int64
	// Elements is the target number of nodes (including the root).
	// Minimum 1.
	Elements int
	// MaxDepth bounds the tree depth (root = depth 0). Minimum 1.
	MaxDepth int
	// MaxChildren bounds the fan-out of any node. Minimum 2.
	MaxChildren int
	// AttributeRatio is the fraction of leaves generated as attributes
	// (clamped to [0, 0.5]).
	AttributeRatio float64
}

// Norm returns cfg with out-of-range values clamped to usable defaults.
func (cfg Config) Norm() Config {
	if cfg.Elements < 1 {
		cfg.Elements = 20
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 4
	}
	if cfg.MaxChildren < 2 {
		cfg.MaxChildren = 8
	}
	if cfg.AttributeRatio < 0 {
		cfg.AttributeRatio = 0
	}
	if cfg.AttributeRatio > 0.5 {
		cfg.AttributeRatio = 0.5
	}
	return cfg
}

// Vocabulary for generated labels: a modifier+noun grammar yields thousands
// of distinct, realistic-looking element names.
var (
	synthNouns = []string{
		"Order", "Customer", "Invoice", "Product", "Shipment", "Payment",
		"Account", "Contract", "Employee", "Department", "Project", "Task",
		"Report", "Document", "Message", "Event", "Session", "Ticket",
		"Vehicle", "Location", "Warehouse", "Supplier", "Category", "Review",
		"Price", "Discount", "Tax", "Balance", "Schedule", "Route",
	}
	synthModifiers = []string{
		"", "Primary", "Secondary", "Total", "Net", "Gross", "Internal",
		"External", "Active", "Archived", "Pending", "Default", "Custom",
		"Local", "Remote", "Current", "Previous", "Annual", "Monthly", "Daily",
	}
	synthLeafTypes = []string{
		"string", "integer", "decimal", "date", "dateTime", "boolean",
		"anyURI", "token", "int", "double",
	}
)

// Generate builds a deterministic random schema tree. Labels are unique
// within the whole tree, so node paths are unambiguous.
func Generate(cfg Config) *xmltree.Node {
	cfg = cfg.Norm()
	rng := rand.New(rand.NewSource(cfg.Seed))
	used := map[string]bool{}
	label := func() string {
		for i := 0; ; i++ {
			mod := synthModifiers[rng.Intn(len(synthModifiers))]
			noun := synthNouns[rng.Intn(len(synthNouns))]
			l := mod + noun
			if i > 20 {
				l = fmt.Sprintf("%s%d", l, rng.Intn(10000))
			}
			if !used[l] {
				used[l] = true
				return l
			}
		}
	}

	root := xmltree.New(label(), xmltree.Elem(""))
	// interior tracks nodes eligible to receive more children.
	interior := []*xmltree.Node{root}
	size := 1
	for size < cfg.Elements {
		// Pick a non-full parent, pruning full ones from the pool. If
		// the pool runs dry, promote any eligible node found in the
		// tree; as a last resort let the root exceed the fan-out bound
		// so generation always terminates.
		var parent *xmltree.Node
		for parent == nil {
			if len(interior) == 0 {
				if cand := findEligible(root, cfg); cand != nil {
					cand.Props.Type = ""
					interior = append(interior, cand)
				} else {
					parent = root
					break
				}
			}
			i := rng.Intn(len(interior))
			p := interior[i]
			if len(p.Children) >= cfg.MaxChildren {
				interior = append(interior[:i], interior[i+1:]...)
				continue
			}
			parent = p
		}
		child := newLeaf(rng, label(), cfg)
		parent.Add(child)
		size++
		// A child strictly above the depth limit may itself become an
		// interior node.
		if child.Level() < cfg.MaxDepth && !child.Props.IsAttribute && rng.Float64() < 0.35 {
			child.Props.Type = ""
			interior = append(interior, child)
		}
	}
	canonicalize(root)
	return root
}

// canonicalize orders every node's children attributes-first (the tree
// model's convention, which the XSD renderer and parser also follow) and
// reassigns the Order property accordingly; the root gets Order 1 like a
// first global element declaration. This keeps generated trees stable
// under an XSD render/parse round trip.
func canonicalize(root *xmltree.Node) {
	root.Props.Order = 1
	root.Walk(func(n *xmltree.Node) bool {
		if len(n.Children) > 1 {
			var attrs, elems []*xmltree.Node
			for _, c := range n.Children {
				if c.Props.IsAttribute {
					attrs = append(attrs, c)
				} else {
					elems = append(elems, c)
				}
			}
			n.Children = append(attrs, elems...)
		}
		for i, c := range n.Children {
			c.Props.Order = i + 1
		}
		return true
	})
}

// findEligible returns a node that can still take children within the
// configured bounds, or nil when the tree is at capacity.
func findEligible(root *xmltree.Node, cfg Config) *xmltree.Node {
	var hit *xmltree.Node
	root.Walk(func(n *xmltree.Node) bool {
		if hit != nil {
			return false
		}
		if !n.Props.IsAttribute && n.Level() < cfg.MaxDepth && len(n.Children) < cfg.MaxChildren {
			hit = n
			return false
		}
		return true
	})
	return hit
}

func newLeaf(rng *rand.Rand, label string, cfg Config) *xmltree.Node {
	typ := synthLeafTypes[rng.Intn(len(synthLeafTypes))]
	var props xmltree.Properties
	if rng.Float64() < cfg.AttributeRatio {
		props = xmltree.Attr(typ)
	} else {
		props = xmltree.Elem(typ)
		switch rng.Intn(4) {
		case 0:
			props = props.Optional()
		case 1:
			props = props.Repeated()
		}
	}
	return xmltree.New(label, props)
}
