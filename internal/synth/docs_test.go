package synth

import (
	"strings"
	"testing"

	"qmatch/internal/dataset"
	"qmatch/internal/instances"
	"qmatch/internal/validate"
	"qmatch/internal/xmltree"
)

func TestGenerateDocumentsValidate(t *testing.T) {
	// Generated documents must validate against their schema — the
	// cross-module consistency check between generator and validator.
	for _, schema := range []*xmltree.Node{
		dataset.PO1(),
		dataset.Book(),
		Generate(Config{Seed: 4, Elements: 50, MaxDepth: 4, MaxChildren: 6, AttributeRatio: 0.2}),
	} {
		docs := GenerateDocuments(schema, 5, 11)
		if len(docs) != 5 {
			t.Fatalf("docs = %d", len(docs))
		}
		for i, d := range docs {
			vs, err := validate.AgainstString(schema, d)
			if err != nil {
				t.Fatalf("%s doc %d unparseable: %v\n%s", schema.Label, i, err, d)
			}
			if len(vs) != 0 {
				t.Fatalf("%s doc %d invalid: %v\n%s", schema.Label, i, vs, d)
			}
		}
	}
}

func TestGenerateDocumentsDeterministic(t *testing.T) {
	schema := dataset.PO1()
	a := GenerateDocuments(schema, 3, 7)
	b := GenerateDocuments(schema, 3, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	c := GenerateDocuments(schema, 3, 8)
	if a[0] == c[0] {
		t.Fatal("seed ignored")
	}
}

func TestGenerateDocumentsTypedValues(t *testing.T) {
	schema := dataset.PO1()
	docs := GenerateDocuments(schema, 4, 3)
	joined := strings.Join(docs, "")
	if !strings.Contains(joined, "<OrderNo>") {
		t.Fatalf("docs missing OrderNo:\n%s", docs[0])
	}
	// Date fields look like dates.
	if !strings.Contains(joined, "<PurchaseDate>20") {
		t.Fatalf("date values wrong:\n%s", docs[0])
	}
}

// Documents of a schema and of its renamed variant must yield correlated
// instance profiles for corresponding fields — the property the
// instance-evidence experiments rely on.
func TestVariantDocumentsCorrelate(t *testing.T) {
	src := Generate(Config{Seed: 21, Elements: 30, MaxDepth: 3, MaxChildren: 6})
	variant, gold := Derive(src, MutationConfig{Seed: 23, RenameProb: 1}) // rename everything
	srcDocs := GenerateDocuments(src, 6, 31)
	varDocs := GenerateDocuments(variant, 6, 37)

	sp, err := instances.CollectStrings(src, srcDocs...)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := instances.CollectStrings(variant, varDocs...)
	if err != nil {
		t.Fatal(err)
	}
	// For gold leaf pairs present in both profiles, similarity must be
	// high on average.
	total, n := 0.0, 0
	for _, g := range gold.List() {
		a, okA := sp[g.Source]
		b, okB := tp[g.Target]
		if !okA || !okB {
			continue
		}
		total += instances.Similarity(a, b)
		n++
	}
	if n < 5 {
		t.Fatalf("too few comparable leaf pairs: %d", n)
	}
	if avg := total / float64(n); avg < 0.8 {
		t.Fatalf("gold-pair instance similarity = %.2f, want high", avg)
	}
}
