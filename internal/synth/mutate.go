package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"qmatch/internal/lingo"
	"qmatch/internal/match"
	"qmatch/internal/xmltree"
)

// MutationConfig controls how Derive perturbs a schema into a matched
// variant. Each probability is applied independently per node.
type MutationConfig struct {
	// Seed drives all randomness.
	Seed int64
	// RenameProb is the probability of rewriting a node's label into an
	// abbreviation or acronym form (a relaxed label match).
	RenameProb float64
	// OpaqueRenames makes renames draw entirely unrelated labels
	// instead of abbreviations — no linguistic matcher can recover
	// them. Used by the instance-evidence experiments.
	OpaqueRenames bool
	// ReorderProb is the probability of shuffling a node's children
	// (perturbing the order property).
	ReorderProb float64
	// RetypeProb is the probability of replacing a leaf's type with a
	// compatible one (int → decimal, date → dateTime, ...).
	RetypeProb float64
	// DropProb is the probability of deleting a leaf from the variant
	// (those nodes get no gold entry).
	DropProb float64
	// OptionalizeProb is the probability of relaxing a node's
	// minOccurs to 0.
	OptionalizeProb float64
}

// Uniform returns a MutationConfig applying every mutation with the same
// intensity p (clamped to [0,1]) — the x-axis of the robustness experiment.
func Uniform(seed int64, p float64) MutationConfig {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return MutationConfig{
		Seed:            seed,
		RenameProb:      p,
		ReorderProb:     p,
		RetypeProb:      p,
		DropProb:        p / 2, // dropping shrinks the gold; keep it gentler
		OptionalizeProb: p,
	}
}

// compatibleTypes maps a type to the compatible alternatives Retype picks
// from.
var compatibleTypes = map[string][]string{
	"string":   {"token", "normalizedString"},
	"integer":  {"int", "long", "decimal"},
	"int":      {"integer", "long"},
	"decimal":  {"double", "float"},
	"double":   {"decimal", "float"},
	"date":     {"dateTime"},
	"dateTime": {"date"},
	"boolean":  {"boolean"},
	"anyURI":   {"string"},
	"token":    {"string"},
}

// Derive clones src, perturbs the clone per cfg, and returns the variant
// together with the gold standard mapping every surviving source node to
// its counterpart in the variant. The root is never dropped or renamed
// beyond abbreviation, so the pair stays a meaningful match task.
func Derive(src *xmltree.Node, cfg MutationConfig) (*xmltree.Node, *match.Gold) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	variant := src.Clone()

	// Pair source nodes with their clones positionally before mutation.
	srcNodes := src.Nodes()
	varNodes := variant.Nodes()
	counterpart := map[*xmltree.Node]*xmltree.Node{}
	for i, s := range srcNodes {
		counterpart[s] = varNodes[i]
	}

	dropped := map[*xmltree.Node]bool{}
	for _, v := range varNodes {
		if v.Parent() != nil && v.IsLeaf() && rng.Float64() < cfg.DropProb {
			dropped[v] = true
			continue
		}
		if rng.Float64() < cfg.RenameProb {
			if cfg.OpaqueRenames {
				v.Label = opaqueLabel(rng)
			} else {
				v.Label = abbreviate(rng, v.Label)
			}
		}
		if rng.Float64() < cfg.RetypeProb && v.IsLeaf() {
			if alts := compatibleTypes[v.Props.Type]; len(alts) > 0 {
				v.Props.Type = alts[rng.Intn(len(alts))]
			}
		}
		if rng.Float64() < cfg.OptionalizeProb {
			v.Props.MinOccurs = 0
		}
		if rng.Float64() < cfg.ReorderProb && len(v.Children) > 1 {
			shuffleChildren(rng, v)
		}
	}
	for v := range dropped {
		detach(v)
	}

	var pairs [][2]string
	for _, s := range srcNodes {
		v := counterpart[s]
		if dropped[v] {
			continue
		}
		pairs = append(pairs, [2]string{s.Path(), v.Path()})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	return variant, match.NewGold(pairs...)
}

// opaqueWords supply labels with no lexical relation to the generator's
// vocabulary.
var opaqueWords = []string{
	"Zyx", "Quorv", "Blent", "Kraled", "Vomit", "Drusk", "Plim", "Snerg",
	"Thwick", "Grolb", "Yintra", "Moxel", "Frandle", "Urp", "Clostrum",
}

// opaqueLabel draws a fresh label unrelated to any source vocabulary.
func opaqueLabel(rng *rand.Rand) string {
	return fmt.Sprintf("%s%s%d",
		opaqueWords[rng.Intn(len(opaqueWords))],
		opaqueWords[rng.Intn(len(opaqueWords))],
		rng.Intn(1000))
}

// abbreviate rewrites a label into a shorter, still-recognizable form:
// multi-token labels become their acronym or keep abbreviated tokens;
// single tokens lose interior vowels or truncate to a prefix.
func abbreviate(rng *rand.Rand, label string) string {
	tokens := lingo.Tokenize(label)
	if len(tokens) == 0 {
		return label
	}
	if len(tokens) >= 2 && rng.Float64() < 0.4 {
		return strings.ToUpper(lingo.FirstLetters(tokens))
	}
	out := make([]string, len(tokens))
	for i, tok := range tokens {
		out[i] = abbreviateToken(rng, tok)
	}
	// Re-title-case so the label still looks like a schema name.
	for i, tok := range out {
		if tok != "" {
			out[i] = strings.ToUpper(tok[:1]) + tok[1:]
		}
	}
	return strings.Join(out, "")
}

func abbreviateToken(rng *rand.Rand, tok string) string {
	if len(tok) <= 4 {
		return tok
	}
	if rng.Float64() < 0.5 {
		// Vowel-stripped skeleton, e.g. "quantity" → "qntty".
		var b strings.Builder
		b.WriteByte(tok[0])
		for i := 1; i < len(tok); i++ {
			switch tok[i] {
			case 'a', 'e', 'i', 'o', 'u':
			default:
				b.WriteByte(tok[i])
			}
		}
		if s := b.String(); len(s) >= 2 {
			return s
		}
		return tok
	}
	// Prefix truncation, e.g. "description" → "desc".
	n := 3 + rng.Intn(2)
	if n >= len(tok) {
		return tok
	}
	return tok[:n]
}

func shuffleChildren(rng *rand.Rand, n *xmltree.Node) {
	rng.Shuffle(len(n.Children), func(i, j int) {
		n.Children[i], n.Children[j] = n.Children[j], n.Children[i]
	})
	for i, c := range n.Children {
		c.Props.Order = i + 1
	}
	// Order changed; cached paths are unaffected (labels unchanged) but
	// keep the invariant that Children order defines document order.
}

// detach removes a node from its parent's child list.
func detach(n *xmltree.Node) {
	p := n.Parent()
	if p == nil {
		return
	}
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
}
