package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"qmatch/internal/xmltree"
)

// Instance-document generation: produce XML documents that conform to a
// schema tree, with per-field value styles that are stable under label
// renames — so documents generated for a schema and for its Derive'd
// variant exhibit correlated field statistics, which is what the
// instance-evidence experiments need.

// GenerateDocuments produces count XML documents conforming to the schema.
// Occurrence constraints are honored (optional fields appear ~70% of the
// time, repeated fields 1–3 times); values follow a per-field style
// derived from the field's type and position, not its label.
func GenerateDocuments(schema *xmltree.Node, count int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	docs := make([]string, count)
	for i := range docs {
		var b strings.Builder
		b.WriteString(`<?xml version="1.0"?>` + "\n")
		writeElement(&b, rng, schema, 0)
		docs[i] = b.String()
	}
	return docs
}

func writeElement(b *strings.Builder, rng *rand.Rand, n *xmltree.Node, depth int) {
	ind := strings.Repeat("  ", depth)
	b.WriteString(ind + "<" + n.Label)
	var elems []*xmltree.Node
	for _, c := range n.Children {
		if c.Props.IsAttribute {
			b.WriteString(fmt.Sprintf(" %s=%q", c.Label, value(rng, c)))
		} else {
			elems = append(elems, c)
		}
	}
	if len(elems) == 0 {
		if n.Props.Type != "" {
			b.WriteString(">" + value(rng, n) + "</" + n.Label + ">\n")
		} else {
			b.WriteString("/>\n")
		}
		return
	}
	b.WriteString(">\n")
	for _, c := range elems {
		p := c.Props.Norm()
		occurrences := 1
		if p.MinOccurs == 0 {
			if rng.Float64() < 0.3 {
				occurrences = 0
			}
		}
		if p.MaxOccurs == xmltree.Unbounded && occurrences > 0 {
			occurrences = 1 + rng.Intn(3)
		}
		for i := 0; i < occurrences; i++ {
			writeElement(b, rng, c, depth+1)
		}
	}
	b.WriteString(ind + "</" + n.Label + ">\n")
}

// value produces a random value matching the field's declared type. The
// style (length, vocabulary slice) is seeded from type, order and level —
// properties that survive Derive's renames — so corresponding fields in a
// schema and its variant share value distributions.
func value(rng *rand.Rand, n *xmltree.Node) string {
	if n.Props.Fixed != "" {
		return n.Props.Fixed
	}
	style := int64(n.Props.Order*31 + n.Level()*7)
	switch xmltree.CanonicalType(n.Props.Type) {
	case "integer", "int", "long", "short", "nonNegativeInteger", "positiveInteger":
		// Magnitude per style: ids are long, counts are short.
		digits := 1 + int(style)%5
		lo := pow10(digits - 1)
		return fmt.Sprint(lo + rng.Intn(9*lo))
	case "decimal", "double", "float":
		return fmt.Sprintf("%d.%02d", rng.Intn(900)+100, rng.Intn(100))
	case "boolean":
		if rng.Intn(2) == 0 {
			return "true"
		}
		return "false"
	case "date":
		return fmt.Sprintf("20%02d-%02d-%02d", rng.Intn(30), 1+rng.Intn(12), 1+rng.Intn(28))
	case "dateTime":
		return fmt.Sprintf("20%02d-%02d-%02dT%02d:00:00Z", rng.Intn(30), 1+rng.Intn(12), 1+rng.Intn(28), rng.Intn(24))
	case "gYear":
		return fmt.Sprint(1980 + rng.Intn(40))
	case "anyURI":
		return fmt.Sprintf("http://example.com/%s%d", docWords[int(style)%len(docWords)], rng.Intn(100))
	case "ID", "IDREF", "NMTOKEN", "token":
		return fmt.Sprintf("%s%04d", docWords[int(style)%len(docWords)], rng.Intn(10000))
	default:
		// Free text whose length depends on the style.
		words := 1 + int(style)%6
		parts := make([]string, words)
		for i := range parts {
			parts[i] = docWords[rng.Intn(len(docWords))]
		}
		return strings.Join(parts, " ")
	}
}

func pow10(n int) int {
	out := 1
	for i := 0; i < n; i++ {
		out *= 10
	}
	return out
}

var docWords = []string{
	"alpha", "harbor", "granite", "meadow", "copper", "violet", "summit",
	"lantern", "river", "orchard", "timber", "falcon", "ember", "willow",
	"quartz", "breeze", "cinder", "maple", "tundra", "prairie",
}
