// Package artifact implements compiled, content-addressed schema
// artifacts: a schema tree compiled once into the representation every
// match needs — the pre-order node list, the interned label and
// normalized-property vocabularies of the similarity kernel, and a
// label-signature sketch for cheap corpus prefiltering — plus a versioned
// binary encoding whose SHA-256 doubles as the artifact's identity.
//
// Compiling is the parse→intern pipeline run once: a schema matched many
// times (the registry/corpus-search workload) pays for interning at
// compile time instead of on every call, and a decoded artifact is ready
// to match without touching an XML parser. See DESIGN.md §10.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/bits"
	"sort"

	"qmatch/internal/core"
	"qmatch/internal/lingo"
	"qmatch/internal/xmltree"
)

// Binary format (version 1):
//
//	magic   [4]byte  "QMSC"
//	version uint16   big-endian, currently 1
//	sum     [32]byte SHA-256 of the payload
//	paylen  uint64   big-endian payload length
//	payload:
//	  flags  uint16 (bit 0: prefilter vocabulary includes label tokens)
//	  count  uvarint node count
//	  nodes  in pre-order, each:
//	    label      uvarint length + bytes
//	    type       uvarint length + bytes
//	    order      zigzag varint
//	    minOccurs  zigzag varint
//	    maxOccurs  zigzag varint (-1 = unbounded)
//	    bits       1 byte (bit 0 attribute, bit 1 nillable)
//	    use        uvarint length + bytes
//	    fixed      uvarint length + bytes
//	    default    uvarint length + bytes
//	    children   uvarint child count
//
// The payload is a deterministic function of the schema tree and the
// compile flags, so the content ID — the hex of sum — is stable across
// processes and machines: two schemas with equal trees compile to the
// same artifact ID regardless of the surface syntax they were parsed
// from.
var magic = [4]byte{'Q', 'M', 'S', 'C'}

// Version is the current artifact format version.
const Version = 1

// Decode errors. Each failure mode is a distinct sentinel so callers can
// tell a foreign or damaged blob (ErrChecksum, ErrTruncated, ErrMagic)
// from a format-evolution problem (ErrVersion) and from a blob that
// checksums but violates the payload grammar (ErrMalformed).
var (
	ErrMagic     = errors.New("artifact: not a qmatch schema artifact")
	ErrVersion   = errors.New("artifact: unsupported format version")
	ErrChecksum  = errors.New("artifact: checksum mismatch")
	ErrTruncated = errors.New("artifact: truncated blob")
	ErrMalformed = errors.New("artifact: malformed payload")
)

// Flag bits of the payload flags field.
const (
	// FlagLabelTokens marks an artifact whose prefilter vocabulary
	// includes the tokenized forms of compound labels.
	FlagLabelTokens uint16 = 1 << 0
)

// maxDepth bounds tree nesting during decode; schema trees are shallow,
// so anything deeper is a hostile blob, not a schema.
const maxDepth = 4096

// Sketch is a 256-bit signature of an artifact's prefilter vocabulary:
// every term sets two hashed bits. Two schemas with no common term have
// (almost always) disjoint sketches, so a corpus search rejects most
// non-candidates with four AND+popcount words before any set
// intersection runs.
type Sketch [4]uint64

// add sets the two bits of one term.
func (s *Sketch) add(term string) {
	h := fnv.New64a()
	io.WriteString(h, term)
	v := h.Sum64()
	b1, b2 := v&255, (v>>17)&255
	s[b1>>6] |= 1 << (b1 & 63)
	s[b2>>6] |= 1 << (b2 & 63)
}

// Intersects reports whether any bit is shared — the cheap candidate
// test run before exact overlap scoring.
func (s Sketch) Intersects(o Sketch) bool {
	return s[0]&o[0]|s[1]&o[1]|s[2]&o[2]|s[3]&o[3] != 0
}

// Bits returns the number of set bits, for diagnostics.
func (s Sketch) Bits() int {
	return bits.OnesCount64(s[0]) + bits.OnesCount64(s[1]) +
		bits.OnesCount64(s[2]) + bits.OnesCount64(s[3])
}

// Compiled is a schema compiled once into everything a match needs. All
// fields are read-only after Compile/Decode returns, so one Compiled may
// serve any number of concurrent matches.
type Compiled struct {
	// Root is the schema tree.
	Root *xmltree.Node
	// Nodes is the pre-order node list Root.Nodes() would return.
	Nodes []*xmltree.Node
	// Interned is the per-side similarity-kernel vocabulary: dense label
	// and normalized-property ids per node (see core.Intern).
	Interned *core.Interned
	// Terms is the sorted, deduplicated lowercase prefilter vocabulary:
	// the schema's labels, plus their tokens when FlagLabelTokens is set.
	Terms []string
	// Sketch is the 256-bit signature of Terms.
	Sketch Sketch
	// Flags are the compile flags baked into the encoding (and the ID).
	Flags uint16

	id      string // hex SHA-256 of payload
	payload []byte // the canonical encoding, kept for cheap Encode
}

// ID returns the content address: the hex SHA-256 of the canonical
// payload. Equal trees compiled with equal flags share an ID.
func (c *Compiled) ID() string { return c.id }

// Compile runs the intern pipeline over a schema tree and fixes the
// artifact's content address. The tree is captured by reference and must
// not be mutated afterwards.
func Compile(root *xmltree.Node, flags uint16) (*Compiled, error) {
	if root == nil {
		return nil, fmt.Errorf("artifact: compile: nil schema tree")
	}
	payload := encodePayload(root, flags)
	sum := sha256.Sum256(payload)
	c := &Compiled{
		Root:    root,
		Flags:   flags,
		id:      hex.EncodeToString(sum[:]),
		payload: payload,
	}
	c.derive()
	return c, nil
}

// derive fills the computed views over Root: node list, kernel
// vocabulary, prefilter terms and sketch.
func (c *Compiled) derive() {
	c.Nodes = c.Root.Nodes()
	c.Interned = core.Intern(c.Nodes)
	seen := make(map[string]struct{}, len(c.Interned.Labels)*2)
	add := func(term string) {
		if term == "" {
			return
		}
		if _, ok := seen[term]; ok {
			return
		}
		seen[term] = struct{}{}
		c.Terms = append(c.Terms, term)
		c.Sketch.add(term)
	}
	for _, label := range c.Interned.Labels {
		add(lower(label))
		if c.Flags&FlagLabelTokens != 0 {
			for _, tok := range lingo.Tokenize(label) {
				add(tok)
			}
		}
	}
	sort.Strings(c.Terms)
}

// lower is strings.ToLower without the import for the common ASCII case.
func lower(s string) string {
	for i := 0; i < len(s); i++ {
		if b := s[i]; 'A' <= b && b <= 'Z' {
			buf := []byte(s)
			for j := i; j < len(buf); j++ {
				if 'A' <= buf[j] && buf[j] <= 'Z' {
					buf[j] += 'a' - 'A'
				}
			}
			return string(buf)
		}
	}
	return s
}

// Overlap scores the prefilter affinity of two artifacts in [0,1]: the
// exact Jaccard overlap of their term vocabularies, with the sketch
// intersection as a fast zero test. This is the blocking function of the
// corpus search — cheap enough to run against every registry entry, so
// the full QoM table only ever runs on the top-K survivors.
func Overlap(a, b *Compiled) float64 {
	if len(a.Terms) == 0 || len(b.Terms) == 0 {
		return 0
	}
	if !a.Sketch.Intersects(b.Sketch) {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a.Terms) && j < len(b.Terms) {
		switch {
		case a.Terms[i] == b.Terms[j]:
			inter++
			i++
			j++
		case a.Terms[i] < b.Terms[j]:
			i++
		default:
			j++
		}
	}
	union := len(a.Terms) + len(b.Terms) - inter
	return float64(inter) / float64(union)
}

// Encode writes the artifact in the versioned binary format. The bytes
// are deterministic: encoding the same artifact twice — or an artifact
// decoded from these bytes — reproduces them exactly.
func Encode(w io.Writer, c *Compiled) error {
	var hdr [4 + 2 + 32 + 8]byte
	copy(hdr[:4], magic[:])
	binary.BigEndian.PutUint16(hdr[4:6], Version)
	sum := sha256.Sum256(c.payload)
	copy(hdr[6:38], sum[:])
	binary.BigEndian.PutUint64(hdr[38:46], uint64(len(c.payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("artifact: encode: %w", err)
	}
	if _, err := w.Write(c.payload); err != nil {
		return fmt.Errorf("artifact: encode: %w", err)
	}
	return nil
}

// maxPayload caps decoded payloads (64 MiB) so a forged length header
// cannot balloon memory before the checksum is even checked.
const maxPayload = 64 << 20

// Decode reads an artifact written by Encode, verifying version and
// checksum before trusting a single payload byte. Failure modes map to
// the package's sentinel errors (errors.Is):
//
//	ErrMagic      not an artifact stream
//	ErrVersion    format version this build does not speak
//	ErrTruncated  stream ends inside header or payload
//	ErrChecksum   payload does not hash to the header sum
//	ErrMalformed  payload checksums but violates the grammar
func Decode(r io.Reader) (*Compiled, error) {
	var hdr [4 + 2 + 32 + 8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w (magic %q)", ErrMagic, hdr[:4])
	}
	version := binary.BigEndian.Uint16(hdr[4:6])
	if version != Version {
		return nil, fmt.Errorf("%w: got version %d, this build speaks %d", ErrVersion, version, Version)
	}
	paylen := binary.BigEndian.Uint64(hdr[38:46])
	if paylen > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds %d", ErrMalformed, paylen, maxPayload)
	}
	payload := make([]byte, paylen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
	}
	sum := sha256.Sum256(payload)
	if sum != [32]byte(hdr[6:38]) {
		return nil, fmt.Errorf("%w: blob does not hash to its header sum", ErrChecksum)
	}
	root, flags, err := decodePayload(payload)
	if err != nil {
		return nil, err
	}
	c := &Compiled{
		Root:    root,
		Flags:   flags,
		id:      hex.EncodeToString(sum[:]),
		payload: payload,
	}
	c.derive()
	return c, nil
}

// encodePayload serializes flags + tree into the canonical byte form.
func encodePayload(root *xmltree.Node, flags uint16) []byte {
	buf := make([]byte, 2, 256)
	binary.BigEndian.PutUint16(buf[:2], flags)
	nodes := root.Nodes()
	buf = binary.AppendUvarint(buf, uint64(len(nodes)))
	var enc func(n *xmltree.Node) // pre-order, matching Nodes()
	enc = func(n *xmltree.Node) {
		buf = appendString(buf, n.Label)
		p := n.Props
		buf = appendString(buf, p.Type)
		buf = binary.AppendVarint(buf, int64(p.Order))
		buf = binary.AppendVarint(buf, int64(p.MinOccurs))
		buf = binary.AppendVarint(buf, int64(p.MaxOccurs))
		var b byte
		if p.IsAttribute {
			b |= 1
		}
		if p.Nillable {
			b |= 2
		}
		buf = append(buf, b)
		buf = appendString(buf, p.Use)
		buf = appendString(buf, p.Fixed)
		buf = appendString(buf, p.Default)
		buf = binary.AppendUvarint(buf, uint64(len(n.Children)))
		for _, c := range n.Children {
			enc(c)
		}
	}
	enc(root)
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// payloadReader consumes the payload with bounds checking; every read
// failure surfaces as ErrMalformed (the checksum already passed, so a
// short or inconsistent payload is a grammar violation, not truncation).
type payloadReader struct {
	buf []byte
	off int
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.buf[p.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint at offset %d", ErrMalformed, p.off)
	}
	p.off += n
	return v, nil
}

func (p *payloadReader) varint() (int64, error) {
	v, n := binary.Varint(p.buf[p.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at offset %d", ErrMalformed, p.off)
	}
	p.off += n
	return v, nil
}

func (p *payloadReader) str() (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(p.buf)-p.off) {
		return "", fmt.Errorf("%w: string length %d overruns payload", ErrMalformed, n)
	}
	s := string(p.buf[p.off : p.off+int(n)])
	p.off += int(n)
	return s, nil
}

func (p *payloadReader) byte() (byte, error) {
	if p.off >= len(p.buf) {
		return 0, fmt.Errorf("%w: payload ends inside node", ErrMalformed)
	}
	b := p.buf[p.off]
	p.off++
	return b, nil
}

// decodePayload parses the canonical byte form back into a tree.
func decodePayload(payload []byte) (*xmltree.Node, uint16, error) {
	if len(payload) < 2 {
		return nil, 0, fmt.Errorf("%w: payload shorter than flags field", ErrMalformed)
	}
	flags := binary.BigEndian.Uint16(payload[:2])
	p := &payloadReader{buf: payload, off: 2}
	declared, err := p.uvarint()
	if err != nil {
		return nil, 0, err
	}
	if declared == 0 || declared > uint64(len(payload)) {
		// Every node costs several payload bytes, so a count beyond the
		// payload length is a forgery regardless of content.
		return nil, 0, fmt.Errorf("%w: implausible node count %d", ErrMalformed, declared)
	}
	decoded := 0
	var dec func(depth int) (*xmltree.Node, error)
	dec = func(depth int) (*xmltree.Node, error) {
		if depth > maxDepth {
			return nil, fmt.Errorf("%w: nesting beyond %d levels", ErrMalformed, maxDepth)
		}
		if decoded++; uint64(decoded) > declared {
			return nil, fmt.Errorf("%w: more nodes than declared count %d", ErrMalformed, declared)
		}
		label, err := p.str()
		if err != nil {
			return nil, err
		}
		if label == "" {
			return nil, fmt.Errorf("%w: node without label", ErrMalformed)
		}
		var props xmltree.Properties
		if props.Type, err = p.str(); err != nil {
			return nil, err
		}
		order, err := p.varint()
		if err != nil {
			return nil, err
		}
		minOcc, err := p.varint()
		if err != nil {
			return nil, err
		}
		maxOcc, err := p.varint()
		if err != nil {
			return nil, err
		}
		if order < 0 || minOcc < 0 || maxOcc < xmltree.Unbounded {
			return nil, fmt.Errorf("%w: node %q: invalid order/occurrence (%d,%d,%d)",
				ErrMalformed, label, order, minOcc, maxOcc)
		}
		props.Order, props.MinOccurs, props.MaxOccurs = int(order), int(minOcc), int(maxOcc)
		b, err := p.byte()
		if err != nil {
			return nil, err
		}
		if b&^3 != 0 {
			return nil, fmt.Errorf("%w: node %q: unknown property bits %#x", ErrMalformed, label, b)
		}
		props.IsAttribute, props.Nillable = b&1 != 0, b&2 != 0
		if props.Use, err = p.str(); err != nil {
			return nil, err
		}
		if props.Fixed, err = p.str(); err != nil {
			return nil, err
		}
		if props.Default, err = p.str(); err != nil {
			return nil, err
		}
		kids, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if kids > uint64(len(p.buf)-p.off) {
			return nil, fmt.Errorf("%w: node %q: child count %d overruns payload", ErrMalformed, label, kids)
		}
		n := xmltree.New(label, props)
		for i := uint64(0); i < kids; i++ {
			c, err := dec(depth + 1)
			if err != nil {
				return nil, err
			}
			// Preserve the serialized Order rather than Add's renumbering.
			ord := c.Props.Order
			n.Add(c)
			c.Props.Order = ord
		}
		return n, nil
	}
	root, err := dec(0)
	if err != nil {
		return nil, 0, err
	}
	if uint64(decoded) != declared {
		return nil, 0, fmt.Errorf("%w: declared %d nodes, decoded %d", ErrMalformed, declared, decoded)
	}
	if p.off != len(p.buf) {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes after tree", ErrMalformed, len(p.buf)-p.off)
	}
	return root, flags, nil
}
