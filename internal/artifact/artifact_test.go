package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"qmatch/internal/dataset"
	"qmatch/internal/xmltree"
	"qmatch/internal/xsd"
)

// compileT compiles a dataset tree or fails the test.
func compileT(t *testing.T, root *xmltree.Node, flags uint16) *Compiled {
	t.Helper()
	c, err := Compile(root, flags)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// encodeT renders an artifact to bytes.
func encodeT(t *testing.T, c *Compiled) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name  string
		root  *xmltree.Node
		flags uint16
	}{
		{"po1", dataset.PO1(), 0},
		{"po2-tokens", dataset.PO2(), FlagLabelTokens},
		{"book", dataset.Book(), 0},
		{"human", dataset.Human(), FlagLabelTokens},
	} {
		t.Run(tc.name, func(t *testing.T) {
			orig := compileT(t, tc.root, tc.flags)
			blob := encodeT(t, orig)
			back, err := Decode(bytes.NewReader(blob))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if back.ID() != orig.ID() {
				t.Errorf("ID changed across round trip: %s != %s", back.ID(), orig.ID())
			}
			if back.Flags != orig.Flags {
				t.Errorf("flags changed: %d != %d", back.Flags, orig.Flags)
			}
			// The decoded tree must render to the identical schema document.
			if got, want := xsd.Render(back.Root), xsd.Render(orig.Root); got != want {
				t.Errorf("decoded tree renders differently:\n%s\nwant:\n%s", got, want)
			}
			// The derived views must be recomputed identically: they are
			// what the compiled match path consumes.
			if !reflect.DeepEqual(back.Interned, orig.Interned) {
				t.Error("interned vocabulary differs after round trip")
			}
			if !reflect.DeepEqual(back.Terms, orig.Terms) {
				t.Errorf("terms differ after round trip: %v != %v", back.Terms, orig.Terms)
			}
			if back.Sketch != orig.Sketch {
				t.Error("sketch differs after round trip")
			}
			// Re-encoding a decoded artifact must reproduce the bytes.
			if !bytes.Equal(encodeT(t, back), blob) {
				t.Error("re-encode is not byte-identical")
			}
		})
	}
}

func TestContentID(t *testing.T) {
	a := compileT(t, dataset.PO1(), 0)
	b := compileT(t, dataset.PO1(), 0)
	if a.ID() != b.ID() {
		t.Errorf("equal trees, equal flags: IDs differ (%s vs %s)", a.ID(), b.ID())
	}
	c := compileT(t, dataset.PO1(), FlagLabelTokens)
	if c.ID() == a.ID() {
		t.Error("different flags must change the content ID")
	}
	d := compileT(t, dataset.PO2(), 0)
	if d.ID() == a.ID() {
		t.Error("different trees must change the content ID")
	}
	if len(a.ID()) != 64 {
		t.Errorf("ID is not a hex SHA-256: %q", a.ID())
	}
}

// header offsets of the binary format.
const (
	offVersion = 4
	offSum     = 6
	offPaylen  = 38
	offPayload = 46
)

// reseal recomputes checksum and length after a payload mutation, so the
// blob fails in the payload grammar, not at the checksum gate.
func reseal(blob []byte) []byte {
	payload := blob[offPayload:]
	sum := sha256.Sum256(payload)
	copy(blob[offSum:offSum+32], sum[:])
	binary.BigEndian.PutUint64(blob[offPaylen:offPaylen+8], uint64(len(payload)))
	return blob
}

// payloadOf hand-builds a payload from one node's fields so grammar
// violations can be planted at exact positions.
type rawNode struct {
	label, typ            string
	order, minOcc, maxOcc int64
	bits                  byte
	use, fixed, def       string
	children              uint64
}

func buildPayload(flags uint16, count uint64, nodes ...rawNode) []byte {
	buf := make([]byte, 2)
	binary.BigEndian.PutUint16(buf, flags)
	buf = binary.AppendUvarint(buf, count)
	for _, n := range nodes {
		buf = appendString(buf, n.label)
		buf = appendString(buf, n.typ)
		buf = binary.AppendVarint(buf, n.order)
		buf = binary.AppendVarint(buf, n.minOcc)
		buf = binary.AppendVarint(buf, n.maxOcc)
		buf = append(buf, n.bits)
		buf = appendString(buf, n.use)
		buf = appendString(buf, n.fixed)
		buf = appendString(buf, n.def)
		buf = binary.AppendUvarint(buf, n.children)
	}
	return buf
}

func seal(payload []byte) []byte {
	blob := make([]byte, offPayload, offPayload+len(payload))
	copy(blob, magic[:])
	binary.BigEndian.PutUint16(blob[offVersion:], Version)
	sum := sha256.Sum256(payload)
	copy(blob[offSum:], sum[:])
	binary.BigEndian.PutUint64(blob[offPaylen:], uint64(len(payload)))
	return append(blob, payload...)
}

// TestDecodeRejectsCorruptBlobs drives every decode failure mode through
// its typed sentinel: magic, version, truncation, checksum, and a table
// of checksummed-but-malformed payloads.
func TestDecodeRejectsCorruptBlobs(t *testing.T) {
	valid := encodeT(t, compileT(t, dataset.PO1(), 0))
	okNode := rawNode{label: "A", minOcc: 1, maxOcc: 1}

	cases := []struct {
		name string
		blob []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"header-cut", append([]byte(nil), valid[:20]...), ErrTruncated},
		{"payload-cut", append([]byte(nil), valid[:len(valid)-3]...), ErrTruncated},
		{"bad-magic", func() []byte {
			b := append([]byte(nil), valid...)
			b[0] = 'X'
			return b
		}(), ErrMagic},
		{"future-version", func() []byte {
			b := append([]byte(nil), valid...)
			binary.BigEndian.PutUint16(b[offVersion:], Version+1)
			return b
		}(), ErrVersion},
		{"flipped-payload-byte", func() []byte {
			b := append([]byte(nil), valid...)
			b[len(b)-1] ^= 0xff
			return b
		}(), ErrChecksum},
		{"forged-length", func() []byte {
			b := append([]byte(nil), valid...)
			binary.BigEndian.PutUint64(b[offPaylen:], maxPayload+1)
			return b
		}(), ErrMalformed},
		{"trailing-bytes", reseal(append(append([]byte(nil), valid...), 0)), ErrMalformed},
		{"zero-node-count", seal(buildPayload(0, 0)), ErrMalformed},
		{"implausible-node-count", seal(buildPayload(0, 1<<40, okNode)), ErrMalformed},
		{"count-overrun", seal(buildPayload(0, 2, okNode)), ErrMalformed},
		{"empty-label", seal(buildPayload(0, 1, rawNode{label: "", minOcc: 1, maxOcc: 1})), ErrMalformed},
		{"negative-order", seal(buildPayload(0, 1, rawNode{label: "A", order: -1, minOcc: 1, maxOcc: 1})), ErrMalformed},
		{"bad-max-occurs", seal(buildPayload(0, 1, rawNode{label: "A", minOcc: 1, maxOcc: -2})), ErrMalformed},
		{"unknown-prop-bits", seal(buildPayload(0, 1, rawNode{label: "A", minOcc: 1, maxOcc: 1, bits: 0xf0})), ErrMalformed},
		{"child-count-overrun", seal(buildPayload(0, 2, rawNode{label: "A", minOcc: 1, maxOcc: 1, children: 1 << 30})), ErrMalformed},
		{"string-overrun", seal(func() []byte {
			buf := make([]byte, 2)
			buf = binary.AppendUvarint(buf, 1)
			buf = binary.AppendUvarint(buf, 1<<20) // label length far past payload end
			return buf
		}()), ErrMalformed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(bytes.NewReader(tc.blob))
			if err == nil {
				t.Fatal("decode accepted a corrupt blob")
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("got %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}

	// The pristine blob must still decode after all that surgery on copies.
	if _, err := Decode(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid blob rejected: %v", err)
	}
}

func TestOverlap(t *testing.T) {
	po1 := compileT(t, dataset.PO1(), 0)
	po1b := compileT(t, dataset.PO1(), 0)
	if got := Overlap(po1, po1b); got != 1 {
		t.Errorf("identical vocabularies: overlap %v, want 1", got)
	}
	po2 := compileT(t, dataset.PO2(), 0)
	mid := Overlap(po1, po2)
	if mid <= 0 || mid >= 1 {
		t.Errorf("related schemas: overlap %v, want in (0,1)", mid)
	}
	human := compileT(t, dataset.Human(), 0)
	far := Overlap(po1, human)
	if far >= mid {
		t.Errorf("unrelated schema overlaps (%v) at least as much as the related one (%v)", far, mid)
	}
	if Overlap(po1, po2) != Overlap(po2, po1) {
		t.Error("overlap is not symmetric")
	}
}

func TestLabelTokensGrowVocabulary(t *testing.T) {
	plain := compileT(t, dataset.PO1(), 0)
	tokens := compileT(t, dataset.PO1(), FlagLabelTokens)
	if len(tokens.Terms) <= len(plain.Terms) {
		t.Errorf("token vocabulary (%d terms) not larger than plain (%d)",
			len(tokens.Terms), len(plain.Terms))
	}
}

func TestSketch(t *testing.T) {
	a := compileT(t, dataset.PO1(), 0)
	if a.Sketch.Bits() == 0 {
		t.Error("non-empty vocabulary produced an empty sketch")
	}
	if !a.Sketch.Intersects(a.Sketch) {
		t.Error("sketch does not intersect itself")
	}
	var empty Sketch
	if empty.Intersects(a.Sketch) {
		t.Error("empty sketch intersects a populated one")
	}
}
