package translate

import (
	"strings"
	"testing"

	"qmatch/internal/core"
	"qmatch/internal/dataset"
	"qmatch/internal/match"
	"qmatch/internal/validate"
	"qmatch/internal/xmltree"
)

const poDoc = `<PO>
  <OrderNo>12345</OrderNo>
  <PurchaseInfo>
    <BillingAddr>1 Main St</BillingAddr>
    <ShippingAddr>2 Side Ave</ShippingAddr>
    <Lines>
      <Item>Widget</Item>
      <Quantity>3</Quantity>
      <UnitOfMeasure>kg</UnitOfMeasure>
    </Lines>
  </PurchaseInfo>
  <PurchaseDate>2005-04-05</PurchaseDate>
</PO>`

// endToEnd matches PO1 against PO2 with the hybrid and translates a PO
// document into the Purchase Order structure — the full integration
// pipeline the paper motivates.
func endToEnd(t *testing.T) string {
	t.Helper()
	src, tgt := dataset.PO1(), dataset.PO2()
	cs := core.NewHybrid(nil).Match(src, tgt)
	tr, err := New(src, tgt, cs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tr.TranslateString(poDoc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestTranslatePODocument(t *testing.T) {
	out := endToEnd(t)
	for _, want := range []string{
		"<PurchaseOrder>",
		"<OrderNo>12345</OrderNo>",
		"<BillTo>1 Main St</BillTo>",
		"<ShipTo>2 Side Ave</ShipTo>",
		"<Item#>Widget</Item#>",
		"<Qty>3</Qty>",
		"<UOM>kg</UOM>",
		"<Date>2005-04-05</Date>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTranslatedDocumentValidates(t *testing.T) {
	out := endToEnd(t)
	// The element name "Item#" is valid in our tree model but not in
	// XML; the validator parses real XML, so rename for the check.
	out = strings.ReplaceAll(out, "Item#", "ItemNo")
	tgt := dataset.PO2()
	tgt.Find("PurchaseOrder/Items/Item#").Label = "ItemNo"
	vs, err := validate.AgainstString(tgt, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("translated document invalid: %v\n%s", vs, out)
	}
}

func TestTranslateRepeatedScoped(t *testing.T) {
	// Two repeated source groups must fan out into two scoped target
	// groups without mixing leaf values.
	src := xmltree.NewTree("Cart", xmltree.Elem(""),
		xmltree.NewTree("Line", xmltree.Elem("").Repeated(),
			xmltree.New("Sku", xmltree.Elem("string")),
			xmltree.New("Count", xmltree.Elem("integer")),
		),
	)
	tgt := xmltree.NewTree("Basket", xmltree.Elem(""),
		xmltree.NewTree("Entry", xmltree.Elem("").Repeated(),
			xmltree.New("Product", xmltree.Elem("string")),
			xmltree.New("Amount", xmltree.Elem("integer")),
		),
	)
	tr, err := New(src, tgt, []match.Correspondence{
		{Source: "Cart", Target: "Basket"},
		{Source: "Cart/Line", Target: "Basket/Entry"},
		{Source: "Cart/Line/Sku", Target: "Basket/Entry/Product"},
		{Source: "Cart/Line/Count", Target: "Basket/Entry/Amount"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := tr.TranslateString(`<Cart>
	  <Line><Sku>A</Sku><Count>1</Count></Line>
	  <Line><Sku>B</Sku><Count>2</Count></Line>
	</Cart>`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "<Entry>") != 2 {
		t.Fatalf("entries:\n%s", out)
	}
	// Scoping: A pairs with 1, B with 2.
	aIdx := strings.Index(out, "<Product>A</Product>")
	bIdx := strings.Index(out, "<Product>B</Product>")
	one := strings.Index(out, "<Amount>1</Amount>")
	two := strings.Index(out, "<Amount>2</Amount>")
	if aIdx < 0 || bIdx < 0 || one < 0 || two < 0 {
		t.Fatalf("values missing:\n%s", out)
	}
	if !(aIdx < one && one < bIdx && bIdx < two) {
		t.Fatalf("values mixed across entries:\n%s", out)
	}
}

func TestTranslateAttributes(t *testing.T) {
	src := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.New("id", xmltree.Attr("integer")),
		xmltree.New("V", xmltree.Elem("string")),
	)
	tgt := xmltree.NewTree("S", xmltree.Elem(""),
		xmltree.New("key", xmltree.Attr("integer")),
		xmltree.New("W", xmltree.Elem("string")),
	)
	tr, err := New(src, tgt, []match.Correspondence{
		{Source: "R", Target: "S"},
		{Source: "R/id", Target: "S/key"},
		{Source: "R/V", Target: "S/W"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := tr.TranslateString(`<R id="7"><V>x</V></R>`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `<S key="7">`) || !strings.Contains(out, "<W>x</W>") {
		t.Fatalf("attribute translation:\n%s", out)
	}
}

func TestTranslateUnmappedRequired(t *testing.T) {
	src := xmltree.NewTree("R", xmltree.Elem(""), xmltree.New("A", xmltree.Elem("string")))
	tgt := xmltree.NewTree("S", xmltree.Elem(""),
		xmltree.New("B", xmltree.Elem("string")),            // mapped
		xmltree.New("C", xmltree.Elem("string")),            // unmapped, required
		xmltree.New("D", xmltree.Elem("string").Optional()), // unmapped, optional
	)
	tr, err := New(src, tgt, []match.Correspondence{
		{Source: "R", Target: "S"},
		{Source: "R/A", Target: "S/B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := tr.TranslateString(`<R><A>x</A></R>`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<B>x</B>") {
		t.Fatalf("mapped value missing:\n%s", out)
	}
	if !strings.Contains(out, "<C/>") {
		t.Fatalf("required placeholder missing:\n%s", out)
	}
	if strings.Contains(out, "<D") {
		t.Fatalf("optional unmapped emitted:\n%s", out)
	}
}

func TestTranslateEscaping(t *testing.T) {
	src := xmltree.NewTree("R", xmltree.Elem(""), xmltree.New("A", xmltree.Elem("string")))
	tgt := xmltree.NewTree("S", xmltree.Elem(""), xmltree.New("B", xmltree.Elem("string")))
	tr, _ := New(src, tgt, []match.Correspondence{
		{Source: "R", Target: "S"},
		{Source: "R/A", Target: "S/B"},
	})
	out, err := tr.TranslateString(`<R><A>a &amp; b &lt; c</A></R>`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<B>a &amp; b &lt; c</B>") {
		t.Fatalf("escaping:\n%s", out)
	}
}

func TestTranslateErrors(t *testing.T) {
	src := xmltree.NewTree("R", xmltree.Elem(""), xmltree.New("A", xmltree.Elem("string")))
	tgt := xmltree.NewTree("S", xmltree.Elem(""), xmltree.New("B", xmltree.Elem("string")))
	// Dangling correspondence paths.
	if _, err := New(src, tgt, []match.Correspondence{{Source: "R/Z", Target: "S/B"}}); err == nil {
		t.Fatal("dangling source accepted")
	}
	if _, err := New(src, tgt, []match.Correspondence{{Source: "R/A", Target: "S/Z"}}); err == nil {
		t.Fatal("dangling target accepted")
	}
	tr, _ := New(src, tgt, []match.Correspondence{{Source: "R/A", Target: "S/B"}})
	if _, err := tr.TranslateString(`<Other/>`); err == nil {
		t.Fatal("wrong root accepted")
	}
	if _, err := tr.TranslateString(`<R><broken>`); err == nil {
		t.Fatal("malformed accepted")
	}
	if _, err := tr.TranslateString(``); err == nil {
		t.Fatal("empty accepted")
	}
}
