// Package translate converts XML instance documents from a source schema's
// structure into a target schema's structure, driven by the element
// correspondences a matcher discovered. It closes the integration loop the
// QMatch paper motivates: match the schemas, translate the data, validate
// the result against the target schema (cf. TranScm [13] in the paper's
// related work, which couples matching with data translation).
//
// The translation is correspondence-directed: for every target schema
// element that some source path maps to, values are pulled from the
// matching source document nodes. Target elements without a mapped source
// are emitted only when required (minOccurs ≥ 1) and are left empty;
// repeated source nodes fan out into repeated target elements when the
// target declaration allows it.
package translate

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"qmatch/internal/match"
	"qmatch/internal/xmltree"
)

// Translator holds a compiled mapping between two schemas.
type Translator struct {
	source *xmltree.Node
	target *xmltree.Node
	// bySource maps a source schema path to the target schema path.
	bySource map[string]string
	// byTarget maps a target schema path to the source schema path
	// (first correspondence wins when several sources map to one
	// target).
	byTarget map[string]string
}

// New compiles a translator from the correspondences (source path →
// target path). Correspondences whose paths do not exist in the given
// schemas are rejected.
func New(source, target *xmltree.Node, correspondences []match.Correspondence) (*Translator, error) {
	t := &Translator{
		source:   source,
		target:   target,
		bySource: map[string]string{},
		byTarget: map[string]string{},
	}
	for _, c := range correspondences {
		if source.Find(c.Source) == nil {
			return nil, fmt.Errorf("translate: source path %q not in schema %s", c.Source, source.Label)
		}
		if target.Find(c.Target) == nil {
			return nil, fmt.Errorf("translate: target path %q not in schema %s", c.Target, target.Label)
		}
		if _, dup := t.bySource[c.Source]; !dup {
			t.bySource[c.Source] = c.Target
		}
		if _, dup := t.byTarget[c.Target]; !dup {
			t.byTarget[c.Target] = c.Source
		}
	}
	return t, nil
}

// docElem is a parsed instance element.
type docElem struct {
	name     string
	attrs    []xml.Attr
	children []*docElem
	text     string
	parent   *docElem
}

// under reports whether d is inside the subtree rooted at anc (inclusive).
func (d *docElem) under(anc *docElem) bool {
	for n := d; n != nil; n = n.parent {
		if n == anc {
			return true
		}
	}
	return false
}

// Translate reads a source-structured document and writes the
// target-structured equivalent.
func (t *Translator) Translate(r io.Reader, w io.Writer) error {
	doc, err := parseDoc(r)
	if err != nil {
		return err
	}
	if doc.name != t.source.Label {
		return fmt.Errorf("translate: document root %q does not match source schema root %q",
			doc.name, t.source.Label)
	}
	// Index source document nodes by their schema path.
	values := map[string][]*docElem{}
	indexDoc(doc, doc.name, values)

	out := t.buildTarget(t.target, values)
	var b strings.Builder
	b.WriteString(xml.Header)
	renderElem(&b, out, 0)
	_, err = io.WriteString(w, b.String())
	return err
}

// TranslateString is Translate over strings.
func (t *Translator) TranslateString(doc string) (string, error) {
	var b strings.Builder
	if err := t.Translate(strings.NewReader(doc), &b); err != nil {
		return "", err
	}
	return b.String(), nil
}

func parseDoc(r io.Reader) (*docElem, error) {
	dec := xml.NewDecoder(r)
	var stack []*docElem
	var root *docElem
	var texts []*strings.Builder
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("translate: parse: %w", err)
		}
		switch tk := tok.(type) {
		case xml.StartElement:
			n := &docElem{name: tk.Name.Local, attrs: tk.Attr}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("translate: multiple document roots")
				}
				root = n
			} else {
				p := stack[len(stack)-1]
				n.parent = p
				p.children = append(p.children, n)
			}
			stack = append(stack, n)
			texts = append(texts, &strings.Builder{})
		case xml.EndElement:
			top := stack[len(stack)-1]
			top.text = strings.TrimSpace(texts[len(texts)-1].String())
			stack = stack[:len(stack)-1]
			texts = texts[:len(texts)-1]
		case xml.CharData:
			if len(texts) > 0 {
				texts[len(texts)-1].Write([]byte(tk))
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("translate: empty document")
	}
	return root, nil
}

// indexDoc records every document element (and attribute, as a synthetic
// element) under its slash path.
func indexDoc(e *docElem, path string, values map[string][]*docElem) {
	values[path] = append(values[path], e)
	for _, a := range e.attrs {
		values[path+"/"+a.Name.Local] = append(values[path+"/"+a.Name.Local],
			&docElem{name: a.Name.Local, text: a.Value, parent: e})
	}
	for _, c := range e.children {
		indexDoc(c, path+"/"+c.name, values)
	}
}

// outElem is a built target element.
type outElem struct {
	name     string
	attrs    []xml.Attr
	children []*outElem
	text     string
	isAttr   bool
}

// buildTarget constructs the target element for one schema node, pulling
// values via the mapping.
func (t *Translator) buildTarget(schema *xmltree.Node, values map[string][]*docElem) *outElem {
	insts := t.instancesFor(schema, values)
	var primary *docElem
	if len(insts) > 0 {
		primary = insts[0]
	}
	return t.buildOne(schema, primary, values)
}

// instancesFor returns the source document nodes mapped to a target schema
// node, if any.
func (t *Translator) instancesFor(schema *xmltree.Node, values map[string][]*docElem) []*docElem {
	srcPath, ok := t.byTarget[schema.Path()]
	if !ok {
		return nil
	}
	return values[srcPath]
}

func (t *Translator) buildOne(schema *xmltree.Node, inst *docElem, values map[string][]*docElem) *outElem {
	out := &outElem{name: schema.Label, isAttr: schema.Props.IsAttribute}
	if schema.IsLeaf() {
		if inst != nil {
			out.text = inst.text
		}
		return out
	}
	for _, child := range schema.Children {
		srcPath, mapped := t.byTarget[child.Path()]
		var insts []*docElem
		if mapped {
			insts = values[srcPath]
			// Scope to the current source instance: when this target
			// element was built from a specific (possibly repeated)
			// source node, its children must come from that node's
			// subtree only.
			if inst != nil {
				scoped := insts[:0:0]
				for _, d := range insts {
					if d.under(inst) {
						scoped = append(scoped, d)
					}
				}
				if len(scoped) > 0 {
					insts = scoped
				}
			}
		}
		p := child.Props.Norm()
		switch {
		case len(insts) == 0:
			// Unmapped or absent: emit only if required.
			if p.MinOccurs >= 1 {
				out.add(t.buildOne(child, nil, values))
			}
		case p.MaxOccurs == xmltree.Unbounded:
			for _, i := range insts {
				out.add(t.buildOne(child, i, values))
			}
		default:
			out.add(t.buildOne(child, insts[0], values))
		}
	}
	// Stable output: attributes first (matching the schema convention).
	sort.SliceStable(out.children, func(i, j int) bool {
		return out.children[i].isAttr && !out.children[j].isAttr
	})
	return out
}

func (o *outElem) add(c *outElem) {
	if c.isAttr {
		o.attrs = append(o.attrs, xml.Attr{Name: xml.Name{Local: c.name}, Value: c.text})
		return
	}
	o.children = append(o.children, c)
}

func renderElem(b *strings.Builder, e *outElem, depth int) {
	ind := strings.Repeat("  ", depth)
	b.WriteString(ind + "<" + e.name)
	for _, a := range e.attrs {
		b.WriteString(" " + a.Name.Local + `="` + escapeXML(a.Value) + `"`)
	}
	if len(e.children) == 0 {
		if e.text == "" {
			b.WriteString("/>\n")
			return
		}
		b.WriteString(">" + escapeXML(e.text) + "</" + e.name + ">\n")
		return
	}
	b.WriteString(">\n")
	if e.text != "" {
		b.WriteString(ind + "  " + escapeXML(e.text) + "\n")
	}
	for _, c := range e.children {
		renderElem(b, c, depth+1)
	}
	b.WriteString(ind + "</" + e.name + ">\n")
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
