package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qmatch"
	"qmatch/internal/obs"
)

// xsdFor builds a small schema whose root carries n child elements, so
// node counts (and shard costs) are controllable.
func xsdFor(t *testing.T, name string, n int) *qmatch.CompiledSchema {
	t.Helper()
	var b strings.Builder
	b.WriteString(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">`)
	fmt.Fprintf(&b, `<xs:element name=%q><xs:complexType><xs:sequence>`, name)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<xs:element name="%s_f%d" type="xs:string"/>`, name, i)
	}
	b.WriteString(`</xs:sequence></xs:complexType></xs:element></xs:schema>`)
	s, err := qmatch.ParseSchemaString(b.String())
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	cs, err := qmatch.Compile(s)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return cs
}

func testEngine(t *testing.T) *qmatch.Engine {
	t.Helper()
	e, err := qmatch.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// awaitTerminal blocks until the job reaches a terminal state. The update
// channel is grabbed before the progress snapshot, so a transition between
// the two closes the grabbed channel instead of being missed.
func awaitTerminal(j *Job) (Progress, error) {
	deadline := time.After(30 * time.Second)
	for {
		ch := j.Updated()
		p := j.Progress(false)
		if p.Status.Terminal() {
			return p, nil
		}
		select {
		case <-ch:
		case <-deadline:
			return p, fmt.Errorf("job %s not terminal: %+v", j.ID(), p)
		}
	}
}

func waitTerminal(t *testing.T, j *Job) Progress {
	t.Helper()
	p, err := awaitTerminal(j)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPartitionCoversGridOnce(t *testing.T) {
	sources := []*qmatch.CompiledSchema{xsdFor(t, "a", 3), xsdFor(t, "b", 7)}
	targets := []*qmatch.CompiledSchema{xsdFor(t, "c", 2), xsdFor(t, "d", 5), xsdFor(t, "e", 1)}
	for _, budget := range []int64{0, 1, 25, 1 << 20} {
		shards := Partition(sources, targets, budget)
		covered := 0
		for i, sh := range shards {
			if sh.Index != i {
				t.Fatalf("budget %d: shard %d has index %d", budget, i, sh.Index)
			}
			if sh.Start != covered {
				t.Fatalf("budget %d: shard %d starts at %d, want %d", budget, i, sh.Start, covered)
			}
			if sh.Cells() < 1 {
				t.Fatalf("budget %d: empty shard %d", budget, i)
			}
			covered = sh.End
		}
		if covered != len(sources)*len(targets) {
			t.Fatalf("budget %d: covered %d of %d cells", budget, covered, len(sources)*len(targets))
		}
	}
	// A tiny budget forces one cell per shard.
	if got := len(Partition(sources, targets, 1)); got != 6 {
		t.Fatalf("budget 1: %d shards, want 6", got)
	}
	// A huge budget packs everything into one shard.
	if got := len(Partition(sources, targets, 1<<30)); got != 1 {
		t.Fatalf("huge budget: %d shards, want 1", got)
	}
}

func TestJobCompletesAndMatchesSync(t *testing.T) {
	eng := testEngine(t)
	m := New(Config{Engine: eng, ShardCost: 1}) // one cell per shard
	defer m.Close()
	sources := []*qmatch.CompiledSchema{xsdFor(t, "person", 4), xsdFor(t, "order", 3)}
	targets := []*qmatch.CompiledSchema{xsdFor(t, "personnel", 4), xsdFor(t, "invoice", 2)}
	j, err := m.Submit("j1", Spec{Sources: sources, Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	p := waitTerminal(t, j)
	if p.Status != StatusCompleted {
		t.Fatalf("status %s (err %q), want completed", p.Status, p.Error)
	}
	if p.CompletedCells != 4 || p.ShardsDone != 4 {
		t.Fatalf("progress %+v, want 4 cells / 4 shards done", p)
	}
	results, _, _ := j.ResultsFrom(0)
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	// Every cell's bytes must equal the synchronous compiled match.
	want, err := eng.MatchAllCompiled(context.Background(), sources, targets)
	if err != nil {
		t.Fatal(err)
	}
	for k, raw := range results {
		wantRaw, err := json.Marshal(want[k/2][k%2])
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(wantRaw) {
			t.Fatalf("cell %d differs from synchronous MatchAll:\njob:  %s\nsync: %s", k, raw, wantRaw)
		}
	}
	// The job trace carries the job span plus one shard span per shard.
	mt := j.Trace()
	if mt == nil {
		t.Fatal("no job trace")
	}
	var jobSpans, shardSpans int
	for _, sp := range mt.Spans {
		switch sp.Phase {
		case obs.PhaseJob:
			jobSpans++
		case obs.PhaseShard:
			shardSpans++
		}
	}
	if jobSpans != 1 || shardSpans != 4 {
		t.Fatalf("trace has %d job / %d shard spans, want 1/4", jobSpans, shardSpans)
	}
}

func TestShardFailureRetriesThenSucceeds(t *testing.T) {
	eng := testEngine(t)
	reg := obs.NewRegistry()
	m := New(Config{Engine: eng, ShardCost: 1, RetryBackoff: time.Millisecond, Metrics: reg})
	defer m.Close()
	var failed atomic.Int64
	m.SetFaultInjector(func(jobID string, shard, attempt int) error {
		if shard == 1 && attempt == 1 {
			failed.Add(1)
			return errors.New("injected shard failure")
		}
		return nil
	})
	j, err := m.Submit("retry", Spec{
		Sources: []*qmatch.CompiledSchema{xsdFor(t, "a", 2)},
		Targets: []*qmatch.CompiledSchema{xsdFor(t, "b", 2), xsdFor(t, "c", 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := waitTerminal(t, j)
	if p.Status != StatusCompleted {
		t.Fatalf("status %s (err %q), want completed despite injected failure", p.Status, p.Error)
	}
	if failed.Load() != 1 {
		t.Fatalf("fault injector fired %d times, want 1", failed.Load())
	}
	if p.Retries != 1 {
		t.Fatalf("retries %d, want 1", p.Retries)
	}
	full := j.Progress(true)
	if full.Shards[1].Attempts != 2 {
		t.Fatalf("shard 1 attempts %d, want 2", full.Shards[1].Attempts)
	}
	if v, ok := reg.Value(MetricShardRetries); !ok || v != 1 {
		t.Fatalf("retry metric %d (ok=%v), want 1", v, ok)
	}
	// The retried attempt leaves a partial shard span plus a complete one.
	var partial int
	for _, sp := range j.Trace().Spans {
		if sp.Phase == obs.PhaseShard && sp.Partial {
			partial++
		}
	}
	if partial != 1 {
		t.Fatalf("%d partial shard spans, want 1", partial)
	}
}

func TestWorkerPanicRetriesShard(t *testing.T) {
	eng := testEngine(t)
	m := New(Config{Engine: eng, RetryBackoff: time.Millisecond})
	defer m.Close()
	var panicked atomic.Bool
	m.SetFaultInjector(func(jobID string, shard, attempt int) error {
		if attempt == 1 && !panicked.Swap(true) {
			panic("worker crashed mid-shard")
		}
		return nil
	})
	j, err := m.Submit("panic", Spec{
		Sources: []*qmatch.CompiledSchema{xsdFor(t, "a", 2)},
		Targets: []*qmatch.CompiledSchema{xsdFor(t, "b", 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := waitTerminal(t, j)
	if p.Status != StatusCompleted {
		t.Fatalf("status %s (err %q), want completed after panic retry", p.Status, p.Error)
	}
	if p.Retries != 1 {
		t.Fatalf("retries %d, want 1", p.Retries)
	}
}

func TestShardExhaustsRetriesFailsJob(t *testing.T) {
	eng := testEngine(t)
	m := New(Config{Engine: eng, MaxRetries: 2, RetryBackoff: time.Millisecond})
	defer m.Close()
	m.SetFaultInjector(func(jobID string, shard, attempt int) error {
		return errors.New("persistent failure")
	})
	j, err := m.Submit("doomed", Spec{
		Sources: []*qmatch.CompiledSchema{xsdFor(t, "a", 2)},
		Targets: []*qmatch.CompiledSchema{xsdFor(t, "b", 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := waitTerminal(t, j)
	if p.Status != StatusFailed {
		t.Fatalf("status %s, want failed", p.Status)
	}
	if !strings.Contains(p.Error, "persistent failure") {
		t.Fatalf("error %q does not name the cause", p.Error)
	}
	if p.Retries != 2 {
		t.Fatalf("retries %d, want 2 (MaxRetries)", p.Retries)
	}
}

// blockingExecutor blocks every Execute until its context is cancelled,
// then reports the context error; release unblocks remaining calls.
type blockingExecutor struct {
	inner   Executor
	entered chan struct{}
	mu      sync.Mutex
	blockON bool
}

func (b *blockingExecutor) Execute(ctx context.Context, spec *Spec, shard Shard) ([]json.RawMessage, error) {
	b.mu.Lock()
	blocked := b.blockON
	b.mu.Unlock()
	if blocked {
		select {
		case b.entered <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return b.inner.Execute(ctx, spec, shard)
}

func TestCancelMidShard(t *testing.T) {
	eng := testEngine(t)
	be := &blockingExecutor{inner: EngineExecutor{Engine: eng}, entered: make(chan struct{}, 8), blockON: true}
	m := New(Config{Engine: eng, Executor: be, ShardCost: 1})
	defer m.Close()
	j, err := m.Submit("cancelme", Spec{
		Sources: []*qmatch.CompiledSchema{xsdFor(t, "a", 3)},
		Targets: []*qmatch.CompiledSchema{xsdFor(t, "b", 3), xsdFor(t, "c", 3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-be.entered // at least one shard is genuinely mid-flight
	j.Cancel()
	p := waitTerminal(t, j)
	if p.Status != StatusCancelled {
		t.Fatalf("status %s, want cancelled", p.Status)
	}
	if p.Finished == nil {
		t.Fatal("cancelled job has no finished time")
	}
	// Cancel is idempotent and the status stays cancelled.
	j.Cancel()
	if got := j.Progress(false).Status; got != StatusCancelled {
		t.Fatalf("status after double cancel: %s", got)
	}
	if j.Trace() == nil {
		t.Fatal("cancelled job should still expose its trace")
	}
}

func TestLeaseExpiryRequeuesLostShard(t *testing.T) {
	eng := testEngine(t)
	var first atomic.Bool
	be := &hangFirstExecutor{inner: EngineExecutor{Engine: eng}, first: &first}
	m := New(Config{Engine: eng, Executor: be, LeaseTimeout: 50 * time.Millisecond, RetryBackoff: time.Millisecond})
	defer m.Close()
	j, err := m.Submit("lost-worker", Spec{
		Sources: []*qmatch.CompiledSchema{xsdFor(t, "a", 2)},
		Targets: []*qmatch.CompiledSchema{xsdFor(t, "b", 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := waitTerminal(t, j)
	if p.Status != StatusCompleted {
		t.Fatalf("status %s (err %q), want completed after lease requeue", p.Status, p.Error)
	}
	if p.Retries < 1 {
		t.Fatalf("retries %d, want >= 1 (the reaped lease)", p.Retries)
	}
}

// hangFirstExecutor simulates a lost worker: the first Execute ignores
// results and hangs until the reaper cancels its attempt context.
type hangFirstExecutor struct {
	inner Executor
	first *atomic.Bool
}

func (h *hangFirstExecutor) Execute(ctx context.Context, spec *Spec, shard Shard) ([]json.RawMessage, error) {
	if !h.first.Swap(true) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return h.inner.Execute(ctx, spec, shard)
}

func TestStoreEvictsCompletedJobsLRU(t *testing.T) {
	eng := testEngine(t)
	m := New(Config{Engine: eng, MaxJobs: 2})
	defer m.Close()
	src := []*qmatch.CompiledSchema{xsdFor(t, "a", 2)}
	tgt := []*qmatch.CompiledSchema{xsdFor(t, "b", 2)}
	for i := 0; i < 3; i++ {
		j, err := m.Submit(fmt.Sprintf("evict-%d", i), Spec{Sources: src, Targets: tgt})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
		// Deterministic LRU order: each job is touched after completion.
		if _, err := m.Get(j.ID()); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if m.Len() != 2 {
		t.Fatalf("store holds %d jobs, want 2 (MaxJobs)", m.Len())
	}
	if _, err := m.Get("evict-0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest job should be evicted, got err %v", err)
	}
	for _, id := range []string{"evict-1", "evict-2"} {
		if _, err := m.Get(id); err != nil {
			t.Fatalf("job %s evicted prematurely: %v", id, err)
		}
	}
	// Touching evict-1 makes evict-2 the LRU victim for the next eviction.
	if _, err := m.Get("evict-1"); err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit("evict-3", Spec{Sources: src, Targets: tgt})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if _, err := m.Get("evict-2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU victim should be evict-2, got err %v", err)
	}
	if _, err := m.Get("evict-1"); err != nil {
		t.Fatalf("recently touched job evicted: %v", err)
	}
}

func TestActiveJobsNeverEvicted(t *testing.T) {
	eng := testEngine(t)
	be := &blockingExecutor{inner: EngineExecutor{Engine: eng}, entered: make(chan struct{}, 8), blockON: true}
	m := New(Config{Engine: eng, Executor: be, MaxJobs: 1})
	defer m.Close()
	src := []*qmatch.CompiledSchema{xsdFor(t, "a", 2)}
	tgt := []*qmatch.CompiledSchema{xsdFor(t, "b", 2)}
	// Two active (blocked) jobs exceed MaxJobs but must both survive.
	j1, err := m.Submit("active-1", Spec{Sources: src, Targets: tgt})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit("active-2", Spec{Sources: src, Targets: tgt})
	if err != nil {
		t.Fatal(err)
	}
	j1.Cancel()
	waitTerminal(t, j1)
	if _, err := m.Get("active-2"); err != nil {
		t.Fatalf("active job evicted: %v", err)
	}
	j2.Cancel()
}

func TestSubmitValidation(t *testing.T) {
	eng := testEngine(t)
	m := New(Config{Engine: eng})
	src := []*qmatch.CompiledSchema{xsdFor(t, "a", 2)}
	if _, err := m.Submit("empty", Spec{Sources: src}); err == nil {
		t.Fatal("empty targets accepted")
	}
	if _, err := m.Submit("ok", Spec{Sources: src, Targets: src}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("ok", Spec{Sources: src, Targets: src}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	m.Close()
	if _, err := m.Submit("late", Spec{Sources: src, Targets: src}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

func TestConcurrentJobsHammer(t *testing.T) {
	eng := testEngine(t)
	reg := obs.NewRegistry()
	m := New(Config{Engine: eng, ShardCost: 1, Workers: 4, Metrics: reg, MaxJobs: 4})
	defer m.Close()
	src := []*qmatch.CompiledSchema{xsdFor(t, "a", 3), xsdFor(t, "b", 2)}
	tgt := []*qmatch.CompiledSchema{xsdFor(t, "c", 3), xsdFor(t, "d", 2)}
	const jobs = 12
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := m.Submit(fmt.Sprintf("hammer-%d", i), Spec{Sources: src, Targets: tgt})
			if err != nil {
				errs <- err
				return
			}
			if i%3 == 0 {
				j.Cancel()
				return
			}
			p, err := awaitTerminal(j)
			if err != nil {
				errs <- err
				return
			}
			if p.Status != StatusCompleted {
				errs <- fmt.Errorf("job %s: %s (%s)", j.ID(), p.Status, p.Error)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if v, _ := reg.Value(MetricJobsActive); v != 0 {
		t.Fatalf("active gauge %d after all jobs terminal, want 0", v)
	}
}
