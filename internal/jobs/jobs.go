// Package jobs implements the asynchronous batch-match subsystem behind
// qmatchd's /v1/jobs endpoints: a coordinator that partitions a large
// sources×targets MatchAll grid into shards sized off the compiled
// schemas' node counts, a worker pool that runs shards through the
// existing Engine (behind the Executor interface, so a remote qmatchd
// cluster can replace the in-process pool later), and a bounded job store
// that clients poll for per-shard progress and stream completed cells
// from, resumable by cell cursor.
//
// A submitted job owns a context derived from the manager's lifetime;
// cancelling the job (DELETE /v1/jobs/{id}) cancels that context and the
// existing Engine cancellation plumbing stops in-flight pair-table fills
// between levels. Shards survive worker loss: every dispatch takes a
// lease, and a reaper re-queues shards whose lease expired without an
// acknowledgement; failed attempts retry with exponential backoff up to a
// bound before the whole job fails. Completed jobs are retained for
// polling until the store's LRU bound evicts them.
//
// Results are pinned to the synchronous path: each cell's report is
// serialized with encoding/json exactly as Engine.MatchAll reports are,
// so a streamed job result is byte-identical (per report, modulo the
// envelope) to the same cell of a synchronous /v1/matchall response.
// See DESIGN.md §12.
package jobs

import (
	"context"
	"encoding/json"
	"time"

	"qmatch"
)

// Status is the lifecycle state of a job. Transitions are monotonic:
// pending → running → one of the three terminal states.
type Status string

const (
	// StatusPending marks a job accepted but with no shard dispatched yet.
	StatusPending Status = "pending"
	// StatusRunning marks a job with at least one shard dispatched.
	StatusRunning Status = "running"
	// StatusCompleted marks a job whose every cell has a result.
	StatusCompleted Status = "completed"
	// StatusFailed marks a job aborted because a shard exhausted its
	// retries; Progress.Error carries the last attempt's error.
	StatusFailed Status = "failed"
	// StatusCancelled marks a job aborted by Cancel (or manager shutdown).
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusCompleted || s == StatusFailed || s == StatusCancelled
}

// ShardStatus is the lifecycle state of one shard of a job's grid.
type ShardStatus string

const (
	// ShardPending marks a shard queued (or re-queued) for dispatch.
	ShardPending ShardStatus = "pending"
	// ShardRunning marks a shard leased to a worker.
	ShardRunning ShardStatus = "running"
	// ShardDone marks a shard whose results were acknowledged.
	ShardDone ShardStatus = "done"
	// ShardFailed marks a shard that exhausted its retries.
	ShardFailed ShardStatus = "failed"
)

// Shard is one contiguous row-major range of the job's cell grid. Cell k
// of a job with T targets matches sources[k/T] against targets[k%T];
// a shard covers cells [Start, End).
type Shard struct {
	// Index is the shard's position in the job's shard list.
	Index int `json:"index"`
	// Start is the first cell index the shard covers.
	Start int `json:"start"`
	// End is one past the last cell index the shard covers.
	End int `json:"end"`
	// Cost is the shard's pair-table cost: the sum over its cells of
	// sourceNodes×targetNodes — what the partitioner balanced.
	Cost int64 `json:"cost"`
}

// Cells returns the number of cells the shard covers.
func (s Shard) Cells() int { return s.End - s.Start }

// Spec describes one job to Submit: the compiled grid sides and the
// engine to run them through (nil selects the manager's default). The
// schemas are compiled — the parse+intern work happened at submission
// (or registration) time, so shards go straight to the pair-table fill.
type Spec struct {
	Sources []*qmatch.CompiledSchema
	Targets []*qmatch.CompiledSchema
	// Engine overrides the manager's default Engine for this job
	// (per-request algorithm/threshold/weight overrides resolve to a
	// pooled Engine in the serving layer).
	Engine *qmatch.Engine
	// SourceIDs/TargetIDs are optional display names, aligned with
	// Sources/Targets (registry ids, file names); purely informational.
	SourceIDs []string
	TargetIDs []string
}

// Executor runs one shard of one job and returns one serialized Report
// per cell, aligned with the shard's cell order (cell Start first). The
// in-process implementation matches through the job's Engine; a cluster
// executor would ship the shard's artifact ids to a remote worker
// instead. Execute must honor ctx: a cancelled job's context aborts
// in-flight fills. An error (or panic — the worker recovers it) marks
// the attempt failed and the shard is retried with backoff.
type Executor interface {
	Execute(ctx context.Context, spec *Spec, shard Shard) ([]json.RawMessage, error)
}

// EngineExecutor is the in-process Executor: every cell of the shard runs
// through Engine.MatchCompiledContext on the calling worker goroutine,
// and the report is serialized compactly with encoding/json — the same
// serialization a synchronous MatchAll response embeds.
type EngineExecutor struct {
	// Engine matches shards whose job carries no override Engine.
	Engine *qmatch.Engine
}

// Execute implements Executor.
func (ex EngineExecutor) Execute(ctx context.Context, spec *Spec, shard Shard) ([]json.RawMessage, error) {
	eng := spec.Engine
	if eng == nil {
		eng = ex.Engine
	}
	nt := len(spec.Targets)
	out := make([]json.RawMessage, 0, shard.Cells())
	for k := shard.Start; k < shard.End; k++ {
		rep, err := eng.MatchCompiledContext(ctx, spec.Sources[k/nt], spec.Targets[k%nt])
		if err != nil {
			return nil, err
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			return nil, err
		}
		out = append(out, raw)
	}
	return out, nil
}

// Partition splits the sources×targets grid into contiguous row-major
// shards, packing cells until a shard's cost (sum of sourceNodes×
// targetNodes per cell) would exceed budget. Every shard holds at least
// one cell, so a single cell dearer than the budget still gets its own
// shard. A budget <= 0 yields one shard for the whole grid.
func Partition(sources, targets []*qmatch.CompiledSchema, budget int64) []Shard {
	nt := len(targets)
	total := len(sources) * nt
	if total == 0 {
		return nil
	}
	if budget <= 0 {
		var cost int64
		for k := 0; k < total; k++ {
			cost += int64(sources[k/nt].Size()) * int64(targets[k%nt].Size())
		}
		return []Shard{{Index: 0, Start: 0, End: total, Cost: cost}}
	}
	var shards []Shard
	start := 0
	var cost int64
	for k := 0; k < total; k++ {
		c := int64(sources[k/nt].Size()) * int64(targets[k%nt].Size())
		if k > start && cost+c > budget {
			shards = append(shards, Shard{Index: len(shards), Start: start, End: k, Cost: cost})
			start, cost = k, 0
		}
		cost += c
	}
	return append(shards, Shard{Index: len(shards), Start: start, End: total, Cost: cost})
}

// ShardProgress is the externally visible state of one shard, as reported
// by Progress.
type ShardProgress struct {
	Shard
	Status ShardStatus `json:"status"`
	// Attempts counts dispatches of this shard (1 on the happy path).
	Attempts int `json:"attempts"`
}

// Progress is a point-in-time snapshot of one job, safe to serialize.
type Progress struct {
	ID      string    `json:"id"`
	Status  Status    `json:"status"`
	Error   string    `json:"error,omitempty"`
	Created time.Time `json:"created"`
	// Started/Finished are nil until the job starts running / reaches a
	// terminal state.
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Sources/Targets are the grid dimensions; Cells = Sources×Targets.
	Sources int `json:"sources"`
	Targets int `json:"targets"`
	Cells   int `json:"cells"`
	// CompletedCells counts cells with an acknowledged result.
	CompletedCells int `json:"completedCells"`
	// ShardsTotal/ShardsDone/Retries summarize shard progress; Shards
	// carries the per-shard detail when requested.
	ShardsTotal int             `json:"shardsTotal"`
	ShardsDone  int             `json:"shardsDone"`
	Retries     int             `json:"retries"`
	Shards      []ShardProgress `json:"shards,omitempty"`
	// SourceIDs/TargetIDs echo the submission's display names, when given.
	SourceIDs []string `json:"sourceIds,omitempty"`
	TargetIDs []string `json:"targetIds,omitempty"`
}
