package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"qmatch"
	"qmatch/internal/obs"
)

// Metric names of the job subsystem, maintained in the registry the
// manager is configured with (qmatchd passes its HTTP registry, so one
// /metrics scrape carries request, job and runtime series).
const (
	MetricJobs         = "qmatchd_jobs_total"       // counter, label status=completed|failed|cancelled
	MetricJobsActive   = "qmatchd_jobs_active"      // gauge: non-terminal jobs
	MetricJobShards    = "qmatchd_job_shards_total" // counter: acknowledged shards
	MetricShardRetries = "qmatchd_job_shard_retries_total"
	MetricJobCells     = "qmatchd_job_cells_total" // counter: completed cells
	MetricJobDuration  = "qmatchd_job_duration_seconds"
)

// ErrNotFound is returned by Get/Cancel/Delete for an unknown job id —
// never submitted, or already evicted from the bounded store.
var ErrNotFound = errors.New("jobs: job not found")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("jobs: manager closed")

// Config tunes a Manager. The zero value is usable: every knob falls
// back to the documented default.
type Config struct {
	// Executor runs shards; nil selects EngineExecutor{Engine}.
	Executor Executor
	// Engine backs the default EngineExecutor and jobs without an
	// override Engine. Required unless Executor is set and every Spec
	// carries its own Engine.
	Engine *qmatch.Engine
	// Workers bounds the shard workers (default GOMAXPROCS).
	Workers int
	// ShardCost is the pair-table cost budget of one shard, in
	// sourceNodes×targetNodes units (default 1<<20 — a protein-sized
	// ~867k-cell pair table still fits one shard). See Partition.
	ShardCost int64
	// MaxRetries bounds re-dispatches of one shard after failures
	// (default 3; the first attempt is not a retry).
	MaxRetries int
	// RetryBackoff is the base delay before a failed shard is re-queued;
	// attempt n waits RetryBackoff×2^(n-1) (default 100ms).
	RetryBackoff time.Duration
	// LeaseTimeout bounds how long a dispatched shard may run
	// unacknowledged before the reaper assumes the worker lost and
	// re-queues it (default 5m).
	LeaseTimeout time.Duration
	// MaxJobs bounds terminal jobs retained for polling; beyond it the
	// least-recently-accessed terminal job is evicted (default 64).
	// Active jobs are never evicted.
	MaxJobs int
	// Gate, when non-nil, admits every shard attempt: workers call it
	// before executing and the returned release after. qmatchd wires the
	// server's concurrency limiter here so job shards share match slots
	// fairly with synchronous requests.
	Gate func(ctx context.Context) (release func(), err error)
	// Metrics receives the job-subsystem series; nil disables them.
	Metrics *obs.Registry
	// Logger receives job lifecycle events; nil disables logging.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ShardCost == 0 {
		c.ShardCost = 1 << 20
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 5 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	if c.Executor == nil {
		c.Executor = EngineExecutor{Engine: c.Engine}
	}
	return c
}

// shardState is the manager-internal state of one shard.
type shardState struct {
	Shard
	status   ShardStatus
	attempts int
	// epoch tokens the current dispatch: a completion is acknowledged
	// only if its epoch still matches, so a reaped ("lost") worker's
	// late result is dropped instead of double-writing.
	epoch int64
	// deadline is the lease expiry while running.
	deadline time.Time
	// abort cancels the in-flight attempt's context (reaper, job cancel).
	abort context.CancelFunc
	// span is the open trace span of the in-flight attempt.
	span *obs.ActiveSpan
}

// Job is one submitted batch match. All state is guarded by mu; readers
// take snapshots via Progress and ResultsFrom.
type Job struct {
	id      string
	spec    Spec
	created time.Time
	mgr     *Manager
	ctx     context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	updated  chan struct{} // closed and replaced on every state change
	status   Status
	errMsg   string
	started  time.Time
	finished time.Time
	shards   []shardState
	done     int // acknowledged shards
	retries  int
	// results holds one serialized report per cell; ready is the
	// contiguous-prefix frontier streamed to clients.
	results        []json.RawMessage
	ready          int
	completedCells int
	trace          *obs.Trace
	jobSpan        *obs.ActiveSpan
	finalTrace     *obs.MatchTrace
	access         time.Time // LRU clock for the terminal-job store
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the job's submission spec (treat as read-only).
func (j *Job) Spec() *Spec { return &j.spec }

// task is one dispatchable unit of work.
type task struct {
	job   *Job
	shard int
}

// Manager is the job coordinator: it partitions submitted grids into
// shards, feeds them to its worker pool, retries failures, re-queues
// leases the reaper expires, and retains terminal jobs in a bounded
// LRU store. Construct with New; Close stops the workers and cancels
// every active job.
type Manager struct {
	cfg  Config
	ctx  context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []task
	jobs   map[string]*Job
	closed bool

	// fault, when non-nil, is consulted before every shard attempt;
	// a non-nil error fails the attempt. Tests inject shard failures
	// through SetFaultInjector to exercise the retry path.
	fault func(jobID string, shard, attempt int) error

	active       *obs.Gauge
	shardsDone   *obs.Counter
	shardRetries *obs.Counter
	cellsDone    *obs.Counter
	jobDur       *obs.Histogram
}

// New builds a Manager and starts its worker pool and lease reaper.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{cfg: cfg, jobs: make(map[string]*Job)}
	m.cond = sync.NewCond(&m.mu)
	m.ctx, m.stop = context.WithCancel(context.Background())
	if cfg.Metrics != nil {
		m.active = cfg.Metrics.Gauge(MetricJobsActive)
		m.shardsDone = cfg.Metrics.Counter(MetricJobShards)
		m.shardRetries = cfg.Metrics.Counter(MetricShardRetries)
		m.cellsDone = cfg.Metrics.Counter(MetricJobCells)
		m.jobDur = cfg.Metrics.Histogram(MetricJobDuration, nil)
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.wg.Add(1)
	go m.reaper()
	return m
}

// SetFaultInjector installs (or clears, with nil) a hook consulted before
// every shard attempt; returning a non-nil error fails that attempt as if
// the executor had. Tests use it to force the retry path deterministically.
func (m *Manager) SetFaultInjector(f func(jobID string, shard, attempt int) error) {
	m.mu.Lock()
	m.fault = f
	m.mu.Unlock()
}

// Close stops accepting submissions, cancels every active job (they
// finish as cancelled) and waits for the workers and reaper to exit.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
	m.stop()
	m.cond.Broadcast()
	m.wg.Wait()
}

// Submit accepts one job, partitions its grid and queues the shards.
// The returned Job is live immediately; poll it with Progress.
func (m *Manager) Submit(id string, spec Spec) (*Job, error) {
	if len(spec.Sources) == 0 || len(spec.Targets) == 0 {
		return nil, fmt.Errorf("jobs: need at least one source and one target schema")
	}
	if spec.Engine == nil && m.cfg.Engine == nil {
		return nil, fmt.Errorf("jobs: no engine configured")
	}
	shards := Partition(spec.Sources, spec.Targets, m.cfg.ShardCost)
	cells := len(spec.Sources) * len(spec.Targets)
	j := &Job{
		id:      id,
		spec:    spec,
		created: time.Now(),
		mgr:     m,
		updated: make(chan struct{}),
		status:  StatusPending,
		shards:  make([]shardState, len(shards)),
		results: make([]json.RawMessage, cells),
		trace:   obs.NewTrace(),
	}
	j.trace.SetID(id)
	j.jobSpan = j.trace.StartSpan(obs.PhaseJob)
	j.jobSpan.SetNodes(len(spec.Sources), len(spec.Targets))
	j.jobSpan.SetCells(int64(cells))
	j.trace.SetParent(j.jobSpan)
	for i, sh := range shards {
		j.shards[i] = shardState{Shard: sh, status: ShardPending}
	}
	j.ctx, j.cancel = context.WithCancel(m.ctx)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		j.cancel()
		return nil, ErrClosed
	}
	if _, dup := m.jobs[id]; dup {
		m.mu.Unlock()
		j.cancel()
		return nil, fmt.Errorf("jobs: duplicate job id %s", id)
	}
	m.jobs[id] = j
	for i := range shards {
		m.queue = append(m.queue, task{job: j, shard: i})
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.active.Add(1) // nil-safe
	if m.cfg.Logger != nil {
		m.cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, "job submitted",
			slog.String("job", id), slog.Int("sources", len(spec.Sources)),
			slog.Int("targets", len(spec.Targets)), slog.Int("cells", cells),
			slog.Int("shards", len(shards)))
	}
	return j, nil
}

// Get returns a job by id, refreshing its LRU clock, or ErrNotFound.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	j.access = time.Now()
	j.mu.Unlock()
	return j, nil
}

// List snapshots every retained job's progress (no shard detail), newest
// submission first.
func (m *Manager) List() []Progress {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]Progress, len(jobs))
	for i, j := range jobs {
		out[i] = j.Progress(false)
	}
	// Newest first; ties (same create tick) break by id for determinism.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && less(out[k-1], out[k]); k-- {
			out[k-1], out[k] = out[k], out[k-1]
		}
	}
	return out
}

func less(a, b Progress) bool {
	if !a.Created.Equal(b.Created) {
		return a.Created.Before(b.Created)
	}
	return a.ID < b.ID
}

// Cancel cancels an active job (terminal jobs are left untouched); it
// returns the job's resulting progress or ErrNotFound.
func (m *Manager) Cancel(id string) (Progress, error) {
	j, err := m.Get(id)
	if err != nil {
		return Progress{}, err
	}
	j.Cancel()
	return j.Progress(false), nil
}

// Delete removes a terminal job from the store (polling it afterwards is
// ErrNotFound). An active job is cancelled instead and retained for a
// final poll. The returned progress reflects the job's final state.
func (m *Manager) Delete(id string) (Progress, error) {
	j, err := m.Get(id)
	if err != nil {
		return Progress{}, err
	}
	j.mu.Lock()
	terminal := j.status.Terminal()
	j.mu.Unlock()
	if !terminal {
		j.Cancel()
		return j.Progress(false), nil
	}
	m.mu.Lock()
	delete(m.jobs, id)
	m.mu.Unlock()
	return j.Progress(false), nil
}

// Len returns the number of retained jobs (active + terminal).
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// next blocks until a task is available or the manager closes.
func (m *Manager) next() (task, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return task{}, false
	}
	t := m.queue[0]
	m.queue = m.queue[1:]
	return t, true
}

// enqueue re-queues a task (retry, reaped lease).
func (m *Manager) enqueue(t task) {
	m.mu.Lock()
	if !m.closed {
		m.queue = append(m.queue, t)
		m.cond.Signal()
	}
	m.mu.Unlock()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		t, ok := m.next()
		if !ok {
			return
		}
		m.runShard(t)
	}
}

// runShard executes one dispatch of one shard: lease it, admit it
// through the gate, run the executor with panic containment, and
// acknowledge or retry.
func (m *Manager) runShard(t task) {
	j := t.job
	j.mu.Lock()
	ss := &j.shards[t.shard]
	if j.status.Terminal() || ss.status == ShardDone || ss.status == ShardRunning {
		// Cancelled job, duplicate re-queue, or a reaped shard that was
		// re-dispatched before this stale task drained — nothing to run.
		j.mu.Unlock()
		return
	}
	if j.status == StatusPending {
		j.status = StatusRunning
		j.started = time.Now()
		j.broadcastLocked()
	}
	ss.status = ShardRunning
	ss.attempts++
	ss.epoch++
	epoch := ss.epoch
	attempt := ss.attempts
	ss.deadline = time.Now().Add(m.cfg.LeaseTimeout)
	attemptCtx, abort := context.WithCancel(j.ctx)
	ss.abort = abort
	ss.span = j.jobSpan.Child(obs.PhaseShard)
	ss.span.SetCells(int64(ss.Cells()))
	ss.span.SetLevel(ss.Index + 1)
	shard := ss.Shard
	j.mu.Unlock()
	defer abort()

	results, err := m.execute(attemptCtx, j, shard, attempt)
	m.ack(j, t.shard, epoch, results, err)
}

// execute runs one attempt through the gate and executor, converting
// panics into errors so a crashing worker loses only the attempt.
func (m *Manager) execute(ctx context.Context, j *Job, shard Shard, attempt int) (results []json.RawMessage, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("jobs: shard panic: %v", p)
		}
	}()
	if gate := m.cfg.Gate; gate != nil {
		release, gerr := gate(ctx)
		if gerr != nil {
			return nil, gerr
		}
		defer release()
	}
	m.mu.Lock()
	fault := m.fault
	m.mu.Unlock()
	if fault != nil {
		if ferr := fault(j.id, shard.Index, attempt); ferr != nil {
			return nil, ferr
		}
	}
	return m.cfg.Executor.Execute(ctx, &j.spec, shard)
}

// ack records the outcome of one dispatch. Late results whose epoch no
// longer matches (the reaper re-queued the shard) are dropped.
func (m *Manager) ack(j *Job, shard int, epoch int64, results []json.RawMessage, err error) {
	j.mu.Lock()
	ss := &j.shards[shard]
	if ss.epoch != epoch || ss.status != ShardRunning {
		j.mu.Unlock()
		return
	}
	ss.abort = nil
	if err == nil && len(results) != ss.Cells() {
		err = fmt.Errorf("jobs: executor returned %d results for a %d-cell shard", len(results), ss.Cells())
	}
	if j.status.Terminal() {
		// Cancelled (or failed) while this attempt was in flight: close
		// the span as partial and keep the terminal state.
		ss.status = ShardFailed
		ss.span.MarkPartial()
		ss.span.End()
		ss.span = nil
		j.mu.Unlock()
		return
	}
	if err != nil {
		ss.span.MarkPartial()
		ss.span.End()
		ss.span = nil
		if ss.attempts > m.cfg.MaxRetries {
			ss.status = ShardFailed
			m.failLocked(j, fmt.Sprintf("shard %d failed after %d attempts: %v", shard, ss.attempts, err))
			j.mu.Unlock()
			return
		}
		ss.status = ShardPending
		j.retries++
		backoff := m.cfg.RetryBackoff << (ss.attempts - 1)
		j.mu.Unlock()
		m.shardRetries.Inc() // nil-safe
		if m.cfg.Logger != nil {
			m.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "job shard retry",
				slog.String("job", j.id), slog.Int("shard", shard),
				slog.Int("attempt", int(epoch)), slog.Duration("backoff", backoff),
				slog.String("error", err.Error()))
		}
		time.AfterFunc(backoff, func() { m.enqueue(task{job: j, shard: shard}) })
		return
	}
	ss.status = ShardDone
	ss.span.End()
	ss.span = nil
	copy(j.results[ss.Start:ss.End], results)
	j.completedCells += ss.Cells()
	for j.ready < len(j.results) && j.results[j.ready] != nil {
		j.ready++
	}
	j.done++
	finished := j.done == len(j.shards)
	if finished {
		j.status = StatusCompleted
		j.finished = time.Now()
		j.finalTrace = j.finishTraceLocked()
	}
	cells := ss.Cells()
	j.broadcastLocked()
	j.mu.Unlock()
	m.shardsDone.Inc()
	m.cellsDone.Add(int64(cells))
	if finished {
		m.finalize(j, StatusCompleted)
	}
}

// failLocked moves a job to failed and cancels its remaining work.
// Callers hold j.mu; the metric/log side effects run asynchronously.
func (m *Manager) failLocked(j *Job, msg string) {
	if j.status.Terminal() {
		return
	}
	j.status = StatusFailed
	j.errMsg = msg
	j.finished = time.Now()
	j.finalTrace = j.finishTraceLocked()
	j.broadcastLocked()
	cancel := j.cancel
	go func() {
		cancel()
		m.finalize(j, StatusFailed)
	}()
}

// finishTraceLocked closes the job span and snapshots the job trace.
// Callers hold j.mu.
func (j *Job) finishTraceLocked() *obs.MatchTrace {
	for i := range j.shards {
		if sp := j.shards[i].span; sp != nil {
			sp.MarkPartial()
			sp.End()
			j.shards[i].span = nil
		}
	}
	j.jobSpan.End()
	return j.trace.Finish()
}

// finalize records terminal metrics/logs and evicts over-bound terminal
// jobs from the store (LRU by last access).
func (m *Manager) finalize(j *Job, status Status) {
	m.active.Add(-1) // nil-safe
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.Counter(obs.LabeledName(MetricJobs, "status", string(status))).Inc()
	}
	j.mu.Lock()
	elapsed := j.finished.Sub(j.created)
	cells := j.completedCells
	j.mu.Unlock()
	m.jobDur.Observe(elapsed.Seconds())
	if m.cfg.Logger != nil {
		level := slog.LevelInfo
		if status != StatusCompleted {
			level = slog.LevelWarn
		}
		m.cfg.Logger.LogAttrs(context.Background(), level, "job "+string(status),
			slog.String("job", j.id), slog.Int("cells", cells),
			slog.Duration("elapsed", elapsed))
	}
	m.evict()
}

// evict drops least-recently-accessed terminal jobs beyond MaxJobs.
func (m *Manager) evict() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		terminal := 0
		var oldest *Job
		var oldestAt time.Time
		for _, j := range m.jobs {
			j.mu.Lock()
			t := j.status.Terminal()
			at := j.access
			if at.IsZero() {
				at = j.created
			}
			j.mu.Unlock()
			if !t {
				continue
			}
			terminal++
			if oldest == nil || at.Before(oldestAt) {
				oldest, oldestAt = j, at
			}
		}
		if terminal <= m.cfg.MaxJobs || oldest == nil {
			return
		}
		delete(m.jobs, oldest.id)
	}
}

// reaper re-queues running shards whose lease expired — the in-process
// analogue of a cluster worker dying mid-shard. The expired attempt's
// context is cancelled (the Engine aborts its fill between levels) and
// its eventual late ack is dropped by the epoch check.
func (m *Manager) reaper() {
	defer m.wg.Done()
	interval := m.cfg.LeaseTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-tick.C:
		}
		m.mu.Lock()
		jobs := make([]*Job, 0, len(m.jobs))
		for _, j := range m.jobs {
			jobs = append(jobs, j)
		}
		m.mu.Unlock()
		now := time.Now()
		for _, j := range jobs {
			var requeue []task
			j.mu.Lock()
			if j.status.Terminal() {
				j.mu.Unlock()
				continue
			}
			for i := range j.shards {
				ss := &j.shards[i]
				if ss.status != ShardRunning || now.Before(ss.deadline) {
					continue
				}
				if ss.abort != nil {
					ss.abort()
					ss.abort = nil
				}
				if ss.span != nil {
					ss.span.MarkPartial()
					ss.span.End()
					ss.span = nil
				}
				ss.status = ShardPending
				ss.epoch++ // invalidate the lost attempt's ack
				j.retries++
				m.shardRetries.Inc()
				if m.cfg.Logger != nil {
					m.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "job shard lease expired",
						slog.String("job", j.id), slog.Int("shard", i),
						slog.Int("attempts", ss.attempts))
				}
				requeue = append(requeue, task{job: j, shard: i})
			}
			j.mu.Unlock()
			// Enqueue outside j.mu: enqueue takes m.mu, and evict holds
			// m.mu while taking j.mu — same order everywhere or deadlock.
			for _, t := range requeue {
				m.enqueue(t)
			}
		}
	}
}

// Cancel moves the job to cancelled (no-op when already terminal) and
// cancels its context; in-flight shard attempts abort between fill
// levels through the Engine's existing cancellation plumbing.
func (j *Job) Cancel() {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return
	}
	j.status = StatusCancelled
	j.finished = time.Now()
	j.finalTrace = j.finishTraceLocked()
	j.broadcastLocked()
	mgr := j.manager()
	j.mu.Unlock()
	j.cancel()
	if mgr != nil {
		mgr.finalize(j, StatusCancelled)
	}
}

// manager is a backref for Cancel's finalize; stored lazily to keep Job
// construction simple.
func (j *Job) manager() *Manager { return j.mgr }

// Progress snapshots the job; withShards includes per-shard detail.
func (j *Job) Progress(withShards bool) Progress {
	j.mu.Lock()
	defer j.mu.Unlock()
	p := Progress{
		ID:             j.id,
		Status:         j.status,
		Error:          j.errMsg,
		Created:        j.created,
		Sources:        len(j.spec.Sources),
		Targets:        len(j.spec.Targets),
		Cells:          len(j.results),
		CompletedCells: j.completedCells,
		ShardsTotal:    len(j.shards),
		ShardsDone:     j.done,
		Retries:        j.retries,
		SourceIDs:      j.spec.SourceIDs,
		TargetIDs:      j.spec.TargetIDs,
	}
	if !j.started.IsZero() {
		t := j.started
		p.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		p.Finished = &t
	}
	if withShards {
		p.Shards = make([]ShardProgress, len(j.shards))
		for i := range j.shards {
			p.Shards[i] = ShardProgress{
				Shard:    j.shards[i].Shard,
				Status:   j.shards[i].status,
				Attempts: j.shards[i].attempts,
			}
		}
	}
	return p
}

// Trace returns the job's finished hierarchical trace (job span with one
// child span per shard attempt), or nil while the job is still active.
func (j *Job) Trace() *obs.MatchTrace {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finalTrace
}

// broadcastLocked wakes every Updated waiter. Callers hold j.mu.
func (j *Job) broadcastLocked() {
	close(j.updated)
	j.updated = make(chan struct{})
}

// Updated returns a channel closed on the job's next state change
// (shard completion, status transition) — the poll/stream wait primitive.
func (j *Job) Updated() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.updated
}

// ResultsFrom returns the contiguous run of serialized cell reports
// starting at cell index from (ending at the first not-yet-completed
// cell), together with the job's current status and error. The returned
// slice aliases the job's immutable result buffers — do not mutate.
func (j *Job) ResultsFrom(from int) ([]json.RawMessage, Status, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= j.ready {
		return nil, j.status, j.errMsg
	}
	return j.results[from:j.ready], j.status, j.errMsg
}
