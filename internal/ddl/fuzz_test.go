package ddl

import (
	"testing"
	"testing/quick"

	"qmatch/internal/xmltree"
)

// The DDL parser must be total: random inputs error or parse, never
// panic.
func TestParseNeverPanics(t *testing.T) {
	prop := func(junk string) bool {
		_, _ = ParseString(junk, "")
		_, _ = ParseString("CREATE TABLE t ("+junk+")", "db")
		_, _ = ParseString("CREATE TABLE t (a INT "+junk+");", "db")
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// FuzzParseDDL drives the DDL parser with arbitrary source/name pairs.
// The parser must stay total and any database tree it accepts must be
// well-formed: three levels (db → table → column), non-empty labels,
// tables with at least one column.
func FuzzParseDDL(f *testing.F) {
	f.Add(storeDDL, "store")
	f.Add(`CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(10) NOT NULL DEFAULT 'x');`, "")
	f.Add("CREATE TABLE `q t` (\"c 1\" DOUBLE PRECISION, [c2] TIMESTAMP WITH TIME ZONE);", "db")
	f.Add(`CREATE TABLE a (x INT REFERENCES b (y) ON DELETE CASCADE, CONSTRAINT fk FOREIGN KEY (x) REFERENCES b (y));`, "z")
	f.Add(`CREATE TABLE t (a INT, -- comment
	/* block */ b TEXT CHECK (b <> ''));`, "")
	f.Add(``, ``)
	f.Add(`CREATE TABLE t (`, `x`)
	f.Fuzz(func(t *testing.T, src, name string) {
		tree, err := ParseString(src, name)
		if err != nil {
			return
		}
		if tree == nil {
			t.Fatalf("nil tree with nil error for %q", src)
		}
		if tree.Label == "" {
			t.Fatalf("root has an empty label for %q name %q", src, name)
		}
		for _, table := range tree.Children {
			if table.Label == "" || len(table.Children) == 0 {
				t.Fatalf("malformed table in accepted tree:\n%s", tree.Dump())
			}
			if table.Props.MaxOccurs != xmltree.Unbounded {
				t.Fatalf("table %q not repeated: %+v", table.Label, table.Props)
			}
			for _, col := range table.Children {
				if col.Label == "" || !col.IsLeaf() {
					t.Fatalf("malformed column in accepted tree:\n%s", tree.Dump())
				}
			}
		}
	})
}
