package ddl

import (
	"strings"
	"testing"

	"qmatch/internal/xmltree"
)

const storeDDL = `
-- an order-management excerpt
CREATE TABLE customers (
    id INTEGER PRIMARY KEY,
    name VARCHAR(80) NOT NULL,
    email VARCHAR(120) UNIQUE,
    created_at TIMESTAMP DEFAULT CURRENT_TIMESTAMP
);

CREATE TABLE orders (
    order_no BIGINT NOT NULL,
    customer_id INTEGER NOT NULL REFERENCES customers (id),
    total DECIMAL(10,2),
    shipped BOOLEAN DEFAULT 'f',
    PRIMARY KEY (order_no),
    FOREIGN KEY (customer_id) REFERENCES customers (id) ON DELETE CASCADE
);
`

func parse(t *testing.T, src, name string) *xmltree.Node {
	t.Helper()
	tree, err := ParseString(src, name)
	if err != nil {
		t.Fatalf("ParseString: %v\nsrc: %s", err, src)
	}
	return tree
}

func TestParseStore(t *testing.T) {
	tree := parse(t, storeDDL, "store")
	if tree.Label != "store" {
		t.Fatalf("root label = %q", tree.Label)
	}
	if len(tree.Children) != 2 {
		t.Fatalf("got %d tables, want 2:\n%s", len(tree.Children), tree.Dump())
	}
	customers := tree.Children[0]
	if customers.Label != "customers" || customers.Props.MaxOccurs != xmltree.Unbounded {
		t.Fatalf("customers table props wrong: %+v", customers.Props)
	}
	if customers.Level() != 1 || customers.Children[0].Level() != 2 {
		t.Fatal("DB→table→column levels wrong")
	}

	id := tree.Find("store/customers/id")
	if id == nil || id.Props.Type != "int" || id.Props.Use != "key" || id.Props.MinOccurs != 1 {
		t.Fatalf("customers.id = %+v, want int inline primary key", id.Props)
	}
	name := tree.Find("store/customers/name")
	if name == nil || name.Props.Type != "string" || name.Props.MinOccurs != 1 {
		t.Fatalf("customers.name = %+v, want NOT NULL string", name.Props)
	}
	email := tree.Find("store/customers/email")
	if email == nil || email.Props.MinOccurs != 0 {
		t.Fatalf("customers.email = %+v, want nullable", email.Props)
	}
	created := tree.Find("store/customers/created_at")
	if created == nil || created.Props.Type != "dateTime" || created.Props.Default != "CURRENT_TIMESTAMP" {
		t.Fatalf("customers.created_at = %+v", created.Props)
	}

	orderNo := tree.Find("store/orders/order_no")
	if orderNo == nil || orderNo.Props.Type != "long" || orderNo.Props.Use != "key" {
		t.Fatalf("orders.order_no = %+v, want table-level primary key on long", orderNo.Props)
	}
	custID := tree.Find("store/orders/customer_id")
	if custID == nil || custID.Props.Use != "keyref" {
		t.Fatalf("orders.customer_id = %+v, want foreign key (keyref)", custID.Props)
	}
	total := tree.Find("store/orders/total")
	if total == nil || total.Props.Type != "decimal" {
		t.Fatalf("orders.total = %+v", total.Props)
	}
}

func TestParseDefaultName(t *testing.T) {
	tree := parse(t, `CREATE TABLE t (a INT);`, "")
	if tree.Label != "db" {
		t.Fatalf("default root label = %q, want db", tree.Label)
	}
}

func TestParseColumnOrder(t *testing.T) {
	tree := parse(t, `CREATE TABLE t (z INT, a INT, m INT);`, "")
	cols := tree.Children[0].Children
	for i, want := range []string{"z", "a", "m"} {
		if cols[i].Label != want || cols[i].Props.Order != i+1 {
			t.Fatalf("column order not declaration order: %v", cols)
		}
	}
}

func TestParseTypeMap(t *testing.T) {
	tree := parse(t, `CREATE TABLE t (
	    a SMALLINT, b TINYINT, c DOUBLE PRECISION, d CHARACTER VARYING(20),
	    e TIMESTAMP WITH TIME ZONE, f BYTEA, g UUID, h ENUM('x','y'),
	    i SERIAL, j CUSTOMTYPE
	);`, "")
	want := map[string]string{
		"a": "short", "b": "byte", "c": "double", "d": "string",
		"e": "dateTime", "f": "base64Binary", "g": "string", "h": "token",
		"i": "int", "j": "customtype",
	}
	for _, c := range tree.Children[0].Children {
		if c.Props.Type != want[c.Label] {
			t.Errorf("column %s type = %q, want %q", c.Label, c.Props.Type, want[c.Label])
		}
	}
}

func TestParseQuotedIdentifiers(t *testing.T) {
	tree := parse(t, "CREATE TABLE `Order Lines` (\"Unit Price\" DECIMAL, [qty] INT);", "")
	table := tree.Children[0]
	if table.Label != "Order Lines" {
		t.Fatalf("table label = %q", table.Label)
	}
	if table.Children[0].Label != "Unit Price" || table.Children[1].Label != "qty" {
		t.Fatalf("column labels = %v", table.Children)
	}
}

func TestParseQualifiedNames(t *testing.T) {
	tree := parse(t, `CREATE TABLE public.users (id INT PRIMARY KEY);`, "")
	if tree.Children[0].Label != "users" {
		t.Fatalf("qualified table label = %q, want users", tree.Children[0].Label)
	}
}

func TestParseConstraintClauses(t *testing.T) {
	tree := parse(t, `CREATE TABLE IF NOT EXISTS t (
	    id INT GENERATED ALWAYS AS IDENTITY,
	    age INT CHECK (age > 0),
	    note VARCHAR(10) COLLATE utf8 COMMENT 'free text',
	    CONSTRAINT pk_t PRIMARY KEY (id),
	    UNIQUE (age),
	    KEY idx_note (note)
	) ENGINE=InnoDB;`, "")
	id := tree.Find("db/t/id")
	if id == nil || id.Props.Use != "key" {
		t.Fatalf("named-constraint primary key not recorded: %+v", id)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            ``,
		"not ddl":          `SELECT 1;`,
		"insert":           `INSERT INTO t VALUES (1);`,
		"no columns":       `CREATE TABLE t ();`,
		"dup table":        `CREATE TABLE t (a INT); CREATE TABLE t (b INT);`,
		"dup column":       `CREATE TABLE t (a INT, a INT);`,
		"unterminated":     `CREATE TABLE t (a INT`,
		"bad constraint":   `CREATE TABLE t (a INT WIBBLE);`,
		"unknown pk col":   `CREATE TABLE t (a INT, PRIMARY KEY (zzz));`,
		"unterminated str": `CREATE TABLE t (a INT DEFAULT 'x);`,
	}
	for name, src := range cases {
		if _, err := ParseString(src, ""); err == nil {
			t.Errorf("%s: no error for %q", name, src)
		}
	}
}

func TestParseManyStatements(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 30; i++ {
		b.WriteString("CREATE TABLE t")
		b.WriteByte(byte('a' + i%26))
		if i >= 26 {
			b.WriteByte('2')
		}
		b.WriteString(" (x INT);\n")
	}
	tree := parse(t, b.String(), "big")
	if len(tree.Children) != 30 {
		t.Fatalf("got %d tables, want 30", len(tree.Children))
	}
}
