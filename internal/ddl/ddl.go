// Package ddl parses relational CREATE TABLE definitions into the schema
// tree model, following the Valentine/Cupid exemplars that feed database
// tables into a tree matcher by modeling database → table → column as
// tree levels. With relational schemas in the same tree model, every
// matcher, the service and the registry work on DDL↔XSD and
// DDL↔JSON-Schema pairs unchanged. The supported subset:
//
//	CREATE TABLE [IF NOT EXISTS] name (
//	    column TYPE [NOT NULL | NULL] [PRIMARY KEY] [UNIQUE]
//	           [DEFAULT value] [REFERENCES other (col)] [CHECK (...)],
//	    PRIMARY KEY (a, b),
//	    FOREIGN KEY (a) REFERENCES other (b),
//	    CONSTRAINT name PRIMARY KEY | FOREIGN KEY | UNIQUE | CHECK ...,
//	    ...
//	) [table options] ;
//
// Several statements build one database tree: the root carries the
// database label, tables are its children (repeated — a database holds
// any number of rows per table), columns are leaves. SQL types map onto
// the XSD datatype table so the properties axis compares columns and
// elements through one compatibility relation; PRIMARY KEY and FOREIGN
// KEY membership is recorded on the column properties (Use "key" /
// "keyref", the XSD key/keyref idiom). Statements other than CREATE
// TABLE are not supported and error. Line (--) and block comments are
// skipped; identifiers may be bare, "quoted", `backticked` or
// [bracketed].
package ddl

import (
	"fmt"
	"io"
	"strings"

	"qmatch/internal/xmltree"
)

// Parse reads DDL statements and returns the database tree labeled name
// (falling back to "db").
func Parse(r io.Reader, name string) (*xmltree.Node, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ddl: read: %w", err)
	}
	return ParseString(string(data), name)
}

// ParseString is Parse over a string.
func ParseString(src, name string) (*xmltree.Node, error) {
	if name == "" {
		name = "db"
	}
	lx := &lexer{src: src}
	tokens, err := lx.all()
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	root := xmltree.New(name, xmltree.Properties{MinOccurs: 1, MaxOccurs: 1, Order: 1})
	seen := map[string]bool{}
	for !p.done() {
		table, err := p.createTable()
		if err != nil {
			return nil, err
		}
		if seen[table.Label] {
			return nil, fmt.Errorf("ddl: table %q declared twice", table.Label)
		}
		seen[table.Label] = true
		root.Add(table)
	}
	if len(root.Children) == 0 {
		return nil, fmt.Errorf("ddl: no CREATE TABLE statements")
	}
	return root, nil
}

// token is one lexical unit: an identifier/keyword, a number, a quoted
// string, or a single punctuation/operator character.
type token struct {
	kind byte // 'i' identifier, 'n' number, 's' string, 'p' punct
	text string
}

type lexer struct {
	src string
	pos int
}

// all tokenizes the whole input, skipping whitespace and comments.
func (lx *lexer) all() ([]token, error) {
	var out []token
	for {
		lx.skipSpaceAndComments()
		if lx.pos >= len(lx.src) {
			return out, nil
		}
		c := lx.src[lx.pos]
		switch {
		case isIdentStart(c):
			start := lx.pos
			for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
				lx.pos++
			}
			out = append(out, token{kind: 'i', text: lx.src[start:lx.pos]})
		case c >= '0' && c <= '9':
			start := lx.pos
			for lx.pos < len(lx.src) && (lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' || lx.src[lx.pos] == '.') {
				lx.pos++
			}
			out = append(out, token{kind: 'n', text: lx.src[start:lx.pos]})
		case c == '\'':
			text, err := lx.quoted('\'')
			if err != nil {
				return nil, err
			}
			out = append(out, token{kind: 's', text: text})
		case c == '"':
			text, err := lx.quoted('"')
			if err != nil {
				return nil, err
			}
			out = append(out, token{kind: 'i', text: text})
		case c == '`':
			text, err := lx.quoted('`')
			if err != nil {
				return nil, err
			}
			out = append(out, token{kind: 'i', text: text})
		case c == '[':
			end := strings.IndexByte(lx.src[lx.pos:], ']')
			if end < 0 {
				return nil, fmt.Errorf("ddl: unterminated [identifier] at offset %d", lx.pos)
			}
			out = append(out, token{kind: 'i', text: lx.src[lx.pos+1 : lx.pos+end]})
			lx.pos += end + 1
		default:
			out = append(out, token{kind: 'p', text: string(c)})
			lx.pos++
		}
	}
}

// quoted consumes a q-delimited literal with doubled-quote escaping.
func (lx *lexer) quoted(q byte) (string, error) {
	lx.pos++ // opening quote
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == q {
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == q {
				b.WriteByte(q)
				lx.pos += 2
				continue
			}
			lx.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		lx.pos++
	}
	return "", fmt.Errorf("ddl: unterminated %q literal", q)
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
		case strings.HasPrefix(lx.src[lx.pos:], "--"):
			if nl := strings.IndexByte(lx.src[lx.pos:], '\n'); nl >= 0 {
				lx.pos += nl + 1
			} else {
				lx.pos = len(lx.src)
			}
		case strings.HasPrefix(lx.src[lx.pos:], "/*"):
			if end := strings.Index(lx.src[lx.pos:], "*/"); end >= 0 {
				lx.pos += end + 2
			} else {
				lx.pos = len(lx.src)
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '$'
}

// parser consumes the token stream statement by statement.
type parser struct {
	tokens []token
	pos    int
}

func (p *parser) done() bool {
	// Trailing semicolons between/after statements are insignificant.
	for p.pos < len(p.tokens) && p.tokens[p.pos].kind == 'p' && p.tokens[p.pos].text == ";" {
		p.pos++
	}
	return p.pos >= len(p.tokens)
}

func (p *parser) peek() token {
	if p.pos < len(p.tokens) {
		return p.tokens[p.pos]
	}
	return token{}
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

// keyword consumes the next token if it is the given keyword
// (case-insensitive) and reports whether it did.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == 'i' && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("ddl: expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) expectPunct(ch string) error {
	t := p.peek()
	if t.kind != 'p' || t.text != ch {
		return fmt.Errorf("ddl: expected %q, got %q", ch, t.text)
	}
	p.pos++
	return nil
}

// identifier consumes a possibly qualified name (a.b.c) and returns its
// last segment — the label the tree model uses.
func (p *parser) identifier(what string) (string, error) {
	t := p.peek()
	if t.kind != 'i' {
		return "", fmt.Errorf("ddl: expected %s, got %q", what, t.text)
	}
	p.pos++
	name := t.text
	for p.peek().kind == 'p' && p.peek().text == "." {
		p.pos++
		seg := p.peek()
		if seg.kind != 'i' {
			return "", fmt.Errorf("ddl: malformed qualified %s", what)
		}
		p.pos++
		name = seg.text
	}
	if name == "" {
		return "", fmt.Errorf("ddl: empty %s", what)
	}
	return name, nil
}

// createTable parses one CREATE TABLE statement into a table node.
func (p *parser) createTable() (*xmltree.Node, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, fmt.Errorf("%w (only CREATE TABLE statements are supported)", err)
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, fmt.Errorf("%w (only CREATE TABLE statements are supported)", err)
	}
	if p.keyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
	}
	name, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	// A table repeats under the database the way a row-bearing element
	// repeats under its parent document.
	table := xmltree.New(name, xmltree.Properties{MinOccurs: 0, MaxOccurs: xmltree.Unbounded})
	seen := map[string]*xmltree.Node{}
	for {
		if err := p.tableEntry(table, seen); err != nil {
			return nil, fmt.Errorf("ddl: table %q: %w", name, err)
		}
		t := p.next()
		if t.kind != 'p' {
			return nil, fmt.Errorf("ddl: table %q: expected , or ), got %q", name, t.text)
		}
		if t.text == ")" {
			break
		}
		if t.text != "," {
			return nil, fmt.Errorf("ddl: table %q: expected , or ), got %q", name, t.text)
		}
	}
	// Table options (ENGINE=..., WITHOUT ROWID, ...) run to the
	// statement terminator.
	for p.pos < len(p.tokens) {
		t := p.next()
		if t.kind == 'p' && t.text == ";" {
			break
		}
	}
	if len(table.Children) == 0 {
		return nil, fmt.Errorf("ddl: table %q has no columns", name)
	}
	return table, nil
}

// tableEntry parses one comma-separated item of a table body: a column
// definition or a table-level constraint.
func (p *parser) tableEntry(table *xmltree.Node, seen map[string]*xmltree.Node) error {
	if p.keyword("CONSTRAINT") {
		if _, err := p.identifier("constraint name"); err != nil {
			return err
		}
		return p.tableConstraint(table, seen)
	}
	switch {
	case p.peekKeyword("PRIMARY"), p.peekKeyword("FOREIGN"), p.peekKeyword("UNIQUE"),
		p.peekKeyword("CHECK"), p.peekKeyword("KEY"), p.peekKeyword("INDEX"):
		return p.tableConstraint(table, seen)
	}
	return p.column(table, seen)
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == 'i' && strings.EqualFold(t.text, kw)
}

// tableConstraint parses PRIMARY KEY / FOREIGN KEY / UNIQUE / CHECK /
// KEY / INDEX at table level, marking listed columns where relevant.
func (p *parser) tableConstraint(table *xmltree.Node, seen map[string]*xmltree.Node) error {
	switch {
	case p.keyword("PRIMARY"):
		if err := p.expectKeyword("KEY"); err != nil {
			return err
		}
		cols, err := p.columnList()
		if err != nil {
			return err
		}
		for _, c := range cols {
			node, ok := seen[c]
			if !ok {
				return fmt.Errorf("PRIMARY KEY names unknown column %q", c)
			}
			markKey(node)
		}
	case p.keyword("FOREIGN"):
		if err := p.expectKeyword("KEY"); err != nil {
			return err
		}
		cols, err := p.columnList()
		if err != nil {
			return err
		}
		if err := p.expectKeyword("REFERENCES"); err != nil {
			return err
		}
		if err := p.references(); err != nil {
			return err
		}
		for _, c := range cols {
			node, ok := seen[c]
			if !ok {
				return fmt.Errorf("FOREIGN KEY names unknown column %q", c)
			}
			if node.Props.Use == "" {
				node.Props.Use = "keyref"
			}
		}
	case p.keyword("UNIQUE"), p.keyword("CHECK"):
		if err := p.skipParens(); err != nil {
			return err
		}
	case p.keyword("KEY"), p.keyword("INDEX"):
		// MySQL secondary index: optional name, then the column list.
		if p.peek().kind == 'i' {
			p.pos++
		}
		if err := p.skipParens(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unsupported table constraint at %q", p.peek().text)
	}
	return nil
}

// columnList parses "(a, b, c)".
func (p *parser) columnList() ([]string, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		name, err := p.identifier("column name")
		if err != nil {
			return nil, err
		}
		cols = append(cols, name)
		t := p.next()
		if t.kind == 'p' && t.text == ")" {
			return cols, nil
		}
		if t.kind != 'p' || t.text != "," {
			return nil, fmt.Errorf("ddl: expected , or ) in column list, got %q", t.text)
		}
	}
}

// references parses "other (col, ...)" with an optional ON DELETE/UPDATE
// action tail.
func (p *parser) references() error {
	if _, err := p.identifier("referenced table"); err != nil {
		return err
	}
	if p.peek().kind == 'p' && p.peek().text == "(" {
		if _, err := p.columnList(); err != nil {
			return err
		}
	}
	for p.keyword("ON") {
		// ON DELETE CASCADE / ON UPDATE SET NULL / ...
		if p.peek().kind != 'i' {
			return fmt.Errorf("ddl: malformed ON action")
		}
		p.pos++ // DELETE/UPDATE
		if p.peek().kind != 'i' {
			return fmt.Errorf("ddl: malformed ON action")
		}
		p.pos++ // CASCADE/RESTRICT/SET/NO
		if p.peekKeyword("NULL") || p.peekKeyword("DEFAULT") || p.peekKeyword("ACTION") {
			p.pos++
		}
	}
	return nil
}

// skipParens consumes a balanced "(...)" group.
func (p *parser) skipParens() error {
	if err := p.expectPunct("("); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		if p.pos >= len(p.tokens) {
			return fmt.Errorf("ddl: unterminated ( group")
		}
		t := p.next()
		if t.kind == 'p' {
			switch t.text {
			case "(":
				depth++
			case ")":
				depth--
			}
		}
	}
	return nil
}

// markKey records primary-key membership: the XSD key idiom (Use "key")
// plus the NOT NULL a key implies.
func markKey(node *xmltree.Node) {
	node.Props.Use = "key"
	node.Props.MinOccurs = 1
}

// column parses one column definition into a leaf node of the table.
func (p *parser) column(table *xmltree.Node, seen map[string]*xmltree.Node) error {
	name, err := p.identifier("column name")
	if err != nil {
		return err
	}
	if _, dup := seen[name]; dup {
		return fmt.Errorf("column %q declared twice", name)
	}
	typ, err := p.columnType()
	if err != nil {
		return fmt.Errorf("column %q: %w", name, err)
	}
	// SQL columns are nullable unless constrained otherwise: the
	// relational counterpart of minOccurs 0.
	props := xmltree.Properties{Type: typ, MinOccurs: 0, MaxOccurs: 1}
	node := xmltree.New(name, props)
	if err := p.columnConstraints(node); err != nil {
		return fmt.Errorf("column %q: %w", name, err)
	}
	table.Add(node)
	seen[name] = node
	return nil
}

// sqlTypes maps SQL column types (lowercased, length arguments stripped)
// onto the XSD datatype table, so the datatype-compatibility relation of
// internal/xmltree spans both worlds.
var sqlTypes = map[string]string{
	"int": "int", "integer": "int", "mediumint": "int", "serial": "int",
	"bigint": "long", "bigserial": "long",
	"smallint": "short", "smallserial": "short",
	"tinyint": "byte",
	"varchar": "string", "char": "string", "character": "string",
	"nchar": "string", "nvarchar": "string", "text": "string",
	"tinytext": "string", "mediumtext": "string", "longtext": "string",
	"clob": "string", "uuid": "string", "json": "string", "jsonb": "string",
	"xml": "string",
	"decimal": "decimal", "numeric": "decimal", "money": "decimal",
	"float": "float", "real": "float",
	"double": "double",
	"bool":   "boolean", "boolean": "boolean",
	"date": "date", "time": "time",
	"timestamp": "dateTime", "timestamptz": "dateTime", "datetime": "dateTime",
	"interval": "duration",
	"blob":     "base64Binary", "binary": "base64Binary",
	"varbinary": "base64Binary", "bytea": "base64Binary",
	"tinyblob": "base64Binary", "mediumblob": "base64Binary",
	"longblob": "base64Binary", "image": "base64Binary",
	"enum": "token", "set": "token",
}

// columnType parses the type name — including the two-word forms DOUBLE
// PRECISION and CHARACTER VARYING and the TIMESTAMP WITH/WITHOUT TIME
// ZONE tail — plus an optional length argument list.
func (p *parser) columnType() (string, error) {
	t := p.peek()
	if t.kind != 'i' {
		return "", fmt.Errorf("expected type, got %q", t.text)
	}
	p.pos++
	word := strings.ToLower(t.text)
	switch word {
	case "double":
		p.keyword("PRECISION")
	case "character", "char":
		if p.keyword("VARYING") {
			word = "varchar"
		}
	}
	// Length/precision arguments and enum value lists: skip.
	if p.peek().kind == 'p' && p.peek().text == "(" {
		if err := p.skipParens(); err != nil {
			return "", err
		}
	}
	if word == "timestamp" || word == "time" {
		if p.keyword("WITH") || p.keyword("WITHOUT") {
			if err := p.expectKeyword("TIME"); err != nil {
				return "", err
			}
			if err := p.expectKeyword("ZONE"); err != nil {
				return "", err
			}
		}
	}
	if mapped, ok := sqlTypes[word]; ok {
		return mapped, nil
	}
	// Unknown vendor type: keep the lowercased name as an opaque type;
	// TypeCompatible treats it as equal-only.
	return word, nil
}

// columnConstraints consumes the constraint tail of a column definition
// up to the next comma or closing paren.
func (p *parser) columnConstraints(node *xmltree.Node) error {
	for {
		t := p.peek()
		if t.kind == 'p' && (t.text == "," || t.text == ")") {
			return nil
		}
		switch {
		case p.keyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return err
			}
			node.Props.MinOccurs = 1
		case p.keyword("NULL"):
			node.Props.MinOccurs = 0
		case p.keyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return err
			}
			markKey(node)
		case p.keyword("UNIQUE"):
			// uniqueness does not change the tree properties
		case p.keyword("REFERENCES"):
			if err := p.references(); err != nil {
				return err
			}
			if node.Props.Use == "" {
				node.Props.Use = "keyref"
			}
		case p.keyword("DEFAULT"):
			v := p.next()
			switch v.kind {
			case 's', 'n', 'i':
				node.Props.Default = v.text
			default:
				return fmt.Errorf("malformed DEFAULT value %q", v.text)
			}
			// Function defaults: DEFAULT now(), DEFAULT nextval('...').
			if p.peek().kind == 'p' && p.peek().text == "(" {
				if err := p.skipParens(); err != nil {
					return err
				}
			}
		case p.keyword("CHECK"):
			if err := p.skipParens(); err != nil {
				return err
			}
		case p.keyword("AUTO_INCREMENT"), p.keyword("AUTOINCREMENT"),
			p.keyword("GENERATED"):
			// GENERATED ALWAYS AS IDENTITY / BY DEFAULT AS IDENTITY:
			// consume keywords until the next constraint boundary.
			for p.peek().kind == 'i' && !p.atConstraintKeyword() {
				p.pos++
			}
		case p.keyword("COMMENT"):
			if p.peek().kind != 's' {
				return fmt.Errorf("malformed COMMENT")
			}
			p.pos++
		case p.keyword("COLLATE"):
			if p.peek().kind != 'i' && p.peek().kind != 's' {
				return fmt.Errorf("malformed COLLATE")
			}
			p.pos++
		default:
			return fmt.Errorf("unsupported constraint at %q", t.text)
		}
	}
}

// atConstraintKeyword reports whether the next token starts a recognized
// constraint (used to end open-ended keyword runs like GENERATED ...).
func (p *parser) atConstraintKeyword() bool {
	for _, kw := range []string{"NOT", "NULL", "PRIMARY", "UNIQUE", "REFERENCES",
		"DEFAULT", "CHECK", "COMMENT", "COLLATE"} {
		if p.peekKeyword(kw) {
			return true
		}
	}
	return false
}
