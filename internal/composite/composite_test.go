package composite

import (
	"strings"
	"testing"

	"qmatch/internal/core"
	"qmatch/internal/dataset"
	"qmatch/internal/linguistic"
	"qmatch/internal/match"
	"qmatch/internal/structural"
	"qmatch/internal/xmltree"
)

func defaultComposite() *Matcher {
	return New(linguistic.New(nil), structural.New())
}

// fakeScorer returns fixed scores for testing aggregation arithmetic.
type fakeScorer struct {
	name  string
	score float64
}

func (f fakeScorer) Name() string { return f.name }

func (f fakeScorer) Pairs(src, tgt *xmltree.Node) []match.ScoredPair {
	var out []match.ScoredPair
	for _, s := range src.Nodes() {
		for _, t := range tgt.Nodes() {
			out = append(out, match.ScoredPair{Source: s, Target: t, Score: f.score})
		}
	}
	return out
}

func singleNodePair() (*xmltree.Node, *xmltree.Node) {
	return xmltree.New("A", xmltree.Elem("string")), xmltree.New("B", xmltree.Elem("string"))
}

func TestAggregationArithmetic(t *testing.T) {
	src, tgt := singleNodePair()
	lo := fakeScorer{"lo", 0.2}
	hi := fakeScorer{"hi", 0.8}
	cases := []struct {
		agg     Aggregation
		weights []float64
		want    float64
	}{
		{Average, nil, 0.5},
		{Max, nil, 0.8},
		{Min, nil, 0.2},
		{Weighted, []float64{3, 1}, (3*0.2 + 1*0.8) / 4},
	}
	for _, c := range cases {
		m := New(lo, hi)
		m.Aggregate = c.agg
		m.Weights = c.weights
		got := m.TreeScore(src, tgt)
		if diff := got - c.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: score = %v, want %v", c.agg, got, c.want)
		}
	}
}

func TestWeightedDefaultsMissingWeights(t *testing.T) {
	src, tgt := singleNodePair()
	m := New(fakeScorer{"a", 0.4}, fakeScorer{"b", 0.8})
	m.Aggregate = Weighted
	m.Weights = []float64{2} // second scorer defaults to weight 1
	want := (2*0.4 + 1*0.8) / 3
	if got := m.TreeScore(src, tgt); got-want > 1e-9 || want-got > 1e-9 {
		t.Fatalf("score = %v, want %v", got, want)
	}
}

func TestEmptyComposite(t *testing.T) {
	src, tgt := singleNodePair()
	m := New()
	if got := m.Table(src, tgt); got != nil {
		t.Fatalf("table = %v", got)
	}
	if got := m.TreeScore(src, tgt); got != 0 {
		t.Fatalf("score = %v", got)
	}
}

func TestMatchOneToOne(t *testing.T) {
	p := dataset.POPair()
	cs := defaultComposite().Match(p.Source, p.Target)
	if len(cs) == 0 {
		t.Fatal("no correspondences")
	}
	seenS, seenT := map[string]bool{}, map[string]bool{}
	for _, c := range cs {
		if seenS[c.Source] || seenT[c.Target] {
			t.Fatalf("not 1:1: %v", c)
		}
		seenS[c.Source], seenT[c.Target] = true, true
	}
}

func TestMatchUnconstrained(t *testing.T) {
	p := dataset.POPair()
	m := defaultComposite()
	m.Select.OneToOne = false
	m.Select.MaxN = 0
	m.Select.Delta = 0
	all := m.Match(p.Source, p.Target)
	m.Select.OneToOne = true
	oneToOne := m.Match(p.Source, p.Target)
	if len(all) < len(oneToOne) {
		t.Fatalf("unconstrained (%d) < 1:1 (%d)", len(all), len(oneToOne))
	}
}

func TestMaxNFilter(t *testing.T) {
	p := dataset.POPair()
	m := defaultComposite()
	m.Select.OneToOne = false
	m.Select.Delta = 0
	m.Select.MaxN = 1
	m.Select.Threshold = 0
	cs := m.Match(p.Source, p.Target)
	perSource := map[string]int{}
	for _, c := range cs {
		perSource[c.Source]++
	}
	for s, n := range perSource {
		if n > 1 {
			t.Fatalf("MaxN=1 violated for %s: %d candidates", s, n)
		}
	}
}

func TestDeltaFilter(t *testing.T) {
	src, _ := singleNodePair()
	tgt := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.New("x", xmltree.Elem("string")),
		xmltree.New("y", xmltree.Elem("string")),
	)
	// Craft a scorer with distinct per-target scores.
	scorer := pairListScorer{pairs: []match.ScoredPair{
		{Source: src, Target: tgt.Children[0], Score: 0.9},
		{Source: src, Target: tgt.Children[1], Score: 0.6}, // 0.3 below best
	}}
	m := New(scorer)
	m.Select.OneToOne = false
	m.Select.MaxN = 0
	m.Select.Delta = 0.1
	m.Select.Threshold = 0
	cs := m.Match(src, tgt)
	if len(cs) != 1 || cs[0].Score != 0.9 {
		t.Fatalf("delta filter kept %v", cs)
	}
}

type pairListScorer struct{ pairs []match.ScoredPair }

func (p pairListScorer) Name() string { return "list" }
func (p pairListScorer) Pairs(src, tgt *xmltree.Node) []match.ScoredPair {
	return p.pairs
}

func TestCompositeQualityOnCorpus(t *testing.T) {
	// The linguistic+structural composite must find real matches on the
	// PO task; the max-aggregation variant should be at least as
	// generous as average.
	p := dataset.POPair()
	avg := defaultComposite()
	mx := defaultComposite()
	mx.Aggregate = Max
	eAvg := match.Evaluate(avg.Match(p.Source, p.Target), p.Gold)
	eMax := match.Evaluate(mx.Match(p.Source, p.Target), p.Gold)
	if eAvg.TruePositives == 0 || eMax.TruePositives == 0 {
		t.Fatalf("composite found no real matches: avg=%+v max=%+v", eAvg, eMax)
	}
	// Aggregate dominance holds at the table level: max >= average >=
	// min for every pair (selection on top is not monotone in this).
	mn := defaultComposite()
	mn.Aggregate = Min
	avgT, maxT, minT := avg.Table(p.Source, p.Target), mx.Table(p.Source, p.Target), mn.Table(p.Source, p.Target)
	for i := range avgT {
		if maxT[i].Score < avgT[i].Score-1e-9 || avgT[i].Score < minT[i].Score-1e-9 {
			t.Fatalf("aggregate dominance violated at %s vs %s: min=%v avg=%v max=%v",
				avgT[i].Source.Path(), avgT[i].Target.Path(),
				minT[i].Score, avgT[i].Score, maxT[i].Score)
		}
	}
}

func TestCompositeWithHybridConstituent(t *testing.T) {
	// The hybrid itself can serve as a constituent (COMA treats hybrid
	// matchers as building blocks).
	p := dataset.POPair()
	m := New(core.NewHybrid(nil), linguistic.New(nil))
	m.Select.Threshold = 0.75
	cs := m.Match(p.Source, p.Target)
	e := match.Evaluate(cs, p.Gold)
	if e.TruePositives < 7 {
		t.Fatalf("hybrid-backed composite weak: %+v", e)
	}
}

func TestName(t *testing.T) {
	m := defaultComposite()
	if got := m.Name(); !strings.Contains(got, "composite(average,2)") {
		t.Fatalf("name = %q", got)
	}
	m.Aggregate = Weighted
	if got := m.Name(); !strings.Contains(got, "weighted") {
		t.Fatalf("name = %q", got)
	}
}

func TestAggregationString(t *testing.T) {
	want := map[Aggregation]string{Average: "average", Max: "max", Min: "min", Weighted: "weighted"}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d = %q, want %q", a, a.String(), s)
		}
	}
}
