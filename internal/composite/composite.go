// Package composite implements a COMA-style composite matcher — the
// comparison system the QMatch paper names as ongoing work ("evaluating
// the quality of match and the performance of QMatch with other hybrid and
// composite algorithms such as CUPID and COMA"). Where QMatch is a hybrid
// (one algorithm combining several kinds of evidence inside its formula),
// a composite matcher runs several *independent* matchers, aggregates
// their similarity matrices, and selects correspondences from the
// aggregate (Do & Rahm, VLDB 2002).
//
// The package provides the three COMA building blocks:
//
//   - aggregation: Max, Min, Average, Weighted
//   - direction:   forward (source→target best matches)
//   - selection:   MaxN, MaxDelta, Threshold (composable)
package composite

import (
	"fmt"
	"sort"

	"qmatch/internal/match"
	"qmatch/internal/xmltree"
)

// PairScorer produces a full similarity table between two schemas —
// the granularity composite aggregation needs. Both baseline matchers and
// the hybrid expose this shape.
type PairScorer interface {
	Name() string
	Pairs(src, tgt *xmltree.Node) []match.ScoredPair
}

// Aggregation combines the per-matcher scores of one node pair.
type Aggregation int

const (
	// Average takes the arithmetic mean of the constituent scores.
	Average Aggregation = iota
	// Max takes the highest constituent score (optimistic).
	Max
	// Min takes the lowest constituent score (pessimistic).
	Min
	// Weighted takes a weighted mean using the matcher weights.
	Weighted
)

// String returns the aggregation name.
func (a Aggregation) String() string {
	switch a {
	case Max:
		return "max"
	case Min:
		return "min"
	case Weighted:
		return "weighted"
	default:
		return "average"
	}
}

// Selection extracts correspondences from the aggregated table.
type Selection struct {
	// Threshold drops pairs below this aggregate score (default 0.5).
	Threshold float64
	// MaxN keeps at most N candidate targets per source before the
	// one-to-one pass (0 = unlimited).
	MaxN int
	// Delta additionally keeps only candidates within Delta of each
	// source's best candidate (0 = disabled).
	Delta float64
	// OneToOne enforces an injective mapping via greedy stable
	// selection (default true via DefaultSelection).
	OneToOne bool
}

// DefaultSelection mirrors COMA's commonly used MaxDelta+threshold
// configuration.
func DefaultSelection() Selection {
	return Selection{Threshold: 0.5, MaxN: 3, Delta: 0.02, OneToOne: true}
}

// Matcher is a composite matcher over a set of constituent pair scorers.
type Matcher struct {
	// Scorers are the constituent matchers.
	Scorers []PairScorer
	// Weights holds one weight per scorer, used by the Weighted
	// aggregation (missing or non-positive entries default to 1).
	Weights []float64
	// Aggregate selects the combination strategy.
	Aggregate Aggregation
	// Select configures correspondence extraction.
	Select Selection
}

// New returns a composite matcher with Average aggregation and the default
// selection over the given scorers.
func New(scorers ...PairScorer) *Matcher {
	return &Matcher{
		Scorers:   scorers,
		Aggregate: Average,
		Select:    DefaultSelection(),
	}
}

// Name implements match.Algorithm.
func (m *Matcher) Name() string {
	return fmt.Sprintf("composite(%s,%d)", m.Aggregate, len(m.Scorers))
}

// pairKey identifies a node pair across matrices.
type pairKey struct{ s, t *xmltree.Node }

// Table computes the aggregated similarity table.
func (m *Matcher) Table(src, tgt *xmltree.Node) []match.ScoredPair {
	if len(m.Scorers) == 0 {
		return nil
	}
	type acc struct {
		sum, wsum, min, max float64
		n                   int
	}
	table := map[pairKey]*acc{}
	var order []pairKey // deterministic iteration
	for i, sc := range m.Scorers {
		w := 1.0
		if i < len(m.Weights) && m.Weights[i] > 0 {
			w = m.Weights[i]
		}
		for _, p := range sc.Pairs(src, tgt) {
			k := pairKey{p.Source, p.Target}
			a, ok := table[k]
			if !ok {
				a = &acc{min: p.Score, max: p.Score}
				table[k] = a
				order = append(order, k)
			}
			a.sum += p.Score
			a.wsum += w * p.Score
			a.n++
			if p.Score < a.min {
				a.min = p.Score
			}
			if p.Score > a.max {
				a.max = p.Score
			}
		}
	}
	wTotal := 0.0
	for i := range m.Scorers {
		if i < len(m.Weights) && m.Weights[i] > 0 {
			wTotal += m.Weights[i]
		} else {
			wTotal++
		}
	}
	out := make([]match.ScoredPair, 0, len(order))
	for _, k := range order {
		a := table[k]
		var v float64
		switch m.Aggregate {
		case Max:
			v = a.max
		case Min:
			v = a.min
		case Weighted:
			v = a.wsum / wTotal
		default:
			v = a.sum / float64(a.n)
		}
		out = append(out, match.ScoredPair{Source: k.s, Target: k.t, Score: v})
	}
	return out
}

// Match implements match.Algorithm: aggregate, apply MaxN/Delta candidate
// filtering per source, then threshold and (optionally) 1:1 selection.
func (m *Matcher) Match(src, tgt *xmltree.Node) []match.Correspondence {
	table := m.Table(src, tgt)
	filtered := m.filterCandidates(table)
	if m.Select.OneToOne {
		return match.Select(filtered, m.Select.Threshold)
	}
	return match.SelectAll(filtered, m.Select.Threshold)
}

// filterCandidates applies the MaxN and Delta strategies per source node.
func (m *Matcher) filterCandidates(table []match.ScoredPair) []match.ScoredPair {
	if m.Select.MaxN <= 0 && m.Select.Delta <= 0 {
		return table
	}
	bySource := map[*xmltree.Node][]match.ScoredPair{}
	var sources []*xmltree.Node
	for _, p := range table {
		if _, ok := bySource[p.Source]; !ok {
			sources = append(sources, p.Source)
		}
		bySource[p.Source] = append(bySource[p.Source], p)
	}
	var out []match.ScoredPair
	for _, s := range sources {
		cands := bySource[s]
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].Score != cands[j].Score {
				return cands[i].Score > cands[j].Score
			}
			return cands[i].Target.Path() < cands[j].Target.Path()
		})
		if m.Select.MaxN > 0 && len(cands) > m.Select.MaxN {
			cands = cands[:m.Select.MaxN]
		}
		if m.Select.Delta > 0 && len(cands) > 0 {
			best := cands[0].Score
			kept := cands[:0]
			for _, c := range cands {
				if best-c.Score <= m.Select.Delta {
					kept = append(kept, c)
				}
			}
			cands = kept
		}
		out = append(out, cands...)
	}
	return out
}

// TreeScore implements match.Algorithm: the aggregate score of the two
// roots.
func (m *Matcher) TreeScore(src, tgt *xmltree.Node) float64 {
	for _, p := range m.Table(src, tgt) {
		if p.Source == src && p.Target == tgt {
			return p.Score
		}
	}
	return 0
}

var _ match.Algorithm = (*Matcher)(nil)
