package cupid

import (
	"testing"

	"qmatch/internal/dataset"
	"qmatch/internal/match"
	"qmatch/internal/xmltree"
)

func TestName(t *testing.T) {
	if New(nil).Name() != "cupid" {
		t.Fatal("name")
	}
}

func TestSelfMatchHigh(t *testing.T) {
	m := New(nil)
	if got := m.TreeScore(dataset.PO1(), dataset.PO1()); got < 0.95 {
		t.Fatalf("self score = %v", got)
	}
}

func TestPOPairQuality(t *testing.T) {
	p := dataset.POPair()
	cs := New(nil).Match(p.Source, p.Target)
	e := match.Evaluate(cs, p.Gold)
	if e.TruePositives < 6 {
		t.Fatalf("cupid finds too little on PO: %+v\n%v", e, cs)
	}
	// 1:1 output.
	seenS, seenT := map[string]bool{}, map[string]bool{}
	for _, c := range cs {
		if seenS[c.Source] || seenT[c.Target] {
			t.Fatalf("not 1:1: %v", c)
		}
		seenS[c.Source], seenT[c.Target] = true, true
	}
}

func TestLeafReinforcement(t *testing.T) {
	// Two subtrees with identical leaves but unrelated labels: the
	// linguistic component is 0, so wsim never clears ThHigh and the
	// leaves are penalized; with matching labels the same structure
	// gets reinforced. The increment/decrement must move scores in
	// opposite directions.
	build := func(rootLabel, innerLabel string) *xmltree.Node {
		return xmltree.NewTree(rootLabel, xmltree.Elem(""),
			xmltree.NewTree(innerLabel, xmltree.Elem(""),
				xmltree.New(innerLabel+"A", xmltree.Elem("integer")),
				xmltree.New(innerLabel+"B", xmltree.Elem("string")),
			),
		)
	}
	m := New(nil)
	same := m.TreeScore(build("Order", "Lines"), build("Order", "Lines"))
	diff := m.TreeScore(build("Order", "Lines"), build("Zebra", "Quux"))
	if same <= diff {
		t.Fatalf("reinforcement inert: same=%v diff=%v", same, diff)
	}
	if same < 0.9 {
		t.Fatalf("same-label score = %v", same)
	}
}

func TestWsimBounds(t *testing.T) {
	p := dataset.BookPair()
	for _, sp := range New(nil).Pairs(p.Source, p.Target) {
		if sp.Score < 0 || sp.Score > 1 {
			t.Fatalf("wsim out of bounds: %v", sp.Score)
		}
	}
}

func TestStructuralComponent(t *testing.T) {
	// Library vs Human: no linguistic overlap, identical structure.
	// Unlike QMatch (Fig. 9: hybrid ≈ 0.63 here), CUPID's strong-link
	// criterion needs name evidence — leaf wsim = 0.5·typeSim stays
	// below ThAccept, so no leaves link strongly and the decrement
	// phase pushes the score to the floor. The low score is the
	// faithful CUPID behaviour and the very contrast QMatch's children
	// axis was designed to improve on.
	lib, hum := dataset.Library(), dataset.Human()
	m := New(nil)
	got := m.TreeScore(lib, hum)
	if got > 0.3 {
		t.Fatalf("structure-only wsim = %v, want low for CUPID", got)
	}
}

func TestPairsComplete(t *testing.T) {
	p := dataset.POPair()
	pairs := New(nil).Pairs(p.Source, p.Target)
	if len(pairs) != p.Source.Size()*p.Target.Size() {
		t.Fatalf("pairs = %d", len(pairs))
	}
}
