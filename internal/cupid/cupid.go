// Package cupid implements the CUPID schema matcher (Madhavan, Bernstein,
// Rahm — VLDB 2001), the second comparison system the QMatch paper's
// conclusion names. CUPID is itself a hybrid, but a differently shaped
// one: it computes a weighted similarity
//
//	wsim = ws·ssim + (1−ws)·lsim
//
// where lsim is linguistic name similarity and ssim is structural
// similarity derived from the *leaf sets* of the compared subtrees — two
// inner elements are structurally similar to the degree that their leaves
// are strongly linked. After each subtree comparison, the leaves'
// structural similarities are reinforced or penalized depending on whether
// the subtrees turned out similar (the "increment/decrement" step of the
// original TreeMatch).
package cupid

import (
	"qmatch/internal/lingo"
	"qmatch/internal/match"
	"qmatch/internal/xmltree"
)

// Matcher is the CUPID algorithm.
type Matcher struct {
	// Names scores label pairs (lsim).
	Names *lingo.NameMatcher
	// StructWeight is ws, the weight of ssim in wsim. Default 0.5.
	StructWeight float64
	// ThAccept is the wsim threshold for two leaves to count as
	// strongly linked. Default 0.6.
	ThAccept float64
	// ThHigh and ThLow trigger the increment/decrement of leaf
	// structural similarity after a subtree comparison. Defaults 0.7 /
	// 0.35.
	ThHigh, ThLow float64
	// CInc and CDec scale the reinforcement. Defaults 1.2 / 0.9.
	CInc, CDec float64
	// SelectionThreshold is the minimum wsim for a reported
	// correspondence. Default 0.75.
	SelectionThreshold float64
}

// New returns a CUPID matcher with the original paper's default tuning
// over the given thesaurus (nil selects the built-in default).
func New(th *lingo.Thesaurus) *Matcher {
	if th == nil {
		th = lingo.Default()
	}
	return &Matcher{
		Names:              lingo.NewNameMatcher(th),
		StructWeight:       0.5,
		ThAccept:           0.6,
		ThHigh:             0.7,
		ThLow:              0.35,
		CInc:               1.2,
		CDec:               0.9,
		SelectionThreshold: 0.75,
	}
}

// Name implements match.Algorithm.
func (m *Matcher) Name() string { return "cupid" }

type pairKey struct{ s, t *xmltree.Node }

// run holds the mutable state of one TreeMatch execution.
type run struct {
	m        *Matcher
	lsim     map[pairKey]float64
	ssim     map[pairKey]float64 // mutable: leaves get incremented/decremented
	wsim     map[pairKey]float64
	leavesOf map[*xmltree.Node][]*xmltree.Node
}

// Pairs returns the full wsim table between the two schemas.
func (m *Matcher) Pairs(src, tgt *xmltree.Node) []match.ScoredPair {
	r := m.treeMatch(src, tgt)
	srcs, tgts := src.Nodes(), tgt.Nodes()
	out := make([]match.ScoredPair, 0, len(srcs)*len(tgts))
	for _, s := range srcs {
		for _, t := range tgts {
			out = append(out, match.ScoredPair{Source: s, Target: t, Score: r.wsimOf(s, t)})
		}
	}
	return out
}

// Match implements match.Algorithm.
func (m *Matcher) Match(src, tgt *xmltree.Node) []match.Correspondence {
	return match.Select(m.Pairs(src, tgt), m.SelectionThreshold)
}

// TreeScore implements match.Algorithm: the roots' wsim.
func (m *Matcher) TreeScore(src, tgt *xmltree.Node) float64 {
	r := m.treeMatch(src, tgt)
	return r.wsimOf(src, tgt)
}

// treeMatch runs the two phases of CUPID: linguistic matching of all
// pairs, then the bottom-up structural phase over post-ordered subtrees
// with leaf reinforcement.
func (m *Matcher) treeMatch(src, tgt *xmltree.Node) *run {
	r := &run{
		m:        m,
		lsim:     map[pairKey]float64{},
		ssim:     map[pairKey]float64{},
		wsim:     map[pairKey]float64{},
		leavesOf: map[*xmltree.Node][]*xmltree.Node{},
	}
	srcs, tgts := src.Nodes(), tgt.Nodes()
	for _, n := range srcs {
		r.leavesOf[n] = n.Leaves()
	}
	for _, n := range tgts {
		r.leavesOf[n] = n.Leaves()
	}

	// Phase 1: linguistic similarity of every pair.
	for _, s := range srcs {
		for _, t := range tgts {
			r.lsim[pairKey{s, t}] = m.Names.Score(s.Label, t.Label)
		}
	}

	// Initialize leaf-leaf structural similarity from datatype
	// compatibility.
	for _, s := range srcs {
		if !s.IsLeaf() {
			continue
		}
		for _, t := range tgts {
			if !t.IsLeaf() {
				continue
			}
			r.ssim[pairKey{s, t}] = typeSim(s.Props, t.Props)
		}
	}

	// Phase 2: post-order over both trees; inner ssim from strong leaf
	// links, then reinforcement of the leaves.
	srcPost := postOrder(src)
	tgtPost := postOrder(tgt)
	for _, s := range srcPost {
		if s.IsLeaf() {
			continue
		}
		for _, t := range tgtPost {
			if t.IsLeaf() {
				continue
			}
			k := pairKey{s, t}
			r.ssim[k] = r.leafLinkage(s, t)
			w := r.computeWsim(k)
			switch {
			case w > m.ThHigh:
				r.adjustLeaves(s, t, m.CInc)
			case w < m.ThLow:
				r.adjustLeaves(s, t, m.CDec)
			}
		}
	}
	return r
}

// leafLinkage is CUPID's structural similarity of two inner nodes: the
// fraction of strongly linked leaves across both leaf sets.
func (r *run) leafLinkage(s, t *xmltree.Node) float64 {
	ls, lt := r.leavesOf[s], r.leavesOf[t]
	if len(ls) == 0 || len(lt) == 0 {
		return 0
	}
	strongS := 0
	for _, x := range ls {
		for _, y := range lt {
			if r.computeWsim(pairKey{x, y}) > r.m.ThAccept {
				strongS++
				break
			}
		}
	}
	strongT := 0
	for _, y := range lt {
		for _, x := range ls {
			if r.computeWsim(pairKey{x, y}) > r.m.ThAccept {
				strongT++
				break
			}
		}
	}
	return float64(strongS+strongT) / float64(len(ls)+len(lt))
}

// computeWsim combines the current ssim and lsim of one pair, caching the
// value until a reinforcement invalidates it.
func (r *run) computeWsim(k pairKey) float64 {
	w := r.m.StructWeight*r.ssim[k] + (1-r.m.StructWeight)*r.lsim[k]
	if w > 1 {
		w = 1
	}
	r.wsim[k] = w
	return w
}

// adjustLeaves scales the structural similarity of every leaf pair under
// the two inner nodes by factor, clamped to [0,1].
func (r *run) adjustLeaves(s, t *xmltree.Node, factor float64) {
	for _, x := range r.leavesOf[s] {
		for _, y := range r.leavesOf[t] {
			k := pairKey{x, y}
			v := r.ssim[k] * factor
			if v > 1 {
				v = 1
			}
			r.ssim[k] = v
		}
	}
}

// wsimOf returns the final combined similarity of a pair.
func (r *run) wsimOf(s, t *xmltree.Node) float64 {
	return r.computeWsim(pairKey{s, t})
}

// typeSim scores datatype compatibility of two leaves, including the
// element/attribute kind.
func typeSim(a, b xmltree.Properties) float64 {
	base := 0.0
	switch {
	case xmltree.TypeEqual(a.Type, b.Type):
		base = 1
	case xmltree.TypeCompatible(a.Type, b.Type):
		base = 0.6
	}
	if a.IsAttribute != b.IsAttribute {
		base *= 0.8
	}
	return base
}

// postOrder returns the subtree's nodes children-first.
func postOrder(root *xmltree.Node) []*xmltree.Node {
	var out []*xmltree.Node
	var walk func(*xmltree.Node)
	walk = func(n *xmltree.Node) {
		for _, c := range n.Children {
			walk(c)
		}
		out = append(out, n)
	}
	walk(root)
	return out
}

var _ match.Algorithm = (*Matcher)(nil)
