package instances

import (
	"math"
	"strings"
	"testing"

	"qmatch/internal/composite"
	"qmatch/internal/core"
	"qmatch/internal/match"
	"qmatch/internal/xmltree"
)

// contactSchema builds a schema whose leaves have distinctive value
// profiles: phone numbers (digits+punctuation), emails (alpha with '@'),
// and ages (short numerics).
func contactSchema(root, phone, email, age string) *xmltree.Node {
	return xmltree.NewTree(root, xmltree.Elem(""),
		xmltree.New(phone, xmltree.Elem("string")),
		xmltree.New(email, xmltree.Elem("string")),
		xmltree.New(age, xmltree.Elem("integer")),
	)
}

func srcDocs() []string {
	return []string{
		`<Person><Tel>555-0100</Tel><Mail>ada@example.com</Mail><Years>36</Years></Person>`,
		`<Person><Tel>555-0199</Tel><Mail>bob@example.org</Mail><Years>41</Years></Person>`,
		`<Person><Tel>555-0123</Tel><Mail>eve@example.net</Mail><Years>29</Years></Person>`,
	}
}

func tgtDocs() []string {
	return []string{
		`<Contact><Fon>555-8800</Fon><Post>carl@sample.com</Post><Alter>52</Alter></Contact>`,
		`<Contact><Fon>555-8811</Fon><Post>dora@sample.org</Post><Alter>33</Alter></Contact>`,
	}
}

func profiles(t *testing.T) (Profile, Profile, *xmltree.Node, *xmltree.Node) {
	t.Helper()
	src := contactSchema("Person", "Tel", "Mail", "Years")
	tgt := contactSchema("Contact", "Fon", "Post", "Alter")
	sp, err := CollectStrings(src, srcDocs()...)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := CollectStrings(tgt, tgtDocs()...)
	if err != nil {
		t.Fatal(err)
	}
	return sp, tp, src, tgt
}

func TestCollectStats(t *testing.T) {
	sp, _, _, _ := profiles(t)
	tel := sp["Person/Tel"]
	if tel.Count != 3 {
		t.Fatalf("tel count = %d", tel.Count)
	}
	if tel.DigitRatio < 0.8 {
		t.Fatalf("tel digit ratio = %v", tel.DigitRatio)
	}
	mail := sp["Person/Mail"]
	if mail.AlphaRatio < 0.7 {
		t.Fatalf("mail alpha ratio = %v", mail.AlphaRatio)
	}
	years := sp["Person/Years"]
	if years.NumericRatio != 1 {
		t.Fatalf("years numeric ratio = %v", years.NumericRatio)
	}
	if math.Abs(years.AvgLength-2) > 1e-9 {
		t.Fatalf("years avg length = %v", years.AvgLength)
	}
	if years.DistinctRatio != 1 {
		t.Fatalf("years distinct ratio = %v", years.DistinctRatio)
	}
	if got := len(sp.Paths()); got != 3 {
		t.Fatalf("paths = %v", sp.Paths())
	}
}

// Labels share nothing across the two schemas; instance evidence alone
// must align phone↔phone, email↔email, age↔age.
func TestInstanceEvidenceAligns(t *testing.T) {
	sp, tp, src, tgt := profiles(t)
	m := New(sp, tp)
	cs := m.Match(src, tgt)
	got := map[string]string{}
	for _, c := range cs {
		got[c.Source] = c.Target
	}
	want := map[string]string{
		"Person/Tel":   "Contact/Fon",
		"Person/Mail":  "Contact/Post",
		"Person/Years": "Contact/Alter",
	}
	for s, tgtPath := range want {
		if got[s] != tgtPath {
			t.Errorf("%s -> %s, want %s (all: %v)", s, got[s], tgtPath, cs)
		}
	}
}

func TestSimilarityProperties(t *testing.T) {
	a := Stats{Count: 5, NumericRatio: 1, AvgLength: 2, DistinctRatio: 1, DigitRatio: 1}
	if got := Similarity(a, a); got != 1 {
		t.Fatalf("self similarity = %v", got)
	}
	b := Stats{Count: 5, AlphaRatio: 1, AvgLength: 40, DistinctRatio: 1}
	ab := Similarity(a, b)
	if ab <= 0 || ab >= 0.7 {
		t.Fatalf("disparate similarity = %v", ab)
	}
	if Similarity(a, b) != Similarity(b, a) {
		t.Fatal("asymmetric")
	}
	if got := Similarity(Stats{}, a); got != 0 {
		t.Fatalf("empty stats similarity = %v", got)
	}
}

func TestCollectErrors(t *testing.T) {
	src := contactSchema("Person", "Tel", "Mail", "Years")
	if _, err := CollectStrings(src, `<Person><unclosed>`); err == nil {
		t.Fatal("malformed accepted")
	}
	if _, err := CollectStrings(src, ``); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := CollectStrings(src, `<A/><B/>`); err == nil {
		t.Fatal("multiple roots accepted")
	}
}

func TestAttributesProfiled(t *testing.T) {
	schema := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.New("id", xmltree.Attr("integer")),
	)
	p, err := CollectStrings(schema, `<R id="12345"/>`, `<R id="67890"/>`)
	if err != nil {
		t.Fatal(err)
	}
	if p["R/id"].Count != 2 || p["R/id"].DigitRatio != 1 {
		t.Fatalf("attr stats = %+v", p["R/id"])
	}
}

// Instance evidence as a composite constituent: blended with the hybrid,
// it must not lose the hybrid's correspondences on a labeled task.
func TestBlendWithHybrid(t *testing.T) {
	sp, tp, src, tgt := profiles(t)
	blend := composite.New(core.NewHybrid(nil), New(sp, tp))
	blend.Aggregate = composite.Max
	blend.Select.Threshold = 0.8
	cs := blend.Match(src, tgt)
	e := match.Evaluate(cs, match.NewGold(
		[2]string{"Person/Tel", "Contact/Fon"},
		[2]string{"Person/Mail", "Contact/Post"},
		[2]string{"Person/Years", "Contact/Alter"},
	))
	if e.Recall < 0.99 {
		t.Fatalf("blend recall = %v (%v)", e.Recall, cs)
	}
}

func TestTreeScore(t *testing.T) {
	sp, tp, src, tgt := profiles(t)
	m := New(sp, tp)
	v := m.TreeScore(src, tgt)
	if v <= 0.4 || v > 1 {
		t.Fatalf("tree score = %v", v)
	}
	if m.Name() != "instances" {
		t.Fatal("name")
	}
}

func TestCollectReaderVariant(t *testing.T) {
	src := contactSchema("Person", "Tel", "Mail", "Years")
	p, err := Collect(src, strings.NewReader(srcDocs()[0]))
	if err != nil {
		t.Fatal(err)
	}
	if p["Person/Tel"].Count != 1 {
		t.Fatalf("stats = %+v", p["Person/Tel"])
	}
}
