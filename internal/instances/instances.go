// Package instances derives matching evidence from sample instance
// documents — the signal family of SemInt (Li & Clifton, VLDB 1994), which
// the QMatch paper's related work contrasts with: "SemInt provides a match
// procedure using a classifier to categorize attributes according to their
// field specifications and data values". Labels can lie; data rarely does.
// Two leaves whose observed values share length distributions and
// character-class profiles are likely the same field even when their names
// share nothing.
//
// The package profiles sample documents against a schema, scores leaf
// pairs by feature-vector similarity, and exposes the result as a
// composite-compatible matcher that can be blended with QMatch.
package instances

import (
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"unicode"

	"qmatch/internal/match"
	"qmatch/internal/xmltree"
)

// Stats is the feature vector of one schema leaf's observed values.
type Stats struct {
	// Count is the number of observed values.
	Count int
	// NumericRatio is the fraction of values parseable as numbers.
	NumericRatio float64
	// AvgLength is the mean value length in runes.
	AvgLength float64
	// DistinctRatio is |distinct values| / Count.
	DistinctRatio float64
	// AlphaRatio / DigitRatio / OtherRatio describe the character-class
	// distribution across all observed characters.
	AlphaRatio float64
	DigitRatio float64
	OtherRatio float64
}

// Profile maps schema leaf paths to their observed statistics.
type Profile map[string]Stats

// Collect profiles one or more sample documents of a schema. Document
// nodes are located by their slash path; values of elements or attributes
// whose path names a schema leaf are accumulated. Unparseable documents
// return an error.
func Collect(schema *xmltree.Node, docs ...io.Reader) (Profile, error) {
	leaves := map[string]bool{}
	schema.Walk(func(n *xmltree.Node) bool {
		if n.IsLeaf() {
			leaves[n.Path()] = true
		}
		return true
	})
	acc := map[string]*accumulator{}
	for i, doc := range docs {
		root, err := parseDoc(doc)
		if err != nil {
			return nil, fmt.Errorf("instances: document %d: %w", i, err)
		}
		collectNode(root, root.name, leaves, acc)
	}
	out := Profile{}
	for path, a := range acc {
		out[path] = a.stats()
	}
	return out, nil
}

// CollectStrings is Collect over document strings.
func CollectStrings(schema *xmltree.Node, docs ...string) (Profile, error) {
	readers := make([]io.Reader, len(docs))
	for i, d := range docs {
		readers[i] = strings.NewReader(d)
	}
	return Collect(schema, readers...)
}

type accumulator struct {
	count    int
	numeric  int
	lengths  int
	alpha    int
	digit    int
	other    int
	distinct map[string]bool
}

func (a *accumulator) add(value string) {
	value = strings.TrimSpace(value)
	if value == "" {
		return
	}
	if a.distinct == nil {
		a.distinct = map[string]bool{}
	}
	a.count++
	a.distinct[value] = true
	if _, err := strconv.ParseFloat(value, 64); err == nil {
		a.numeric++
	}
	for _, r := range value {
		a.lengths++
		switch {
		case unicode.IsLetter(r):
			a.alpha++
		case unicode.IsDigit(r):
			a.digit++
		default:
			a.other++
		}
	}
}

func (a *accumulator) stats() Stats {
	s := Stats{Count: a.count}
	if a.count == 0 {
		return s
	}
	s.NumericRatio = float64(a.numeric) / float64(a.count)
	s.AvgLength = float64(a.lengths) / float64(a.count)
	s.DistinctRatio = float64(len(a.distinct)) / float64(a.count)
	if a.lengths > 0 {
		s.AlphaRatio = float64(a.alpha) / float64(a.lengths)
		s.DigitRatio = float64(a.digit) / float64(a.lengths)
		s.OtherRatio = float64(a.other) / float64(a.lengths)
	}
	return s
}

// Similarity scores two leaf feature vectors in [0,1]: 1 − the weighted L1
// distance over the ratio features, with average length compared on a log
// scale (a 5-char and a 500-char field differ more than a 5 and a 10).
func Similarity(a, b Stats) float64 {
	if a.Count == 0 || b.Count == 0 {
		return 0
	}
	d := 0.0
	d += 0.25 * math.Abs(a.NumericRatio-b.NumericRatio)
	d += 0.20 * math.Abs(a.AlphaRatio-b.AlphaRatio)
	d += 0.20 * math.Abs(a.DigitRatio-b.DigitRatio)
	d += 0.10 * math.Abs(a.OtherRatio-b.OtherRatio)
	d += 0.10 * math.Abs(a.DistinctRatio-b.DistinctRatio)
	la, lb := math.Log1p(a.AvgLength), math.Log1p(b.AvgLength)
	maxLog := math.Max(la, lb)
	if maxLog > 0 {
		d += 0.15 * math.Abs(la-lb) / maxLog
	}
	if d > 1 {
		d = 1
	}
	return 1 - d
}

// Matcher scores schema pairs from instance evidence. It implements both
// match.Algorithm and the composite.PairScorer shape, so it can run
// standalone or be blended with the hybrid in a composite.
type Matcher struct {
	// SourceProfile / TargetProfile hold the observed statistics.
	SourceProfile, TargetProfile Profile
	// ChildThreshold gates children aggregation for inner nodes.
	// Default 0.5.
	ChildThreshold float64
	// SelectionThreshold is the minimum similarity for a reported
	// correspondence. Default 0.85 — instance evidence alone is noisy,
	// so only near-identical profiles qualify.
	SelectionThreshold float64
}

// New builds an instance-evidence matcher from profiles collected for the
// two schemas.
func New(source, target Profile) *Matcher {
	return &Matcher{
		SourceProfile:      source,
		TargetProfile:      target,
		ChildThreshold:     0.5,
		SelectionThreshold: 0.85,
	}
}

// Name implements match.Algorithm.
func (m *Matcher) Name() string { return "instances" }

// Pairs returns the full instance-similarity table.
func (m *Matcher) Pairs(src, tgt *xmltree.Node) []match.ScoredPair {
	sims := map[[2]*xmltree.Node]float64{}
	var score func(s, t *xmltree.Node) float64
	score = func(s, t *xmltree.Node) float64 {
		key := [2]*xmltree.Node{s, t}
		if v, ok := sims[key]; ok {
			return v
		}
		sims[key] = 0
		var v float64
		if s.IsLeaf() && t.IsLeaf() {
			v = Similarity(m.SourceProfile[s.Path()], m.TargetProfile[t.Path()])
		} else {
			sum, count := 0.0, 0
			for _, cs := range s.Children {
				best := 0.0
				for _, ct := range t.Children {
					if cv := score(cs, ct); cv > best {
						best = cv
					}
				}
				if best >= m.ChildThreshold {
					sum += best
					count++
				}
			}
			if n := len(s.Children); n > 0 {
				v = (sum/float64(n) + float64(count)/float64(n)) / 2
			}
		}
		sims[key] = v
		return v
	}
	srcs, tgts := src.Nodes(), tgt.Nodes()
	out := make([]match.ScoredPair, 0, len(srcs)*len(tgts))
	for _, s := range srcs {
		for _, t := range tgts {
			out = append(out, match.ScoredPair{Source: s, Target: t, Score: score(s, t)})
		}
	}
	return out
}

// Match implements match.Algorithm.
func (m *Matcher) Match(src, tgt *xmltree.Node) []match.Correspondence {
	return match.Select(m.Pairs(src, tgt), m.SelectionThreshold)
}

// TreeScore implements match.Algorithm.
func (m *Matcher) TreeScore(src, tgt *xmltree.Node) float64 {
	best := 0.0
	for _, p := range m.Pairs(src, tgt) {
		if p.Source == src && p.Target == tgt {
			return p.Score
		}
		if p.Score > best {
			best = p.Score
		}
	}
	return best
}

// Paths returns the profiled leaf paths in sorted order, for diagnostics.
func (p Profile) Paths() []string {
	out := make([]string, 0, len(p))
	for path := range p {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}

// --- document parsing (same shape as the validator's) ---

type docElem struct {
	name     string
	attrs    []xml.Attr
	children []*docElem
	text     strings.Builder
}

func parseDoc(r io.Reader) (*docElem, error) {
	dec := xml.NewDecoder(r)
	var stack []*docElem
	var root *docElem
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &docElem{name: t.Name.Local, attrs: t.Attr}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("multiple roots")
				}
				root = n
			} else {
				p := stack[len(stack)-1]
				p.children = append(p.children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].text.Write([]byte(t))
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("empty document")
	}
	return root, nil
}

func collectNode(e *docElem, path string, leaves map[string]bool, acc map[string]*accumulator) {
	for _, a := range e.attrs {
		ap := path + "/" + a.Name.Local
		if leaves[ap] {
			get(acc, ap).add(a.Value)
		}
	}
	if len(e.children) == 0 && leaves[path] {
		get(acc, path).add(e.text.String())
	}
	for _, c := range e.children {
		collectNode(c, path+"/"+c.name, leaves, acc)
	}
}

func get(acc map[string]*accumulator, path string) *accumulator {
	a, ok := acc[path]
	if !ok {
		a = &accumulator{}
		acc[path] = a
	}
	return a
}

var _ match.Algorithm = (*Matcher)(nil)
