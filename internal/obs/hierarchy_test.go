package obs

import (
	"strings"
	"testing"
)

// Spans get start-ordered IDs; StartChild/Child link ParentID; SetParent
// makes later StartSpan calls nest under an adopted parent without the
// caller passing it around.
func TestSpanHierarchy(t *testing.T) {
	tr := NewTrace()
	tr.SetID("cafe")
	root := tr.StartSpan(PhaseRequest)
	if root.ID() != 1 {
		t.Fatalf("root ID = %d, want 1", root.ID())
	}
	tr.SetParent(root)
	queue := tr.StartSpan(PhaseQueue)
	queue.End()
	match := tr.StartSpan(PhaseMatch)
	level := match.Child(PhaseLevel)
	level.SetLevel(2)
	level.End()
	match.End()
	root.End()

	mt := tr.Finish()
	if mt.TraceID != "cafe" {
		t.Fatalf("TraceID = %q", mt.TraceID)
	}
	parentOf := make(map[Phase]int64)
	idOf := make(map[Phase]int64)
	for _, s := range mt.Spans {
		parentOf[s.Phase] = s.ParentID
		idOf[s.Phase] = s.ID
	}
	if parentOf[PhaseRequest] != 0 {
		t.Fatalf("request span is not a root: parent %d", parentOf[PhaseRequest])
	}
	if parentOf[PhaseQueue] != idOf[PhaseRequest] || parentOf[PhaseMatch] != idOf[PhaseRequest] {
		t.Fatalf("queue/match not parented under request: %v / %v", parentOf, idOf)
	}
	if parentOf[PhaseLevel] != idOf[PhaseMatch] {
		t.Fatalf("level span parent = %d, want match %d", parentOf[PhaseLevel], idOf[PhaseMatch])
	}

	// Format indents children under their parents.
	text := mt.Format()
	if !strings.Contains(text, "level=2") {
		t.Fatalf("Format() lost the level annotation:\n%s", text)
	}
	var reqIndent, levelIndent int
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimLeft(line, " ")
		switch {
		case strings.HasPrefix(trimmed, "request"):
			reqIndent = len(line) - len(trimmed)
		case strings.HasPrefix(trimmed, "level"):
			levelIndent = len(line) - len(trimmed)
		}
	}
	if levelIndent <= reqIndent {
		t.Fatalf("level span not indented deeper than request (%d vs %d):\n%s",
			levelIndent, reqIndent, text)
	}
}

// Graft stitches a child trace under a parent span: IDs are remapped past
// the host's maximum, roots are reparented, the timeline shifts by the
// offset, and the host total grows to cover the graft.
func TestGraft(t *testing.T) {
	host := &MatchTrace{
		TotalNs: 1000,
		Spans: []Span{
			{Phase: PhaseRequest, ID: 1, StartNs: 0, DurationNs: 1000},
			{Phase: PhaseQueue, ID: 2, ParentID: 1, StartNs: 10, DurationNs: 50},
		},
	}
	child := &MatchTrace{
		TotalNs: 500,
		Spans: []Span{
			{Phase: PhaseMatch, ID: 1, StartNs: 0, DurationNs: 500},
			{Phase: PhaseIntern, ID: 2, ParentID: 1, StartNs: 5, DurationNs: 100},
		},
	}
	host.Graft(child, 1, 600)

	if len(host.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(host.Spans))
	}
	byPhase := make(map[Phase]Span)
	for _, s := range host.Spans {
		byPhase[s.Phase] = s
	}
	match, intern := byPhase[PhaseMatch], byPhase[PhaseIntern]
	if match.ID != 3 || intern.ID != 4 {
		t.Fatalf("grafted IDs = %d/%d, want 3/4", match.ID, intern.ID)
	}
	if match.ParentID != 1 {
		t.Fatalf("grafted root reparented to %d, want 1", match.ParentID)
	}
	if intern.ParentID != match.ID {
		t.Fatalf("grafted child parent = %d, want %d", intern.ParentID, match.ID)
	}
	if match.StartNs != 600 || intern.StartNs != 605 {
		t.Fatalf("timeline not shifted: %d / %d", match.StartNs, intern.StartNs)
	}
	if host.TotalNs != 1100 {
		t.Fatalf("TotalNs = %d, want 1100 (offset + child total)", host.TotalNs)
	}

	// Grafting nothing is a no-op.
	before := len(host.Spans)
	host.Graft(nil, 1, 0)
	host.Graft(&MatchTrace{}, 1, 0)
	if len(host.Spans) != before {
		t.Fatalf("empty graft changed the trace")
	}
}
