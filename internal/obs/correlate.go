package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"sync/atomic"
)

// Request correlation: W3C traceparent handling, context propagation of
// trace/request IDs and live traces, and the slog.Handler wrapper that
// stamps every log line of a request with its IDs. The convention is the
// Trace Context spec's: a 32-hex-digit trace ID identifies the end-to-end
// request across process boundaries, a 16-hex-digit span/request ID
// identifies one hop. qmatchd accepts an inbound traceparent at the HTTP
// edge (generating IDs when the client sent none), threads both IDs
// through context into the Engine and registry operations, and echoes the
// trace ID back as X-Request-Id.

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>") and returns
// its trace and parent-span IDs. ok is false for malformed values and for
// the all-zero IDs the spec forbids.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	// Version ff is invalid per spec; future versions may append fields
	// after the flags, so only the prefix is validated.
	if !isHex(h[:2]) || h[:2] == "ff" {
		return "", "", false
	}
	traceID, parentID = h[3:35], h[36:52]
	if !isHex(traceID) || !isHex(parentID) || !isHex(h[53:55]) {
		return "", "", false
	}
	if traceID == "00000000000000000000000000000000" || parentID == "0000000000000000" {
		return "", "", false
	}
	return traceID, parentID, true
}

// FormatTraceparent renders a version-00 traceparent header value with the
// sampled flag set.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// NewTraceID returns a random 32-hex-digit W3C trace ID.
func NewTraceID() string { return randHex(16) }

// NewSpanID returns a random 16-hex-digit W3C span/request ID.
func NewSpanID() string { return randHex(8) }

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing is unrecoverable for correlation purposes;
		// an all-zero ID at least stays structurally valid downstream.
		for i := range b {
			b[i] = 0
		}
	}
	return hex.EncodeToString(b)
}

type ctxKey int

const (
	ctxKeyIDs ctxKey = iota
	ctxKeyTrace
	ctxKeyPhaseCell
	ctxKeyTraceSink
)

type ctxIDs struct{ traceID, requestID string }

// ContextWithIDs attaches a trace ID and request ID to the context. Every
// slog line routed through a CorrelationHandler with this context carries
// both as attributes.
func ContextWithIDs(ctx context.Context, traceID, requestID string) context.Context {
	return context.WithValue(ctx, ctxKeyIDs, ctxIDs{traceID, requestID})
}

// IDsFromContext returns the trace and request IDs attached by
// ContextWithIDs ("" when absent).
func IDsFromContext(ctx context.Context) (traceID, requestID string) {
	if ctx == nil {
		return "", ""
	}
	ids, _ := ctx.Value(ctxKeyIDs).(ctxIDs)
	return ids.traceID, ids.requestID
}

// ContextWithTrace attaches a live request-level Trace, letting layers
// below the HTTP edge (the admission limiter's queue wait, registry
// operations) add spans to the request's own trace.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKeyTrace, tr)
}

// TraceFromContext returns the request-level Trace (nil when absent).
func TraceFromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(ctxKeyTrace).(*Trace)
	return tr
}

// ContextWithPhaseCell attaches a PhaseCell; an Engine match run under this
// context mirrors its current pipeline phase into the cell, which the
// qmatchd /debug/requests table reads for its "phase" column.
func ContextWithPhaseCell(ctx context.Context, c *PhaseCell) context.Context {
	return context.WithValue(ctx, ctxKeyPhaseCell, c)
}

// PhaseCellFromContext returns the attached PhaseCell (nil when absent).
func PhaseCellFromContext(ctx context.Context) *PhaseCell {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(ctxKeyPhaseCell).(*PhaseCell)
	return c
}

// TraceSink receives the finished trace of one engine match run under a
// correlated context. qmatchd installs one per request so it can stitch
// engine traces under its request span for /debug/slow, even when the
// client did not ask for a trace in the response body.
type TraceSink func(*MatchTrace)

// ContextWithTraceSink attaches a TraceSink to the context. The sink may
// be called from multiple goroutines (one per MatchAll job) and must be
// concurrency-safe.
func ContextWithTraceSink(ctx context.Context, sink TraceSink) context.Context {
	return context.WithValue(ctx, ctxKeyTraceSink, sink)
}

// TraceSinkFromContext returns the attached TraceSink (nil when absent).
func TraceSinkFromContext(ctx context.Context) TraceSink {
	if ctx == nil {
		return nil
	}
	sink, _ := ctx.Value(ctxKeyTraceSink).(TraceSink)
	return sink
}

// PhaseCell is a lock-free single-value mailbox for the phase a request is
// currently in. A Trace with a cell installed stores every span start into
// it; readers (the in-flight request table) load the latest value without
// touching the trace's lock. All methods no-op on a nil receiver.
type PhaseCell struct{ v atomic.Value }

// Set stores the current phase.
func (c *PhaseCell) Set(p Phase) {
	if c == nil {
		return
	}
	c.v.Store(p)
}

// Get returns the most recently stored phase ("" before the first Set).
func (c *PhaseCell) Get() Phase {
	if c == nil {
		return ""
	}
	p, _ := c.v.Load().(Phase)
	return p
}

// CorrelationHandler is a slog.Handler wrapper that injects trace_id and
// request_id attributes from the record's context (see ContextWithIDs).
// Log calls whose context carries no IDs pass through unchanged, so one
// wrapped logger serves both correlated request work and background
// lifecycle events.
type CorrelationHandler struct{ inner slog.Handler }

// NewCorrelationHandler wraps inner with ID injection.
func NewCorrelationHandler(inner slog.Handler) *CorrelationHandler {
	return &CorrelationHandler{inner: inner}
}

// Enabled defers to the wrapped handler.
func (h *CorrelationHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle clones the record and appends trace_id/request_id attributes
// when the context carries correlation IDs, then delegates.
func (h *CorrelationHandler) Handle(ctx context.Context, rec slog.Record) error {
	if traceID, requestID := IDsFromContext(ctx); traceID != "" || requestID != "" {
		rec = rec.Clone()
		if traceID != "" {
			rec.AddAttrs(slog.String("trace_id", traceID))
		}
		if requestID != "" {
			rec.AddAttrs(slog.String("request_id", requestID))
		}
	}
	return h.inner.Handle(ctx, rec)
}

// WithAttrs wraps the derived inner handler, preserving injection.
func (h *CorrelationHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &CorrelationHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup wraps the derived inner handler, preserving injection.
func (h *CorrelationHandler) WithGroup(name string) slog.Handler {
	return &CorrelationHandler{inner: h.inner.WithGroup(name)}
}

var _ slog.Handler = (*CorrelationHandler)(nil)
