// Package obs is the zero-external-dependency observability layer of the
// matcher: a concurrency-safe metrics registry (counters, gauges,
// fixed-bucket latency histograms) with expvar registration and a
// Prometheus-text exposition writer, plus per-match phase traces
// (trace.go). Every instrument is nil-safe — calling a method on a nil
// *Counter, *Gauge, *Histogram, *Trace or *ActiveSpan is a no-op — so
// instrumented code holds possibly-nil handles and calls them
// unconditionally: the disabled path is a nil-check, no branches to
// maintain and zero allocations.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 metric (pool sizes, in-flight work).
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n (use negative n to decrement). No-op on nil.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Bounds are ascending upper
// bounds; an implicit +Inf bucket catches the overflow. Observations are
// lock-free: one atomic add into the owning bucket plus a CAS loop folding
// the value into the float64 sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

// DefaultDurationBuckets are the second-denominated bounds the Engine's
// match-duration histogram uses: 100µs up to 10s, roughly ×2.5 per step —
// wide enough for both the 10-node PO pair and the 231×3753 protein match.
var DefaultDurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra final
	// entry for the +Inf bucket. Counts are per-bucket, not cumulative.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
	// Percentiles are p50/p90/p99 estimates derived from the buckets
	// (see Quantile); omitted for empty histograms.
	Percentiles map[string]float64 `json:"percentiles,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Percentiles = map[string]float64{
			"p50": s.Quantile(0.50),
			"p90": s.Quantile(0.90),
			"p99": s.Quantile(0.99),
		}
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts,
// interpolating linearly inside the bucket the quantile lands in — the
// same estimate Prometheus's histogram_quantile computes. Observations in
// the +Inf bucket clamp to the highest finite bound (there is no upper
// edge to interpolate toward); an empty histogram returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			cum += c
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lower + (upper-lower)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Registry is a concurrency-safe collection of named instruments. Names
// follow Prometheus conventions and may carry a literal label block, e.g.
// "qmatch_phase_ns_total{phase=\"pairtable\"}"; the exposition writer
// splices histogram suffixes and the le label into such blocks correctly.
//
// Lookup methods are get-or-create and idempotent: the first call for a
// name creates the instrument, later calls return the same one, so
// instrumented code may resolve handles eagerly (hot paths) or lazily.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		hists:      make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a pull-style gauge evaluated at snapshot time — the
// zero-hot-path-cost way to expose counters another subsystem already
// maintains (the Engine's label-score cache). Re-registering a name
// replaces the function.
func (r *Registry) GaugeFunc(name string, f func() int64) {
	r.mu.Lock()
	r.gaugeFuncs[name] = f
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds (ascending; nil selects DefaultDurationBuckets) on first use.
// Later calls ignore bounds and return the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if bounds == nil {
			bounds = DefaultDurationBuckets
		}
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Value returns the current value of the named counter, gauge or gauge
// func, and whether the name is registered.
func (r *Registry) Value(name string) (int64, bool) {
	r.mu.RLock()
	c, g, f := r.counters[name], r.gauges[name], r.gaugeFuncs[name]
	r.mu.RUnlock()
	switch {
	case c != nil:
		return c.Value(), true
	case g != nil:
		return g.Value(), true
	case f != nil:
		return f(), true
	}
	return 0, false
}

// Snapshot is a JSON-serializable copy of every instrument. Gauge funcs
// are evaluated and folded into Gauges.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every instrument. Counters and
// gauges are read atomically per instrument; the snapshot as a whole may
// interleave with concurrent updates.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.gaugeFuncs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, f := range r.gaugeFuncs {
		s.Gauges[name] = f()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (map keys are emitted in
// sorted order by encoding/json, so output is deterministic for fixed
// values).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// String renders the snapshot as JSON, which makes a Registry an
// expvar.Var: expvar.Publish("qmatch", registry) exposes every instrument
// under one /debug/vars key.
func (r *Registry) String() string {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

var _ expvar.Var = (*Registry)(nil)

// Publish registers the registry with the process-global expvar page under
// the given name. Unlike expvar.Publish it is idempotent: if the name is
// already taken (by this registry or anything else) it does nothing, so
// tests and multi-engine processes cannot panic on re-registration.
func (r *Registry) Publish(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, r)
}

// LabeledName builds an instrument name carrying a literal label block
// from alternating key/value pairs:
//
//	LabeledName("http_requests_total", "route", "match", "code", "200")
//	  => `http_requests_total{route="match",code="200"}`
//
// Backslashes, quotes and newlines in values are escaped per the
// Prometheus text format (`\\`, `\"`, `\n`) — a hostile label value cannot
// break out of its sample line or inject new samples into the exposition.
// With no pairs the base name is returned unchanged. This is the inverse
// convention of splitName: names built here expose correctly in
// WritePrometheus, grouped under the base family.
func LabeledName(base string, kv ...string) string {
	if len(kv) < 2 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		v := kv[i+1]
		for j := 0; j < len(v); j++ {
			switch v[j] {
			case '\\':
				b.WriteString(`\\`)
			case '"':
				b.WriteString(`\"`)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteByte(v[j])
			}
		}
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// splitName separates an instrument name into its base and an optional
// literal label block: "foo{a=\"b\"}" -> ("foo", `a="b"`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every instrument in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative _bucket/_sum/_count series with the
// standard le label. Families and samples are sorted by name (histogram
// buckets stay in ascending-bound order), so output is deterministic for
// fixed values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	type family struct {
		kind  string // "counter", "gauge", "histogram"
		lines []string
	}
	families := make(map[string]*family)
	add := func(base, kind string, lines ...string) {
		f := families[base]
		if f == nil {
			f = &family{kind: kind}
			families[base] = f
		}
		f.lines = append(f.lines, lines...)
	}

	// Single-sample families: lines sort cleanly by name.
	for name, v := range snap.Counters {
		base, _ := splitName(name)
		add(base, "counter", fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range snap.Gauges {
		base, _ := splitName(name)
		add(base, "gauge", fmt.Sprintf("%s %d", name, v))
	}
	for base := range families {
		sort.Strings(families[base].lines)
	}

	// Histogram blocks must keep ascending-le order; emit each block
	// whole, blocks ordered by full instrument name.
	histNames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := snap.Histograms[name]
		base, labels := splitName(name)
		block := make([]string, 0, len(h.Counts)+2)
		cum := int64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			lb := `le="` + le + `"`
			if labels != "" {
				lb = labels + "," + lb
			}
			block = append(block, fmt.Sprintf("%s_bucket{%s} %d", base, lb, cum))
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		block = append(block,
			fmt.Sprintf("%s_sum%s %s", base, suffix, formatFloat(h.Sum)),
			fmt.Sprintf("%s_count%s %d", base, suffix, cum))
		add(base, "histogram", block...)
	}

	bases := make([]string, 0, len(families))
	for base := range families {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	for _, base := range bases {
		f := families[base]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, f.kind); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}
