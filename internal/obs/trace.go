package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase names one stage of the match pipeline (paper Fig. 3): schema
// parsing, vocabulary interning into the similarity kernel, the QoM
// pair-table fill, and correspondence selection. The registry/corpus-search
// pipeline adds two stages of its own: artifact compilation (parse→intern
// folded into a reusable CompiledSchema) and the vocabulary-overlap
// prefilter that selects top-K candidates before any full QoM table runs.
//
// The request-correlation layer adds structural phases that exist only as
// parents in a hierarchical trace: "request" (one HTTP request end to end),
// "queue" (the wait for an admission slot), "match" (one engine match,
// parent of the pipeline phases) and "level" (one height level of a
// parallel pair-table fill, child of "pairtable"). The async job subsystem
// adds "job" (one submitted MatchAll job end to end) and "shard" (one
// dispatched attempt at a shard of the job's pair grid, child of "job" —
// a retried shard contributes one span per attempt, failed attempts marked
// partial).
type Phase string

const (
	PhaseParse     Phase = "parse"
	PhaseIntern    Phase = "intern"
	PhasePairTable Phase = "pairtable"
	PhaseSelect    Phase = "select"
	PhaseCompile   Phase = "compile"
	PhasePrefilter Phase = "prefilter"
	PhaseRematch   Phase = "rematch"
	PhaseRequest   Phase = "request"
	PhaseQueue     Phase = "queue"
	PhaseMatch     Phase = "match"
	PhaseLevel     Phase = "level"
	PhaseJob       Phase = "job"
	PhaseShard     Phase = "shard"
)

// Span is one finished phase of a match trace. ID and ParentID encode the
// span hierarchy: IDs are assigned in start order from 1, ParentID 0 marks
// a root span. Counts are phase-specific: the intern span counts interned
// vocabulary entries and scored kernel cells, the pair-table span counts
// tree nodes and filled table cells, the select span counts candidate
// pairs (Cells) and accepted correspondences (Selected), and a level span
// carries its 1-based fill level (1 = the leaf level). Partial marks a
// span closed before its phase completed — a cancelled MatchAll reports
// the work done so far instead of leaking an unfinished span.
type Span struct {
	Phase      Phase `json:"phase"`
	ID         int64 `json:"id,omitempty"`
	ParentID   int64 `json:"parentId,omitempty"`
	StartNs    int64 `json:"startNs"`
	DurationNs int64 `json:"durationNs"`
	SrcNodes   int   `json:"srcNodes,omitempty"`
	TgtNodes   int   `json:"tgtNodes,omitempty"`
	Cells      int64 `json:"cells,omitempty"`
	Workers    int   `json:"workers,omitempty"`
	Selected   int   `json:"selected,omitempty"`
	Level      int   `json:"level,omitempty"`
	Partial    bool  `json:"partial,omitempty"`
}

// Trace collects the phase spans of one match or one request. A nil *Trace
// is the disabled instrument: StartSpan returns nil and every span method
// no-ops, so instrumented code pays one nil-check and zero allocations when
// tracing is off. Span begin/end may happen on any goroutine.
//
// Spans form a hierarchy: StartChild opens a span under an explicit parent,
// StartSpan opens one under the trace's current default parent (SetParent),
// which instrumenting layers use to adopt the spans of layers below them —
// the engine parents the matcher's pipeline spans under its "match" span
// without the matcher knowing.
type Trace struct {
	mu       sync.Mutex
	id       string // correlation (trace) ID, "" when uncorrelated
	start    time.Time
	spans    []Span
	open     map[*ActiveSpan]struct{}
	finished bool
	nextID   int64
	parent   *ActiveSpan // default parent for StartSpan
	cell     *PhaseCell  // live current-phase mirror, may be nil
}

// NewTrace starts an empty trace; its clock starts now.
func NewTrace() *Trace {
	return &Trace{start: time.Now(), open: make(map[*ActiveSpan]struct{})}
}

// SetID attaches a correlation (trace) ID — typically the W3C trace-id of
// the request that triggered this work. No-op on a nil trace.
func (t *Trace) SetID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.id = id
	t.mu.Unlock()
}

// ID returns the correlation ID ("" on a nil or uncorrelated trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// SetPhaseCell mirrors every span start into the cell, giving an observer
// (the qmatchd in-flight request table) a lock-free view of the phase the
// trace is currently in. No-op on a nil trace.
func (t *Trace) SetPhaseCell(c *PhaseCell) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cell = c
	t.mu.Unlock()
}

// SetParent sets the default parent of subsequent StartSpan calls; nil
// restores root-level spans. The engine brackets a matcher run with it so
// the matcher's spans nest under the engine's "match" span. No-op on a nil
// trace.
func (t *Trace) SetParent(s *ActiveSpan) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.parent = s
	t.mu.Unlock()
}

// SinceStartNs returns the nanoseconds elapsed since the trace's clock
// started (0 on a nil trace) — the offset a later trace needs to graft
// this trace's spans onto its own timeline.
func (t *Trace) SinceStartNs() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.start).Nanoseconds()
}

// StartSpan opens a span for the given phase under the trace's current
// default parent. Returns nil (a no-op handle) on a nil or already-finished
// trace.
func (t *Trace) StartSpan(phase Phase) *ActiveSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	parent := t.parent
	t.mu.Unlock()
	return t.StartChild(parent, phase)
}

// StartChild opens a span for the given phase as a child of parent (nil
// parent opens a root span). Returns nil on a nil or finished trace.
func (t *Trace) StartChild(parent *ActiveSpan, phase Phase) *ActiveSpan {
	if t == nil {
		return nil
	}
	s := &ActiveSpan{t: t, begun: time.Now()}
	s.span.Phase = phase
	s.span.StartNs = s.begun.Sub(t.start).Nanoseconds()
	if parent != nil {
		s.span.ParentID = parent.span.ID
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return nil
	}
	t.nextID++
	s.span.ID = t.nextID
	t.open[s] = struct{}{}
	cell := t.cell
	t.mu.Unlock()
	cell.Set(phase)
	return s
}

// ActiveSpan is an open span. All methods are no-ops on a nil receiver
// and after End.
type ActiveSpan struct {
	t     *Trace
	begun time.Time
	span  Span
}

// ID returns the span's trace-local ID (0 on a nil span) for use as a
// graft point when stitching another trace's spans under this one.
func (s *ActiveSpan) ID() int64 {
	if s == nil {
		return 0
	}
	return s.span.ID
}

// Child opens a new span under this one. A nil receiver opens nothing and
// returns nil.
func (s *ActiveSpan) Child(phase Phase) *ActiveSpan {
	if s == nil {
		return nil
	}
	return s.t.StartChild(s, phase)
}

// SetNodes records the phase's input dimensions.
func (s *ActiveSpan) SetNodes(src, tgt int) {
	if s == nil {
		return
	}
	s.span.SrcNodes, s.span.TgtNodes = src, tgt
}

// SetCells records how many table/matrix cells the phase touched.
func (s *ActiveSpan) SetCells(n int64) {
	if s == nil {
		return
	}
	s.span.Cells = n
}

// SetWorkers records the phase's worker-pool parallelism.
func (s *ActiveSpan) SetWorkers(n int) {
	if s == nil {
		return
	}
	s.span.Workers = n
}

// SetSelected records how many correspondences a selection phase kept.
func (s *ActiveSpan) SetSelected(n int) {
	if s == nil {
		return
	}
	s.span.Selected = n
}

// SetLevel records the 1-based pair-table fill level of a level span.
func (s *ActiveSpan) SetLevel(n int) {
	if s == nil {
		return
	}
	s.span.Level = n
}

// MarkPartial flags the span as closed before its phase completed.
func (s *ActiveSpan) MarkPartial() {
	if s == nil {
		return
	}
	s.span.Partial = true
}

// End closes the span and appends it to the trace. Safe to call once; a
// second End (or an End racing Finish) is a no-op.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.t.closeSpan(s, time.Now())
}

// closeSpan finalizes s if it is still open.
func (t *Trace) closeSpan(s *ActiveSpan, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.open[s]; !ok {
		return
	}
	delete(t.open, s)
	s.span.DurationNs = now.Sub(s.begun).Nanoseconds()
	t.spans = append(t.spans, s.span)
}

// MatchTrace is the finished, serializable trace of one match or request:
// the correlation ID (when one was set), total wall time and the spans,
// ordered by start time. Span ID/ParentID links encode the hierarchy.
type MatchTrace struct {
	TraceID string `json:"traceId,omitempty"`
	TotalNs int64  `json:"totalNs"`
	Spans   []Span `json:"spans"`
}

// Finish closes the trace: any span still open is force-closed with
// Partial set (cancellation must not leak unfinished spans), spans are
// ordered by start time, and the total wall time is fixed. Returns nil on
// a nil trace; calling Finish twice returns the same result.
func (t *Trace) Finish() *MatchTrace {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.finished {
		for s := range t.open {
			delete(t.open, s)
			s.span.Partial = true
			s.span.DurationNs = now.Sub(s.begun).Nanoseconds()
			t.spans = append(t.spans, s.span)
		}
		sort.SliceStable(t.spans, func(i, j int) bool {
			return t.spans[i].StartNs < t.spans[j].StartNs
		})
		t.finished = true
	}
	mt := &MatchTrace{TraceID: t.id, TotalNs: now.Sub(t.start).Nanoseconds(), Spans: make([]Span, len(t.spans))}
	copy(mt.Spans, t.spans)
	return mt
}

// Graft appends child's spans to mt as descendants of the span with
// parentID (0 grafts them as roots), shifting their timeline by offsetNs
// and remapping their IDs past mt's current maximum so the combined
// hierarchy stays consistent. This is the trace-stitching primitive: a
// service grafts the engine's match trace under its request span, and a
// cluster coordinator will graft per-worker traces under its fan-out spans.
func (mt *MatchTrace) Graft(child *MatchTrace, parentID, offsetNs int64) {
	if mt == nil || child == nil || len(child.Spans) == 0 {
		return
	}
	var base int64
	for _, s := range mt.Spans {
		if s.ID > base {
			base = s.ID
		}
	}
	for _, s := range child.Spans {
		s.ID += base
		if s.ParentID != 0 {
			s.ParentID += base
		} else {
			s.ParentID = parentID
		}
		s.StartNs += offsetNs
		mt.Spans = append(mt.Spans, s)
	}
	if end := offsetNs + child.TotalNs; end > mt.TotalNs {
		mt.TotalNs = end
	}
	sort.SliceStable(mt.Spans, func(i, j int) bool {
		return mt.Spans[i].StartNs < mt.Spans[j].StartNs
	})
}

// WriteJSON streams the trace as a single JSON object.
func (mt *MatchTrace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(mt)
}

// depths resolves each span's depth in the hierarchy (roots at 0; spans
// with a dangling parent ID are treated as roots).
func (mt *MatchTrace) depths() map[int64]int {
	depth := make(map[int64]int, len(mt.Spans))
	parent := make(map[int64]int64, len(mt.Spans))
	for _, s := range mt.Spans {
		parent[s.ID] = s.ParentID
	}
	var resolve func(id int64, hops int) int
	resolve = func(id int64, hops int) int {
		if d, ok := depth[id]; ok {
			return d
		}
		p := parent[id]
		d := 0
		// hops bounds pathological parent cycles in hand-built traces.
		if p != 0 && p != id && hops < len(mt.Spans) {
			if _, known := parent[p]; known {
				d = resolve(p, hops+1) + 1
			}
		}
		depth[id] = d
		return d
	}
	for _, s := range mt.Spans {
		resolve(s.ID, 0)
	}
	return depth
}

// Format renders the human-readable phase breakdown the qmatch -trace flag
// prints: one line per span, indented by hierarchy depth, with duration,
// share of total, and the phase-specific counts.
func (mt *MatchTrace) Format() string {
	var b strings.Builder
	total := time.Duration(mt.TotalNs)
	fmt.Fprintf(&b, "phase breakdown (total %s):\n", total.Round(time.Microsecond))
	depth := mt.depths()
	for _, s := range mt.Spans {
		d := time.Duration(s.DurationNs)
		pct := 0.0
		if mt.TotalNs > 0 {
			pct = 100 * float64(s.DurationNs) / float64(mt.TotalNs)
		}
		indent := strings.Repeat("  ", depth[s.ID])
		fmt.Fprintf(&b, "  %-*s %12s %6.1f%%", 10+len(indent), indent+string(s.Phase), d.Round(time.Microsecond), pct)
		if s.SrcNodes > 0 || s.TgtNodes > 0 {
			fmt.Fprintf(&b, "  src=%d tgt=%d", s.SrcNodes, s.TgtNodes)
		}
		if s.Cells > 0 {
			fmt.Fprintf(&b, " cells=%d", s.Cells)
		}
		if s.Workers > 0 {
			fmt.Fprintf(&b, " workers=%d", s.Workers)
		}
		if s.Level > 0 {
			fmt.Fprintf(&b, " level=%d", s.Level)
		}
		if s.Phase == PhaseSelect {
			fmt.Fprintf(&b, " selected=%d", s.Selected)
		}
		if s.Partial {
			b.WriteString(" (partial)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
