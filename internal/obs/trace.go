package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase names one stage of the match pipeline (paper Fig. 3): schema
// parsing, vocabulary interning into the similarity kernel, the QoM
// pair-table fill, and correspondence selection. The registry/corpus-search
// pipeline adds two stages of its own: artifact compilation (parse→intern
// folded into a reusable CompiledSchema) and the vocabulary-overlap
// prefilter that selects top-K candidates before any full QoM table runs.
type Phase string

const (
	PhaseParse     Phase = "parse"
	PhaseIntern    Phase = "intern"
	PhasePairTable Phase = "pairtable"
	PhaseSelect    Phase = "select"
	PhaseCompile   Phase = "compile"
	PhasePrefilter Phase = "prefilter"
	PhaseRematch   Phase = "rematch"
)

// Span is one finished phase of a match trace. Counts are phase-specific:
// the intern span counts interned vocabulary entries and scored kernel
// cells, the pair-table span counts tree nodes and filled table cells, the
// select span counts candidate pairs (Cells) and accepted correspondences
// (Selected). Partial marks a span closed before its phase completed —
// a cancelled MatchAll reports the work done so far instead of leaking an
// unfinished span.
type Span struct {
	Phase      Phase `json:"phase"`
	StartNs    int64 `json:"startNs"`
	DurationNs int64 `json:"durationNs"`
	SrcNodes   int   `json:"srcNodes,omitempty"`
	TgtNodes   int   `json:"tgtNodes,omitempty"`
	Cells      int64 `json:"cells,omitempty"`
	Workers    int   `json:"workers,omitempty"`
	Selected   int   `json:"selected,omitempty"`
	Partial    bool  `json:"partial,omitempty"`
}

// Trace collects the phase spans of one match. A nil *Trace is the
// disabled instrument: StartSpan returns nil and every span method no-ops,
// so instrumented code pays one nil-check and zero allocations when
// tracing is off. Span begin/end may happen on any goroutine.
type Trace struct {
	mu       sync.Mutex
	start    time.Time
	spans    []Span
	open     map[*ActiveSpan]struct{}
	finished bool
}

// NewTrace starts an empty trace; its clock starts now.
func NewTrace() *Trace {
	return &Trace{start: time.Now(), open: make(map[*ActiveSpan]struct{})}
}

// StartSpan opens a span for the given phase. Returns nil (a no-op
// handle) on a nil or already-finished trace.
func (t *Trace) StartSpan(phase Phase) *ActiveSpan {
	if t == nil {
		return nil
	}
	s := &ActiveSpan{t: t, begun: time.Now()}
	s.span.Phase = phase
	s.span.StartNs = s.begun.Sub(t.start).Nanoseconds()
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return nil
	}
	t.open[s] = struct{}{}
	t.mu.Unlock()
	return s
}

// ActiveSpan is an open span. All methods are no-ops on a nil receiver
// and after End.
type ActiveSpan struct {
	t     *Trace
	begun time.Time
	span  Span
}

// SetNodes records the phase's input dimensions.
func (s *ActiveSpan) SetNodes(src, tgt int) {
	if s == nil {
		return
	}
	s.span.SrcNodes, s.span.TgtNodes = src, tgt
}

// SetCells records how many table/matrix cells the phase touched.
func (s *ActiveSpan) SetCells(n int64) {
	if s == nil {
		return
	}
	s.span.Cells = n
}

// SetWorkers records the phase's worker-pool parallelism.
func (s *ActiveSpan) SetWorkers(n int) {
	if s == nil {
		return
	}
	s.span.Workers = n
}

// SetSelected records how many correspondences a selection phase kept.
func (s *ActiveSpan) SetSelected(n int) {
	if s == nil {
		return
	}
	s.span.Selected = n
}

// MarkPartial flags the span as closed before its phase completed.
func (s *ActiveSpan) MarkPartial() {
	if s == nil {
		return
	}
	s.span.Partial = true
}

// End closes the span and appends it to the trace. Safe to call once; a
// second End (or an End racing Finish) is a no-op.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.t.closeSpan(s, time.Now())
}

// closeSpan finalizes s if it is still open.
func (t *Trace) closeSpan(s *ActiveSpan, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.open[s]; !ok {
		return
	}
	delete(t.open, s)
	s.span.DurationNs = now.Sub(s.begun).Nanoseconds()
	t.spans = append(t.spans, s.span)
}

// MatchTrace is the finished, serializable trace of one match: total wall
// time and the phase spans, ordered by start time.
type MatchTrace struct {
	TotalNs int64  `json:"totalNs"`
	Spans   []Span `json:"spans"`
}

// Finish closes the trace: any span still open is force-closed with
// Partial set (cancellation must not leak unfinished spans), spans are
// ordered by start time, and the total wall time is fixed. Returns nil on
// a nil trace; calling Finish twice returns the same result.
func (t *Trace) Finish() *MatchTrace {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.finished {
		for s := range t.open {
			delete(t.open, s)
			s.span.Partial = true
			s.span.DurationNs = now.Sub(s.begun).Nanoseconds()
			t.spans = append(t.spans, s.span)
		}
		sort.SliceStable(t.spans, func(i, j int) bool {
			return t.spans[i].StartNs < t.spans[j].StartNs
		})
		t.finished = true
	}
	mt := &MatchTrace{TotalNs: now.Sub(t.start).Nanoseconds(), Spans: make([]Span, len(t.spans))}
	copy(mt.Spans, t.spans)
	return mt
}

// WriteJSON streams the trace as a single JSON object.
func (mt *MatchTrace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(mt)
}

// Format renders the human-readable phase breakdown the qmatch -trace flag
// prints: one line per span with duration, share of total, and the
// phase-specific counts.
func (mt *MatchTrace) Format() string {
	var b strings.Builder
	total := time.Duration(mt.TotalNs)
	fmt.Fprintf(&b, "phase breakdown (total %s):\n", total.Round(time.Microsecond))
	for _, s := range mt.Spans {
		d := time.Duration(s.DurationNs)
		pct := 0.0
		if mt.TotalNs > 0 {
			pct = 100 * float64(s.DurationNs) / float64(mt.TotalNs)
		}
		fmt.Fprintf(&b, "  %-10s %12s %6.1f%%", s.Phase, d.Round(time.Microsecond), pct)
		if s.SrcNodes > 0 || s.TgtNodes > 0 {
			fmt.Fprintf(&b, "  src=%d tgt=%d", s.SrcNodes, s.TgtNodes)
		}
		if s.Cells > 0 {
			fmt.Fprintf(&b, " cells=%d", s.Cells)
		}
		if s.Workers > 0 {
			fmt.Fprintf(&b, " workers=%d", s.Workers)
		}
		if s.Phase == PhaseSelect {
			fmt.Fprintf(&b, " selected=%d", s.Selected)
		}
		if s.Partial {
			b.WriteString(" (partial)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
