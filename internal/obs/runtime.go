package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Runtime introspection gauges for the debug plane: process vitals
// registered as pull-style gauge funcs, so they cost nothing until the
// registry is scraped.

// memStatsCache rate-limits runtime.ReadMemStats: one read serves every
// heap/GC gauge of a scrape, and scrapes within a second share it.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (c *memStatsCache) get() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.at) > time.Second {
		runtime.ReadMemStats(&c.stat)
		c.at = now
	}
	return c.stat
}

// RegisterRuntimeGauges registers process-vital gauges under the given
// metric-name prefix (e.g. "qmatchd"): goroutine count, heap bytes in use,
// cumulative GC pause nanoseconds, completed GC cycles, and process uptime
// in seconds. It also registers the conventional qmatch_build_info gauge
// (module-level, so the name is stable across binaries) — constant 1, with
// the Go version and main-module version (and VCS revision when the build
// recorded one) as labels — so a scrape identifies exactly what binary is
// running.
func RegisterRuntimeGauges(r *Registry, prefix string) {
	start := time.Now()
	cache := &memStatsCache{}
	r.GaugeFunc(prefix+"_goroutines", func() int64 {
		return int64(runtime.NumGoroutine())
	})
	r.GaugeFunc(prefix+"_heap_alloc_bytes", func() int64 {
		return int64(cache.get().HeapAlloc)
	})
	r.GaugeFunc(prefix+"_gc_pause_ns_total", func() int64 {
		return int64(cache.get().PauseTotalNs)
	})
	r.GaugeFunc(prefix+"_gc_cycles_total", func() int64 {
		return int64(cache.get().NumGC)
	})
	r.GaugeFunc(prefix+"_uptime_seconds", func() int64 {
		return int64(time.Since(start).Seconds())
	})

	goVersion, modVersion, revision := runtime.Version(), "(devel)", ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			modVersion = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
	}
	kv := []string{"go_version", goVersion, "version", modVersion}
	if revision != "" {
		kv = append(kv, "revision", revision)
	}
	r.GaugeFunc(LabeledName("qmatch_build_info", kv...), func() int64 { return 1 })
}
