package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	cases := []struct {
		name    string
		header  string
		ok      bool
		traceID string
		spanID  string
	}{
		{"valid", valid, true, "0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331"},
		{"future version extra fields", "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", true,
			"0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331"},
		{"empty", "", false, "", ""},
		{"truncated", valid[:40], false, "", ""},
		{"version ff", "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", false, "", ""},
		{"zero trace id", "00-00000000000000000000000000000000-b7ad6b7169203331-01", false, "", ""},
		{"zero span id", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", false, "", ""},
		{"uppercase hex", "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", false, "", ""},
		{"bad separators", "00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01", false, "", ""},
		{"non-hex trace id", "00-0af7651916cd43dd8448eb211c80319z-b7ad6b7169203331-01", false, "", ""},
	}
	for _, tc := range cases {
		traceID, spanID, ok := ParseTraceparent(tc.header)
		if ok != tc.ok || traceID != tc.traceID || spanID != tc.spanID {
			t.Errorf("%s: ParseTraceparent(%q) = (%q, %q, %v), want (%q, %q, %v)",
				tc.name, tc.header, traceID, spanID, ok, tc.traceID, tc.spanID, tc.ok)
		}
	}
}

func TestFormatTraceparentRoundTrips(t *testing.T) {
	traceID, spanID := NewTraceID(), NewSpanID()
	if len(traceID) != 32 || !isHex(traceID) {
		t.Fatalf("NewTraceID() = %q, want 32 hex digits", traceID)
	}
	if len(spanID) != 16 || !isHex(spanID) {
		t.Fatalf("NewSpanID() = %q, want 16 hex digits", spanID)
	}
	h := FormatTraceparent(traceID, spanID)
	gotTrace, gotSpan, ok := ParseTraceparent(h)
	if !ok || gotTrace != traceID || gotSpan != spanID {
		t.Fatalf("round trip of %q = (%q, %q, %v)", h, gotTrace, gotSpan, ok)
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if traceID, requestID := IDsFromContext(ctx); traceID != "" || requestID != "" {
		t.Fatalf("empty context carries IDs (%q, %q)", traceID, requestID)
	}
	if TraceFromContext(ctx) != nil || PhaseCellFromContext(ctx) != nil || TraceSinkFromContext(ctx) != nil {
		t.Fatal("empty context carries trace plumbing")
	}

	tr := NewTrace()
	cell := &PhaseCell{}
	var sunk *MatchTrace
	ctx = ContextWithIDs(ctx, "aaaa", "bbbb")
	ctx = ContextWithTrace(ctx, tr)
	ctx = ContextWithPhaseCell(ctx, cell)
	ctx = ContextWithTraceSink(ctx, func(mt *MatchTrace) { sunk = mt })

	if traceID, requestID := IDsFromContext(ctx); traceID != "aaaa" || requestID != "bbbb" {
		t.Fatalf("IDs = (%q, %q)", traceID, requestID)
	}
	if TraceFromContext(ctx) != tr {
		t.Fatal("trace did not round-trip")
	}
	if PhaseCellFromContext(ctx) != cell {
		t.Fatal("phase cell did not round-trip")
	}
	want := &MatchTrace{}
	TraceSinkFromContext(ctx)(want)
	if sunk != want {
		t.Fatal("trace sink did not round-trip")
	}
}

func TestPhaseCell(t *testing.T) {
	var nilCell *PhaseCell
	nilCell.Set(PhaseIntern) // must not panic
	if p := nilCell.Get(); p != "" {
		t.Fatalf("nil cell Get() = %q", p)
	}
	cell := &PhaseCell{}
	if p := cell.Get(); p != "" {
		t.Fatalf("fresh cell Get() = %q", p)
	}
	cell.Set(PhasePairTable)
	if p := cell.Get(); p != PhasePairTable {
		t.Fatalf("Get() = %q, want pairtable", p)
	}

	// A trace with the cell installed mirrors every span start into it.
	tr := NewTrace()
	tr.SetPhaseCell(cell)
	sp := tr.StartSpan(PhaseSelect)
	if p := cell.Get(); p != PhaseSelect {
		t.Fatalf("cell after StartSpan = %q, want select", p)
	}
	sp.End()
}

// The correlation handler injects trace_id/request_id from the log call's
// context and passes uncorrelated records through untouched.
func TestCorrelationHandler(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(NewCorrelationHandler(slog.NewJSONHandler(&buf, nil)))

	ctx := ContextWithIDs(context.Background(), "0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331")
	logger.LogAttrs(ctx, slog.LevelInfo, "correlated")
	logger.LogAttrs(context.Background(), slog.LevelInfo, "background")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines:\n%s", len(lines), buf.String())
	}
	var first, second map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first["trace_id"] != "0af7651916cd43dd8448eb211c80319c" || first["request_id"] != "b7ad6b7169203331" {
		t.Fatalf("correlated line missing IDs: %v", first)
	}
	if _, ok := second["trace_id"]; ok {
		t.Fatalf("background line gained a trace_id: %v", second)
	}

	// WithAttrs/WithGroup must preserve the wrapper.
	buf.Reset()
	logger.With("k", "v").WithGroup("g").LogAttrs(ctx, slog.LevelInfo, "nested", slog.String("a", "b"))
	if s := buf.String(); !strings.Contains(s, `"trace_id"`) || !strings.Contains(s, `"k":"v"`) {
		t.Fatalf("derived logger lost correlation or attrs:\n%s", s)
	}
}
