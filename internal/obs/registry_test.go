package obs

import (
	"encoding/json"
	"expvar"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Add(1)
		h.Observe(1)
	}); allocs != 0 {
		t.Fatalf("nil instrument calls allocated %.1f/op, want 0", allocs)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("h", []float64{1, 2}) != r.Histogram("h", nil) {
		t.Fatal("Histogram not idempotent")
	}
	r.Counter("a").Add(7)
	r.Gauge("b").Set(-2)
	r.GaugeFunc("f", func() int64 { return 42 })
	for name, want := range map[string]int64{"a": 7, "b": -2, "f": 42} {
		if got, ok := r.Value(name); !ok || got != want {
			t.Fatalf("Value(%q) = %d, %v; want %d, true", name, got, ok, want)
		}
	}
	if _, ok := r.Value("missing"); ok {
		t.Fatal("Value of unregistered name reported ok")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []int64{2, 1, 1, 1} // <=0.01: {0.005, 0.01}; <=0.1: {0.05}; <=1: {0.5}; +Inf: {5}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 || math.Abs(s.Sum-5.565) > 1e-9 {
		t.Fatalf("count/sum = %d/%v", s.Count, s.Sum)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines — the
// shape of the pair-table worker pool feeding shared counters — and checks
// the totals are exact. Run with -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Mix hot-path handle reuse with by-name lookups and
				// lazy creation from racing goroutines.
				r.Counter("shared").Inc()
				r.Counter("own" + string(rune('a'+w))).Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", nil).Observe(float64(i%10) / 1000)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got, _ := r.Value("shared"); got != workers*perWorker {
		t.Fatalf("shared counter = %d, want %d", got, workers*perWorker)
	}
	if got, _ := r.Value("g"); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	if s := r.Histogram("h", nil).snapshot(); s.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("qm_matches_total").Add(3)
	r.Counter(`qm_phase_ns_total{phase="pairtable"}`).Add(1200)
	r.Counter(`qm_phase_ns_total{phase="select"}`).Add(34)
	r.Gauge("qm_inflight").Set(2)
	r.Histogram("qm_dur_seconds", []float64{0.1, 1}).Observe(0.05)
	r.Histogram("qm_dur_seconds", nil).Observe(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# TYPE qm_dur_seconds histogram
qm_dur_seconds_bucket{le="0.1"} 1
qm_dur_seconds_bucket{le="1"} 1
qm_dur_seconds_bucket{le="+Inf"} 2
qm_dur_seconds_sum 2.05
qm_dur_seconds_count 2
# TYPE qm_inflight gauge
qm_inflight 2
# TYPE qm_matches_total counter
qm_matches_total 3
# TYPE qm_phase_ns_total counter
qm_phase_ns_total{phase="pairtable"} 1200
qm_phase_ns_total{phase="select"} 34
`
	if got != want {
		t.Fatalf("prometheus text:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotJSONAndExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	r.GaugeFunc("gf", func() int64 { return 9 })
	var snap Snapshot
	if err := json.Unmarshal([]byte(r.String()), &snap); err != nil {
		t.Fatalf("String() is not JSON: %v", err)
	}
	if snap.Counters["c"] != 1 || snap.Gauges["gf"] != 9 {
		t.Fatalf("snapshot = %+v", snap)
	}

	r.Publish("obs_test_registry")
	if expvar.Get("obs_test_registry") == nil {
		t.Fatal("Publish did not register")
	}
	r.Publish("obs_test_registry") // must not panic on re-registration
}

func TestLabeledName(t *testing.T) {
	cases := []struct {
		base string
		kv   []string
		want string
	}{
		{"m_total", nil, "m_total"},
		{"m_total", []string{"route"}, "m_total"}, // dangling key dropped
		{"m_total", []string{"route", "match"}, `m_total{route="match"}`},
		{"m_total", []string{"route", "match", "code", "200"}, `m_total{route="match",code="200"}`},
		{"m_total", []string{"q", `say "hi"`}, `m_total{q="say \"hi\""}`},
		{"m_total", []string{"p", `a\b`}, `m_total{p="a\\b"}`},
		{"m_total", []string{"p", "evil\nvalue"}, `m_total{p="evil\nvalue"}`},
		{"m_total", []string{"p", "\\\"\n"}, `m_total{p="\\\"\n"}`},
	}
	for _, tc := range cases {
		if got := LabeledName(tc.base, tc.kv...); got != tc.want {
			t.Errorf("LabeledName(%q, %q) = %q, want %q", tc.base, tc.kv, got, tc.want)
		}
	}
}

// Names built by LabeledName round-trip through the exposition path:
// splitName recovers the base so WritePrometheus groups the series under
// one family, and histogram labels merge with the le bucket label.
func TestLabeledNamePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(LabeledName("rt_total", "route", "a")).Add(1)
	r.Counter(LabeledName("rt_total", "route", "b", "code", "200")).Add(2)
	r.Histogram(LabeledName("rt_seconds", "route", "a"), []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# TYPE rt_seconds histogram
rt_seconds_bucket{route="a",le="1"} 1
rt_seconds_bucket{route="a",le="+Inf"} 1
rt_seconds_sum{route="a"} 0.5
rt_seconds_count{route="a"} 1
# TYPE rt_total counter
rt_total{route="a"} 1
rt_total{route="b",code="200"} 2
`
	if got != want {
		t.Fatalf("prometheus text:\n%s\nwant:\n%s", got, want)
	}
}

// A hostile label value — backslash, quote and a raw newline — must stay
// on a single exposition line: the newline is escaped inside the quoted
// label value, so scrapers never see a broken sample.
func TestWritePrometheusHostileLabelValue(t *testing.T) {
	r := NewRegistry()
	r.Counter(LabeledName("evil_total", "q", "back\\slash \"quote\"\nnewline")).Add(7)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "# TYPE evil_total counter\n" +
		`evil_total{q="back\\slash \"quote\"\nnewline"} 7` + "\n"
	if got != want {
		t.Fatalf("hostile label exposition:\n%q\nwant:\n%q", got, want)
	}
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("hostile value split the sample across %d lines", len(lines))
	}
}

// Quantile interpolates linearly inside the owning bucket (the
// histogram_quantile estimate), clamps the +Inf bucket to the highest
// finite bound, and reports 0 for empty histograms. snapshot() derives
// the p50/p90/p99 summary from the same estimator.
func TestHistogramQuantile(t *testing.T) {
	approx := func(got, want float64) bool {
		d := got - want
		return d < 1e-9 && d > -1e-9
	}

	s := HistogramSnapshot{
		Bounds: []float64{1, 2, 4},
		Counts: []int64{10, 60, 20, 10}, // last entry is the +Inf bucket
		Count:  100,
	}
	// rank 50 lands 40/60 into the (1,2] bucket.
	if got := s.Quantile(0.50); !approx(got, 1+40.0/60.0) {
		t.Fatalf("p50 = %v, want %v", got, 1+40.0/60.0)
	}
	// rank 90 exhausts the (2,4] bucket exactly.
	if got := s.Quantile(0.90); !approx(got, 4) {
		t.Fatalf("p90 = %v, want 4", got)
	}
	// rank 99 lands in the +Inf bucket: clamp to the last finite bound.
	if got := s.Quantile(0.99); !approx(got, 4) {
		t.Fatalf("p99 = %v, want 4 (clamped)", got)
	}
	// Out-of-range q clamps instead of panicking.
	if got := s.Quantile(-1); !approx(got, s.Quantile(0)) {
		t.Fatalf("Quantile(-1) = %v", got)
	}
	if got := s.Quantile(2); !approx(got, s.Quantile(1)) {
		t.Fatalf("Quantile(2) = %v", got)
	}

	// Midpoint interpolation: all mass in one bucket puts p50 at its
	// middle.
	mid := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{0, 100, 0}, Count: 100}
	if got := mid.Quantile(0.50); !approx(got, 1.5) {
		t.Fatalf("single-bucket p50 = %v, want 1.5", got)
	}

	// Empty histogram: Quantile is 0 and snapshot omits Percentiles.
	empty := HistogramSnapshot{Bounds: []float64{1}, Counts: []int64{0, 0}}
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}

	// Live histogram: snapshot carries the percentile summary.
	r := NewRegistry()
	h := r.Histogram("q_seconds", []float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 90; i++ {
		h.Observe(1.5)
	}
	snap := h.snapshot()
	if snap.Percentiles == nil {
		t.Fatal("snapshot of a non-empty histogram omitted Percentiles")
	}
	for _, k := range []string{"p50", "p90", "p99"} {
		if _, ok := snap.Percentiles[k]; !ok {
			t.Fatalf("Percentiles missing %s: %v", k, snap.Percentiles)
		}
	}
	if p50 := snap.Percentiles["p50"]; p50 <= 1 || p50 > 2 {
		t.Fatalf("p50 = %v, want inside (1,2]", p50)
	}
	fresh := r.Histogram("fresh_seconds", []float64{1})
	if snap := fresh.snapshot(); snap.Percentiles != nil {
		t.Fatalf("empty histogram snapshot has Percentiles: %v", snap.Percentiles)
	}
}
