package obs

import (
	"encoding/json"
	"io"
)

// Chrome trace-event export: MatchTrace rendered in the JSON-array flavor
// of the Trace Event Format, loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing. Every span becomes one complete ("X") event;
// parent/child nesting is conveyed by time containment on the track, which
// holds because child spans start after and end before their parents.

// traceEvent is one entry of the Trace Event Format. Ts and Dur are
// microseconds (float); Ph "X" is a complete event, "M" metadata.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceEvents converts the finished trace into its event list: one
// metadata pair naming the process and track, then the spans in start
// order. Deterministic for fixed span values.
func (mt *MatchTrace) traceEvents() []traceEvent {
	procName := "qmatch"
	if mt.TraceID != "" {
		procName = "qmatch trace " + mt.TraceID
	}
	events := make([]traceEvent, 0, len(mt.Spans)+2)
	events = append(events,
		traceEvent{Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
			Args: map[string]any{"name": procName}},
		traceEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: 1,
			Args: map[string]any{"name": "match pipeline"}},
	)
	for _, s := range mt.Spans {
		args := map[string]any{"id": s.ID}
		if s.ParentID != 0 {
			args["parentId"] = s.ParentID
		}
		if s.SrcNodes > 0 {
			args["srcNodes"] = s.SrcNodes
		}
		if s.TgtNodes > 0 {
			args["tgtNodes"] = s.TgtNodes
		}
		if s.Cells > 0 {
			args["cells"] = s.Cells
		}
		if s.Workers > 0 {
			args["workers"] = s.Workers
		}
		if s.Selected > 0 {
			args["selected"] = s.Selected
		}
		if s.Level > 0 {
			args["level"] = s.Level
		}
		if s.Partial {
			args["partial"] = true
		}
		events = append(events, traceEvent{
			Name: string(s.Phase),
			Ph:   "X",
			Ts:   float64(s.StartNs) / 1e3,
			Dur:  float64(s.DurationNs) / 1e3,
			Pid:  1,
			Tid:  1,
			Args: args,
		})
	}
	return events
}

// WriteTraceEvents writes the trace in the Chrome trace-event JSON array
// format. The output loads directly in Perfetto or chrome://tracing; span
// counts ride along as event args, and the span hierarchy appears as
// nested slices.
func (mt *MatchTrace) WriteTraceEvents(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(mt.traceEvents())
}
