package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// deterministicTrace is the hand-built two-phase match trace the golden
// test pins: a "match" root over intern and pairtable (with one level
// child) and a partial select, with fixed nanosecond timestamps.
func deterministicTrace() *MatchTrace {
	return &MatchTrace{
		TraceID: "0af7651916cd43dd8448eb211c80319c",
		TotalNs: 5_000_000,
		Spans: []Span{
			{Phase: PhaseMatch, ID: 1, StartNs: 0, DurationNs: 5_000_000, SrcNodes: 10, TgtNodes: 9},
			{Phase: PhaseIntern, ID: 2, ParentID: 1, StartNs: 100_000, DurationNs: 1_900_000,
				SrcNodes: 10, TgtNodes: 9, Cells: 162, Workers: 1},
			{Phase: PhasePairTable, ID: 3, ParentID: 1, StartNs: 2_000_000, DurationNs: 2_500_000,
				SrcNodes: 10, TgtNodes: 9, Cells: 90, Workers: 2},
			{Phase: PhaseLevel, ID: 4, ParentID: 3, StartNs: 2_050_000, DurationNs: 1_200_000,
				Level: 1, Workers: 2},
			{Phase: PhaseSelect, ID: 5, ParentID: 1, StartNs: 4_600_000, DurationNs: 350_000,
				Cells: 90, Selected: 3, Partial: true},
		},
	}
}

// TestTraceEventsGolden pins the Chrome trace-event export byte-for-byte:
// map keys serialize sorted, timestamps are fixed, so the output is fully
// deterministic. Regenerate deliberately with
// `go test -run TraceEventsGolden -update ./internal/obs`.
func TestTraceEventsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := deterministicTrace().WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "traceevents_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace-event export drifted from %s (run with -update if intentional)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// The exported JSON must be structurally loadable by Perfetto: a JSON
// array whose entries carry the required Trace Event Format fields, with
// complete ("X") events for every span in microseconds and metadata ("M")
// events naming process and track.
func TestTraceEventsStructure(t *testing.T) {
	var buf bytes.Buffer
	mt := deterministicTrace()
	if err := mt.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not a JSON array: %v", err)
	}
	var meta, complete int
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		if _, ok := ev["name"].(string); !ok {
			t.Fatalf("event missing name: %v", ev)
		}
		switch ph {
		case "M":
			meta++
		case "X":
			complete++
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("complete event missing ts: %v", ev)
			}
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
		default:
			t.Fatalf("unexpected phase type %q: %v", ph, ev)
		}
	}
	if meta != 2 || complete != len(mt.Spans) {
		t.Fatalf("got %d metadata + %d complete events, want 2 + %d", meta, complete, len(mt.Spans))
	}
	// Spot-check the unit conversion on the intern span (after the two
	// metadata events and the match root): ns -> µs.
	if ts := events[3]["ts"].(float64); ts != 100 {
		t.Fatalf("intern span ts = %v µs, want 100", ts)
	}
}

// Fuzz-style validity: whatever span values a trace carries — zero
// durations, negative starts from clock skew, huge counts, empty traces,
// missing IDs, hostile phase names — the export must be valid JSON that
// round-trips through the Trace Event schema.
func TestTraceEventsAlwaysValidJSON(t *testing.T) {
	// Deterministic pseudo-random generator (no seed-time dependence).
	state := uint64(0x9e3779b97f4a7c15)
	next := func() int64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int64(state)
	}
	phases := []Phase{PhaseParse, PhaseIntern, PhasePairTable, PhaseSelect,
		PhaseMatch, PhaseRequest, PhaseQueue, PhaseLevel, Phase(`hostile"phase<>&`), Phase("")}
	for round := 0; round < 200; round++ {
		mt := &MatchTrace{TotalNs: next() % 1_000_000_000_000}
		if round%3 == 0 {
			mt.TraceID = "deadbeefdeadbeefdeadbeefdeadbeef"
		}
		nspans := int(uint64(next()) % 12)
		for i := 0; i < nspans; i++ {
			mt.Spans = append(mt.Spans, Span{
				Phase:      phases[uint64(next())%uint64(len(phases))],
				ID:         next() % 16,
				ParentID:   next() % 16,
				StartNs:    next() % 1_000_000_000_000,
				DurationNs: next() % 1_000_000_000_000,
				SrcNodes:   int(next() % 1_000_000),
				TgtNodes:   int(next() % 1_000_000),
				Cells:      next(),
				Workers:    int(next() % 64),
				Selected:   int(next() % 1_000_000),
				Level:      int(next() % 64),
				Partial:    next()%2 == 0,
			})
		}
		var buf bytes.Buffer
		if err := mt.WriteTraceEvents(&buf); err != nil {
			t.Fatalf("round %d: WriteTraceEvents: %v", round, err)
		}
		var events []map[string]any
		if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
			t.Fatalf("round %d: export is not valid JSON: %v\n%s", round, err, buf.String())
		}
		if len(events) != len(mt.Spans)+2 {
			t.Fatalf("round %d: %d events for %d spans", round, len(events), len(mt.Spans))
		}
	}
}
