package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNilTraceIsFree(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan(PhasePairTable)
	sp.SetNodes(1, 2)
	sp.SetCells(3)
	sp.SetWorkers(4)
	sp.SetSelected(5)
	sp.MarkPartial()
	sp.End()
	if mt := tr.Finish(); mt != nil {
		t.Fatal("nil trace finished non-nil")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		s := tr.StartSpan(PhaseIntern)
		s.SetCells(1)
		s.End()
	}); allocs != 0 {
		t.Fatalf("disabled trace path allocated %.1f/op, want 0", allocs)
	}
}

func TestTraceSpansOrderedAndCounted(t *testing.T) {
	tr := NewTrace()
	a := tr.StartSpan(PhaseIntern)
	a.SetNodes(10, 9)
	a.SetCells(90)
	a.End()
	b := tr.StartSpan(PhasePairTable)
	b.SetWorkers(4)
	b.End()
	c := tr.StartSpan(PhaseSelect)
	c.SetSelected(7)
	c.End()
	mt := tr.Finish()
	if len(mt.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(mt.Spans))
	}
	phases := []Phase{PhaseIntern, PhasePairTable, PhaseSelect}
	for i, s := range mt.Spans {
		if s.Phase != phases[i] {
			t.Fatalf("span %d phase = %s, want %s", i, s.Phase, phases[i])
		}
		if s.StartNs < 0 || s.DurationNs < 0 {
			t.Fatalf("span %d has negative timing: %+v", i, s)
		}
		if s.Partial {
			t.Fatalf("span %d marked partial on the clean path", i)
		}
	}
	if mt.Spans[0].SrcNodes != 10 || mt.Spans[0].Cells != 90 ||
		mt.Spans[1].Workers != 4 || mt.Spans[2].Selected != 7 {
		t.Fatalf("span counts lost: %+v", mt.Spans)
	}
	if mt.TotalNs < mt.Spans[2].StartNs {
		t.Fatal("total shorter than last span start")
	}
}

// Finish must close any span still open (the cancelled-MatchAll path) and
// mark it partial; double End and End-after-Finish must be no-ops.
func TestFinishClosesOpenSpansPartial(t *testing.T) {
	tr := NewTrace()
	done := tr.StartSpan(PhaseIntern)
	done.End()
	leaked := tr.StartSpan(PhasePairTable)
	leaked.SetCells(123)
	mt := tr.Finish()
	if len(mt.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(mt.Spans))
	}
	var pt *Span
	for i := range mt.Spans {
		if mt.Spans[i].Phase == PhasePairTable {
			pt = &mt.Spans[i]
		}
	}
	if pt == nil || !pt.Partial || pt.Cells != 123 {
		t.Fatalf("open span not force-closed partial with counts: %+v", mt.Spans)
	}
	leaked.End() // after Finish: no-op, must not duplicate
	done.End()   // double End: no-op
	if mt2 := tr.Finish(); len(mt2.Spans) != 2 {
		t.Fatalf("second Finish changed spans: %d", len(mt2.Spans))
	}
	if sp := tr.StartSpan(PhaseSelect); sp != nil {
		t.Fatal("StartSpan after Finish returned a live span")
	}
}

// Spans begin and end on many goroutines at once (treeParallel's worker
// pool); run with -race.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				sp := tr.StartSpan(PhasePairTable)
				sp.SetCells(int64(j))
				sp.End()
			}
		}()
	}
	wg.Wait()
	mt := tr.Finish()
	if len(mt.Spans) != 16*200 {
		t.Fatalf("got %d spans, want %d", len(mt.Spans), 16*200)
	}
}

func TestMatchTraceFormatAndJSON(t *testing.T) {
	tr := NewTrace()
	sp := tr.StartSpan(PhasePairTable)
	sp.SetNodes(10, 9)
	sp.SetCells(90)
	sp.SetWorkers(2)
	sp.End()
	sel := tr.StartSpan(PhaseSelect)
	sel.SetSelected(4)
	sel.End()
	mt := tr.Finish()

	text := mt.Format()
	for _, want := range []string{"phase breakdown", "pairtable", "cells=90", "workers=2", "selected=4"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Format() missing %q:\n%s", want, text)
		}
	}
	var b strings.Builder
	if err := mt.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"phase": "pairtable"`) {
		t.Fatalf("JSON missing phase: %s", b.String())
	}
}
