package validate

import (
	"strings"
	"testing"

	"qmatch/internal/dataset"
	"qmatch/internal/xmltree"
)

const validPO = `<PO>
  <OrderNo>12345</OrderNo>
  <PurchaseInfo>
    <BillingAddr>1 Main St</BillingAddr>
    <ShippingAddr>2 Side Ave</ShippingAddr>
    <Lines>
      <Item>Widget</Item>
      <Quantity>3</Quantity>
      <UnitOfMeasure>kg</UnitOfMeasure>
    </Lines>
  </PurchaseInfo>
  <PurchaseDate>2005-04-05</PurchaseDate>
</PO>`

func TestValidDocument(t *testing.T) {
	vs, err := AgainstString(dataset.PO1(), validPO)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("violations on valid doc: %v", vs)
	}
}

func TestWrongRoot(t *testing.T) {
	vs, err := AgainstString(dataset.PO1(), `<Invoice/>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Rule != RuleRoot {
		t.Fatalf("violations = %v", vs)
	}
}

func TestUndeclaredElement(t *testing.T) {
	doc := strings.Replace(validPO, "<PurchaseDate>2005-04-05</PurchaseDate>",
		"<PurchaseDate>2005-04-05</PurchaseDate><Rogue>x</Rogue>", 1)
	vs, _ := AgainstString(dataset.PO1(), doc)
	if !hasRule(vs, RuleUndeclared, "PO/Rogue") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestMissingRequiredElement(t *testing.T) {
	doc := strings.Replace(validPO, "<OrderNo>12345</OrderNo>", "", 1)
	vs, _ := AgainstString(dataset.PO1(), doc)
	if !hasRule(vs, RuleRequired, "PO/OrderNo") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestTypeViolation(t *testing.T) {
	doc := strings.Replace(validPO, "<OrderNo>12345</OrderNo>", "<OrderNo>abc</OrderNo>", 1)
	vs, _ := AgainstString(dataset.PO1(), doc)
	if !hasRule(vs, RuleType, "PO/OrderNo") {
		t.Fatalf("violations = %v", vs)
	}
	doc = strings.Replace(validPO, "2005-04-05", "April 5th", 1)
	vs, _ = AgainstString(dataset.PO1(), doc)
	if !hasRule(vs, RuleType, "PO/PurchaseDate") {
		t.Fatalf("violations = %v", vs)
	}
}

func TestOccursViolations(t *testing.T) {
	schema := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.New("A", xmltree.Elem("string")),            // exactly once
		xmltree.New("B", xmltree.Elem("string").Optional()), // 0..1
		xmltree.New("C", xmltree.Elem("string").Repeated()), // 1..∞
	)
	// A twice (max 1), B twice (max 1), C absent (min 1).
	vs, _ := AgainstString(schema, `<R><A>x</A><A>y</A><B>1</B><B>2</B></R>`)
	if !hasRule(vs, RuleOccurs, "R/A") {
		t.Fatalf("A occurs: %v", vs)
	}
	if !hasRule(vs, RuleOccurs, "R/B") {
		t.Fatalf("B occurs: %v", vs)
	}
	if !hasRule(vs, RuleRequired, "R/C") {
		t.Fatalf("C required: %v", vs)
	}
	// Unbounded C many times is fine.
	vs, _ = AgainstString(schema, `<R><A>x</A><C>1</C><C>2</C><C>3</C></R>`)
	if len(vs) != 0 {
		t.Fatalf("unexpected: %v", vs)
	}
}

func TestAttributes(t *testing.T) {
	schema := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.New("id", xmltree.Attr("integer")),
		xmltree.New("note", func() xmltree.Properties {
			p := xmltree.Attr("string")
			p.MinOccurs = 0
			p.Use = "optional"
			return p
		}()),
		xmltree.New("A", xmltree.Elem("string")),
	)
	// Valid.
	vs, _ := AgainstString(schema, `<R id="7"><A>x</A></R>`)
	if len(vs) != 0 {
		t.Fatalf("valid attrs: %v", vs)
	}
	// Missing required id; undeclared attr; bad type.
	vs, _ = AgainstString(schema, `<R bogus="1"><A>x</A></R>`)
	if !hasRule(vs, RuleRequired, "R/@id") || !hasRule(vs, RuleUndeclared, "R/@bogus") {
		t.Fatalf("attr violations: %v", vs)
	}
	vs, _ = AgainstString(schema, `<R id="seven"><A>x</A></R>`)
	if !hasRule(vs, RuleType, "R/@id") {
		t.Fatalf("attr type: %v", vs)
	}
}

func TestFixedValue(t *testing.T) {
	schema := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.New("V", func() xmltree.Properties {
			p := xmltree.Elem("string")
			p.Fixed = "constant"
			return p
		}()),
	)
	vs, _ := AgainstString(schema, `<R><V>other</V></R>`)
	if !hasRule(vs, RuleFixed, "R/V") {
		t.Fatalf("fixed: %v", vs)
	}
	vs, _ = AgainstString(schema, `<R><V>constant</V></R>`)
	if len(vs) != 0 {
		t.Fatalf("fixed ok: %v", vs)
	}
}

func TestRepeatedChildPaths(t *testing.T) {
	schema := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.New("C", xmltree.Elem("integer").Repeated()),
	)
	vs, _ := AgainstString(schema, `<R><C>1</C><C>x</C></R>`)
	if len(vs) != 1 || vs[0].Path != "R/C[2]" {
		t.Fatalf("indexed path: %v", vs)
	}
}

func TestMalformedDocument(t *testing.T) {
	if _, err := AgainstString(dataset.PO1(), `<PO><unclosed>`); err == nil {
		t.Fatal("malformed accepted")
	}
	if _, err := AgainstString(dataset.PO1(), ``); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestValueMatchesType(t *testing.T) {
	cases := []struct {
		value, typ string
		want       bool
	}{
		{"12", "xs:integer", true},
		{"-3", "integer", true},
		{"3.14", "integer", false},
		{"3.14", "decimal", true},
		{"true", "boolean", true},
		{"yes", "boolean", false},
		{"2005-04-05", "date", true},
		{"2005-13-05", "date", false},
		{"2005-04-05T10:00:00Z", "dateTime", true},
		{"1999", "gYear", true},
		{"99", "gYear", false},
		{"http://example.com", "anyURI", true},
		{"not a uri", "anyURI", false},
		{"anything", "string", true},
		{"anything", "UnknownType", true},
	}
	for _, c := range cases {
		if got := ValueMatchesType(c.value, c.typ); got != c.want {
			t.Errorf("ValueMatchesType(%q, %q) = %v, want %v", c.value, c.typ, got, c.want)
		}
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Path: "PO/OrderNo", Rule: RuleType, Detail: "bad"}
	if v.String() != "PO/OrderNo: type: bad" {
		t.Fatalf("String = %q", v.String())
	}
}

func hasRule(vs []Violation, rule, path string) bool {
	for _, v := range vs {
		if v.Rule == rule && v.Path == path {
			return true
		}
	}
	return false
}
