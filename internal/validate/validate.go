// Package validate checks XML instance documents against a schema tree:
// undeclared elements and attributes, missing required content, occurrence
// violations and datatype mismatches. It is the consumer-side complement
// of the matcher — once two schemas are matched and data is translated,
// the result must validate against the target schema.
package validate

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"qmatch/internal/xmltree"
)

// Violation is one validation finding.
type Violation struct {
	// Path locates the offending document node ("PO/Lines/Item[2]").
	Path string
	// Rule names the violated constraint.
	Rule string
	// Detail is a human-readable explanation.
	Detail string
}

// String renders "PO/OrderNo: type: value "abc" is not a valid integer".
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s", v.Path, v.Rule, v.Detail)
}

// Rule names.
const (
	RuleRoot       = "root"
	RuleUndeclared = "undeclared"
	RuleRequired   = "required"
	RuleOccurs     = "occurs"
	RuleType       = "type"
	RuleFixed      = "fixed"
)

// Against validates the document read from r against the schema. It
// returns the violations found (empty for a valid document) and an error
// only for malformed XML.
func Against(schema *xmltree.Node, r io.Reader) ([]Violation, error) {
	doc, err := parse(r)
	if err != nil {
		return nil, err
	}
	var out []Violation
	if doc.name != schema.Label {
		out = append(out, Violation{
			Path: doc.name, Rule: RuleRoot,
			Detail: fmt.Sprintf("document root %q does not match schema root %q", doc.name, schema.Label),
		})
		return out, nil
	}
	validateElement(schema, doc, doc.name, &out)
	return out, nil
}

// AgainstString is Against over a string.
func AgainstString(schema *xmltree.Node, doc string) ([]Violation, error) {
	return Against(schema, strings.NewReader(doc))
}

type docElem struct {
	name     string
	attrs    []xml.Attr
	children []*docElem
	text     strings.Builder
}

func parse(r io.Reader) (*docElem, error) {
	dec := xml.NewDecoder(r)
	var stack []*docElem
	var root *docElem
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("validate: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &docElem{name: t.Name.Local, attrs: t.Attr}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("validate: multiple document roots")
				}
				root = n
			} else {
				p := stack[len(stack)-1]
				p.children = append(p.children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].text.Write([]byte(t))
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("validate: empty document")
	}
	return root, nil
}

func validateElement(schema *xmltree.Node, elem *docElem, path string, out *[]Violation) {
	// Split declared children.
	declAttrs := map[string]*xmltree.Node{}
	declElems := map[string]*xmltree.Node{}
	for _, c := range schema.Children {
		if c.Props.IsAttribute {
			declAttrs[c.Label] = c
		} else {
			declElems[c.Label] = c
		}
	}

	// Attributes.
	seenAttrs := map[string]bool{}
	for _, a := range elem.attrs {
		if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
			continue
		}
		decl, ok := declAttrs[a.Name.Local]
		if !ok {
			*out = append(*out, Violation{
				Path: path + "/@" + a.Name.Local, Rule: RuleUndeclared,
				Detail: "attribute not declared in the schema",
			})
			continue
		}
		seenAttrs[a.Name.Local] = true
		checkValue(decl, a.Value, path+"/@"+a.Name.Local, out)
	}
	for name, decl := range declAttrs {
		if decl.Props.Norm().MinOccurs >= 1 && !seenAttrs[name] {
			*out = append(*out, Violation{
				Path: path + "/@" + name, Rule: RuleRequired,
				Detail: "required attribute missing",
			})
		}
	}

	// Child elements.
	counts := map[string]int{}
	indices := map[string]int{}
	for _, child := range elem.children {
		counts[child.name]++
	}
	for _, child := range elem.children {
		indices[child.name]++
		childPath := fmt.Sprintf("%s/%s", path, child.name)
		if counts[child.name] > 1 {
			childPath = fmt.Sprintf("%s[%d]", childPath, indices[child.name])
		}
		decl, ok := declElems[child.name]
		if !ok {
			*out = append(*out, Violation{
				Path: childPath, Rule: RuleUndeclared,
				Detail: "element not declared in the schema",
			})
			continue
		}
		validateElement(decl, child, childPath, out)
	}
	for name, decl := range declElems {
		p := decl.Props.Norm()
		n := counts[name]
		if n < p.MinOccurs {
			*out = append(*out, Violation{
				Path: path + "/" + name, Rule: RuleRequired,
				Detail: fmt.Sprintf("occurs %d times, minOccurs is %d", n, p.MinOccurs),
			})
		}
		if p.MaxOccurs != xmltree.Unbounded && n > p.MaxOccurs {
			*out = append(*out, Violation{
				Path: path + "/" + name, Rule: RuleOccurs,
				Detail: fmt.Sprintf("occurs %d times, maxOccurs is %d", n, p.MaxOccurs),
			})
		}
	}

	// Leaf text content.
	if len(declElems) == 0 && len(elem.children) == 0 {
		checkValue(schema, strings.TrimSpace(elem.text.String()), path, out)
	}
}

// checkValue verifies a text value against a declared type and value
// constraints. Empty optional values pass.
func checkValue(decl *xmltree.Node, value, path string, out *[]Violation) {
	if decl.Props.Fixed != "" && value != decl.Props.Fixed {
		*out = append(*out, Violation{
			Path: path, Rule: RuleFixed,
			Detail: fmt.Sprintf("value %q differs from fixed value %q", value, decl.Props.Fixed),
		})
	}
	if value == "" {
		return
	}
	if !ValueMatchesType(value, decl.Props.Type) {
		*out = append(*out, Violation{
			Path: path, Rule: RuleType,
			Detail: fmt.Sprintf("value %q is not a valid %s", value, xmltree.CanonicalType(decl.Props.Type)),
		})
	}
}

// ValueMatchesType reports whether a lexical value is acceptable for the
// given XSD type. Unknown and string-family types accept everything.
func ValueMatchesType(value, typ string) bool {
	switch xmltree.CanonicalType(typ) {
	case "integer", "int", "long", "short", "byte",
		"nonNegativeInteger", "positiveInteger", "nonPositiveInteger", "negativeInteger",
		"unsignedLong", "unsignedInt", "unsignedShort", "unsignedByte":
		_, err := strconv.ParseInt(value, 10, 64)
		return err == nil
	case "decimal", "double", "float":
		_, err := strconv.ParseFloat(value, 64)
		return err == nil
	case "boolean":
		return value == "true" || value == "false" || value == "0" || value == "1"
	case "date":
		_, err := time.Parse("2006-01-02", value)
		return err == nil
	case "dateTime":
		_, err := time.Parse(time.RFC3339, value)
		return err == nil
	case "gYear":
		_, err := strconv.Atoi(value)
		return err == nil && len(value) == 4
	case "anyURI":
		return !strings.ContainsAny(value, " <>")
	default:
		return true
	}
}
