package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"qmatch/internal/obs"
)

func testLimiter(maxConcurrent, maxQueue int) (*limiter, *obs.Registry) {
	reg := obs.NewRegistry()
	return newLimiter(maxConcurrent, maxQueue,
		reg.Gauge(MetricQueueDepth), reg.Counter(MetricShed)), reg
}

func TestLimiterAcquireRelease(t *testing.T) {
	l, _ := testLimiter(2, 0)
	ctx := context.Background()
	if err := l.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Both slots busy, no queue: immediate shed.
	if err := l.acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	l.release()
	if err := l.acquire(ctx); err != nil {
		t.Fatalf("slot freed but acquire failed: %v", err)
	}
	l.release()
	l.release()
}

func TestLimiterQueueThenProceed(t *testing.T) {
	l, reg := testLimiter(1, 1)
	ctx := context.Background()
	if err := l.acquire(ctx); err != nil {
		t.Fatal(err)
	}

	queued := make(chan error, 1)
	go func() { queued <- l.acquire(ctx) }()
	// Wait for the goroutine to register in the queue.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, _ := reg.Value(MetricQueueDepth); v == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue depth never reached 1")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full now: the next acquire sheds and counts it.
	if err := l.acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if shed, _ := reg.Value(MetricShed); shed != 1 {
		t.Errorf("shed = %d, want 1", shed)
	}

	l.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire failed after release: %v", err)
	}
	if v, _ := reg.Value(MetricQueueDepth); v != 0 {
		t.Errorf("queue depth after dequeue = %d, want 0", v)
	}
	l.release()
}

func TestLimiterQueuedContextExpiry(t *testing.T) {
	l, reg := testLimiter(1, 4)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer l.release()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := l.acquire(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if v, _ := reg.Value(MetricQueueDepth); v != 0 {
		t.Errorf("queue depth after expiry = %d, want 0", v)
	}
}

func TestLimiterConcurrentStress(t *testing.T) {
	l, reg := testLimiter(3, 2)
	var wg sync.WaitGroup
	var admitted, saturated sync.Map
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
			defer cancel()
			if err := l.acquire(ctx); err != nil {
				saturated.Store(i, err)
				return
			}
			admitted.Store(i, true)
			time.Sleep(time.Millisecond)
			l.release()
		}(i)
	}
	wg.Wait()
	n := 0
	admitted.Range(func(_, _ any) bool { n++; return true })
	if n == 0 {
		t.Error("no request admitted")
	}
	if v, _ := reg.Value(MetricQueueDepth); v != 0 {
		t.Errorf("queue depth after drain = %d, want 0", v)
	}
}
