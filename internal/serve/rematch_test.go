package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"qmatch"
)

// poTargetEvolvedXSD renames DeliverTo — the delta a re-PUT rematches
// incrementally.
const poTargetEvolvedXSD = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PurchaseOrder"><xs:complexType><xs:sequence>
    <xs:element name="OrderNo" type="xs:integer"/>
    <xs:element name="Date" type="xs:date"/>
    <xs:element name="ShipAddress" type="xs:string"/>
  </xs:sequence></xs:complexType></xs:element></xs:schema>`

// The registry match endpoint serves the compiled fast path with a report
// cache, and a re-PUT of one side refreshes the cached report
// incrementally — the response then equals a from-scratch /v1/match of the
// new pair.
func TestSchemaMatchEndpointAndIncrementalPut(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, body := putSchema(t, ts.URL, "src", poSourceXSD); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put src: %d %s", resp.StatusCode, body)
	}
	if resp, body := putSchema(t, ts.URL, "tgt", poTargetXSD); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put tgt: %d %s", resp.StatusCode, body)
	}

	matchURL := ts.URL + "/v1/schemas/src/match/tgt"
	resp, body := do(t, http.MethodPost, matchURL, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schema match: %d %s", resp.StatusCode, body)
	}
	if c := resp.Header.Get("X-Qmatchd-Cache"); c != "miss" {
		t.Fatalf("first match cache header %q, want miss", c)
	}
	var first qmatch.Report
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if len(first.Correspondences) == 0 {
		t.Fatal("schema match found no correspondences")
	}

	resp, _ = do(t, http.MethodPost, matchURL, SchemaMatchRequest{})
	if c := resp.Header.Get("X-Qmatchd-Cache"); resp.StatusCode != http.StatusOK || c != "hit" {
		t.Fatalf("second match: status %d cache %q, want 200 hit", resp.StatusCode, c)
	}

	// Unknown ids fail with 404, bad ids with 400.
	if resp, _ := do(t, http.MethodPost, ts.URL+"/v1/schemas/src/match/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown other: %d", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodPost, ts.URL+"/v1/schemas/src/match/.bad", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid other id: %d", resp.StatusCode)
	}

	// Re-PUT the target with an evolved schema: the cached match refreshes
	// incrementally and the PUT response reports the savings.
	resp, body = putSchema(t, ts.URL, "tgt", poTargetEvolvedXSD)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-put: %d %s", resp.StatusCode, body)
	}
	var entry SchemaEntryResponse
	if err := json.Unmarshal(body, &entry); err != nil {
		t.Fatal(err)
	}
	if len(entry.Rematched) != 1 {
		t.Fatalf("re-put refreshed %d matches, want 1: %s", len(entry.Rematched), body)
	}
	rm := entry.Rematched[0]
	if rm.Source != "src" || rm.Target != "tgt" || rm.Rematch.Side != "target" ||
		rm.Rematch.Full || rm.Rematch.CopiedCells == 0 {
		t.Fatalf("refresh not incremental: %+v", rm)
	}

	// The refreshed cached report equals a from-scratch match of the new
	// pair (modulo the rematch breakdown it carries).
	resp, body = do(t, http.MethodPost, matchURL, nil)
	if c := resp.Header.Get("X-Qmatchd-Cache"); resp.StatusCode != http.StatusOK || c != "hit" {
		t.Fatalf("post-refresh match: status %d cache %q", resp.StatusCode, c)
	}
	var refreshed qmatch.Report
	if err := json.Unmarshal(body, &refreshed); err != nil {
		t.Fatal(err)
	}
	if refreshed.Rematch == nil || refreshed.Rematch.RescoredCells == 0 {
		t.Fatalf("refreshed report carries no rematch breakdown: %s", body)
	}
	resp, body = post(t, ts.URL+"/v1/match", matchBody(poSourceXSD, poTargetEvolvedXSD))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference match: %d %s", resp.StatusCode, body)
	}
	var want qmatch.Report
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}
	if refreshed.TreeQoM != want.TreeQoM || len(refreshed.Correspondences) != len(want.Correspondences) {
		t.Fatalf("refreshed report diverges:\n got %+v\nwant %+v", refreshed, want)
	}
	for i := range want.Correspondences {
		if refreshed.Correspondences[i] != want.Correspondences[i] {
			t.Fatalf("correspondence %d: %v, want %v", i, refreshed.Correspondences[i], want.Correspondences[i])
		}
	}
}

// Deleting a schema must drop its cached matches: the next match on a
// fresh registration is a miss, never a stale hit.
func TestSchemaMatchCacheDropsOnDelete(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putSchema(t, ts.URL, "src", poSourceXSD)
	putSchema(t, ts.URL, "tgt", poTargetXSD)
	matchURL := ts.URL + "/v1/schemas/src/match/tgt"
	if resp, body := do(t, http.MethodPost, matchURL, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("match: %d %s", resp.StatusCode, body)
	}
	if resp, _ := do(t, http.MethodDelete, ts.URL+"/v1/schemas/tgt", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	putSchema(t, ts.URL, "tgt", poTargetEvolvedXSD)
	resp, _ := do(t, http.MethodPost, matchURL, nil)
	if c := resp.Header.Get("X-Qmatchd-Cache"); resp.StatusCode != http.StatusOK || c != "miss" {
		t.Fatalf("post-delete match: status %d cache %q, want 200 miss", resp.StatusCode, c)
	}
}
