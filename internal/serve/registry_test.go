package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"qmatch/internal/registry"
)

// do sends a JSON request with an arbitrary method and decodes the reply.
func do(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func putSchema(t *testing.T, base, id, xsd string) (*http.Response, []byte) {
	t.Helper()
	return do(t, http.MethodPut, base+"/v1/schemas/"+id,
		PutSchemaRequest{Schema: &SchemaInput{Data: xsd}})
}

func TestRegistryEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// PUT: 201 on create, 200 on replace, entry metadata in the body.
	resp, body := putSchema(t, ts.URL, "po-target", poTargetXSD)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var entry SchemaEntryResponse
	if err := json.Unmarshal(body, &entry); err != nil {
		t.Fatal(err)
	}
	if entry.ID != "po-target" || entry.Name != "PurchaseOrder" || entry.Size != 4 || len(entry.ContentID) != 64 {
		t.Errorf("unexpected entry: %+v", entry)
	}
	if resp, _ := putSchema(t, ts.URL, "po-target", poTargetXSD); resp.StatusCode != http.StatusOK {
		t.Errorf("replace: status %d, want 200", resp.StatusCode)
	}

	// Invalid ids and bodies are 400s.
	if resp, _ := putSchema(t, ts.URL, ".hidden", poTargetXSD); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := putSchema(t, ts.URL, "broken", "<not-xsd>"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad schema: status %d, want 400", resp.StatusCode)
	}

	// GET returns metadata plus the rendered XSD; missing ids are 404.
	resp, body = do(t, http.MethodGet, ts.URL+"/v1/schemas/po-target", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &entry); err != nil {
		t.Fatal(err)
	}
	if entry.XSD == "" || entry.ContentID == "" {
		t.Errorf("get response missing xsd or content id: %+v", entry)
	}
	if resp, _ := do(t, http.MethodGet, ts.URL+"/v1/schemas/absent", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("get absent: status %d, want 404", resp.StatusCode)
	}

	// List shows the corpus sorted by id.
	if resp, _ := putSchema(t, ts.URL, "a-first", poSourceXSD); resp.StatusCode != http.StatusCreated {
		t.Fatalf("second put failed: %d", resp.StatusCode)
	}
	resp, body = do(t, http.MethodGet, ts.URL+"/v1/schemas", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d", resp.StatusCode)
	}
	var list SchemaListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Schemas) != 2 || list.Schemas[0].ID != "a-first" || list.Schemas[1].ID != "po-target" {
		t.Errorf("list = %+v, want a-first, po-target", list.Schemas)
	}

	// DELETE: 204 then 404.
	if resp, _ := do(t, http.MethodDelete, ts.URL+"/v1/schemas/a-first", nil); resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete: status %d, want 204", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodDelete, ts.URL+"/v1/schemas/a-first", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("delete absent: status %d, want 404", resp.StatusCode)
	}
}

func TestSearchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for id, doc := range map[string]string{
		"po-target": poTargetXSD,
		"unrelated": `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
		  <xs:element name="Zoo"><xs:complexType><xs:sequence>
		    <xs:element name="Animal" type="xs:string"/>
		    <xs:element name="Keeper" type="xs:string"/>
		  </xs:sequence></xs:complexType></xs:element></xs:schema>`,
	} {
		if resp, body := putSchema(t, ts.URL, id, doc); resp.StatusCode != http.StatusCreated {
			t.Fatalf("put %s: %d: %s", id, resp.StatusCode, body)
		}
	}

	resp, body := post(t, ts.URL+"/v1/search", SearchRequest{
		Query:        &SchemaInput{Data: poSourceXSD},
		matchOptions: matchOptions{Trace: true},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d: %s", resp.StatusCode, body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Stats.Corpus != 2 || sr.Stats.Candidates != 2 {
		t.Errorf("stats = %+v, want corpus=2 candidates=2", sr.Stats)
	}
	if len(sr.Results) != 2 || sr.Results[0].ID != "po-target" {
		t.Fatalf("results = %+v, want po-target first", sr.Results)
	}
	if sr.Results[0].Score <= sr.Results[1].Score {
		t.Errorf("results not sorted by score: %+v", sr.Results)
	}
	if len(sr.Results[0].Correspondences) == 0 {
		t.Error("winner carries no correspondences")
	}
	if sr.Trace == nil || len(sr.Trace.Spans) != 2 ||
		sr.Trace.Spans[0].Phase != "compile" || sr.Trace.Spans[1].Phase != "prefilter" {
		t.Errorf("trace = %+v, want compile + prefilter spans", sr.Trace)
	}

	// k=1 ranks only the overlap winner.
	resp, body = post(t, ts.URL+"/v1/search", SearchRequest{
		Query: &SchemaInput{Data: poSourceXSD},
		K:     1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("k=1 search: status %d: %s", resp.StatusCode, body)
	}
	sr = SearchResponse{}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Stats.Candidates != 1 || len(sr.Results) != 1 || sr.Results[0].ID != "po-target" {
		t.Errorf("k=1: results %+v stats %+v", sr.Results, sr.Stats)
	}
	if sr.Trace != nil {
		t.Error("untraced search returned a trace")
	}

	// Malformed query → 400; search with an empty registry still works.
	resp, _ = post(t, ts.URL+"/v1/search", SearchRequest{Query: &SchemaInput{Data: "<bad"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query: status %d, want 400", resp.StatusCode)
	}
}

func TestRegistryPersistsAcrossServers(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{RegistryDir: dir})
	if resp, body := putSchema(t, ts.URL, "po-target", poTargetXSD); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put: %d: %s", resp.StatusCode, body)
	}
	ts.Close()

	// A second server over the same directory resumes the corpus.
	_, ts2 := newTestServer(t, Config{RegistryDir: dir})
	resp, body := do(t, http.MethodGet, ts2.URL+"/v1/schemas/po-target", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get after restart: status %d: %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts2.URL+"/v1/search", SearchRequest{Query: &SchemaInput{Data: poSourceXSD}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search after restart: status %d: %s", resp.StatusCode, body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 1 || sr.Results[0].ID != "po-target" {
		t.Errorf("search after restart = %+v", sr.Results)
	}
}

func TestRegistryCapacity(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSchemas: 1})
	if resp, _ := putSchema(t, ts.URL, "one", poTargetXSD); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first put rejected: %d", resp.StatusCode)
	}
	if resp, _ := putSchema(t, ts.URL, "two", poSourceXSD); resp.StatusCode != http.StatusInsufficientStorage {
		t.Errorf("over-capacity put: status %d, want 507", resp.StatusCode)
	}
	// Replacing the existing entry is always allowed.
	if resp, _ := putSchema(t, ts.URL, "one", poSourceXSD); resp.StatusCode != http.StatusOK {
		t.Errorf("replace at capacity: status %d, want 200", resp.StatusCode)
	}
}

func TestRegistryDrainRefusesWrites(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if resp, _ := putSchema(t, ts.URL, "one", poTargetXSD); resp.StatusCode != http.StatusCreated {
		t.Fatal("setup put failed")
	}
	s.Drain()
	if resp, _ := putSchema(t, ts.URL, "two", poSourceXSD); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining put: status %d, want 503", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodDelete, ts.URL+"/v1/schemas/one", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining delete: status %d, want 503", resp.StatusCode)
	}
	// Reads stay available while draining.
	if resp, _ := do(t, http.MethodGet, ts.URL+"/v1/schemas/one", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("draining get: status %d, want 200", resp.StatusCode)
	}
}

// TestRouteTableCoversRegistry pins the route table: every registry
// endpoint is registered through the same instrumented table as the match
// endpoints (a rename here is an API change).
func TestRouteTableCoversRegistry(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"PUT /v1/schemas/{id}":                "schema_put",
		"GET /v1/schemas/{id}":                "schema_get",
		"DELETE /v1/schemas/{id}":             "schema_delete",
		"GET /v1/schemas":                     "schema_list",
		"POST /v1/schemas/{id}/match/{other}": "schema_match",
		"POST /v1/search":                     "search",
		"POST /v1/match":                      "match",
		"POST /v1/matchall":                   "matchall",
		"POST /v1/rank":                       "rank",
		"POST /v1/jobs":                       "job_submit",
		"GET /v1/jobs":                        "job_list",
		"GET /v1/jobs/{id}":                   "job_status",
		"GET /v1/jobs/{id}/results":           "job_results",
		"DELETE /v1/jobs/{id}":                "job_cancel",
		"GET /healthz":                        "healthz",
		"GET /metrics":                        "metrics",
	}
	got := map[string]string{}
	for _, rt := range s.routes() {
		got[rt.method+" "+rt.pattern] = rt.name
	}
	for pattern, name := range want {
		if got[pattern] != name {
			t.Errorf("route %q: name %q, want %q", pattern, got[pattern], name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("route table has %d entries, want %d: %v", len(got), len(want), got)
	}
}

// interface guard silence: registry types used in assertions above.
var _ = registry.Entry{}
