package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"qmatch/internal/serve"
)

// ExampleServer_asyncJobs submits an async matching job over HTTP and
// polls it to completion — the programmatic equivalent of
// `qjobs submit -wait`.
func ExampleServer_asyncJobs() {
	s, _ := serve.New(serve.Config{JobWorkers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	schema := func(name string) map[string]any {
		return map[string]any{"schema": map[string]any{"data": fmt.Sprintf(
			`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
			   <xs:element name="%s">
			     <xs:complexType><xs:sequence>
			       <xs:element name="OrderNo" type="xs:integer"/>
			     </xs:sequence></xs:complexType>
			   </xs:element>
			 </xs:schema>`, name)}}
	}

	// Submit a 1×2 grid; the server answers 202 with the job's initial
	// progress snapshot.
	body, _ := json.Marshal(map[string]any{
		"sources": []any{schema("PO")},
		"targets": []any{schema("PurchaseOrder"), schema("Invoice")},
	})
	resp, _ := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	var job struct {
		ID    string `json:"id"`
		Cells int    `json:"cells"`
	}
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	fmt.Printf("submitted %d cells: %d\n", job.Cells, resp.StatusCode)

	// Poll until the job reaches a terminal state.
	var progress struct {
		Status         string `json:"status"`
		CompletedCells int    `json:"completedCells"`
	}
	for {
		resp, _ := http.Get(ts.URL + "/v1/jobs/" + job.ID)
		json.NewDecoder(resp.Body).Decode(&progress)
		resp.Body.Close()
		if progress.Status != "pending" && progress.Status != "running" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("%s %d/%d\n", progress.Status, progress.CompletedCells, job.Cells)
	// Output:
	// submitted 2 cells: 202
	// completed 2/2
}
