package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"qmatch"
)

const poJSONSchema = `{
  "title": "PurchaseOrder",
  "type": "object",
  "required": ["OrderNo", "Date"],
  "properties": {
    "OrderNo": {"type": "integer"},
    "Date": {"type": "string", "format": "date"},
    "DeliverTo": {"type": "string"}
  }
}`

const poDDL = `CREATE TABLE PurchaseOrders (
    OrderNo INT PRIMARY KEY,
    PurchaseDate DATE NOT NULL,
    ShipTo VARCHAR(200)
);`

// A JSON-Schema source against an XSD target goes through /v1/match like
// any other pair — the heterogeneous scenario end to end over HTTP.
func TestMatchJSONSchemaAgainstXSD(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := MatchRequest{
		Source: &SchemaInput{Format: "jsonschema", Data: poJSONSchema},
		Target: &SchemaInput{Data: poSourceXSD},
	}
	resp, body := post(t, ts.URL+"/v1/match", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var report qmatch.Report
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, c := range report.Correspondences {
		found[c.Source] = true
	}
	if !found["PurchaseOrder/OrderNo"] {
		t.Errorf("OrderNo not matched across formats: %s", body)
	}

	// The "auto" format sniffs the same pair without being told.
	req = MatchRequest{
		Source: &SchemaInput{Format: "auto", Data: poJSONSchema},
		Target: &SchemaInput{Format: "auto", Data: poSourceXSD},
	}
	if resp, body := post(t, ts.URL+"/v1/match", req); resp.StatusCode != http.StatusOK {
		t.Errorf("auto-sniffed match: status %d: %s", resp.StatusCode, body)
	}
}

// Registering a JSON Schema and a DDL schema and matching them by id
// exercises the compile→registry→match path with both new front-ends.
func TestRegistryCrossFormatMatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	puts := []struct{ id, format, data, root string }{
		{"po-js", "jsonschema", poJSONSchema, ""},
		{"po-sql", "ddl", poDDL, "orderdb"},
	}
	for _, p := range puts {
		resp, body := do(t, http.MethodPut, ts.URL+"/v1/schemas/"+p.id,
			PutSchemaRequest{Schema: &SchemaInput{Format: p.format, Data: p.data, Root: p.root}})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("put %s: status %d: %s", p.id, resp.StatusCode, body)
		}
	}

	resp, body := do(t, http.MethodPost, ts.URL+"/v1/schemas/po-js/match/po-sql", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cross-format registry match: status %d: %s", resp.StatusCode, body)
	}
	var report qmatch.Report
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range report.Correspondences {
		found = found || strings.HasSuffix(c.Source, "/OrderNo")
	}
	if !found {
		t.Errorf("no OrderNo correspondence between registered jsonschema and ddl: %s", body)
	}
}

// Unrecognized inline content under format "auto" fails with a 400 whose
// body names the unknown format and echoes the sniffed prefix, so clients
// see what the server saw instead of a generic parse error.
func TestAutoFormatJunk400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := MatchRequest{
		Source: &SchemaInput{Format: "auto", Data: "certainly not a schema"},
		Target: &SchemaInput{Data: poTargetXSD},
	}
	resp, body := post(t, ts.URL+"/v1/match", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "unknown schema format") {
		t.Errorf("400 body does not name the unknown format: %q", eb.Error)
	}
	if !strings.Contains(eb.Error, `"certainly not a schema"`) {
		t.Errorf("400 body does not echo the sniffed prefix: %q", eb.Error)
	}
}

// Every format value the SchemaInput doc promises parses its example;
// the rejection message for the rest enumerates the accepted set.
func TestSchemaInputFormats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	inputs := []SchemaInput{
		{Format: "jsonschema", Data: poJSONSchema},
		{Format: "json", Data: poJSONSchema},
		{Format: "ddl", Data: poDDL},
		{Format: "sql", Data: poDDL, Root: "orderdb"},
	}
	for _, in := range inputs {
		req := MatchRequest{Source: &in, Target: &SchemaInput{Data: poTargetXSD}}
		if resp, body := post(t, ts.URL+"/v1/match", req); resp.StatusCode != http.StatusOK {
			t.Errorf("format %q: status %d: %s", in.Format, resp.StatusCode, body)
		}
	}
	req := MatchRequest{
		Source: &SchemaInput{Format: "yaml", Data: "a: 1"},
		Target: &SchemaInput{Data: poTargetXSD},
	}
	resp, body := post(t, ts.URL+"/v1/match", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("yaml format: status %d, want 400: %s", resp.StatusCode, body)
	}
	for _, want := range []string{"jsonschema", "ddl", "auto"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("rejection %s does not offer %q", body, want)
		}
	}
}
