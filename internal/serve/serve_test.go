package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"qmatch"
	"qmatch/internal/synth"
	"qmatch/internal/xsd"
)

const poSourceXSD = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PO"><xs:complexType><xs:sequence>
    <xs:element name="OrderNo" type="xs:integer"/>
    <xs:element name="PurchaseDate" type="xs:date"/>
    <xs:element name="ShipTo" type="xs:string"/>
  </xs:sequence></xs:complexType></xs:element></xs:schema>`

const poTargetXSD = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PurchaseOrder"><xs:complexType><xs:sequence>
    <xs:element name="OrderNo" type="xs:integer"/>
    <xs:element name="Date" type="xs:date"/>
    <xs:element name="DeliverTo" type="xs:string"/>
  </xs:sequence></xs:complexType></xs:element></xs:schema>`

// newTestServer builds a Server + httptest.Server; the cleanup closes it.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func matchBody(source, target string) MatchRequest {
	return MatchRequest{
		Source: &SchemaInput{Data: source},
		Target: &SchemaInput{Data: target},
	}
}

// The happy path must serve exactly the library wire format: the response
// body of /v1/match is byte-for-byte the Engine.Match report as
// Report.WriteJSON emits it, so testdata/wire_golden.json stays
// authoritative for the service too.
func TestMatchByteIdenticalToLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, got := post(t, ts.URL+"/v1/match", matchBody(poSourceXSD, poTargetXSD))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}

	eng, err := qmatch.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	src, err := qmatch.ParseSchemaString(poSourceXSD)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := qmatch.ParseSchemaString(poTargetXSD)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := eng.Match(src, tgt).WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("service response differs from library wire output\ngot:\n%s\nwant:\n%s", got, want.Bytes())
	}
}

// Per-request overrides select pooled engines; a traced request attaches
// the pipeline spans; an override-free request reuses the default engine.
func TestMatchTraceAndOverrides(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Trace on the default (hybrid) pipeline — the only one emitting
	// phase spans; the trace bit alone selects a pooled engine.
	req := matchBody(poSourceXSD, poTargetXSD)
	req.Trace = true
	resp, body := post(t, ts.URL+"/v1/match", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var report qmatch.Report
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	if report.Trace == nil || len(report.Trace.Spans) == 0 {
		t.Errorf("trace requested but absent: %+v", report.Trace)
	}

	// An algorithm override selects another pooled engine.
	lreq := matchBody(poSourceXSD, poTargetXSD)
	lreq.Algorithm = "linguistic"
	resp, body = post(t, ts.URL+"/v1/match", lreq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var lingReport qmatch.Report
	if err := json.Unmarshal(body, &lingReport); err != nil {
		t.Fatal(err)
	}
	if lingReport.Algorithm != "linguistic" {
		t.Errorf("algorithm override ignored: %q", lingReport.Algorithm)
	}
	if v, _ := s.reg.Value(MetricEngineBuilds); v < 2 {
		t.Errorf("expected a pooled engine build, builds=%d", v)
	}
	// Same overrides again: the pooled engine is reused, not rebuilt.
	before, _ := s.reg.Value(MetricEngineBuilds)
	post(t, ts.URL+"/v1/match", req)
	if after, _ := s.reg.Value(MetricEngineBuilds); after != before {
		t.Errorf("engine rebuilt for identical overrides: %d -> %d", before, after)
	}
}

// A deadline that expires mid-match returns 504 and, when the request
// asked for tracing, carries the aborted pipeline's partial spans as the
// diagnostic body.
func TestDeadlineExceeded504PartialTrace(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Force the deadline past expiry before the engine runs: the fill
	// then aborts at its first cancellation check, deterministically.
	s.holdMatch = func() { time.Sleep(20 * time.Millisecond) }

	big := xsd.Render(synth.Generate(synth.Config{Seed: 7, Elements: 60}))
	req := matchBody(big, big)
	req.Trace = true
	req.TimeoutMs = 1
	resp, body := post(t, ts.URL+"/v1/match", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	var eb struct {
		Error string             `json:"error"`
		Trace *qmatch.MatchTrace `json:"trace"`
	}
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", eb.Error)
	}
	if eb.Trace == nil {
		t.Fatalf("504 body missing the partial trace: %s", body)
	}
	partial := false
	for _, sp := range eb.Trace.Spans {
		partial = partial || sp.Partial
	}
	if !partial {
		t.Errorf("no span marked partial in %+v", eb.Trace.Spans)
	}
}

// A deadline-less variant of the same request still succeeds (the clamp
// and default apply, not the tiny request timeout).
func TestMatchAllAndRankEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	all := MatchAllRequest{
		Sources: []SchemaInput{{Data: poSourceXSD}, {Data: poTargetXSD}},
		Targets: []SchemaInput{{Data: poTargetXSD}},
	}
	resp, body := post(t, ts.URL+"/v1/matchall", all)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matchall status %d: %s", resp.StatusCode, body)
	}
	var grid MatchAllResponse
	if err := json.Unmarshal(body, &grid); err != nil {
		t.Fatal(err)
	}
	if len(grid.Reports) != 2 || len(grid.Reports[0]) != 1 {
		t.Fatalf("grid shape %dx?, want 2x1: %s", len(grid.Reports), body)
	}
	if grid.Reports[0][0].TreeQoM <= 0 {
		t.Errorf("empty report in grid: %+v", grid.Reports[0][0])
	}

	rank := RankRequest{
		Query:  &SchemaInput{Data: poSourceXSD},
		Corpus: []SchemaInput{{Data: poTargetXSD}, {Data: poSourceXSD}},
	}
	resp, body = post(t, ts.URL+"/v1/rank", rank)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rank status %d: %s", resp.StatusCode, body)
	}
	var ranked RankResponse
	if err := json.Unmarshal(body, &ranked); err != nil {
		t.Fatal(err)
	}
	if len(ranked.Ranked) != 2 {
		t.Fatalf("ranked %d, want 2", len(ranked.Ranked))
	}
	// The self-match (corpus index 1) must outrank the PO variant.
	if ranked.Ranked[0].Index != 1 || ranked.Ranked[0].Score < ranked.Ranked[1].Score {
		t.Errorf("ranking order wrong: %+v", ranked.Ranked)
	}

	// The service rank must agree with the library's Engine.Rank.
	eng, err := qmatch.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	query, _ := qmatch.ParseSchemaString(poSourceXSD)
	c0, _ := qmatch.ParseSchemaString(poTargetXSD)
	c1, _ := qmatch.ParseSchemaString(poSourceXSD)
	want := eng.Rank(query, []*qmatch.Schema{c0, c1})
	for i := range want {
		if ranked.Ranked[i].Index != want[i].Index || ranked.Ranked[i].Score != want[i].Score {
			t.Errorf("rank[%d] = {%d %v}, library {%d %v}", i,
				ranked.Ranked[i].Index, ranked.Ranked[i].Score, want[i].Index, want[i].Score)
		}
	}
}

// An oversized body is rejected with 413 before any parsing or matching.
func TestOversizedBody413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 512})
	big := xsd.Render(synth.Generate(synth.Config{Seed: 3, Elements: 80}))
	resp, body := post(t, ts.URL+"/v1/match", matchBody(big, big))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "exceeds") {
		t.Errorf("unhelpful 413 body: %s", body)
	}
}

// When every slot is busy and the queue is full, new match requests are
// shed immediately with 429 and the shed counter advances.
func TestLimiterSaturation429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 0})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.holdMatch = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}

	firstDone := make(chan int)
	go func() {
		resp, _ := post(t, ts.URL+"/v1/match", matchBody(poSourceXSD, poTargetXSD))
		firstDone <- resp.StatusCode
	}()
	<-entered // the first request now owns the only slot

	resp, body := post(t, ts.URL+"/v1/match", matchBody(poSourceXSD, poTargetXSD))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if shed, _ := s.reg.Value(MetricShed); shed != 1 {
		t.Errorf("shed counter %d, want 1", shed)
	}
	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Errorf("held request finished %d, want 200", code)
	}
}

// Malformed and invalid requests fail with 400s that name the problem;
// wrong methods and paths 405/404.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxPairs: 2})
	cases := []struct {
		name, path, body string
		status           int
	}{
		{"bad json", "/v1/match", `{"source": `, http.StatusBadRequest},
		{"missing target", "/v1/match", fmt.Sprintf(`{"source":{"data":%q}}`, poSourceXSD), http.StatusBadRequest},
		{"bad format", "/v1/match", fmt.Sprintf(`{"source":{"data":%q,"format":"yaml"},"target":{"data":%q}}`, poSourceXSD, poTargetXSD), http.StatusBadRequest},
		{"bad algorithm", "/v1/match", fmt.Sprintf(`{"source":{"data":%q},"target":{"data":%q},"algorithm":"psychic"}`, poSourceXSD, poTargetXSD), http.StatusBadRequest},
		{"bad threshold", "/v1/match", fmt.Sprintf(`{"source":{"data":%q},"target":{"data":%q},"threshold":1.5}`, poSourceXSD, poTargetXSD), http.StatusBadRequest},
		{"unparsable schema", "/v1/match", `{"source":{"data":"not xml"},"target":{"data":"not xml"}}`, http.StatusBadRequest},
		{"grid too large", "/v1/matchall", fmt.Sprintf(`{"sources":[{"data":%q},{"data":%q},{"data":%q}],"targets":[{"data":%q}]}`, poSourceXSD, poSourceXSD, poSourceXSD, poTargetXSD), http.StatusBadRequest},
		{"empty corpus", "/v1/rank", fmt.Sprintf(`{"query":{"data":%q},"corpus":[]}`, poSourceXSD), http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.status, body)
		}
		if !bytes.Contains(body, []byte(`"error"`)) {
			t.Errorf("%s: missing error envelope: %s", tc.name, body)
		}
	}

	if resp, err := http.Get(ts.URL + "/v1/match"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/match: %d, want 405", resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET /nope: %d, want 404", resp.StatusCode)
		}
	}
}

// DTD and instance-document inputs go through the corresponding parsers.
func TestAlternateSchemaFormats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := MatchRequest{
		Source: &SchemaInput{Format: "dtd", Data: `<!ELEMENT PO (OrderNo, ShipTo)>
<!ELEMENT OrderNo (#PCDATA)>
<!ELEMENT ShipTo (#PCDATA)>`},
		Target: &SchemaInput{Format: "xml", Data: `<PurchaseOrder><OrderNo>17</OrderNo><DeliverTo>x</DeliverTo></PurchaseOrder>`},
	}
	resp, body := post(t, ts.URL+"/v1/match", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var report qmatch.Report
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Correspondences) == 0 {
		t.Errorf("no correspondences across formats: %s", body)
	}
}

// Health flips to 503 on Drain and match requests are refused, while the
// metrics endpoint keeps serving.
func TestHealthzAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d, want 200", resp.StatusCode)
	}

	s.Drain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining %d, want 503", resp.StatusCode)
	}
	mresp, body := post(t, ts.URL+"/v1/match", matchBody(poSourceXSD, poTargetXSD))
	if mresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("match while draining %d, want 503: %s", mresp.StatusCode, body)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("metrics while draining %d, want 200", resp.StatusCode)
	}
}

// The metrics endpoint exposes both registries: the Engine's match
// metrics and the HTTP layer's request metrics, in Prometheus text form.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/match", matchBody(poSourceXSD, poTargetXSD))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"qmatch_matches_total 1",
		"qmatch_label_cache_entries",
		`qmatchd_http_requests_total{route="match",code="200"} 1`,
		`qmatchd_http_request_duration_seconds_bucket{route="match",le="+Inf"} 1`,
		"qmatchd_http_queue_depth",
		"qmatchd_http_shed_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// The -race concurrent-clients hammer: many goroutines mixing every
// endpoint against one server. Run with `go test -race ./internal/serve`
// (CI does) to verify the shared Engine, pool and limiter under load.
func TestConcurrentClientsHammer(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 4, MaxQueue: 64})
	const clients = 8
	const perClient = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				switch (c + i) % 4 {
				case 0:
					req := matchBody(poSourceXSD, poTargetXSD)
					req.Trace = c%2 == 0
					resp, body := post(t, ts.URL+"/v1/match", req)
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("match: %d %s", resp.StatusCode, body)
					}
				case 1:
					resp, body := post(t, ts.URL+"/v1/matchall", MatchAllRequest{
						Sources: []SchemaInput{{Data: poSourceXSD}},
						Targets: []SchemaInput{{Data: poTargetXSD}},
					})
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("matchall: %d %s", resp.StatusCode, body)
					}
				case 2:
					resp, err := http.Get(ts.URL + "/metrics")
					if err != nil {
						errs <- err
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				case 3:
					resp, err := http.Get(ts.URL + "/healthz")
					if err != nil {
						errs <- err
						continue
					}
					resp.Body.Close()
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// BenchmarkServeMatch measures the HTTP round trip of one /v1/match
// request end to end; compare with BenchmarkEngineMatchDirect for the
// service overhead figure in EXPERIMENTS.md.
func BenchmarkServeMatch(b *testing.B) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(matchBody(poSourceXSD, poTargetXSD))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/match", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkEngineMatchDirect is the in-process baseline of the same match
// BenchmarkServeMatch performs over HTTP (parse included, as the service
// must parse request schemas too).
func BenchmarkEngineMatchDirect(b *testing.B) {
	eng, err := qmatch.NewEngine()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := qmatch.ParseSchemaString(poSourceXSD)
		if err != nil {
			b.Fatal(err)
		}
		tgt, err := qmatch.ParseSchemaString(poTargetXSD)
		if err != nil {
			b.Fatal(err)
		}
		if r := eng.Match(src, tgt); r.TreeQoM <= 0 {
			b.Fatal("bad report")
		}
	}
}
