package serve

import (
	"context"
	"fmt"
	"log/slog"

	"qmatch"
)

// engineKey identifies the Engine an override combination compiles to.
// Engines are immutable once built (frozen algorithm, weights, thresholds,
// thesaurus), so requests with equal keys share one safely.
type engineKey struct {
	alg        qmatch.Algorithm
	threshold  float64
	hasThresh  bool
	weights    [4]float64
	hasWeights bool
	trace      bool
}

func keyOf(o matchOptions) (engineKey, error) {
	k := engineKey{trace: o.Trace}
	if o.Algorithm != "" {
		alg, err := qmatch.ParseAlgorithm(o.Algorithm)
		if err != nil {
			return engineKey{}, err
		}
		k.alg = alg
	}
	if o.Threshold != nil {
		k.threshold, k.hasThresh = *o.Threshold, true
	}
	if o.Weights != nil {
		k.weights = [4]float64{o.Weights.Label, o.Weights.Properties, o.Weights.Level, o.Weights.Children}
		k.hasWeights = true
	}
	return k, nil
}

// isDefault reports whether the key selects the server's default Engine.
func (k engineKey) isDefault() bool {
	return k == engineKey{}
}

// engineFor resolves the Engine serving one request's overrides: the
// default Engine when there are none, otherwise a pooled Engine compiled
// from the server's base options plus the overrides. Invalid overrides
// (unknown algorithm, out-of-range threshold, bad weights) surface as the
// construction error, which handlers map to 400. The pool is bounded by
// Config.MaxEngines; misses on a full pool build a throwaway Engine.
func (s *Server) engineFor(o matchOptions) (*qmatch.Engine, error) {
	key, err := keyOf(o)
	if err != nil {
		return nil, err
	}
	if key.isDefault() {
		return s.engine, nil
	}
	s.mu.Lock()
	eng := s.engines[key]
	s.mu.Unlock()
	if eng != nil {
		return eng, nil
	}

	opts := append(s.cfg.Options[:len(s.cfg.Options):len(s.cfg.Options)],
		qmatch.WithObserver(qmatch.Observer{Logger: s.logger, Tracing: key.trace}))
	if key.alg != "" {
		opts = append(opts, qmatch.WithAlgorithm(key.alg))
	}
	if key.hasThresh {
		opts = append(opts, qmatch.WithSelectionThreshold(key.threshold))
	}
	if key.hasWeights {
		opts = append(opts, qmatch.WithWeights(qmatch.Weights{
			Label:      key.weights[0],
			Properties: key.weights[1],
			Level:      key.weights[2],
			Children:   key.weights[3],
		}))
	}
	eng, err = qmatch.NewEngine(opts...)
	if err != nil {
		return nil, fmt.Errorf("invalid match options: %w", err)
	}
	s.builds.Inc()

	s.mu.Lock()
	if cached := s.engines[key]; cached != nil {
		// Lost a build race; the first Engine wins so concurrent equal
		// requests keep sharing caches.
		eng = cached
	} else if len(s.engines) < s.cfg.MaxEngines {
		s.engines[key] = eng
		s.pooled.Set(int64(len(s.engines)))
	}
	s.mu.Unlock()
	if s.logger != nil {
		s.logger.LogAttrs(context.Background(), slog.LevelDebug, "engine built",
			slog.String("algorithm", string(eng.Algorithm())),
			slog.Bool("trace", key.trace))
	}
	return eng, nil
}
