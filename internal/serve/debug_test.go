package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const clientTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
const clientTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"

// postWithHeaders is post with extra request headers (the traceparent
// tests need to set the incoming W3C header).
func postWithHeaders(t *testing.T, url string, body any, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := readAll(t, resp)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func readAll(t *testing.T, resp *http.Response) ([]byte, error) {
	t.Helper()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// A client traceparent is adopted: the same trace ID comes back in
// X-Request-Id and in the response traceparent (with the server's own
// span ID, not the client's).
func TestTraceparentAdopted(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postWithHeaders(t, ts.URL+"/v1/match", matchBody(poSourceXSD, poTargetXSD),
		map[string]string{"traceparent": clientTraceparent})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != clientTraceID {
		t.Fatalf("X-Request-Id = %q, want client trace ID %q", got, clientTraceID)
	}
	tp := resp.Header.Get("traceparent")
	parts := strings.Split(tp, "-")
	if len(parts) != 4 || parts[1] != clientTraceID {
		t.Fatalf("response traceparent %q does not carry the client trace ID", tp)
	}
	if parts[2] == "00f067aa0ba902b7" {
		t.Fatalf("response traceparent reused the client span ID: %q", tp)
	}
}

// Without (or with a malformed) traceparent the server mints a fresh
// 32-hex trace ID.
func TestTraceparentGenerated(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, hdr := range []map[string]string{nil, {"traceparent": "garbage"}} {
		resp, _ := postWithHeaders(t, ts.URL+"/v1/match", matchBody(poSourceXSD, poTargetXSD), hdr)
		id := resp.Header.Get("X-Request-Id")
		if len(id) != 32 || id == clientTraceID {
			t.Fatalf("headers %v: X-Request-Id = %q, want generated 32-hex ID", hdr, id)
		}
	}
}

// Every log line emitted while serving a request carries the request's
// trace_id and request_id — the correlation handler injects them from the
// context the handlers log with.
func TestLogLinesCarryTraceID(t *testing.T) {
	var buf bytes.Buffer
	s, err := New(Config{Logger: slog.New(slog.NewJSONHandler(&buf, nil))})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postWithHeaders(t, ts.URL+"/v1/match", matchBody(poSourceXSD, poTargetXSD),
		map[string]string{"traceparent": clientTraceparent})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no log lines emitted")
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		if rec["trace_id"] != clientTraceID {
			t.Fatalf("log line missing trace_id=%s:\n%s", clientTraceID, line)
		}
		if id, _ := rec["request_id"].(string); len(id) != 16 {
			t.Fatalf("log line missing 16-hex request_id:\n%s", line)
		}
	}
}

// /debug/requests lists a request while it is in flight, with its route,
// trace ID and age.
func TestDebugRequestsInflight(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ds := httptest.NewServer(s.DebugHandler())
	defer ds.Close()

	release := make(chan struct{})
	entered := make(chan struct{})
	var once bool
	s.holdMatch = func() {
		if !once {
			once = true
			close(entered)
			<-release
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		postWithHeaders(t, ts.URL+"/v1/match", matchBody(poSourceXSD, poTargetXSD),
			map[string]string{"traceparent": clientTraceparent})
	}()
	<-entered

	resp, err := http.Get(ds.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(t, resp)
	resp.Body.Close()
	close(release)
	<-done

	var table struct {
		Requests []inflightEntry `json:"requests"`
	}
	if err := json.Unmarshal(body, &table); err != nil {
		t.Fatalf("/debug/requests is not JSON: %v\n%s", err, body)
	}
	var found *inflightEntry
	for i := range table.Requests {
		if table.Requests[i].TraceID == clientTraceID {
			found = &table.Requests[i]
		}
	}
	if found == nil {
		t.Fatalf("in-flight request not listed:\n%s", body)
	}
	if found.Route != "match" || found.Method != http.MethodPost {
		t.Fatalf("in-flight row = %+v", *found)
	}
	if found.AgeMs < 0 {
		t.Fatalf("negative age: %+v", *found)
	}

	// After completion the table drains.
	resp, err = http.Get(ds.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = readAll(t, resp)
	resp.Body.Close()
	table.Requests = nil
	if err := json.Unmarshal(body, &table); err != nil {
		t.Fatal(err)
	}
	for _, e := range table.Requests {
		if e.TraceID == clientTraceID {
			t.Fatalf("completed request still in-flight:\n%s", body)
		}
	}
}

// /debug/slow recalls a completed request by trace ID with its full
// hierarchical trace — request root, queue wait, and the grafted engine
// match spans — and exports it as Chrome trace events with &format=events.
func TestDebugSlowRecall(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ds := httptest.NewServer(s.DebugHandler())
	defer ds.Close()

	postWithHeaders(t, ts.URL+"/v1/match", matchBody(poSourceXSD, poTargetXSD),
		map[string]string{"traceparent": clientTraceparent})

	// The ring lists the completed request.
	resp, err := http.Get(ds.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(t, resp)
	resp.Body.Close()
	var ring struct {
		Slow []SlowRequest `json:"slow"`
	}
	if err := json.Unmarshal(body, &ring); err != nil {
		t.Fatalf("/debug/slow is not JSON: %v\n%s", err, body)
	}
	var hit bool
	for _, e := range ring.Slow {
		if e.TraceID == clientTraceID {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("completed request absent from the slow ring:\n%s", body)
	}

	// Recall by ID: the stitched trace has the request root, the queue
	// span and the grafted match pipeline.
	resp, err = http.Get(ds.URL + "/debug/slow?id=" + clientTraceID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = readAll(t, resp)
	resp.Body.Close()
	var entry SlowRequest
	if err := json.Unmarshal(body, &entry); err != nil {
		t.Fatal(err)
	}
	if entry.TraceID != clientTraceID || entry.Status != http.StatusOK {
		t.Fatalf("recalled entry = %+v", entry)
	}
	if entry.Trace == nil {
		t.Fatal("recalled entry has no trace")
	}
	phases := make(map[string]int)
	parents := make(map[string]int64)
	ids := make(map[string]int64)
	for _, sp := range entry.Trace.Spans {
		phases[string(sp.Phase)]++
		parents[string(sp.Phase)] = sp.ParentID
		ids[string(sp.Phase)] = sp.ID
	}
	for _, want := range []string{"request", "queue", "match", "intern", "pairtable", "select"} {
		if phases[want] == 0 {
			t.Fatalf("stitched trace missing %q span (got %v)", want, phases)
		}
	}
	if parents["request"] != 0 {
		t.Fatalf("request span is not the root: %v", parents)
	}
	if parents["queue"] != ids["request"] || parents["match"] != ids["request"] {
		t.Fatalf("queue/match not under the request root: parents=%v ids=%v", parents, ids)
	}
	if parents["intern"] != ids["match"] {
		t.Fatalf("intern not under match: parents=%v ids=%v", parents, ids)
	}

	// &format=events exports the same trace as a Chrome trace-event array.
	resp, err = http.Get(ds.URL + "/debug/slow?id=" + clientTraceID + "&format=events")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = readAll(t, resp)
	resp.Body.Close()
	var events []map[string]any
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("format=events is not a JSON array: %v\n%s", err, body)
	}
	if len(events) < len(entry.Trace.Spans) {
		t.Fatalf("%d events for %d spans", len(events), len(entry.Trace.Spans))
	}

	// Unknown trace IDs 404.
	resp, err = http.Get(ds.URL + "/debug/slow?id=ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ID: status %d, want 404", resp.StatusCode)
	}
}

// SlowRequests: 0 keeps the default ring, negative disables retention.
func TestSlowRingDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{SlowRequests: -1})
	ds := httptest.NewServer(s.DebugHandler())
	defer ds.Close()
	post(t, ts.URL+"/v1/match", matchBody(poSourceXSD, poTargetXSD))
	resp, err := http.Get(ds.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(t, resp)
	resp.Body.Close()
	var ring struct {
		Slow []SlowRequest `json:"slow"`
	}
	if err := json.Unmarshal(body, &ring); err != nil {
		t.Fatal(err)
	}
	if len(ring.Slow) != 0 {
		t.Fatalf("disabled ring retained %d entries", len(ring.Slow))
	}
}

// /v1/match?trace=1 switches the response to the match's trace-event
// export: a JSON array loadable in Perfetto, correlated to the request.
func TestMatchTraceEventsParam(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postWithHeaders(t, ts.URL+"/v1/match?trace=1", matchBody(poSourceXSD, poTargetXSD),
		map[string]string{"traceparent": clientTraceparent})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Request-Id"); got != clientTraceID {
		t.Fatalf("X-Request-Id = %q", got)
	}
	var events []map[string]any
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("?trace=1 body is not a trace-event array: %v\n%s", err, body)
	}
	var sawMatch bool
	for _, ev := range events {
		if name, _ := ev["name"].(string); name == "match" {
			if ph, _ := ev["ph"].(string); ph == "X" {
				sawMatch = true
			}
		}
	}
	if !sawMatch {
		t.Fatalf("no complete match event in export:\n%s", body)
	}
}

// The debug plane serves the standard Go profiling endpoints and expvar
// with both metric registries published.
func TestDebugPprofAndVars(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ds := httptest.NewServer(s.DebugHandler())
	defer ds.Close()

	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/goroutine?debug=1",
		"/debug/vars",
	} {
		resp, err := http.Get(ds.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
	}

	resp, err := http.Get(ds.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(t, resp)
	resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	for _, key := range []string{"qmatch", "qmatchd"} {
		if _, ok := vars[key]; !ok {
			t.Fatalf("/debug/vars missing %q registry", key)
		}
	}
}

// Runtime gauges from RegisterRuntimeGauges land in the service metrics.
func TestRuntimeGaugesExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(t, resp)
	resp.Body.Close()
	text := string(body)
	for _, metric := range []string{"qmatchd_goroutines", "qmatchd_heap_alloc_bytes", "qmatchd_uptime_seconds", "qmatch_build_info"} {
		if !strings.Contains(text, metric) {
			t.Fatalf("/metrics missing %s:\n%s", metric, text)
		}
	}
}
