// The registry endpoints of the qmatchd API: PUT/GET/DELETE
// /v1/schemas/{id} maintain a corpus of compiled schema artifacts
// (persistent when the server runs with -registry), and POST /v1/search
// ranks that corpus against a query schema — the vocabulary-overlap
// prefilter selects top-K candidates, only those pay for a full QoM match.
package serve

import (
	"context"
	"errors"
	"net/http"
	"time"

	"qmatch"
	"qmatch/internal/registry"
)

// PutSchemaRequest is the body of PUT /v1/schemas/{id}.
type PutSchemaRequest struct {
	// Schema is the document to compile and register.
	Schema *SchemaInput `json:"schema"`
	// LabelTokens extends the artifact's prefilter vocabulary with the
	// tokenized forms of compound labels (see qmatch.WithLabelTokens).
	LabelTokens bool `json:"labelTokens,omitempty"`
}

// SchemaEntryResponse is the body of a successful PUT or GET on
// /v1/schemas/{id}: the registry metadata, plus the schema rendered back
// to XSD on GET. On a PUT replacing an existing schema, Rematched reports
// the cached pair matches that were refreshed incrementally against the
// new version (see POST /v1/schemas/{id}/match/{other}).
type SchemaEntryResponse struct {
	registry.Entry
	XSD       string                 `json:"xsd,omitempty"`
	Rematched []registry.RefreshStat `json:"rematched,omitempty"`
}

// SchemaMatchRequest is the optional body of POST
// /v1/schemas/{id}/match/{other}; an empty body matches with the server
// defaults.
type SchemaMatchRequest struct {
	// TimeoutMs bounds the match (clamped to -max-timeout; 0 = default).
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// SchemaListResponse is the body of GET /v1/schemas.
type SchemaListResponse struct {
	Schemas []registry.Entry `json:"schemas"`
}

// SearchRequest is the body of POST /v1/search: one query schema ranked
// against the registered corpus.
type SearchRequest struct {
	Query *SchemaInput `json:"query"`
	// K bounds how many prefilter candidates pay for a full match
	// (0 = every registered schema).
	K int `json:"k,omitempty"`
	// LabelTokens compiles the query's prefilter vocabulary with label
	// tokens; set it when the corpus was registered that way.
	LabelTokens bool `json:"labelTokens,omitempty"`
	matchOptions
}

// SearchResponse is the ranked corpus search result.
type SearchResponse struct {
	Results []registry.Result    `json:"results"`
	Stats   registry.SearchStats `json:"stats"`
	// Trace carries the compile/prefilter phase spans when the request
	// asked for tracing.
	Trace *qmatch.MatchTrace `json:"trace,omitempty"`
}

// schemaID validates the {id} path segment; invalid ids fail with 400.
func schemaID(w http.ResponseWriter, r *http.Request) (string, bool) {
	id := r.PathValue("id")
	if err := registry.ValidateID(id); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return "", false
	}
	return id, true
}

func (s *Server) handlePutSchema(w http.ResponseWriter, r *http.Request) {
	id, ok := schemaID(w, r)
	if !ok {
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req PutSchemaRequest
	if !decode(w, r, &req) {
		return
	}
	schema, err := req.Schema.parse("schema")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var copts []qmatch.CompileOption
	if req.LabelTokens {
		copts = append(copts, qmatch.WithLabelTokens())
	}
	cs, err := s.engine.Compile(schema, copts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	created := !s.registry.Has(id)
	if created && s.registry.Len() >= s.cfg.MaxSchemas {
		writeError(w, http.StatusInsufficientStorage,
			"registry full: delete schemas or raise -max-schemas")
		return
	}
	// A re-PUT refreshes the registry's cached matches incrementally: the
	// previous version's pair tables seed Engine.Rematch, so only changed
	// subtrees of the new schema are rescored.
	refreshed, err := s.registry.PutRematch(id, cs, s.engine)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, SchemaEntryResponse{Entry: registry.EntryOf(id, cs), Rematched: refreshed})
}

// handleSchemaMatch matches two registered schemas by id on the compiled
// fast path, caching the report so a later re-PUT of either schema
// refreshes it incrementally. Cache status is reported in the
// X-Qmatchd-Cache header ("hit" or "miss"); the body is the library wire
// Report, with the rematch breakdown attached when the cached report came
// from an incremental refresh.
func (s *Server) handleSchemaMatch(w http.ResponseWriter, r *http.Request) {
	id, ok := schemaID(w, r)
	if !ok {
		return
	}
	other := r.PathValue("other")
	if err := registry.ValidateID(other); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var req SchemaMatchRequest
	if !decodeOptional(w, r, &req) {
		return
	}
	s.limited(w, r, req.TimeoutMs, func(ctx context.Context) {
		rep, cached, err := s.registry.Match(ctx, s.engine, id, other)
		if err != nil {
			if errors.Is(err, registry.ErrNotFound) {
				writeError(w, http.StatusNotFound, err.Error())
				return
			}
			s.writeDeadline(w, nil, err)
			return
		}
		if cached {
			w.Header().Set("X-Qmatchd-Cache", "hit")
		} else {
			w.Header().Set("X-Qmatchd-Cache", "miss")
		}
		w.Header().Set("Content-Type", "application/json")
		_ = rep.WriteJSON(w)
	})
}

func (s *Server) handleGetSchema(w http.ResponseWriter, r *http.Request) {
	id, ok := schemaID(w, r)
	if !ok {
		return
	}
	cs, err := s.registry.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, SchemaEntryResponse{
		Entry: registry.EntryOf(id, cs),
		XSD:   cs.Schema().XSD(),
	})
}

func (s *Server) handleDeleteSchema(w http.ResponseWriter, r *http.Request) {
	id, ok := schemaID(w, r)
	if !ok {
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if err := s.registry.Delete(id); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, registry.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListSchemas(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, SchemaListResponse{Schemas: s.registry.List()})
}

// handleSearch runs the corpus search under the same admission control as
// the matching endpoints — the full-rank stage is real match work — and,
// when tracing is requested, reports the pipeline as compile and
// prefilter phase spans alongside the search stats.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !decode(w, r, &req) {
		return
	}
	query, err := req.Query.parse("query")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	eng, err := s.engineFor(req.matchOptions)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var copts []qmatch.CompileOption
	if req.LabelTokens {
		copts = append(copts, qmatch.WithLabelTokens())
	}
	s.limited(w, r, req.TimeoutMs, func(ctx context.Context) {
		start := time.Now()
		compiled, err := eng.Compile(query, copts...)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		compileNs := time.Since(start).Nanoseconds()
		results, stats, err := s.registry.Search(ctx, eng, compiled, req.K)
		if err != nil {
			s.writeDeadline(w, nil, err)
			return
		}
		if results == nil {
			results = []registry.Result{}
		}
		resp := SearchResponse{Results: results, Stats: stats}
		if req.Trace {
			resp.Trace = &qmatch.MatchTrace{
				TotalNs: time.Since(start).Nanoseconds(),
				Spans: []qmatch.TraceSpan{
					{Phase: "compile", StartNs: 0, DurationNs: compileNs,
						SrcNodes: compiled.Size()},
					{Phase: "prefilter", StartNs: compileNs, DurationNs: stats.PrefilterNs,
						Cells: int64(stats.Corpus), Selected: stats.Candidates},
				},
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})
}
