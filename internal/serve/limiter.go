package serve

import (
	"context"
	"errors"
	"sync/atomic"

	"qmatch/internal/obs"
)

// ErrSaturated is returned by limiter.acquire when both the running-slot
// pool and the wait queue are full — the caller sheds the request with
// 429 instead of letting unbounded work pile up behind the matcher.
var ErrSaturated = errors.New("serve: limiter saturated")

// limiter bounds the matching work a server performs: at most maxConcurrent
// requests hold a slot at once, at most maxQueue more wait for one, and
// everything beyond that is rejected immediately. The queue-depth gauge
// and shed counter live in the server's HTTP metrics registry.
type limiter struct {
	sem      chan struct{}
	maxQueue int64
	queued   atomic.Int64
	depth    *obs.Gauge
	shed     *obs.Counter
}

func newLimiter(maxConcurrent, maxQueue int, depth *obs.Gauge, shed *obs.Counter) *limiter {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &limiter{
		sem:      make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
		depth:    depth,
		shed:     shed,
	}
}

// acquire takes a slot, waiting in the bounded queue when all slots are
// busy. It returns ErrSaturated when the queue is full (shed the request),
// or ctx.Err() when the request deadline expires while queued. Every nil
// return must be paired with a release.
func (l *limiter) acquire(ctx context.Context) error {
	select {
	case l.sem <- struct{}{}:
		return nil
	default:
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		l.shed.Inc()
		return ErrSaturated
	}
	l.depth.Set(l.queued.Load())
	defer func() {
		l.queued.Add(-1)
		l.depth.Set(l.queued.Load())
	}()
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// wait takes a slot without the shed bound: the caller queues
// indefinitely until a slot frees or ctx is cancelled. Async job shards
// use this path — no client connection is held open while they wait, so
// shedding them buys nothing, and blocking keeps background work from
// ever starving interactive requests of slots. Every nil return must be
// paired with a release.
func (l *limiter) wait(ctx context.Context) error {
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *limiter) release() { <-l.sem }
