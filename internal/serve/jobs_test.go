package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// submitJob posts one job and returns its id, failing on a non-202.
func submitJob(t *testing.T, url string, req JobSubmitRequest) string {
	t.Helper()
	resp, body := post(t, url+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var js JobStatusResponse
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	if js.ID == "" || js.Cells == 0 {
		t.Fatalf("submit response missing id/cells: %s", body)
	}
	return js.ID
}

// awaitJob polls the status endpoint until the job is terminal.
func awaitJob(t *testing.T, url, id string) JobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/jobs/" + id + "?shards=1")
		if err != nil {
			t.Fatal(err)
		}
		var js JobStatusResponse
		err = json.NewDecoder(resp.Body).Decode(&js)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if js.Status.Terminal() {
			return js
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal after 10s: %+v", id, js.Progress)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// streamResults drains GET /v1/jobs/{id}/results?after=N into report lines
// and the trailer.
func streamResults(t *testing.T, url, id string, after int) ([]JobResultLine, *JobResultTrailer) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/results?after=%d", url, id, after))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content type %q", ct)
	}
	var lines []JobResultLine
	var trailer *JobResultTrailer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if trailer != nil {
			t.Fatalf("line after trailer: %s", sc.Text())
		}
		if strings.Contains(sc.Text(), `"done"`) {
			trailer = &JobResultTrailer{}
			if err := json.Unmarshal(sc.Bytes(), trailer); err != nil {
				t.Fatalf("trailer: %v", err)
			}
			continue
		}
		var line JobResultLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("result line: %v", err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines, trailer
}

func compact(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// The acceptance pin of the job subsystem: a streamed job over a 2×2 grid
// is byte-identical, report for report, to the synchronous /v1/matchall
// response over the same grid — including when an injected shard failure
// forces a retry mid-job.
func TestJobResultsByteIdenticalToSyncMatchAll(t *testing.T) {
	// JobShardCost 1 forces one cell per shard, so the fault injector can
	// fail exactly one shard's first attempt while the others proceed.
	s, ts := newTestServer(t, Config{JobShardCost: 1})
	var fired atomic.Bool
	s.Jobs().SetFaultInjector(func(_ string, shard, attempt int) error {
		if shard == 1 && attempt == 1 {
			fired.Store(true)
			return errors.New("injected shard fault")
		}
		return nil
	})

	sources := []SchemaInput{{Data: poSourceXSD}, {Data: poTargetXSD}}
	targets := []SchemaInput{{Data: poTargetXSD}, {Data: poSourceXSD}}
	req := JobSubmitRequest{}
	for _, in := range sources {
		in := in
		req.Sources = append(req.Sources, JobSchemaRef{Schema: &in})
	}
	for _, in := range targets {
		in := in
		req.Targets = append(req.Targets, JobSchemaRef{Schema: &in})
	}
	id := submitJob(t, ts.URL, req)
	final := awaitJob(t, ts.URL, id)
	if final.Status != "completed" {
		t.Fatalf("job %s: %s (%s)", id, final.Status, final.Error)
	}
	if !fired.Load() || final.Retries < 1 {
		t.Fatalf("injected fault did not force a retry: fired=%v retries=%d", fired.Load(), final.Retries)
	}
	if final.ShardsTotal != 4 || final.ShardsDone != 4 {
		t.Fatalf("shards %d/%d, want 4/4", final.ShardsDone, final.ShardsTotal)
	}

	lines, trailer := streamResults(t, ts.URL, id, 0)
	if len(lines) != 4 {
		t.Fatalf("streamed %d cells, want 4", len(lines))
	}
	if trailer == nil || !trailer.Done || trailer.Status != "completed" || trailer.Cells != 4 {
		t.Fatalf("trailer = %+v", trailer)
	}

	// The synchronous grid over the same schemas.
	resp, body := post(t, ts.URL+"/v1/matchall", MatchAllRequest{Sources: sources, Targets: targets})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matchall: status %d: %s", resp.StatusCode, body)
	}
	var envelope struct {
		Reports [][]json.RawMessage `json:"reports"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatal(err)
	}
	for _, line := range lines {
		want := compact(t, envelope.Reports[line.Source][line.Target])
		got := compact(t, line.Report)
		if got != want {
			t.Errorf("cell %d (%d,%d): job report differs from sync matchall\njob:  %s\nsync: %s",
				line.Cell, line.Source, line.Target, got, want)
		}
	}
}

// A cut stream resumes with ?after=N without re-sending or skipping cells.
func TestJobResultsResume(t *testing.T) {
	_, ts := newTestServer(t, Config{JobShardCost: 1})
	req := JobSubmitRequest{
		Sources: []JobSchemaRef{{Schema: &SchemaInput{Data: poSourceXSD}}},
		Targets: []JobSchemaRef{
			{Schema: &SchemaInput{Data: poTargetXSD}},
			{Schema: &SchemaInput{Data: poSourceXSD}},
			{Schema: &SchemaInput{Data: poTargetXSD}},
		},
	}
	id := submitJob(t, ts.URL, req)
	awaitJob(t, ts.URL, id)

	full, _ := streamResults(t, ts.URL, id, 0)
	if len(full) != 3 {
		t.Fatalf("full stream has %d cells, want 3", len(full))
	}
	resumed, trailer := streamResults(t, ts.URL, id, 2)
	if len(resumed) != 1 || resumed[0].Cell != 2 {
		t.Fatalf("resumed stream = %+v, want exactly cell 2", resumed)
	}
	if trailer == nil || trailer.Status != "completed" {
		t.Fatalf("resumed trailer = %+v", trailer)
	}
	if compact(t, resumed[0].Report) != compact(t, full[2].Report) {
		t.Error("resumed cell 2 differs from the full stream's cell 2")
	}

	// Past-the-end cursor yields only the trailer; junk cursor is 400.
	none, trailer := streamResults(t, ts.URL, id, 99)
	if len(none) != 0 || trailer == nil {
		t.Fatalf("past-end stream = %d lines, trailer %+v", len(none), trailer)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/results?after=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk ?after: status %d, want 400", resp.StatusCode)
	}
}

// DELETE on an active job cancels it mid-shard; the in-flight attempt is
// abandoned and the stream closes with a cancelled trailer.
func TestJobCancelMidShardOverHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{JobShardCost: 1, JobWorkers: 1})
	block := make(chan struct{})
	var once sync.Once
	s.Jobs().SetFaultInjector(func(_ string, _, _ int) error {
		<-block // hold the first shard attempt until the test cancels
		return nil
	})
	defer once.Do(func() { close(block) })

	id := submitJob(t, ts.URL, JobSubmitRequest{
		Sources: []JobSchemaRef{{Schema: &SchemaInput{Data: poSourceXSD}}},
		Targets: []JobSchemaRef{{Schema: &SchemaInput{Data: poTargetXSD}}},
	})
	delReq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	var js JobStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || js.Status != "cancelled" {
		t.Fatalf("cancel: status %d job %s", resp.StatusCode, js.Status)
	}
	once.Do(func() { close(block) })

	lines, trailer := streamResults(t, ts.URL, id, 0)
	if len(lines) != 0 || trailer == nil || trailer.Status != "cancelled" {
		t.Fatalf("cancelled stream: %d lines, trailer %+v", len(lines), trailer)
	}
	// A second DELETE forgets the terminal job; polls turn 404.
	resp, err = http.DefaultClient.Do(delReq.Clone(delReq.Context()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forget: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("poll after forget: status %d, want 404", resp.StatusCode)
	}
}

// Registry-backed jobs resolve stored artifacts; submission errors map to
// the documented statuses.
func TestJobSubmitValidationOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxJobCells: 2})

	cases := []struct {
		name string
		req  JobSubmitRequest
		code int
	}{
		{"empty grid", JobSubmitRequest{}, http.StatusBadRequest},
		{"unknown registry id", JobSubmitRequest{
			Sources: []JobSchemaRef{{ID: "ghost"}},
			Targets: []JobSchemaRef{{Schema: &SchemaInput{Data: poTargetXSD}}},
		}, http.StatusNotFound},
		{"both id and schema", JobSubmitRequest{
			Sources: []JobSchemaRef{{ID: "x", Schema: &SchemaInput{Data: poSourceXSD}}},
			Targets: []JobSchemaRef{{Schema: &SchemaInput{Data: poTargetXSD}}},
		}, http.StatusBadRequest},
		{"neither id nor schema", JobSubmitRequest{
			Sources: []JobSchemaRef{{}},
			Targets: []JobSchemaRef{{Schema: &SchemaInput{Data: poTargetXSD}}},
		}, http.StatusBadRequest},
		{"grid over cell cap", JobSubmitRequest{
			Sources: []JobSchemaRef{{Schema: &SchemaInput{Data: poSourceXSD}}},
			Targets: []JobSchemaRef{
				{Schema: &SchemaInput{Data: poTargetXSD}},
				{Schema: &SchemaInput{Data: poTargetXSD}},
				{Schema: &SchemaInput{Data: poTargetXSD}},
			},
		}, http.StatusBadRequest},
		{"malformed schema", JobSubmitRequest{
			Sources: []JobSchemaRef{{Schema: &SchemaInput{Data: "<not-xsd>"}}},
			Targets: []JobSchemaRef{{Schema: &SchemaInput{Data: poTargetXSD}}},
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := post(t, ts.URL+"/v1/jobs", tc.req)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.code, body)
		}
	}
}

// A registry-backed job over stored artifacts completes and reports the
// registry ids in its progress; submissions are refused while draining.
func TestJobRegistryRefsAndDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	putBody := func(id, doc string) {
		b, _ := json.Marshal(PutSchemaRequest{Schema: &SchemaInput{Data: doc}})
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/schemas/"+id, bytes.NewReader(b))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("PUT %s: status %d", id, resp.StatusCode)
		}
	}
	putBody("po-src", poSourceXSD)
	putBody("po-tgt", poTargetXSD)

	id := submitJob(t, ts.URL, JobSubmitRequest{
		Sources: []JobSchemaRef{{ID: "po-src"}},
		Targets: []JobSchemaRef{{ID: "po-tgt"}},
	})
	final := awaitJob(t, ts.URL, id)
	if final.Status != "completed" {
		t.Fatalf("registry job: %s (%s)", final.Status, final.Error)
	}
	if len(final.SourceIDs) != 1 || final.SourceIDs[0] != "po-src" ||
		len(final.TargetIDs) != 1 || final.TargetIDs[0] != "po-tgt" {
		t.Fatalf("progress ids = %v / %v", final.SourceIDs, final.TargetIDs)
	}

	s.Drain()
	resp, body := post(t, ts.URL+"/v1/jobs", JobSubmitRequest{
		Sources: []JobSchemaRef{{ID: "po-src"}},
		Targets: []JobSchemaRef{{ID: "po-tgt"}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d (%s), want 503", resp.StatusCode, body)
	}
}

// The bounded store forgets the least-recently-polled completed job first.
func TestJobStoreEvictionOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxJobs: 2})
	req := JobSubmitRequest{
		Sources: []JobSchemaRef{{Schema: &SchemaInput{Data: poSourceXSD}}},
		Targets: []JobSchemaRef{{Schema: &SchemaInput{Data: poTargetXSD}}},
	}
	var ids []string
	for i := 0; i < 3; i++ {
		id := submitJob(t, ts.URL, req)
		awaitJob(t, ts.URL, id)
		ids = append(ids, id)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job poll: status %d, want 404", resp.StatusCode)
	}
	listResp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list JobListResponse
	err = json.NewDecoder(listResp.Body).Decode(&list)
	listResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 {
		t.Fatalf("list has %d jobs, want 2", len(list.Jobs))
	}
	for _, p := range list.Jobs {
		if p.ID == ids[0] {
			t.Fatalf("evicted job %s still listed", ids[0])
		}
	}
}

// Concurrent submit/poll/stream traffic across jobs stays consistent
// (run under -race in CI).
func TestConcurrentJobsOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{JobShardCost: 1, JobWorkers: 4})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := JobSubmitRequest{
				Sources: []JobSchemaRef{
					{Schema: &SchemaInput{Data: poSourceXSD}},
					{Schema: &SchemaInput{Data: poTargetXSD}},
				},
				Targets: []JobSchemaRef{{Schema: &SchemaInput{Data: poTargetXSD}}},
			}
			b, err := json.Marshal(req)
			if err != nil {
				errs <- err
				return
			}
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
			if err != nil {
				errs <- err
				return
			}
			var js JobStatusResponse
			err = json.NewDecoder(resp.Body).Decode(&js)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			// Follow the live stream to the trailer — this exercises the
			// Updated/ResultsFrom wait loop against concurrent shard acks.
			streamResp, err := http.Get(ts.URL + "/v1/jobs/" + js.ID + "/results")
			if err != nil {
				errs <- err
				return
			}
			defer streamResp.Body.Close()
			sc := bufio.NewScanner(streamResp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			cells, sawTrailer := 0, false
			for sc.Scan() {
				if strings.Contains(sc.Text(), `"done"`) {
					sawTrailer = true
					break
				}
				cells++
			}
			if err := sc.Err(); err != nil {
				errs <- err
				return
			}
			if cells != 2 || !sawTrailer {
				errs <- fmt.Errorf("job %s streamed %d cells (trailer %v), want 2", js.ID, cells, sawTrailer)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
