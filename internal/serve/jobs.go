// The async job endpoints of the qmatchd API: POST /v1/jobs submits a
// large sources×targets MatchAll grid to the sharded coordinator
// (internal/jobs) and returns immediately with a job id; GET /v1/jobs/{id}
// polls per-shard progress; GET /v1/jobs/{id}/results streams completed
// cells as NDJSON, resumable with ?after=; DELETE /v1/jobs/{id} cancels.
// Schemas come inline or by registry id, so a corpus registered once can
// be batch-matched without re-shipping documents.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"qmatch"
	"qmatch/internal/jobs"
	"qmatch/internal/obs"
	"qmatch/internal/registry"
)

// JobSchemaRef names one grid side entry of a job submission: either a
// registered schema by id (its compiled artifact is used directly — no
// re-parse) or an inline document compiled at submission time. Exactly one
// of the two must be set.
type JobSchemaRef struct {
	// ID selects a registered schema (PUT /v1/schemas/{id}).
	ID string `json:"id,omitempty"`
	// Schema ships the document inline.
	Schema *SchemaInput `json:"schema,omitempty"`
}

// JobSubmitRequest is the body of POST /v1/jobs. The embedded match
// options select the engine exactly as on /v1/matchall; TimeoutMs is
// ignored — a job is not bounded by a request deadline, it runs until
// done, failed or cancelled.
type JobSubmitRequest struct {
	Sources []JobSchemaRef `json:"sources"`
	Targets []JobSchemaRef `json:"targets"`
	matchOptions
}

// JobStatusResponse is the body of POST /v1/jobs (202) and GET
// /v1/jobs/{id} (200): the job's progress snapshot, with per-shard detail
// when the poll asked for ?shards=1 and the finished job's hierarchical
// trace (one span per shard attempt) when it asked for ?trace=1.
type JobStatusResponse struct {
	jobs.Progress
	Trace *obs.MatchTrace `json:"trace,omitempty"`
}

// JobListResponse is the body of GET /v1/jobs, newest submission first.
type JobListResponse struct {
	Jobs []jobs.Progress `json:"jobs"`
}

// JobResultLine is one NDJSON line of GET /v1/jobs/{id}/results: cell
// sources[source]×targets[target] of the grid, with the report serialized
// exactly as the synchronous /v1/matchall embeds it.
type JobResultLine struct {
	// Cell is the row-major cell index (source×targets + target) — feed
	// the count of lines received to ?after= to resume here.
	Cell   int             `json:"cell"`
	Source int             `json:"source"`
	Target int             `json:"target"`
	Report json.RawMessage `json:"report"`
}

// JobResultTrailer is the final NDJSON line of a drained stream: the
// job's terminal status. A stream that ends without a trailer was cut
// (client disconnect, server shutdown) — resume with ?after=.
type JobResultTrailer struct {
	Done   bool        `json:"done"`
	Status jobs.Status `json:"status"`
	Error  string      `json:"error,omitempty"`
	// Cells counts the cells with results across the whole job (not just
	// this stream) — equals the grid size iff the job completed.
	Cells int `json:"cells"`
}

// resolveJobRefs turns one grid side of a submission into compiled
// schemas: registry ids resolve to their stored artifacts, inline
// documents are parsed and compiled through eng. The returned names
// mirror the refs for progress display ("inline" for inline entries).
func (s *Server) resolveJobRefs(refs []JobSchemaRef, role string, eng *qmatch.Engine) ([]*qmatch.CompiledSchema, []string, int, error) {
	schemas := make([]*qmatch.CompiledSchema, len(refs))
	names := make([]string, len(refs))
	for i, ref := range refs {
		switch {
		case ref.ID != "" && ref.Schema != nil:
			return nil, nil, http.StatusBadRequest,
				fmt.Errorf("%s[%d]: set id or schema, not both", role, i)
		case ref.ID != "":
			cs, err := s.registry.Get(ref.ID)
			if err != nil {
				if errors.Is(err, registry.ErrNotFound) {
					return nil, nil, http.StatusNotFound, fmt.Errorf("%s[%d]: %w", role, i, err)
				}
				return nil, nil, http.StatusInternalServerError, fmt.Errorf("%s[%d]: %w", role, i, err)
			}
			schemas[i], names[i] = cs, ref.ID
		case ref.Schema != nil:
			parsed, err := ref.Schema.parse(fmt.Sprintf("%s[%d]", role, i))
			if err != nil {
				return nil, nil, http.StatusBadRequest, err
			}
			cs, err := eng.Compile(parsed)
			if err != nil {
				return nil, nil, http.StatusBadRequest, fmt.Errorf("%s[%d]: %w", role, i, err)
			}
			schemas[i], names[i] = cs, "inline"
		default:
			return nil, nil, http.StatusBadRequest,
				fmt.Errorf("%s[%d]: need a registry id or an inline schema", role, i)
		}
	}
	return schemas, names, 0, nil
}

// handleSubmitJob accepts a job: resolve the grid sides, hand them to the
// coordinator, answer 202 with the initial progress snapshot. Submission
// is control-plane work (compiling inline schemas is parse-cheap relative
// to matching) and does not take a match slot; the shards take one each
// when they run.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req JobSubmitRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Sources) == 0 || len(req.Targets) == 0 {
		writeError(w, http.StatusBadRequest, "need at least one source and one target schema")
		return
	}
	if cells := len(req.Sources) * len(req.Targets); cells > s.cfg.MaxJobCells {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("grid of %d cells exceeds the %d-cell job limit", cells, s.cfg.MaxJobCells))
		return
	}
	eng, err := s.engineFor(req.matchOptions)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sources, srcIDs, status, err := s.resolveJobRefs(req.Sources, "sources", eng)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	targets, tgtIDs, status, err := s.resolveJobRefs(req.Targets, "targets", eng)
	if err != nil {
		writeError(w, status, err.Error())
		return
	}
	job, err := s.jobs.Submit(obs.NewSpanID(), jobs.Spec{
		Sources:   sources,
		Targets:   targets,
		Engine:    eng,
		SourceIDs: srcIDs,
		TargetIDs: tgtIDs,
	})
	if err != nil {
		if errors.Is(err, jobs.ErrClosed) {
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, JobStatusResponse{Progress: job.Progress(false)})
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, JobListResponse{Jobs: s.jobs.List()})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	resp := JobStatusResponse{Progress: job.Progress(r.URL.Query().Get("shards") == "1")}
	if r.URL.Query().Get("trace") == "1" {
		// Available once the job is terminal; omitted while it runs.
		resp.Trace = job.Trace()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCancelJob implements DELETE /v1/jobs/{id}: an active job is
// cancelled (and retained for a final poll), a terminal job is forgotten.
// Either way the body is the job's final progress.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	p, err := s.jobs.Delete(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, JobStatusResponse{Progress: p})
}

// handleJobResults streams the job's completed cells as NDJSON in cell
// order, one JobResultLine per cell, following the job live until it
// reaches a terminal state, then a JobResultTrailer. ?after=N skips the
// first N cells — a disconnected client resumes by passing the count of
// report lines it already holds.
func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	cursor := 0
	if after := r.URL.Query().Get("after"); after != "" {
		cursor, err = strconv.Atoi(after)
		if err != nil || cursor < 0 {
			writeError(w, http.StatusBadRequest, "after must be a non-negative cell count")
			return
		}
	}
	nt := len(job.Spec().Targets)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	for {
		// Grab the update channel BEFORE snapshotting: a transition landing
		// between snapshot and wait still closes this channel, so the wait
		// below cannot miss it.
		updated := job.Updated()
		results, status, errMsg := job.ResultsFrom(cursor)
		for _, raw := range results {
			line, merr := json.Marshal(JobResultLine{
				Cell: cursor, Source: cursor / nt, Target: cursor % nt, Report: raw,
			})
			if merr != nil {
				return
			}
			if _, werr := w.Write(append(line, '\n')); werr != nil {
				return // client gone; it resumes with ?after=
			}
			cursor++
		}
		if len(results) > 0 {
			_ = rc.Flush()
		}
		if status.Terminal() {
			// Everything acknowledged is streamed (a failed/cancelled job
			// stops at its ready frontier); close with the trailer.
			p := job.Progress(false)
			trailer, _ := json.Marshal(JobResultTrailer{
				Done: true, Status: status, Error: errMsg, Cells: p.CompletedCells,
			})
			_, _ = w.Write(append(trailer, '\n'))
			_ = rc.Flush()
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		}
	}
}
