package serve

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// apiDocHeadings extracts the "### `METHOD /pattern`" endpoint headings
// from API.md — the contract the doc-coverage test pins.
var apiDocHeading = regexp.MustCompile("(?m)^### `([A-Z]+) (/[^`]+)`")

// TestAPIDocCoversRouteTable keeps API.md and the route table in
// lockstep, both directions: every served route must have a heading, and
// every documented service endpoint must exist in the route table (so
// renames and removals can't leave stale docs behind). The debug plane
// is not in routes(); its endpoints are pinned explicitly.
func TestAPIDocCoversRouteTable(t *testing.T) {
	data, err := os.ReadFile("../../API.md")
	if err != nil {
		t.Fatalf("API.md: %v", err)
	}
	documented := map[string]bool{}
	for _, m := range apiDocHeading.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]+" "+m[2]] = true
	}
	if len(documented) == 0 {
		t.Fatal("API.md has no `### `METHOD /pattern`` endpoint headings")
	}

	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	served := map[string]bool{}
	for _, rt := range s.routes() {
		key := rt.method + " " + rt.pattern
		served[key] = true
		if !documented[key] {
			t.Errorf("API.md is missing a heading for route %q (name %s)", key, rt.name)
		}
	}

	debugEndpoints := []string{
		"GET /debug/pprof/",
		"GET /debug/vars",
		"GET /debug/requests",
		"GET /debug/slow",
	}
	for _, d := range debugEndpoints {
		if !documented[d] {
			t.Errorf("API.md is missing a heading for debug endpoint %q", d)
		}
	}

	debugSet := map[string]bool{}
	for _, d := range debugEndpoints {
		debugSet[d] = true
	}
	for key := range documented {
		if strings.HasPrefix(strings.SplitN(key, " ", 2)[1], "/debug/") {
			if !debugSet[key] {
				t.Errorf("API.md documents unknown debug endpoint %q", key)
			}
			continue
		}
		if !served[key] {
			t.Errorf("API.md documents %q, which is not in the route table", key)
		}
	}
}
