// Request and response wire types of the qmatchd HTTP API. Reports are
// served verbatim through Report.WriteJSON, so the response body of
// /v1/match is byte-identical to the library wire format pinned by
// testdata/wire_golden.json — the service adds envelope types only where
// a request carries more than one report.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"qmatch"
)

// SchemaInput is one schema shipped inside a request body.
type SchemaInput struct {
	// Format selects the parser: "xsd" (default), "dtd", "xml" (schema
	// inference from an instance document), "jsonschema" (alias
	// "json"), "ddl" (alias "sql"), or "auto" (content sniffing via
	// qmatch.DetectFormat).
	Format string `json:"format,omitempty"`
	// Data is the schema document text.
	Data string `json:"data"`
	// Root names the DTD root element ("" = first declared element) or
	// the DDL database label ("" = "db"). Ignored for the other
	// formats.
	Root string `json:"root,omitempty"`
}

// parse resolves the input into a Schema; role names the field in errors.
func (in *SchemaInput) parse(role string) (*qmatch.Schema, error) {
	if in == nil || in.Data == "" {
		return nil, fmt.Errorf("missing %s schema data", role)
	}
	var (
		s   *qmatch.Schema
		err error
	)
	switch strings.ToLower(in.Format) {
	case "", "xsd":
		s, err = qmatch.ParseSchemaString(in.Data)
	case "dtd":
		s, err = qmatch.ParseDTDString(in.Data, in.Root)
	case "xml":
		s, err = qmatch.InferSchemaString(in.Data)
	case "jsonschema", "json":
		s, err = qmatch.ParseJSONSchemaString(in.Data)
	case "ddl", "sql":
		s, err = qmatch.ParseDDLString(in.Data, in.Root)
	case "auto":
		// Unrecognized content surfaces qmatch.ErrUnknownFormat with
		// the sniffed prefix — the 400 body names what was seen.
		var format qmatch.Format
		format, err = qmatch.DetectFormat([]byte(in.Data))
		if err == nil && (format == qmatch.FormatDTD || format == qmatch.FormatDDL) {
			return (&SchemaInput{Format: string(format), Data: in.Data, Root: in.Root}).parse(role)
		}
		if err == nil {
			return (&SchemaInput{Format: string(format), Data: in.Data}).parse(role)
		}
	default:
		return nil, fmt.Errorf("%s: unknown schema format %q (want xsd, dtd, xml, jsonschema, ddl or auto)", role, in.Format)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", role, err)
	}
	return s, nil
}

func parseAll(ins []SchemaInput, role string) ([]*qmatch.Schema, error) {
	out := make([]*qmatch.Schema, len(ins))
	for i := range ins {
		s, err := ins[i].parse(fmt.Sprintf("%s[%d]", role, i))
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// WeightsInput overrides the hybrid QoM axis weights for one request.
type WeightsInput struct {
	Label      float64 `json:"label"`
	Properties float64 `json:"properties"`
	Level      float64 `json:"level"`
	Children   float64 `json:"children"`
}

// matchOptions are the per-request matcher overrides shared by every
// matching endpoint; they select the pooled Engine that serves the
// request.
type matchOptions struct {
	// Algorithm overrides the server's default matcher.
	Algorithm string `json:"algorithm,omitempty"`
	// Threshold overrides the selection threshold.
	Threshold *float64 `json:"threshold,omitempty"`
	// Weights overrides the hybrid axis weights.
	Weights *WeightsInput `json:"weights,omitempty"`
	// Trace attaches the per-phase pipeline trace to every report —
	// the service equivalent of the qmatch CLI's -trace flag.
	Trace bool `json:"trace,omitempty"`
	// TimeoutMs bounds the request's matching work in milliseconds
	// (clamped to the server's -max-timeout; 0 selects the server
	// default). On expiry the request fails with 504.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// MatchRequest is the body of POST /v1/match.
type MatchRequest struct {
	Source *SchemaInput `json:"source"`
	Target *SchemaInput `json:"target"`
	matchOptions
}

// MatchAllRequest is the body of POST /v1/matchall: the full
// sources×targets grid is matched on the Engine's worker pool.
type MatchAllRequest struct {
	Sources []SchemaInput `json:"sources"`
	Targets []SchemaInput `json:"targets"`
	matchOptions
}

// MatchAllResponse carries the grid, indexed reports[i][j] =
// match(sources[i], targets[j]); each report uses the library wire format.
type MatchAllResponse struct {
	Reports [][]*qmatch.Report `json:"reports"`
}

// RankRequest is the body of POST /v1/rank: one query schema scored
// against a corpus, returned in descending tree-QoM order.
type RankRequest struct {
	Query  *SchemaInput  `json:"query"`
	Corpus []SchemaInput `json:"corpus"`
	matchOptions
}

// RankedResult is one corpus entry of a rank response.
type RankedResult struct {
	// Index is the schema's position in the request corpus.
	Index int `json:"index"`
	// Score is the query→schema tree QoM.
	Score float64 `json:"score"`
	// Correspondences are the element mappings found for this schema.
	Correspondences []qmatch.Correspondence `json:"correspondences"`
}

// RankResponse is the corpus sorted by descending score (ties by index).
type RankResponse struct {
	Ranked []RankedResult `json:"ranked"`
}

// errorBody is the JSON error envelope of every non-2xx response. Trace
// carries the partial pipeline trace of a deadline-exceeded match when the
// request asked for tracing.
type errorBody struct {
	Error string             `json:"error"`
	Trace *qmatch.MatchTrace `json:"trace,omitempty"`
}

// decode reads the JSON request body into v, translating the body-size
// cap into 413 and malformed JSON into 400. It reports whether the
// request may proceed.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return true
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
		return false
	}
	writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed request: %v", err))
	return false
}

// decodeOptional is decode for endpoints whose body is optional: an empty
// body leaves v at its zero value and proceeds.
func decodeOptional(w http.ResponseWriter, r *http.Request, v any) bool {
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil || errors.Is(err, io.EOF) {
		return true
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
		return false
	}
	writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed request: %v", err))
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}
