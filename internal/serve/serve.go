// Package serve implements qmatchd, the network-facing entry point of the
// matcher: an HTTP service exposing the Engine's match, batch-match and
// rank operations over untrusted schemas, hardened for long-running
// deployments — bounded request bodies, a concurrency limiter with
// load-shedding, per-request deadlines propagated into the pair-table
// fill, Prometheus metrics and structured access logs, and draining
// shutdown. See DESIGN.md §9 for the architecture.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qmatch"
	"qmatch/internal/jobs"
	"qmatch/internal/obs"
	"qmatch/internal/registry"
)

// The service's HTTP metric names, maintained in the server's own
// registry (the Engine's match metrics live in the Engine registry; GET
// /metrics exposes both). Request counters and duration histograms carry
// route (and for counters, status code) labels.
const (
	MetricHTTPRequests  = "qmatchd_http_requests_total"
	MetricHTTPDuration  = "qmatchd_http_request_duration_seconds"
	MetricHTTPInflight  = "qmatchd_http_inflight_requests"
	MetricQueueDepth    = "qmatchd_http_queue_depth"
	MetricShed          = "qmatchd_http_shed_total"
	MetricEngineBuilds  = "qmatchd_engine_builds_total"
	MetricEnginesPooled = "qmatchd_engines_pooled"
)

// Config tunes a Server. The zero value is usable: every limit falls back
// to the documented default.
type Config struct {
	// Options configure the server's default Engine and seed every
	// pooled per-request-override Engine (algorithm, weights,
	// thesaurus, parallelism, ...).
	Options []qmatch.Option
	// Logger receives structured access logs and Engine lifecycle
	// events. Nil disables logging.
	Logger *slog.Logger
	// MaxConcurrent bounds the matches running at once (default
	// GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds the requests waiting for a match slot; beyond it
	// requests are shed with 429. Negative selects 2×MaxConcurrent;
	// 0 disables queueing (shed as soon as all slots are busy).
	MaxQueue int
	// MaxBodyBytes caps request bodies; larger requests fail with 413
	// (default 4 MiB).
	MaxBodyBytes int64
	// MaxPairs caps the schema-pair grid of one request —
	// len(sources)×len(targets) for /v1/matchall, len(corpus) for
	// /v1/rank (default 4096). Oversized grids fail with 400.
	MaxPairs int
	// DefaultTimeout bounds a request's matching work when the request
	// carries no timeoutMs (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied timeouts (default 60s).
	MaxTimeout time.Duration
	// MaxEngines bounds the pool of per-override Engines (default 8).
	// Requests whose override key misses a full pool still succeed on
	// a throwaway Engine; only reuse is lost.
	MaxEngines int
	// RegistryDir backs the schema registry with a directory of encoded
	// artifact blobs, reloaded on startup. Empty selects a memory-only
	// registry (entries vanish on restart).
	RegistryDir string
	// MaxSchemas bounds the registry; PUTs beyond it fail with 507
	// until entries are deleted (default 4096).
	MaxSchemas int
	// SlowRequests bounds the /debug/slow ring of slowest completed
	// requests kept with their full traces (default 32; negative
	// disables the ring).
	SlowRequests int
	// MaxJobs bounds terminal async jobs retained for polling; beyond it
	// the least-recently-polled completed job is evicted (default 64).
	MaxJobs int
	// JobWorkers bounds the async job shard workers (default
	// max(1, MaxConcurrent/2) — jobs are background work and must not
	// monopolize the admission slots interactive requests share).
	JobWorkers int
	// JobShardCost is the pair-table cost budget of one job shard, in
	// sourceNodes×targetNodes units (default 1<<20).
	JobShardCost int64
	// JobRetries bounds re-dispatches of one failed shard (default 3).
	JobRetries int
	// MaxJobCells caps the source×target grid of one submitted job
	// (default 65536). Oversized submissions fail with 400 — the
	// synchronous MaxPairs cap does not apply to jobs.
	MaxJobCells int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.MaxPairs <= 0 {
		c.MaxPairs = 4096
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxEngines < 1 {
		c.MaxEngines = 8
	}
	if c.MaxSchemas < 1 {
		c.MaxSchemas = 4096
	}
	if c.SlowRequests == 0 {
		c.SlowRequests = 32
	}
	if c.MaxJobs < 1 {
		c.MaxJobs = 64
	}
	if c.JobWorkers < 1 {
		c.JobWorkers = c.MaxConcurrent / 2
		if c.JobWorkers < 1 {
			c.JobWorkers = 1
		}
	}
	if c.JobShardCost == 0 {
		c.JobShardCost = 1 << 20
	}
	if c.MaxJobCells < 1 {
		c.MaxJobCells = 65536
	}
	return c
}

// Server is the qmatchd HTTP service: a default Engine (which owns the
// match metrics the /metrics endpoint exposes), a bounded pool of
// per-override Engines, the concurrency limiter, and the HTTP metrics
// registry. Construct with New, mount Handler() on an http.Server, call
// Drain before shutting the http.Server down.
type Server struct {
	cfg    Config
	logger *slog.Logger

	engine   *qmatch.Engine // default engine; owns qmatch_* metrics
	registry *registry.Registry
	jobs     *jobs.Manager

	mu      sync.Mutex
	engines map[engineKey]*qmatch.Engine

	reg      *obs.Registry // HTTP metrics
	limiter  *limiter
	inflight *obs.Gauge
	builds   *obs.Counter
	pooled   *obs.Gauge
	tracker  *requestTracker // debug plane: in-flight + slow tables

	draining atomic.Bool

	// holdMatch, when non-nil, runs inside the limited section of every
	// matching request, after the slot is acquired and the deadline
	// context started, before the Engine runs. Tests use it to pin the
	// limiter saturated or to force a deadline past expiry
	// deterministically.
	holdMatch func()
}

// New builds a Server, compiling the default Engine from cfg.Options. The
// default Engine always collects match metrics and logs through
// cfg.Logger; tracing engines are pooled on demand when requests ask for
// traces.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	// Every log line — access logs, Engine match summaries, registry
	// lifecycle events — flows through the correlation handler, which
	// stamps trace_id/request_id from the log call's context. Lines logged
	// without a correlated context pass through unchanged.
	if cfg.Logger != nil {
		cfg.Logger = slog.New(obs.NewCorrelationHandler(cfg.Logger.Handler()))
	}
	s := &Server{
		cfg:     cfg,
		logger:  cfg.Logger,
		engines: make(map[engineKey]*qmatch.Engine),
		reg:     obs.NewRegistry(),
		tracker: newRequestTracker(cfg.SlowRequests),
	}
	// WithRematchState makes the default Engine's compiled-path reports
	// carry their pair tables, so registry re-PUTs refresh cached matches
	// incrementally (see handlePutSchema). Only registry matches take the
	// compiled path; the schema-in-body endpoints are unaffected.
	eng, err := qmatch.NewEngine(append(cfg.Options[:len(cfg.Options):len(cfg.Options)],
		qmatch.WithObserver(qmatch.Observer{Logger: cfg.Logger, Metrics: true}),
		qmatch.WithRematchState())...)
	if err != nil {
		return nil, fmt.Errorf("serve: default engine: %w", err)
	}
	s.engine = eng
	s.registry, err = registry.Open(cfg.RegistryDir)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.RegistryDir != "" && cfg.Logger != nil {
		cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, "registry loaded",
			slog.String("dir", cfg.RegistryDir), slog.Int("schemas", s.registry.Len()))
	}
	s.inflight = s.reg.Gauge(MetricHTTPInflight)
	s.builds = s.reg.Counter(MetricEngineBuilds)
	s.pooled = s.reg.Gauge(MetricEnginesPooled)
	s.limiter = newLimiter(cfg.MaxConcurrent, cfg.MaxQueue,
		s.reg.Gauge(MetricQueueDepth), s.reg.Counter(MetricShed))
	// Process vitals for the debug plane ride in the HTTP registry, so one
	// /metrics scrape carries match, HTTP and runtime series.
	obs.RegisterRuntimeGauges(s.reg, "qmatchd")
	s.builds.Inc()
	// The async job coordinator shares the admission limiter: every shard
	// attempt waits for a match slot (without the shed bound — no client
	// connection is held open), so background jobs and interactive
	// requests draw from one concurrency budget.
	s.jobs = jobs.New(jobs.Config{
		Engine:     s.engine,
		Workers:    cfg.JobWorkers,
		ShardCost:  cfg.JobShardCost,
		MaxRetries: cfg.JobRetries,
		MaxJobs:    cfg.MaxJobs,
		Gate: func(ctx context.Context) (func(), error) {
			if err := s.limiter.wait(ctx); err != nil {
				return nil, err
			}
			return s.limiter.release, nil
		},
		Metrics: s.reg,
		Logger:  cfg.Logger,
	})
	return s, nil
}

// Jobs returns the server's async job coordinator (tests inject shard
// faults through it).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Close releases the server's background resources: the job coordinator's
// workers stop and every active job is cancelled. Call it after the HTTP
// server has shut down; a Server is not usable afterwards.
func (s *Server) Close() { s.jobs.Close() }

// Engine returns the server's default Engine (the one /metrics scrapes).
func (s *Server) Engine() *qmatch.Engine { return s.engine }

// Drain moves the server into shutdown: /healthz turns 503 so load
// balancers stop routing here, and new matching requests are refused with
// 503, while requests already past admission keep running — pair with
// http.Server.Shutdown, which waits for those in-flight handlers.
func (s *Server) Drain() {
	if s.draining.CompareAndSwap(false, true) && s.logger != nil {
		s.logger.LogAttrs(context.Background(), slog.LevelInfo, "draining")
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// route is one entry of the service's versioned route table: the HTTP
// method and pattern it answers (Go 1.22 ServeMux syntax, wildcards
// allowed), the short name that labels its metrics and access-log lines,
// and the handler. Every route passes through the same instrument wrapper
// — body cap, in-flight gauge, duration histogram, status counter, access
// log — so adding an endpoint (a future /v1/jobs, say) is one line here.
type route struct {
	method  string
	pattern string
	name    string
	handler http.HandlerFunc
}

// routes returns the service's API surface, the single registration point
// Handler builds the mux from:
//
//	POST   /v1/match         one schema pair     → Report (library wire format)
//	POST   /v1/matchall      sources×targets     → {"reports": [[Report...]...]}
//	POST   /v1/rank          query vs corpus     → {"ranked": [...]}
//	PUT    /v1/schemas/{id}  register schema     → registry entry (201/200);
//	                         re-PUTs refresh cached matches incrementally
//	GET    /v1/schemas/{id}  inspect entry       → registry entry + XSD
//	DELETE /v1/schemas/{id}  unregister          → 204
//	GET    /v1/schemas       list registry       → {"schemas": [...]}
//	POST   /v1/schemas/{id}/match/{other}
//	                         match two registered schemas → Report (cached)
//	POST   /v1/search        query vs registry   → {"results": [...]}
//	POST   /v1/jobs          submit an async MatchAll job → 202 + job id
//	GET    /v1/jobs          list retained jobs  → {"jobs": [...]}
//	GET    /v1/jobs/{id}     poll job status     → progress (+ per-shard
//	                         detail with ?shards=1, trace with ?trace=1)
//	GET    /v1/jobs/{id}/results
//	                         stream completed cells as NDJSON, resumable
//	                         with ?after=N
//	DELETE /v1/jobs/{id}     cancel an active job / forget a finished one
//	GET    /healthz          liveness            → 200 "ok" / 503 "draining"
//	GET    /metrics          Prometheus text: Engine + HTTP registries
func (s *Server) routes() []route {
	return []route{
		{http.MethodPost, "/v1/match", "match", s.handleMatch},
		{http.MethodPost, "/v1/matchall", "matchall", s.handleMatchAll},
		{http.MethodPost, "/v1/rank", "rank", s.handleRank},
		{http.MethodPut, "/v1/schemas/{id}", "schema_put", s.handlePutSchema},
		{http.MethodGet, "/v1/schemas/{id}", "schema_get", s.handleGetSchema},
		{http.MethodDelete, "/v1/schemas/{id}", "schema_delete", s.handleDeleteSchema},
		{http.MethodGet, "/v1/schemas", "schema_list", s.handleListSchemas},
		{http.MethodPost, "/v1/schemas/{id}/match/{other}", "schema_match", s.handleSchemaMatch},
		{http.MethodPost, "/v1/search", "search", s.handleSearch},
		{http.MethodPost, "/v1/jobs", "job_submit", s.handleSubmitJob},
		{http.MethodGet, "/v1/jobs", "job_list", s.handleListJobs},
		{http.MethodGet, "/v1/jobs/{id}", "job_status", s.handleJobStatus},
		{http.MethodGet, "/v1/jobs/{id}/results", "job_results", s.handleJobResults},
		{http.MethodDelete, "/v1/jobs/{id}", "job_cancel", s.handleCancelJob},
		{http.MethodGet, "/healthz", "healthz", s.handleHealthz},
		{http.MethodGet, "/metrics", "metrics", s.handleMetrics},
	}
}

// Handler builds the service's HTTP handler from the route table; see
// routes for the endpoint list.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		mux.Handle(rt.method+" "+rt.pattern, s.instrument(rt.name, rt.handler))
	}
	return mux
}

// statusWriter captures the response status for metrics and access logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flusher — the NDJSON job-result stream flushes after every batch.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// activeRequestKey carries the request's debug-plane record through
// context so handlers (the ?trace=1 export) can reach it.
type activeRequestKey struct{}

func activeRequest(ctx context.Context) *ActiveRequest {
	ar, _ := ctx.Value(activeRequestKey{}).(*ActiveRequest)
	return ar
}

// instrument wraps a route handler with the request body cap, in-flight
// gauge, per-route duration histogram, per-route/status counter, the
// structured access log, and the correlation layer: the W3C traceparent of
// the request (generated when the client sent none) becomes the trace ID
// echoed in X-Request-Id, stamped on every log line, threaded through
// context into the Engine, and attached to the request-level trace whose
// stitched form /debug/slow serves.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	dur := s.reg.Histogram(obs.LabeledName(MetricHTTPDuration, "route", route), nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		// Correlation: adopt the client's trace ID when the traceparent is
		// well-formed, mint one otherwise. The request ID identifies this
		// hop alone and doubles as the server's span ID in the traceparent
		// echoed to the client.
		traceID, _, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			traceID = obs.NewTraceID()
		}
		requestID := obs.NewSpanID()
		w.Header().Set("X-Request-Id", traceID)
		w.Header().Set("traceparent", obs.FormatTraceparent(traceID, requestID))

		// The request-level trace: a "request" root span that engine match
		// traces are grafted under (via the context trace sink), plus the
		// queue-wait span limited() adds. The per-request cost is a few
		// small allocations; match work dominates every route where it
		// matters.
		reqTrace := obs.NewTrace()
		reqTrace.SetID(traceID)
		cell := &obs.PhaseCell{}
		reqTrace.SetPhaseCell(cell)
		reqSpan := reqTrace.StartSpan(obs.PhaseRequest)
		reqTrace.SetParent(reqSpan)
		ar := s.tracker.start(route, r.Method, r.RemoteAddr, traceID, requestID, cell)

		ctx := obs.ContextWithIDs(r.Context(), traceID, requestID)
		ctx = obs.ContextWithPhaseCell(ctx, cell)
		ctx = obs.ContextWithTrace(ctx, reqTrace)
		ctx = obs.ContextWithTraceSink(ctx, func(mt *obs.MatchTrace) {
			// Place the engine trace on the request timeline: its clock
			// started TotalNs before this sink call.
			ar.attach(mt, reqTrace.SinceStartNs()-mt.TotalNs)
		})
		ctx = context.WithValue(ctx, activeRequestKey{}, ar)
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.inflight.Add(1)
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start)
		s.inflight.Add(-1)
		reqSpan.End()
		s.tracker.finish(ar, sw.status, elapsed, ar.stitch(reqTrace.Finish(), reqSpan.ID()))
		dur.Observe(elapsed.Seconds())
		s.reg.Counter(obs.LabeledName(MetricHTTPRequests,
			"route", route, "code", strconv.Itoa(sw.status))).Inc()
		if s.logger != nil {
			s.logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("route", route),
				slog.String("method", r.Method),
				slog.Int("status", sw.status),
				slog.Duration("elapsed", elapsed),
				slog.String("remote", r.RemoteAddr))
		}
	})
}

// timeout resolves the effective deadline of one request.
func (s *Server) timeout(ms int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// limited runs fn under the server's admission control: refused while
// draining (503), shed when the limiter saturates (429), 504 when the
// deadline expires while queued. fn receives the deadline context.
func (s *Server) limited(w http.ResponseWriter, r *http.Request, timeoutMs int64, fn func(ctx context.Context)) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(timeoutMs))
	defer cancel()
	// The admission wait gets its own span on the request trace, so a
	// /debug/slow entry distinguishes "queued behind other matches" from
	// "the match itself was slow".
	qs := obs.TraceFromContext(ctx).StartSpan(obs.PhaseQueue)
	err := s.limiter.acquire(ctx)
	qs.End()
	if err != nil {
		if errors.Is(err, ErrSaturated) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "match capacity saturated, retry later")
			return
		}
		writeError(w, http.StatusGatewayTimeout, "deadline expired while queued for a match slot")
		return
	}
	defer s.limiter.release()
	if s.holdMatch != nil {
		s.holdMatch()
	}
	fn(ctx)
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	var req MatchRequest
	if !decode(w, r, &req) {
		return
	}
	src, err := req.Source.parse("source")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tgt, err := req.Target.parse("target")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	eng, err := s.engineFor(req.matchOptions)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// ?trace=1 switches the response to the Chrome trace-event export of
	// the match's pipeline trace (loadable in Perfetto) instead of the
	// Report body — the service-side equivalent of qmatch -trace-out.
	wantEvents := r.URL.Query().Get("trace") == "1"
	s.limited(w, r, req.TimeoutMs, func(ctx context.Context) {
		report, err := eng.MatchContext(ctx, src, tgt)
		if err != nil {
			s.writeDeadline(w, report, err)
			return
		}
		if wantEvents {
			if mt := activeRequest(ctx).lastEngineTrace(); mt != nil {
				w.Header().Set("Content-Type", "application/json")
				_ = mt.WriteTraceEvents(w)
				return
			}
			writeError(w, http.StatusUnprocessableEntity,
				"no trace recorded: the engine has observability disabled")
			return
		}
		// Serve the report through the library serializer so the body
		// is byte-identical to Engine.Match wire output.
		w.Header().Set("Content-Type", "application/json")
		_ = report.WriteJSON(w)
	})
}

func (s *Server) handleMatchAll(w http.ResponseWriter, r *http.Request) {
	var req MatchAllRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Sources) == 0 || len(req.Targets) == 0 {
		writeError(w, http.StatusBadRequest, "need at least one source and one target schema")
		return
	}
	if pairs := len(req.Sources) * len(req.Targets); pairs > s.cfg.MaxPairs {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("grid of %d pairs exceeds the %d-pair limit", pairs, s.cfg.MaxPairs))
		return
	}
	sources, err := parseAll(req.Sources, "sources")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	targets, err := parseAll(req.Targets, "targets")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	eng, err := s.engineFor(req.matchOptions)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.limited(w, r, req.TimeoutMs, func(ctx context.Context) {
		reports, err := eng.MatchAll(ctx, sources, targets)
		if err != nil {
			s.writeDeadline(w, nil, err)
			return
		}
		writeJSON(w, http.StatusOK, MatchAllResponse{Reports: reports})
	})
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	var req RankRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Corpus) == 0 {
		writeError(w, http.StatusBadRequest, "need at least one corpus schema")
		return
	}
	if len(req.Corpus) > s.cfg.MaxPairs {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("corpus of %d schemas exceeds the %d-pair limit", len(req.Corpus), s.cfg.MaxPairs))
		return
	}
	query, err := req.Query.parse("query")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	corpus, err := parseAll(req.Corpus, "corpus")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	eng, err := s.engineFor(req.matchOptions)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.limited(w, r, req.TimeoutMs, func(ctx context.Context) {
		// Rank through MatchAll so the request deadline reaches into
		// in-flight fills; one query row over the corpus yields the
		// same scores and correspondences as Engine.Rank.
		rows, err := eng.MatchAll(ctx, []*qmatch.Schema{query}, corpus)
		if err != nil {
			s.writeDeadline(w, nil, err)
			return
		}
		ranked := make([]RankedResult, len(corpus))
		for i, rep := range rows[0] {
			ranked[i] = RankedResult{
				Index:           i,
				Score:           rep.TreeQoM,
				Correspondences: rep.Correspondences,
			}
		}
		sort.SliceStable(ranked, func(i, j int) bool {
			if ranked[i].Score != ranked[j].Score {
				return ranked[i].Score > ranked[j].Score
			}
			return ranked[i].Index < ranked[j].Index
		})
		writeJSON(w, http.StatusOK, RankResponse{Ranked: ranked})
	})
}

// writeDeadline serves the 504 of an expired match. When the aborted
// match produced a partial report with a trace (Observer.Tracing engines),
// the trace rides along as the timeout diagnostic: its cut-short spans are
// marked partial and count the work done before the abort.
func (s *Server) writeDeadline(w http.ResponseWriter, report *qmatch.Report, err error) {
	body := errorBody{Error: fmt.Sprintf("match aborted: %v", err)}
	if report != nil && report.Trace != nil {
		body.Trace = report.Trace
	}
	writeJSON(w, http.StatusGatewayTimeout, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics writes the default Engine's registry (match counters,
// durations, label-cache gauges) followed by the server's HTTP registry,
// both in the Prometheus text format. Pooled per-override Engines keep
// their own registries and are not scraped here.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.engine.WriteMetrics(w); err != nil {
		return
	}
	_ = s.reg.WritePrometheus(w)
}
