// The qmatchd debug plane: a second, operator-facing HTTP surface meant
// for a loopback/admin listener (-debug-addr), kept off the public API
// handler on purpose — pprof and the request tables expose internals that
// have no place on a service port. It carries the standard Go profiling
// endpoints, expvar, and two request tables fed by the correlation
// middleware: /debug/requests (every in-flight request with its age,
// route, trace ID and current pipeline phase) and /debug/slow (a bounded
// ring of the slowest completed requests with their full hierarchical
// traces, exportable as Chrome trace events).
package serve

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"qmatch/internal/obs"
)

// ActiveRequest is the live record of one in-flight request, created by the
// instrument middleware and visible in /debug/requests until the handler
// returns. The phase cell is written by the Engine on every span start;
// grafts accumulate finished engine traces for the request's stitched
// trace.
type ActiveRequest struct {
	id        int64
	route     string
	method    string
	remote    string
	traceID   string
	requestID string
	start     time.Time
	cell      *obs.PhaseCell

	mu     sync.Mutex
	grafts []traceGraft
}

// traceGraft is one finished engine trace waiting to be stitched under the
// request span: the trace plus where its clock started on the request
// timeline.
type traceGraft struct {
	mt       *obs.MatchTrace
	offsetNs int64
}

// maxGraftsPerRequest bounds the traces kept per request: a /v1/matchall
// grid runs one engine match per pair, and an unbounded request would
// retain every one of them. The first grafts win (they cover the request's
// ramp-up, which is what slow-request debugging looks at first).
const maxGraftsPerRequest = 64

// attach records one finished engine trace; offsetNs places the trace's
// clock start on the request timeline. Safe for concurrent MatchAll
// workers.
func (ar *ActiveRequest) attach(mt *obs.MatchTrace, offsetNs int64) {
	if ar == nil || mt == nil {
		return
	}
	ar.mu.Lock()
	if len(ar.grafts) < maxGraftsPerRequest {
		ar.grafts = append(ar.grafts, traceGraft{mt: mt, offsetNs: offsetNs})
	}
	ar.mu.Unlock()
}

// lastEngineTrace returns the most recently attached engine trace (nil when
// none ran) — what /v1/match?trace=1 exports.
func (ar *ActiveRequest) lastEngineTrace() *obs.MatchTrace {
	if ar == nil {
		return nil
	}
	ar.mu.Lock()
	defer ar.mu.Unlock()
	if len(ar.grafts) == 0 {
		return nil
	}
	return ar.grafts[len(ar.grafts)-1].mt
}

// stitch grafts the accumulated engine traces under the request trace's
// root span, producing the full hierarchical trace /debug/slow serves.
func (ar *ActiveRequest) stitch(reqMT *obs.MatchTrace, rootSpanID int64) *obs.MatchTrace {
	if ar == nil || reqMT == nil {
		return reqMT
	}
	ar.mu.Lock()
	grafts := ar.grafts
	ar.grafts = nil
	ar.mu.Unlock()
	for _, g := range grafts {
		reqMT.Graft(g.mt, rootSpanID, g.offsetNs)
	}
	return reqMT
}

// SlowRequest is one completed entry of the /debug/slow ring.
type SlowRequest struct {
	Route      string          `json:"route"`
	Method     string          `json:"method"`
	Status     int             `json:"status"`
	TraceID    string          `json:"traceId"`
	RequestID  string          `json:"requestId"`
	Start      time.Time       `json:"start"`
	DurationMs float64         `json:"durationMs"`
	Trace      *obs.MatchTrace `json:"trace,omitempty"`
}

// requestTracker maintains the two debug tables: the in-flight request map
// and the bounded ring of slowest completed requests (kept sorted by
// duration, descending; admission evicts the fastest entry).
type requestTracker struct {
	mu     sync.Mutex
	nextID int64
	active map[int64]*ActiveRequest
	slow   []SlowRequest
	keep   int
}

func newRequestTracker(keep int) *requestTracker {
	return &requestTracker{active: make(map[int64]*ActiveRequest), keep: keep}
}

func (t *requestTracker) start(route, method, remote, traceID, requestID string, cell *obs.PhaseCell) *ActiveRequest {
	ar := &ActiveRequest{
		route: route, method: method, remote: remote,
		traceID: traceID, requestID: requestID,
		start: time.Now(), cell: cell,
	}
	t.mu.Lock()
	t.nextID++
	ar.id = t.nextID
	t.active[ar.id] = ar
	t.mu.Unlock()
	return ar
}

// finish retires an in-flight request and offers it to the slow ring.
func (t *requestTracker) finish(ar *ActiveRequest, status int, elapsed time.Duration, trace *obs.MatchTrace) {
	if ar == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.active, ar.id)
	if t.keep <= 0 {
		return
	}
	if len(t.slow) == t.keep && elapsed.Seconds()*1e3 <= t.slow[len(t.slow)-1].DurationMs {
		return
	}
	entry := SlowRequest{
		Route: ar.route, Method: ar.method, Status: status,
		TraceID: ar.traceID, RequestID: ar.requestID,
		Start: ar.start, DurationMs: float64(elapsed.Nanoseconds()) / 1e6,
		Trace: trace,
	}
	t.slow = append(t.slow, entry)
	sort.SliceStable(t.slow, func(i, j int) bool {
		return t.slow[i].DurationMs > t.slow[j].DurationMs
	})
	if len(t.slow) > t.keep {
		t.slow = t.slow[:t.keep]
	}
}

// inflightEntry is one row of the /debug/requests table.
type inflightEntry struct {
	ID        int64   `json:"id"`
	Route     string  `json:"route"`
	Method    string  `json:"method"`
	Remote    string  `json:"remote"`
	TraceID   string  `json:"traceId"`
	RequestID string  `json:"requestId"`
	AgeMs     float64 `json:"ageMs"`
	Phase     string  `json:"phase,omitempty"`
}

func (t *requestTracker) inflight() []inflightEntry {
	now := time.Now()
	t.mu.Lock()
	out := make([]inflightEntry, 0, len(t.active))
	for _, ar := range t.active {
		out = append(out, inflightEntry{
			ID: ar.id, Route: ar.route, Method: ar.method, Remote: ar.remote,
			TraceID: ar.traceID, RequestID: ar.requestID,
			AgeMs: float64(now.Sub(ar.start).Nanoseconds()) / 1e6,
			Phase: string(ar.cell.Get()),
		})
	}
	t.mu.Unlock()
	// Oldest first: the request most likely stuck tops the table.
	sort.Slice(out, func(i, j int) bool { return out[i].AgeMs > out[j].AgeMs })
	return out
}

func (t *requestTracker) slowSnapshot() []SlowRequest {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SlowRequest, len(t.slow))
	copy(out, t.slow)
	return out
}

// findSlow recalls one slow entry by trace ID.
func (t *requestTracker) findSlow(traceID string) (SlowRequest, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.slow {
		if e.TraceID == traceID {
			return e, true
		}
	}
	return SlowRequest{}, false
}

// DebugHandler builds the admin-plane handler qmatchd mounts on
// -debug-addr:
//
//	/debug/pprof/...   the standard Go profiling endpoints
//	/debug/vars        expvar (the Engine and HTTP metric registries are
//	                   published as "qmatch" and "qmatchd")
//	/debug/requests    the in-flight request table (age, route, trace ID,
//	                   current pipeline phase)
//	/debug/slow        the N slowest completed requests with full traces;
//	                   ?id=<traceID> recalls one, &format=events exports
//	                   its trace in the Chrome trace-event format
func (s *Server) DebugHandler() http.Handler {
	// expvar registrations are process-global and permanent; both Publish
	// calls are idempotent so repeated Server construction (tests) is safe.
	s.engine.PublishExpvar("qmatch")
	s.reg.Publish("qmatchd")
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	mux.HandleFunc("/debug/slow", s.handleDebugSlow)
	return mux
}

func (s *Server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	writeDebugJSON(w, map[string]any{"requests": s.tracker.inflight()})
}

func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeDebugJSON(w, map[string]any{"slow": s.tracker.slowSnapshot()})
		return
	}
	entry, ok := s.tracker.findSlow(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no slow-request entry for trace ID "+id)
		return
	}
	if r.URL.Query().Get("format") == "events" {
		if entry.Trace == nil {
			writeError(w, http.StatusNotFound, "entry has no trace")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = entry.Trace.WriteTraceEvents(w)
		return
	}
	writeDebugJSON(w, entry)
}

func writeDebugJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
