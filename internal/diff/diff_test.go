package diff

import (
	"strings"
	"testing"

	"qmatch/internal/xmltree"
)

// v1 is the "old" purchase-order schema version.
func v1() *xmltree.Node {
	return xmltree.NewTree("Order", xmltree.Elem(""),
		xmltree.New("OrderNo", xmltree.Elem("integer")),
		xmltree.New("Quantity", xmltree.Elem("integer")),
		xmltree.New("LegacyCode", xmltree.Elem("string")),
		xmltree.NewTree("Shipping", xmltree.Elem(""),
			xmltree.New("Street", xmltree.Elem("string")),
			xmltree.New("City", xmltree.Elem("string")),
		),
	)
}

// v2 renames Quantity → Qty, widens OrderNo's type, drops LegacyCode, and
// adds a TrackingId.
func v2() *xmltree.Node {
	return xmltree.NewTree("Order", xmltree.Elem(""),
		xmltree.New("OrderNo", xmltree.Elem("long")),
		xmltree.New("Qty", xmltree.Elem("integer")),
		xmltree.NewTree("Shipping", xmltree.Elem(""),
			xmltree.New("Street", xmltree.Elem("string")),
			xmltree.New("City", xmltree.Elem("string")),
		),
		xmltree.New("TrackingId", xmltree.Elem("string")),
	)
}

func TestSchemaEvolution(t *testing.T) {
	r := Schemas(v1(), v2(), nil)
	counts := r.Counts()
	if counts[Renamed] != 1 {
		t.Errorf("renamed = %d\n%s", counts[Renamed], r.Format(true))
	}
	if counts[Modified] != 1 { // OrderNo type widened
		t.Errorf("modified = %d\n%s", counts[Modified], r.Format(true))
	}
	if counts[Removed] != 1 { // LegacyCode
		t.Errorf("removed = %d\n%s", counts[Removed], r.Format(true))
	}
	if counts[Added] != 1 { // TrackingId
		t.Errorf("added = %d\n%s", counts[Added], r.Format(true))
	}
	if counts[Unchanged] < 4 { // Order, Shipping, Street, City
		t.Errorf("unchanged = %d\n%s", counts[Unchanged], r.Format(true))
	}

	renamed := r.ByKind(Renamed)[0]
	if renamed.OldPath != "Order/Quantity" || renamed.NewPath != "Order/Qty" {
		t.Errorf("rename = %+v", renamed)
	}
	if !strings.Contains(renamed.Detail, "label") {
		t.Errorf("rename detail = %q", renamed.Detail)
	}
	modified := r.ByKind(Modified)[0]
	if !strings.Contains(modified.Detail, "type integer -> long") {
		t.Errorf("modified detail = %q", modified.Detail)
	}
}

func TestIdenticalSchemas(t *testing.T) {
	r := Schemas(v1(), v1(), nil)
	counts := r.Counts()
	if counts[Unchanged] != v1().Size() {
		t.Fatalf("counts = %v\n%s", counts, r.Format(true))
	}
	for k, n := range counts {
		if k != Unchanged && n != 0 {
			t.Fatalf("unexpected %v entries: %d", k, n)
		}
	}
}

func TestMoveDetection(t *testing.T) {
	oldTree := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.NewTree("GroupA", xmltree.Elem(""),
			xmltree.New("SerialNumber", xmltree.Elem("string")),
			xmltree.New("Alpha", xmltree.Elem("date")),
		),
		xmltree.NewTree("GroupB", xmltree.Elem(""),
			xmltree.New("Beta", xmltree.Elem("boolean")),
			xmltree.New("Gamma", xmltree.Elem("decimal")),
		),
	)
	newTree := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.NewTree("GroupA", xmltree.Elem(""),
			xmltree.New("Alpha", xmltree.Elem("date")),
		),
		xmltree.NewTree("GroupB", xmltree.Elem(""),
			xmltree.New("Beta", xmltree.Elem("boolean")),
			xmltree.New("Gamma", xmltree.Elem("decimal")),
			xmltree.New("SerialNumber", xmltree.Elem("string")),
		),
	)
	r := Schemas(oldTree, newTree, nil)
	moved := r.ByKind(Moved)
	if len(moved) != 1 || moved[0].OldPath != "R/GroupA/SerialNumber" {
		t.Fatalf("moved = %v\n%s", moved, r.Format(true))
	}
	if !strings.Contains(moved[0].Detail, "parent R/GroupA -> R/GroupB") {
		t.Fatalf("move detail = %q", moved[0].Detail)
	}
}

func TestOccursAndFacetChanges(t *testing.T) {
	oldTree := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.New("V", xmltree.Elem("string")),
	)
	newTree := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.New("V", xmltree.Elem("string").Optional().Repeated()),
	)
	r := Schemas(oldTree, newTree, nil)
	mods := r.ByKind(Modified)
	if len(mods) != 1 {
		t.Fatalf("mods = %v\n%s", mods, r.Format(true))
	}
	if !strings.Contains(mods[0].Detail, "occurs [1..1] -> [0..*]") {
		t.Fatalf("detail = %q", mods[0].Detail)
	}
}

func TestFormatAndStrings(t *testing.T) {
	r := Schemas(v1(), v2(), nil)
	out := r.Format(false)
	if !strings.Contains(out, "schema diff:") || !strings.Contains(out, "renamed") {
		t.Fatalf("format:\n%s", out)
	}
	if strings.Contains(out, "unchanged  Order/Shipping") {
		t.Fatal("non-verbose format lists unchanged entries")
	}
	verbose := r.Format(true)
	if !strings.Contains(verbose, "Order/Shipping") {
		t.Fatalf("verbose format missing unchanged entries:\n%s", verbose)
	}
	for _, k := range []Kind{Unchanged, Renamed, Modified, Moved, Removed, Added} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}
