// Package diff analyzes schema evolution: given an old and a new version
// of a schema, it aligns the two trees with the hybrid matcher and
// classifies every element as unchanged, renamed, modified, moved, added
// or removed. Schema matching is the engine; versioned-schema diffing is
// one of its classic applications (and the research lineage of the QMatch
// authors' earlier schema-evolution work).
package diff

import (
	"fmt"
	"sort"
	"strings"

	"qmatch/internal/core"
	"qmatch/internal/lingo"
	"qmatch/internal/xmltree"
)

// Kind classifies one element's evolution.
type Kind int

const (
	// Unchanged: same label, same properties, same parent mapping.
	Unchanged Kind = iota
	// Renamed: matched element with a different label.
	Renamed
	// Modified: matched element with property changes.
	Modified
	// Moved: matched element whose parent maps to a different element.
	Moved
	// Removed: old element with no counterpart.
	Removed
	// Added: new element with no counterpart.
	Added
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Renamed:
		return "renamed"
	case Modified:
		return "modified"
	case Moved:
		return "moved"
	case Removed:
		return "removed"
	case Added:
		return "added"
	default:
		return "unchanged"
	}
}

// Entry is one element's evolution record. Renames, modifications and
// moves carry both paths; additions only NewPath; removals only OldPath.
// An element can be renamed and modified and moved at once — Kind reports
// the most structural of the applicable changes (Moved > Renamed >
// Modified) and Detail lists all of them.
type Entry struct {
	Kind    Kind
	OldPath string
	NewPath string
	Detail  string
}

// String renders "renamed  Order/Qty -> Order/Quantity (label)".
func (e Entry) String() string {
	switch e.Kind {
	case Added:
		return fmt.Sprintf("%-9s %s", e.Kind, e.NewPath)
	case Removed:
		return fmt.Sprintf("%-9s %s", e.Kind, e.OldPath)
	case Unchanged:
		return fmt.Sprintf("%-9s %s", e.Kind, e.OldPath)
	default:
		return fmt.Sprintf("%-9s %s -> %s (%s)", e.Kind, e.OldPath, e.NewPath, e.Detail)
	}
}

// Report is the full evolution analysis of a schema pair.
type Report struct {
	Entries []Entry
}

// ByKind returns the entries of one kind, in path order.
func (r *Report) ByKind(k Kind) []Entry {
	var out []Entry
	for _, e := range r.Entries {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Counts returns how many entries fall in each kind.
func (r *Report) Counts() map[Kind]int {
	out := map[Kind]int{}
	for _, e := range r.Entries {
		out[e.Kind]++
	}
	return out
}

// Format renders the report grouped by kind, omitting unchanged elements
// unless verbose is set.
func (r *Report) Format(verbose bool) string {
	var b strings.Builder
	counts := r.Counts()
	fmt.Fprintf(&b, "schema diff: %d unchanged, %d renamed, %d modified, %d moved, %d removed, %d added\n",
		counts[Unchanged], counts[Renamed], counts[Modified], counts[Moved], counts[Removed], counts[Added])
	for _, k := range []Kind{Renamed, Modified, Moved, Removed, Added} {
		for _, e := range r.ByKind(k) {
			b.WriteString("  " + e.String() + "\n")
		}
	}
	if verbose {
		for _, e := range r.ByKind(Unchanged) {
			b.WriteString("  " + e.String() + "\n")
		}
	}
	return b.String()
}

// Schemas aligns the old and new schema versions and classifies every
// element. The matcher is the hybrid QMatch with the built-in thesaurus
// (nil th), or a custom thesaurus.
func Schemas(oldTree, newTree *xmltree.Node, th *lingo.Thesaurus) *Report {
	h := core.NewHybrid(th)
	correspondences := h.Match(oldTree, newTree)

	oldToNew := map[string]string{}
	newToOld := map[string]string{}
	for _, c := range correspondences {
		oldToNew[c.Source] = c.Target
		newToOld[c.Target] = c.Source
	}

	var entries []Entry
	oldTree.Walk(func(o *xmltree.Node) bool {
		newPath, ok := oldToNew[o.Path()]
		if !ok {
			entries = append(entries, Entry{Kind: Removed, OldPath: o.Path()})
			return true
		}
		n := newTree.Find(newPath)
		entries = append(entries, classify(o, n, oldToNew))
		return true
	})
	newTree.Walk(func(n *xmltree.Node) bool {
		if _, ok := newToOld[n.Path()]; !ok {
			entries = append(entries, Entry{Kind: Added, NewPath: n.Path()})
		}
		return true
	})
	sort.SliceStable(entries, func(i, j int) bool {
		pi, pj := entries[i].OldPath, entries[j].OldPath
		if pi == "" {
			pi = entries[i].NewPath
		}
		if pj == "" {
			pj = entries[j].NewPath
		}
		return pi < pj
	})
	return &Report{Entries: entries}
}

// classify inspects one matched pair for renames, property changes and
// moves.
func classify(o, n *xmltree.Node, oldToNew map[string]string) Entry {
	var changes []string
	moved := false
	if op, np := o.Parent(), n.Parent(); op != nil && np != nil {
		if mapped, ok := oldToNew[op.Path()]; ok && mapped != np.Path() {
			moved = true
			changes = append(changes, fmt.Sprintf("parent %s -> %s", op.Path(), np.Path()))
		}
	}
	renamed := o.Label != n.Label
	if renamed {
		changes = append(changes, "label")
	}
	changes = append(changes, propertyChanges(o.Props.Norm(), n.Props.Norm())...)

	e := Entry{OldPath: o.Path(), NewPath: n.Path(), Detail: strings.Join(changes, ", ")}
	switch {
	case moved:
		e.Kind = Moved
	case renamed:
		e.Kind = Renamed
	case len(changes) > 0:
		e.Kind = Modified
	default:
		e.Kind = Unchanged
	}
	return e
}

// propertyChanges lists human-readable differences between two property
// sets, ignoring sibling order (reordering alone is not an evolution
// event worth reporting).
func propertyChanges(a, b xmltree.Properties) []string {
	var out []string
	if !xmltree.TypeEqual(a.Type, b.Type) {
		out = append(out, fmt.Sprintf("type %s -> %s",
			orNone(a.Type), orNone(b.Type)))
	}
	if a.MinOccurs != b.MinOccurs || a.MaxOccurs != b.MaxOccurs {
		out = append(out, fmt.Sprintf("occurs %s -> %s", occurs(a), occurs(b)))
	}
	if a.IsAttribute != b.IsAttribute {
		out = append(out, "element/attribute kind")
	}
	if a.Nillable != b.Nillable {
		out = append(out, "nillable")
	}
	if a.Fixed != b.Fixed {
		out = append(out, "fixed value")
	}
	if a.Default != b.Default {
		out = append(out, "default value")
	}
	return out
}

func orNone(t string) string {
	if t == "" {
		return "(none)"
	}
	return t
}

func occurs(p xmltree.Properties) string {
	max := fmt.Sprint(p.MaxOccurs)
	if p.MaxOccurs == xmltree.Unbounded {
		max = "*"
	}
	return fmt.Sprintf("[%d..%s]", p.MinOccurs, max)
}
