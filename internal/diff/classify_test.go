package diff

import (
	"strings"
	"testing"

	"qmatch/internal/xmltree"
)

// classifyPair runs classify on the roots' i-th children with an identity
// parent mapping — a harness for the precedence and detail rules without
// the matcher in the loop.
func classifyPair(o, n *xmltree.Node) Entry {
	oldToNew := map[string]string{}
	o.Walk(func(x *xmltree.Node) bool {
		oldToNew[x.Path()] = x.Path()
		return true
	})
	return classify(o.Children[0], n.Children[0], oldToNew)
}

// An element renamed and retyped in the same evolution step must classify
// as Renamed (the more structural change wins) while the detail still
// lists every change, so nothing is silently dropped.
func TestClassifyRenamePlusPropertyChange(t *testing.T) {
	o := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.New("Quantity", xmltree.Elem("integer")))
	n := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.New("Qty", xmltree.Elem("decimal").Optional()))
	// Identity mapping keyed by old paths: point the old child at itself so
	// the parent check sees "same parent".
	e := classify(o.Children[0], n.Children[0], map[string]string{
		"R": "R", "R/Quantity": "R/Qty",
	})
	if e.Kind != Renamed {
		t.Fatalf("kind = %v, want renamed: %+v", e.Kind, e)
	}
	for _, want := range []string{"label", "type integer -> decimal", "occurs [1..1] -> [0..1]"} {
		if !strings.Contains(e.Detail, want) {
			t.Errorf("detail %q lacks %q", e.Detail, want)
		}
	}
}

// A move combined with a rename must classify as Moved — the topmost rung
// of the precedence ladder — with both changes in the detail.
func TestClassifyMovePlusRename(t *testing.T) {
	oldTree := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.NewTree("A", xmltree.Elem(""),
			xmltree.New("X", xmltree.Elem("string"))),
		xmltree.NewTree("B", xmltree.Elem("")))
	newTree := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.NewTree("A", xmltree.Elem("")),
		xmltree.NewTree("B", xmltree.Elem(""),
			xmltree.New("Y", xmltree.Elem("string"))))
	oldToNew := map[string]string{"R": "R", "R/A": "R/A", "R/B": "R/B", "R/A/X": "R/B/Y"}
	e := classify(oldTree.Find("R/A/X"), newTree.Find("R/B/Y"), oldToNew)
	if e.Kind != Moved {
		t.Fatalf("kind = %v, want moved: %+v", e.Kind, e)
	}
	if !strings.Contains(e.Detail, "parent R/A -> R/B") || !strings.Contains(e.Detail, "label") {
		t.Fatalf("detail = %q, want parent change and label", e.Detail)
	}
}

// Every occurs-bounds transition renders with the [min..max] notation,
// unbounded as *; equal bounds report nothing.
func TestClassifyOccursBounds(t *testing.T) {
	cases := []struct {
		name     string
		old, new xmltree.Properties
		want     string // empty = no occurs change reported
	}{
		{"min only", xmltree.Elem("string"), xmltree.Elem("string").Optional(), "occurs [1..1] -> [0..1]"},
		{"max to unbounded", xmltree.Elem("string"), xmltree.Elem("string").Repeated(), "occurs [1..1] -> [1..*]"},
		{"unbounded back to one", xmltree.Elem("string").Repeated(), xmltree.Elem("string"), "occurs [1..*] -> [1..1]"},
		{"both bounds", xmltree.Elem("string"), xmltree.Elem("string").Optional().Repeated(), "occurs [1..1] -> [0..*]"},
		{"equal bounds", xmltree.Elem("string").Optional(), xmltree.Elem("string").Optional(), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := xmltree.NewTree("R", xmltree.Elem(""), xmltree.New("V", tc.old))
			n := xmltree.NewTree("R", xmltree.Elem(""), xmltree.New("V", tc.new))
			e := classifyPair(o, n)
			switch {
			case tc.want == "" && e.Kind != Unchanged:
				t.Fatalf("kind = %v, want unchanged: %+v", e.Kind, e)
			case tc.want != "" && e.Kind != Modified:
				t.Fatalf("kind = %v, want modified: %+v", e.Kind, e)
			case tc.want != "" && !strings.Contains(e.Detail, tc.want):
				t.Fatalf("detail = %q, want %q", e.Detail, tc.want)
			}
		})
	}
}

// Moving a whole subtree: the subtree's root reports Moved, while its
// descendants — whose parents map consistently — stay Unchanged. Only the
// point of re-attachment is an evolution event, not everything under it.
func TestMovedSubtreeChildrenStayUnchanged(t *testing.T) {
	address := func() *xmltree.Node {
		return xmltree.NewTree("Address", xmltree.Elem(""),
			xmltree.New("Street", xmltree.Elem("string")),
			xmltree.New("City", xmltree.Elem("string")),
			xmltree.New("Zip", xmltree.Elem("string")))
	}
	oldTree := xmltree.NewTree("Order", xmltree.Elem(""),
		xmltree.NewTree("Customer", xmltree.Elem(""),
			xmltree.New("Name", xmltree.Elem("string")),
			address()),
		xmltree.NewTree("Shipping", xmltree.Elem(""),
			xmltree.New("Carrier", xmltree.Elem("string"))))
	newTree := xmltree.NewTree("Order", xmltree.Elem(""),
		xmltree.NewTree("Customer", xmltree.Elem(""),
			xmltree.New("Name", xmltree.Elem("string"))),
		xmltree.NewTree("Shipping", xmltree.Elem(""),
			xmltree.New("Carrier", xmltree.Elem("string")),
			address()))
	r := Schemas(oldTree, newTree, nil)
	moved := r.ByKind(Moved)
	if len(moved) != 1 || moved[0].OldPath != "Order/Customer/Address" {
		t.Fatalf("moved = %v\n%s", moved, r.Format(true))
	}
	if moved[0].NewPath != "Order/Shipping/Address" ||
		!strings.Contains(moved[0].Detail, "parent Order/Customer -> Order/Shipping") {
		t.Fatalf("moved entry = %+v", moved[0])
	}
	// Street/City/Zip follow their parent without being evolution events.
	for _, leaf := range []string{"Street", "City", "Zip"} {
		found := false
		for _, e := range r.ByKind(Unchanged) {
			if strings.HasSuffix(e.OldPath, "/"+leaf) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("subtree leaf %s not reported unchanged\n%s", leaf, r.Format(true))
		}
	}
	if c := r.Counts(); c[Added] != 0 || c[Removed] != 0 {
		t.Fatalf("spurious add/remove on a pure move: %v\n%s", r.Counts(), r.Format(true))
	}
}

// Element/attribute kind flips and value-constraint edits are Modified
// with each change named.
func TestClassifyKindAndValueConstraints(t *testing.T) {
	o := xmltree.NewTree("R", xmltree.Elem(""), xmltree.New("V", xmltree.Elem("string")))
	n := xmltree.NewTree("R", xmltree.Elem(""), xmltree.New("V", xmltree.Attr("string")))
	if e := classifyPair(o, n); e.Kind != Modified || !strings.Contains(e.Detail, "element/attribute kind") {
		t.Fatalf("attr flip: %+v", e)
	}
	withDefault := xmltree.Elem("string")
	withDefault.Default = "n/a"
	o = xmltree.NewTree("R", xmltree.Elem(""), xmltree.New("V", xmltree.Elem("string")))
	n = xmltree.NewTree("R", xmltree.Elem(""), xmltree.New("V", withDefault))
	if e := classifyPair(o, n); e.Kind != Modified || !strings.Contains(e.Detail, "default value") {
		t.Fatalf("default edit: %+v", e)
	}
}
