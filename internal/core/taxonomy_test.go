package core

import (
	"testing"

	"qmatch/internal/lingo"
	"qmatch/internal/xmltree"
)

// TestTaxonomyMatrix crafts a pair for every class of the XML match
// taxonomy (paper §2.2) and asserts the classifier reaches it.
func TestTaxonomyMatrix(t *testing.T) {
	m := defaultMatcher()

	classify := func(s, tgt *xmltree.Node) Class {
		return m.MatchNodes(s, tgt).Class
	}

	t.Run("leaf total exact", func(t *testing.T) {
		a := xmltree.New("OrderNo", xmltree.Elem("integer"))
		b := xmltree.New("OrderNo", xmltree.Elem("integer"))
		if got := classify(a, b); got != TotalExact {
			t.Fatalf("class = %v", got)
		}
	})

	t.Run("leaf relaxed via label", func(t *testing.T) {
		a := xmltree.New("Quantity", xmltree.Elem("integer"))
		b := xmltree.New("Qty", xmltree.Elem("integer"))
		if got := classify(a, b); got != TotalRelaxed {
			t.Fatalf("class = %v", got)
		}
	})

	t.Run("leaf relaxed via properties", func(t *testing.T) {
		a := xmltree.New("OrderNo", xmltree.Elem("int"))
		b := xmltree.New("OrderNo", xmltree.Elem("decimal"))
		if got := classify(a, b); got != TotalRelaxed {
			t.Fatalf("class = %v", got)
		}
	})

	t.Run("leaf no match", func(t *testing.T) {
		a := xmltree.New("Giraffe", xmltree.Elem("string"))
		b := xmltree.New("Spanner", xmltree.Elem("date"))
		if got := classify(a, b); got != NoMatch {
			t.Fatalf("class = %v", got)
		}
	})

	t.Run("inner total exact", func(t *testing.T) {
		build := func() *xmltree.Node {
			return xmltree.NewTree("Order", xmltree.Elem(""),
				xmltree.New("OrderNo", xmltree.Elem("integer")),
				xmltree.New("Total", xmltree.Elem("decimal")),
			)
		}
		if got := classify(build(), build()); got != TotalExact {
			t.Fatalf("class = %v", got)
		}
	})

	t.Run("inner total relaxed", func(t *testing.T) {
		a := xmltree.NewTree("Order", xmltree.Elem(""),
			xmltree.New("Quantity", xmltree.Elem("integer")),
		)
		b := xmltree.NewTree("Order", xmltree.Elem(""),
			xmltree.New("Qty", xmltree.Elem("integer")),
		)
		if got := classify(a, b); got != TotalRelaxed {
			t.Fatalf("class = %v", got)
		}
	})

	t.Run("inner partial exact", func(t *testing.T) {
		// All atomic axes exact; one child matches exactly, the other
		// has no counterpart → partial coverage with all-exact matches.
		a := xmltree.NewTree("Order", xmltree.Elem(""),
			xmltree.New("OrderNo", xmltree.Elem("integer")),
			xmltree.New("Giraffe", xmltree.Elem("gMonth")),
		)
		b := xmltree.NewTree("Order", xmltree.Elem(""),
			xmltree.New("OrderNo", xmltree.Elem("integer")),
		)
		if got := classify(a, b); got != PartialExact {
			t.Fatalf("class = %v", got)
		}
	})

	t.Run("inner partial relaxed", func(t *testing.T) {
		a := xmltree.NewTree("Order", xmltree.Elem(""),
			xmltree.New("Quantity", xmltree.Elem("integer")),
			xmltree.New("Giraffe", xmltree.Elem("gMonth")),
		)
		b := xmltree.NewTree("PurchaseOrder", xmltree.Elem(""),
			xmltree.New("Qty", xmltree.Elem("integer")),
		)
		if got := classify(a, b); got != PartialRelaxed {
			t.Fatalf("class = %v", got)
		}
	})

	t.Run("inner no match", func(t *testing.T) {
		a := xmltree.NewTree("Giraffe", xmltree.Elem(""),
			xmltree.New("Hoof", xmltree.Elem("gDay")),
		)
		b := xmltree.NewTree("Spanner", xmltree.Elem(""),
			xmltree.New("Thread", xmltree.Elem("hexBinary")),
		)
		q := m.MatchNodes(a, b)
		// No semantic evidence anywhere: coverage must be none and the
		// class NoMatch or PartialRelaxed (the properties axis keeps an
		// order-equality remnant). The *value* stays mid-range — that
		// is the deliberate structure-only propagation of the children
		// axis (Fig. 9) — but below the default selection threshold,
		// so the pair is never reported as a correspondence.
		if q.Coverage != CoverageNone {
			t.Fatalf("coverage = %v", q.Coverage)
		}
		if q.Class != NoMatch && q.Class != PartialRelaxed {
			t.Fatalf("class = %v", q.Class)
		}
		if q.Value >= NewHybrid(nil).SelectionThreshold {
			t.Fatalf("value = %v, want below the selection threshold", q.Value)
		}
	})
}

// TestClassifyKindsRecorded checks that axis kinds drive classification as
// the paper defines: a relaxed label downgrades an otherwise exact match.
func TestClassifyKindsRecorded(t *testing.T) {
	m := defaultMatcher()
	a := xmltree.NewTree("Lines", xmltree.Elem(""),
		xmltree.New("Item", xmltree.Elem("string")),
	)
	b := xmltree.NewTree("Items", xmltree.Elem(""), // related → relaxed label
		xmltree.New("Item", xmltree.Elem("string")),
	)
	q := m.MatchNodes(a, b)
	if q.LabelKind != lingo.Relaxed {
		t.Fatalf("label kind = %v", q.LabelKind)
	}
	if q.Class != TotalRelaxed {
		t.Fatalf("class = %v", q.Class)
	}
	if !q.ChildrenAllExact {
		t.Fatal("children should be all-exact")
	}
}
