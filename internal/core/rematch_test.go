package core

import (
	"reflect"
	"testing"

	"qmatch/internal/dataset"
	"qmatch/internal/obs"
	"qmatch/internal/xmltree"
)

// evolutions is the synthetic schema-evolution suite: each entry mutates a
// clone of the tree in place, covering the registry's edit vocabulary.
var evolutions = []struct {
	name   string
	mutate func(t *testing.T, root *xmltree.Node)
}{
	{"add", func(t *testing.T, root *xmltree.Node) {
		inner := firstInner(root)
		inner.Add(xmltree.New("ArchiveFlag", xmltree.Elem("boolean")))
	}},
	{"rename", func(t *testing.T, root *xmltree.Node) {
		leafAt(root, 3).Label = "CompletelyRenamedElement"
	}},
	{"retype", func(t *testing.T, root *xmltree.Node) {
		n := leafAt(root, 1)
		n.Props.Type = "decimal"
	}},
	{"delete", func(t *testing.T, root *xmltree.Node) {
		inner := firstInner(root)
		inner.Children = inner.Children[:len(inner.Children)-1]
	}},
	{"rename+retype", func(t *testing.T, root *xmltree.Node) {
		n := leafAt(root, 5)
		n.Label = "RenamedAndRetyped"
		n.Props.Type = "hexBinary"
	}},
}

// firstInner returns the first non-root node with children.
func firstInner(root *xmltree.Node) *xmltree.Node {
	for _, n := range root.Nodes()[1:] {
		if !n.IsLeaf() {
			return n
		}
	}
	return root
}

// leafAt returns the i-th leaf in pre-order.
func leafAt(root *xmltree.Node, i int) *xmltree.Node {
	leaves := root.Leaves()
	return leaves[i%len(leaves)]
}

// RematchTarget must produce a table equal to a full re-match for every
// evolution, while rescoring strictly fewer cells than the grid (the
// PhaseRematch span carries the rescored count).
func TestRematchTargetEquivalence(t *testing.T) {
	for _, pair := range []dataset.Pair{dataset.DCMDPair(), dataset.POPair()} {
		for _, evo := range evolutions {
			t.Run(pair.Name+"/"+evo.name, func(t *testing.T) {
				newTgt := pair.Target.Clone()
				evo.mutate(t, newTgt)
				if xmltree.Equal(pair.Target, newTgt) {
					t.Fatal("mutation did not change the tree")
				}

				want := NewMatcher(nil).Tree(pair.Source, newTgt)

				m := NewMatcher(nil)
				prev := m.Tree(pair.Source, pair.Target)
				tr := obs.NewTrace()
				m.Trace = tr
				got, stats := m.RematchTarget(prev, newTgt)

				if !reflect.DeepEqual(got.table, want.table) {
					t.Fatal("rematched table differs from full re-match")
				}
				if got.Root != want.Root {
					t.Fatalf("rematched root %+v, full root %+v", got.Root, want.Root)
				}
				total := int64(len(want.table))
				if stats.Full || stats.RescoredCells >= total || stats.CopiedCells == 0 {
					t.Fatalf("no incremental savings: %+v over %d cells", stats, total)
				}
				if stats.CopiedCells+stats.RescoredCells != total {
					t.Fatalf("stats do not partition the table: %+v vs %d", stats, total)
				}
				span := rematchSpan(t, tr)
				if span.Cells != stats.RescoredCells {
					t.Fatalf("span cells %d, stats rescored %d", span.Cells, stats.RescoredCells)
				}
				if span.Cells >= total {
					t.Fatalf("span rescored %d of %d cells — not incremental", span.Cells, total)
				}
			})
		}
	}
}

// rematchSpan extracts the PhaseRematch span from a finished trace.
func rematchSpan(t *testing.T, tr *obs.Trace) obs.Span {
	t.Helper()
	mt := tr.Finish()
	for _, s := range mt.Spans {
		if s.Phase == obs.PhaseRematch {
			return s
		}
	}
	t.Fatal("trace has no rematch span")
	return obs.Span{}
}

// The source side evolves symmetrically: rows instead of columns.
func TestRematchSourceEquivalence(t *testing.T) {
	pair := dataset.DCMDPair()
	for _, evo := range evolutions {
		t.Run(evo.name, func(t *testing.T) {
			newSrc := pair.Source.Clone()
			evo.mutate(t, newSrc)

			want := NewMatcher(nil).Tree(newSrc, pair.Target)

			m := NewMatcher(nil)
			prev := m.Tree(pair.Source, pair.Target)
			got, stats := m.RematchSource(prev, newSrc)

			if !reflect.DeepEqual(got.table, want.table) {
				t.Fatal("rematched table differs from full re-match")
			}
			if stats.Full || stats.RescoredCells >= int64(len(want.table)) || stats.CopiedCells == 0 {
				t.Fatalf("no incremental savings: %+v", stats)
			}
		})
	}
}

// A released (or otherwise unusable) previous result degrades to a full
// fill that still matches the from-scratch table.
func TestRematchReleasedPrevFallsBack(t *testing.T) {
	pair := dataset.POPair()
	newTgt := pair.Target.Clone()
	newTgt.Nodes()[2].Label = "Altered"

	m := NewMatcher(nil)
	prev := m.Tree(pair.Source, pair.Target)
	prev.Release()
	got, stats := m.RematchTarget(prev, newTgt)
	if !stats.Full || stats.CopiedCells != 0 {
		t.Fatalf("released prev should force a full re-match, got %+v", stats)
	}
	want := NewMatcher(nil).Tree(pair.Source, newTgt)
	if !reflect.DeepEqual(got.table, want.table) {
		t.Fatal("fallback table differs from full re-match")
	}
}

// Chained evolution: rematch output seeds the next rematch, staying equal
// to a full match at every step.
func TestRematchChain(t *testing.T) {
	pair := dataset.DCMDPair()
	m := NewMatcher(nil)
	prev := m.Tree(pair.Source, pair.Target)
	tgt := pair.Target
	for step, evo := range evolutions {
		next := tgt.Clone()
		evo.mutate(t, next)
		got, stats := m.RematchTarget(prev, next)
		want := NewMatcher(nil).Tree(pair.Source, next)
		if !reflect.DeepEqual(got.table, want.table) {
			t.Fatalf("step %d (%s): chained rematch diverges", step, evo.name)
		}
		if stats.Full {
			t.Fatalf("step %d (%s): chain degraded to full re-match", step, evo.name)
		}
		prev, tgt = got, next
	}
}
