package core

import (
	"math"
	"testing"

	"qmatch/internal/dataset"
)

// precisionPairs are the corpus workloads the float32 tolerance tests run
// over; Protein joins outside -short.
func precisionPairs(t *testing.T) []dataset.Pair {
	t.Helper()
	pairs := []dataset.Pair{
		dataset.POPair(), dataset.BookPair(), dataset.DCMDPair(),
		dataset.XBenchPair(), dataset.LibraryHumanPair(),
	}
	if !testing.Short() {
		pairs = append(pairs, dataset.ProteinPair())
	}
	return pairs
}

// The float32 kernel stores label and property scores at half width; the
// only divergence from the default table is float32 rounding of values in
// [0, 1] (≤2⁻²⁴ per read). The children axis averages rounded values up
// the tree, so per-cell drift stays orders of magnitude below the pinned
// 1e-6 ceiling on every corpus workload.
func TestPrecisionFloat32Tolerance(t *testing.T) {
	const tol = 1e-6
	for _, p := range precisionPairs(t) {
		m64 := NewMatcher(nil)
		r64 := m64.Tree(p.Source, p.Target)

		m32 := NewMatcher(nil)
		m32.Precision = PrecisionFloat32
		r32 := m32.Tree(p.Source, p.Target)

		if len(r64.table) != len(r32.table) {
			t.Fatalf("%s: table sizes differ", p.Name)
		}
		worst := 0.0
		for i := range r64.table {
			a, b := r64.table[i], r32.table[i]
			for _, d := range []float64{
				a.Value - b.Value, a.Label - b.Label,
				a.Properties - b.Properties, a.Children - b.Children,
			} {
				if d := math.Abs(d); d > worst {
					worst = d
				}
			}
			// The discrete outcomes must not move at all: kinds, level
			// agreement and coverage classification survive rounding.
			if a.LabelKind != b.LabelKind || a.PropertiesKind != b.PropertiesKind ||
				a.LevelExact != b.LevelExact || a.Coverage != b.Coverage {
				t.Fatalf("%s: cell %d discrete outcome changed under float32", p.Name, i)
			}
		}
		if worst > tol {
			t.Errorf("%s: float32 kernel drifts %.3g from float64 table, tolerance %g",
				p.Name, worst, tol)
		}
	}
}

// Float32 rounding must not reorder the ranking: the top pairs come back
// as the same (source, target) sequence, values within tolerance.
func TestPrecisionFloat32RankOrder(t *testing.T) {
	const tol = 1e-6
	for _, p := range precisionPairs(t) {
		m64 := NewMatcher(nil)
		top64 := m64.Tree(p.Source, p.Target).TopPairs(100)

		m32 := NewMatcher(nil)
		m32.Precision = PrecisionFloat32
		top32 := m32.Tree(p.Source, p.Target).TopPairs(100)

		if len(top64) != len(top32) {
			t.Fatalf("%s: top-pair counts differ: %d vs %d", p.Name, len(top64), len(top32))
		}
		for i := range top64 {
			if top64[i].Source != top32[i].Source || top64[i].Target != top32[i].Target {
				t.Fatalf("%s: rank %d differs: %s→%s (float64) vs %s→%s (float32)",
					p.Name, i,
					top64[i].Source.Label, top64[i].Target.Label,
					top32[i].Source.Label, top32[i].Target.Label)
			}
			if d := math.Abs(top64[i].QoM.Value - top32[i].QoM.Value); d > tol {
				t.Errorf("%s: rank %d value drifts %.3g", p.Name, i, d)
			}
		}
	}
}
