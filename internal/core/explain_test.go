package core

import (
	"strings"
	"testing"
)

func TestExplainLeafPair(t *testing.T) {
	src, tgt := poSource(), poTarget()
	m := defaultMatcher()
	r := m.Tree(src, tgt)
	out := m.Explain(r, src.Find("PO/PurchaseInfo/Lines/Quantity"), tgt.Find("PurchaseOrder/Items/Qty"))
	for _, want := range []string{
		"QoM(PO/PurchaseInfo/Lines/Quantity, PurchaseOrder/Items/Qty)",
		"total relaxed",
		"label      0.850 (relaxed)",
		"properties 1.000 (exact)",
		"leaf (exact by definition)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
}

func TestExplainInnerPair(t *testing.T) {
	src, tgt := poSource(), poTarget()
	m := defaultMatcher()
	r := m.Tree(src, tgt)
	out := m.Explain(r, src.Find("PO/PurchaseInfo/Lines"), tgt.Find("PurchaseOrder/Items"))
	for _, want := range []string{
		"child contributions",
		"Item",
		"Quantity",
		"✓",
		"coverage total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
}

func TestExplainUnknownPair(t *testing.T) {
	src, tgt := poSource(), poTarget()
	m := defaultMatcher()
	r := m.Tree(src, tgt)
	other := poSource() // nodes not in the result
	out := m.Explain(r, other, tgt)
	if !strings.Contains(out, "no QoM recorded") {
		t.Fatalf("out = %q", out)
	}
}

func TestExplainTop(t *testing.T) {
	src, tgt := poSource(), poTarget()
	m := defaultMatcher()
	r := m.Tree(src, tgt)
	out := m.ExplainTop(r, 2)
	if strings.Count(out, "QoM(") != 2 {
		t.Fatalf("top explanations:\n%s", out)
	}
}

func TestBestPerSource(t *testing.T) {
	src, tgt := poSource(), poTarget()
	m := defaultMatcher()
	r := m.Tree(src, tgt)
	best := r.BestPerSource()
	if len(best) != src.Size() {
		t.Fatalf("rows = %d, want %d", len(best), src.Size())
	}
	for _, p := range best {
		if p.Source.Label == "OrderNo" && p.Target.Label != "OrderNo" {
			t.Fatalf("OrderNo best = %s", p.Target.Label)
		}
	}
	// Ordered by source path.
	for i := 1; i < len(best); i++ {
		if best[i-1].Source.Path() > best[i].Source.Path() {
			t.Fatal("not ordered")
		}
	}
}
