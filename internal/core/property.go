package core

import (
	"qmatch/internal/lingo"
	"qmatch/internal/xmltree"
)

// PropertyQoM is the outcome of comparing two property sets along the P
// axis: a numeric score in [0,1] and the taxonomy kind. Per the paper
// (§2.1), the axis matches exactly iff every constituent property matches
// exactly; the consensus is relaxed when individual properties are relaxed.
type PropertyQoM struct {
	Score float64
	Kind  lingo.Kind
}

// Per-property scores feeding the axis consensus.
const (
	propExact   = 1.0
	propRelaxed = 0.5
	propNone    = 0.0
)

// MatchProperties compares the constituent properties of two nodes:
//
//   - type: exact when equal (after prefix canonicalization); relaxed when
//     one generalizes the other or they share a datatype family;
//   - order: exact when equal, relaxed otherwise (paper: "a relaxed match
//     for the order property implies the order values are not equal");
//   - minOccurs/maxOccurs: exact when equal; relaxed when one constraint
//     generalizes the other (e.g. minOccurs=0 generalizes minOccurs=1);
//   - node kind (element vs attribute): exact when equal, relaxed otherwise;
//   - nillable / use / fixed / default participate only when either side
//     sets them, and are exact/relaxed on equality/inequality.
//
// The axis score is the mean of the per-property scores; the kind is Exact
// iff all properties are exact, None iff the score is 0, Relaxed otherwise.
func MatchProperties(a, b xmltree.Properties) PropertyQoM {
	a, b = a.Norm(), b.Norm()
	// At most 8 properties participate; a fixed array keeps this
	// hot-path function allocation-free.
	var scores [8]float64
	count := 0
	allExact := true
	add := func(s float64) {
		scores[count] = s
		count++
		if s != propExact {
			allExact = false
		}
	}

	// Type.
	switch {
	case xmltree.TypeEqual(a.Type, b.Type):
		add(propExact)
	case xmltree.TypeCompatible(a.Type, b.Type):
		add(propRelaxed)
	default:
		add(propNone)
	}

	// Order.
	if a.Order == b.Order {
		add(propExact)
	} else {
		add(propRelaxed)
	}

	// Occurrence constraints (min and max judged together, as one
	// generalization relation).
	switch {
	case a.MinOccurs == b.MinOccurs && a.MaxOccurs == b.MaxOccurs:
		add(propExact)
	case xmltree.OccursGeneralizes(a.MinOccurs, a.MaxOccurs, b.MinOccurs, b.MaxOccurs),
		xmltree.OccursGeneralizes(b.MinOccurs, b.MaxOccurs, a.MinOccurs, a.MaxOccurs):
		add(propRelaxed)
	default:
		add(propNone)
	}

	// Node kind.
	if a.IsAttribute == b.IsAttribute {
		add(propExact)
	} else {
		add(propRelaxed)
	}

	// Optional facets: count only when declared on either side.
	if a.Nillable || b.Nillable {
		if a.Nillable == b.Nillable {
			add(propExact)
		} else {
			add(propRelaxed)
		}
	}
	if a.Use != "" || b.Use != "" {
		if a.Use == b.Use {
			add(propExact)
		} else {
			add(propRelaxed)
		}
	}
	if a.Fixed != "" || b.Fixed != "" {
		if a.Fixed == b.Fixed {
			add(propExact)
		} else {
			add(propNone) // contradictory value constraints
		}
	}
	if a.Default != "" || b.Default != "" {
		if a.Default == b.Default {
			add(propExact)
		} else {
			add(propRelaxed)
		}
	}

	total := 0.0
	for _, s := range scores[:count] {
		total += s
	}
	score := total / float64(count)
	kind := lingo.Relaxed
	switch {
	case allExact:
		kind = lingo.Exact
	case score == 0:
		kind = lingo.None
	}
	return PropertyQoM{Score: score, Kind: kind}
}
