package core

import (
	"testing"

	"qmatch/internal/lingo"
	"qmatch/internal/xmltree"
)

func TestMatchPropertiesExact(t *testing.T) {
	a := xmltree.Elem("integer").WithOrder(1)
	b := xmltree.Elem("integer").WithOrder(1)
	q := MatchProperties(a, b)
	if q.Kind != lingo.Exact || q.Score != 1 {
		t.Fatalf("exact props = %+v", q)
	}
}

func TestMatchPropertiesRelaxedType(t *testing.T) {
	a := xmltree.Elem("int").WithOrder(1)
	b := xmltree.Elem("decimal").WithOrder(1) // decimal generalizes int
	q := MatchProperties(a, b)
	if q.Kind != lingo.Relaxed {
		t.Fatalf("relaxed type = %+v", q)
	}
	if q.Score <= 0 || q.Score >= 1 {
		t.Fatalf("score out of (0,1): %v", q.Score)
	}
}

func TestMatchPropertiesRelaxedOrder(t *testing.T) {
	a := xmltree.Elem("string").WithOrder(1)
	b := xmltree.Elem("string").WithOrder(3)
	q := MatchProperties(a, b)
	if q.Kind != lingo.Exact {
		// order differs → not exact
		if q.Kind != lingo.Relaxed {
			t.Fatalf("order mismatch kind = %v", q.Kind)
		}
	} else {
		t.Fatalf("order mismatch classified exact")
	}
}

func TestMatchPropertiesOccursGeneralization(t *testing.T) {
	// minOccurs=0 is a generalization of minOccurs=1 (paper example).
	a := xmltree.Elem("string").Optional().WithOrder(1)
	b := xmltree.Elem("string").WithOrder(1)
	q := MatchProperties(a, b)
	if q.Kind != lingo.Relaxed {
		t.Fatalf("occurs generalization = %+v", q)
	}
	// Disjoint occurrence ranges score zero on that property but the
	// axis stays relaxed overall (other properties match).
	c := xmltree.Properties{Type: "string", Order: 1, MinOccurs: 2, MaxOccurs: 2}
	d := xmltree.Properties{Type: "string", Order: 1, MinOccurs: 0, MaxOccurs: 1}
	q2 := MatchProperties(c, d)
	if q2.Kind != lingo.Relaxed {
		t.Fatalf("disjoint occurs = %+v", q2)
	}
	if q2.Score >= q.Score {
		t.Fatalf("disjoint occurs (%v) should score below generalization (%v)", q2.Score, q.Score)
	}
}

func TestMatchPropertiesElementVsAttribute(t *testing.T) {
	a := xmltree.Elem("string").WithOrder(1)
	b := xmltree.Attr("string").WithOrder(1)
	q := MatchProperties(a, b)
	if q.Kind != lingo.Relaxed {
		t.Fatalf("element vs attribute = %+v", q)
	}
}

func TestMatchPropertiesOptionalFacets(t *testing.T) {
	a := xmltree.Elem("string").WithOrder(1)
	a.Nillable = true
	b := xmltree.Elem("string").WithOrder(1)
	q := MatchProperties(a, b)
	if q.Kind == lingo.Exact {
		t.Fatal("nillable mismatch should not be exact")
	}
	// Facets absent on both sides do not participate.
	c := xmltree.Elem("string").WithOrder(1)
	d := xmltree.Elem("string").WithOrder(1)
	if got := MatchProperties(c, d); got.Kind != lingo.Exact {
		t.Fatalf("plain pair = %+v", got)
	}
	// Contradictory fixed values score zero on that property.
	e := xmltree.Elem("string").WithOrder(1)
	e.Fixed = "a"
	f := xmltree.Elem("string").WithOrder(1)
	f.Fixed = "b"
	qf := MatchProperties(e, f)
	if qf.Kind != lingo.Relaxed || qf.Score >= 1 {
		t.Fatalf("fixed contradiction = %+v", qf)
	}
	// Equal fixed values stay exact.
	g := xmltree.Elem("string").WithOrder(1)
	g.Fixed = "a"
	if got := MatchProperties(e, g); got.Kind != lingo.Exact {
		t.Fatalf("equal fixed = %+v", got)
	}
	// Use and default facets.
	h := xmltree.Attr("string").WithOrder(1)
	i := xmltree.Attr("string").WithOrder(1)
	i.Use = "optional"
	i.MinOccurs = 1 // keep occurs equal so only use differs
	if got := MatchProperties(h, i); got.Kind == lingo.Exact {
		t.Fatalf("use mismatch = %+v", got)
	}
	j := xmltree.Elem("string").WithOrder(1)
	j.Default = "x"
	k := xmltree.Elem("string").WithOrder(1)
	k.Default = "y"
	if got := MatchProperties(j, k); got.Kind == lingo.Exact {
		t.Fatalf("default mismatch = %+v", got)
	}
}

func TestMatchPropertiesNoneKind(t *testing.T) {
	// Everything disagrees without compensating matches is impossible
	// in practice (order relaxed always contributes), so None requires
	// a score of exactly zero; verify the kind logic via a crafted
	// comparison where all contributing scores are zero is unreachable,
	// and instead confirm None never appears with a positive score.
	a := xmltree.Elem("string").WithOrder(1)
	b := xmltree.Elem("date").WithOrder(1)
	q := MatchProperties(a, b)
	if q.Kind == lingo.None && q.Score > 0 {
		t.Fatalf("inconsistent kind/score: %+v", q)
	}
}

func TestMatchPropertiesSymmetric(t *testing.T) {
	a := xmltree.Elem("int").Optional().WithOrder(2)
	b := xmltree.Elem("decimal").Repeated().WithOrder(5)
	q1, q2 := MatchProperties(a, b), MatchProperties(b, a)
	if q1.Score != q2.Score || q1.Kind != q2.Kind {
		t.Fatalf("asymmetric: %+v vs %+v", q1, q2)
	}
}
