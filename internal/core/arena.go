package core

import (
	"sync"

	"qmatch/internal/xmltree"
)

// Arena-style buffer reuse for the pair-table fill. A protein-sized match
// allocates ~100 MB of dense state — the QoM table, done flags, kernel
// score planes, and the per-side index structures of the iterative fill —
// all of it with a lifetime of exactly one match. matchBuffers bundles
// those slabs so one pool Get/Put recycles the whole set: a Result
// acquires a buffer set at construction and returns it wholesale through
// Release. Unreleased Results stay correct and are simply collected by
// the GC (the pool never sees them); releasing is an optimization the
// Engine, the Hybrid memo, and the benchmarks apply at their natural
// end-of-match points.
//
// Reused slabs are NOT zeroed except where a reader could observe stale
// data: done flags (they gate every table read) and the index maps (they
// alias schema nodes). Table cells are written before the fill order lets
// anything read them, and kernel planes only expose logical entries that
// the fill always writes.
type matchBuffers struct {
	table  []QoM
	done   []bool
	kidIdx []int32
	kids   [][]int32
	levels []int32
	leaves []bool

	srcIdx, tgtIdx map[*xmltree.Node]int

	// Kernel score/kind planes (see simKernel). Either the 64- or 32-bit
	// score plane is active per match, but both keep their capacity.
	lKind []uint8
	lS64  []float64
	lS32  []float32
	pKind []uint8
	pS64  []float64
	pS32  []float32
}

var bufPool = sync.Pool{New: func() any { return new(matchBuffers) }}

// grow returns s resized to n elements, reusing its backing array when the
// capacity allows. Contents are unspecified — callers own initialization.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// acquireBuffers takes a buffer set from the pool and sizes it for an
// n×m pair table, wiring the slabs into r. The index maps are cleared;
// done flags are zeroed; everything else is raw capacity.
func acquireBuffers(r *Result) *matchBuffers {
	b := bufPool.Get().(*matchBuffers)
	n, m := len(r.srcNodes), len(r.tgtNodes)
	cells := n * m

	b.table = grow(b.table, cells)
	b.done = grow(b.done, cells)
	clear(b.done)
	r.table, r.done = b.table, b.done

	if b.srcIdx == nil {
		b.srcIdx = make(map[*xmltree.Node]int, n)
	} else {
		clear(b.srcIdx)
	}
	if b.tgtIdx == nil {
		b.tgtIdx = make(map[*xmltree.Node]int, m)
	} else {
		clear(b.tgtIdx)
	}
	r.srcIdx, r.tgtIdx = b.srcIdx, b.tgtIdx

	// Child index lists: every node except the two roots is someone's
	// child, so the backing store is exactly (n-1)+(m-1) entries —
	// reserving it up front keeps the per-node subslices stable.
	need := n + m - 2
	if cap(b.kidIdx) < need {
		b.kidIdx = make([]int32, 0, need)
	}
	b.kidIdx = b.kidIdx[:0]
	b.kids = grow(b.kids, n+m)
	b.levels = grow(b.levels, n+m)
	b.leaves = grow(b.leaves, n+m)
	r.srcKids, r.tgtKids = b.kids[:n:n], b.kids[n:]
	r.srcLevels, r.tgtLevels = b.levels[:n:n], b.levels[n:]
	r.srcLeaf, r.tgtLeaf = b.leaves[:n:n], b.leaves[n:]
	return b
}

// Release returns the Result's pooled buffers for reuse by later matches.
// The Result must not be used afterwards: its table, index and kernel
// state are detached (lookups report not-found rather than reading
// recycled memory), only the scalar fields — Root, Source, Target — stay
// meaningful. Release is idempotent; never releasing is safe and merely
// forgoes the reuse.
func (r *Result) Release() {
	b := r.buf
	if b == nil {
		return
	}
	r.buf = nil
	// Drop node references so a pooled buffer does not pin schema trees.
	clear(b.srcIdx)
	clear(b.tgtIdx)
	r.table, r.done = nil, nil
	r.srcIdx, r.tgtIdx = nil, nil
	r.srcKids, r.tgtKids = nil, nil
	r.srcLevels, r.tgtLevels = nil, nil
	r.srcLeaf, r.tgtLeaf = nil, nil
	r.kern = nil
	bufPool.Put(b)
}
