package core

import (
	"testing"

	"qmatch/internal/dataset"
)

// BenchmarkProteinHybridTree measures the full pair-table computation on
// the corpus' largest workload (231×3753 nodes) — the figure that
// motivated the dense-table memo and the allocation-free string metrics.
func BenchmarkProteinHybridTree(b *testing.B) {
	p := dataset.ProteinPair()
	m := NewMatcher(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Tree(p.Source, p.Target)
	}
}

// BenchmarkDCMDHybridTree is the mid-size counterpart.
func BenchmarkDCMDHybridTree(b *testing.B) {
	p := dataset.DCMDPair()
	m := NewMatcher(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Tree(p.Source, p.Target)
	}
}

// BenchmarkTopPairs measures bounded-heap top-n selection over the PIR×PDB
// pair table (867k cells): one pass with n heap entries instead of
// materializing and sorting every pair.
func BenchmarkTopPairs(b *testing.B) {
	p := dataset.ProteinPair()
	res := NewMatcher(nil).Tree(p.Source, p.Target)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.TopPairs(10)
	}
}

// BenchmarkPairTableReuse measures the Hybrid single-entry memo: Match
// followed by TreeScore on the same pair computes one table.
func BenchmarkPairTableReuse(b *testing.B) {
	p := dataset.DCMDPair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewHybrid(nil)
		h.Match(p.Source, p.Target)
		h.TreeScore(p.Source, p.Target)
	}
}
