package core

import (
	"qmatch/internal/obs"
	"qmatch/internal/xmltree"
)

// Incremental delta re-match. When one side of a previously matched pair
// evolves (the registry's PUT-on-existing-id flow), most of its tree is
// usually untouched — and a pair-table cell depends only on the two
// subtrees below it plus their nesting depths, never on ancestors or
// siblings. So every node of the new tree whose position and whole subtree
// are provably unchanged contributes a column (target side) or row (source
// side) that can be copied verbatim from the previous table; only the
// columns/rows of changed nodes are rescored, plus nothing else — ancestor
// cells of changed nodes live in the changed nodes' own rows/columns
// (ancestors of a changed target node are themselves non-identical
// subtrees, hence dirty), so the dirty set is closed under the children
// axis by construction.
//
// "Provably unchanged" is positional: new node k-th child of its parent
// aligns with the old k-th child, and is self-clean when label, normalized
// properties and child count agree; a subtree is clean when every node in
// it is self-clean. Positional alignment keeps nesting depths equal by
// construction, which the level axis needs. Insertions in the middle of a
// sibling list shift later siblings out of alignment — they rescore
// unnecessarily, which costs time but never correctness. The root pair's
// special level rule (tree-height comparison) only matters for cell (0,0),
// which is copied only when the entire tree is clean — heights equal by
// identity.
//
// The equivalence suite pins rematched tables equal to full re-matches
// over add/rename/retype/delete evolutions, and the PhaseRematch trace
// span reports how many cells were rescored vs copied.

// RematchStats reports how much of a re-match was saved: cells copied from
// the previous table vs rescored, and the node (column/row) counts behind
// them. CleanNodes+DirtyNodes is the changed side's node count.
type RematchStats struct {
	// CopiedCells and RescoredCells partition the new pair table.
	CopiedCells   int64
	RescoredCells int64
	// CleanNodes and DirtyNodes partition the changed side's nodes.
	CleanNodes int
	DirtyNodes int
	// Full marks a fallback to a full fill (previous result released or
	// partial): everything rescored.
	Full bool
}

// alignSide positionally aligns the changed side of the new match against
// the old one and reports, per new-side node, whether its entire subtree
// is unchanged (clean). oldIdx maps new pre-order index → aligned old
// pre-order index (-1 when the position has no old counterpart).
func alignSide(oldNodes []*xmltree.Node, oldKids [][]int32, newNodes []*xmltree.Node, newKids [][]int32) (oldIdx []int32, clean []bool) {
	oldIdx = make([]int32, len(newNodes))
	clean = make([]bool, len(newNodes))
	for i := range oldIdx {
		oldIdx[i] = -1
	}
	// Iterative pre-order pairing: positions align parent-by-parent, so a
	// stack of (old, new) index pairs visits every aligned position once.
	type pair struct{ o, n int32 }
	stack := []pair{{0, 0}}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		oldIdx[p.n] = p.o
		on, nn := oldNodes[p.o], newNodes[p.n]
		clean[p.n] = on.Label == nn.Label &&
			on.Props.Norm() == nn.Props.Norm() &&
			len(oldKids[p.o]) == len(newKids[p.n])
		k := min2(len(oldKids[p.o]), len(newKids[p.n]))
		for x := 0; x < k; x++ {
			stack = append(stack, pair{oldKids[p.o][x], newKids[p.n][x]})
		}
	}
	// Fold children into parents: pre-order puts children at higher
	// indices, so a descending sweep sees every child before its parent.
	for i := len(newNodes) - 1; i >= 0; i-- {
		if !clean[i] {
			continue
		}
		for _, c := range newKids[i] {
			if !clean[c] {
				clean[i] = false
				break
			}
		}
	}
	return oldIdx, clean
}

// complete reports whether every cell of the table was computed (a partial
// previous result cannot seed a re-match).
func (r *Result) complete() bool {
	if r.buf == nil {
		return false
	}
	for _, d := range r.done {
		if !d {
			return false
		}
	}
	return true
}

// RematchTarget computes the pair table of (prev.Source, newTgt) — the
// previous match with its target replaced by an evolved version — copying
// the columns of clean target subtrees from prev and rescoring only dirty
// columns. The resulting table is equal to m.Tree(prev.Source, newTgt);
// prev is read, never mutated, and stays valid. A released or partial prev
// degrades to a full fill (Stats.Full).
func (m *Matcher) RematchTarget(prev *Result, newTgt *xmltree.Node) (*Result, RematchStats) {
	if !prev.complete() {
		r := m.Tree(prev.Source, newTgt)
		return r, RematchStats{RescoredCells: int64(len(r.srcNodes) * len(r.tgtNodes)),
			DirtyNodes: len(r.tgtNodes), Full: true}
	}
	r := newResult(prev.Source, newTgt)
	w := m.Weights.Normalized()
	sp := m.Trace.StartSpan(obs.PhaseRematch)
	oldIdx, clean := alignSide(prev.tgtNodes, prev.tgtKids, r.tgtNodes, r.tgtKids)

	n := len(r.srcNodes)
	mNew, mOld := len(r.tgtNodes), len(prev.tgtNodes)
	// Coalesce clean columns into runs of contiguous (new, old) index pairs,
	// then copy row-major: one memmove per run per row instead of a strided
	// cell-by-cell walk down each column, which on large tables costs more
	// than the fill it replaces. doneRow is the per-row done template —
	// true over clean columns, false over dirty ones (computeCols sets
	// those as it fills them).
	type copyRun struct{ newStart, oldStart, len int }
	var runs []copyRun
	dirty := make([]int32, 0, mNew)
	doneRow := make([]bool, mNew)
	for j := 0; j < mNew; {
		if !clean[j] {
			dirty = append(dirty, int32(j))
			j++
			continue
		}
		start, ostart := j, int(oldIdx[j])
		for j++; j < mNew && clean[j] && int(oldIdx[j]) == ostart+(j-start); j++ {
		}
		runs = append(runs, copyRun{start, ostart, j - start})
		for x := start; x < j; x++ {
			doneRow[x] = true
		}
	}
	for i := 0; i < n; i++ {
		nb, ob := i*mNew, i*mOld
		for _, run := range runs {
			copy(r.table[nb+run.newStart:nb+run.newStart+run.len],
				prev.table[ob+run.oldStart:ob+run.oldStart+run.len])
		}
		copy(r.done[nb:nb+mNew], doneRow)
	}
	// The dense kernel scores every vocabulary pair up front, which only
	// amortizes when the rescored cells outnumber the label pairs. A
	// typical delta dirties a handful of columns — score those cells
	// directly through the name matcher instead of refilling the kernel.
	if !m.noKernel {
		si := m.interned(r.Source, r.srcNodes)
		ti := m.interned(newTgt, r.tgtNodes)
		if int64(n)*int64(len(dirty)) >= int64(len(si.Labels))*int64(len(ti.Labels)) {
			r.kern = newKernelFrom(si, ti, m.Precision, r.buf)
			r.kern.fill(m.Names, m.Scores)
		}
	}
	tw := &treeWorker{m: m, names: m.Names, r: r, w: w}
	for i := n - 1; i >= 0; i-- {
		tw.computeCols(i, dirty)
	}
	r.Root = r.table[0]

	stats := RematchStats{
		CopiedCells:   int64(n) * int64(mNew-len(dirty)),
		RescoredCells: int64(n) * int64(len(dirty)),
		CleanNodes:    mNew - len(dirty),
		DirtyNodes:    len(dirty),
	}
	if sp != nil {
		sp.SetNodes(n, mNew)
		sp.SetCells(stats.RescoredCells)
	}
	sp.End()
	return r, stats
}

// RematchSource is RematchTarget with the source side evolving: clean
// source subtrees contribute whole rows copied from prev, dirty rows are
// recomputed children-before-parents.
func (m *Matcher) RematchSource(prev *Result, newSrc *xmltree.Node) (*Result, RematchStats) {
	if !prev.complete() {
		r := m.Tree(newSrc, prev.Target)
		return r, RematchStats{RescoredCells: int64(len(r.srcNodes) * len(r.tgtNodes)),
			DirtyNodes: len(r.srcNodes), Full: true}
	}
	r := newResult(newSrc, prev.Target)
	w := m.Weights.Normalized()
	sp := m.Trace.StartSpan(obs.PhaseRematch)
	oldIdx, clean := alignSide(prev.srcNodes, prev.srcKids, r.srcNodes, r.srcKids)

	n, mcols := len(r.srcNodes), len(r.tgtNodes)
	dirtyRows := 0
	for i := 0; i < n; i++ {
		if !clean[i] {
			dirtyRows++
		}
	}
	// Same kernel-amortization rule as RematchTarget: refill the dense
	// kernel only when the rescored cells outnumber the vocabulary pairs.
	if !m.noKernel {
		si := m.interned(newSrc, r.srcNodes)
		ti := m.interned(r.Target, r.tgtNodes)
		if int64(dirtyRows)*int64(mcols) >= int64(len(si.Labels))*int64(len(ti.Labels)) {
			r.kern = newKernelFrom(si, ti, m.Precision, r.buf)
			r.kern.fill(m.Names, m.Scores)
		}
	}
	trueRow := make([]bool, mcols)
	for j := range trueRow {
		trueRow[j] = true
	}
	tw := &treeWorker{m: m, names: m.Names, r: r, w: w}
	for i := n - 1; i >= 0; i-- {
		if clean[i] {
			oi := int(oldIdx[i])
			copy(r.table[i*mcols:(i+1)*mcols], prev.table[oi*mcols:(oi+1)*mcols])
			copy(r.done[i*mcols:(i+1)*mcols], trueRow)
		} else {
			tw.computeRow(i)
		}
	}
	r.Root = r.table[0]

	stats := RematchStats{
		CopiedCells:   int64(n-dirtyRows) * int64(mcols),
		RescoredCells: int64(dirtyRows) * int64(mcols),
		CleanNodes:    n - dirtyRows,
		DirtyNodes:    dirtyRows,
	}
	if sp != nil {
		sp.SetNodes(n, mcols)
		sp.SetCells(stats.RescoredCells)
	}
	sp.End()
	return r, stats
}

// Adopt seeds the Hybrid's result memo with an externally computed table
// (a rematched Result), so the following Match/TreeScore on the same pair
// run selection straight off it.
func (h *Hybrid) Adopt(r *Result) {
	if h.results == nil {
		h.results = make(map[resultKey]*Result)
	}
	h.results[resultKey{r.Source, r.Target}] = r
}

// Take removes and returns the memoized result of a pair without releasing
// its buffers — the Engine detaches results it must keep alive as rematch
// state before ResetCache releases the rest. Nil when the pair was never
// matched on this instance.
func (h *Hybrid) Take(src, tgt *xmltree.Node) *Result {
	key := resultKey{src, tgt}
	r := h.results[key]
	if r != nil {
		delete(h.results, key)
	}
	return r
}
