package core

import (
	"math"
	"testing"
	"testing/quick"

	"qmatch/internal/synth"
	"qmatch/internal/xmltree"
)

// Property-based tests over randomly generated schema trees (DESIGN.md §6).

func genTree(seed int64, size uint8) *xmltree.Node {
	return synth.Generate(synth.Config{
		Seed:        seed,
		Elements:    int(size%60) + 1,
		MaxDepth:    5,
		MaxChildren: 6,
	})
}

// Self-match is always total exact with QoM exactly 1.
func TestQuickSelfMatchIsOne(t *testing.T) {
	m := NewMatcher(nil)
	prop := func(seed int64, size uint8) bool {
		tree := genTree(seed, size)
		res := m.Tree(tree, tree.Clone())
		if math.Abs(res.Root.Value-1) > 1e-9 {
			return false
		}
		return res.Root.Class == TotalExact
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Every pair QoM and axis score stays in [0,1] for arbitrary tree pairs.
func TestQuickQoMBounds(t *testing.T) {
	m := NewMatcher(nil)
	prop := func(s1, s2 int64, n1, n2 uint8) bool {
		src := genTree(s1, n1%40)
		tgt := genTree(s2, n2%40)
		res := m.Tree(src, tgt)
		for _, p := range res.Pairs() {
			q := p.QoM
			for _, v := range []float64{
				q.Value, q.Label, q.Properties, q.Level, q.Children,
				q.SubtreeWeight, q.CardinalityRatio,
			} {
				if v < 0 || v > 1+1e-9 || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// A perturbed variant of a tree never matches it better than the tree
// matches itself, and the root QoM degrades monotonically... weakly: the
// variant's root QoM is at most 1 and at least 0; stronger, at zero
// intensity it equals the self-match.
func TestQuickVariantBounded(t *testing.T) {
	m := NewMatcher(nil)
	prop := func(seed int64, size uint8) bool {
		tree := genTree(seed, size)
		variant, _ := synth.Derive(tree, synth.Uniform(seed+1, 0.5))
		res := m.Tree(tree, variant)
		return res.Root.Value <= 1+1e-9 && res.Root.Value >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Classification is consistent with coverage: a Total coverage never
// yields a Partial class and vice versa.
func TestQuickClassConsistency(t *testing.T) {
	m := NewMatcher(nil)
	prop := func(s1, s2 int64, n1, n2 uint8) bool {
		src := genTree(s1, n1%30)
		tgt := genTree(s2, n2%30)
		res := m.Tree(src, tgt)
		for _, p := range res.Pairs() {
			q := p.QoM
			switch q.Class {
			case TotalExact, TotalRelaxed:
				if !q.Leaf && q.Coverage != Total {
					return false
				}
			case PartialExact:
				if q.Coverage != Partial {
					return false
				}
			case TotalExact + 100: // unreachable; keeps switch exhaustive-looking
			}
			if q.Class == TotalExact && q.Leaf {
				// exact leaves demand exact label and properties
				if q.LabelKind.String() != "exact" {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The pair table is complete and deterministic across runs.
func TestQuickPairTableComplete(t *testing.T) {
	m := NewMatcher(nil)
	prop := func(s1, s2 int64) bool {
		src := genTree(s1, 20)
		tgt := genTree(s2, 25)
		r1 := m.Tree(src, tgt)
		r2 := m.Tree(src, tgt)
		p1, p2 := r1.Pairs(), r2.Pairs()
		if len(p1) != src.Size()*tgt.Size() || len(p1) != len(p2) {
			return false
		}
		for i := range p1 {
			if p1[i].QoM.Value != p2[i].QoM.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
