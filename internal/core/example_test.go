package core_test

import (
	"fmt"

	"qmatch/internal/core"
	"qmatch/internal/dataset"
)

// ExampleMatcher_Tree walks the paper's running example: the PO schema of
// Figure 1 matched against the Purchase Order schema of Figure 2.
func ExampleMatcher_Tree() {
	src, tgt := dataset.PO1(), dataset.PO2()
	m := core.NewMatcher(nil)
	res := m.Tree(src, tgt)
	fmt.Printf("root class: %s\n", res.Root.Class)

	lines := src.Find("PO/PurchaseInfo/Lines")
	items := tgt.Find("PurchaseOrder/Items")
	q, _ := res.Pair(lines, items)
	fmt.Printf("Lines vs Items: %s, label %s, coverage %s\n",
		q.Class, q.LabelKind, q.Coverage)
	// Output:
	// root class: total relaxed
	// Lines vs Items: total relaxed, label relaxed, coverage total
}

// ExampleHybrid_Match selects the one-to-one correspondences.
func ExampleHybrid_Match() {
	h := core.NewHybrid(nil)
	cs := h.Match(dataset.PO1(), dataset.PO2())
	fmt.Println(cs[0])
	fmt.Printf("found %d correspondences\n", len(cs))
	// Output:
	// PO/OrderNo -> PurchaseOrder/OrderNo (1.00)
	// found 9 correspondences
}

// ExampleDefaultWeights shows the paper's Table 2 weights.
func ExampleDefaultWeights() {
	fmt.Println(core.DefaultWeights())
	// Output:
	// WL=0.30 WP=0.20 WH=0.10 WC=0.40
}
