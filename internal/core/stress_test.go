package core

import (
	"fmt"
	"testing"

	"qmatch/internal/xmltree"
)

// chain builds a linear tree of the given depth.
func chain(prefix string, depth int) *xmltree.Node {
	root := xmltree.New(prefix+"0", xmltree.Elem(""))
	cur := root
	for i := 1; i <= depth; i++ {
		next := xmltree.New(fmt.Sprintf("%s%d", prefix, i), xmltree.Elem(""))
		cur.Add(next)
		cur = next
	}
	cur.Props.Type = "string"
	return root
}

// wide builds a root with n string leaves.
func wide(prefix string, n int) *xmltree.Node {
	root := xmltree.New(prefix, xmltree.Elem(""))
	for i := 0; i < n; i++ {
		root.Add(xmltree.New(fmt.Sprintf("%sLeaf%d", prefix, i), xmltree.Elem("string")))
	}
	return root
}

// Deep recursion must not overflow the stack: matching two 1000-level
// chains exercises the full recursive descent.
func TestStressDeepChains(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	a := chain("A", 1000)
	b := chain("B", 1000)
	res := defaultMatcher().Tree(a, b)
	if res.Root.Value < 0 || res.Root.Value > 1 {
		t.Fatalf("root value = %v", res.Root.Value)
	}
	// Self-match still exact at depth.
	self := defaultMatcher().Tree(a, a.Clone())
	if self.Root.Class != TotalExact {
		t.Fatalf("deep self match = %v", self.Root.Class)
	}
}

// Wide fan-out: a 500×500 leaf cross product (250k pairs) completes and
// stays bounded.
func TestStressWideFanout(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	a := wide("L", 500)
	b := wide("R", 500)
	res := defaultMatcher().Tree(a, b)
	if got := len(res.Pairs()); got != a.Size()*b.Size() {
		t.Fatalf("pairs = %d", got)
	}
	if res.Root.Value < 0 || res.Root.Value > 1 {
		t.Fatalf("root value = %v", res.Root.Value)
	}
}

// Mixed pathology: deep chain vs wide root.
func TestStressChainVsWide(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	a := chain("C", 400)
	b := wide("W", 400)
	res := defaultMatcher().Tree(a, b)
	if res.Root.Value < 0 || res.Root.Value > 1 {
		t.Fatalf("root value = %v", res.Root.Value)
	}
}

// Single-node schemas are legal inputs everywhere.
func TestStressSingletons(t *testing.T) {
	a := xmltree.New("Lone", xmltree.Elem("string"))
	b := xmltree.New("Lone", xmltree.Elem("string"))
	res := defaultMatcher().Tree(a, b)
	if res.Root.Value != 1 || res.Root.Class != TotalExact {
		t.Fatalf("singleton match = %v", res.Root)
	}
	h := NewHybrid(nil)
	if cs := h.Match(a, b); len(cs) != 1 {
		t.Fatalf("singleton correspondences = %v", cs)
	}
}
