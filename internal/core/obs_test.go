package core

import (
	"testing"

	"qmatch/internal/dataset"
	"qmatch/internal/obs"
	"qmatch/internal/synth"
)

// A traced sequential Tree records the intern and pair-table phases with
// full counts, and a traced Hybrid.Match adds the selection phase.
func TestTreeTraceSpans(t *testing.T) {
	p := dataset.POPair()
	h := NewHybrid(nil)
	tr := obs.NewTrace()
	h.SetTrace(tr)
	h.Match(p.Source, p.Target)
	mt := tr.Finish()

	byPhase := map[obs.Phase]obs.Span{}
	for _, s := range mt.Spans {
		byPhase[s.Phase] = s
	}
	srcN, tgtN := len(p.Source.Nodes()), len(p.Target.Nodes())
	pt, ok := byPhase[obs.PhasePairTable]
	if !ok {
		t.Fatalf("no pairtable span: %+v", mt.Spans)
	}
	if pt.SrcNodes != srcN || pt.TgtNodes != tgtN || pt.Cells != int64(srcN*tgtN) {
		t.Fatalf("pairtable span counts = %+v, want %dx%d nodes, %d cells", pt, srcN, tgtN, srcN*tgtN)
	}
	if pt.Workers != 1 || pt.Partial {
		t.Fatalf("sequential complete fill span = %+v", pt)
	}
	in, ok := byPhase[obs.PhaseIntern]
	if !ok || in.Cells == 0 || in.SrcNodes == 0 {
		t.Fatalf("intern span missing or empty: %+v", in)
	}
	sel, ok := byPhase[obs.PhaseSelect]
	if !ok || sel.Selected == 0 || sel.Cells == 0 {
		t.Fatalf("select span missing or empty: %+v (PO pair must select something)", sel)
	}
}

// The parallel fill path must report its worker-pool width.
func TestTreeTraceParallelWorkers(t *testing.T) {
	src := synth.Generate(synth.Config{Seed: 7, Elements: 80, MaxDepth: 5, MaxChildren: 6})
	tgt, _ := synth.Derive(src, synth.Uniform(8, 0.2))
	m := NewMatcher(nil)
	m.Parallelism = 4
	tr := obs.NewTrace()
	m.Trace = tr
	m.Tree(src, tgt)
	mt := tr.Finish()
	for _, s := range mt.Spans {
		if s.Phase == obs.PhasePairTable {
			if s.Workers != 4 {
				t.Fatalf("parallel pairtable span workers = %d, want 4", s.Workers)
			}
			if s.Partial || s.Cells != int64(len(src.Nodes())*len(tgt.Nodes())) {
				t.Fatalf("complete parallel fill span = %+v", s)
			}
			return
		}
	}
	t.Fatalf("no pairtable span: %+v", mt.Spans)
}

// A fill whose Done signal is already closed must stop early, leave the
// trace with a closed, partial pair-table span, and report the cells
// computed so far instead of leaking an open span — the cancelled-MatchAll
// phase-accounting fix.
func TestTreeCancelledPartialSpans(t *testing.T) {
	done := make(chan struct{})
	close(done)
	for name, par := range map[string]int{"sequential": 1, "parallel": 4} {
		p := dataset.DCMDPair()
		m := NewMatcher(nil)
		m.Parallelism = par
		m.Done = done
		tr := obs.NewTrace()
		m.Trace = tr
		m.Tree(p.Source, p.Target)
		mt := tr.Finish()
		var pt *obs.Span
		for i := range mt.Spans {
			if mt.Spans[i].Phase == obs.PhasePairTable {
				pt = &mt.Spans[i]
			}
		}
		if pt == nil {
			t.Fatalf("%s: cancelled fill left no pairtable span: %+v", name, mt.Spans)
		}
		if !pt.Partial {
			t.Fatalf("%s: cancelled fill span not marked partial: %+v", name, pt)
		}
		total := int64(len(p.Source.Nodes()) * len(p.Target.Nodes()))
		if pt.Cells >= total {
			t.Fatalf("%s: cancelled fill claims %d of %d cells", name, pt.Cells, total)
		}
	}
}

// Cancellation must not corrupt the result: cells computed before the
// abort are identical to an uncancelled fill's.
func TestCancelledFillPrefixConsistent(t *testing.T) {
	p := dataset.DCMDPair()
	full := NewMatcher(nil).Tree(p.Source, p.Target)

	done := make(chan struct{})
	close(done)
	m := NewMatcher(nil)
	m.Done = done
	part := m.Tree(p.Source, p.Target)
	for i, s := range part.srcNodes {
		for j, tn := range part.tgtNodes {
			got, ok := part.Pair(s, tn)
			if !ok {
				continue
			}
			want, _ := full.Pair(part.srcNodes[i], part.tgtNodes[j])
			if got != want {
				t.Fatalf("cell (%d,%d) diverges after cancellation", i, j)
			}
		}
	}
}

// Tracing disabled (the default) must add zero allocations to the fill.
func TestTraceDisabledAddsNoAllocs(t *testing.T) {
	p := dataset.DCMDPair()
	m := NewMatcher(nil)
	m.Tree(p.Source, p.Target) // warm memo caches
	base := testing.AllocsPerRun(5, func() {
		m.Tree(p.Source, p.Target)
	})
	// Same matcher, still no trace: the nil-check path must not have
	// drifted from the arena-era ceiling (see TestTreeAllocsBounded; this
	// loop never Releases, so it sits slightly above the pooled number).
	if base > 700 {
		t.Fatalf("untraced Tree = %.0f allocs/run, regression ceiling is 700", base)
	}
}
