// Package core implements the QMatch paper's contribution: the QoM (Quality
// of Match) taxonomy and weight-based match model (paper §2–3) and the
// hybrid QMatch tree-matching algorithm (paper §4, Fig. 3). Given two schema
// trees it computes, for every source/target node pair, a QoM value in [0,1]
// decomposed over the four axes of information — label, properties, level
// and children — together with the pair's taxonomy classification (total /
// partial × exact / relaxed).
package core

import "fmt"

// AxisWeights holds the relative importance of the four axes in the overall
// QoM (Eq. 1 of the paper). Weights must be non-negative; Valid additionally
// requires them to sum to 1 so that a total-exact match yields QoM = 1.
type AxisWeights struct {
	Label      float64 // WL
	Properties float64 // WP
	Level      float64 // WH
	Children   float64 // WC
}

// DefaultWeights returns the weights the paper selects in Table 2:
// WL=0.3, WP=0.2, WH=0.1, WC=0.4.
func DefaultWeights() AxisWeights {
	return AxisWeights{Label: 0.3, Properties: 0.2, Level: 0.1, Children: 0.4}
}

// Valid reports whether every weight is non-negative and the weights sum to
// 1 (within a small tolerance).
func (w AxisWeights) Valid() bool {
	if w.Label < 0 || w.Properties < 0 || w.Level < 0 || w.Children < 0 {
		return false
	}
	s := w.Sum()
	return s > 0.999999 && s < 1.000001
}

// Sum returns the total of the four weights.
func (w AxisWeights) Sum() float64 {
	return w.Label + w.Properties + w.Level + w.Children
}

// Normalized returns the weights scaled to sum to 1. All-zero weights
// normalize to the paper defaults.
func (w AxisWeights) Normalized() AxisWeights {
	s := w.Sum()
	if s == 0 {
		return DefaultWeights()
	}
	return AxisWeights{
		Label:      w.Label / s,
		Properties: w.Properties / s,
		Level:      w.Level / s,
		Children:   w.Children / s,
	}
}

// String renders the weights as "WL=0.30 WP=0.20 WH=0.10 WC=0.40".
func (w AxisWeights) String() string {
	return fmt.Sprintf("WL=%.2f WP=%.2f WH=%.2f WC=%.2f",
		w.Label, w.Properties, w.Level, w.Children)
}
