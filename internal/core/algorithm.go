package core

import (
	"qmatch/internal/lingo"
	"qmatch/internal/match"
	"qmatch/internal/obs"
	"qmatch/internal/xmltree"
)

// Hybrid adapts the QMatch Matcher to the match.Algorithm interface shared
// with the linguistic and structural baselines: correspondences are the
// one-to-one selection over the QoM pair table, and the tree score is the
// root QoM — "the total match value (QoM) for the entire source schema
// tree ... presented to the user" (paper §4).
type Hybrid struct {
	*Matcher

	// Keyed result memo: Match followed by TreeScore on the same pair
	// (the common evaluation pattern) computes the pair table once, and
	// alternating among several schema pairs keeps every table warm.
	// The memo grows with the number of distinct pairs matched; call
	// ResetCache to drop it. Like the underlying NameMatcher caches,
	// a Hybrid is not safe for concurrent use — wrap it in the public
	// package's Engine (or give each goroutine its own instance) for
	// concurrent matching.
	results map[resultKey]*Result
	// SelectionThreshold is the minimum QoM for a pair to be reported as
	// a correspondence. Default 0.75 — above the 0.7 floor that two
	// same-typed but semantically unrelated leaves reach on structural
	// axes alone, below the ~0.9 of a relaxed label match, with room for
	// inner-node matches whose children axis is diluted by unmatched
	// source children.
	SelectionThreshold float64
	// RequireLabelEvidence gates selection on the label axis: pairs
	// whose labels do not match at all (LabelKind == None) are never
	// reported as correspondences, however high their structural score.
	// The QoM *value* still propagates structure-only overlap through
	// the children axis (Fig. 9); the gate only filters the reported
	// mapping, where structural coincidence (same types, same order)
	// is overwhelmingly noise. Default true; disable for the ablation.
	RequireLabelEvidence bool
}

// NewHybrid returns the hybrid QMatch algorithm with default tuning over
// the given thesaurus (nil selects the built-in default).
func NewHybrid(th *lingo.Thesaurus) *Hybrid {
	return &Hybrid{
		Matcher:              NewMatcher(th),
		SelectionThreshold:   0.75,
		RequireLabelEvidence: true,
	}
}

// Name implements match.Algorithm.
func (h *Hybrid) Name() string { return "hybrid" }

// resultKey identifies one memoized pair table by tree identity.
type resultKey struct{ src, tgt *xmltree.Node }

// ResetCache drops the memoized pair tables, releasing their pooled
// buffers for the next match. Timing harnesses call this between
// repetitions so each measurement covers a full computation; the Engine
// calls it between jobs and at handle release.
func (h *Hybrid) ResetCache() {
	for _, r := range h.results {
		r.Release()
	}
	h.results = nil
}

// SetTrace directs the phase spans of subsequent matches into t; nil
// disables tracing. This is the optional instrumentation hook the Engine
// asserts on match.Algorithm values (the baselines don't implement it).
func (h *Hybrid) SetTrace(t *obs.Trace) { h.Matcher.Trace = t }

// SetDone installs the cancellation signal aborting in-flight pair-table
// fills (see Matcher.Done); nil never aborts.
func (h *Hybrid) SetDone(done <-chan struct{}) { h.Matcher.Done = done }

// SetInterner installs the precompiled-vocabulary lookup of the
// compiled-schema path (see Matcher.Interner); nil interns at match entry.
// This is the optional fast-path hook the Engine asserts on
// match.Algorithm values, alongside SetTrace and SetDone.
func (h *Hybrid) SetInterner(f func(*xmltree.Node) *Interned) { h.Matcher.Interner = f }

// tree returns the pair table for src/tgt, reusing the memoized result
// when the same pointers are matched again. Callers must not mutate the
// trees between calls.
func (h *Hybrid) tree(src, tgt *xmltree.Node) *Result {
	key := resultKey{src, tgt}
	if res, ok := h.results[key]; ok {
		return res
	}
	res := h.Tree(src, tgt)
	if h.results == nil {
		h.results = make(map[resultKey]*Result)
	}
	h.results[key] = res
	return res
}

// Match implements match.Algorithm.
func (h *Hybrid) Match(src, tgt *xmltree.Node) []match.Correspondence {
	res := h.tree(src, tgt)
	pairs := res.Pairs()
	scored := make([]match.ScoredPair, 0, len(pairs))
	for _, p := range pairs {
		if h.RequireLabelEvidence && p.QoM.LabelKind == lingo.None {
			continue
		}
		scored = append(scored, match.ScoredPair{Source: p.Source, Target: p.Target, Score: p.QoM.Value})
	}
	return match.SelectTraced(scored, h.SelectionThreshold, h.Trace)
}

// Pairs returns the full QoM table as scored pairs — the granularity
// composite matchers aggregate over.
func (h *Hybrid) Pairs(src, tgt *xmltree.Node) []match.ScoredPair {
	pairs := h.tree(src, tgt).Pairs()
	out := make([]match.ScoredPair, len(pairs))
	for i, p := range pairs {
		out[i] = match.ScoredPair{Source: p.Source, Target: p.Target, Score: p.QoM.Value}
	}
	return out
}

// TreeScore implements match.Algorithm.
func (h *Hybrid) TreeScore(src, tgt *xmltree.Node) float64 {
	return h.tree(src, tgt).Root.Value
}

var _ match.Algorithm = (*Hybrid)(nil)
