package core

import (
	"sync"

	"qmatch/internal/lingo"
	"qmatch/internal/xmltree"
)

// This file implements the vocabulary-interned similarity kernel. The
// hybrid fill (Fig. 3) needs a label score and a property score for every
// pair-table cell — n·m linguistic comparisons on the naive path, 867k on
// the corpus' largest workload (231×3753 nodes). But schema vocabularies
// are tiny compared to schema trees: labels and property sets repeat
// heavily (the protein schemas reuse a few dozen element names thousands
// of times). The kernel interns both vocabularies at match entry, scores
// each unique (label, label) and (propset, propset) combination exactly
// once into dense matrices, and turns the per-cell axis work of
// treeWorker.pair into two array lookups. The linguistic cost of a match
// drops from O(n·m) to O(|Lₛ|·|Lₜ|) (see DESIGN.md §5.9).

// labelCell is one precomputed label-axis outcome.
type labelCell struct {
	score float64
	kind  lingo.Kind
}

// Interned is the per-side vocabulary of one schema tree: the dense label
// and normalized-property-set ids of every node in pre-order, plus the
// id → entry tables. Interning one side is independent of the other side,
// so an Interned value can be computed once per schema (at artifact compile
// time) and reused across every match the schema participates in — the
// compiled-schema fast path. All fields are read-only after Intern returns.
type Interned struct {
	// LabelID and PropID map node pre-order index → dense vocabulary id.
	LabelID []int32
	PropID  []int32
	// Labels and Props map dense id → vocabulary entry. Props entries are
	// Norm-canonicalized.
	Labels []string
	Props  []xmltree.Properties
}

// Intern builds the vocabulary of a pre-order node list: dense ids in
// first-appearance order for the distinct labels, and for the distinct
// Norm-canonicalized property sets (MatchProperties begins by norming both
// sides, so two sets equal after Norm always score alike).
func Intern(nodes []*xmltree.Node) *Interned {
	in := &Interned{
		LabelID: make([]int32, len(nodes)),
		PropID:  make([]int32, len(nodes)),
		Labels:  make([]string, 0, 64),
		Props:   make([]xmltree.Properties, 0, 32),
	}
	labelIndex := make(map[string]int32, 64)
	propIndex := make(map[xmltree.Properties]int32, 32)
	for i, n := range nodes {
		id, ok := labelIndex[n.Label]
		if !ok {
			id = int32(len(in.Labels))
			in.Labels = append(in.Labels, n.Label)
			labelIndex[n.Label] = id
		}
		in.LabelID[i] = id

		p := n.Props.Norm()
		pid, ok := propIndex[p]
		if !ok {
			pid = int32(len(in.Props))
			in.Props = append(in.Props, p)
			propIndex[p] = pid
		}
		in.PropID[i] = pid
	}
	return in
}

// simKernel holds the interned vocabularies and score matrices of one
// pair-table computation. All fields are written during the fill phase and
// read-only afterwards, so pair-table workers share a kernel freely.
type simKernel struct {
	src, tgt *Interned
	// Score matrices, indexed [srcID*|Tgt|+tgtID].
	labels []labelCell
	props  []PropertyQoM
}

// newKernel interns the label and property vocabularies of both node lists
// and allocates the (unfilled) score matrices.
func newKernel(srcNodes, tgtNodes []*xmltree.Node) *simKernel {
	return newKernelFrom(Intern(srcNodes), Intern(tgtNodes))
}

// newKernelFrom builds a kernel over pre-interned per-side vocabularies —
// the entry point of the compiled-schema path, which skips the interning
// walk entirely. The score matrices still must be filled per pair (they
// depend on both vocabularies), but the shared label cache makes repeat
// pairs cheap.
func newKernelFrom(src, tgt *Interned) *simKernel {
	return &simKernel{
		src:    src,
		tgt:    tgt,
		labels: make([]labelCell, len(src.Labels)*len(tgt.Labels)),
		props:  make([]PropertyQoM, len(src.Props)*len(tgt.Props)),
	}
}

// labelAt returns the label-axis outcome for the pair of nodes at source
// pre-order index i and target pre-order index j.
func (k *simKernel) labelAt(i, j int) labelCell {
	return k.labels[int(k.src.LabelID[i])*len(k.tgt.Labels)+int(k.tgt.LabelID[j])]
}

// propAt is labelAt for the property axis.
func (k *simKernel) propAt(i, j int) PropertyQoM {
	return k.props[int(k.src.PropID[i])*len(k.tgt.Props)+int(k.tgt.PropID[j])]
}

// fillLabelRows scores rows [lo, hi) of the label matrix, consulting (and
// feeding) the shared cross-match cache when one is attached.
func (k *simKernel) fillLabelRows(names *lingo.NameMatcher, cache *lingo.ScoreCache, lo, hi int) {
	nt := len(k.tgt.Labels)
	for i := lo; i < hi; i++ {
		sl := k.src.Labels[i]
		row := k.labels[i*nt : (i+1)*nt]
		for j, tl := range k.tgt.Labels {
			if cache != nil {
				if ls, ok := cache.Get(sl, tl); ok {
					row[j] = labelCell{score: ls.Score, kind: ls.Kind}
					continue
				}
			}
			s, kind := names.Match(sl, tl)
			row[j] = labelCell{score: s, kind: kind}
			if cache != nil {
				cache.Put(sl, tl, lingo.LabelScore{Score: s, Kind: kind})
			}
		}
	}
}

// fillPropRows scores rows [lo, hi) of the property matrix.
func (k *simKernel) fillPropRows(lo, hi int) {
	nt := len(k.tgt.Props)
	for i := lo; i < hi; i++ {
		sp := k.src.Props[i]
		row := k.props[i*nt : (i+1)*nt]
		for j, tp := range k.tgt.Props {
			row[j] = MatchProperties(sp, tp)
		}
	}
}

// fill computes both matrices on the calling goroutine.
func (k *simKernel) fill(names *lingo.NameMatcher, cache *lingo.ScoreCache) {
	k.fillLabelRows(names, cache, 0, len(k.src.Labels))
	k.fillPropRows(0, len(k.src.Props))
}

// fillParallel fans the matrix rows across the pair-table worker pool
// (each worker scores labels through its own NameMatcher clone). Rows are
// independent, so no ordering is needed beyond the final barrier; the
// result is bit-identical to a sequential fill because every cell is a
// pure function of its two vocabulary entries.
func (k *simKernel) fillParallel(workers []*treeWorker, cache *lingo.ScoreCache) {
	labelRows := make(chan int, len(k.src.Labels))
	for i := range k.src.Labels {
		labelRows <- i
	}
	close(labelRows)
	propRows := make(chan int, len(k.src.Props))
	for i := range k.src.Props {
		propRows <- i
	}
	close(propRows)

	var wg sync.WaitGroup
	for _, tw := range workers {
		tw := tw
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range labelRows {
				k.fillLabelRows(tw.names, cache, i, i+1)
			}
			for i := range propRows {
				k.fillPropRows(i, i+1)
			}
		}()
	}
	wg.Wait()
}
