package core

import (
	"sync"

	"qmatch/internal/lingo"
	"qmatch/internal/xmltree"
)

// This file implements the vocabulary-interned similarity kernel. The
// hybrid fill (Fig. 3) needs a label score and a property score for every
// pair-table cell — n·m linguistic comparisons on the naive path, 867k on
// the corpus' largest workload (231×3753 nodes). But schema vocabularies
// are tiny compared to schema trees: labels and property sets repeat
// heavily (the protein schemas reuse a few dozen element names thousands
// of times). The kernel interns both vocabularies at match entry, scores
// each unique (label, label) and (propset, propset) combination exactly
// once into dense matrices, and turns the per-cell axis work of
// treeWorker.pair into two array lookups. The linguistic cost of a match
// drops from O(n·m) to O(|Lₛ|·|Lₜ|) (see DESIGN.md §5.9).

// labelCell is one precomputed label-axis outcome.
type labelCell struct {
	score float64
	kind  lingo.Kind
}

// simKernel holds the interned vocabularies and score matrices of one
// pair-table computation. All fields are written during the fill phase and
// read-only afterwards, so pair-table workers share a kernel freely.
type simKernel struct {
	// Node pre-order index → dense vocabulary id.
	srcLabelID, tgtLabelID []int32
	srcPropID, tgtPropID   []int32
	// Dense id → vocabulary entry.
	srcLabels, tgtLabels []string
	srcProps, tgtProps   []xmltree.Properties
	// Score matrices, indexed [srcID*|Tgt|+tgtID].
	labels []labelCell
	props  []PropertyQoM
}

// newKernel interns the label and property vocabularies of both node lists
// and allocates the (unfilled) score matrices.
func newKernel(srcNodes, tgtNodes []*xmltree.Node) *simKernel {
	k := &simKernel{}
	k.srcLabelID, k.srcLabels = internLabels(srcNodes)
	k.tgtLabelID, k.tgtLabels = internLabels(tgtNodes)
	k.srcPropID, k.srcProps = internProps(srcNodes)
	k.tgtPropID, k.tgtProps = internProps(tgtNodes)
	k.labels = make([]labelCell, len(k.srcLabels)*len(k.tgtLabels))
	k.props = make([]PropertyQoM, len(k.srcProps)*len(k.tgtProps))
	return k
}

// internLabels assigns dense ids to the distinct labels of a node list, in
// first-appearance (pre-order) order.
func internLabels(nodes []*xmltree.Node) ([]int32, []string) {
	ids := make([]int32, len(nodes))
	uniq := make([]string, 0, 64)
	index := make(map[string]int32, 64)
	for i, n := range nodes {
		id, ok := index[n.Label]
		if !ok {
			id = int32(len(uniq))
			uniq = append(uniq, n.Label)
			index[n.Label] = id
		}
		ids[i] = id
	}
	return ids, uniq
}

// internProps assigns dense ids to the distinct property sets of a node
// list. Sets are canonicalized with Norm first — MatchProperties begins by
// norming both sides, so two sets equal after Norm always score alike.
func internProps(nodes []*xmltree.Node) ([]int32, []xmltree.Properties) {
	ids := make([]int32, len(nodes))
	uniq := make([]xmltree.Properties, 0, 32)
	index := make(map[xmltree.Properties]int32, 32)
	for i, n := range nodes {
		p := n.Props.Norm()
		id, ok := index[p]
		if !ok {
			id = int32(len(uniq))
			uniq = append(uniq, p)
			index[p] = id
		}
		ids[i] = id
	}
	return ids, uniq
}

// labelAt returns the label-axis outcome for the pair of nodes at source
// pre-order index i and target pre-order index j.
func (k *simKernel) labelAt(i, j int) labelCell {
	return k.labels[int(k.srcLabelID[i])*len(k.tgtLabels)+int(k.tgtLabelID[j])]
}

// propAt is labelAt for the property axis.
func (k *simKernel) propAt(i, j int) PropertyQoM {
	return k.props[int(k.srcPropID[i])*len(k.tgtProps)+int(k.tgtPropID[j])]
}

// fillLabelRows scores rows [lo, hi) of the label matrix, consulting (and
// feeding) the shared cross-match cache when one is attached.
func (k *simKernel) fillLabelRows(names *lingo.NameMatcher, cache *lingo.ScoreCache, lo, hi int) {
	nt := len(k.tgtLabels)
	for i := lo; i < hi; i++ {
		sl := k.srcLabels[i]
		row := k.labels[i*nt : (i+1)*nt]
		for j, tl := range k.tgtLabels {
			if cache != nil {
				if ls, ok := cache.Get(sl, tl); ok {
					row[j] = labelCell{score: ls.Score, kind: ls.Kind}
					continue
				}
			}
			s, kind := names.Match(sl, tl)
			row[j] = labelCell{score: s, kind: kind}
			if cache != nil {
				cache.Put(sl, tl, lingo.LabelScore{Score: s, Kind: kind})
			}
		}
	}
}

// fillPropRows scores rows [lo, hi) of the property matrix.
func (k *simKernel) fillPropRows(lo, hi int) {
	nt := len(k.tgtProps)
	for i := lo; i < hi; i++ {
		sp := k.srcProps[i]
		row := k.props[i*nt : (i+1)*nt]
		for j, tp := range k.tgtProps {
			row[j] = MatchProperties(sp, tp)
		}
	}
}

// fill computes both matrices on the calling goroutine.
func (k *simKernel) fill(names *lingo.NameMatcher, cache *lingo.ScoreCache) {
	k.fillLabelRows(names, cache, 0, len(k.srcLabels))
	k.fillPropRows(0, len(k.srcProps))
}

// fillParallel fans the matrix rows across the pair-table worker pool
// (each worker scores labels through its own NameMatcher clone). Rows are
// independent, so no ordering is needed beyond the final barrier; the
// result is bit-identical to a sequential fill because every cell is a
// pure function of its two vocabulary entries.
func (k *simKernel) fillParallel(workers []*treeWorker, cache *lingo.ScoreCache) {
	labelRows := make(chan int, len(k.srcLabels))
	for i := range k.srcLabels {
		labelRows <- i
	}
	close(labelRows)
	propRows := make(chan int, len(k.srcProps))
	for i := range k.srcProps {
		propRows <- i
	}
	close(propRows)

	var wg sync.WaitGroup
	for _, tw := range workers {
		tw := tw
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range labelRows {
				k.fillLabelRows(tw.names, cache, i, i+1)
			}
			for i := range propRows {
				k.fillPropRows(i, i+1)
			}
		}()
	}
	wg.Wait()
}
