package core

import (
	"sync"

	"qmatch/internal/lingo"
	"qmatch/internal/xmltree"
)

// This file implements the vocabulary-interned similarity kernel. The
// hybrid fill (Fig. 3) needs a label score and a property score for every
// pair-table cell — n·m linguistic comparisons on the naive path, 867k on
// the corpus' largest workload (231×3753 nodes). But schema vocabularies
// are tiny compared to schema trees: labels and property sets repeat
// heavily (the protein schemas reuse a few dozen element names thousands
// of times). The kernel interns both vocabularies at match entry, scores
// each unique (label, label) and (propset, propset) combination exactly
// once into dense matrices, and turns the per-cell axis work of
// treeWorker.pair into two array lookups. The linguistic cost of a match
// drops from O(n·m) to O(|Lₛ|·|Lₜ|) (see DESIGN.md §5.9).
//
// The matrices are stored structure-of-arrays (scores and kinds apart) in
// a tile-blocked layout — see the blocked type — and the score plane is
// float64 by default or float32 under PrecisionFloat32 (half the memory,
// scores within float32 rounding of the default; DESIGN.md §5.10).

// Precision selects the storage width of the kernel's score matrices.
// The default PrecisionFloat64 stores scores exactly as computed, keeping
// pair tables bit-identical to the unkerneled reference path.
// PrecisionFloat32 halves the matrices' memory; scores read back within
// float32 rounding (≤6e-8 for values in [0,1]), which the tolerance tests
// pin and which preserves pair rank order in practice.
type Precision uint8

const (
	// PrecisionFloat64 stores kernel scores at full width (default).
	PrecisionFloat64 Precision = iota
	// PrecisionFloat32 stores kernel scores at half width.
	PrecisionFloat32
)

// Tile geometry of the blocked matrices: 8 rows × 256 columns = 2048
// entries (16 KiB of float64 scores) per tile. Columns dominate because
// both the fill and the pair-table sweep walk target-major — a 256-entry
// run is long enough to stream, while 8-row tiles keep a parent row and
// its children's rows (nearby in pre-order, hence usually in vocabulary
// id) inside one resident tile during the children-axis loop.
const (
	tileRShift = 3
	tileCShift = 8
	tileRMask  = 1<<tileRShift - 1
	tileCMask  = 1<<tileCShift - 1
)

// blocked maps (row, col) positions of an R×C matrix onto a flat slice
// laid out as row-major tiles of row-major entries. Entries of one tile
// are contiguous, so sweeps that stay within a tile row touch long linear
// runs, and the padding to whole tiles is the only waste.
type blocked struct {
	tilesPerRow int
}

// newBlocked sizes a blocked layout for a rows×cols matrix, returning the
// layout and the padded entry count to allocate.
func newBlocked(rows, cols int) (blocked, int) {
	tpr := (cols + tileCMask) >> tileCShift
	tpc := (rows + tileRMask) >> tileRShift
	return blocked{tilesPerRow: tpr}, tpc * tpr << (tileRShift + tileCShift)
}

// idx returns the flat position of matrix entry (i, j).
func (b blocked) idx(i, j int32) int {
	return (int(i>>tileRShift)*b.tilesPerRow+int(j>>tileCShift))<<(tileRShift+tileCShift) |
		int(i&tileRMask)<<tileCShift | int(j&tileCMask)
}

// Interned is the per-side vocabulary of one schema tree: the dense label
// and normalized-property-set ids of every node in pre-order, plus the
// id → entry tables. Interning one side is independent of the other side,
// so an Interned value can be computed once per schema (at artifact compile
// time) and reused across every match the schema participates in — the
// compiled-schema fast path. All fields are read-only after Intern returns.
type Interned struct {
	// LabelID and PropID map node pre-order index → dense vocabulary id.
	LabelID []int32
	PropID  []int32
	// Labels and Props map dense id → vocabulary entry. Props entries are
	// Norm-canonicalized.
	Labels []string
	Props  []xmltree.Properties
}

// Intern builds the vocabulary of a pre-order node list: dense ids in
// first-appearance order for the distinct labels, and for the distinct
// Norm-canonicalized property sets (MatchProperties begins by norming both
// sides, so two sets equal after Norm always score alike).
func Intern(nodes []*xmltree.Node) *Interned {
	in := &Interned{
		LabelID: make([]int32, len(nodes)),
		PropID:  make([]int32, len(nodes)),
		Labels:  make([]string, 0, 64),
		Props:   make([]xmltree.Properties, 0, 32),
	}
	labelIndex := make(map[string]int32, 64)
	propIndex := make(map[xmltree.Properties]int32, 32)
	for i, n := range nodes {
		id, ok := labelIndex[n.Label]
		if !ok {
			id = int32(len(in.Labels))
			in.Labels = append(in.Labels, n.Label)
			labelIndex[n.Label] = id
		}
		in.LabelID[i] = id

		p := n.Props.Norm()
		pid, ok := propIndex[p]
		if !ok {
			pid = int32(len(in.Props))
			in.Props = append(in.Props, p)
			propIndex[p] = pid
		}
		in.PropID[i] = pid
	}
	return in
}

// simKernel holds the interned vocabularies and score matrices of one
// pair-table computation. All fields are written during the fill phase and
// read-only afterwards, so pair-table workers share a kernel freely.
// Scores and kinds live in separate planes (structure-of-arrays): the
// children-axis sweep reads only scores, and kinds pack to one byte.
type simKernel struct {
	src, tgt *Interned
	prec     Precision

	lb           blocked // label-matrix layout (|Lₛ|×|Lₜ|)
	labelScore64 []float64
	labelScore32 []float32
	labelKind    []uint8

	pb          blocked // property-matrix layout (|Pₛ|×|Pₜ|)
	propScore64 []float64
	propScore32 []float32
	propKind    []uint8
}

// newKernel interns the label and property vocabularies of both node lists
// and allocates the (unfilled) score matrices.
func newKernel(srcNodes, tgtNodes []*xmltree.Node, prec Precision) *simKernel {
	return newKernelFrom(Intern(srcNodes), Intern(tgtNodes), prec, nil)
}

// newKernelFrom builds a kernel over pre-interned per-side vocabularies —
// the entry point of the compiled-schema path, which skips the interning
// walk entirely. The score matrices still must be filled per pair (they
// depend on both vocabularies), but the shared label cache makes repeat
// pairs cheap. When b is non-nil the score planes reuse its pooled slabs;
// stale contents are harmless because the fill writes every logical entry
// and the accessors never touch tile padding.
func newKernelFrom(src, tgt *Interned, prec Precision, b *matchBuffers) *simKernel {
	k := &simKernel{src: src, tgt: tgt, prec: prec}
	var ln, pn int
	k.lb, ln = newBlocked(len(src.Labels), len(tgt.Labels))
	k.pb, pn = newBlocked(len(src.Props), len(tgt.Props))
	if b == nil {
		b = &matchBuffers{} // unpooled scratch
	}
	b.lKind = grow(b.lKind, ln)
	b.pKind = grow(b.pKind, pn)
	k.labelKind, k.propKind = b.lKind, b.pKind
	if prec == PrecisionFloat32 {
		b.lS32 = grow(b.lS32, ln)
		b.pS32 = grow(b.pS32, pn)
		k.labelScore32, k.propScore32 = b.lS32, b.pS32
	} else {
		b.lS64 = grow(b.lS64, ln)
		b.pS64 = grow(b.pS64, pn)
		k.labelScore64, k.propScore64 = b.lS64, b.pS64
	}
	return k
}

// logicalCells is the number of scored matrix entries (excluding tile
// padding), the count the intern trace span reports.
func (k *simKernel) logicalCells() int64 {
	return int64(len(k.src.Labels)*len(k.tgt.Labels) + len(k.src.Props)*len(k.tgt.Props))
}

// labelAt returns the label-axis outcome for the pair of nodes at source
// pre-order index i and target pre-order index j.
func (k *simKernel) labelAt(i, j int) (float64, lingo.Kind) {
	idx := k.lb.idx(k.src.LabelID[i], k.tgt.LabelID[j])
	if k.labelScore64 != nil {
		return k.labelScore64[idx], lingo.Kind(k.labelKind[idx])
	}
	return float64(k.labelScore32[idx]), lingo.Kind(k.labelKind[idx])
}

// propAt is labelAt for the property axis.
func (k *simKernel) propAt(i, j int) (float64, lingo.Kind) {
	idx := k.pb.idx(k.src.PropID[i], k.tgt.PropID[j])
	if k.propScore64 != nil {
		return k.propScore64[idx], lingo.Kind(k.propKind[idx])
	}
	return float64(k.propScore32[idx]), lingo.Kind(k.propKind[idx])
}

// setLabel stores one label-matrix entry at (label id, label id).
func (k *simKernel) setLabel(i, j int32, s float64, kind lingo.Kind) {
	idx := k.lb.idx(i, j)
	if k.labelScore64 != nil {
		k.labelScore64[idx] = s
	} else {
		k.labelScore32[idx] = float32(s)
	}
	k.labelKind[idx] = uint8(kind)
}

// setProp stores one property-matrix entry at (prop id, prop id).
func (k *simKernel) setProp(i, j int32, p PropertyQoM) {
	idx := k.pb.idx(i, j)
	if k.propScore64 != nil {
		k.propScore64[idx] = p.Score
	} else {
		k.propScore32[idx] = float32(p.Score)
	}
	k.propKind[idx] = uint8(p.Kind)
}

// fillLabelRows scores rows [lo, hi) of the label matrix through a batch
// scorer, consulting (and feeding) the shared cross-match cache when one
// is attached.
func (k *simKernel) fillLabelRows(ks *lingo.KernelScorer, cache *lingo.ScoreCache, lo, hi int) {
	for i := lo; i < hi; i++ {
		sl := k.src.Labels[i]
		for j, tl := range k.tgt.Labels {
			if cache != nil {
				if ls, ok := cache.Get(sl, tl); ok {
					k.setLabel(int32(i), int32(j), ls.Score, ls.Kind)
					continue
				}
			}
			s, kind := ks.Score(int32(i), int32(j))
			k.setLabel(int32(i), int32(j), s, kind)
			if cache != nil {
				cache.Put(sl, tl, lingo.LabelScore{Score: s, Kind: kind})
			}
		}
	}
}

// fillPropRows scores rows [lo, hi) of the property matrix.
func (k *simKernel) fillPropRows(lo, hi int) {
	for i := lo; i < hi; i++ {
		sp := k.src.Props[i]
		for j, tp := range k.tgt.Props {
			k.setProp(int32(i), int32(j), MatchProperties(sp, tp))
		}
	}
}

// fill computes both matrices on the calling goroutine.
func (k *simKernel) fill(names *lingo.NameMatcher, cache *lingo.ScoreCache) {
	ks := names.NewKernelScorer(k.src.Labels, k.tgt.Labels)
	k.fillLabelRows(ks, cache, 0, len(k.src.Labels))
	k.fillPropRows(0, len(k.src.Props))
}

// fillParallel fans the matrix rows across par goroutines. The batch
// scorer is built once on the calling goroutine (construction mutates the
// matcher's memos) and then shared read-only — Score is concurrency-safe —
// so the per-worker matcher clones of the pair-table phase are not needed
// here. Rows are independent and every cell is a pure function of its two
// vocabulary entries, so the result is bit-identical to a sequential fill.
func (k *simKernel) fillParallel(names *lingo.NameMatcher, cache *lingo.ScoreCache, par int) {
	ks := names.NewKernelScorer(k.src.Labels, k.tgt.Labels)
	labelRows := make(chan int, len(k.src.Labels))
	for i := range k.src.Labels {
		labelRows <- i
	}
	close(labelRows)
	propRows := make(chan int, len(k.src.Props))
	for i := range k.src.Props {
		propRows <- i
	}
	close(propRows)

	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range labelRows {
				k.fillLabelRows(ks, cache, i, i+1)
			}
			for i := range propRows {
				k.fillPropRows(i, i+1)
			}
		}()
	}
	wg.Wait()
}
