package core

import (
	"fmt"

	"qmatch/internal/lingo"
)

// Coverage classifies the children axis of a match (paper §2.1): Total when
// every source child matches some target child, Partial when some but not
// all do, CoverageNone when none do. Leaves have Total coverage by
// definition (vacuously).
type Coverage int

const (
	CoverageNone Coverage = iota
	Partial
	Total
)

// String returns the coverage name.
func (c Coverage) String() string {
	switch c {
	case Total:
		return "total"
	case Partial:
		return "partial"
	default:
		return "none"
	}
}

// Class is the overall QoM taxonomy classification of a node pair
// (paper §2.2).
type Class int

const (
	// NoMatch: the pair exhibits no meaningful overlap.
	NoMatch Class = iota
	// PartialRelaxed: relaxed match on one or more atomic axes and/or a
	// partial-relaxed children match.
	PartialRelaxed
	// PartialExact: exact on all atomic axes, partial-exact on children.
	PartialExact
	// TotalRelaxed: all children match but relaxedly, or some atomic
	// axis is relaxed.
	TotalRelaxed
	// TotalExact: exact on every atomic axis, total-exact on children.
	TotalExact
)

// String returns the class name as used in the paper.
func (c Class) String() string {
	switch c {
	case TotalExact:
		return "total exact"
	case TotalRelaxed:
		return "total relaxed"
	case PartialExact:
		return "partial exact"
	case PartialRelaxed:
		return "partial relaxed"
	default:
		return "no match"
	}
}

// QoM is the full quality-of-match breakdown for one source/target node
// pair: the per-axis scores and kinds, the children-axis decomposition
// (Rw, Rs, coverage), the weighted overall value (Eq. 1/6) and the taxonomy
// classification.
type QoM struct {
	// Per-axis scores in [0,1].
	Label      float64
	Properties float64
	Level      float64
	Children   float64

	// Per-axis qualitative kinds.
	LabelKind      lingo.Kind
	PropertiesKind lingo.Kind
	LevelExact     bool

	// Children-axis decomposition (Eq. 3–5). For leaf/leaf pairs Rw and
	// Rs are 1 (children match exactly by default, Eq. 2's constant).
	SubtreeWeight    float64 // Rw
	CardinalityRatio float64 // Rs
	Coverage         Coverage
	ChildrenAllExact bool

	// Value is the weighted overall QoM.
	Value float64
	// Class is the taxonomy classification.
	Class Class
	// Leaf reports whether both nodes are leaves (leaf-match rules used).
	Leaf bool
}

// classify derives the taxonomy class from the axis kinds (paper §2.2).
func (q *QoM) classify() {
	atomicExact := q.LabelKind == lingo.Exact && q.PropertiesKind == lingo.Exact && q.LevelExact
	atomicNone := q.LabelKind == lingo.None && q.PropertiesKind == lingo.None

	if q.Leaf {
		// Leaf matches are exact or relaxed on label+properties alone
		// (level is 0/0 and children vacuous by definition, §2.2).
		switch {
		case q.LabelKind == lingo.Exact && q.PropertiesKind == lingo.Exact:
			q.Class = TotalExact
		case q.LabelKind == lingo.None:
			q.Class = NoMatch
		default:
			q.Class = TotalRelaxed
		}
		return
	}

	switch q.Coverage {
	case Total:
		if atomicExact && q.ChildrenAllExact {
			q.Class = TotalExact
		} else {
			q.Class = TotalRelaxed
		}
	case Partial:
		if atomicExact && q.ChildrenAllExact {
			q.Class = PartialExact
		} else {
			q.Class = PartialRelaxed
		}
	default:
		if atomicNone {
			q.Class = NoMatch
		} else {
			q.Class = PartialRelaxed
		}
	}
}

// String summarizes the QoM for diagnostics, e.g.
// "0.87 total relaxed (L=1.00/exact P=0.90 H=0 C=0.98)".
func (q QoM) String() string {
	h := 0
	if q.LevelExact {
		h = 1
	}
	return fmt.Sprintf("%.2f %s (L=%.2f/%s P=%.2f/%s H=%d C=%.2f)",
		q.Value, q.Class, q.Label, q.LabelKind, q.Properties, q.PropertiesKind, h, q.Children)
}
