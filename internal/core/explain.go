package core

import (
	"fmt"
	"sort"
	"strings"

	"qmatch/internal/xmltree"
)

// Explain renders a human-readable derivation of one pair's QoM from a
// match result: the per-axis scores and kinds, the weighted contribution
// of each axis, and — for non-leaf pairs — the per-child best matches that
// built the children axis. Matchers are usually judged by their output
// alone; being able to ask "why did these two elements score 0.82?" is
// what makes a matcher debuggable and tunable.
func (m *Matcher) Explain(r *Result, s, t *xmltree.Node) string {
	q, ok := r.Pair(s, t)
	if !ok {
		return fmt.Sprintf("no QoM recorded for %s vs %s", s.Path(), t.Path())
	}
	w := m.Weights.Normalized()
	var b strings.Builder
	fmt.Fprintf(&b, "QoM(%s, %s) = %.3f — %s\n", s.Path(), t.Path(), q.Value, q.Class)
	fmt.Fprintf(&b, "  label      %.3f (%s)%*s × WL=%.2f → %+.3f\n",
		q.Label, q.LabelKind, 9-len(q.LabelKind.String()), "", w.Label, w.Label*q.Label)
	fmt.Fprintf(&b, "  properties %.3f (%s)%*s × WP=%.2f → %+.3f\n",
		q.Properties, q.PropertiesKind, 9-len(q.PropertiesKind.String()), "", w.Properties, w.Properties*q.Properties)
	lvl := "differs"
	if q.LevelExact {
		lvl = "equal"
	}
	if q.Leaf {
		lvl = "leaf (exact by definition)"
	}
	fmt.Fprintf(&b, "  level      %.3f (%s) × WH=%.2f → %+.3f\n", q.Level, lvl, w.Level, w.Level*q.Level)
	fmt.Fprintf(&b, "  children   %.3f (Rw=%.3f Rs=%.3f, coverage %s) × WC=%.2f → %+.3f\n",
		q.Children, q.SubtreeWeight, q.CardinalityRatio, q.Coverage, w.Children, w.Children*q.Children)

	if !q.Leaf && len(s.Children) > 0 {
		b.WriteString("  child contributions (best target per source child, threshold ")
		fmt.Fprintf(&b, "%.2f):\n", m.Threshold)
		for _, cs := range s.Children {
			best, bt := QoM{}, (*xmltree.Node)(nil)
			consider := func(ct *xmltree.Node) {
				if cq, ok := r.Pair(cs, ct); ok && cq.Value > best.Value {
					best, bt = cq, ct
				}
			}
			for _, ct := range t.Children {
				consider(ct)
			}
			if !cs.IsLeaf() {
				consider(t)
			}
			switch {
			case bt == nil:
				fmt.Fprintf(&b, "    %-30s -> (no candidate)\n", cs.Label)
			case best.Value >= m.Threshold-1e-9:
				fmt.Fprintf(&b, "    %-30s -> %-30s %.3f ✓\n", cs.Label, bt.Label, best.Value)
			default:
				fmt.Fprintf(&b, "    %-30s -> %-30s %.3f below threshold\n", cs.Label, bt.Label, best.Value)
			}
		}
	}
	return b.String()
}

// ExplainTop renders explanations for the n best pairs of a result.
func (m *Matcher) ExplainTop(r *Result, n int) string {
	top := r.TopPairs(n)
	parts := make([]string, 0, len(top))
	for _, p := range top {
		parts = append(parts, m.Explain(r, p.Source, p.Target))
	}
	return strings.Join(parts, "\n")
}

// BestPerSource returns, for every source node, its best-scoring target
// pair, ordered by source pre-order — a compact overview of a result.
func (r *Result) BestPerSource() []PairQoM {
	var out []PairQoM
	for _, s := range r.Source.Nodes() {
		t, q := r.BestForSource(s)
		if t != nil {
			out = append(out, PairQoM{Source: s, Target: t, QoM: q})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Source.Path() < out[j].Source.Path()
	})
	return out
}
