package core

import (
	"math"
	"testing"

	"qmatch/internal/lingo"
	"qmatch/internal/xmltree"
)

// poSource builds the PO schema tree of Figure 1.
func poSource() *xmltree.Node {
	lines := xmltree.NewTree("Lines", xmltree.Elem(""),
		xmltree.New("Item", xmltree.Elem("string")),
		xmltree.New("Quantity", xmltree.Elem("integer")),
		xmltree.New("UnitOfMeasure", xmltree.Elem("string")),
	)
	info := xmltree.NewTree("PurchaseInfo", xmltree.Elem(""),
		xmltree.New("BillingAddr", xmltree.Elem("string")),
		xmltree.New("ShippingAddr", xmltree.Elem("string")),
		lines,
	)
	return xmltree.NewTree("PO", xmltree.Elem(""),
		xmltree.New("OrderNo", xmltree.Elem("integer")),
		info,
		xmltree.New("PurchaseDate", xmltree.Elem("date")),
	)
}

// poTarget builds the Purchase Order schema tree of Figure 2.
func poTarget() *xmltree.Node {
	items := xmltree.NewTree("Items", xmltree.Elem(""),
		xmltree.New("Item#", xmltree.Elem("string")),
		xmltree.New("Qty", xmltree.Elem("integer")),
		xmltree.New("UOM", xmltree.Elem("string")),
	)
	return xmltree.NewTree("PurchaseOrder", xmltree.Elem(""),
		xmltree.New("OrderNo", xmltree.Elem("integer")),
		xmltree.New("BillTo", xmltree.Elem("string")),
		xmltree.New("ShipTo", xmltree.Elem("string")),
		items,
		xmltree.New("Date", xmltree.Elem("date")),
	)
}

func defaultMatcher() *Matcher { return NewMatcher(nil) }

// TestPaperWalkthrough reproduces the worked example of paper §2.2 pair by
// pair.
func TestPaperWalkthrough(t *testing.T) {
	src, tgt := poSource(), poTarget()
	m := defaultMatcher()
	res := m.Tree(src, tgt)

	get := func(sp, tp string) QoM {
		s, tn := src.Find(sp), tgt.Find(tp)
		if s == nil || tn == nil {
			t.Fatalf("missing node %q or %q", sp, tp)
		}
		q, ok := res.Pair(s, tn)
		if !ok {
			t.Fatalf("no pair for %q vs %q", sp, tp)
		}
		return q
	}

	// "The match between the two leaf elements OrderNo ... is exact."
	orderNo := get("PO/OrderNo", "PurchaseOrder/OrderNo")
	if orderNo.Class != TotalExact || orderNo.Value != 1 {
		t.Errorf("OrderNo/OrderNo = %v, want total exact with QoM 1", orderNo)
	}

	// "The match between ... Quantity ... and Qty ... is said to be
	// relaxed as the label Quantity has a relaxed match with the label
	// Qty. Their set of properties match exactly."
	qty := get("PO/PurchaseInfo/Lines/Quantity", "PurchaseOrder/Items/Qty")
	if qty.LabelKind != lingo.Relaxed {
		t.Errorf("Quantity/Qty label kind = %v, want relaxed", qty.LabelKind)
	}
	if qty.PropertiesKind != lingo.Exact {
		t.Errorf("Quantity/Qty props kind = %v, want exact", qty.PropertiesKind)
	}
	if qty.Class != TotalRelaxed {
		t.Errorf("Quantity/Qty class = %v, want total relaxed", qty.Class)
	}

	// "the child Item of Lines has an exact match with the child Item#"
	item := get("PO/PurchaseInfo/Lines/Item", "PurchaseOrder/Items/Item#")
	if item.LabelKind != lingo.Exact {
		t.Errorf("Item/Item# label kind = %v, want exact", item.LabelKind)
	}

	// "the QoM of the match between Lines and Items is said to be total
	// relaxed along the children axis. The elements Lines and Items have
	// a relaxed match along the label and level axis (they are at
	// different levels in the schema tree) ... there is a total relaxed
	// match between the elements Lines and Items."
	lines := get("PO/PurchaseInfo/Lines", "PurchaseOrder/Items")
	if lines.LabelKind != lingo.Relaxed {
		t.Errorf("Lines/Items label kind = %v, want relaxed", lines.LabelKind)
	}
	if lines.LevelExact {
		t.Error("Lines/Items level should not match (levels 2 vs 1)")
	}
	if lines.Coverage != Total {
		t.Errorf("Lines/Items coverage = %v, want total", lines.Coverage)
	}
	if lines.ChildrenAllExact {
		t.Error("Lines/Items children should include relaxed matches")
	}
	if lines.Class != TotalRelaxed {
		t.Errorf("Lines/Items class = %v, want total relaxed", lines.Class)
	}

	// "the node PurchaseInfo has a total relaxed match with the node
	// Purchase Order" (source child vs target root, different depths).
	info := get("PO/PurchaseInfo", "PurchaseOrder")
	if info.Class != TotalRelaxed {
		t.Errorf("PurchaseInfo/PurchaseOrder class = %v, want total relaxed", info.Class)
	}
	if info.LevelExact {
		t.Error("PurchaseInfo/PurchaseOrder level should not match")
	}
	if info.Coverage != Total {
		t.Errorf("PurchaseInfo/PurchaseOrder coverage = %v, want total", info.Coverage)
	}

	// "the QoM for the match between the PO and Purchase root nodes is
	// said to be total relaxed", with no level match (height 3 vs 2) and
	// a relaxed label match (PO is the acronym of Purchase Order).
	root := res.Root
	if root.LabelKind != lingo.Relaxed {
		t.Errorf("root label kind = %v, want relaxed", root.LabelKind)
	}
	if root.LevelExact {
		t.Error("roots' level should not match (heights 3 vs 2)")
	}
	if root.Class != TotalRelaxed {
		t.Errorf("root class = %v, want total relaxed", root.Class)
	}
	if root.Value <= 0.5 || root.Value >= 1 {
		t.Errorf("root QoM = %v, want in (0.5, 1)", root.Value)
	}
}

func TestIdenticalTreesScoreOne(t *testing.T) {
	src := poSource()
	tgt := poSource()
	res := defaultMatcher().Tree(src, tgt)
	if res.Root.Class != TotalExact {
		t.Fatalf("self match class = %v", res.Root.Class)
	}
	if math.Abs(res.Root.Value-1) > 1e-9 {
		t.Fatalf("self match QoM = %v, want 1", res.Root.Value)
	}
	// Every aligned pair scores 1.
	for _, s := range src.Nodes() {
		tn := tgt.Find(s.Path())
		q, ok := res.Pair(s, tn)
		if !ok || math.Abs(q.Value-1) > 1e-9 {
			t.Fatalf("pair %s = %v", s.Path(), q)
		}
	}
}

func TestDisjointTreesScoreLow(t *testing.T) {
	// Library (Fig. 7) vs Human (Fig. 8) are linguistically disjoint but
	// structurally identical; with the hybrid the structural axes keep
	// the score mid-range (Fig. 9's averaging observation).
	library := xmltree.NewTree("Library", xmltree.Elem(""),
		xmltree.NewTree("Book", xmltree.Elem(""),
			xmltree.New("number", xmltree.Elem("integer")),
			xmltree.NewTree("Title", xmltree.Elem(""),
				xmltree.New("character", xmltree.Elem("string"))),
			xmltree.New("Writer", xmltree.Elem("string")),
		),
	)
	human := xmltree.NewTree("human", xmltree.Elem(""),
		xmltree.NewTree("body", xmltree.Elem(""),
			xmltree.New("hands", xmltree.Elem("integer")),
			xmltree.NewTree("head", xmltree.Elem(""),
				xmltree.New("man", xmltree.Elem("string"))),
			xmltree.New("legs", xmltree.Elem("string")),
		),
	)
	res := defaultMatcher().Tree(library, human)
	if res.Root.LabelKind != lingo.None {
		t.Fatalf("library/human label kind = %v", res.Root.LabelKind)
	}
	v := res.Root.Value
	if v < 0.3 || v > 0.85 {
		t.Fatalf("hybrid QoM for structure-only overlap = %v, want mid-range", v)
	}
}

func TestLeafVsInnerNode(t *testing.T) {
	leaf := xmltree.New("OrderNo", xmltree.Elem("integer"))
	inner := poSource()
	q := defaultMatcher().MatchNodes(leaf, inner)
	if q.Leaf {
		t.Fatal("leaf-vs-inner treated as leaf pair")
	}
	if q.Children != 0 || q.Coverage != CoverageNone {
		t.Fatalf("leaf-vs-inner children axis = %v", q)
	}
}

func TestThresholdGatesChildren(t *testing.T) {
	src, tgt := poSource(), poTarget()
	strict := NewMatcher(nil)
	strict.Threshold = 0.99 // only perfect children count
	res := strict.Tree(src, tgt)
	// With a 0.99 threshold only OrderNo survives under the roots.
	if res.Root.Coverage != Partial {
		t.Fatalf("coverage with strict threshold = %v, want partial", res.Root.Coverage)
	}
	loose := NewMatcher(nil)
	loose.Threshold = 0
	res2 := loose.Tree(src, tgt)
	if res2.Root.Coverage != Total {
		t.Fatalf("coverage with zero threshold = %v, want total", res2.Root.Coverage)
	}
	if res2.Root.Value <= res.Root.Value {
		t.Fatal("looser threshold should not lower root QoM here")
	}
}

func TestWeightsNormalizedDuringMatch(t *testing.T) {
	src := poSource()
	m := NewMatcher(nil)
	m.Weights = AxisWeights{Label: 3, Properties: 2, Level: 1, Children: 4}
	res := m.Tree(src, poSource())
	if math.Abs(res.Root.Value-1) > 1e-9 {
		t.Fatalf("unnormalized weights leak: %v", res.Root.Value)
	}
}

func TestQoMBounds(t *testing.T) {
	src, tgt := poSource(), poTarget()
	res := defaultMatcher().Tree(src, tgt)
	for _, p := range res.Pairs() {
		q := p.QoM
		for name, v := range map[string]float64{
			"value": q.Value, "label": q.Label, "props": q.Properties,
			"level": q.Level, "children": q.Children,
			"Rw": q.SubtreeWeight, "Rs": q.CardinalityRatio,
		} {
			if v < 0 || v > 1+1e-9 {
				t.Fatalf("%s out of [0,1] for %s vs %s: %v",
					name, p.Source.Path(), p.Target.Path(), v)
			}
		}
	}
}

func TestPairsDeterministicAndComplete(t *testing.T) {
	src, tgt := poSource(), poTarget()
	res := defaultMatcher().Tree(src, tgt)
	pairs := res.Pairs()
	if len(pairs) != src.Size()*tgt.Size() {
		t.Fatalf("pairs = %d, want %d", len(pairs), src.Size()*tgt.Size())
	}
	again := defaultMatcher().Tree(src, tgt).Pairs()
	for i := range pairs {
		if pairs[i].Source != again[i].Source || pairs[i].Target != again[i].Target {
			t.Fatal("pair order not deterministic")
		}
		if pairs[i].QoM.Value != again[i].QoM.Value {
			t.Fatal("pair values not deterministic")
		}
	}
}

func TestBestForSource(t *testing.T) {
	src, tgt := poSource(), poTarget()
	res := defaultMatcher().Tree(src, tgt)
	s := src.Find("PO/PurchaseInfo/Lines/Quantity")
	best, q := res.BestForSource(s)
	if best == nil || best.Label != "Qty" {
		t.Fatalf("best for Quantity = %v (%v)", best, q)
	}
}

func TestTopPairs(t *testing.T) {
	src, tgt := poSource(), poTarget()
	res := defaultMatcher().Tree(src, tgt)
	top := res.TopPairs(3)
	if len(top) != 3 {
		t.Fatalf("top = %d", len(top))
	}
	if top[0].QoM.Value < top[1].QoM.Value || top[1].QoM.Value < top[2].QoM.Value {
		t.Fatal("top pairs not sorted")
	}
	if top[0].QoM.Value != 1 { // OrderNo/OrderNo
		t.Fatalf("best pair value = %v", top[0].QoM.Value)
	}
	all := res.TopPairs(1 << 20)
	if len(all) != src.Size()*tgt.Size() {
		t.Fatalf("TopPairs overflow clamp failed: %d", len(all))
	}
}

func TestMatchNodesSubtree(t *testing.T) {
	src, tgt := poSource(), poTarget()
	lines := src.Find("PO/PurchaseInfo/Lines")
	items := tgt.Find("PurchaseOrder/Items")
	q := defaultMatcher().MatchNodes(lines, items)
	if q.Class != TotalRelaxed {
		t.Fatalf("subtree match class = %v", q.Class)
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		NoMatch: "no match", PartialRelaxed: "partial relaxed",
		PartialExact: "partial exact", TotalRelaxed: "total relaxed",
		TotalExact: "total exact",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Class(%d) = %q, want %q", c, c.String(), s)
		}
	}
	cov := map[Coverage]string{CoverageNone: "none", Partial: "partial", Total: "total"}
	for c, s := range cov {
		if c.String() != s {
			t.Errorf("Coverage(%d) = %q, want %q", c, c.String(), s)
		}
	}
}

func TestQoMString(t *testing.T) {
	src, tgt := poSource(), poTarget()
	res := defaultMatcher().Tree(src, tgt)
	s := res.Root.String()
	if s == "" || len(s) < 10 {
		t.Fatalf("QoM.String = %q", s)
	}
}

func TestWeights(t *testing.T) {
	d := DefaultWeights()
	if !d.Valid() {
		t.Fatal("default weights invalid")
	}
	if d.Label != 0.3 || d.Properties != 0.2 || d.Level != 0.1 || d.Children != 0.4 {
		t.Fatalf("default weights = %+v", d)
	}
	bad := AxisWeights{Label: -1, Properties: 1, Level: 0.5, Children: 0.5}
	if bad.Valid() {
		t.Fatal("negative weight accepted")
	}
	n := AxisWeights{Label: 2, Properties: 2, Level: 2, Children: 2}.Normalized()
	if !n.Valid() {
		t.Fatalf("normalized invalid: %+v", n)
	}
	z := AxisWeights{}.Normalized()
	if z != DefaultWeights() {
		t.Fatalf("zero weights normalized = %+v", z)
	}
	if DefaultWeights().String() != "WL=0.30 WP=0.20 WH=0.10 WC=0.40" {
		t.Fatalf("weights string = %q", DefaultWeights().String())
	}
}
