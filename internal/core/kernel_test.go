package core

import (
	"reflect"
	"sort"
	"testing"

	"qmatch/internal/dataset"
	"qmatch/internal/lingo"
	"qmatch/internal/xmltree"
)

// tableOf recomputes a pair table with the given matcher and returns the
// raw dense table for bit-identical comparison.
func tableOf(m *Matcher, src, tgt *xmltree.Node) []QoM {
	return m.Tree(src, tgt).table
}

// The interned kernel must not change a single bit of any pair table: every
// corpus workload scores identically with the kernel on (default), off
// (the direct-scoring reference path) and with a shared score cache
// attached.
func TestKernelEquivalence(t *testing.T) {
	pairs := []dataset.Pair{
		dataset.POPair(), dataset.BookPair(), dataset.DCMDPair(),
		dataset.XBenchPair(), dataset.LibraryHumanPair(),
	}
	if !testing.Short() {
		pairs = append(pairs, dataset.ProteinPair())
	}
	for _, p := range pairs {
		ref := NewMatcher(nil)
		ref.noKernel = true
		want := tableOf(ref, p.Source, p.Target)

		kern := NewMatcher(nil)
		if got := tableOf(kern, p.Source, p.Target); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: kernel table differs from direct-scoring table", p.Name)
		}

		cached := NewMatcher(nil)
		cached.Scores = lingo.NewScoreCache(0)
		if got := tableOf(cached, p.Source, p.Target); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: cache-fed kernel table differs from direct-scoring table", p.Name)
		}
		// A second run on the same matcher answers every label from the
		// cache — still bit-identical.
		if got := tableOf(cached, p.Source, p.Target); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: warm-cache table differs from direct-scoring table", p.Name)
		}
		if s := cached.Scores.Stats(); s.Hits == 0 {
			t.Errorf("%s: warm rerun recorded no cache hits (%+v)", p.Name, s)
		}
	}
}

// The parallel fill (kernel rows and level sweep fanned over the worker
// pool) must also be bit-identical. 81×81 nodes crosses parallelCutoff.
func TestKernelEquivalenceParallel(t *testing.T) {
	src, tgt := wide("L", 80), wide("R", 80)
	if cells := src.Size() * tgt.Size(); cells < parallelCutoff {
		t.Fatalf("workload has %d cells, below the parallel cutoff %d", cells, parallelCutoff)
	}
	ref := NewMatcher(nil)
	ref.noKernel = true
	want := tableOf(ref, src, tgt)

	par := NewMatcher(nil)
	par.Parallelism = 4
	par.Scores = lingo.NewScoreCache(0)
	if got := tableOf(par, src, tgt); !reflect.DeepEqual(got, want) {
		t.Error("parallel kernel table differs from sequential direct-scoring table")
	}
}

// A node outside the matched trees must yield the zero QoM, not a panic
// from the -1 table index Result.cell would produce.
func TestPairForeignNode(t *testing.T) {
	p := dataset.DCMDPair()
	m := NewMatcher(nil)
	r := m.Tree(p.Source, p.Target)
	tw := &treeWorker{m: m, names: m.Names, r: r, w: m.Weights.Normalized()}
	foreign := xmltree.New("Stranger", xmltree.Elem("string"))
	if q := tw.pair(foreign, p.Target); q != (QoM{}) {
		t.Errorf("pair(foreign, target) = %+v, want zero QoM", q)
	}
	if q := tw.pair(p.Source, foreign); q != (QoM{}) {
		t.Errorf("pair(source, foreign) = %+v, want zero QoM", q)
	}
	if q, ok := r.Pair(foreign, p.Target); ok || q != (QoM{}) {
		t.Errorf("Pair(foreign, target) = %+v, %v, want zero, false", q, ok)
	}
}

// topPairsReference is the pre-heap implementation: materialize every pair,
// stable-sort descending by value (pre-order position breaks ties), take n.
func topPairsReference(r *Result, n int) []PairQoM {
	pairs := r.Pairs()
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].QoM.Value > pairs[j].QoM.Value })
	if n > len(pairs) {
		n = len(pairs)
	}
	if n < 0 {
		n = 0
	}
	return pairs[:n]
}

// The bounded-heap TopPairs must reproduce the sort-based ordering exactly,
// ties included — wide trees make nearly every cell a tie.
func TestTopPairsMatchesSort(t *testing.T) {
	results := []*Result{
		NewMatcher(nil).Tree(dataset.DCMDPair().Source, dataset.DCMDPair().Target),
		NewMatcher(nil).Tree(wide("L", 20), wide("R", 20)),
	}
	for ri, r := range results {
		for _, n := range []int{1, 3, 10, 57, len(r.table), len(r.table) + 100} {
			got := r.TopPairs(n)
			want := topPairsReference(r, n)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("result %d: TopPairs(%d) diverges from sort-based selection", ri, n)
			}
		}
		if got := r.TopPairs(0); got != nil {
			t.Errorf("result %d: TopPairs(0) = %d pairs, want none", ri, len(got))
		}
		if got := r.TopPairs(-3); got != nil {
			t.Errorf("result %d: TopPairs(-3) = %d pairs, want none", ri, len(got))
		}
	}
}

// Allocation regression gate for the hybrid hot loop. With the pooled
// arena buffers (matchBuffers) a released warm DCMD fill runs at ~420
// allocations — what remains is the interner, kernel bookkeeping and the
// Result header, not per-cell garbage. The 700 ceiling trips on any return
// of per-cell allocation or a fill that stops drawing from the pool,
// without flaking on runtime noise. Release inside the measured loop is
// what keeps the pool warm: dropping it is itself a regression this gate
// should catch, since unreleased tables fall to the GC and every run pays
// the arena over again.
func TestTreeAllocsBounded(t *testing.T) {
	p := dataset.DCMDPair()
	m := NewMatcher(nil)
	m.Tree(p.Source, p.Target).Release() // warm memo caches and the buffer pool
	allocs := testing.AllocsPerRun(5, func() {
		m.Tree(p.Source, p.Target).Release()
	})
	if allocs > 700 {
		t.Errorf("DCMD Tree+Release = %.0f allocs/run, regression ceiling is 700", allocs)
	}
}
