package core

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"

	"qmatch/internal/lingo"
	"qmatch/internal/obs"
	"qmatch/internal/xmltree"
)

// Matcher is the hybrid QMatch algorithm (paper §4, Fig. 3). It combines a
// linguistic label matcher, the property matcher, the level test and the
// recursive children match under the axis weights, producing a QoM for
// every source/target node pair.
type Matcher struct {
	// Weights are the axis weights of the match model. They are
	// normalized to sum to 1 when a match runs.
	Weights AxisWeights
	// Threshold is Fig. 3's "threshold value": the minimum QoM for a
	// child pair to count toward Rw and Rs. Default 0.5. Note that a
	// leaf pair with no label match but perfect structural agreement
	// reaches WP + WH + WC = 0.7 under the Table 2 weights, so the
	// children axis deliberately propagates structure-only overlap —
	// that is what lets QMatch score the paper's Library/Human example
	// (Fig. 9) far above the linguistic matcher. Correspondence
	// *selection* applies a separate label-evidence gate (see Hybrid).
	Threshold float64
	// Names is the pluggable linguistic algorithm for the label axis.
	Names *lingo.NameMatcher
	// Parallelism bounds the worker pool that fills the QoM pair table.
	// 1 (and 0, the default) computes the table sequentially on the
	// calling goroutine; n > 1 allows up to n workers; negative values
	// select GOMAXPROCS. Parallel and sequential computation produce
	// bit-identical tables — every cell is a pure function of the cells
	// of strictly smaller source subtrees, so only the schedule changes.
	Parallelism int
	// Scores is an optional shared label-pair score cache consulted (and
	// fed) while the interned similarity kernel is filled, so repeated
	// vocabulary across many matches on one long-lived handle is scored
	// once. The cache is concurrency-safe; every matcher sharing one must
	// use the same thesaurus and tuning (the public package's Engine
	// guarantees this).
	Scores *lingo.ScoreCache
	// Trace receives a phase span for the kernel interning and pair-table
	// fill of each Tree call (the Fig. 3 pipeline stages). Nil — the
	// default — disables tracing; the disabled path is a nil-check with
	// zero allocations.
	Trace *obs.Trace
	// Done aborts an in-flight fill when closed: the pair-table sweep
	// stops between source rows (sequential) or height levels (parallel),
	// leaving the remaining cells uncomputed and the trace span marked
	// partial with the cell count filled so far. Nil — the default —
	// never aborts. Engine.MatchAll wires this to ctx.Done().
	Done <-chan struct{}
	// Interner resolves a precompiled per-side vocabulary for a tree root.
	// Nil (the default), a nil return, or an Interned whose node count
	// disagrees with the tree fall back to interning at match entry.
	// The Engine's compiled-schema path installs a lookup over the
	// CompiledSchema artifacts of the current call, skipping the intern
	// walk for schemas compiled once up front.
	Interner func(root *xmltree.Node) *Interned
	// Precision selects the storage width of the kernel score matrices:
	// PrecisionFloat64 (the zero value) is exact and bit-identical to the
	// unkerneled reference path; PrecisionFloat32 halves kernel memory at
	// float32 rounding tolerance (see the Precision type).
	Precision Precision

	// noKernel disables the interned similarity kernel and scores every
	// cell directly — the reference path the kernel equivalence tests
	// compare against.
	noKernel bool
}

// parallelCutoff is the minimum pair-table size (cells) worth fanning out;
// below it goroutine startup dominates the saved work.
const parallelCutoff = 4096

// NewMatcher returns a QMatch matcher with the paper's Table 2 weights,
// threshold 0.5, and a linguistic matcher over the given thesaurus (nil
// selects the built-in default thesaurus).
func NewMatcher(th *lingo.Thesaurus) *Matcher {
	if th == nil {
		th = lingo.Default()
	}
	return &Matcher{
		Weights:   DefaultWeights(),
		Threshold: 0.5,
		Names:     lingo.NewNameMatcher(th),
	}
}

// Result holds the full pair table of a tree match: the QoM of every
// (source node, target node) pair, memoized during the recursion — this is
// what realizes the paper's O(n·m) bound (DESIGN.md §5.1). The table is a
// dense n×m slice indexed by pre-order position; on the corpus' largest
// workload (231×3753 nodes) this more than halves the allocation volume a
// map-based memo would cost.
type Result struct {
	Source, Target *xmltree.Node
	// Root is the QoM of the two schema roots — "the total match value
	// for the entire source schema tree" the algorithm reports.
	Root QoM

	srcNodes, tgtNodes []*xmltree.Node
	srcIdx, tgtIdx     map[*xmltree.Node]int
	table              []QoM
	done               []bool
	kern               *simKernel

	// Iterative-fill side structures (built once per match in newResult):
	// child lists as pre-order indices, nesting levels, leaf flags, and the
	// root-pair level rule, all precomputed so computeRow touches no node
	// pointers on the hot path.
	srcKids, tgtKids     [][]int32
	srcLevels, tgtLevels []int32
	srcLeaf, tgtLeaf     []bool
	rootLevelEq          bool

	// buf is the pooled slab set backing the slices above (see arena.go);
	// nil after Release.
	buf *matchBuffers
}

func newResult(src, tgt *xmltree.Node) *Result {
	r := &Result{
		Source:   src,
		Target:   tgt,
		srcNodes: src.Nodes(),
		tgtNodes: tgt.Nodes(),
	}
	r.buf = acquireBuffers(r)
	for i, n := range r.srcNodes {
		r.srcIdx[n] = i
	}
	for i, n := range r.tgtNodes {
		r.tgtIdx[n] = i
	}
	buildSide(r.srcNodes, r.srcIdx, r.srcKids, r.srcLevels, r.srcLeaf, &r.buf.kidIdx)
	buildSide(r.tgtNodes, r.tgtIdx, r.tgtKids, r.tgtLevels, r.tgtLeaf, &r.buf.kidIdx)
	r.rootLevelEq = levelEqual(src, tgt)
	return r
}

// buildSide precomputes the per-node fill inputs of one tree side: child
// lists as pre-order indices (subslices of the shared backing store, which
// acquireBuffers sized exactly so the appends never reallocate), nesting
// levels (the side root's cached level, each child one deeper), and leaf
// flags. One O(n) walk replaces the per-cell Level/IsLeaf/pointer chasing
// the recursive fill used to do.
func buildSide(nodes []*xmltree.Node, idx map[*xmltree.Node]int, kids [][]int32, levels []int32, leaf []bool, backing *[]int32) {
	levels[0] = int32(nodes[0].Level())
	for i, nd := range nodes {
		leaf[i] = len(nd.Children) == 0
		start := len(*backing)
		for _, c := range nd.Children {
			ci := int32(idx[c])
			*backing = append(*backing, ci)
			levels[ci] = levels[i] + 1
		}
		kids[i] = (*backing)[start:len(*backing):len(*backing)]
	}
}

// cell returns the dense index of a pair, or -1 when either node is not
// part of the matched trees.
func (r *Result) cell(s, t *xmltree.Node) int {
	i, ok := r.srcIdx[s]
	if !ok {
		return -1
	}
	j, ok := r.tgtIdx[t]
	if !ok {
		return -1
	}
	return i*len(r.tgtNodes) + j
}

// PairQoM is one entry of the pair table.
type PairQoM struct {
	Source, Target *xmltree.Node
	QoM            QoM
}

// Tree matches the source tree against the target tree, computing the QoM
// of every node pair (including pairs at different relative depths, as in
// the paper's PurchaseInfo vs Purchase Order example) and returns the
// complete result. With Parallelism beyond 1 and a table large enough to
// be worth it, the computation fans out over a bounded worker pool (see
// treeParallel); the resulting table is bit-identical to the sequential
// one.
func (m *Matcher) Tree(src, tgt *xmltree.Node) *Result {
	r := newResult(src, tgt)
	w := m.Weights.Normalized()
	if par := m.parallelism(); par > 1 && len(r.table) >= parallelCutoff {
		m.treeParallel(r, w, par)
	} else {
		if !m.noKernel {
			sp := m.Trace.StartSpan(obs.PhaseIntern)
			r.kern = newKernelFrom(m.interned(src, r.srcNodes), m.interned(tgt, r.tgtNodes), m.Precision, r.buf)
			r.kern.fill(m.Names, m.Scores)
			if sp != nil {
				sp.SetNodes(len(r.kern.src.Labels), len(r.kern.tgt.Labels))
				sp.SetCells(r.kern.logicalCells())
				sp.SetWorkers(1)
			}
			sp.End()
		}
		sp := m.Trace.StartSpan(obs.PhasePairTable)
		tw := &treeWorker{m: m, names: m.Names, r: r, w: w}
		partial := false
		// Descending pre-order: children precede their parents, so every
		// row a parent's children axis reads is complete before the parent
		// row starts — the iterative equivalent of the old recursion, with
		// the same between-rows abort points.
		for i := len(r.srcNodes) - 1; i >= 0; i-- {
			if m.aborted() {
				partial = true
				break
			}
			tw.computeRow(i)
		}
		if sp != nil {
			sp.SetNodes(len(r.srcNodes), len(r.tgtNodes))
			sp.SetWorkers(1)
			sp.SetCells(r.filled(partial))
			if partial {
				sp.MarkPartial()
			}
		}
		sp.End()
	}
	if idx := r.cell(src, tgt); idx >= 0 && r.done[idx] {
		r.Root = r.table[idx]
	}
	return r
}

// interned resolves the vocabulary of one side: the Interner's
// precompiled value when one is installed and consistent with the tree,
// otherwise a fresh interning of the node list. The consistency check
// (node count) guards against an interner serving a stale artifact for a
// since-mutated tree.
func (m *Matcher) interned(root *xmltree.Node, nodes []*xmltree.Node) *Interned {
	if m.Interner != nil {
		if in := m.Interner(root); in != nil && len(in.LabelID) == len(nodes) {
			return in
		}
	}
	return Intern(nodes)
}

// aborted reports whether the Done signal has fired. Checked between
// source rows and height levels, never per cell — the disabled path is a
// single nil comparison.
func (m *Matcher) aborted() bool {
	if m.Done == nil {
		return false
	}
	select {
	case <-m.Done:
		return true
	default:
		return false
	}
}

// filled returns the number of computed pair-table cells: the whole table
// after a completed sweep, a scan of the done flags after a partial one.
func (r *Result) filled(partial bool) int64 {
	if !partial {
		return int64(len(r.table))
	}
	var n int64
	for _, d := range r.done {
		if d {
			n++
		}
	}
	return n
}

// parallelism resolves the effective worker bound.
func (m *Matcher) parallelism() int {
	switch {
	case m.Parallelism < 0:
		return runtime.GOMAXPROCS(0)
	case m.Parallelism == 0:
		return 1
	default:
		return m.Parallelism
	}
}

// treeParallel fills the pair table bottom-up over source-subtree height.
// The QoM of (s, t) depends only on pairs whose source is a child of s —
// a strictly smaller subtree — so all rows of one height level are
// independent of each other and are fanned out across the worker pool;
// a barrier between levels makes every lower level's cells visible before
// the next level reads them. Within a level each worker writes only the
// rows it owns. Workers score labels through clones of m.Names: the
// thesaurus is shared read-only, the memo caches are per-worker.
func (m *Matcher) treeParallel(r *Result, w AxisWeights, par int) {
	// Group source nodes by subtree height, ascending. srcNodes is in
	// pre-order, so children follow parents and a reverse sweep sees
	// every child before its parent.
	heights := make([]int, len(r.srcNodes))
	maxH := 0
	for i := len(r.srcNodes) - 1; i >= 0; i-- {
		h := 0
		for _, c := range r.srcKids[i] {
			if ch := heights[c] + 1; ch > h {
				h = ch
			}
		}
		heights[i] = h
		if h > maxH {
			maxH = h
		}
	}
	levels := make([][]int32, maxH+1)
	for i := range r.srcNodes {
		levels[heights[i]] = append(levels[heights[i]], int32(i))
	}

	workers := make([]*treeWorker, par)
	for i := range workers {
		workers[i] = &treeWorker{m: m, names: m.Names.Clone(), r: r, w: w}
	}
	// Goroutine labels make the worker fan-out legible in CPU profiles:
	// `go tool pprof -tags` splits samples by workload (root-label pair)
	// and phase (kernel vs pairtable). Labels set at spawn time are
	// inherited by the child goroutines, so one Do per phase covers the
	// whole pool.
	workload := r.Source.Label + "->" + r.Target.Label
	// Fill the interned similarity kernel first, fanning matrix rows over
	// the same worker pool; the level sweep below then reads it freely.
	if !m.noKernel {
		sp := m.Trace.StartSpan(obs.PhaseIntern)
		pprof.Do(context.Background(),
			pprof.Labels("qmatch_workload", workload, "qmatch_phase", "kernel"),
			func(context.Context) {
				r.kern = newKernelFrom(m.interned(r.Source, r.srcNodes), m.interned(r.Target, r.tgtNodes), m.Precision, r.buf)
				r.kern.fillParallel(m.Names, m.Scores, len(workers))
			})
		if sp != nil {
			sp.SetNodes(len(r.kern.src.Labels), len(r.kern.tgt.Labels))
			sp.SetCells(r.kern.logicalCells())
			sp.SetWorkers(len(workers))
		}
		sp.End()
	}
	sp := m.Trace.StartSpan(obs.PhasePairTable)
	partial := false
	for li, level := range levels {
		if m.aborted() {
			partial = true
			break
		}
		n := len(workers)
		if n > len(level) {
			n = len(level)
		}
		// One child span per height level: the per-level breakdown shows
		// which stratum of the fill dominates (the wide leaf levels of a
		// bushy schema vs the few expensive rows near the root).
		lsp := sp.Child(obs.PhaseLevel)
		lsp.SetLevel(li + 1)
		lsp.SetNodes(len(level), len(r.tgtNodes))
		lsp.SetCells(int64(len(level)) * int64(len(r.tgtNodes)))
		lsp.SetWorkers(n)
		jobs := make(chan int32, len(level))
		for _, si := range level {
			jobs <- si
		}
		close(jobs)
		var wg sync.WaitGroup
		pprof.Do(context.Background(),
			pprof.Labels("qmatch_workload", workload, "qmatch_phase", "pairtable"),
			func(context.Context) {
				for i := 0; i < n; i++ {
					tw := workers[i]
					wg.Add(1)
					go func() {
						defer wg.Done()
						for si := range jobs {
							if tw.m.aborted() {
								return
							}
							tw.computeRow(int(si))
						}
					}()
				}
			})
		wg.Wait()
		if m.aborted() {
			lsp.MarkPartial()
		}
		lsp.End()
	}
	partial = partial || m.aborted()
	if sp != nil {
		sp.SetNodes(len(r.srcNodes), len(r.tgtNodes))
		sp.SetWorkers(len(workers))
		sp.SetCells(r.filled(partial))
		if partial {
			sp.MarkPartial()
		}
	}
	sp.End()
}

// MatchNodes computes the QoM of a single subtree pair.
func (m *Matcher) MatchNodes(s, t *xmltree.Node) QoM {
	r := newResult(s, t)
	if !m.noKernel {
		r.kern = newKernelFrom(m.interned(s, r.srcNodes), m.interned(t, r.tgtNodes), m.Precision, r.buf)
		r.kern.fill(m.Names, m.Scores)
	}
	tw := &treeWorker{m: m, names: m.Names, r: r, w: m.Weights.Normalized()}
	for i := len(r.srcNodes) - 1; i >= 0; i-- {
		tw.computeRow(i)
	}
	q := r.table[0] // cell (0, 0): the (s, t) root pair
	r.Release()
	return q
}

// treeWorker computes pair-table cells with a dedicated NameMatcher, so
// several workers can fill disjoint rows of one Result concurrently.
type treeWorker struct {
	m     *Matcher
	names *lingo.NameMatcher
	r     *Result
	w     AxisWeights
}

// computeRow fills source row i of the pair table. It is the iterative
// form of pair(): because rows are computed in an order where every child
// row precedes its parent's (descending pre-order sequentially, ascending
// subtree height in parallel), the children axis reads completed rows by
// index instead of recursing — no per-cell map lookups, no QoM copies up
// a call stack, no node-pointer chasing. Cell values are bit-identical to
// the recursive computation; the equivalence and cancellation tests pin
// this.
func (tw *treeWorker) computeRow(i int) { tw.computeCols(i, nil) }

// computeCols fills the given target columns of source row i (nil = every
// column). The incremental re-match uses the subset form: columns whose
// target subtree is unchanged are copied from the previous table, and only
// the dirty columns are recomputed — valid in any row order satisfying the
// children-before-parents discipline, because copied columns are complete
// for all rows before the sweep starts.
func (tw *treeWorker) computeCols(i int, cols []int32) {
	r := tw.r
	mcols := len(r.tgtNodes)
	base := i * mcols
	kids := r.srcKids[i]
	sLeaf := r.srcLeaf[i]
	sLvl := r.srcLevels[i]
	k := r.kern
	th := tw.m.Threshold - 1e-9
	nj := mcols
	if cols != nil {
		nj = len(cols)
	}
	for cj := 0; cj < nj; cj++ {
		j := cj
		if cols != nil {
			j = int(cols[cj])
		}
		// Build the cell in place: the QoM is ~10 words, and a
		// stack-then-copy construction costs a duffcopy per cell.
		q := &r.table[base+j]
		*q = QoM{}
		if k != nil {
			q.Label, q.LabelKind = k.labelAt(i, j)
			q.Properties, q.PropertiesKind = k.propAt(i, j)
		} else {
			s, t := r.srcNodes[i], r.tgtNodes[j]
			q.Label, q.LabelKind = tw.names.Match(s.Label, t.Label)
			pq := MatchProperties(s.Props, t.Props)
			q.Properties, q.PropertiesKind = pq.Score, pq.Kind
		}

		if sLeaf && r.tgtLeaf[j] {
			// Leaf match (Eq. 2): see pair().
			q.Leaf = true
			q.LevelExact = true
			q.Level = 1
			q.SubtreeWeight, q.CardinalityRatio = 1, 1
			q.Children = 1
			q.Coverage = Total
			q.ChildrenAllExact = true
		} else {
			// The root pair compares tree heights, every other pair
			// nesting levels (levelEqual); rootLevelEq caches the former.
			if i == 0 && j == 0 {
				q.LevelExact = r.rootLevelEq
			} else {
				q.LevelExact = sLvl == r.tgtLevels[j]
			}
			if q.LevelExact {
				q.Level = 1
			}
			// Children axis (Eq. 3–5): identical candidate set and
			// threshold/coverage rules as pair(), reading finished rows.
			// Only the best candidate's index is tracked; its Class is
			// read once at the end (the zero Class when nothing beat the
			// zero QoM, exactly as pair()'s `var best QoM` behaves).
			sum := 0.0
			count := 0
			covered := 0
			allExact := true
			tKids := r.tgtKids[j]
			for _, ci := range kids {
				cbase := int(ci) * mcols
				bestIdx := -1
				bestVal := 0.0
				for _, cj := range tKids {
					if v := r.table[cbase+int(cj)].Value; v > bestVal {
						bestVal, bestIdx = v, cbase+int(cj)
					}
				}
				if !r.srcLeaf[ci] {
					if v := r.table[cbase+j].Value; v > bestVal {
						bestVal, bestIdx = v, cbase+j
					}
				}
				if bestVal >= th {
					sum += bestVal
					count++
					var cls Class
					if bestIdx >= 0 {
						cls = r.table[bestIdx].Class
					}
					if cls != NoMatch {
						covered++
						if cls != TotalExact {
							allExact = false
						}
					}
				}
			}
			if n := len(kids); n > 0 {
				q.SubtreeWeight = sum / float64(n)
				q.CardinalityRatio = float64(count) / float64(n)
				switch {
				case covered == n:
					q.Coverage = Total
				case covered > 0:
					q.Coverage = Partial
				}
			}
			q.Children = (q.SubtreeWeight + q.CardinalityRatio) / 2
			q.ChildrenAllExact = allExact && covered > 0
		}

		q.Value = tw.w.Label*q.Label + tw.w.Properties*q.Properties +
			tw.w.Level*q.Level + tw.w.Children*q.Children
		q.classify()
		r.done[base+j] = true
	}
}

// pair computes (or returns the memoized) QoM of one node pair — the
// recursive reference form of computeRow, kept as the post-fill accessor:
// a node foreign to the matched trees yields the zero QoM instead of
// panicking on a bogus table index.
func (tw *treeWorker) pair(s, t *xmltree.Node) QoM {
	r := tw.r
	i, ok := r.srcIdx[s]
	if !ok {
		return QoM{}
	}
	j, ok := r.tgtIdx[t]
	if !ok {
		return QoM{}
	}
	idx := i*len(r.tgtNodes) + j
	if r.done[idx] {
		return r.table[idx]
	}
	// Break recursive-schema cycles defensively: mark in-progress pairs
	// with the zero entry (schema trees are acyclic, so this only guards
	// against malformed input). The table slab is pooled and arrives
	// dirty, so the zero entry is written explicitly.
	r.done[idx] = true
	r.table[idx] = QoM{}

	var q QoM
	if k := r.kern; k != nil {
		q.Label, q.LabelKind = k.labelAt(i, j)
		q.Properties, q.PropertiesKind = k.propAt(i, j)
	} else {
		q.Label, q.LabelKind = tw.names.Match(s.Label, t.Label)
		pq := MatchProperties(s.Props, t.Props)
		q.Properties, q.PropertiesKind = pq.Score, pq.Kind
	}

	if s.IsLeaf() && t.IsLeaf() {
		// Leaf match (Eq. 2): label and properties compared; level and
		// children match exactly by default — the constant C = WH + WC.
		q.Leaf = true
		q.LevelExact = true
		q.Level = 1
		q.SubtreeWeight, q.CardinalityRatio = 1, 1
		q.Children = 1
		q.Coverage = Total
		q.ChildrenAllExact = true
	} else {
		q.LevelExact = levelEqual(s, t)
		if q.LevelExact {
			q.Level = 1
		}
		// Children axis (Eq. 3–5): each source child contributes its
		// best-matching target candidate when that match clears the
		// threshold. Candidates are the target's children plus the
		// target node itself — the paper's §2.2 walkthrough matches
		// the source child PurchaseInfo against the target *root*
		// Purchase Order, so a source nested one level deeper than
		// the target can still achieve coverage.
		//
		// Two notions are tracked separately. The *quantitative* Rw/Rs
		// follow Fig. 3's threshold on the QoM value, which lets pure
		// structural agreement propagate (the Fig. 9 behaviour). The
		// *qualitative* coverage classification (total/partial, §2.1)
		// additionally requires the child's best pair not to classify
		// as NoMatch — a label-less structural coincidence contributes
		// weight but does not make a child "have a match".
		sum := 0.0
		count := 0
		covered := 0
		allExact := true
		for _, cs := range s.Children {
			var best QoM
			for _, ct := range t.Children {
				cq := tw.pair(cs, ct)
				if cq.Value > best.Value {
					best = cq
				}
			}
			if !cs.IsLeaf() {
				if cq := tw.pair(cs, t); cq.Value > best.Value {
					best = cq
				}
			}
			// Epsilon guards the common case of a child sitting
			// exactly at the threshold under inexact float sums.
			if best.Value >= tw.m.Threshold-1e-9 {
				sum += best.Value
				count++
				if best.Class != NoMatch {
					covered++
					if best.Class != TotalExact {
						allExact = false
					}
				}
			}
		}
		if n := len(s.Children); n > 0 {
			q.SubtreeWeight = sum / float64(n)
			q.CardinalityRatio = float64(count) / float64(n)
			switch {
			case covered == n:
				q.Coverage = Total
			case covered > 0:
				q.Coverage = Partial
			}
		}
		q.Children = (q.SubtreeWeight + q.CardinalityRatio) / 2
		q.ChildrenAllExact = allExact && covered > 0
	}

	q.Value = tw.w.Label*q.Label + tw.w.Properties*q.Properties +
		tw.w.Level*q.Level + tw.w.Children*q.Children
	q.classify()

	r.table[idx] = q
	return q
}

// levelEqual implements the level axis (QoMH). The paper compares nesting
// depth for nodes inside a schema ("Lines and Items ... are at different
// levels") but compares overall tree height for the two roots ("given the
// height difference between the schema trees, there is no level match
// between the roots"); both rules are honored here. See DESIGN.md §5.6.
func levelEqual(s, t *xmltree.Node) bool {
	if s.Parent() == nil && t.Parent() == nil {
		return s.MaxDepth() == t.MaxDepth()
	}
	return s.Level() == t.Level()
}

// Pair returns the QoM of a specific node pair from the result table.
func (r *Result) Pair(s, t *xmltree.Node) (QoM, bool) {
	idx := r.cell(s, t)
	if idx < 0 || !r.done[idx] {
		return QoM{}, false
	}
	return r.table[idx], true
}

// Pairs returns every pair of the table in deterministic (source pre-order,
// target pre-order) order.
func (r *Result) Pairs() []PairQoM {
	out := make([]PairQoM, 0, len(r.table))
	for i, s := range r.srcNodes {
		base := i * len(r.tgtNodes)
		for j, t := range r.tgtNodes {
			if r.done[base+j] {
				out = append(out, PairQoM{Source: s, Target: t, QoM: r.table[base+j]})
			}
		}
	}
	return out
}

// BestForSource returns the target node with the highest QoM for the given
// source node, or nil when the source has no scored pairs.
func (r *Result) BestForSource(s *xmltree.Node) (*xmltree.Node, QoM) {
	i, ok := r.srcIdx[s]
	if !ok {
		return nil, QoM{}
	}
	var bestT *xmltree.Node
	var bestQ QoM
	base := i * len(r.tgtNodes)
	for j, t := range r.tgtNodes {
		if r.done[base+j] && (bestT == nil || r.table[base+j].Value > bestQ.Value) {
			bestT, bestQ = t, r.table[base+j]
		}
	}
	return bestT, bestQ
}

// TopPairs returns the n highest-QoM pairs, ties broken by source then
// target pre-order position. Selection runs a bounded min-heap in a single
// pass over the dense table — O(cells·log n) and n heap entries instead of
// materializing and sorting all n·m pairs, which on the PIR×PDB table
// (867k cells) is the difference between microseconds and a full
// sort-the-world pass (see BenchmarkTopPairs).
func (r *Result) TopPairs(n int) []PairQoM {
	if n <= 0 {
		return nil
	}
	type entry struct {
		idx   int
		value float64
	}
	// worse reports whether a ranks strictly below b: lower value, or at
	// equal value a later table position — matching the ordering a stable
	// descending sort over the pre-order pair list produces.
	worse := func(a, b entry) bool {
		if a.value != b.value {
			return a.value < b.value
		}
		return a.idx > b.idx
	}
	// Min-heap of the current top n, worst entry at the root.
	heap := make([]entry, 0, min2(n, len(r.table)))
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !worse(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	siftDown := func() {
		i := 0
		for {
			l := 2*i + 1
			if l >= len(heap) {
				break
			}
			least := l
			if rc := l + 1; rc < len(heap) && worse(heap[rc], heap[l]) {
				least = rc
			}
			if !worse(heap[least], heap[i]) {
				break
			}
			heap[i], heap[least] = heap[least], heap[i]
			i = least
		}
	}
	for idx := range r.table {
		if !r.done[idx] {
			continue
		}
		e := entry{idx: idx, value: r.table[idx].Value}
		switch {
		case len(heap) < n:
			heap = append(heap, e)
			siftUp(len(heap) - 1)
		case worse(heap[0], e):
			heap[0] = e
			siftDown()
		}
	}
	sort.Slice(heap, func(i, j int) bool { return worse(heap[j], heap[i]) })
	out := make([]PairQoM, len(heap))
	m := len(r.tgtNodes)
	for i, e := range heap {
		out[i] = PairQoM{Source: r.srcNodes[e.idx/m], Target: r.tgtNodes[e.idx%m], QoM: r.table[e.idx]}
	}
	return out
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
