package dtd

import (
	"testing"
	"testing/quick"
)

// The DTD parser must be total: random inputs error or parse, never panic.
func TestParseNeverPanics(t *testing.T) {
	prop := func(junk string) bool {
		_, _ = ParseString(junk, "")
		_, _ = ParseString("<!ELEMENT R ("+junk+")>", "R")
		_, _ = ParseString("<!ELEMENT R (#PCDATA)> <!ATTLIST R "+junk+">", "R")
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseMangled(t *testing.T) {
	base := `
<!ELEMENT PO (OrderNo, Lines)>
<!ELEMENT OrderNo (#PCDATA)>
<!ELEMENT Lines (Item+, Quantity?)>
<!ELEMENT Item (#PCDATA)>
<!ELEMENT Quantity (#PCDATA)>
<!ATTLIST PO id ID #REQUIRED>
`
	prop := func(pos uint16, b byte) bool {
		data := []byte(base)
		data[int(pos)%len(data)] = b
		_, _ = ParseString(string(data), "")
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// FuzzParseDTD drives the DTD parser with arbitrary document/root pairs.
// The parser must stay total and any tree it accepts must be well-formed.
func FuzzParseDTD(f *testing.F) {
	f.Add(`<!ELEMENT PO (OrderNo, Lines)>
<!ELEMENT OrderNo (#PCDATA)>
<!ELEMENT Lines (Item+, Quantity?)>
<!ELEMENT Item (#PCDATA)>
<!ELEMENT Quantity (#PCDATA)>
<!ATTLIST PO id ID #REQUIRED>`, "")
	f.Add(`<!ELEMENT a (b|c)*> <!ELEMENT b EMPTY> <!ELEMENT c ANY>`, "a")
	f.Add(`<!ELEMENT r (#PCDATA)> <!ATTLIST r x CDATA #IMPLIED y (one|two) "one">`, "r")
	f.Add(``, ``)
	f.Add(`<!ELEMENT`, `missing`)
	f.Fuzz(func(t *testing.T, data, root string) {
		tree, err := ParseString(data, root)
		if err != nil {
			return
		}
		if tree == nil {
			t.Fatalf("nil tree with nil error for %q root %q", data, root)
		}
		if tree.Label == "" {
			t.Fatalf("parsed root has an empty label: %q root %q", data, root)
		}
	})
}
