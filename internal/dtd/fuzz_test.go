package dtd

import (
	"testing"
	"testing/quick"
)

// The DTD parser must be total: random inputs error or parse, never panic.
func TestParseNeverPanics(t *testing.T) {
	prop := func(junk string) bool {
		_, _ = ParseString(junk, "")
		_, _ = ParseString("<!ELEMENT R ("+junk+")>", "R")
		_, _ = ParseString("<!ELEMENT R (#PCDATA)> <!ATTLIST R "+junk+">", "R")
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseMangled(t *testing.T) {
	base := `
<!ELEMENT PO (OrderNo, Lines)>
<!ELEMENT OrderNo (#PCDATA)>
<!ELEMENT Lines (Item+, Quantity?)>
<!ELEMENT Item (#PCDATA)>
<!ELEMENT Quantity (#PCDATA)>
<!ATTLIST PO id ID #REQUIRED>
`
	prop := func(pos uint16, b byte) bool {
		data := []byte(base)
		data[int(pos)%len(data)] = b
		_, _ = ParseString(string(data), "")
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
