package dtd

import (
	"strings"
	"testing"

	"qmatch/internal/xmltree"
)

const poDTD = `
<!-- Purchase order DTD mirroring the paper's Figure 1 -->
<!ELEMENT PO (OrderNo, PurchaseInfo, PurchaseDate)>
<!ELEMENT OrderNo (#PCDATA)>
<!ELEMENT PurchaseInfo (BillingAddr, ShippingAddr, Lines)>
<!ELEMENT BillingAddr (#PCDATA)>
<!ELEMENT ShippingAddr (#PCDATA)>
<!ELEMENT Lines (Item+, Quantity, UnitOfMeasure?)>
<!ELEMENT Item (#PCDATA)>
<!ELEMENT Quantity (#PCDATA)>
<!ELEMENT UnitOfMeasure (#PCDATA)>
<!ELEMENT PurchaseDate (#PCDATA)>
<!ATTLIST PO id ID #REQUIRED currency CDATA #IMPLIED>
`

func TestParsePO(t *testing.T) {
	root, err := ParseString(poDTD, "")
	if err != nil {
		t.Fatal(err)
	}
	if root.Label != "PO" {
		t.Fatalf("root = %s", root.Label)
	}
	if got := root.Size(); got != 12 { // 10 elements + 2 attributes
		t.Fatalf("size = %d, want 12\n%s", got, root.Dump())
	}
	if got := root.MaxDepth(); got != 3 {
		t.Fatalf("depth = %d", got)
	}
	// Attributes come first, with DTD semantics mapped onto properties.
	id := root.Find("PO/id")
	if id == nil || !id.Props.IsAttribute || id.Props.Type != "ID" || id.Props.Use != "required" {
		t.Fatalf("id attr = %+v", id)
	}
	cur := root.Find("PO/currency")
	if cur == nil || cur.Props.MinOccurs != 0 || cur.Props.Type != "string" {
		t.Fatalf("currency attr = %+v", cur)
	}
	// Occurrence suffixes.
	item := root.Find("PO/PurchaseInfo/Lines/Item")
	if item.Props.MinOccurs != 1 || item.Props.MaxOccurs != xmltree.Unbounded {
		t.Fatalf("Item+ occurs = %+v", item.Props)
	}
	uom := root.Find("PO/PurchaseInfo/Lines/UnitOfMeasure")
	if uom.Props.MinOccurs != 0 || uom.Props.MaxOccurs != 1 {
		t.Fatalf("UnitOfMeasure? occurs = %+v", uom.Props)
	}
	// #PCDATA leaves are typed string.
	if got := root.Find("PO/OrderNo").Props.Type; got != "string" {
		t.Fatalf("OrderNo type = %q", got)
	}
}

func TestParseExplicitRoot(t *testing.T) {
	root, err := ParseString(poDTD, "Lines")
	if err != nil {
		t.Fatal(err)
	}
	if root.Label != "Lines" || len(root.Children) != 3 {
		t.Fatalf("root = %s/%d", root.Label, len(root.Children))
	}
}

func TestParseChoice(t *testing.T) {
	src := `
<!ELEMENT Contact (Name, (Phone | Email)*)>
<!ELEMENT Name (#PCDATA)>
<!ELEMENT Phone (#PCDATA)>
<!ELEMENT Email (#PCDATA)>
`
	root, err := ParseString(src, "")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Name", "Phone", "Email"}
	if len(root.Children) != 3 {
		t.Fatalf("children = %d\n%s", len(root.Children), root.Dump())
	}
	for i, w := range want {
		if root.Children[i].Label != w {
			t.Fatalf("child[%d] = %s", i, root.Children[i].Label)
		}
	}
	// Members of a repeated choice group: optional and unbounded.
	phone := root.Children[1]
	if phone.Props.MinOccurs != 0 || phone.Props.MaxOccurs != xmltree.Unbounded {
		t.Fatalf("choice member occurs = %+v", phone.Props)
	}
	// Name stays required (outside the choice).
	if root.Children[0].Props.MinOccurs != 1 {
		t.Fatalf("Name occurs = %+v", root.Children[0].Props)
	}
}

func TestParseNestedGroups(t *testing.T) {
	src := `
<!ELEMENT R ((A, B)+, C?)>
<!ELEMENT A (#PCDATA)>
<!ELEMENT B (#PCDATA)>
<!ELEMENT C (#PCDATA)>
`
	root, err := ParseString(src, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 3 {
		t.Fatalf("children = %d", len(root.Children))
	}
	a := root.Children[0]
	if a.Props.MaxOccurs != xmltree.Unbounded {
		t.Fatalf("(A,B)+ member occurs = %+v", a.Props)
	}
}

func TestParseMixedContent(t *testing.T) {
	src := `
<!ELEMENT Para (#PCDATA | Bold | Italic)*>
<!ELEMENT Bold (#PCDATA)>
<!ELEMENT Italic (#PCDATA)>
`
	root, err := ParseString(src, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 2 {
		t.Fatalf("mixed children = %d\n%s", len(root.Children), root.Dump())
	}
	if root.Children[0].Props.MinOccurs != 0 || root.Children[0].Props.MaxOccurs != xmltree.Unbounded {
		t.Fatalf("mixed member occurs = %+v", root.Children[0].Props)
	}
}

func TestParseEmptyAndAny(t *testing.T) {
	src := `
<!ELEMENT R (Img, Blob)>
<!ELEMENT Img EMPTY>
<!ELEMENT Blob ANY>
<!ATTLIST Img src CDATA #REQUIRED>
`
	root, err := ParseString(src, "")
	if err != nil {
		t.Fatal(err)
	}
	img := root.Find("R/Img")
	if img == nil || len(img.Children) != 1 || img.Children[0].Label != "src" {
		t.Fatalf("EMPTY element with attribute: %+v", img)
	}
	blob := root.Find("R/Blob")
	if blob == nil || !blob.IsLeaf() {
		t.Fatalf("ANY element: %+v", blob)
	}
}

func TestParseRecursive(t *testing.T) {
	src := `
<!ELEMENT Part (Name, Part?)>
<!ELEMENT Name (#PCDATA)>
`
	root, err := ParseString(src, "")
	if err != nil {
		t.Fatal(err)
	}
	sub := root.Find("Part/Part")
	if sub == nil || !sub.IsLeaf() {
		t.Fatalf("recursive element not truncated: %v", sub)
	}
}

func TestParseAttlistVariants(t *testing.T) {
	src := `
<!ELEMENT R (#PCDATA)>
<!ATTLIST R
  kind (a | b | c) "a"
  ref IDREF #IMPLIED
  ver CDATA #FIXED "1.0">
`
	root, err := ParseString(src, "")
	if err != nil {
		t.Fatal(err)
	}
	kind := root.Find("R/kind")
	if kind == nil || kind.Props.Type != "token" || kind.Props.Default != "a" {
		t.Fatalf("enum attr = %+v", kind)
	}
	ref := root.Find("R/ref")
	if ref == nil || ref.Props.Type != "IDREF" {
		t.Fatalf("IDREF attr = %+v", ref)
	}
	ver := root.Find("R/ver")
	if ver == nil || ver.Props.Fixed != "1.0" {
		t.Fatalf("fixed attr = %+v", ver)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string][2]string{
		"no declarations":  {"  <!-- just a comment -->", ""},
		"undeclared child": {"<!ELEMENT R (Missing)>", ""},
		"unknown root":     {poDTD, "NoSuch"},
		"entity":           {`<!ENTITY x "y">`, ""},
		"garbage":          {"hello", ""},
		"unterminated":     {"<!ELEMENT R (A", ""},
		"double decl":      {"<!ELEMENT R (#PCDATA)> <!ELEMENT R (#PCDATA)>", ""},
		"bad attr type":    {"<!ELEMENT R (#PCDATA)> <!ATTLIST R a BOGUS #IMPLIED>", ""},
		"mixed connector":  {"<!ELEMENT R (A, B | C)> <!ELEMENT A (#PCDATA)> <!ELEMENT B (#PCDATA)> <!ELEMENT C (#PCDATA)>", ""},
		"truncated attr":   {"<!ELEMENT R (#PCDATA)> <!ATTLIST R a>", ""},
	}
	for name, c := range cases {
		if _, err := ParseString(c[0], c[1]); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseReader(t *testing.T) {
	root, err := Parse(strings.NewReader(poDTD), "")
	if err != nil {
		t.Fatal(err)
	}
	if root.Label != "PO" {
		t.Fatalf("root = %s", root.Label)
	}
}

// The DTD-parsed PO schema must be matchable against the XSD-modeled
// Purchase Order schema — the cross-format scenario the intro motivates.
func TestDTDToXSDMatching(t *testing.T) {
	root, err := ParseString(poDTD, "")
	if err != nil {
		t.Fatal(err)
	}
	if root.Find("PO/PurchaseInfo/Lines/Quantity") == nil {
		t.Fatal("expected path missing")
	}
}
