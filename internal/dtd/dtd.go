// Package dtd parses Document Type Definitions into the schema tree model.
// XML schemas on the early-2000s web — the document corpus the QMatch
// paper's introduction targets — were predominantly DTDs, so a matcher
// substrate needs to ingest them. The supported subset covers what element
// matching consumes:
//
//	<!ELEMENT name (a, b*, (c | d)?, e+)>    content particles with , | ? * +
//	<!ELEMENT name (#PCDATA)>                text-only elements
//	<!ELEMENT name EMPTY> / ANY
//	<!ATTLIST name attr CDATA #REQUIRED ...> attributes incl. enumerations
//
// Parameter entities, notations and conditional sections are not
// supported and produce an error. Recursive element declarations stop
// expansion at the repeated element, mirroring the XSD parser.
package dtd

import (
	"fmt"
	"io"
	"strings"

	"qmatch/internal/xmltree"
)

// elementDecl is a raw <!ELEMENT> declaration.
type elementDecl struct {
	name    string
	content *particle // nil for EMPTY/ANY
	pcdata  bool
}

// attrDecl is one attribute of an <!ATTLIST> declaration.
type attrDecl struct {
	name     string
	typ      string // CDATA, ID, IDREF, NMTOKEN, enumeration → "token"
	required bool
	fixed    string
	dflt     string
}

// particle is a node of a content model: either a name reference or a
// group with a connector.
type particle struct {
	name     string      // set for leaf particles
	children []*particle // set for groups
	choice   bool        // group connector: true for |, false for ,
	min, max int         // occurrence from ? * + (default 1,1)
}

// Parse reads a DTD and returns the schema tree rooted at root. If root is
// empty, the first declared element is used.
func Parse(r io.Reader, root string) (*xmltree.Node, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dtd: read: %w", err)
	}
	return ParseString(string(data), root)
}

// ParseString is Parse over a string.
func ParseString(src, root string) (*xmltree.Node, error) {
	p := &parser{src: src}
	elements, attrs, first, err := p.declarations()
	if err != nil {
		return nil, err
	}
	if root == "" {
		root = first
	}
	if root == "" {
		return nil, fmt.Errorf("dtd: no element declarations")
	}
	decl, ok := elements[root]
	if !ok {
		return nil, fmt.Errorf("dtd: root element %q not declared", root)
	}
	b := &builder{elements: elements, attrs: attrs, expanding: map[string]bool{}}
	return b.element(decl, xmltree.Properties{MinOccurs: 1, MaxOccurs: 1, Order: 1})
}

// parser splits the DTD into declarations.
type parser struct {
	src string
	pos int
}

func (p *parser) declarations() (map[string]*elementDecl, map[string][]attrDecl, string, error) {
	elements := map[string]*elementDecl{}
	attrs := map[string][]attrDecl{}
	first := ""
	for {
		p.skipSpaceAndComments()
		if p.pos >= len(p.src) {
			return elements, attrs, first, nil
		}
		if !strings.HasPrefix(p.src[p.pos:], "<!") {
			return nil, nil, "", fmt.Errorf("dtd: unexpected content at offset %d", p.pos)
		}
		end := strings.IndexByte(p.src[p.pos:], '>')
		if end < 0 {
			return nil, nil, "", fmt.Errorf("dtd: unterminated declaration at offset %d", p.pos)
		}
		decl := p.src[p.pos+2 : p.pos+end]
		p.pos += end + 1
		fields := strings.Fields(decl)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "ELEMENT":
			e, err := parseElement(decl)
			if err != nil {
				return nil, nil, "", err
			}
			if _, dup := elements[e.name]; dup {
				return nil, nil, "", fmt.Errorf("dtd: element %q declared twice", e.name)
			}
			elements[e.name] = e
			if first == "" {
				first = e.name
			}
		case "ATTLIST":
			name, list, err := parseAttlist(decl)
			if err != nil {
				return nil, nil, "", err
			}
			attrs[name] = append(attrs[name], list...)
		case "ENTITY", "NOTATION":
			return nil, nil, "", fmt.Errorf("dtd: %s declarations are not supported", fields[0])
		default:
			return nil, nil, "", fmt.Errorf("dtd: unknown declaration %q", fields[0])
		}
	}
}

func (p *parser) skipSpaceAndComments() {
	for {
		for p.pos < len(p.src) && isSpace(p.src[p.pos]) {
			p.pos++
		}
		if strings.HasPrefix(p.src[p.pos:], "<!--") {
			end := strings.Index(p.src[p.pos:], "-->")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += end + 3
			continue
		}
		return
	}
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

// parseElement parses "ELEMENT name contentModel".
func parseElement(decl string) (*elementDecl, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(decl, "ELEMENT"))
	sp := strings.IndexFunc(rest, func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' || r == '(' })
	if sp <= 0 {
		return nil, fmt.Errorf("dtd: malformed ELEMENT declaration %q", decl)
	}
	name := strings.TrimSpace(rest[:sp])
	model := strings.TrimSpace(rest[sp:])
	e := &elementDecl{name: name}
	switch model {
	case "EMPTY", "ANY":
		return e, nil
	}
	if !strings.HasPrefix(model, "(") {
		return nil, fmt.Errorf("dtd: element %q: malformed content model %q", name, model)
	}
	if strings.Contains(model, "#PCDATA") {
		e.pcdata = true
		// Mixed content (#PCDATA | a | b)* — pull out the names.
		inner := strings.Trim(model, "()*? \t\n")
		for _, part := range strings.Split(inner, "|") {
			part = strings.TrimSpace(part)
			if part == "" || part == "#PCDATA" {
				continue
			}
			leaf := &particle{name: part, min: 0, max: xmltree.Unbounded}
			if e.content == nil {
				e.content = &particle{choice: true, min: 1, max: 1}
			}
			e.content.children = append(e.content.children, leaf)
		}
		return e, nil
	}
	content, rest2, err := parseParticle(model)
	if err != nil {
		return nil, fmt.Errorf("dtd: element %q: %w", name, err)
	}
	if strings.TrimSpace(rest2) != "" {
		return nil, fmt.Errorf("dtd: element %q: trailing content %q", name, rest2)
	}
	e.content = content
	return e, nil
}

// parseParticle parses a particle starting at s: either "(...)" group or a
// name, followed by an optional occurrence suffix. Returns the remainder.
func parseParticle(s string) (*particle, string, error) {
	s = strings.TrimLeft(s, " \t\n\r")
	if s == "" {
		return nil, "", fmt.Errorf("empty particle")
	}
	var pt *particle
	if s[0] == '(' {
		group := &particle{min: 1, max: 1}
		rest := s[1:]
		sawSep := byte(0)
		for {
			child, r, err := parseParticle(rest)
			if err != nil {
				return nil, "", err
			}
			group.children = append(group.children, child)
			rest = strings.TrimLeft(r, " \t\n\r")
			if rest == "" {
				return nil, "", fmt.Errorf("unterminated group")
			}
			switch rest[0] {
			case ',', '|':
				if sawSep != 0 && sawSep != rest[0] {
					return nil, "", fmt.Errorf("mixed , and | in one group")
				}
				sawSep = rest[0]
				rest = rest[1:]
			case ')':
				group.choice = sawSep == '|'
				pt = group
				s = rest[1:]
			default:
				return nil, "", fmt.Errorf("unexpected %q in group", rest[0])
			}
			if pt != nil {
				break
			}
		}
	} else {
		i := 0
		for i < len(s) && !strings.ContainsRune("(),|?*+ \t\n\r", rune(s[i])) {
			i++
		}
		if i == 0 {
			return nil, "", fmt.Errorf("expected name, got %q", s)
		}
		pt = &particle{name: s[:i], min: 1, max: 1}
		s = s[i:]
	}
	// Occurrence suffix.
	if s != "" {
		switch s[0] {
		case '?':
			pt.min, pt.max = 0, 1
			s = s[1:]
		case '*':
			pt.min, pt.max = 0, xmltree.Unbounded
			s = s[1:]
		case '+':
			pt.min, pt.max = 1, xmltree.Unbounded
			s = s[1:]
		}
	}
	return pt, s, nil
}

// parseAttlist parses "ATTLIST element (attr type default)+".
func parseAttlist(decl string) (string, []attrDecl, error) {
	fields := strings.Fields(decl)
	if len(fields) < 2 {
		return "", nil, fmt.Errorf("dtd: malformed ATTLIST %q", decl)
	}
	element := fields[1]
	rest := fields[2:]
	var out []attrDecl
	for len(rest) > 0 {
		if len(rest) < 2 {
			return "", nil, fmt.Errorf("dtd: ATTLIST %s: truncated attribute definition", element)
		}
		a := attrDecl{name: rest[0]}
		typ := rest[1]
		consumed := 2
		if strings.HasPrefix(typ, "(") {
			// Enumeration possibly spanning fields: consume to ")".
			for !strings.HasSuffix(typ, ")") {
				if consumed >= len(rest) {
					return "", nil, fmt.Errorf("dtd: ATTLIST %s: unterminated enumeration", element)
				}
				typ += " " + rest[consumed]
				consumed++
			}
			a.typ = "token"
		} else {
			switch typ {
			case "CDATA":
				a.typ = "string"
			case "ID", "IDREF", "IDREFS", "NMTOKEN", "NMTOKENS", "ENTITY", "ENTITIES":
				a.typ = typ
			default:
				return "", nil, fmt.Errorf("dtd: ATTLIST %s: unknown attribute type %q", element, typ)
			}
		}
		if consumed >= len(rest) {
			return "", nil, fmt.Errorf("dtd: ATTLIST %s: missing default for %s", element, a.name)
		}
		def := rest[consumed]
		consumed++
		switch def {
		case "#REQUIRED":
			a.required = true
		case "#IMPLIED":
		case "#FIXED":
			if consumed >= len(rest) {
				return "", nil, fmt.Errorf("dtd: ATTLIST %s: #FIXED without value", element)
			}
			a.fixed = strings.Trim(rest[consumed], `"'`)
			consumed++
		default:
			a.dflt = strings.Trim(def, `"'`)
		}
		out = append(out, a)
		rest = rest[consumed:]
	}
	return element, out, nil
}

// builder expands declarations into the tree.
type builder struct {
	elements  map[string]*elementDecl
	attrs     map[string][]attrDecl
	expanding map[string]bool
}

func (b *builder) element(decl *elementDecl, props xmltree.Properties) (*xmltree.Node, error) {
	if decl.pcdata && decl.content == nil {
		props.Type = "string"
	}
	node := xmltree.New(decl.name, props)
	if b.expanding[decl.name] {
		// Recursive content model: stop expansion.
		return node, nil
	}
	b.expanding[decl.name] = true
	defer delete(b.expanding, decl.name)

	for _, a := range b.attrs[decl.name] {
		ap := xmltree.Properties{
			Type:        a.typ,
			IsAttribute: true,
			MaxOccurs:   1,
			Fixed:       a.fixed,
			Default:     a.dflt,
		}
		if a.required {
			ap.MinOccurs = 1
			ap.Use = "required"
		} else {
			ap.Use = "optional"
		}
		node.Add(xmltree.New(a.name, ap))
	}
	if decl.content != nil {
		if err := b.attach(node, decl.content, false); err != nil {
			return nil, err
		}
	}
	return node, nil
}

// attach flattens a particle into node's children. Particles under a
// choice group become optional (minOccurs 0), matching how the XSD model
// treats alternatives as siblings.
func (b *builder) attach(node *xmltree.Node, pt *particle, inChoice bool) error {
	if pt.name != "" {
		child, ok := b.elements[pt.name]
		if !ok {
			return fmt.Errorf("dtd: element %q referenced but not declared", pt.name)
		}
		props := xmltree.Properties{MinOccurs: pt.min, MaxOccurs: pt.max}
		if inChoice && props.MinOccurs > 0 {
			props.MinOccurs = 0
		}
		cn, err := b.element(child, props)
		if err != nil {
			return err
		}
		node.Add(cn)
		return nil
	}
	for _, c := range pt.children {
		// A repeated group distributes its occurrence bound over its
		// members.
		merged := *c
		if pt.max == xmltree.Unbounded {
			merged.max = xmltree.Unbounded
		}
		if pt.min == 0 {
			merged.min = 0
		}
		if err := b.attach(node, &merged, inChoice || pt.choice); err != nil {
			return err
		}
	}
	return nil
}
