package xmltree

import (
	"strings"
	"testing"
)

func TestNormDefaults(t *testing.T) {
	p := Properties{}.Norm()
	if p.MinOccurs != 1 || p.MaxOccurs != 1 {
		t.Fatalf("norm zero = %d/%d, want 1/1", p.MinOccurs, p.MaxOccurs)
	}
	q := Properties{MinOccurs: 0, MaxOccurs: 5}.Norm()
	if q.MinOccurs != 0 || q.MaxOccurs != 5 {
		t.Fatalf("norm explicit = %d/%d, want 0/5", q.MinOccurs, q.MaxOccurs)
	}
	r := Properties{MinOccurs: 2}.Norm()
	if r.MaxOccurs != 1 {
		t.Fatalf("norm maxonly = %d, want 1", r.MaxOccurs)
	}
}

func TestShorthands(t *testing.T) {
	e := Elem("string")
	if e.Type != "string" || e.IsAttribute || e.MinOccurs != 1 || e.MaxOccurs != 1 {
		t.Fatalf("Elem = %+v", e)
	}
	a := Attr("ID")
	if !a.IsAttribute {
		t.Fatalf("Attr = %+v", a)
	}
	o := Elem("string").Optional()
	if o.MinOccurs != 0 {
		t.Fatalf("Optional = %+v", o)
	}
	r := Elem("string").Repeated()
	if r.MaxOccurs != Unbounded {
		t.Fatalf("Repeated = %+v", r)
	}
	w := Elem("string").WithOrder(3)
	if w.Order != 3 {
		t.Fatalf("WithOrder = %+v", w)
	}
}

func TestSummary(t *testing.T) {
	p := Elem("integer").Optional().Repeated()
	s := p.Summary()
	for _, want := range []string{"integer", "min=0", "max=*"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
	if got := (Properties{}).Summary(); got != "" {
		// zero value normalizes to 1/1: nothing to show
		t.Fatalf("zero summary = %q", got)
	}
	a := Attr("ID")
	a.Use = "required"
	a.Nillable = true
	a.Fixed = "x"
	a.Default = "y"
	s = a.Summary()
	for _, want := range []string{"@attr", "use=required", "nillable", "fixed=x", "default=y"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}

func TestOccursGeneralizes(t *testing.T) {
	cases := []struct {
		aMin, aMax, bMin, bMax int
		want                   bool
	}{
		{0, 1, 1, 1, true},          // minOccurs=0 generalizes minOccurs=1 (paper example)
		{1, 1, 0, 1, false},         // and not vice versa
		{0, Unbounded, 1, 3, true},  // 0..* generalizes 1..3
		{1, 3, 0, Unbounded, false}, // bounded cannot cover unbounded
		{1, 1, 1, 1, true},          // equality generalizes (weakly)
		{0, Unbounded, 0, Unbounded, true},
		{0, 2, 0, 3, false}, // 0..2 does not cover 0..3
		{0, 3, 0, 2, true},
	}
	for _, c := range cases {
		if got := OccursGeneralizes(c.aMin, c.aMax, c.bMin, c.bMax); got != c.want {
			t.Errorf("OccursGeneralizes(%d,%d,%d,%d) = %v, want %v",
				c.aMin, c.aMax, c.bMin, c.bMax, got, c.want)
		}
	}
}

func TestCanonicalType(t *testing.T) {
	if got := CanonicalType("xs:integer"); got != "integer" {
		t.Fatalf("CanonicalType = %q", got)
	}
	if got := CanonicalType("integer"); got != "integer" {
		t.Fatalf("CanonicalType = %q", got)
	}
	if got := CanonicalType("xsd:string"); got != "string" {
		t.Fatalf("CanonicalType = %q", got)
	}
}

func TestTypeEqual(t *testing.T) {
	if !TypeEqual("xs:integer", "integer") {
		t.Fatal("prefixed type should equal bare type")
	}
	if TypeEqual("string", "integer") {
		t.Fatal("distinct types equal")
	}
	if !TypeEqual("", "") {
		t.Fatal("empty types should be equal")
	}
}

func TestTypeGeneralizes(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"decimal", "int", true},
		{"integer", "positiveInteger", true},
		{"int", "decimal", false},
		{"string", "token", true},
		{"token", "string", false},
		{"anyType", "string", true},
		{"anyType", "anyType", false},
		{"string", "string", false}, // generalization is strict
		{"", "int", false},
		{"int", "", false},
		{"xs:decimal", "xs:short", true},
		{"date", "dateTime", false}, // siblings, not ancestor/descendant
	}
	for _, c := range cases {
		if got := TypeGeneralizes(c.a, c.b); got != c.want {
			t.Errorf("TypeGeneralizes(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTypeCompatible(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"int", "int", true},
		{"int", "integer", true},   // generalization
		{"float", "int", true},     // same numeric family
		{"string", "int", false},   // text vs numeric
		{"date", "dateTime", true}, // temporal family
		{"boolean", "boolean", true},
		{"", "", true},
		{"", "int", false},
		{"PurchaseOrderType", "int", false}, // unknown complex type
	}
	for _, c := range cases {
		if got := TypeCompatible(c.a, c.b); got != c.want {
			t.Errorf("TypeCompatible(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTypeFamily(t *testing.T) {
	if got := TypeFamily("xs:unsignedByte"); got != "numeric" {
		t.Fatalf("family = %q", got)
	}
	if got := TypeFamily("MyComplexType"); got != "" {
		t.Fatalf("family of unknown = %q", got)
	}
}
