package xmltree

import (
	"bytes"
	"strings"
	"testing"
)

func jsonSample() *Node {
	attr := New("id", Attr("ID"))
	opt := New("Note", Elem("string").Optional())
	rep := New("Item", Elem("string").Repeated())
	fix := New("Version", Elem("string"))
	fix.Props.Fixed = "1.0"
	fix.Props.Nillable = true
	fix.Props.Default = "1.0"
	return NewTree("Root", Elem(""), attr, opt, rep, fix)
}

func TestJSONRoundTrip(t *testing.T) {
	orig := jsonSample()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(orig, back) {
		t.Fatalf("round trip differs:\n--- orig ---\n%s--- back ---\n%s", orig.Dump(), back.Dump())
	}
}

func TestJSONOmitsDefaults(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, New("X", Elem("string"))); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, absent := range []string{"minOccurs", "maxOccurs", "nillable", "fixed", "attribute"} {
		if strings.Contains(s, absent) {
			t.Errorf("default field %q serialized:\n%s", absent, s)
		}
	}
}

func TestJSONUnboundedAndZero(t *testing.T) {
	n := NewTree("R", Elem(""),
		New("A", Elem("string").Optional().Repeated()),
	)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, n); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := back.Children[0]
	if a.Props.MinOccurs != 0 || a.Props.MaxOccurs != Unbounded {
		t.Fatalf("occurs lost: %+v", a.Props)
	}
}

func TestJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{`)); err == nil {
		t.Fatal("malformed accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"children":[{}]}`)); err == nil {
		t.Fatal("label-less node accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"label":"x","maxOccurs":-5}`)); err == nil {
		t.Fatal("invalid maxOccurs accepted")
	}
}
