package xmltree

import (
	"strings"
	"testing"
)

// sample builds the PO tree of Figure 1 of the paper (shape only).
func sample() *Node {
	lines := NewTree("Lines", Elem(""),
		New("Item", Elem("string")),
		New("Quantity", Elem("integer")),
		New("UnitOfMeasure", Elem("string")),
	)
	info := NewTree("PurchaseInfo", Elem(""),
		New("BillingAddr", Elem("string")),
		New("ShippingAddr", Elem("string")),
		lines,
	)
	return NewTree("PO", Elem(""),
		New("OrderNo", Elem("integer")),
		info,
		New("PurchaseDate", Elem("date")),
	)
}

func TestAddSetsParentAndOrder(t *testing.T) {
	root := New("root", Properties{})
	a := New("a", Properties{})
	b := New("b", Properties{})
	root.Add(a).Add(b)
	if a.Parent() != root || b.Parent() != root {
		t.Fatal("parent linkage not set")
	}
	if a.Props.Order != 1 || b.Props.Order != 2 {
		t.Fatalf("orders = %d,%d, want 1,2", a.Props.Order, b.Props.Order)
	}
}

func TestAddKeepsExplicitOrder(t *testing.T) {
	root := New("root", Properties{})
	c := New("c", Properties{Order: 7})
	root.Add(c)
	if c.Props.Order != 7 {
		t.Fatalf("explicit order overwritten: %d", c.Props.Order)
	}
}

func TestAddNilIsNoop(t *testing.T) {
	root := New("root", Properties{})
	root.Add(nil)
	if len(root.Children) != 0 {
		t.Fatal("nil child appended")
	}
}

func TestLevels(t *testing.T) {
	po := sample()
	if got := po.Level(); got != 0 {
		t.Fatalf("root level = %d, want 0", got)
	}
	q := po.Find("PO/PurchaseInfo/Lines/Quantity")
	if q == nil {
		t.Fatal("Quantity not found")
	}
	if got := q.Level(); got != 3 {
		t.Fatalf("Quantity level = %d, want 3", got)
	}
	if got := po.Find("PO/OrderNo").Level(); got != 1 {
		t.Fatalf("OrderNo level = %d, want 1", got)
	}
}

func TestPath(t *testing.T) {
	po := sample()
	q := po.Children[1].Children[2].Children[1]
	if got := q.Path(); got != "PO/PurchaseInfo/Lines/Quantity" {
		t.Fatalf("path = %q", got)
	}
}

func TestSizeAndDepth(t *testing.T) {
	po := sample()
	if got := po.Size(); got != 10 {
		t.Fatalf("size = %d, want 10", got)
	}
	if got := po.MaxDepth(); got != 3 {
		t.Fatalf("max depth = %d, want 3", got)
	}
	leaf := New("x", Properties{})
	if leaf.Size() != 1 || leaf.MaxDepth() != 0 {
		t.Fatalf("leaf size/depth = %d/%d", leaf.Size(), leaf.MaxDepth())
	}
}

func TestLeaves(t *testing.T) {
	po := sample()
	ls := po.Leaves()
	want := []string{"OrderNo", "BillingAddr", "ShippingAddr", "Item", "Quantity", "UnitOfMeasure", "PurchaseDate"}
	if len(ls) != len(want) {
		t.Fatalf("got %d leaves, want %d", len(ls), len(want))
	}
	for i, l := range ls {
		if l.Label != want[i] {
			t.Fatalf("leaf[%d] = %s, want %s", i, l.Label, want[i])
		}
	}
}

func TestWalkPrune(t *testing.T) {
	po := sample()
	var seen []string
	po.Walk(func(n *Node) bool {
		seen = append(seen, n.Label)
		return n.Label != "PurchaseInfo" // prune PurchaseInfo subtree
	})
	for _, s := range seen {
		if s == "Lines" || s == "Quantity" {
			t.Fatalf("pruned node %q visited", s)
		}
	}
	if seen[len(seen)-1] != "PurchaseDate" {
		t.Fatalf("walk order wrong: %v", seen)
	}
}

func TestFindMissing(t *testing.T) {
	if sample().Find("PO/NoSuch") != nil {
		t.Fatal("Find returned node for missing path")
	}
}

func TestFindLabel(t *testing.T) {
	po := sample()
	hits := po.FindLabel("Quantity")
	if len(hits) != 1 || hits[0].Path() != "PO/PurchaseInfo/Lines/Quantity" {
		t.Fatalf("FindLabel = %v", hits)
	}
	if got := po.FindLabel("zzz"); len(got) != 0 {
		t.Fatalf("FindLabel miss = %v", got)
	}
}

func TestCloneDeepAndDetached(t *testing.T) {
	po := sample()
	cp := po.Clone()
	if !Equal(po, cp) {
		t.Fatal("clone not equal to original")
	}
	if cp.Parent() != nil {
		t.Fatal("clone should be a root")
	}
	cp.Children[0].Label = "Changed"
	if po.Children[0].Label == "Changed" {
		t.Fatal("clone shares nodes with original")
	}
}

func TestEqual(t *testing.T) {
	a, b := sample(), sample()
	if !Equal(a, b) {
		t.Fatal("identical trees not Equal")
	}
	b.Find("PO/OrderNo").Props.Type = "string"
	if Equal(a, b) {
		t.Fatal("property difference not detected")
	}
	if !Equal(nil, nil) {
		t.Fatal("nil,nil should be equal")
	}
	if Equal(a, nil) || Equal(nil, b) {
		t.Fatal("nil vs tree should differ")
	}
}

func TestRootAndParent(t *testing.T) {
	po := sample()
	q := po.Find("PO/PurchaseInfo/Lines/Quantity")
	if q.Root() != po {
		t.Fatal("Root() wrong")
	}
	if q.Parent().Label != "Lines" {
		t.Fatalf("parent = %s", q.Parent().Label)
	}
}

func TestDumpAndString(t *testing.T) {
	po := sample()
	d := po.Dump()
	if !strings.Contains(d, "PO") || !strings.Contains(d, "    Quantity") {
		t.Fatalf("dump missing content:\n%s", d)
	}
	n := New("OrderNo", Elem("integer"))
	if got := n.String(); got != "OrderNo(integer)" {
		t.Fatalf("String = %q", got)
	}
	u := New("X", Properties{})
	if got := u.String(); got != "X" {
		t.Fatalf("untyped String = %q", got)
	}
}

func TestLabels(t *testing.T) {
	got := sample().Labels()
	if len(got) != 10 {
		t.Fatalf("labels = %v", got)
	}
	if got[0] != "BillingAddr" { // sorted
		t.Fatalf("labels not sorted: %v", got)
	}
}

func TestInvalidateOnAdd(t *testing.T) {
	po := sample()
	lines := po.Find("PO/PurchaseInfo/Lines")
	_ = lines.Path() // populate caches
	_ = lines.Level()
	// Re-root Lines under a new tree; paths/levels must refresh.
	nr := New("NewRoot", Properties{})
	nr.Add(lines)
	if got := lines.Path(); got != "NewRoot/Lines" {
		t.Fatalf("stale path after re-add: %q", got)
	}
	if got := lines.Level(); got != 1 {
		t.Fatalf("stale level after re-add: %d", got)
	}
}
