package xmltree

import (
	"fmt"
	"strings"
)

// Unbounded is the MaxOccurs value representing maxOccurs="unbounded".
const Unbounded = -1

// Properties is the set of atomic properties of a schema node — the P axis
// of the QMatch taxonomy. The zero value describes an untyped element that
// occurs exactly once.
type Properties struct {
	// Type is the declared XSD type, e.g. "string", "integer", "date".
	// Complex types carry the complex-type name or "" for anonymous ones.
	Type string
	// Order is the 1-based position of the node among its siblings.
	Order int
	// MinOccurs and MaxOccurs are occurrence constraints. MaxOccurs of
	// Unbounded (-1) means maxOccurs="unbounded". The zero values are
	// normalized to 1/1 by Norm.
	MinOccurs int
	MaxOccurs int
	// IsAttribute marks XSD attributes (vs elements).
	IsAttribute bool
	// Use carries the attribute use facet ("required", "optional", ...).
	Use string
	// Nillable mirrors nillable="true".
	Nillable bool
	// Fixed and Default carry value constraints.
	Fixed   string
	Default string
}

// Norm returns p with zero occurrence constraints normalized to the XSD
// defaults (minOccurs=1, maxOccurs=1).
func (p Properties) Norm() Properties {
	if p.MinOccurs == 0 && p.MaxOccurs == 0 {
		p.MinOccurs, p.MaxOccurs = 1, 1
	}
	if p.MaxOccurs == 0 {
		p.MaxOccurs = 1
	}
	return p
}

// Elem is shorthand for the properties of a typed element.
func Elem(typ string) Properties {
	return Properties{Type: typ, MinOccurs: 1, MaxOccurs: 1}
}

// Attr is shorthand for the properties of a typed required attribute.
func Attr(typ string) Properties {
	return Properties{Type: typ, MinOccurs: 1, MaxOccurs: 1, IsAttribute: true, Use: "required"}
}

// Optional returns a copy of p with minOccurs set to 0.
func (p Properties) Optional() Properties {
	p.MinOccurs = 0
	return p
}

// Repeated returns a copy of p with maxOccurs set to unbounded.
func (p Properties) Repeated() Properties {
	p.MaxOccurs = Unbounded
	return p
}

// WithOrder returns a copy of p with the given sibling order.
func (p Properties) WithOrder(order int) Properties {
	p.Order = order
	return p
}

// Summary renders the non-default properties compactly, e.g.
// "integer min=0 max=*" — used by Node.Dump.
func (p Properties) Summary() string {
	var parts []string
	if p.Type != "" {
		parts = append(parts, p.Type)
	}
	if p.IsAttribute {
		parts = append(parts, "@attr")
	}
	q := p.Norm()
	if q.MinOccurs != 1 {
		parts = append(parts, fmt.Sprintf("min=%d", q.MinOccurs))
	}
	switch {
	case q.MaxOccurs == Unbounded:
		parts = append(parts, "max=*")
	case q.MaxOccurs != 1:
		parts = append(parts, fmt.Sprintf("max=%d", q.MaxOccurs))
	}
	if p.Nillable {
		parts = append(parts, "nillable")
	}
	if p.Use != "" && p.Use != "optional" {
		parts = append(parts, "use="+p.Use)
	}
	if p.Fixed != "" {
		parts = append(parts, "fixed="+p.Fixed)
	}
	if p.Default != "" {
		parts = append(parts, "default="+p.Default)
	}
	return strings.Join(parts, " ")
}

// OccursGeneralizes reports whether occurrence constraint (aMin,aMax)
// generalizes (bMin,bMax): every instance count allowed by b is allowed by a.
// Per the paper, minOccurs=0 is a generalization of minOccurs=1.
func OccursGeneralizes(aMin, aMax, bMin, bMax int) bool {
	if aMin > bMin {
		return false
	}
	if aMax == Unbounded {
		return true
	}
	if bMax == Unbounded {
		return false
	}
	return aMax >= bMax
}
