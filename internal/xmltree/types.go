package xmltree

import "strings"

// The XSD built-in datatype hierarchy (simplified to the fragment the test
// schemas exercise). typeParent maps each type to its immediate supertype;
// the roots are "anySimpleType" and, above everything, "anyType".
var typeParent = map[string]string{
	"anySimpleType":      "anyType",
	"string":             "anySimpleType",
	"normalizedString":   "string",
	"token":              "normalizedString",
	"language":           "token",
	"Name":               "token",
	"NCName":             "Name",
	"ID":                 "NCName",
	"IDREF":              "NCName",
	"NMTOKEN":            "token",
	"boolean":            "anySimpleType",
	"decimal":            "anySimpleType",
	"integer":            "decimal",
	"nonPositiveInteger": "integer",
	"negativeInteger":    "nonPositiveInteger",
	"long":               "integer",
	"int":                "long",
	"short":              "int",
	"byte":               "short",
	"nonNegativeInteger": "integer",
	"unsignedLong":       "nonNegativeInteger",
	"unsignedInt":        "unsignedLong",
	"unsignedShort":      "unsignedInt",
	"unsignedByte":       "unsignedShort",
	"positiveInteger":    "nonNegativeInteger",
	"float":              "anySimpleType",
	"double":             "anySimpleType",
	"duration":           "anySimpleType",
	"dateTime":           "anySimpleType",
	"time":               "anySimpleType",
	"date":               "anySimpleType",
	"gYearMonth":         "anySimpleType",
	"gYear":              "anySimpleType",
	"gMonthDay":          "anySimpleType",
	"gDay":               "anySimpleType",
	"gMonth":             "anySimpleType",
	"hexBinary":          "anySimpleType",
	"base64Binary":       "anySimpleType",
	"anyURI":             "anySimpleType",
	"QName":              "anySimpleType",
}

// typeFamily groups datatypes that are interchangeable for relaxed matching
// even though neither derives from the other (e.g. float vs decimal — both
// numeric). Keyed by canonical type name.
var typeFamily = map[string]string{
	"decimal": "numeric", "integer": "numeric", "long": "numeric",
	"int": "numeric", "short": "numeric", "byte": "numeric",
	"nonNegativeInteger": "numeric", "nonPositiveInteger": "numeric",
	"negativeInteger": "numeric", "positiveInteger": "numeric",
	"unsignedLong": "numeric", "unsignedInt": "numeric",
	"unsignedShort": "numeric", "unsignedByte": "numeric",
	"float": "numeric", "double": "numeric",
	"string": "text", "normalizedString": "text", "token": "text",
	"language": "text", "Name": "text", "NCName": "text", "ID": "text",
	"IDREF": "text", "NMTOKEN": "text", "anyURI": "text",
	"date": "temporal", "dateTime": "temporal", "time": "temporal",
	"duration": "temporal", "gYear": "temporal", "gYearMonth": "temporal",
	"gMonthDay": "temporal", "gDay": "temporal", "gMonth": "temporal",
	"boolean":   "boolean",
	"hexBinary": "binary", "base64Binary": "binary",
}

// CanonicalType strips a namespace prefix ("xs:", "xsd:", ...) from an XSD
// type name.
func CanonicalType(t string) string {
	if i := strings.LastIndexByte(t, ':'); i >= 0 {
		return t[i+1:]
	}
	return t
}

// TypeEqual reports whether two declared types are the same after prefix
// canonicalization. Empty types (untyped/complex anonymous) compare equal to
// each other only.
func TypeEqual(a, b string) bool {
	return CanonicalType(a) == CanonicalType(b)
}

// TypeGeneralizes reports whether type a is an ancestor of type b in the XSD
// datatype hierarchy (a generalizes b), e.g. decimal generalizes int.
func TypeGeneralizes(a, b string) bool {
	a, b = CanonicalType(a), CanonicalType(b)
	if a == "" || b == "" {
		return false
	}
	if a == "anyType" && b != "anyType" {
		return true
	}
	for cur := b; ; {
		p, ok := typeParent[cur]
		if !ok {
			return false
		}
		if p == a {
			return true
		}
		cur = p
	}
}

// TypeCompatible reports whether a and b are equal, related by
// generalization in either direction, or in the same datatype family.
// Compatible-but-unequal types constitute a relaxed property match.
func TypeCompatible(a, b string) bool {
	a, b = CanonicalType(a), CanonicalType(b)
	if a == b {
		return true
	}
	if TypeGeneralizes(a, b) || TypeGeneralizes(b, a) {
		return true
	}
	fa, oka := typeFamily[a]
	fb, okb := typeFamily[b]
	return oka && okb && fa == fb
}

// TypeFamily returns the coarse family ("numeric", "text", "temporal",
// "boolean", "binary") of a type, or "" when the type is unknown or complex.
func TypeFamily(t string) string {
	return typeFamily[CanonicalType(t)]
}
