// Package xmltree defines the schema tree model that every matcher in this
// repository operates on. An XML Schema is represented as a rooted, ordered
// tree of Nodes; each node carries a label, a set of properties, an ordered
// child list and its nesting level, mirroring the four axes of information
// (label, properties, children, level) of the QMatch paper (ICDE 2005, §2.1).
package xmltree

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Node is a single element or attribute in a schema tree.
//
// A fully built tree is safe for concurrent *read* access from any number
// of goroutines: the lazily computed level and path caches are maintained
// with atomics, so matchers may share one tree across workers. Mutating a
// tree (Add) while another goroutine reads it is not safe.
type Node struct {
	// Label is the element or attribute name as written in the schema.
	Label string
	// Props holds the atomic properties of the node (type, order,
	// occurrence constraints, ...).
	Props Properties
	// Children are the sub-elements and attributes of the node, in
	// document order. Attributes precede sub-elements.
	Children []*Node

	parent *Node
	level  atomic.Int32
	path   atomic.Pointer[string]
}

// New returns a leaf node with the given label and properties.
func New(label string, props Properties) *Node {
	return &Node{Label: label, Props: props}
}

// NewTree builds a node with the given children attached. Children are
// adopted in order and their Order property is assigned from their position
// (1-based) when it is unset.
func NewTree(label string, props Properties, children ...*Node) *Node {
	n := &Node{Label: label, Props: props}
	for _, c := range children {
		n.Add(c)
	}
	return n
}

// Add appends child to n, setting parent linkage and a 1-based Order when the
// child does not already carry one. It returns n for chaining.
func (n *Node) Add(child *Node) *Node {
	if child == nil {
		return n
	}
	child.parent = n
	if child.Props.Order == 0 {
		child.Props.Order = len(n.Children) + 1
	}
	n.Children = append(n.Children, child)
	n.invalidate()
	return n
}

// Parent returns the parent of n, or nil for a root.
func (n *Node) Parent() *Node { return n.parent }

// IsLeaf reports whether n has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Root returns the root of the tree containing n.
func (n *Node) Root() *Node {
	r := n
	for r.parent != nil {
		r = r.parent
	}
	return r
}

// Level returns the depth of n from its root; a root has level 0. Levels
// are computed lazily and cached with atomics, so concurrent readers of a
// finished tree may race to fill the cache but always store the same value.
// Add invalidates the cache for the whole tree.
func (n *Node) Level() int {
	if n.parent == nil {
		return 0
	}
	if l := n.level.Load(); l != 0 {
		return int(l)
	}
	l := int32(n.parent.Level() + 1)
	n.level.Store(l)
	return int(l)
}

// Path returns the slash-separated label path from the root to n, e.g.
// "PO/PurchaseInfo/Lines/Quantity". Paths identify nodes in correspondences
// and gold standards. Like Level, the cache is atomic: concurrent readers
// compute equal strings and either store wins.
func (n *Node) Path() string {
	if p := n.path.Load(); p != nil {
		return *p
	}
	var p string
	if n.parent == nil {
		p = n.Label
	} else {
		p = n.parent.Path() + "/" + n.Label
	}
	n.path.Store(&p)
	return p
}

// invalidate clears cached levels and paths below n after mutation.
func (n *Node) invalidate() {
	n.Walk(func(d *Node) bool {
		d.path.Store(nil)
		if d.parent != nil {
			d.level.Store(0)
		}
		return true
	})
}

// Walk visits n and all descendants in depth-first pre-order. The visit
// function returns false to prune the subtree below the visited node.
func (n *Node) Walk(visit func(*Node) bool) {
	if n == nil {
		return
	}
	if !visit(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// Nodes returns every node of the subtree rooted at n in pre-order.
func (n *Node) Nodes() []*Node {
	var out []*Node
	n.Walk(func(d *Node) bool {
		out = append(out, d)
		return true
	})
	return out
}

// Leaves returns the leaf nodes of the subtree rooted at n in document order.
func (n *Node) Leaves() []*Node {
	var out []*Node
	n.Walk(func(d *Node) bool {
		if d.IsLeaf() {
			out = append(out, d)
		}
		return true
	})
	return out
}

// Size returns the number of nodes in the subtree rooted at n.
func (n *Node) Size() int {
	total := 0
	n.Walk(func(*Node) bool { total++; return true })
	return total
}

// MaxDepth returns the maximum nesting depth of the subtree rooted at n,
// counting n itself as depth 0. A lone leaf has MaxDepth 0.
func (n *Node) MaxDepth() int {
	depth := 0
	for _, c := range n.Children {
		if d := c.MaxDepth() + 1; d > depth {
			depth = d
		}
	}
	return depth
}

// Find returns the first node in pre-order whose Path equals path, or nil.
func (n *Node) Find(path string) *Node {
	var hit *Node
	n.Walk(func(d *Node) bool {
		if hit != nil {
			return false
		}
		if d.Path() == path {
			hit = d
			return false
		}
		return true
	})
	return hit
}

// FindLabel returns every node in the subtree whose label equals label.
func (n *Node) FindLabel(label string) []*Node {
	var out []*Node
	n.Walk(func(d *Node) bool {
		if d.Label == label {
			out = append(out, d)
		}
		return true
	})
	return out
}

// Clone returns a deep copy of the subtree rooted at n. The copy is a root
// (its parent is nil) regardless of n's position.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Label: n.Label, Props: n.Props}
	for _, child := range n.Children {
		cc := child.Clone()
		cc.parent = c
		c.Children = append(c.Children, cc)
	}
	return c
}

// Equal reports whether two subtrees are structurally identical: same labels,
// same properties and same ordered children, recursively.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Label != b.Label || a.Props != b.Props || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// String renders the node as "Label(type)" for diagnostics.
func (n *Node) String() string {
	if n.Props.Type == "" {
		return n.Label
	}
	return fmt.Sprintf("%s(%s)", n.Label, n.Props.Type)
}

// Dump renders an indented ASCII view of the subtree, one node per line, for
// debugging and for the example programs.
func (n *Node) Dump() string {
	var b strings.Builder
	n.dump(&b, 0)
	return b.String()
}

func (n *Node) dump(b *strings.Builder, indent int) {
	b.WriteString(strings.Repeat("  ", indent))
	b.WriteString(n.Label)
	if s := n.Props.Summary(); s != "" {
		b.WriteString(" [" + s + "]")
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.dump(b, indent+1)
	}
}

// Labels returns the sorted set of distinct labels in the subtree.
func (n *Node) Labels() []string {
	seen := map[string]bool{}
	n.Walk(func(d *Node) bool {
		seen[d.Label] = true
		return true
	})
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
