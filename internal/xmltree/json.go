package xmltree

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON serialization of schema trees, for tooling that caches parsed
// corpora or moves schemas between processes. The format is a direct tree
// encoding; zero-valued properties are omitted.

// jsonNode is the wire shape of a node.
type jsonNode struct {
	Label       string      `json:"label"`
	Type        string      `json:"type,omitempty"`
	Order       int         `json:"order,omitempty"`
	MinOccurs   *int        `json:"minOccurs,omitempty"`
	MaxOccurs   *int        `json:"maxOccurs,omitempty"`
	IsAttribute bool        `json:"attribute,omitempty"`
	Use         string      `json:"use,omitempty"`
	Nillable    bool        `json:"nillable,omitempty"`
	Fixed       string      `json:"fixed,omitempty"`
	Default     string      `json:"default,omitempty"`
	Children    []*jsonNode `json:"children,omitempty"`
}

func toJSONNode(n *Node) *jsonNode {
	j := &jsonNode{
		Label:       n.Label,
		Type:        n.Props.Type,
		Order:       n.Props.Order,
		IsAttribute: n.Props.IsAttribute,
		Use:         n.Props.Use,
		Nillable:    n.Props.Nillable,
		Fixed:       n.Props.Fixed,
		Default:     n.Props.Default,
	}
	// Occurrence constraints are meaningful even at zero (minOccurs=0),
	// so encode them via pointers when not the XSD default of 1.
	if n.Props.MinOccurs != 1 {
		v := n.Props.MinOccurs
		j.MinOccurs = &v
	}
	if n.Props.MaxOccurs != 1 {
		v := n.Props.MaxOccurs
		j.MaxOccurs = &v
	}
	for _, c := range n.Children {
		j.Children = append(j.Children, toJSONNode(c))
	}
	return j
}

func fromJSONNode(j *jsonNode) (*Node, error) {
	if j.Label == "" {
		return nil, fmt.Errorf("xmltree: json node without label")
	}
	props := Properties{
		Type:        j.Type,
		Order:       j.Order,
		MinOccurs:   1,
		MaxOccurs:   1,
		IsAttribute: j.IsAttribute,
		Use:         j.Use,
		Nillable:    j.Nillable,
		Fixed:       j.Fixed,
		Default:     j.Default,
	}
	if j.MinOccurs != nil {
		props.MinOccurs = *j.MinOccurs
	}
	if j.MaxOccurs != nil {
		if *j.MaxOccurs < Unbounded {
			return nil, fmt.Errorf("xmltree: node %q: invalid maxOccurs %d", j.Label, *j.MaxOccurs)
		}
		props.MaxOccurs = *j.MaxOccurs
	}
	n := New(j.Label, props)
	for _, jc := range j.Children {
		c, err := fromJSONNode(jc)
		if err != nil {
			return nil, err
		}
		// Preserve the serialized Order rather than Add's renumbering.
		order := c.Props.Order
		n.Add(c)
		if order != 0 {
			c.Props.Order = order
		}
	}
	return n, nil
}

// WriteJSON serializes the subtree rooted at n as indented JSON.
func WriteJSON(w io.Writer, n *Node) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(toJSONNode(n))
}

// ReadJSON deserializes a tree written by WriteJSON.
func ReadJSON(r io.Reader) (*Node, error) {
	var j jsonNode
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("xmltree: json: %w", err)
	}
	return fromJSONNode(&j)
}
