package lingo

import "testing"

func TestThesaurusRelate(t *testing.T) {
	th := NewThesaurus()
	th.AddSynonym("writer", "author")
	th.AddHypernym("date", "purchase date")
	th.AddAcronym("uom", "unit of measure")

	cases := []struct {
		a, b string
		want Relation
	}{
		{"writer", "author", RelSynonym},
		{"author", "writer", RelSynonym}, // symmetric
		{"Writer", "AUTHOR", RelSynonym}, // normalized
		{"date", "purchase date", RelHypernym},
		{"purchase date", "date", RelHyponym},
		{"PurchaseDate", "Date", RelHyponym}, // camelCase normalizes
		{"uom", "unit of measure", RelAcronym},
		{"UnitOfMeasure", "UOM", RelAcronym},
		{"writer", "writer", RelSynonym}, // identical term
		{"writer", "date", RelNone},
		{"", "writer", RelNone},
	}
	for _, c := range cases {
		if got := th.Relate(c.a, c.b); got != c.want {
			t.Errorf("Relate(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRelationString(t *testing.T) {
	want := map[Relation]string{
		RelNone: "none", RelSynonym: "synonym", RelHypernym: "hypernym",
		RelHyponym: "hyponym", RelAcronym: "acronym",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("Relation(%d).String() = %q, want %q", r, r.String(), s)
		}
	}
}

func TestAddSynonymGroup(t *testing.T) {
	th := NewThesaurus()
	th.AddSynonymGroup("a", "b", "c")
	for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}} {
		if th.Relate(pair[0], pair[1]) != RelSynonym {
			t.Errorf("group pair %v not synonyms", pair)
		}
	}
}

func TestAddIgnoresDegenerate(t *testing.T) {
	th := NewThesaurus()
	th.AddSynonym("", "x")
	th.AddSynonym("x", "x")
	th.AddAcronym("", "x")
	th.AddHypernym("", "x")
	th.AddHypernym("x", "x")
	if th.Size() != 0 {
		t.Fatalf("degenerate adds stored: size=%d", th.Size())
	}
}

func TestSynonymsAndSize(t *testing.T) {
	th := NewThesaurus()
	th.AddSynonym("writer", "author")
	syn := th.Synonyms("Writer")
	if len(syn) != 1 || syn[0] != "author" {
		t.Fatalf("Synonyms = %v", syn)
	}
	if th.Size() != 2 { // two directed edges
		t.Fatalf("Size = %d", th.Size())
	}
}

func TestMerge(t *testing.T) {
	a := NewThesaurus()
	a.AddSynonym("x", "y")
	b := NewThesaurus()
	b.AddHypernym("animal", "dog")
	b.AddAcronym("id", "identifier")
	a.Merge(b)
	a.Merge(nil) // no-op
	if a.Relate("x", "y") != RelSynonym {
		t.Fatal("lost own relation")
	}
	if a.Relate("animal", "dog") != RelHypernym {
		t.Fatal("hypernym not merged")
	}
	if a.Relate("id", "identifier") != RelAcronym {
		t.Fatal("acronym not merged")
	}
}

func TestDefaultThesaurusPaperRelations(t *testing.T) {
	th := Default()
	// The relations the paper cites explicitly: Item↔Item# and
	// Writer↔Author exact; Lines↔Items, Quantity↔Qty, UnitOfMeasure↔UOM,
	// BillingAddr↔BillTo, ShippingAddr↔ShipTo relaxed.
	exactPairs := [][2]string{
		{"Item", "Item#"},
		{"Writer", "Author"},
		{"OrderNo", "OrderNumber"},
	}
	for _, p := range exactPairs {
		if got := th.Relate(p[0], p[1]); got != RelSynonym {
			t.Errorf("Default().Relate(%q,%q) = %v, want synonym", p[0], p[1], got)
		}
	}
	relaxedPairs := [][2]string{
		{"Lines", "Items"},
		{"Quantity", "Qty"},
		{"UnitOfMeasure", "UOM"},
		{"BillingAddr", "BillTo"},
		{"ShippingAddr", "ShipTo"},
		{"PO", "PurchaseOrder"},
		{"PurchaseInfo", "PurchaseOrder"},
	}
	for _, p := range relaxedPairs {
		switch th.Relate(p[0], p[1]) {
		case RelNone:
			t.Errorf("Default().Relate(%q,%q) = none, want a relaxed relation", p[0], p[1])
		case RelSynonym:
			t.Errorf("Default().Relate(%q,%q) = synonym, want a relaxed relation", p[0], p[1])
		}
	}
	if got := th.Relate("Date", "PurchaseDate"); got != RelHypernym {
		t.Errorf("Date vs PurchaseDate = %v, want hypernym", got)
	}
	if got := th.Relate("PurchaseDate", "Date"); got != RelHyponym {
		t.Errorf("PurchaseDate vs Date = %v, want hyponym", got)
	}
	// Library (Fig. 7) vs Human (Fig. 8) vocabularies must stay unrelated.
	for _, pair := range [][2]string{
		{"Library", "human"}, {"Book", "body"}, {"Title", "man"},
		{"Writer", "head"}, {"number", "hands"},
	} {
		if got := th.Relate(pair[0], pair[1]); got != RelNone {
			t.Errorf("disjoint pair %v related: %v", pair, got)
		}
	}
	// Default() is memoized: same instance.
	if Default() != th {
		t.Fatal("Default() not memoized")
	}
}
