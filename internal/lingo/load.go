package lingo

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// LoadThesaurus reads thesaurus relations from a simple line-oriented
// format, one relation per line:
//
//	relation <TAB> term-a <TAB> term-b
//
// where relation is one of "synonym", "related", "acronym" (term-a is the
// short form) or "hypernym" (term-a generalizes term-b). Blank lines and
// lines starting with '#' are ignored. The format is what a domain expert
// can maintain in a spreadsheet export — the tuning loop the paper's
// conclusion envisions ("a useful tool for tuning existing schema match
// algorithms").
func LoadThesaurus(r io.Reader) (*Thesaurus, error) {
	t := NewThesaurus()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("lingo: thesaurus line %d: want 3 tab-separated fields, got %d", lineNo, len(parts))
		}
		rel := strings.ToLower(strings.TrimSpace(parts[0]))
		a, b := strings.TrimSpace(parts[1]), strings.TrimSpace(parts[2])
		if a == "" || b == "" {
			return nil, fmt.Errorf("lingo: thesaurus line %d: empty term", lineNo)
		}
		switch rel {
		case "synonym":
			t.AddSynonym(a, b)
		case "related":
			t.AddRelated(a, b)
		case "acronym":
			t.AddAcronym(a, b)
		case "hypernym":
			t.AddHypernym(a, b)
		default:
			return nil, fmt.Errorf("lingo: thesaurus line %d: unknown relation %q", lineNo, rel)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lingo: thesaurus: %w", err)
	}
	return t, nil
}

// WriteThesaurusEntry formats one relation line in the LoadThesaurus
// format.
func WriteThesaurusEntry(w io.Writer, relation, a, b string) error {
	_, err := fmt.Fprintf(w, "%s\t%s\t%s\n", relation, a, b)
	return err
}
