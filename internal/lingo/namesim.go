package lingo

// NameMatcher computes label similarity between two schema labels and
// classifies the result on the QMatch label axis: exact (string-equal or
// synonym), relaxed (hypernym, acronym, abbreviation, or strong string
// similarity) or none. This is the "linguistic match algorithm" slot of the
// paper's framework (§2.1), built after CUPID's name matching: normalize,
// tokenize, discount noise tokens, consult the thesaurus per token, fall
// back to string metrics, and aggregate token scores symmetrically.

// Kind classifies a label-axis match per the QMatch taxonomy.
type Kind int

const (
	// None: the labels do not match.
	None Kind = iota
	// Relaxed: hypernym, acronym, abbreviation or strong string
	// similarity.
	Relaxed
	// Exact: string-equal, synonym, or ontology match.
	Exact
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Exact:
		return "exact"
	case Relaxed:
		return "relaxed"
	default:
		return "none"
	}
}

// NameMatcher scores label pairs. The zero value is not usable; construct
// with NewNameMatcher. A NameMatcher memoizes tokenizations and token-pair
// similarities and is therefore not safe for concurrent use; give each
// goroutine its own instance.
type NameMatcher struct {
	// Thesaurus supplies synonym / hypernym / acronym relations.
	Thesaurus *Thesaurus
	// RelaxedScore is the similarity assigned to thesaurus- or
	// abbreviation-derived relaxed matches (default 0.85).
	RelaxedScore float64
	// StringSimFloor is the minimum combined string similarity for two
	// tokens with no thesaurus relation to be considered similar at all
	// (default 0.75). Below the floor a token pair contributes zero.
	StringSimFloor float64
	// MatchThreshold is the minimum aggregate token score for the pair
	// to classify as Relaxed rather than None (default 0.65). Pairs that
	// classify as None score 0 on the label axis.
	MatchThreshold float64

	feats     map[string]*LabelFeatures
	tokIndex  map[string]int32
	tokNames  []string
	tokFeats  []tokenFeat
	tokenSims map[uint64]tokenScore
}

type tokenScore struct {
	score float64
	exact bool
}

// Clone returns a NameMatcher with the same thesaurus and tuning but
// fresh, empty memo caches. Workers that score labels concurrently each
// take a clone — the Thesaurus is shared read-only, the caches are not.
func (m *NameMatcher) Clone() *NameMatcher {
	c := *m
	c.feats = map[string]*LabelFeatures{}
	c.tokIndex = map[string]int32{}
	c.tokNames = nil
	c.tokFeats = nil
	c.tokenSims = map[uint64]tokenScore{}
	return &c
}

// NewNameMatcher returns a NameMatcher with the default tuning over the
// given thesaurus (nil selects an empty thesaurus, disabling semantic
// relations but keeping string similarity).
func NewNameMatcher(t *Thesaurus) *NameMatcher {
	if t == nil {
		t = NewThesaurus()
	}
	return &NameMatcher{
		Thesaurus:      t,
		RelaxedScore:   0.85,
		StringSimFloor: 0.75,
		MatchThreshold: 0.65,
		feats:          map[string]*LabelFeatures{},
		tokIndex:       map[string]int32{},
		tokenSims:      map[uint64]tokenScore{},
	}
}

// intern assigns (or returns) the dense id of a token, building its
// feature vector (singular form, runes, sorted trigram hashes, thesaurus
// membership) on first sight.
func (m *NameMatcher) intern(tok string) int32 {
	if id, ok := m.tokIndex[tok]; ok {
		return id
	}
	id := int32(len(m.tokNames))
	m.tokNames = append(m.tokNames, tok)
	r := []rune(tok)
	g := ngramHashesRunes(make([]uint64, 0, len(r)+2), r, 3)
	sortHashes(g)
	m.tokFeats = append(m.tokFeats, tokenFeat{
		sing:  Singularize(tok),
		runes: r,
		grams: g,
		known: m.Thesaurus.KnownNormalized(tok),
	})
	m.tokIndex[tok] = id
	return id
}

// Match returns the similarity score in [0,1] and its taxonomy kind for two
// labels. A None classification always scores 0 — the label axis either
// matches (exactly or relaxedly) or it does not (paper §2.1). It is
// MatchFeatures over the memoized per-label feature vectors, so repeated
// labels pay only two map lookups before the pair-level comparison.
func (m *NameMatcher) Match(a, b string) (float64, Kind) {
	return m.MatchFeatures(m.Features(a), m.Features(b))
}

// abbrevMatch is AbbrevMatch over pre-computed normalized forms and token
// lists: one label must acronymize or abbreviate the other. Word-level
// abbreviation only applies when the long side is a single token —
// detecting "end" as an "abbreviation" of the concatenation "entity"+"id"
// would be a false positive across a token boundary.
func (m *NameMatcher) abbrevMatch(na, nb string, ta, tb []string) bool {
	ns, nl, tl := na, nb, tb
	if len(na) > len(nb) {
		ns, nl, tl = nb, na, ta
	}
	if len(tl) >= 2 && len(ns) == len(tl) {
		// Compare ns against the tokens' first letters in place (the
		// FirstLetters string build is avoidable on this hot path).
		acronym := true
		for i, tok := range tl {
			if tok == "" || tok[0] != ns[i] {
				acronym = false
				break
			}
		}
		if acronym {
			return true
		}
	}
	return len(tl) == 1 && IsAbbreviationOf(ns, nl)
}

// Score returns just the similarity of two labels.
func (m *NameMatcher) Score(a, b string) float64 {
	s, _ := m.Match(a, b)
	return s
}

// tokenAggregate performs symmetric best-pair aggregation over the token
// sets: each token is matched to its best counterpart; the aggregate is the
// mean of the two directional averages. It reports whether every best match
// was exact and whether every token on both sides found a counterpart.
func (m *NameMatcher) tokenAggregate(ta, tb []int32) (score float64, allExact, fullCover bool) {
	if len(ta) == 0 || len(tb) == 0 {
		return 0, false, false
	}
	allExact, fullCover = true, true
	dirA := m.direction(ta, tb, &allExact, &fullCover)
	dirB := m.direction(tb, ta, &allExact, &fullCover)
	return (dirA + dirB) / 2, allExact, fullCover
}

func (m *NameMatcher) direction(from, to []int32, allExact, fullCover *bool) float64 {
	total := 0.0
	for _, ft := range from {
		best, bestExact := 0.0, false
		for _, tt := range to {
			s := m.tokenSim(ft, tt)
			if s.score > best || (s.score == best && s.exact && !bestExact) {
				best, bestExact = s.score, s.exact
			}
		}
		if best == 0 {
			*fullCover = false
		}
		if !bestExact {
			*allExact = false
		}
		total += best
	}
	return total / float64(len(from))
}

// tokenSim scores one interned token pair (memoized symmetrically under
// the packed id pair).
func (m *NameMatcher) tokenSim(a, b int32) tokenScore {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	key := uint64(uint32(lo))<<32 | uint64(uint32(hi))
	if s, ok := m.tokenSims[key]; ok {
		return s
	}
	s := m.tokenSimUncached(a, b)
	m.tokenSims[key] = s
	return s
}

func (m *NameMatcher) tokenSimUncached(a, b int32) tokenScore {
	ta, tb := m.tokNames[a], m.tokNames[b]
	fa, fb := &m.tokFeats[a], &m.tokFeats[b]
	// Distinct ids mean distinct tokens, so singular equality alone covers
	// the "equal or equal-after-singularization" rule.
	if fa.sing == fb.sing {
		return tokenScore{1, true}
	}
	// Tokens are already lowercase and separator-free; the known flags
	// prove RelNone without the map probes (see KnownNormalized).
	if fa.known || fb.known {
		switch m.Thesaurus.RelateNormalized(ta, tb) {
		case RelSynonym:
			return tokenScore{1, true}
		case RelAcronym, RelHypernym, RelHyponym, RelRelated:
			return tokenScore{m.RelaxedScore, false}
		}
	}
	if IsAbbreviationOf(ta, tb) || IsAbbreviationOf(tb, ta) {
		return tokenScore{m.RelaxedScore, false}
	}
	if s, ok := simAtLeast(fa.runes, fb.runes, fa.grams, fb.grams,
		ta, tb, m.StringSimFloor); ok {
		return tokenScore{s, false}
	}
	return tokenScore{}
}
