package lingo

import "strings"

// Acronym and abbreviation detection. Schema designers routinely shorten
// labels ("Quantity" → "Qty", "Unit Of Measure" → "UOM", "Purchase Order" →
// "PO"); the QMatch paper classifies such pairs as *relaxed* label matches.
// The detectors below are heuristic but conservative: they only fire when
// the shorter string is structurally derivable from the longer one.

// IsAcronymOf reports whether short is the acronym of the token sequence of
// long: its letters are exactly the first letters of long's tokens
// ("UOM" / "Unit Of Measure", "PO" / "Purchase Order"). Comparison is
// case-insensitive and requires at least two tokens so single words do not
// "acronym" to their own initial.
func IsAcronymOf(short, long string) bool {
	tokens := Tokenize(long)
	if len(tokens) < 2 {
		return false
	}
	return strings.ToLower(short) == FirstLetters(tokens)
}

// IsAbbreviationOf reports whether short abbreviates the single word long,
// e.g. "qty"/"quantity", "no"/"number", "addr"/"address", "amt"/"amount".
// The heuristic requires all of:
//
//   - short is strictly shorter than long and at least 2 characters;
//   - they share the same first letter;
//   - short is a subsequence of long (letters in order), OR short is
//     long's consonant skeleton prefix (vowels dropped);
//   - short covers at least a third of long, or is a prefix of long.
//
// A small table of irregular English shortenings ("no" → "number") covers
// forms the structural rules cannot derive. Both inputs are lowercased
// before testing.
func IsAbbreviationOf(short, long string) bool {
	s, l := strings.ToLower(short), strings.ToLower(long)
	if irregular[s] == l {
		return true
	}
	if len(s) < 2 || len(s) >= len(l) {
		return false
	}
	if s[0] != l[0] {
		return false
	}
	subseq := IsSubsequence(s, l)
	skeleton := strings.HasPrefix(consonantSkeleton(l), s) || s == consonantSkeleton(l)
	if !subseq && !skeleton {
		return false
	}
	if strings.HasPrefix(l, s) {
		return true
	}
	return 3*len(s) >= len(l)
}

// irregular maps conventional shortenings to their expansions where the
// structural heuristics cannot derive the relation.
var irregular = map[string]string{
	"no":  "number",
	"nbr": "number",
	"wt":  "weight",
	"mfg": "manufacturing",
	"pkg": "package",
}

// consonantSkeleton removes interior vowels from a word, keeping the first
// character: "quantity" → "qntty", "order" → "ordr".
func consonantSkeleton(w string) string {
	if w == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte(w[0])
	for i := 1; i < len(w); i++ {
		switch w[i] {
		case 'a', 'e', 'i', 'o', 'u':
		default:
			b.WriteByte(w[i])
		}
	}
	return b.String()
}

// AbbrevMatch reports whether either label abbreviates or acronymizes the
// other, at whole-label granularity. It is symmetric.
func AbbrevMatch(a, b string) bool {
	na, nb := Normalize(a), Normalize(b)
	if na == "" || nb == "" || na == nb {
		return false
	}
	short, long := a, b
	if len(na) > len(nb) {
		short, long = b, a
	}
	ns := Normalize(short)
	if IsAcronymOf(ns, long) {
		return true
	}
	// Single-word abbreviation of the whole normalized long form.
	return IsAbbreviationOf(ns, Normalize(long))
}
