package lingo

import (
	"testing"
	"testing/quick"
)

func matcher() *NameMatcher { return NewNameMatcher(Default()) }

func TestNameMatchExact(t *testing.T) {
	m := matcher()
	cases := [][2]string{
		{"OrderNo", "OrderNo"},
		{"OrderNo", "order_no"}, // separator-insensitive
		{"Writer", "Author"},    // synonym
		{"Item", "Item#"},       // synonym (paper: Item/Item# is exact)
	}
	for _, c := range cases {
		s, k := m.Match(c[0], c[1])
		if k != Exact || s != 1 {
			t.Errorf("Match(%q,%q) = (%v,%v), want (1,exact)", c[0], c[1], s, k)
		}
	}
}

func TestNameMatchRelaxed(t *testing.T) {
	m := matcher()
	cases := [][2]string{
		{"PurchaseDate", "Date"},           // hyponym
		{"Date", "PurchaseDate"},           // hypernym
		{"ProductDescription", "ProdDesc"}, // abbreviation tokens
		{"CustomerName", "CustName"},       // abbreviation token
	}
	for _, c := range cases {
		s, k := m.Match(c[0], c[1])
		if k != Relaxed {
			t.Errorf("Match(%q,%q) = (%v,%v), want relaxed", c[0], c[1], s, k)
		}
		if s <= 0 || s >= 1 {
			t.Errorf("Match(%q,%q) score = %v, want in (0,1)", c[0], c[1], s)
		}
	}
}

func TestNameMatchPaperPairs(t *testing.T) {
	// §2.1: "Unit Of Measure ... has an acronym match with ... UOM —
	// denoting a relaxed match along the label axis". Our default
	// thesaurus also lists them as synonyms; with a thesaurus that only
	// knows the acronym, the pair must classify as relaxed.
	th := NewThesaurus()
	th.AddAcronym("uom", "unit of measure")
	m := NewNameMatcher(th)
	s, k := m.Match("Unit Of Measure", "UOM")
	if k != Relaxed || s != m.RelaxedScore {
		t.Fatalf("UOM acronym = (%v,%v), want (%v,relaxed)", s, k, m.RelaxedScore)
	}
	// Quantity vs Qty via pure abbreviation detection (empty thesaurus).
	empty := NewNameMatcher(nil)
	s, k = empty.Match("Quantity", "Qty")
	if k != Relaxed {
		t.Fatalf("Quantity/Qty = (%v,%v), want relaxed", s, k)
	}
}

func TestNameMatchNone(t *testing.T) {
	m := matcher()
	cases := [][2]string{
		{"Library", "human"},
		{"Book", "legs"},
		{"Writer", "head"},
		{"", "x"},
		{"x", ""},
	}
	for _, c := range cases {
		if s, k := m.Match(c[0], c[1]); k != None {
			t.Errorf("Match(%q,%q) = (%v,%v), want none", c[0], c[1], s, k)
		}
	}
}

func TestNameMatchTokenAggregation(t *testing.T) {
	m := matcher()
	// "PurchaseOrderNumber" vs "OrderNumber": shared tokens dominate.
	s, k := m.Match("PurchaseOrderNumber", "OrderNumber")
	if k == None || s < 0.5 {
		t.Fatalf("token aggregation = (%v,%v)", s, k)
	}
	// Asymmetric coverage still symmetric in score.
	s2, _ := m.Match("OrderNumber", "PurchaseOrderNumber")
	if s != s2 {
		t.Fatalf("asymmetric scores: %v vs %v", s, s2)
	}
}

func TestNameMatchScoreHelper(t *testing.T) {
	m := matcher()
	if m.Score("OrderNo", "OrderNo") != 1 {
		t.Fatal("Score of equal labels != 1")
	}
}

func TestNewNameMatcherNilThesaurus(t *testing.T) {
	m := NewNameMatcher(nil)
	if m.Thesaurus == nil {
		t.Fatal("nil thesaurus not replaced")
	}
	// Equal strings still exact without a thesaurus.
	if s, k := m.Match("abc", "ABC"); k != Exact || s != 1 {
		t.Fatalf("case-insensitive equality = (%v,%v)", s, k)
	}
}

// Properties: score in [0,1]; symmetric; kind consistent with score
// thresholds (Exact implies score 1 under the default tuning).
func TestNameMatchProperties(t *testing.T) {
	m := matcher()
	clip := func(s string) string {
		if len(s) > 12 {
			return s[:12]
		}
		return s
	}
	prop := func(a, b string) bool {
		a, b = clip(a), clip(b)
		s1, k1 := m.Match(a, b)
		s2, k2 := m.Match(b, a)
		if s1 < 0 || s1 > 1 {
			return false
		}
		if s1 != s2 || k1 != k2 {
			return false
		}
		if k1 == Exact && s1 != 1 {
			return false
		}
		if k1 == None && s1 >= m.MatchThreshold && s1 >= m.StringSimFloor {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if None.String() != "none" || Relaxed.String() != "relaxed" || Exact.String() != "exact" {
		t.Fatal("Kind.String mismatch")
	}
}
