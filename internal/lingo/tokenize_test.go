package lingo

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"OrderNo", []string{"order", "no"}},
		{"PurchaseDate", []string{"purchase", "date"}},
		{"Unit Of Measure", []string{"unit", "of", "measure"}},
		{"Unit_Of-Measure", []string{"unit", "of", "measure"}},
		{"UOM", []string{"uom"}},
		{"Item#", []string{"item", "number"}},
		{"PONumber", []string{"po", "number"}},
		{"billTo", []string{"bill", "to"}},
		{"address2", []string{"address", "2"}},
		{"ISBN13Code", []string{"isbn", "13", "code"}},
		{"dc:creator", []string{"dc", "creator"}},
		{"", nil},
		{"   ", nil},
		{"a", []string{"a"}},
		{"XMLSchema", []string{"xml", "schema"}},
		{"first.last", []string{"first", "last"}},
		{"(x,y)", []string{"x", "y"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize("Unit_Of-Measure"); got != "unitofmeasure" {
		t.Fatalf("Normalize = %q", got)
	}
	if got := Normalize("OrderNo"); got != "orderno" {
		t.Fatalf("Normalize = %q", got)
	}
}

func TestTokenSet(t *testing.T) {
	s := TokenSet("bill to bill")
	if len(s) != 2 || !s["bill"] || !s["to"] {
		t.Fatalf("TokenSet = %v", s)
	}
}

func TestFirstLetters(t *testing.T) {
	if got := FirstLetters([]string{"unit", "of", "measure"}); got != "uom" {
		t.Fatalf("FirstLetters = %q", got)
	}
	if got := FirstLetters(nil); got != "" {
		t.Fatalf("FirstLetters(nil) = %q", got)
	}
}

// Property: tokens are non-empty, lowercase, and their concatenated letters
// and digits equal the lowercased letters and digits of the input.
func TestTokenizeProperties(t *testing.T) {
	keep := func(s string) string {
		var b strings.Builder
		for _, r := range strings.ToLower(s) {
			if unicode.IsLetter(r) || unicode.IsDigit(r) {
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	prop := func(s string) bool {
		if strings.ContainsRune(s, '#') {
			return true // '#' expands to the word "number", changing letters
		}
		toks := Tokenize(s)
		var joined strings.Builder
		for _, tok := range toks {
			if tok == "" || tok != strings.ToLower(tok) {
				return false
			}
			joined.WriteString(tok)
		}
		return keep(joined.String()) == keep(s)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
