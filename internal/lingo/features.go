package lingo

// Per-label feature vectors. The pair-table fill scores every unique label
// pair of a schema pair, so anything derivable from one label alone —
// normalization, singularization, rune decoding, trigram hashing and
// sorting, tokenization, thesaurus membership — is O(|labels|) work that
// must not be repeated per pair. LabelFeatures captures exactly that
// per-label state; MatchFeatures is NameMatcher.Match rewritten over two
// feature vectors, sharing one implementation so the scores stay
// bit-identical however a caller reaches them.

// LabelFeatures holds everything the linguistic matcher can precompute
// from a single label. Build instances with NameMatcher.Features, which
// memoizes per label; the fields are sampled at build time, so thesaurus
// edits after the first use of a label are not observed (the same
// staleness contract the token-pair memo has always had).
type LabelFeatures struct {
	// Norm is Normalize(label): lowercase, separator-free.
	Norm string
	// sing is Singularize(Norm); two labels match exactly iff these agree.
	sing string
	// runes is Norm decoded once, the Jaro-Winkler input.
	runes []rune
	// grams is the sorted trigram hash multiset of Norm, ready for a
	// linear Dice merge with no per-pair hashing or sorting.
	grams []uint64
	// toks are the noise-stripped tokens of the raw label; ids are their
	// dense interned ids on the owning matcher.
	toks []string
	ids  []int32
	// known records whether the thesaurus has any relation edge for Norm
	// (or its singular). When neither side is known, the whole-label
	// thesaurus lookup is provably RelNone and is skipped.
	known bool
}

// tokenFeat is the per-token analogue of LabelFeatures, indexed by the
// matcher's dense token id. Tokens are already lowercase and
// separator-free, so the token itself plays the role of Norm.
type tokenFeat struct {
	sing  string
	runes []rune
	grams []uint64
	known bool
}

// Features returns the memoized feature vector of a label. The result is
// owned by the matcher and must be treated as read-only; like every
// NameMatcher memo it is not safe for concurrent use.
func (m *NameMatcher) Features(label string) *LabelFeatures {
	if f, ok := m.feats[label]; ok {
		return f
	}
	f := m.buildFeatures(label)
	m.feats[label] = f
	return f
}

func (m *NameMatcher) buildFeatures(label string) *LabelFeatures {
	n := Normalize(label)
	f := &LabelFeatures{Norm: n}
	if n == "" {
		return f
	}
	f.sing = Singularize(n)
	f.runes = []rune(n)
	f.grams = ngramHashesRunes(make([]uint64, 0, len(f.runes)+2), f.runes, 3)
	sortHashes(f.grams)
	f.toks = StripNoise(Tokenize(label))
	f.ids = make([]int32, len(f.toks))
	for i, t := range f.toks {
		f.ids[i] = m.intern(t)
	}
	f.known = m.Thesaurus.KnownNormalized(n)
	return f
}

// MatchFeatures is Match over prebuilt feature vectors: the same decision
// chain (normalized equality, thesaurus, acronym/abbreviation, token
// aggregation, whole-string similarity) producing bit-identical scores,
// with the per-label work amortized away. Both features must come from
// this matcher's Features (token ids are matcher-local).
func (m *NameMatcher) MatchFeatures(fa, fb *LabelFeatures) (float64, Kind) {
	if fa.Norm == "" || fb.Norm == "" {
		return 0, None
	}
	// Norm equality implies sing equality, so one comparison covers the
	// "equal or equal-after-singularization" exact rule.
	if fa.sing == fb.sing {
		return 1, Exact
	}
	// Whole-label thesaurus relation. With sing-equality excluded above,
	// RelateNormalized can only return non-None when one side has a
	// relation edge — the known flags prove absence without map lookups.
	if fa.known || fb.known {
		switch m.Thesaurus.RelateNormalized(fa.Norm, fb.Norm) {
		case RelSynonym:
			return 1, Exact
		case RelAcronym, RelHypernym, RelHyponym, RelRelated:
			return m.RelaxedScore, Relaxed
		}
	}
	// Whole-label acronym / abbreviation detection.
	if m.abbrevMatch(fa.Norm, fb.Norm, fa.toks, fb.toks) {
		return m.RelaxedScore, Relaxed
	}
	// Token-level aggregation.
	score, allExact, fullCover := m.tokenAggregate(fa.ids, fb.ids)
	if score >= m.MatchThreshold {
		if allExact && fullCover && score >= 0.999 {
			return score, Exact
		}
		return score, Relaxed
	}
	// Last resort: whole-string similarity of normalized labels, useful
	// for labels that tokenize poorly ("custaddr").
	if ws, ok := simAtLeast(fa.runes, fb.runes, fa.grams, fb.grams,
		fa.Norm, fb.Norm, m.StringSimFloor); ok {
		return ws, Relaxed
	}
	return 0, None
}

// simAtLeast computes combined Jaro-Winkler + trigram similarity over
// precomputed runes and sorted gram multisets, reporting (value, true)
// exactly when the historical combinedStringSim(a, b) would have returned
// a value ≥ floor — and that identical value. Below the floor it may
// return (0, false) without finishing the computation: every caller maps
// below-floor similarities to "no match", so the early exits are
// unobservable.
//
// The pruning order is the reverse of the historical code: the Dice merge
// over pre-sorted grams is now far cheaper than Jaro, so it runs first
// and bounds the combined score from above ((1+tg)/2, since jw ≤ 1).
// The bound is only a valid filter when floor > 0.25, because the
// jw < 0.5 branch caps its result at 0.25 independently of tg.
func simAtLeast(ra, rb []rune, ga, gb []uint64, a, b string, floor float64) (float64, bool) {
	if floor > 0.25 && len(ga) > 0 && len(gb) > 0 {
		// (1+tg)/2 ≥ floor requires tg ≥ 2·floor−1; the bounded merge
		// stops as soon as that is provably out of reach.
		tg, exact := diceSortedBounded(ga, gb, 2*floor-1)
		if !exact || (1+tg)/2 < floor {
			return 0, false
		}
		jw := jaroWinklerRunes(ra, rb)
		if jw < 0.5 {
			return 0, false // historical value jw/2 < 0.25 < floor
		}
		s := (jw + tg) / 2
		return s, s >= floor
	}
	// Low floors can be met by the jw/2 branch; mirror the historical
	// evaluation order exactly.
	jw := jaroWinklerRunes(ra, rb)
	if jw < 0.5 {
		s := jw / 2
		return s, s >= floor
	}
	s := (jw + diceSortedHashes(ga, gb, a, b)) / 2
	return s, s >= floor
}
