package lingo

// Thesaurus stores the semantic relations the linguistic matcher consults:
// synonym (exact matches in the QMatch taxonomy), hypernym/hyponym and
// acronym/abbreviation expansions (relaxed matches). It plays the role of
// the WordNet-style resource the paper's linguistic algorithm depends on.
//
// All entries are stored under Normalize(word), so lookups are insensitive
// to case and separators.

// Relation classifies how two terms relate in the thesaurus.
type Relation int

const (
	// RelNone means the thesaurus records no relation.
	RelNone Relation = iota
	// RelSynonym: the terms name the same concept (exact label match).
	RelSynonym
	// RelHypernym: the first term is a generalization of the second
	// (relaxed label match).
	RelHypernym
	// RelHyponym: the first term is a specialization of the second
	// (relaxed label match).
	RelHyponym
	// RelAcronym: one term is a recorded acronym or abbreviation of the
	// other (relaxed label match).
	RelAcronym
	// RelRelated: the terms overlap semantically without being synonyms
	// (relaxed label match), e.g. "Lines" and "Items" in the paper's
	// purchase-order example.
	RelRelated
)

// String returns the relation name for diagnostics.
func (r Relation) String() string {
	switch r {
	case RelSynonym:
		return "synonym"
	case RelHypernym:
		return "hypernym"
	case RelHyponym:
		return "hyponym"
	case RelAcronym:
		return "acronym"
	case RelRelated:
		return "related"
	default:
		return "none"
	}
}

// Thesaurus is a symmetric synonym store plus directed hypernym edges and
// symmetric acronym expansions. The zero value is not usable; call
// NewThesaurus or Default.
type Thesaurus struct {
	syn   map[string]map[string]bool // undirected
	hyper map[string]map[string]bool // hyper[general][specific]
	acro  map[string]map[string]bool // undirected
	rel   map[string]map[string]bool // undirected
}

// NewThesaurus returns an empty thesaurus.
func NewThesaurus() *Thesaurus {
	return &Thesaurus{
		syn:   map[string]map[string]bool{},
		hyper: map[string]map[string]bool{},
		acro:  map[string]map[string]bool{},
		rel:   map[string]map[string]bool{},
	}
}

func addEdge(m map[string]map[string]bool, a, b string) {
	if m[a] == nil {
		m[a] = map[string]bool{}
	}
	m[a][b] = true
}

// AddSynonym records a ↔ b as synonyms (symmetric).
func (t *Thesaurus) AddSynonym(a, b string) {
	na, nb := Normalize(a), Normalize(b)
	if na == "" || nb == "" || na == nb {
		return
	}
	addEdge(t.syn, na, nb)
	addEdge(t.syn, nb, na)
}

// AddSynonymGroup records every pair in words as synonyms.
func (t *Thesaurus) AddSynonymGroup(words ...string) {
	for i := range words {
		for j := i + 1; j < len(words); j++ {
			t.AddSynonym(words[i], words[j])
		}
	}
}

// AddHypernym records general as a hypernym of each specific term:
// "date" generalizes "purchase date".
func (t *Thesaurus) AddHypernym(general string, specifics ...string) {
	ng := Normalize(general)
	for _, s := range specifics {
		ns := Normalize(s)
		if ng == "" || ns == "" || ng == ns {
			continue
		}
		addEdge(t.hyper, ng, ns)
	}
}

// AddAcronym records short as an acronym/abbreviation of long (symmetric
// lookup): AddAcronym("UOM", "unit of measure").
func (t *Thesaurus) AddAcronym(short, long string) {
	ns, nl := Normalize(short), Normalize(long)
	if ns == "" || nl == "" || ns == nl {
		return
	}
	addEdge(t.acro, ns, nl)
	addEdge(t.acro, nl, ns)
}

// AddRelated records a ↔ b as semantically related but not synonymous
// (symmetric): a relaxed label match.
func (t *Thesaurus) AddRelated(a, b string) {
	na, nb := Normalize(a), Normalize(b)
	if na == "" || nb == "" || na == nb {
		return
	}
	addEdge(t.rel, na, nb)
	addEdge(t.rel, nb, na)
}

// AddRelatedGroup records every pair in words as related.
func (t *Thesaurus) AddRelatedGroup(words ...string) {
	for i := range words {
		for j := i + 1; j < len(words); j++ {
			t.AddRelated(words[i], words[j])
		}
	}
}

// Relate returns the strongest recorded relation between terms a and b,
// checking synonym, then acronym, then hypernym/hyponym, then related.
// Terms are normalized; identical normalized terms return RelSynonym.
// Callers that already hold normalized forms should use RelateNormalized.
func (t *Thesaurus) Relate(a, b string) Relation {
	return t.RelateNormalized(Normalize(a), Normalize(b))
}

// RelateNormalized is Relate over terms already in Normalize form (lowercase,
// separator-free). It avoids re-tokenizing on hot paths.
func (t *Thesaurus) RelateNormalized(na, nb string) Relation {
	if na == "" || nb == "" {
		return RelNone
	}
	if na == nb {
		return RelSynonym
	}
	if r := t.relate(na, nb); r != RelNone {
		return r
	}
	// Plural-insensitive fallback: "items" relates as "item" does.
	sa, sb := Singularize(na), Singularize(nb)
	if sa != na || sb != nb {
		if sa == sb {
			return RelSynonym
		}
		return t.relate(sa, sb)
	}
	return RelNone
}

func (t *Thesaurus) relate(na, nb string) Relation {
	if t.syn[na][nb] {
		return RelSynonym
	}
	if t.acro[na][nb] {
		return RelAcronym
	}
	if t.hyper[na][nb] {
		return RelHypernym
	}
	if t.hyper[nb][na] {
		return RelHyponym
	}
	if t.rel[na][nb] {
		return RelRelated
	}
	return RelNone
}

// KnownNormalized reports whether the normalized term — or its singular
// form — is a key of any relation map. When KnownNormalized is false for
// both terms of a pair whose singular forms differ, RelateNormalized is
// provably RelNone: every branch of relate requires one side as a map key
// (hyponym checks hyper keyed by the *other* term, which that term's own
// flag covers), and the singular fallback only consults singular-form
// keys. Hot paths use this to skip the five map probes per pair.
func (t *Thesaurus) KnownNormalized(n string) bool {
	if t.termKey(n) {
		return true
	}
	if s := Singularize(n); s != n {
		return t.termKey(s)
	}
	return false
}

// termKey reports whether n keys any of the relation maps.
func (t *Thesaurus) termKey(n string) bool {
	if _, ok := t.syn[n]; ok {
		return true
	}
	if _, ok := t.acro[n]; ok {
		return true
	}
	if _, ok := t.hyper[n]; ok {
		return true
	}
	_, ok := t.rel[n]
	return ok
}

// Synonyms returns the recorded synonyms of the term (normalized forms).
func (t *Thesaurus) Synonyms(term string) []string {
	var out []string
	for s := range t.syn[Normalize(term)] {
		out = append(out, s)
	}
	return out
}

// Size returns the number of directed relation edges stored, a cheap
// indicator for tests and diagnostics.
func (t *Thesaurus) Size() int {
	n := 0
	for _, m := range t.syn {
		n += len(m)
	}
	for _, m := range t.hyper {
		n += len(m)
	}
	for _, m := range t.acro {
		n += len(m)
	}
	for _, m := range t.rel {
		n += len(m)
	}
	return n
}

// Merge copies every relation of other into t.
func (t *Thesaurus) Merge(other *Thesaurus) {
	if other == nil {
		return
	}
	for a, m := range other.syn {
		for b := range m {
			addEdge(t.syn, a, b)
		}
	}
	for a, m := range other.hyper {
		for b := range m {
			addEdge(t.hyper, a, b)
		}
	}
	for a, m := range other.acro {
		for b := range m {
			addEdge(t.acro, a, b)
		}
	}
	for a, m := range other.rel {
		for b := range m {
			addEdge(t.rel, a, b)
		}
	}
}
