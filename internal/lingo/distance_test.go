package lingo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"quantity", "qty", 5},
		{"order", "order", 0},
		{"a", "b", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Properties: symmetry, identity, triangle inequality, bounds.
func TestLevenshteinProperties(t *testing.T) {
	clip := func(s string) string {
		if len(s) > 12 {
			return s[:12]
		}
		return s
	}
	sym := func(a, b string) bool {
		a, b = clip(a), clip(b)
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(sym, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("symmetry: %v", err)
	}
	ident := func(a string) bool { return Levenshtein(clip(a), clip(a)) == 0 }
	if err := quick.Check(ident, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("identity: %v", err)
	}
	tri := func(a, b, c string) bool {
		a, b, c = clip(a), clip(b), clip(c)
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(tri, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatalf("triangle: %v", err)
	}
}

func TestEditSim(t *testing.T) {
	if got := EditSim("", ""); got != 1 {
		t.Fatalf("EditSim empty = %v", got)
	}
	if got := EditSim("abc", "abc"); got != 1 {
		t.Fatalf("EditSim equal = %v", got)
	}
	if got := EditSim("abc", "xyz"); got != 0 {
		t.Fatalf("EditSim disjoint = %v", got)
	}
	if got := EditSim("abcd", "abc"); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("EditSim = %v, want 0.75", got)
	}
}

func TestJaro(t *testing.T) {
	if got := Jaro("", ""); got != 1 {
		t.Fatalf("Jaro empty = %v", got)
	}
	if got := Jaro("a", ""); got != 0 {
		t.Fatalf("Jaro vs empty = %v", got)
	}
	if got := Jaro("abc", "abc"); got != 1 {
		t.Fatalf("Jaro equal = %v", got)
	}
	// Classic textbook value: JARO(MARTHA, MARHTA) = 0.944...
	if got := Jaro("MARTHA", "MARHTA"); math.Abs(got-0.944444) > 1e-4 {
		t.Fatalf("Jaro(MARTHA,MARHTA) = %v", got)
	}
	if got := Jaro("abc", "xyz"); got != 0 {
		t.Fatalf("Jaro disjoint = %v", got)
	}
}

func TestJaroWinkler(t *testing.T) {
	// Classic textbook value: JW(DIXON, DICKSONX) = 0.8133...
	if got := JaroWinkler("DIXON", "DICKSONX"); math.Abs(got-0.81333) > 1e-4 {
		t.Fatalf("JW(DIXON,DICKSONX) = %v", got)
	}
	// Prefix boost: JW >= Jaro always.
	if JaroWinkler("prefix", "preface") < Jaro("prefix", "preface") {
		t.Fatal("JW below Jaro")
	}
}

func TestSimilarityBounds(t *testing.T) {
	clip := func(s string) string {
		if len(s) > 10 {
			return s[:10]
		}
		return s
	}
	in01 := func(f func(a, b string) float64) func(a, b string) bool {
		return func(a, b string) bool {
			v := f(clip(a), clip(b))
			return v >= 0 && v <= 1+1e-9
		}
	}
	for name, f := range map[string]func(a, b string) float64{
		"EditSim":      EditSim,
		"Jaro":         Jaro,
		"JaroWinkler":  JaroWinkler,
		"TrigramSim":   TrigramSim,
		"SubstringSim": SubstringSim,
	} {
		if err := quick.Check(in01(f), &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s bounds: %v", name, err)
		}
	}
}

func TestSimilaritySelfIsOne(t *testing.T) {
	self := func(a string) bool {
		if len(a) > 10 {
			a = a[:10]
		}
		return EditSim(a, a) == 1 && Jaro(a, a) == 1 && TrigramSim(a, a) == 1
	}
	if err := quick.Check(self, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNGramSim(t *testing.T) {
	if got := NGramSim("night", "nacht", 2); got <= 0 || got >= 1 {
		t.Fatalf("NGramSim(night,nacht) = %v, want in (0,1)", got)
	}
	if got := NGramSim("abc", "abc", 2); got != 1 {
		t.Fatalf("NGramSim equal = %v", got)
	}
	// n < 1 falls back to n=2.
	if got := NGramSim("abc", "abd", 0); got <= 0 {
		t.Fatalf("NGramSim n=0 fallback = %v", got)
	}
	// One side empty: falls through ngrams==nil to EditSim.
	if got := NGramSim("", "abc", 2); got != 0 {
		t.Fatalf("NGramSim empty = %v", got)
	}
}

func TestLongestCommonSubstring(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 0},
		{"abcdef", "zabcy", 3},
		{"quantity", "qty", 2}, // shared "ty"
		{"shipping", "shippingaddr", 8},
	}
	for _, c := range cases {
		if got := LongestCommonSubstring(c.a, c.b); got != c.want {
			t.Errorf("LCS(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCommonPrefixLen(t *testing.T) {
	if got := CommonPrefixLen("shipto", "shipping"); got != 4 {
		t.Fatalf("CommonPrefixLen = %d", got)
	}
	if got := CommonPrefixLen("", "x"); got != 0 {
		t.Fatalf("CommonPrefixLen empty = %d", got)
	}
}

func TestIsSubsequence(t *testing.T) {
	if !IsSubsequence("qty", "quantity") {
		t.Fatal("qty should be subsequence of quantity")
	}
	if IsSubsequence("qtz", "quantity") {
		t.Fatal("qtz should not be subsequence")
	}
	if !IsSubsequence("", "anything") {
		t.Fatal("empty is a subsequence of anything")
	}
	if IsSubsequence("a", "") {
		t.Fatal("non-empty not subsequence of empty")
	}
}
