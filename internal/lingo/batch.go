package lingo

// KernelScorer batch-scores every label pair of two vocabularies — the
// linguistic engine behind internal/core's similarity kernel. Where
// NameMatcher.Match memoizes token-pair scores in a map (paying a hashed
// lookup per token pair per label pair), the scorer observes that a kernel
// fill compares *every* source label against *every* target label, so
// every (source token, target token) combination is needed: it resolves
// the feature vectors of both vocabularies once and precomputes the dense
// token-similarity matrix up front. Score is then pure array arithmetic.
//
// Construction mutates the owning NameMatcher's memo caches and must
// happen on one goroutine; a constructed scorer is read-only, so any
// number of goroutines may call Score concurrently (unlike the matcher
// itself).
type KernelScorer struct {
	m          *NameMatcher
	srcF, tgtF []*LabelFeatures
	// srcToks/tgtToks map label id → the label's token list as matrix-
	// local ids (rows index source tokens, columns target tokens).
	srcToks, tgtToks [][]int32
	ntTok            int
	// sims/exact form the dense token-score matrix
	// [srcLocal*ntTok + tgtLocal], values identical to tokenSim's.
	sims  []float64
	exact []bool
}

// NewKernelScorer builds a scorer over the two label vocabularies. Cost is
// O(Σ|label|) feature building plus O(|srcTokens|·|tgtTokens|) token-pair
// scoring — the same unique-pair work the token memo would do across the
// fill, minus every map probe.
func (m *NameMatcher) NewKernelScorer(srcLabels, tgtLabels []string) *KernelScorer {
	ks := &KernelScorer{m: m}
	ks.srcF = make([]*LabelFeatures, len(srcLabels))
	for i, l := range srcLabels {
		ks.srcF[i] = m.Features(l)
	}
	ks.tgtF = make([]*LabelFeatures, len(tgtLabels))
	for i, l := range tgtLabels {
		ks.tgtF[i] = m.Features(l)
	}

	// Collect the distinct global token ids of each side and assign dense
	// matrix-local ids in first-appearance order.
	nGlobal := len(m.tokNames)
	srcLoc := make([]int32, nGlobal)
	tgtLoc := make([]int32, nGlobal)
	for i := range srcLoc {
		srcLoc[i], tgtLoc[i] = -1, -1
	}
	var srcGlob, tgtGlob []int32 // local id → global id
	localize := func(feats []*LabelFeatures, loc []int32, glob *[]int32) [][]int32 {
		out := make([][]int32, len(feats))
		total := 0
		for _, f := range feats {
			total += len(f.ids)
		}
		backing := make([]int32, 0, total)
		for i, f := range feats {
			start := len(backing)
			for _, gid := range f.ids {
				if loc[gid] < 0 {
					loc[gid] = int32(len(*glob))
					*glob = append(*glob, gid)
				}
				backing = append(backing, loc[gid])
			}
			out[i] = backing[start:]
		}
		return out
	}
	ks.srcToks = localize(ks.srcF, srcLoc, &srcGlob)
	ks.tgtToks = localize(ks.tgtF, tgtLoc, &tgtGlob)
	ks.ntTok = len(tgtGlob)

	ks.sims = make([]float64, len(srcGlob)*len(tgtGlob))
	ks.exact = make([]bool, len(ks.sims))
	for i, ga := range srcGlob {
		row := i * ks.ntTok
		for j, gb := range tgtGlob {
			ts := m.tokenSimUncached(ga, gb)
			ks.sims[row+j] = ts.score
			ks.exact[row+j] = ts.exact
		}
	}
	return ks
}

// Score returns the label-axis similarity and kind for the source label
// with vocabulary id si against the target label with id tj. The decision
// chain mirrors NameMatcher.MatchFeatures step for step (equality,
// thesaurus, acronym/abbreviation, token aggregation, whole-string
// similarity) and produces bit-identical results; only the token-pair
// source differs — matrix reads instead of memoized calls, which the
// kernel equivalence tests pin as indistinguishable.
func (ks *KernelScorer) Score(si, tj int32) (float64, Kind) {
	m := ks.m
	fa, fb := ks.srcF[si], ks.tgtF[tj]
	if fa.Norm == "" || fb.Norm == "" {
		return 0, None
	}
	if fa.sing == fb.sing {
		return 1, Exact
	}
	if fa.known || fb.known {
		switch m.Thesaurus.RelateNormalized(fa.Norm, fb.Norm) {
		case RelSynonym:
			return 1, Exact
		case RelAcronym, RelHypernym, RelHyponym, RelRelated:
			return m.RelaxedScore, Relaxed
		}
	}
	if m.abbrevMatch(fa.Norm, fb.Norm, fa.toks, fb.toks) {
		return m.RelaxedScore, Relaxed
	}
	score, allExact, fullCover := ks.aggregate(si, tj)
	if score >= m.MatchThreshold {
		if allExact && fullCover && score >= 0.999 {
			return score, Exact
		}
		return score, Relaxed
	}
	if ws, ok := simAtLeast(fa.runes, fb.runes, fa.grams, fb.grams,
		fa.Norm, fb.Norm, m.StringSimFloor); ok {
		return ws, Relaxed
	}
	return 0, None
}

// aggregate is tokenAggregate over matrix-local token ids.
func (ks *KernelScorer) aggregate(si, tj int32) (score float64, allExact, fullCover bool) {
	sa, sb := ks.srcToks[si], ks.tgtToks[tj]
	if len(sa) == 0 || len(sb) == 0 {
		return 0, false, false
	}
	allExact, fullCover = true, true
	dirA := ks.directionSrc(sa, sb, &allExact, &fullCover)
	dirB := ks.directionTgt(sb, sa, &allExact, &fullCover)
	return (dirA + dirB) / 2, allExact, fullCover
}

// directionSrc walks source tokens against target candidates; the matrix
// row of one source token is contiguous. Best-candidate selection keeps
// direction's tie rule: at equal score an exact pairing wins.
func (ks *KernelScorer) directionSrc(from, to []int32, allExact, fullCover *bool) float64 {
	total := 0.0
	for _, f := range from {
		row := int(f) * ks.ntTok
		best, bestExact := 0.0, false
		for _, t := range to {
			s := ks.sims[row+int(t)]
			if s > best || (s == best && !bestExact && ks.exact[row+int(t)]) {
				best, bestExact = s, ks.exact[row+int(t)]
			}
		}
		if best == 0 {
			*fullCover = false
		}
		if !bestExact {
			*allExact = false
		}
		total += best
	}
	return total / float64(len(from))
}

// directionTgt is the reverse direction: token similarity is symmetric, so
// it reads the same matrix transposed.
func (ks *KernelScorer) directionTgt(from, to []int32, allExact, fullCover *bool) float64 {
	total := 0.0
	for _, f := range from {
		best, bestExact := 0.0, false
		for _, t := range to {
			idx := int(t)*ks.ntTok + int(f)
			s := ks.sims[idx]
			if s > best || (s == best && !bestExact && ks.exact[idx]) {
				best, bestExact = s, ks.exact[idx]
			}
		}
		if best == 0 {
			*fullCover = false
		}
		if !bestExact {
			*allExact = false
		}
		total += best
	}
	return total / float64(len(from))
}
