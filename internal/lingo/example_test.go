package lingo_test

import (
	"fmt"

	"qmatch/internal/lingo"
)

// ExampleNameMatcher_Match classifies the label pairs of the paper's
// worked example.
func ExampleNameMatcher_Match() {
	m := lingo.NewNameMatcher(lingo.Default())
	for _, pair := range [][2]string{
		{"OrderNo", "OrderNo"},
		{"Quantity", "Qty"},
		{"UnitOfMeasure", "UOM"},
		{"Library", "human"},
	} {
		score, kind := m.Match(pair[0], pair[1])
		fmt.Printf("%s vs %s: %.2f (%s)\n", pair[0], pair[1], score, kind)
	}
	// Output:
	// OrderNo vs OrderNo: 1.00 (exact)
	// Quantity vs Qty: 0.85 (relaxed)
	// UnitOfMeasure vs UOM: 0.85 (relaxed)
	// Library vs human: 0.00 (none)
}

// ExampleTokenize shows camelCase and shorthand handling.
func ExampleTokenize() {
	fmt.Println(lingo.Tokenize("PurchaseOrderNumber"))
	fmt.Println(lingo.Tokenize("Item#"))
	// Output:
	// [purchase order number]
	// [item number]
}

// ExampleSoundex encodes phonetically similar names identically.
func ExampleSoundex() {
	fmt.Println(lingo.Soundex("Robert"), lingo.Soundex("Rupert"))
	// Output:
	// R163 R163
}
