package lingo

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadThesaurus(t *testing.T) {
	src := `# domain thesaurus
synonym	writer	author

related	lines	items
acronym	uom	unit of measure
hypernym	date	purchase date
`
	th, err := LoadThesaurus(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b string
		want Relation
	}{
		{"writer", "author", RelSynonym},
		{"lines", "items", RelRelated},
		{"uom", "unit of measure", RelAcronym},
		{"date", "purchase date", RelHypernym},
		{"purchase date", "date", RelHyponym},
	}
	for _, c := range cases {
		if got := th.Relate(c.a, c.b); got != c.want {
			t.Errorf("Relate(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLoadThesaurusErrors(t *testing.T) {
	cases := map[string]string{
		"bad arity":        "synonym\tonlyone\n",
		"unknown relation": "sibling\ta\tb\n",
		"empty term":       "synonym\t\tb\n",
	}
	for name, src := range cases {
		if _, err := LoadThesaurus(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteThesaurusEntryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteThesaurusEntry(&buf, "synonym", "gizmo", "widget"); err != nil {
		t.Fatal(err)
	}
	if err := WriteThesaurusEntry(&buf, "acronym", "id", "identifier"); err != nil {
		t.Fatal(err)
	}
	th, err := LoadThesaurus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if th.Relate("gizmo", "widget") != RelSynonym {
		t.Fatal("synonym lost")
	}
	if th.Relate("id", "identifier") != RelAcronym {
		t.Fatal("acronym lost")
	}
}
