package lingo

import (
	"sync"
	"sync/atomic"
)

// LabelScore is one memoized outcome of NameMatcher.Match: the label-axis
// similarity and its taxonomy kind.
type LabelScore struct {
	Score float64
	Kind  Kind
}

// CacheStats is a point-in-time snapshot of a ScoreCache's counters.
// Hits+Misses counts Get calls; Entries is the current resident pair count;
// Evictions counts entries dropped to honor the size bound.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Entries   int64
	Evictions int64
}

// DefaultScoreCacheSize is the entry bound a zero size selects — roomy
// enough for the full cross-vocabulary of the corpus' largest workload
// (231×3753 nodes intern to far fewer unique labels) many times over,
// while capping worst-case memory near tens of megabytes.
const DefaultScoreCacheSize = 1 << 18

// scoreShards is the shard count; a power of two so the hash folds with a
// mask. 32 shards keep lock contention negligible at the worker counts the
// Engine runs (GOMAXPROCS).
const scoreShards = 32

// evictBatch is how many random entries a full shard drops per insertion,
// amortizing eviction cost instead of clearing whole shards.
const evictBatch = 16

// ScoreCache is a concurrency-safe, sharded, size-bounded memo of
// label-pair scores. An Engine owns one and shares it across every worker
// of every Match/MatchAll call, so a label pair appearing anywhere in an
// N×M batch grid — or across successive Match calls on a long-lived
// Engine — is scored by the linguistic matcher exactly once.
//
// Keys are stored symmetrically (NameMatcher.Match(a,b) == Match(b,a), a
// property the test suite pins), so Get(a, b) and Get(b, a) hit the same
// entry. When a shard reaches its bound, a small batch of random entries
// is dropped (map iteration order) — random replacement, which is within a
// few percent of LRU on the near-uniform reuse pattern of schema
// vocabularies and needs no per-entry bookkeeping.
//
// A cache must only be shared among matchers with identical thesaurus and
// tuning: the key is the label pair alone. The Engine freezes both at
// construction, which is what makes the share sound.
type ScoreCache struct {
	maxPerShard int
	hits        atomic.Int64
	misses      atomic.Int64
	evictions   atomic.Int64
	shards      [scoreShards]scoreShard
}

type scoreShard struct {
	mu sync.RWMutex
	m  map[scoreKey]LabelScore
}

type scoreKey struct{ a, b string }

// NewScoreCache returns a cache bounded to roughly maxEntries label pairs
// (rounded up to a multiple of the shard count). Sizes <= 0 select
// DefaultScoreCacheSize.
func NewScoreCache(maxEntries int) *ScoreCache {
	if maxEntries <= 0 {
		maxEntries = DefaultScoreCacheSize
	}
	c := &ScoreCache{maxPerShard: (maxEntries + scoreShards - 1) / scoreShards}
	for i := range c.shards {
		c.shards[i].m = make(map[scoreKey]LabelScore)
	}
	return c
}

// key returns the symmetric lookup key and its shard.
func (c *ScoreCache) key(a, b string) (scoreKey, *scoreShard) {
	if a > b {
		a, b = b, a
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(a); i++ {
		h = (h ^ uint64(a[i])) * 1099511628211
	}
	h = (h ^ 0) * 1099511628211 // separator between the two labels
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * 1099511628211
	}
	return scoreKey{a, b}, &c.shards[h&(scoreShards-1)]
}

// Get returns the memoized score of a label pair (in either order) and
// whether it was present, updating the hit/miss counters.
func (c *ScoreCache) Get(a, b string) (LabelScore, bool) {
	k, sh := c.key(a, b)
	sh.mu.RLock()
	s, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return s, ok
}

// Put stores the score of a label pair, evicting random entries when the
// pair's shard is at its bound. Storing the same pair twice is harmless
// (scores are deterministic for a fixed matcher configuration).
func (c *ScoreCache) Put(a, b string, s LabelScore) {
	k, sh := c.key(a, b)
	sh.mu.Lock()
	if _, exists := sh.m[k]; !exists && len(sh.m) >= c.maxPerShard {
		dropped := int64(0)
		for victim := range sh.m {
			delete(sh.m, victim)
			if dropped++; dropped >= evictBatch || len(sh.m) < c.maxPerShard {
				break
			}
		}
		c.evictions.Add(dropped)
	}
	sh.m[k] = s
	sh.mu.Unlock()
}

// Stats returns a snapshot of the cache counters. The entry count is read
// shard by shard and may be momentarily stale under concurrent writers.
func (c *ScoreCache) Stats() CacheStats {
	var entries int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		entries += int64(len(sh.m))
		sh.mu.RUnlock()
	}
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Entries:   entries,
		Evictions: c.evictions.Load(),
	}
}
