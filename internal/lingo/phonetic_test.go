package lingo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSoundexClassicValues(t *testing.T) {
	// Reference values from the Soundex specification.
	cases := map[string]string{
		"Robert":     "R163",
		"Rupert":     "R163",
		"Ashcraft":   "A261", // H does not separate equal codes
		"Ashcroft":   "A261",
		"Tymczak":    "T522",
		"Pfister":    "P236",
		"Honeyman":   "H555",
		"Washington": "W252",
		"a":          "A000",
		"":           "",
		"123":        "",
	}
	for in, want := range cases {
		if got := Soundex(in); got != want {
			t.Errorf("Soundex(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSoundexEqual(t *testing.T) {
	if !SoundexEqual("Robert", "rupert") {
		t.Fatal("Robert/Rupert should match")
	}
	if SoundexEqual("Robert", "Quantity") {
		t.Fatal("unrelated words matched")
	}
	if SoundexEqual("", "") {
		t.Fatal("empty inputs should not match")
	}
}

func TestSoundexProperties(t *testing.T) {
	prop := func(s string) bool {
		if len(s) > 15 {
			s = s[:15]
		}
		code := Soundex(s)
		if code == "" {
			return true
		}
		if len(code) != 4 {
			return false
		}
		if code[0] < 'A' || code[0] > 'Z' {
			return false
		}
		for i := 1; i < 4; i++ {
			if code[i] < '0' || code[i] > '6' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestJaccardTokens(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"OrderNo", "OrderNo", 1},
		{"PurchaseOrderNumber", "OrderNumber", 2.0 / 3},
		{"abc", "xyz", 0},
		{"", "", 1},
		{"", "x", 0},
	}
	for _, c := range cases {
		if got := JaccardTokens(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("JaccardTokens(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMongeElkan(t *testing.T) {
	// Every token of "OrderNumber" has a strong counterpart in
	// "PurchaseOrderNumber"; the reverse direction is diluted.
	fwd := MongeElkan("OrderNumber", "PurchaseOrderNumber")
	rev := MongeElkan("PurchaseOrderNumber", "OrderNumber")
	if fwd <= rev {
		t.Fatalf("asymmetry expected: fwd %v, rev %v", fwd, rev)
	}
	if fwd < 0.99 {
		t.Fatalf("fwd = %v, want ~1", fwd)
	}
	sym := MongeElkanSymmetric("OrderNumber", "PurchaseOrderNumber")
	if math.Abs(sym-(fwd+rev)/2) > 1e-9 {
		t.Fatalf("symmetric = %v", sym)
	}
	if got := MongeElkan("", "x"); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestMongeElkanBounds(t *testing.T) {
	prop := func(a, b string) bool {
		if len(a) > 12 {
			a = a[:12]
		}
		if len(b) > 12 {
			b = b[:12]
		}
		v := MongeElkanSymmetric(a, b)
		return v >= 0 && v <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
