package lingo

import (
	"slices"
	"sync"
	"unicode/utf8"
)

// String-similarity metrics. All similarity functions return values in
// [0, 1] with 1 meaning identical; distance functions return edit counts.
// Inputs are compared as-is: callers that want case-insensitive behaviour
// should normalize first (see Normalize / Tokenize).

// Levenshtein returns the minimum number of single-character insertions,
// deletions and substitutions required to turn a into b.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// EditSim is the Levenshtein distance normalized to a similarity:
// 1 − dist/max(len). Two empty strings are fully similar.
func EditSim(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// jaroStackLimit is the string length up to which Jaro runs without heap
// allocation — schema labels are almost always shorter.
const jaroStackLimit = 64

// longBufs holds the spill working buffers the metrics need for inputs
// longer than jaroStackLimit runes. Pooling them keeps even pathological
// label lengths off the allocator's hot path.
type longBufs struct {
	ra, rb []rune
	ma, mb []bool
	ha, hb []uint64
}

var longBufPool = sync.Pool{New: func() any { return new(longBufs) }}

// boolsInto returns a zeroed bool slice of length n backed by buf when its
// capacity allows.
func boolsInto(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// Jaro returns the Jaro similarity of a and b. The stack and pooled
// buffer paths are kept strictly apart so escape analysis can prove the
// stack arrays never reach the heap — the common short-label case runs
// allocation-free.
func Jaro(a, b string) float64 {
	// len in bytes bounds len in runes, so short byte strings are safe on
	// the stack buffers.
	if len(a) <= jaroStackLimit && len(b) <= jaroStackLimit {
		var rbufA, rbufB [jaroStackLimit]rune
		var bufA, bufB [jaroStackLimit]bool
		ra := runesInto(rbufA[:0], a)
		rb := runesInto(rbufB[:0], b)
		return jaroRunes(ra, rb, bufA[:len(ra)], bufB[:len(rb)])
	}
	lb := longBufPool.Get().(*longBufs)
	ra := runesInto(lb.ra[:0], a)
	rb := runesInto(lb.rb[:0], b)
	ma := boolsInto(lb.ma, len(ra))
	mb := boolsInto(lb.mb, len(rb))
	lb.ra, lb.rb, lb.ma, lb.mb = ra, rb, ma, mb
	j := jaroRunes(ra, rb, ma, mb)
	longBufPool.Put(lb)
	return j
}

// jaroRunes computes the Jaro similarity over decoded runes; matchedA and
// matchedB are zeroed scratch of the matching lengths.
func jaroRunes(ra, rb []rune, matchedA, matchedB []bool) float64 {
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := max2(len(ra), len(rb))/2 - 1
	if window < 0 {
		window = 0
	}
	matches := 0
	for i := range ra {
		lo := max2(0, i-window)
		hi := min2(len(rb)-1, i+window)
		for j := lo; j <= hi; j++ {
			if !matchedB[j] && ra[i] == rb[j] {
				matchedA[i], matchedB[j] = true, true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	transpositions := 0
	j := 0
	for i := range ra {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-t)/m) / 3
}

// JaroWinkler returns the Jaro similarity boosted for a shared prefix of up
// to four characters with the standard scaling factor 0.1. The prefix scan
// decodes runes in place, keeping the function allocation-free.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	for prefix < 4 && len(a) > 0 && len(b) > 0 {
		ca, sa := utf8.DecodeRuneInString(a)
		cb, sb := utf8.DecodeRuneInString(b)
		if ca != cb {
			break
		}
		prefix++
		a, b = a[sa:], b[sb:]
	}
	return j + float64(prefix)*0.1*(1-j)
}

// jaroWinklerRunes is JaroWinkler over runes decoded once per label: same
// match/transposition arithmetic, same ≤4-rune prefix boost, so the result
// is bit-identical to JaroWinkler(a, b) on the source strings. (The stack
// cutoff tests rune counts where JaroWinkler tests byte counts; both paths
// feed jaroRunes the same slices, so the float is unaffected.)
func jaroWinklerRunes(ra, rb []rune) float64 {
	var j float64
	if len(ra) <= jaroStackLimit && len(rb) <= jaroStackLimit {
		var bufA, bufB [jaroStackLimit]bool
		j = jaroRunes(ra, rb, bufA[:len(ra)], bufB[:len(rb)])
	} else {
		lb := longBufPool.Get().(*longBufs)
		ma := boolsInto(lb.ma, len(ra))
		mb := boolsInto(lb.mb, len(rb))
		lb.ma, lb.mb = ma, mb
		j = jaroRunes(ra, rb, ma, mb)
		longBufPool.Put(lb)
	}
	prefix := 0
	n := min2(min2(len(ra), len(rb)), 4)
	for prefix < n && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// NGramSim returns the Dice coefficient over the character n-grams of a and
// b (with n-1 boundary padding), a robust similarity for short labels. For
// strings shorter than n, it falls back to EditSim. N-grams are compared
// as 64-bit FNV window hashes over sorted stack-backed slices, so typical
// schema labels are scored without heap allocation — this sits on the
// hottest path of large matches.
func NGramSim(a, b string, n int) float64 {
	if n < 1 {
		n = 2
	}
	if a == b {
		return 1
	}
	// As in Jaro, the stack and pooled paths stay strictly apart so the
	// stack arrays provably never escape.
	if len(a) <= jaroStackLimit && len(b) <= jaroStackLimit {
		var bufA, bufB [jaroStackLimit]uint64
		var rbufA, rbufB [jaroStackLimit]rune
		ga := ngramHashes(bufA[:0], rbufA[:0], a, n)
		gb := ngramHashes(bufB[:0], rbufB[:0], b, n)
		return ngramDice(ga, gb, a, b)
	}
	lb := longBufPool.Get().(*longBufs)
	ga := ngramHashes(lb.ha[:0], lb.ra[:0], a, n)
	gb := ngramHashes(lb.hb[:0], lb.rb[:0], b, n)
	lb.ha, lb.hb = ga, gb
	d := ngramDice(ga, gb, a, b)
	longBufPool.Put(lb)
	return d
}

// ngramDice merge-counts common n-grams with multiplicity (multiset Dice)
// over the two hash multisets; empty multisets fall back to EditSim.
func ngramDice(ga, gb []uint64, a, b string) float64 {
	sortHashes(ga)
	sortHashes(gb)
	return diceSortedHashes(ga, gb, a, b)
}

// diceSortedHashes is ngramDice over multisets that are already sorted —
// the per-pair cost when gram hashing and sorting were done once per label
// (see LabelFeatures) is just this linear merge.
func diceSortedHashes(ga, gb []uint64, a, b string) float64 {
	if len(ga) == 0 || len(gb) == 0 {
		return EditSim(a, b)
	}
	common := 0
	i, j := 0, 0
	for i < len(ga) && j < len(gb) {
		switch {
		case ga[i] == gb[j]:
			common++
			i++
			j++
		case ga[i] < gb[j]:
			i++
		default:
			j++
		}
	}
	return 2 * float64(common) / float64(len(ga)+len(gb))
}

// diceSortedBounded is diceSortedHashes with an early exit: when even
// matching every remaining hash could not lift the Dice value to need, it
// bails and reports exact=false (the true value is then provably < need).
// A completed merge reports the exact value. The bound common+min(rem)
// only decreases as the merge advances, so one check per step suffices.
func diceSortedBounded(ga, gb []uint64, need float64) (dice float64, exact bool) {
	if len(ga) == 0 || len(gb) == 0 {
		return 0, false
	}
	// need ≤ common+minRem threshold in count space: bail once
	// common + min(remaining) < need·(|ga|+|gb|)/2.
	thr := need * float64(len(ga)+len(gb)) / 2
	common := 0
	i, j := 0, 0
	for i < len(ga) && j < len(gb) {
		rem := len(ga) - i
		if r := len(gb) - j; r < rem {
			rem = r
		}
		if float64(common+rem) < thr {
			return 0, false
		}
		switch {
		case ga[i] == gb[j]:
			common++
			i++
			j++
		case ga[i] < gb[j]:
			i++
		default:
			j++
		}
	}
	return 2 * float64(common) / float64(len(ga)+len(gb)), true
}

// TrigramSim is NGramSim with n=3, the variant used by the linguistic
// matcher for token comparison.
func TrigramSim(a, b string) float64 { return NGramSim(a, b, 3) }

// ngramHashes appends the FNV-1a hash of every padded n-rune window of s
// to buf, decoding s into rbuf.
func ngramHashes(buf []uint64, rbuf []rune, s string, n int) []uint64 {
	return ngramHashesRunes(buf, runesInto(rbuf, s), n)
}

// ngramHashesRunes is ngramHashes over runes the caller already decoded.
func ngramHashesRunes(buf []uint64, r []rune, n int) []uint64 {
	if len(r) == 0 {
		return buf[:0]
	}
	total := len(r) + n - 1 // windows including boundary padding
	for w := 0; w < total; w++ {
		h := uint64(14695981039346656037)
		for k := 0; k < n; k++ {
			idx := w + k - (n - 1)
			var c rune
			switch {
			case idx < 0:
				c = '\x00' // leading pad
			case idx >= len(r):
				c = '\x01' // trailing pad
			default:
				c = r[idx]
			}
			h = (h ^ uint64(c)) * 1099511628211
		}
		buf = append(buf, h)
	}
	return buf
}

// sortHashes insertion-sorts short hash slices (the common case) and falls
// back to the stdlib for long ones. The fallback is the generic
// slices.Sort, not sort.Slice — interface boxing in the latter makes the
// caller's stack-backed hash buffers escape to the heap on every call.
func sortHashes(h []uint64) {
	if len(h) > 96 {
		slices.Sort(h)
		return
	}
	for i := 1; i < len(h); i++ {
		v := h[i]
		j := i - 1
		for j >= 0 && h[j] > v {
			h[j+1] = h[j]
			j--
		}
		h[j+1] = v
	}
}

// LongestCommonSubstring returns the length of the longest contiguous
// substring shared by a and b.
func LongestCommonSubstring(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	best := 0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// SubstringSim normalizes LongestCommonSubstring by the length of the longer
// string.
func SubstringSim(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	m := max2(la, lb)
	return float64(LongestCommonSubstring(a, b)) / float64(m)
}

// CommonPrefixLen returns the length of the shared prefix of a and b.
func CommonPrefixLen(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	i := 0
	for i < len(ra) && i < len(rb) && ra[i] == rb[i] {
		i++
	}
	return i
}

// IsSubsequence reports whether a is a subsequence of b (characters of a
// appear in b in order, not necessarily contiguously).
func IsSubsequence(a, b string) bool {
	ra, rb := []rune(a), []rune(b)
	i := 0
	for _, r := range rb {
		if i < len(ra) && ra[i] == r {
			i++
		}
	}
	return i == len(ra)
}

// runesInto decodes s into buf (reusing its backing array when capacity
// allows), avoiding a heap allocation for short strings.
func runesInto(buf []rune, s string) []rune {
	for _, r := range s {
		buf = append(buf, r)
	}
	return buf
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min3(a, b, c int) int { return min2(min2(a, b), c) }
