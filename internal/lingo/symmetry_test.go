package lingo

import "testing"

// symmetryLabels exercises every Match code path: exact labels, separator
// and case variants, thesaurus relations (synonym, acronym, hypernym),
// abbreviations, multi-token labels with partial overlap, pure string
// similarity, unicode, the empty label and labels past the stack-buffer
// limit of the string metrics.
var symmetryLabels = []string{
	"",
	"OrderNo",
	"order_no",
	"PurchaseOrder",
	"PO",
	"Writer",
	"Author",
	"Item#",
	"itemCount",
	"ShipTo-Address",
	"billToStreetName",
	"qty",
	"Quantity",
	"DeliverTo",
	"protein_sequence_data",
	"söme-ünïcode-label",
	"x",
	"ThisIsAnExtremelyLongSchemaElementLabelThatExceedsTheStackBufferLimitOfTheStringMetricsByAGoodMargin",
}

// The hybrid kernel and the Engine's score cache both store one entry per
// unordered label pair, which is only sound if Match is symmetric. Pin it.
func TestNameMatchSymmetric(t *testing.T) {
	m := matcher()
	for _, a := range symmetryLabels {
		for _, b := range symmetryLabels {
			sa, ka := m.Match(a, b)
			sb, kb := m.Match(b, a)
			if sa != sb || ka != kb {
				t.Errorf("Match(%q, %q) = (%v, %v) but Match(%q, %q) = (%v, %v)",
					a, b, sa, ka, b, a, sb, kb)
			}
		}
	}
}
