// Package lingo is a from-scratch linguistic toolkit for schema label
// matching. It provides the pieces a CUPID-style linguistic matcher needs —
// a label tokenizer, a suite of string-similarity metrics, acronym and
// abbreviation detectors, and a thesaurus with synonym / hypernym / acronym
// relations — built on the standard library only. It substitutes for the
// WordNet-style resources the QMatch paper relies on (see DESIGN.md §2).
package lingo

import (
	"strings"
	"sync"
	"unicode"
)

// tokScratch holds the rune working buffers of one Tokenize call. The
// buffers are pooled: tokenization sits under every label comparison, and
// the two []rune conversions it would otherwise allocate per call dominate
// the cold-path allocation profile of a large match.
type tokScratch struct {
	runes, cur []rune
}

var tokScratchPool = sync.Pool{New: func() any { return new(tokScratch) }}

// Tokenize splits a schema label into lowercase word tokens. It recognizes
// camelCase and PascalCase boundaries, ALLCAPS acronym runs (the final
// capital before a lowercase letter starts the next token: "PONumber" →
// ["po", "number"]), digit runs, and the usual separators (space, '_', '-',
// '.', '/', ':', '#'). A trailing '#' is tokenized as the word "number"
// ("Item#" → ["item", "number"]), matching common schema shorthand.
func Tokenize(label string) []string {
	sc := tokScratchPool.Get().(*tokScratch)
	var tokens []string
	cur := sc.cur[:0]
	flush := func() {
		if len(cur) > 0 {
			// Lowercase in place; string(cur) is the only allocation
			// per token (strings.ToLower would add a second).
			for i, r := range cur {
				cur[i] = unicode.ToLower(r)
			}
			tokens = append(tokens, string(cur))
			cur = cur[:0]
		}
	}
	runes := runesInto(sc.runes[:0], label)
	for i, r := range runes {
		switch {
		case r == '#':
			flush()
			tokens = append(tokens, "number")
		case unicode.IsSpace(r) || r == '_' || r == '-' || r == '.' || r == '/' || r == ':' || r == ',' || r == '(' || r == ')':
			flush()
		case unicode.IsDigit(r):
			if len(cur) > 0 && !unicode.IsDigit(cur[len(cur)-1]) {
				flush()
			}
			cur = append(cur, r)
		case unicode.IsUpper(r):
			prevLower := i > 0 && (unicode.IsLower(runes[i-1]) || unicode.IsDigit(runes[i-1]))
			nextLower := i+1 < len(runes) && unicode.IsLower(runes[i+1])
			if prevLower || (nextLower && len(cur) > 0) {
				flush()
			}
			cur = append(cur, r)
		default:
			if len(cur) > 0 && unicode.IsDigit(cur[len(cur)-1]) {
				flush()
			}
			cur = append(cur, r)
		}
	}
	flush()
	sc.runes, sc.cur = runes, cur
	tokScratchPool.Put(sc)
	return tokens
}

// Normalize lowercases a label and strips separators, yielding a canonical
// form for whole-label equality tests: "Unit_Of-Measure" → "unitofmeasure".
func Normalize(label string) string {
	return strings.Join(Tokenize(label), "")
}

// TokenSet returns the distinct tokens of a label.
func TokenSet(label string) map[string]bool {
	set := map[string]bool{}
	for _, t := range Tokenize(label) {
		set[t] = true
	}
	return set
}

// Singularize strips a regular English plural suffix from a token:
// "categories" → "category", "boxes" → "box", "items" → "item". Tokens
// ending in "ss"/"us"/"is" ("address", "status", "axis") are left alone.
func Singularize(tok string) string {
	n := len(tok)
	switch {
	case n > 3 && strings.HasSuffix(tok, "ies"):
		return tok[:n-3] + "y"
	case n > 4 && (strings.HasSuffix(tok, "ches") || strings.HasSuffix(tok, "shes")):
		return tok[:n-2]
	case n > 3 && (strings.HasSuffix(tok, "ses") || strings.HasSuffix(tok, "xes") || strings.HasSuffix(tok, "zes")):
		return tok[:n-2]
	case n > 3 && strings.HasSuffix(tok, "s") &&
		!strings.HasSuffix(tok, "ss") && !strings.HasSuffix(tok, "us") && !strings.HasSuffix(tok, "is"):
		return tok[:n-1]
	default:
		return tok
	}
}

// noiseTokens are generic container/suffix words that carry no
// discriminating meaning in schema labels ("SequenceInfo" ≈ "Sequence").
// CUPID-style matchers categorize and discount such tokens; we drop them
// when a label has other tokens left.
var noiseTokens = map[string]bool{
	"info": true, "information": true, "list": true, "data": true,
	"record": true, "details": true, "set": true, "group": true,
}

// StripNoise removes noise tokens from a token list unless that would
// empty it.
func StripNoise(tokens []string) []string {
	var kept []string
	for _, t := range tokens {
		if !noiseTokens[t] {
			kept = append(kept, t)
		}
	}
	if len(kept) == 0 {
		return tokens
	}
	return kept
}

// FirstLetters concatenates the first letter of each token — the candidate
// acronym of a multi-word label: "Unit Of Measure" → "uom".
func FirstLetters(tokens []string) string {
	var b strings.Builder
	for _, t := range tokens {
		if t != "" {
			b.WriteByte(t[0])
		}
	}
	return b.String()
}
