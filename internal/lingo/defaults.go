package lingo

import "sync"

// Default returns the built-in thesaurus covering the vocabulary of the
// paper's evaluation domains: purchase orders / inventory, books and
// articles, Dublin Core metadata, protein structure (PIR / PDB), and the
// XBench catalog schemas. It is the stand-in for the WordNet-derived
// resources the original system consulted (DESIGN.md §2); the relations the
// paper cites explicitly (OrderNo exact, Quantity↔Qty relaxed,
// UnitOfMeasure↔UOM relaxed, Lines↔Items, PurchaseDate↔Date, ...) are all
// present. The returned thesaurus is shared: treat it as read-only, or
// Merge it into a fresh NewThesaurus to extend it.
func Default() *Thesaurus {
	defaultOnce.Do(buildDefault)
	return defaultThesaurus
}

var (
	defaultOnce      sync.Once
	defaultThesaurus *Thesaurus
)

func buildDefault() {
	t := NewThesaurus()

	// --- Purchase order / inventory domain (Figures 1 and 2) ---
	// Exact relations (synonyms) and relaxed relations (acronyms,
	// hypernyms, related terms) follow the paper's worked example:
	// OrderNo↔OrderNo and Item↔Item# are exact; Quantity↔Qty,
	// UnitOfMeasure↔UOM, Lines↔Items, BillingAddr↔BillTo,
	// ShippingAddr↔ShipTo, PurchaseDate↔Date, PO↔PurchaseOrder and
	// PurchaseInfo↔PurchaseOrder are relaxed (paper §2.1–2.2).
	t.AddSynonymGroup("order no", "order number", "po number", "purchase order number")
	t.AddSynonymGroup("item", "item number", "article number", "product", "sku")
	t.AddSynonymGroup("price", "unit price", "cost")
	t.AddSynonymGroup("customer", "buyer", "client")
	t.AddSynonymGroup("supplier", "vendor", "seller")
	t.AddSynonymGroup("address", "addr")
	t.AddRelatedGroup("lines", "items", "order lines", "line items")
	t.AddRelated("bill to", "billing addr")
	t.AddRelated("bill to", "billing address")
	t.AddRelated("billing addr", "invoice address")
	t.AddRelated("ship to", "shipping addr")
	t.AddRelated("ship to", "shipping address")
	t.AddRelated("shipping addr", "delivery address")
	t.AddRelatedGroup("purchase info", "order info", "order details", "purchase order")
	t.AddRelated("unit of measure", "unit")
	t.AddRelated("quantity", "count")
	t.AddHypernym("order", "purchase order")
	t.AddHypernym("date", "purchase date", "order date", "ship date", "delivery date", "invoice date")
	t.AddHypernym("number", "order number", "item number", "po number")
	t.AddHypernym("info", "purchase info", "order info")
	t.AddAcronym("po", "purchase order")
	t.AddAcronym("uom", "unit of measure")
	t.AddAcronym("qty", "quantity")
	t.AddAcronym("no", "number")
	t.AddAcronym("num", "number")
	t.AddAcronym("addr", "address")
	t.AddAcronym("amt", "amount")
	t.AddAcronym("desc", "description")
	t.AddAcronym("id", "identifier")

	// --- Books / articles domain ---
	t.AddSynonymGroup("writer", "author", "creator")
	t.AddSynonymGroup("book title", "title", "name of book")
	t.AddSynonymGroup("publisher", "publishing house", "press")
	t.AddSynonymGroup("isbn", "book number")
	t.AddSynonymGroup("year", "publication year", "pub year")
	t.AddSynonymGroup("pages", "page count", "number of pages")
	t.AddSynonymGroup("abstract", "summary", "synopsis")
	t.AddSynonymGroup("journal", "periodical", "magazine")
	t.AddSynonymGroup("keyword", "subject term", "index term")
	t.AddHypernym("publication", "book", "article", "journal", "paper")
	t.AddRelated("article", "paper")
	t.AddRelated("section", "chapter")
	t.AddRelated("heading", "title")
	t.AddRelated("paragraph", "text")
	t.AddRelatedGroup("affiliation", "institution", "organization")
	t.AddRelated("publication date", "issue date")
	t.AddRelatedGroup("prolog", "front matter", "preamble")
	t.AddRelatedGroup("epilog", "back matter", "appendix")
	t.AddRelatedGroup("acknowledgements", "thanks", "credits")
	t.AddRelated("body", "content")
	t.AddHypernym("person", "author", "editor", "writer")
	t.AddHypernym("title", "book title", "article title")
	t.AddAcronym("vol", "volume")
	t.AddAcronym("ed", "edition")
	t.AddAcronym("pub", "publisher")

	// --- Dublin Core metadata (DCMD schemas) ---
	t.AddSynonymGroup("dc creator", "creator", "author")
	t.AddSynonymGroup("dc title", "title")
	t.AddSynonymGroup("dc date", "date")
	t.AddSynonymGroup("dc subject", "subject", "topic")
	t.AddSynonymGroup("dc description", "description")
	t.AddSynonymGroup("dc identifier", "identifier", "id")
	t.AddSynonymGroup("dc publisher", "publisher")
	t.AddSynonymGroup("dc language", "language", "lang")
	t.AddSynonymGroup("dc format", "format", "media type")
	t.AddSynonymGroup("dc rights", "rights", "license", "copyright")
	t.AddSynonymGroup("dc contributor", "contributor")
	t.AddSynonymGroup("dc coverage", "coverage", "extent")
	t.AddSynonymGroup("dc relation", "relation", "related resource")
	t.AddSynonymGroup("dc source", "source")
	t.AddRelated("source", "origin")
	t.AddSynonymGroup("dc type", "type", "resource type", "kind")
	t.AddHypernym("resource", "document", "record", "item")
	t.AddAcronym("lang", "language")

	// --- Protein structure domain (PIR / PDB) ---
	t.AddRelatedGroup("protein", "molecule", "compound", "polypeptide")
	t.AddRelated("accession", "id code")
	t.AddRelated("created", "deposition date")
	t.AddRelated("modified", "revision date")
	t.AddSynonymGroup("sequence", "seq", "residue sequence", "primary structure")
	t.AddSynonymGroup("residue", "amino acid", "monomer")
	t.AddSynonymGroup("chain", "subunit", "polymer chain")
	t.AddSynonymGroup("organism", "species", "source organism", "taxon")
	t.AddSynonymGroup("accession", "accession number", "entry id")
	t.AddSynonymGroup("reference", "citation", "literature reference")
	t.AddSynonymGroup("feature", "annotation")
	t.AddSynonymGroup("atom", "atom site", "atom record")
	t.AddSynonymGroup("structure", "tertiary structure", "conformation")
	t.AddSynonymGroup("helix", "alpha helix")
	t.AddSynonymGroup("sheet", "beta sheet", "strand")
	t.AddSynonymGroup("molecule", "entity")
	t.AddSynonymGroup("resolution", "res")
	t.AddSynonymGroup("experiment", "exptl", "method")
	t.AddSynonymGroup("keywords", "keyword list", "kwds")
	t.AddHypernym("identifier", "accession", "entry id", "pdb id")
	t.AddHypernym("name", "protein name", "molecule name", "compound name")
	t.AddAcronym("seq", "sequence")
	t.AddAcronym("res", "residue")
	t.AddAcronym("org", "organism")
	t.AddAcronym("ref", "reference")
	t.AddAcronym("db", "database")
	t.AddAcronym("xref", "cross reference")

	// --- XBench catalog (DCSD-style) vocabulary ---
	t.AddSynonymGroup("catalog", "catalogue", "item list")
	t.AddSynonymGroup("first name", "given name", "forename")
	t.AddSynonymGroup("last name", "family name", "surname")
	t.AddSynonymGroup("phone", "phone number", "telephone")
	t.AddSynonymGroup("zip", "zip code", "postal code")
	t.AddSynonymGroup("country", "nation")
	t.AddSynonymGroup("city", "town")
	t.AddSynonymGroup("street", "street address")
	t.AddSynonymGroup("email", "e mail", "mail address")
	t.AddSynonymGroup("date of birth", "birth date", "dob")
	t.AddHypernym("name", "first name", "last name", "middle name")
	t.AddHypernym("contact", "phone", "email", "fax")
	t.AddAcronym("dob", "date of birth")
	t.AddAcronym("tel", "telephone")

	defaultThesaurus = t
}
