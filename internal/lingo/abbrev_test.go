package lingo

import "testing"

func TestIsAcronymOf(t *testing.T) {
	cases := []struct {
		short, long string
		want        bool
	}{
		{"UOM", "Unit Of Measure", true},
		{"uom", "UnitOfMeasure", true},
		{"PO", "Purchase Order", true},
		{"POX", "Purchase Order", false},
		{"P", "Purchase", false}, // single token: no acronym
		{"PD", "PurchaseDate", true},
		{"DOB", "date of birth", true},
		{"UOM", "Measure Of Unit", false}, // order matters
	}
	for _, c := range cases {
		if got := IsAcronymOf(c.short, c.long); got != c.want {
			t.Errorf("IsAcronymOf(%q,%q) = %v, want %v", c.short, c.long, got, c.want)
		}
	}
}

func TestIsAbbreviationOf(t *testing.T) {
	cases := []struct {
		short, long string
		want        bool
	}{
		{"qty", "quantity", true},
		{"Qty", "Quantity", true},
		{"addr", "address", true},
		{"amt", "amount", true},
		{"no", "number", true},
		{"num", "number", true},
		{"desc", "description", true},
		{"bill", "billing", true},  // prefix
		{"ship", "shipping", true}, // prefix
		{"cat", "dog", false},
		{"quantity", "qty", false}, // wrong direction
		{"q", "quantity", false},   // too short
		{"xyz", "quantity", false}, // first letter differs
		{"qy", "quantity", true},   // subsequence, covers 1/4 < 1/3? len(qy)=2, 3*2=6 < 8 → prefix? no → false
	}
	// fix expectation for "qy": 3*2=6 < len("quantity")=8, not prefix → false
	cases[len(cases)-1].want = false
	for _, c := range cases {
		if got := IsAbbreviationOf(c.short, c.long); got != c.want {
			t.Errorf("IsAbbreviationOf(%q,%q) = %v, want %v", c.short, c.long, got, c.want)
		}
	}
}

func TestConsonantSkeleton(t *testing.T) {
	cases := []struct{ in, want string }{
		{"quantity", "qntty"},
		{"order", "ordr"},
		{"", ""},
		{"a", "a"},
		{"aeiou", "a"},
	}
	for _, c := range cases {
		if got := consonantSkeleton(c.in); got != c.want {
			t.Errorf("consonantSkeleton(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAbbrevMatch(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"UOM", "Unit Of Measure", true},
		{"Unit Of Measure", "UOM", true}, // symmetric
		{"Qty", "Quantity", true},
		{"Quantity", "Qty", true},
		{"OrderNo", "OrderNo", false}, // equal labels are not "abbreviations"
		{"", "Quantity", false},
		{"Lines", "Items", false},
		{"BillTo", "BillingAddr", false}, // related but not an abbreviation
	}
	for _, c := range cases {
		if got := AbbrevMatch(c.a, c.b); got != c.want {
			t.Errorf("AbbrevMatch(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
