package lingo

import "sync"

// MatcherPool hands out NameMatchers over one shared, read-only Thesaurus.
// A NameMatcher memoizes tokenizations and token-pair similarities and is
// therefore not safe for concurrent use; the pool gives each concurrent
// worker its own instance while letting the warm memo caches survive from
// job to job instead of being rebuilt per call.
//
// The pool itself is safe for concurrent use. The thesaurus passed to
// NewMatcherPool must not be mutated afterwards — every pooled matcher
// reads it without locking.
type MatcherPool struct {
	thesaurus *Thesaurus
	pool      sync.Pool
}

// NewMatcherPool returns a pool of default-tuned NameMatchers over the
// given thesaurus (nil selects an empty thesaurus, as in NewNameMatcher).
func NewMatcherPool(t *Thesaurus) *MatcherPool {
	if t == nil {
		t = NewThesaurus()
	}
	p := &MatcherPool{thesaurus: t}
	p.pool.New = func() any { return NewNameMatcher(p.thesaurus) }
	return p
}

// Thesaurus returns the shared thesaurus every pooled matcher consults.
func (p *MatcherPool) Thesaurus() *Thesaurus { return p.thesaurus }

// Get returns a NameMatcher for exclusive use by one goroutine. Return it
// with Put when done so its warm caches can be reused.
func (p *MatcherPool) Get() *NameMatcher {
	return p.pool.Get().(*NameMatcher)
}

// Put returns a matcher obtained from Get to the pool. The matcher must
// not be used after Put.
func (p *MatcherPool) Put(m *NameMatcher) {
	if m == nil {
		return
	}
	p.pool.Put(m)
}
