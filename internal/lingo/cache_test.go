package lingo

import (
	"fmt"
	"sync"
	"testing"
)

func TestScoreCacheGetPut(t *testing.T) {
	c := NewScoreCache(0)
	if _, ok := c.Get("order", "purchase"); ok {
		t.Fatal("empty cache reported a hit")
	}
	want := LabelScore{Score: 0.75, Kind: Relaxed}
	c.Put("order", "purchase", want)
	got, ok := c.Get("order", "purchase")
	if !ok || got != want {
		t.Fatalf("Get after Put = %+v, %v; want %+v, true", got, ok, want)
	}
}

// The cache key is symmetric: NameMatcher.Match(a,b) == Match(b,a) (pinned
// by TestNameMatchSymmetric), so Get(b, a) must hit an entry stored under
// (a, b).
func TestScoreCacheSymmetricKey(t *testing.T) {
	c := NewScoreCache(0)
	want := LabelScore{Score: 1, Kind: Exact}
	c.Put("writer", "author", want)
	got, ok := c.Get("author", "writer")
	if !ok || got != want {
		t.Fatalf("Get(reversed) = %+v, %v; want %+v, true", got, ok, want)
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("symmetric pair stored as %d entries, want 1", s.Entries)
	}
}

func TestScoreCacheBound(t *testing.T) {
	const bound = 256
	c := NewScoreCache(bound)
	for i := 0; i < 4096; i++ {
		c.Put(fmt.Sprintf("src%d", i), fmt.Sprintf("tgt%d", i), LabelScore{Score: float64(i)})
	}
	s := c.Stats()
	if s.Entries > bound {
		t.Fatalf("cache holds %d entries, bound is %d", s.Entries, bound)
	}
	if s.Evictions == 0 {
		t.Fatal("overfilled cache reported no evictions")
	}
}

func TestScoreCacheStats(t *testing.T) {
	c := NewScoreCache(0)
	c.Get("a", "b") // miss
	c.Put("a", "b", LabelScore{Score: 0.5})
	c.Get("a", "b") // hit
	c.Get("a", "b") // hit
	c.Get("x", "y") // miss
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 || s.Entries != 1 || s.Evictions != 0 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses / 1 entry / 0 evictions", s)
	}
}

// The cache is shared across every worker of an Engine; hammer it from
// several goroutines (run with -race) and check the counters add up.
func TestScoreCacheConcurrent(t *testing.T) {
	c := NewScoreCache(1024)
	const workers, rounds = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				a := fmt.Sprintf("label%d", (w*rounds+i)%300)
				b := fmt.Sprintf("name%d", i%50)
				if _, ok := c.Get(a, b); !ok {
					c.Put(a, b, LabelScore{Score: 0.25})
				}
			}
		}()
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != workers*rounds {
		t.Fatalf("hits(%d)+misses(%d) != %d lookups", s.Hits, s.Misses, workers*rounds)
	}
	if s.Entries == 0 || s.Entries > 1024 {
		t.Fatalf("entries = %d, want within (0, 1024]", s.Entries)
	}
}

func TestScoreCacheDefaultSize(t *testing.T) {
	for _, n := range []int{0, -5} {
		c := NewScoreCache(n)
		if got := c.maxPerShard * scoreShards; got != DefaultScoreCacheSize {
			t.Fatalf("NewScoreCache(%d) bound = %d, want %d", n, got, DefaultScoreCacheSize)
		}
	}
}
