package lingo

import "strings"

// Additional similarity measures: phonetic matching (Soundex) and
// token-set measures (Jaccard, Monge-Elkan). These round out the toolkit
// so alternative linguistic matchers can be plugged into the QMatch
// framework — the paper notes its linguistic component "can be easily
// replaced by other perhaps better performing linguistic ... algorithms".

// Soundex returns the classic four-character Soundex code of a word
// ("Robert" → "R163"). Non-ASCII-letter characters are ignored; an empty
// or letterless input yields "".
func Soundex(word string) string {
	word = strings.ToUpper(word)
	var first byte
	var digits []byte
	prev := byte(0)
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c < 'A' || c > 'Z' {
			continue
		}
		d := soundexDigit(c)
		if first == 0 {
			first = c
			prev = d
			continue
		}
		switch {
		case d == 0:
			// Vowels and H/W/Y: vowels reset the separator, H/W do not.
			if c != 'H' && c != 'W' {
				prev = 0
			}
		case d != prev:
			digits = append(digits, '0'+d)
			prev = d
		}
		if len(digits) == 3 {
			break
		}
	}
	if first == 0 {
		return ""
	}
	for len(digits) < 3 {
		digits = append(digits, '0')
	}
	return string(first) + string(digits)
}

func soundexDigit(c byte) byte {
	switch c {
	case 'B', 'F', 'P', 'V':
		return 1
	case 'C', 'G', 'J', 'K', 'Q', 'S', 'X', 'Z':
		return 2
	case 'D', 'T':
		return 3
	case 'L':
		return 4
	case 'M', 'N':
		return 5
	case 'R':
		return 6
	default:
		return 0
	}
}

// SoundexEqual reports whether two words share a Soundex code — a coarse
// phonetic match useful for misspelled labels.
func SoundexEqual(a, b string) bool {
	ca, cb := Soundex(a), Soundex(b)
	return ca != "" && ca == cb
}

// JaccardTokens returns the Jaccard similarity of the token sets of two
// labels: |A ∩ B| / |A ∪ B|. Two labels with no tokens are fully similar.
func JaccardTokens(a, b string) float64 {
	sa, sb := TokenSet(a), TokenSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// MongeElkan returns the Monge-Elkan similarity of two labels: the mean,
// over the first label's tokens, of each token's best Jaro-Winkler match
// in the second label. It is asymmetric by definition; use
// MongeElkanSymmetric for a symmetric variant.
func MongeElkan(a, b string) float64 {
	ta, tb := Tokenize(a), Tokenize(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if s := JaroWinkler(x, y); s > best {
				best = s
			}
		}
		total += best
	}
	return total / float64(len(ta))
}

// MongeElkanSymmetric is the mean of the two Monge-Elkan directions.
func MongeElkanSymmetric(a, b string) float64 {
	return (MongeElkan(a, b) + MongeElkan(b, a)) / 2
}
