// Package jsonschema parses JSON Schema documents (a draft-07 subset)
// into the schema tree model, so JSON-described data feeds the same
// matchers as XML Schemas — the heterogeneous-source argument of the
// XML-matcher surveys: a matcher earns its keep when structurally
// different schema languages meet in one tree model. The supported
// subset covers what element matching consumes:
//
//	properties           → ordered children (document order is preserved)
//	required             → minOccurs 1 (absent → 0)
//	type                 → leaf datatype, mapped onto the XSD type table
//	format               → datatype refinement (date-time → dateTime, ...)
//	items                → the property repeats (maxOccurs unbounded)
//	$ref                 → within-document expansion with cycle cut-off
//	oneOf / anyOf        → branches flattened as optional children
//	enum                 → "token" when no type is declared
//	const / default      → Fixed / Default value constraints
//
// External $ref targets, patternProperties, additionalProperties
// schemas, and conditional keywords (if/then/else, not) are outside the
// subset; unsupported keywords are ignored, external refs error. The
// parser reads the document through a token stream so that property
// order — the tree model's Order axis — follows the document, not a map.
package jsonschema

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"qmatch/internal/xmltree"
)

// maxDepth bounds JSON nesting so hostile documents cannot exhaust the
// stack; maxNodes bounds tree growth under $ref fan-out (a DAG of
// definitions each referencing the next twice grows exponentially).
const (
	maxDepth = 512
	maxNodes = 1 << 16
)

// value is one JSON value with object members in document order.
type value struct {
	kind byte // 'o' object, 'a' array, 's' string, 'n' number, 'b' bool, 'z' null
	str  string
	b    bool
	obj  []member
	arr  []*value
}

type member struct {
	key string
	val *value
}

// get returns the value of the named object member, or nil.
func (v *value) get(key string) *value {
	if v == nil || v.kind != 'o' {
		return nil
	}
	for _, m := range v.obj {
		if m.key == key {
			return m.val
		}
	}
	return nil
}

// Parse reads a JSON Schema document and returns its schema tree. The
// root label is the schema's "title" (falling back to "schema").
func Parse(r io.Reader) (*xmltree.Node, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	doc, err := parseValue(dec, 0)
	if err != nil {
		return nil, fmt.Errorf("jsonschema: %w", err)
	}
	// A single trailing token (whitespace aside) must end the document.
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("jsonschema: trailing content after document")
	}
	if doc.kind != 'o' && doc.kind != 'b' {
		return nil, fmt.Errorf("jsonschema: document is not an object")
	}
	label := "schema"
	if t := doc.get("title"); t != nil && t.kind == 's' && t.str != "" {
		label = t.str
	}
	b := &builder{root: doc, expanding: map[string]bool{}}
	node, err := b.build(label, xmltree.Properties{MinOccurs: 1, MaxOccurs: 1, Order: 1}, doc)
	if err != nil {
		return nil, err
	}
	return node, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*xmltree.Node, error) {
	return Parse(strings.NewReader(s))
}

// parseValue reads one JSON value off the decoder into the ordered model.
func parseValue(dec *json.Decoder, depth int) (*value, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("document nests deeper than %d levels", maxDepth)
	}
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	return valueFrom(dec, tok, depth)
}

func valueFrom(dec *json.Decoder, tok json.Token, depth int) (*value, error) {
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '{':
			v := &value{kind: 'o'}
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, err
				}
				key, ok := keyTok.(string)
				if !ok {
					return nil, fmt.Errorf("object key is not a string")
				}
				mv, err := parseValue(dec, depth+1)
				if err != nil {
					return nil, err
				}
				v.obj = append(v.obj, member{key: key, val: mv})
			}
			if _, err := dec.Token(); err != nil { // consume '}'
				return nil, err
			}
			return v, nil
		case '[':
			v := &value{kind: 'a'}
			for dec.More() {
				ev, err := parseValue(dec, depth+1)
				if err != nil {
					return nil, err
				}
				v.arr = append(v.arr, ev)
			}
			if _, err := dec.Token(); err != nil { // consume ']'
				return nil, err
			}
			return v, nil
		}
		return nil, fmt.Errorf("unexpected delimiter %v", t)
	case string:
		return &value{kind: 's', str: t}, nil
	case json.Number:
		return &value{kind: 'n', str: t.String()}, nil
	case bool:
		return &value{kind: 'b', b: t}, nil
	case nil:
		return &value{kind: 'z'}, nil
	}
	return nil, fmt.Errorf("unexpected token %v", tok)
}

// typeMap carries the JSON primitive types onto the XSD datatype table
// (internal/xmltree/types.go), so the properties axis compares JSON and
// XML leaves through the same compatibility relation.
var typeMap = map[string]string{
	"string":  "string",
	"integer": "integer",
	"number":  "decimal",
	"boolean": "boolean",
}

// formatMap refines "string" through the draft-07 format keyword.
var formatMap = map[string]string{
	"date-time": "dateTime",
	"date":      "date",
	"time":      "time",
	"duration":  "duration",
	"uri":       "anyURI",
	"iri":       "anyURI",
}

// builder expands schema values into tree nodes.
type builder struct {
	root      *value
	expanding map[string]bool // $ref pointers currently on the stack
	nodes     int
}

// build constructs the node for one schema value.
func (b *builder) build(label string, props xmltree.Properties, schema *value) (*xmltree.Node, error) {
	if label == "" {
		return nil, fmt.Errorf("jsonschema: empty property name")
	}
	b.nodes++
	if b.nodes > maxNodes {
		return nil, fmt.Errorf("jsonschema: schema expands past %d nodes", maxNodes)
	}
	// Boolean schemas: "true" admits anything, "false" nothing — both are
	// untyped leaves for matching purposes.
	if schema.kind == 'b' {
		return xmltree.New(label, props), nil
	}
	if schema.kind != 'o' {
		return nil, fmt.Errorf("jsonschema: schema for %q is not an object", label)
	}
	// $ref replaces the schema (draft-07 semantics). A reference cycle
	// stops expanding at the repeated pointer, mirroring the recursive
	// content-model cut-off of the DTD and XSD parsers.
	if ref := schema.get("$ref"); ref != nil {
		if ref.kind != 's' {
			return nil, fmt.Errorf("jsonschema: $ref for %q is not a string", label)
		}
		target, err := b.resolve(ref.str)
		if err != nil {
			return nil, err
		}
		if b.expanding[ref.str] {
			return xmltree.New(label, props), nil
		}
		b.expanding[ref.str] = true
		defer delete(b.expanding, ref.str)
		return b.build(label, props, target)
	}
	// Arrays repeat the property itself: the items schema describes the
	// node, the occurrence bound records the repetition.
	if items := schema.get("items"); items != nil || typeName(schema) == "array" {
		props.MaxOccurs = xmltree.Unbounded
		if items == nil {
			return xmltree.New(label, props), nil
		}
		if items.kind == 'a' { // tuple form: flatten entries as children
			node := xmltree.New(label, props)
			for i, entry := range items.arr {
				child, err := b.build(fmt.Sprintf("%s%d", label, i+1),
					xmltree.Properties{MinOccurs: 0, MaxOccurs: 1}, entry)
				if err != nil {
					return nil, err
				}
				node.Add(child)
			}
			return node, nil
		}
		return b.build(label, props, items)
	}

	if t, ok := leafType(schema); ok {
		props.Type = t
	}
	if admitsNull(schema) {
		props.Nillable = true
	}
	if props.Type == "" && schema.get("enum") != nil {
		props.Type = "token"
	}
	if c := schema.get("const"); c != nil {
		props.Fixed = scalarString(c)
	}
	if d := schema.get("default"); d != nil {
		props.Default = scalarString(d)
	}

	node := xmltree.New(label, props)

	// properties → children, in document order; required → minOccurs.
	required := map[string]bool{}
	if req := schema.get("required"); req != nil && req.kind == 'a' {
		for _, r := range req.arr {
			if r.kind == 's' {
				required[r.str] = true
			}
		}
	}
	if propsVal := schema.get("properties"); propsVal != nil {
		if propsVal.kind != 'o' {
			return nil, fmt.Errorf("jsonschema: properties of %q is not an object", label)
		}
		for _, m := range propsVal.obj {
			cp := xmltree.Properties{MinOccurs: 0, MaxOccurs: 1}
			if required[m.key] {
				cp.MinOccurs = 1
			}
			child, err := b.build(m.key, cp, m.val)
			if err != nil {
				return nil, err
			}
			node.Add(child)
		}
	}
	// oneOf/anyOf: alternatives become optional children, like the DTD
	// parser flattens choice groups into optional siblings. Scalar
	// branches without properties contribute the node's own type when it
	// has none.
	for _, kw := range []string{"oneOf", "anyOf"} {
		branches := schema.get(kw)
		if branches == nil || branches.kind != 'a' {
			continue
		}
		for _, branch := range branches.arr {
			if branch.kind != 'o' {
				continue
			}
			if branch.get("properties") == nil && branch.get("$ref") == nil {
				if t, ok := leafType(branch); ok && node.Props.Type == "" {
					node.Props.Type = t
				}
				continue
			}
			alt, err := b.build(label, xmltree.Properties{MinOccurs: 0, MaxOccurs: 1}, branch)
			if err != nil {
				return nil, err
			}
			for _, c := range alt.Children {
				c.Props.MinOccurs = 0
				c.Props.Order = 0 // re-numbered by Add
				node.Add(c)
			}
			if node.Props.Type == "" && alt.Props.Type != "" {
				node.Props.Type = alt.Props.Type
			}
		}
	}
	return node, nil
}

// typeName returns the schema's declared type; a type array (draft-07
// union form) yields its first non-"null" entry.
func typeName(schema *value) string {
	t := schema.get("type")
	if t == nil {
		return ""
	}
	switch t.kind {
	case 's':
		return t.str
	case 'a':
		for _, e := range t.arr {
			if e.kind == 's' && e.str != "null" {
				return e.str
			}
		}
	}
	return ""
}

// admitsNull reports whether the declared type includes "null" — the
// JSON counterpart of nillable="true".
func admitsNull(schema *value) bool {
	t := schema.get("type")
	if t == nil {
		return false
	}
	switch t.kind {
	case 's':
		return t.str == "null"
	case 'a':
		for _, e := range t.arr {
			if e.kind == 's' && e.str == "null" {
				return true
			}
		}
	}
	return false
}

// leafType maps a schema's type/format pair onto the XSD datatype table.
func leafType(schema *value) (string, bool) {
	name := typeName(schema)
	mapped, ok := typeMap[name]
	if !ok {
		return "", false
	}
	if mapped == "string" {
		if f := schema.get("format"); f != nil && f.kind == 's' {
			if refined, ok := formatMap[f.str]; ok {
				return refined, true
			}
		}
	}
	return mapped, true
}

// scalarString renders a scalar value for the Fixed/Default constraints.
func scalarString(v *value) string {
	switch v.kind {
	case 's', 'n':
		return v.str
	case 'b':
		if v.b {
			return "true"
		}
		return "false"
	}
	return ""
}

// resolve follows a within-document JSON Pointer reference ("#",
// "#/definitions/Address", ...). External references are outside the
// supported subset.
func (b *builder) resolve(ref string) (*value, error) {
	if !strings.HasPrefix(ref, "#") {
		return nil, fmt.Errorf("jsonschema: external $ref %q is not supported", ref)
	}
	cur := b.root
	pointer := strings.TrimPrefix(ref, "#")
	if pointer == "" {
		return cur, nil
	}
	if !strings.HasPrefix(pointer, "/") {
		return nil, fmt.Errorf("jsonschema: malformed $ref %q", ref)
	}
	for _, raw := range strings.Split(pointer[1:], "/") {
		tokenName := strings.ReplaceAll(strings.ReplaceAll(raw, "~1", "/"), "~0", "~")
		var next *value
		if cur.kind == 'a' {
			if idx, err := strconv.Atoi(tokenName); err == nil && idx >= 0 && idx < len(cur.arr) {
				next = cur.arr[idx]
			}
		} else {
			next = cur.get(tokenName)
		}
		if next == nil {
			return nil, fmt.Errorf("jsonschema: $ref %q does not resolve", ref)
		}
		cur = next
	}
	return cur, nil
}
