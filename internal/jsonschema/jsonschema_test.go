package jsonschema

import (
	"strings"
	"testing"

	"qmatch/internal/xmltree"
)

func parse(t *testing.T, doc string) *xmltree.Node {
	t.Helper()
	tree, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v\ndoc: %s", err, doc)
	}
	return tree
}

const poSchema = `{
  "title": "PurchaseOrder",
  "type": "object",
  "required": ["orderNo", "lines"],
  "properties": {
    "orderNo": {"type": "integer"},
    "date": {"type": "string", "format": "date"},
    "lines": {
      "type": "array",
      "items": {
        "type": "object",
        "required": ["sku"],
        "properties": {
          "sku": {"type": "string"},
          "quantity": {"type": "integer"},
          "price": {"type": "number"}
        }
      }
    }
  }
}`

func TestParsePurchaseOrder(t *testing.T) {
	tree := parse(t, poSchema)
	if tree.Label != "PurchaseOrder" {
		t.Fatalf("root label = %q, want PurchaseOrder", tree.Label)
	}
	if got := len(tree.Children); got != 3 {
		t.Fatalf("root has %d children, want 3:\n%s", got, tree.Dump())
	}
	// Document order must be preserved: orderNo, date, lines.
	for i, want := range []string{"orderNo", "date", "lines"} {
		if tree.Children[i].Label != want {
			t.Errorf("child %d = %q, want %q", i, tree.Children[i].Label, want)
		}
		if tree.Children[i].Props.Order != i+1 {
			t.Errorf("child %q order = %d, want %d", want, tree.Children[i].Props.Order, i+1)
		}
	}
	orderNo := tree.Children[0]
	if orderNo.Props.Type != "integer" || orderNo.Props.MinOccurs != 1 {
		t.Errorf("orderNo props = %+v, want integer required", orderNo.Props)
	}
	date := tree.Children[1]
	if date.Props.Type != "date" || date.Props.MinOccurs != 0 {
		t.Errorf("date props = %+v, want optional date (format refinement)", date.Props)
	}
	lines := tree.Children[2]
	if lines.Props.MaxOccurs != xmltree.Unbounded {
		t.Errorf("lines maxOccurs = %d, want unbounded", lines.Props.MaxOccurs)
	}
	if got := len(lines.Children); got != 3 {
		t.Fatalf("lines has %d children, want 3 (items object expanded in place)", got)
	}
	if lines.Children[0].Label != "sku" || lines.Children[0].Props.MinOccurs != 1 {
		t.Errorf("lines.sku = %+v, want required leaf", lines.Children[0].Props)
	}
	if lines.Children[2].Props.Type != "decimal" {
		t.Errorf("price type = %q, want decimal (number mapping)", lines.Children[2].Props.Type)
	}
}

func TestParseOrderPreserved(t *testing.T) {
	// A property order that would differ under map iteration.
	doc := `{"type":"object","properties":{"z":{"type":"string"},"a":{"type":"string"},"m":{"type":"string"}}}`
	tree := parse(t, doc)
	want := []string{"z", "a", "m"}
	for i, w := range want {
		if tree.Children[i].Label != w {
			t.Fatalf("children order = %v, want %v", tree.Children, want)
		}
	}
}

func TestParseRefAndCycle(t *testing.T) {
	doc := `{
	  "title": "Tree",
	  "type": "object",
	  "properties": {
	    "name": {"type": "string"},
	    "left": {"$ref": "#/definitions/node"},
	    "addr": {"$ref": "#/definitions/address"}
	  },
	  "definitions": {
	    "node": {
	      "type": "object",
	      "properties": {
	        "value": {"type": "integer"},
	        "next": {"$ref": "#/definitions/node"}
	      }
	    },
	    "address": {
	      "type": "object",
	      "required": ["city"],
	      "properties": {"city": {"type": "string"}, "zip": {"type": "string"}}
	    }
	  }
	}`
	tree := parse(t, doc)
	left := tree.Find("Tree/left")
	if left == nil {
		t.Fatalf("no Tree/left in:\n%s", tree.Dump())
	}
	// One expansion level: left has value and next; the recursive next
	// stops expanding (cycle cut-off), so it is a leaf.
	next := tree.Find("Tree/left/next")
	if next == nil || !next.IsLeaf() {
		t.Fatalf("cycle not cut off at Tree/left/next:\n%s", tree.Dump())
	}
	city := tree.Find("Tree/addr/city")
	if city == nil || city.Props.MinOccurs != 1 {
		t.Fatalf("ref target's required not honored:\n%s", tree.Dump())
	}
	// definitions must not appear as children of the root.
	if tree.Find("Tree/definitions") != nil {
		t.Fatal("definitions leaked into the tree")
	}
}

func TestParseOneOfAnyOfFlattened(t *testing.T) {
	doc := `{
	  "title": "Contact",
	  "type": "object",
	  "properties": {
	    "via": {
	      "oneOf": [
	        {"type": "object", "required": ["email"], "properties": {"email": {"type": "string"}}},
	        {"type": "object", "properties": {"phone": {"type": "string"}}}
	      ]
	    }
	  }
	}`
	tree := parse(t, doc)
	via := tree.Find("Contact/via")
	if via == nil || len(via.Children) != 2 {
		t.Fatalf("oneOf branches not flattened:\n%s", tree.Dump())
	}
	for _, c := range via.Children {
		if c.Props.MinOccurs != 0 {
			t.Errorf("oneOf child %q not optional: %+v", c.Label, c.Props)
		}
	}
}

func TestParseScalarKeywords(t *testing.T) {
	doc := `{"type":"object","properties":{
	  "kind": {"enum": ["a","b"]},
	  "version": {"const": 2},
	  "region": {"type": "string", "default": "eu"},
	  "maybe": {"type": ["string", "null"]}
	}}`
	tree := parse(t, doc)
	if got := tree.Children[0].Props.Type; got != "token" {
		t.Errorf("enum type = %q, want token", got)
	}
	if got := tree.Children[1].Props.Fixed; got != "2" {
		t.Errorf("const fixed = %q, want 2", got)
	}
	if got := tree.Children[2].Props.Default; got != "eu" {
		t.Errorf("default = %q, want eu", got)
	}
	maybe := tree.Children[3].Props
	if maybe.Type != "string" || !maybe.Nillable {
		t.Errorf("union type props = %+v, want nillable string", maybe)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"not json":         `nope`,
		"scalar doc":       `42`,
		"array doc":        `[1,2]`,
		"trailing":         `{} {}`,
		"empty property":   `{"type":"object","properties":{"": {"type":"string"}}}`,
		"external ref":     `{"properties":{"x":{"$ref":"http://x/y#/z"}}}`,
		"dangling ref":     `{"properties":{"x":{"$ref":"#/definitions/missing"}}}`,
		"malformed ref":    `{"properties":{"x":{"$ref":"#definitions"}}}`,
		"non-object props": `{"type":"object","properties": 3}`,
	}
	for name, doc := range cases {
		if _, err := ParseString(doc); err == nil {
			t.Errorf("%s: no error for %s", name, doc)
		}
	}
}

func TestParseDepthBounded(t *testing.T) {
	deep := strings.Repeat(`{"properties":{"a":`, maxDepth) + `{}` + strings.Repeat(`}}`, maxDepth)
	if _, err := ParseString(deep); err == nil {
		t.Fatal("no error for a document nested past the depth bound")
	}
}

func TestParseTupleItems(t *testing.T) {
	doc := `{"title":"T","type":"object","properties":{
	  "pair": {"type":"array","items":[{"type":"integer"},{"type":"string"}]}
	}}`
	tree := parse(t, doc)
	pair := tree.Find("T/pair")
	if pair == nil || len(pair.Children) != 2 {
		t.Fatalf("tuple items not expanded:\n%s", tree.Dump())
	}
	if pair.Children[0].Props.Type != "integer" || pair.Children[1].Props.Type != "string" {
		t.Fatalf("tuple entry types wrong:\n%s", tree.Dump())
	}
}

// Levels must come out consistent with nesting, since the level axis of
// the QoM model reads them directly.
func TestParseLevels(t *testing.T) {
	tree := parse(t, poSchema)
	if l := tree.Level(); l != 0 {
		t.Fatalf("root level = %d", l)
	}
	sku := tree.Find("PurchaseOrder/lines/sku")
	if sku == nil || sku.Level() != 2 {
		t.Fatalf("sku level wrong:\n%s", tree.Dump())
	}
}
