package jsonschema

import (
	"testing"
	"testing/quick"

	"qmatch/internal/xmltree"
)

// The JSON Schema parser must be total: random inputs error or parse,
// never panic.
func TestParseNeverPanics(t *testing.T) {
	prop := func(junk string) bool {
		_, _ = ParseString(junk)
		_, _ = ParseString(`{"type":"object","properties":{"x":` + junk + `}}`)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// FuzzParseJSONSchema drives the parser with arbitrary documents. The
// parser must stay total, any accepted tree must be well-formed
// (non-empty labels, parent/level consistency), and node counts must
// respect the expansion bound.
func FuzzParseJSONSchema(f *testing.F) {
	f.Add(poSchema)
	f.Add(`{"title":"T","type":"object","properties":{"a":{"type":"string"}}}`)
	f.Add(`{"type":"array","items":{"type":"integer"}}`)
	f.Add(`{"properties":{"left":{"$ref":"#/definitions/n"}},"definitions":{"n":{"properties":{"next":{"$ref":"#/definitions/n"}}}}}`)
	f.Add(`{"properties":{"v":{"oneOf":[{"properties":{"a":{"type":"string"}}},{"type":"integer"}]}}}`)
	f.Add(`{"type":"object","required":["a"],"properties":{"a":{"enum":[1,2]},"b":{"const":true},"c":{"type":["string","null"]}}}`)
	f.Add(`not json`)
	f.Add(`{"properties":`)
	f.Fuzz(func(t *testing.T, data string) {
		tree, err := ParseString(data)
		if err != nil {
			return
		}
		if tree == nil {
			t.Fatalf("nil tree with nil error for %q", data)
		}
		size := 0
		ok := true
		tree.Walk(func(n *xmltree.Node) bool {
			size++
			if n.Label == "" {
				ok = false
			}
			for _, c := range n.Children {
				if c.Parent() != n {
					ok = false
				}
			}
			return ok
		})
		if !ok {
			t.Fatalf("parsed tree is malformed for %q:\n%s", data, tree.Dump())
		}
		if size > maxNodes {
			t.Fatalf("tree grew past the node bound: %d nodes", size)
		}
	})
}
