package match

import (
	"fmt"
	"sort"
	"strings"

	"qmatch/internal/lingo"
	"qmatch/internal/xmltree"
)

// Complex (1:n) correspondences: a single source element that corresponds
// to the combination of several sibling target elements — the classic
// Name ↔ FirstName + LastName split. One-to-one matchers structurally
// cannot express these; detecting them is a separate pass over the
// unmatched remainder (COMA++ and later systems call these "complex
// matches").

// ComplexCorrespondence maps one source element to an ordered set of
// sibling target elements whose tokens jointly cover it.
type ComplexCorrespondence struct {
	Source  string
	Targets []string
	Score   float64
}

// String renders "Article/Author -> {FirstName, LastName} (0.92)".
func (c ComplexCorrespondence) String() string {
	short := make([]string, len(c.Targets))
	for i, t := range c.Targets {
		if idx := strings.LastIndexByte(t, '/'); idx >= 0 {
			short[i] = t[idx+1:]
		} else {
			short[i] = t
		}
	}
	return fmt.Sprintf("%s -> {%s} (%.2f)", c.Source, strings.Join(short, ", "), c.Score)
}

// ComplexConfig tunes FindComplex.
type ComplexConfig struct {
	// Names scores token pairs; nil selects the built-in thesaurus.
	Names *lingo.NameMatcher
	// MinScore is the minimum per-token coverage score for a 1:n
	// candidate to be reported (default 0.8).
	MinScore float64
	// MaxTargets bounds the size of the target combination (default 4).
	MaxTargets int
}

// FindComplex searches for 1:n correspondences between source leaves and
// combinations of sibling target leaves. Already-matched elements (the
// output of a 1:1 pass) are excluded, so the complex pass explains the
// remainder.
//
// The detection signature is the *shared head token*: a split like
// FirstName + LastName ↔ FullName keeps the unsplit concept as the last
// token of every fragment ("name"), with the fragments differing only in
// their qualifiers. A source leaf S maps to target siblings {T1..Tk} when
// at least two unmatched siblings share S's head token, scored by the
// head similarities and the coverage of S's qualifier tokens by the
// candidates' qualifiers or their parent's label ("AuthorName" ↔
// Author/{FirstName, LastName}: the parent covers "author").
func FindComplex(src, tgt *xmltree.Node, matched []Correspondence, cfg ComplexConfig) []ComplexCorrespondence {
	if cfg.Names == nil {
		cfg.Names = lingo.NewNameMatcher(lingo.Default())
	}
	if cfg.MinScore == 0 {
		cfg.MinScore = 0.8
	}
	if cfg.MaxTargets == 0 {
		cfg.MaxTargets = 4
	}
	usedS := map[string]bool{}
	usedT := map[string]bool{}
	for _, c := range matched {
		usedS[c.Source] = true
		usedT[c.Target] = true
	}

	var out []ComplexCorrespondence
	src.Walk(func(s *xmltree.Node) bool {
		if !s.IsLeaf() || usedS[s.Path()] {
			return true
		}
		sTokens := lingo.StripNoise(lingo.Tokenize(s.Label))
		if len(sTokens) == 0 {
			return true
		}
		best := ComplexCorrespondence{}
		tgt.Walk(func(parent *xmltree.Node) bool {
			if parent.IsLeaf() {
				return true
			}
			cand := complexUnder(s, sTokens, parent, usedT, cfg)
			if cand != nil && (len(best.Targets) == 0 || cand.Score > best.Score) {
				best = *cand
			}
			return true
		})
		if len(best.Targets) >= 2 && best.Score >= cfg.MinScore {
			out = append(out, best)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// wholenessWords qualify the unsplit whole and are vacuously covered by
// any split ("FullName" ↔ FirstName + LastName).
var wholenessWords = map[string]bool{
	"full": true, "complete": true, "whole": true, "entire": true, "total": true,
}

// complexUnder tries to cover the source leaf with unmatched leaf children
// of one target parent.
func complexUnder(s *xmltree.Node, sTokens []string, parent *xmltree.Node, usedT map[string]bool, cfg ComplexConfig) *ComplexCorrespondence {
	head := sTokens[len(sTokens)-1]
	qualifiers := sTokens[:len(sTokens)-1]

	// Candidates: unmatched leaf siblings sharing the head token.
	type cand struct {
		node    *xmltree.Node
		headSim float64
		tokens  []string
	}
	var cands []cand
	for _, ct := range parent.Children {
		if !ct.IsLeaf() || usedT[ct.Path()] {
			continue
		}
		tTokens := lingo.StripNoise(lingo.Tokenize(ct.Label))
		if len(tTokens) == 0 {
			continue
		}
		tHead := tTokens[len(tTokens)-1]
		sim := tokenScore(cfg.Names, head, tHead)
		if sim < 0.8 {
			continue
		}
		cands = append(cands, cand{node: ct, headSim: sim, tokens: tTokens})
	}
	if len(cands) < 2 || len(cands) > cfg.MaxTargets {
		return nil
	}

	// Source qualifiers must be explained — by a candidate's qualifier
	// tokens, by the target parent's label, or by being a wholeness
	// word. Coverage scales the score; an unexplained qualifier that is
	// not a wholeness word vetoes nothing but costs heavily.
	parentTokens := lingo.StripNoise(lingo.Tokenize(parent.Label))
	coverage := 1.0
	if len(qualifiers) > 0 {
		covered := 0
		for _, q := range qualifiers {
			if wholenessWords[q] {
				covered++
				continue
			}
			best := 0.0
			for _, pt := range parentTokens {
				if v := tokenScore(cfg.Names, q, pt); v > best {
					best = v
				}
			}
			for _, c := range cands {
				for _, tt := range c.tokens {
					if v := tokenScore(cfg.Names, q, tt); v > best {
						best = v
					}
				}
			}
			if best >= 0.5 {
				covered++
			}
		}
		coverage = float64(covered) / float64(len(qualifiers))
	}

	headTotal := 0.0
	targets := make([]string, len(cands))
	for i, c := range cands {
		headTotal += c.headSim
		targets[i] = c.node.Path()
	}
	return &ComplexCorrespondence{
		Source:  s.Path(),
		Targets: targets,
		Score:   (headTotal / float64(len(cands))) * (0.5 + 0.5*coverage),
	}
}

// tokenScore scores one token pair: exact/synonym 1, hypernym-family
// relations and abbreviations via the name matcher's relaxed score, string
// similarity as a floor.
func tokenScore(m *lingo.NameMatcher, a, b string) float64 {
	s, kind := m.Match(a, b)
	if kind == lingo.None {
		return 0
	}
	return s
}
