package match

import (
	"math"
	"sort"

	"qmatch/internal/xmltree"
)

// SelectOptimal derives the one-to-one correspondence set that maximizes
// the total score over pairs at or above the threshold, using the
// Kuhn-Munkres (Hungarian) algorithm — the globally optimal counterpart of
// the greedy Select. Greedy selection can lock a source onto its best
// target even when swapping assignments would raise the total; the
// ablation benchmarks quantify how often that matters in practice.
//
// Complexity is O(n²·m) for n sources and m targets (n ≤ m after
// transposition), so it stays practical up to the corpus' largest task.
func SelectOptimal(pairs []ScoredPair, threshold float64) []Correspondence {
	// Collect the node universes and the admissible score table.
	srcIdx := map[*xmltree.Node]int{}
	tgtIdx := map[*xmltree.Node]int{}
	var srcs, tgts []*xmltree.Node
	type key struct{ s, t int }
	score := map[key]float64{}
	for _, p := range pairs {
		if p.Source == nil || p.Target == nil || p.Score < threshold {
			continue
		}
		si, ok := srcIdx[p.Source]
		if !ok {
			si = len(srcs)
			srcIdx[p.Source] = si
			srcs = append(srcs, p.Source)
		}
		ti, ok := tgtIdx[p.Target]
		if !ok {
			ti = len(tgts)
			tgtIdx[p.Target] = ti
			tgts = append(tgts, p.Target)
		}
		k := key{si, ti}
		if p.Score > score[k] {
			score[k] = p.Score
		}
	}
	if len(srcs) == 0 {
		return nil
	}

	// Orient so rows ≤ columns.
	transposed := false
	rows, cols := len(srcs), len(tgts)
	if rows > cols {
		transposed = true
		rows, cols = cols, rows
	}
	at := func(r, c int) float64 {
		k := key{r, c}
		if transposed {
			k = key{c, r}
		}
		if s, ok := score[k]; ok {
			return s
		}
		return math.Inf(-1) // inadmissible pair
	}

	assignment := hungarianMax(rows, cols, at)

	var out []Correspondence
	for r, c := range assignment {
		if c < 0 {
			continue
		}
		v := at(r, c)
		if math.IsInf(v, -1) || v < threshold {
			continue
		}
		si, ti := r, c
		if transposed {
			si, ti = c, r
		}
		out = append(out, Correspondence{
			Source: srcs[si].Path(),
			Target: tgts[ti].Path(),
			Score:  v,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// hungarianMax solves the rectangular assignment problem maximizing the
// total of at(r,c) over a perfect matching of the rows (rows ≤ cols),
// using the potential-based Kuhn-Munkres formulation on costs
// cost = -at. Inadmissible cells carry +inf cost and are filtered by the
// caller. Returns, per row, the assigned column.
func hungarianMax(rows, cols int, at func(r, c int) float64) []int {
	const inf = math.MaxFloat64
	cost := func(r, c int) float64 {
		v := at(r, c)
		if math.IsInf(v, -1) {
			// Large-but-finite cost keeps the matching total ordered:
			// inadmissible assignments are taken only when unavoidable.
			return 1e9
		}
		return -v
	}

	// 1-indexed potentials per the classic formulation.
	u := make([]float64, rows+1)
	v := make([]float64, cols+1)
	p := make([]int, cols+1)   // p[j]: row assigned to column j
	way := make([]int, cols+1) // way[j]: previous column on the alternating path

	for i := 1; i <= rows; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, cols+1)
		used := make([]bool, cols+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= cols; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= cols; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assignment := make([]int, rows)
	for i := range assignment {
		assignment[i] = -1
	}
	for j := 1; j <= cols; j++ {
		if p[j] > 0 {
			assignment[p[j]-1] = j - 1
		}
	}
	return assignment
}
