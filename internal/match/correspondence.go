// Package match defines the shared vocabulary of all matchers in this
// repository: correspondences (predicted element mappings), one-to-one
// selection from scored pair tables, gold standards ("manually determined
// real matches", paper §5.1), and the evaluation metrics the paper reports
// — Precision, Recall and the combined Overall measure.
package match

import (
	"fmt"
	"sort"
	"strings"

	"qmatch/internal/xmltree"
)

// Correspondence is one predicted (or gold) mapping between a source and a
// target schema element, identified by their tree paths.
type Correspondence struct {
	Source string  // source node path, e.g. "PO/OrderNo"
	Target string  // target node path
	Score  float64 // matcher confidence in [0,1]; 1 for gold entries
}

// String renders "PO/OrderNo -> PurchaseOrder/OrderNo (0.87)".
func (c Correspondence) String() string {
	return fmt.Sprintf("%s -> %s (%.2f)", c.Source, c.Target, c.Score)
}

// key identifies a correspondence irrespective of score.
func (c Correspondence) key() string { return c.Source + "\x00" + c.Target }

// Gold is a set of manually determined real matches for one match task.
type Gold struct {
	pairs map[string]bool
	list  []Correspondence
}

// NewGold builds a gold standard from source→target path pairs. Duplicate
// pairs are stored once.
func NewGold(pairs ...[2]string) *Gold {
	g := &Gold{pairs: map[string]bool{}}
	for _, p := range pairs {
		c := Correspondence{Source: p[0], Target: p[1], Score: 1}
		if !g.pairs[c.key()] {
			g.pairs[c.key()] = true
			g.list = append(g.list, c)
		}
	}
	return g
}

// Contains reports whether the gold standard holds the given mapping.
func (g *Gold) Contains(source, target string) bool {
	return g.pairs[Correspondence{Source: source, Target: target}.key()]
}

// Size returns |R|, the number of real matches.
func (g *Gold) Size() int { return len(g.list) }

// List returns the gold correspondences in insertion order.
func (g *Gold) List() []Correspondence {
	out := make([]Correspondence, len(g.list))
	copy(out, g.list)
	return out
}

// Validate checks that every gold path exists in the given trees, returning
// a descriptive error for the first dangling path — a guard against gold
// standards drifting from their schemas.
func (g *Gold) Validate(src, tgt *xmltree.Node) error {
	for _, c := range g.list {
		if src.Find(c.Source) == nil {
			return fmt.Errorf("gold source path %q not in schema %s", c.Source, src.Label)
		}
		if tgt.Find(c.Target) == nil {
			return fmt.Errorf("gold target path %q not in schema %s", c.Target, tgt.Label)
		}
	}
	return nil
}

// Algorithm is the interface every matcher (linguistic, structural, hybrid
// QMatch) implements, so the evaluation harness can treat them uniformly.
type Algorithm interface {
	// Name identifies the algorithm in reports ("linguistic",
	// "structural", "hybrid").
	Name() string
	// Match returns the predicted correspondences between two schemas.
	Match(src, tgt *xmltree.Node) []Correspondence
	// TreeScore returns the algorithm's overall match value for the two
	// schemas — the "total match value presented to the user" (Fig. 9).
	TreeScore(src, tgt *xmltree.Node) float64
}

// FormatCorrespondences renders a correspondence list one per line, sorted
// by descending score then source path — the CLI output format.
func FormatCorrespondences(cs []Correspondence) string {
	sorted := make([]Correspondence, len(cs))
	copy(sorted, cs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score > sorted[j].Score
		}
		return sorted[i].Source < sorted[j].Source
	})
	var b strings.Builder
	for _, c := range sorted {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}
