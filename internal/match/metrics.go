package match

import "fmt"

// Evaluation holds the match-quality measures of paper §5.1 for one match
// task: given real matches R (gold), predicted matches P, true positives
// I = P ∩ R, false positives F = P \ I and missed matches M = R \ I,
//
//	Precision = |I| / |P|
//	Recall    = |I| / |R|
//	Overall   = 1 − (|F| + |M|) / |R| = Recall · (2 − 1/Precision)
//
// Overall can be negative when false positives outnumber true positives —
// the paper's "post-match effort" interpretation.
type Evaluation struct {
	TruePositives  int // |I|
	FalsePositives int // |F|
	Missed         int // |M|
	Predicted      int // |P|
	Real           int // |R|

	Precision float64
	Recall    float64
	Overall   float64
	F1        float64
}

// Evaluate scores a predicted correspondence set against the gold standard.
// Empty predictions yield zero precision/recall; an empty gold standard
// yields a degenerate evaluation with all measures zero.
func Evaluate(predicted []Correspondence, gold *Gold) Evaluation {
	e := Evaluation{Predicted: len(predicted), Real: gold.Size()}
	seen := map[string]bool{}
	for _, p := range predicted {
		if seen[p.key()] {
			e.Predicted-- // duplicate prediction counts once
			continue
		}
		seen[p.key()] = true
		if gold.Contains(p.Source, p.Target) {
			e.TruePositives++
		} else {
			e.FalsePositives++
		}
	}
	e.Missed = e.Real - e.TruePositives
	if e.Predicted > 0 {
		e.Precision = float64(e.TruePositives) / float64(e.Predicted)
	}
	if e.Real > 0 {
		e.Recall = float64(e.TruePositives) / float64(e.Real)
		e.Overall = 1 - float64(e.FalsePositives+e.Missed)/float64(e.Real)
	}
	if e.Precision+e.Recall > 0 {
		e.F1 = 2 * e.Precision * e.Recall / (e.Precision + e.Recall)
	}
	return e
}

// String renders "P=0.90 R=0.80 Overall=0.71 F1=0.85 (I=8 F=1 M=2)".
func (e Evaluation) String() string {
	return fmt.Sprintf("P=%.2f R=%.2f Overall=%.2f F1=%.2f (I=%d F=%d M=%d)",
		e.Precision, e.Recall, e.Overall, e.F1,
		e.TruePositives, e.FalsePositives, e.Missed)
}
