package match

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"qmatch/internal/xmltree"
)

func nodes(labels ...string) []*xmltree.Node {
	out := make([]*xmltree.Node, len(labels))
	for i, l := range labels {
		out[i] = xmltree.New(l, xmltree.Elem("string"))
	}
	return out
}

func TestSelectGreedyOneToOne(t *testing.T) {
	s := nodes("a", "b")
	tt := nodes("x", "y")
	pairs := []ScoredPair{
		{s[0], tt[0], 0.9},
		{s[0], tt[1], 0.8},
		{s[1], tt[0], 0.85}, // loses x to a (0.9 > 0.85)
		{s[1], tt[1], 0.7},
	}
	got := Select(pairs, 0.5)
	if len(got) != 2 {
		t.Fatalf("selected %d, want 2", len(got))
	}
	if got[0].Source != "a" || got[0].Target != "x" {
		t.Fatalf("first = %v", got[0])
	}
	if got[1].Source != "b" || got[1].Target != "y" {
		t.Fatalf("second = %v", got[1])
	}
}

func TestSelectThreshold(t *testing.T) {
	s := nodes("a")
	tt := nodes("x")
	if got := Select([]ScoredPair{{s[0], tt[0], 0.4}}, 0.5); len(got) != 0 {
		t.Fatalf("below-threshold pair selected: %v", got)
	}
	if got := Select([]ScoredPair{{s[0], tt[0], 0.5}}, 0.5); len(got) != 1 {
		t.Fatal("at-threshold pair rejected")
	}
}

func TestSelectSkipsNil(t *testing.T) {
	s := nodes("a")
	if got := Select([]ScoredPair{{s[0], nil, 0.9}, {nil, s[0], 0.9}}, 0); len(got) != 0 {
		t.Fatalf("nil endpoints selected: %v", got)
	}
}

func TestSelectDeterministicTies(t *testing.T) {
	s := nodes("a", "b")
	tt := nodes("x", "y")
	pairs := []ScoredPair{
		{s[1], tt[1], 0.8},
		{s[0], tt[0], 0.8},
		{s[1], tt[0], 0.8},
		{s[0], tt[1], 0.8},
	}
	got := Select(pairs, 0)
	// Ties resolve by source path then target path: a→x, b→y.
	if got[0].Source != "a" || got[0].Target != "x" || got[1].Source != "b" || got[1].Target != "y" {
		t.Fatalf("tie-break order = %v", got)
	}
}

// Property: Select output is always a partial injective mapping and never
// exceeds min(#sources, #targets).
func TestSelectInjectiveProperty(t *testing.T) {
	prop := func(scores []float64) bool {
		ns := nodes("s0", "s1", "s2", "s3")
		nt := nodes("t0", "t1", "t2")
		var pairs []ScoredPair
		k := 0
		for _, s := range ns {
			for _, tn := range nt {
				if k < len(scores) {
					v := math.Abs(scores[k])
					v -= math.Floor(v) // clamp into [0,1)
					pairs = append(pairs, ScoredPair{s, tn, v})
					k++
				}
			}
		}
		got := Select(pairs, 0.2)
		if len(got) > 3 {
			return false
		}
		seenS, seenT := map[string]bool{}, map[string]bool{}
		for _, c := range got {
			if seenS[c.Source] || seenT[c.Target] || c.Score < 0.2 {
				return false
			}
			seenS[c.Source], seenT[c.Target] = true, true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectAll(t *testing.T) {
	s := nodes("a")
	tt := nodes("x", "y")
	pairs := []ScoredPair{
		{s[0], tt[0], 0.9},
		{s[0], tt[1], 0.8}, // 1:n allowed here
		{s[0], nil, 0.99},
	}
	got := SelectAll(pairs, 0.5)
	if len(got) != 2 {
		t.Fatalf("SelectAll = %v", got)
	}
	if got[0].Score < got[1].Score {
		t.Fatal("SelectAll not sorted")
	}
}

func TestGold(t *testing.T) {
	g := NewGold(
		[2]string{"PO/OrderNo", "PurchaseOrder/OrderNo"},
		[2]string{"PO/OrderNo", "PurchaseOrder/OrderNo"}, // duplicate
		[2]string{"PO/PurchaseDate", "PurchaseOrder/Date"},
	)
	if g.Size() != 2 {
		t.Fatalf("gold size = %d", g.Size())
	}
	if !g.Contains("PO/OrderNo", "PurchaseOrder/OrderNo") {
		t.Fatal("Contains miss")
	}
	if g.Contains("PO/OrderNo", "PurchaseOrder/Date") {
		t.Fatal("Contains false hit")
	}
	if got := len(g.List()); got != 2 {
		t.Fatalf("List = %d", got)
	}
}

func TestGoldValidate(t *testing.T) {
	src := xmltree.NewTree("A", xmltree.Elem(""), xmltree.New("B", xmltree.Elem("string")))
	tgt := xmltree.NewTree("X", xmltree.Elem(""), xmltree.New("Y", xmltree.Elem("string")))
	ok := NewGold([2]string{"A/B", "X/Y"})
	if err := ok.Validate(src, tgt); err != nil {
		t.Fatalf("valid gold rejected: %v", err)
	}
	badSrc := NewGold([2]string{"A/Z", "X/Y"})
	if err := badSrc.Validate(src, tgt); err == nil {
		t.Fatal("dangling source accepted")
	}
	badTgt := NewGold([2]string{"A/B", "X/Z"})
	if err := badTgt.Validate(src, tgt); err == nil {
		t.Fatal("dangling target accepted")
	}
}

func TestEvaluate(t *testing.T) {
	g := NewGold(
		[2]string{"s/a", "t/a"},
		[2]string{"s/b", "t/b"},
		[2]string{"s/c", "t/c"},
		[2]string{"s/d", "t/d"},
	)
	pred := []Correspondence{
		{Source: "s/a", Target: "t/a", Score: 1},   // true positive
		{Source: "s/b", Target: "t/b", Score: 1},   // true positive
		{Source: "s/x", Target: "t/x", Score: 0.9}, // false positive
	}
	e := Evaluate(pred, g)
	if e.TruePositives != 2 || e.FalsePositives != 1 || e.Missed != 2 {
		t.Fatalf("counts = %+v", e)
	}
	if math.Abs(e.Precision-2.0/3) > 1e-9 {
		t.Fatalf("precision = %v", e.Precision)
	}
	if math.Abs(e.Recall-0.5) > 1e-9 {
		t.Fatalf("recall = %v", e.Recall)
	}
	// Overall = 1 - (F+M)/R = 1 - 3/4 = 0.25.
	if math.Abs(e.Overall-0.25) > 1e-9 {
		t.Fatalf("overall = %v", e.Overall)
	}
	// Identity: Overall = Recall * (2 - 1/Precision).
	want := e.Recall * (2 - 1/e.Precision)
	if math.Abs(e.Overall-want) > 1e-9 {
		t.Fatalf("overall identity broken: %v vs %v", e.Overall, want)
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	g := NewGold([2]string{"s/a", "t/a"})
	empty := Evaluate(nil, g)
	if empty.Precision != 0 || empty.Recall != 0 || empty.F1 != 0 {
		t.Fatalf("empty predictions = %+v", empty)
	}
	if empty.Overall != 0 { // 1 - (0+1)/1
		t.Fatalf("empty overall = %v", empty.Overall)
	}
	// Duplicate predictions count once.
	dup := Evaluate([]Correspondence{
		{Source: "s/a", Target: "t/a"},
		{Source: "s/a", Target: "t/a"},
	}, g)
	if dup.Predicted != 1 || dup.TruePositives != 1 {
		t.Fatalf("dup handling = %+v", dup)
	}
	if dup.Precision != 1 || dup.Recall != 1 || dup.Overall != 1 || dup.F1 != 1 {
		t.Fatalf("perfect = %+v", dup)
	}
	// All-false-positive predictions drive Overall negative.
	neg := Evaluate([]Correspondence{
		{Source: "s/x", Target: "t/x"},
		{Source: "s/y", Target: "t/y"},
	}, g)
	if neg.Overall >= 0 {
		t.Fatalf("overall should be negative: %v", neg.Overall)
	}
	// Empty gold: degenerate zeros.
	zero := Evaluate([]Correspondence{{Source: "s/a", Target: "t/a"}}, NewGold())
	if zero.Recall != 0 || zero.Overall != 0 {
		t.Fatalf("empty gold = %+v", zero)
	}
}

// Property: Overall <= Recall <= 1 and the closed-form identity holds
// whenever precision is defined.
func TestEvaluateProperties(t *testing.T) {
	prop := func(tp, fp, miss uint8) bool {
		nTP, nFP, nM := int(tp%6), int(fp%6), int(miss%6)
		var goldPairs [][2]string
		var pred []Correspondence
		for i := 0; i < nTP; i++ {
			p := [2]string{pathN("g", i), pathN("h", i)}
			goldPairs = append(goldPairs, p)
			pred = append(pred, Correspondence{Source: p[0], Target: p[1]})
		}
		for i := 0; i < nM; i++ {
			goldPairs = append(goldPairs, [2]string{pathN("m", i), pathN("n", i)})
		}
		for i := 0; i < nFP; i++ {
			pred = append(pred, Correspondence{Source: pathN("f", i), Target: pathN("q", i)})
		}
		g := NewGold(goldPairs...)
		e := Evaluate(pred, g)
		if e.Recall > 1 || e.Overall > e.Recall+1e-9 {
			return false
		}
		if e.Predicted > 0 && e.Real > 0 && e.Precision > 0 {
			want := e.Recall * (2 - 1/e.Precision)
			if math.Abs(e.Overall-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func pathN(prefix string, i int) string {
	return prefix + "/" + string(rune('a'+i))
}

func TestFormatCorrespondences(t *testing.T) {
	cs := []Correspondence{
		{Source: "b", Target: "y", Score: 0.7},
		{Source: "a", Target: "x", Score: 0.9},
	}
	out := FormatCorrespondences(cs)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "a -> x") {
		t.Fatalf("format = %q", out)
	}
}

func TestCorrespondenceString(t *testing.T) {
	c := Correspondence{Source: "a/b", Target: "x/y", Score: 0.875}
	if got := c.String(); got != "a/b -> x/y (0.88)" {
		t.Fatalf("String = %q", got)
	}
}

func TestEvaluationString(t *testing.T) {
	e := Evaluate([]Correspondence{{Source: "s/a", Target: "t/a"}},
		NewGold([2]string{"s/a", "t/a"}))
	s := e.String()
	if !strings.Contains(s, "P=1.00") || !strings.Contains(s, "Overall=1.00") {
		t.Fatalf("String = %q", s)
	}
}
