package match

import (
	"math"
	"math/rand"
	"testing"

	"qmatch/internal/xmltree"
)

func total(cs []Correspondence) float64 {
	t := 0.0
	for _, c := range cs {
		t += c.Score
	}
	return t
}

// The classic case where greedy is suboptimal: the best single pair locks
// out a better total.
func TestSelectOptimalBeatsGreedy(t *testing.T) {
	s := nodes("s1", "s2")
	tt := nodes("t1", "t2")
	pairs := []ScoredPair{
		{s[0], tt[0], 0.90},
		{s[0], tt[1], 0.80},
		{s[1], tt[0], 0.85},
		{s[1], tt[1], 0.10},
	}
	greedy := Select(pairs, 0.5)
	optimal := SelectOptimal(pairs, 0.5)
	if got := total(greedy); math.Abs(got-0.90) > 1e-9 {
		// greedy: s1→t1 (0.9), then s2→t2 below threshold → only 1 pair
		t.Fatalf("greedy total = %v", got)
	}
	if got := total(optimal); math.Abs(got-1.65) > 1e-9 {
		t.Fatalf("optimal total = %v (%v)", got, optimal)
	}
	if len(optimal) != 2 {
		t.Fatalf("optimal pairs = %v", optimal)
	}
}

func TestSelectOptimalRespectsThreshold(t *testing.T) {
	s := nodes("a")
	tt := nodes("x")
	if got := SelectOptimal([]ScoredPair{{s[0], tt[0], 0.4}}, 0.5); len(got) != 0 {
		t.Fatalf("below-threshold selected: %v", got)
	}
	if got := SelectOptimal(nil, 0.5); got != nil {
		t.Fatalf("empty input: %v", got)
	}
	if got := SelectOptimal([]ScoredPair{{nil, tt[0], 0.9}}, 0.5); len(got) != 0 {
		t.Fatalf("nil endpoint selected: %v", got)
	}
}

func TestSelectOptimalInjective(t *testing.T) {
	s := nodes("s1", "s2", "s3")
	tt := nodes("t1", "t2")
	var pairs []ScoredPair
	for _, a := range s {
		for _, b := range tt {
			pairs = append(pairs, ScoredPair{a, b, 0.6})
		}
	}
	got := SelectOptimal(pairs, 0.5)
	if len(got) != 2 { // bounded by min(3,2)
		t.Fatalf("pairs = %v", got)
	}
	seenS, seenT := map[string]bool{}, map[string]bool{}
	for _, c := range got {
		if seenS[c.Source] || seenT[c.Target] {
			t.Fatalf("not injective: %v", got)
		}
		seenS[c.Source], seenT[c.Target] = true, true
	}
}

// More sources than targets exercises the transposition path.
func TestSelectOptimalTransposed(t *testing.T) {
	s := nodes("s1", "s2", "s3")
	tt := nodes("t1")
	pairs := []ScoredPair{
		{s[0], tt[0], 0.6},
		{s[1], tt[0], 0.9},
		{s[2], tt[0], 0.7},
	}
	got := SelectOptimal(pairs, 0.5)
	if len(got) != 1 || got[0].Source != "s2" {
		t.Fatalf("transposed = %v", got)
	}
}

// Property: on random instances, the optimal total is never below the
// greedy total.
func TestSelectOptimalDominatesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		ns := rng.Intn(6) + 1
		nt := rng.Intn(6) + 1
		var srcs, tgts []*xmltree.Node
		for i := 0; i < ns; i++ {
			srcs = append(srcs, xmltree.New(label("s", i), xmltree.Elem("string")))
		}
		for i := 0; i < nt; i++ {
			tgts = append(tgts, xmltree.New(label("t", i), xmltree.Elem("string")))
		}
		var pairs []ScoredPair
		for _, a := range srcs {
			for _, b := range tgts {
				if rng.Float64() < 0.8 {
					pairs = append(pairs, ScoredPair{a, b, rng.Float64()})
				}
			}
		}
		g := total(Select(pairs, 0.3))
		o := total(SelectOptimal(pairs, 0.3))
		if o < g-1e-9 {
			t.Fatalf("trial %d: optimal %v < greedy %v (pairs %v)", trial, o, g, pairs)
		}
	}
}

func label(p string, i int) string {
	return p + string(rune('a'+i))
}

func TestSelectOptimalDuplicatePairsKeepBest(t *testing.T) {
	s := nodes("a")
	tt := nodes("x")
	got := SelectOptimal([]ScoredPair{
		{s[0], tt[0], 0.6},
		{s[0], tt[0], 0.9},
	}, 0.5)
	if len(got) != 1 || got[0].Score != 0.9 {
		t.Fatalf("dup handling = %v", got)
	}
}
