package match

import (
	"strings"
	"testing"

	"qmatch/internal/xmltree"
)

// nameSplit builds the classic 1:n scenario: source AuthorName vs target
// FirstName + LastName.
func nameSplitSchemas() (*xmltree.Node, *xmltree.Node) {
	src := xmltree.NewTree("Record", xmltree.Elem(""),
		xmltree.New("AuthorName", xmltree.Elem("string")),
		xmltree.New("ISBN", xmltree.Elem("string")),
	)
	tgt := xmltree.NewTree("Entry", xmltree.Elem(""),
		xmltree.NewTree("Author", xmltree.Elem(""),
			xmltree.New("FirstName", xmltree.Elem("string")),
			xmltree.New("LastName", xmltree.Elem("string")),
		),
		xmltree.New("BookNumber", xmltree.Elem("string")),
	)
	return src, tgt
}

func TestFindComplexNameSplit(t *testing.T) {
	src, tgt := nameSplitSchemas()
	got := FindComplex(src, tgt, nil, ComplexConfig{})
	if len(got) != 1 {
		t.Fatalf("complex = %v", got)
	}
	c := got[0]
	if c.Source != "Record/AuthorName" {
		t.Fatalf("source = %s", c.Source)
	}
	if len(c.Targets) != 2 ||
		c.Targets[0] != "Entry/Author/FirstName" ||
		c.Targets[1] != "Entry/Author/LastName" {
		t.Fatalf("targets = %v", c.Targets)
	}
	if c.Score < 0.8 {
		t.Fatalf("score = %v", c.Score)
	}
	if !strings.Contains(c.String(), "{FirstName, LastName}") {
		t.Fatalf("String = %q", c.String())
	}
}

func TestFindComplexExcludesMatched(t *testing.T) {
	src, tgt := nameSplitSchemas()
	// Pretend a 1:1 pass already consumed FirstName.
	matched := []Correspondence{{Source: "Record/ISBN", Target: "Entry/Author/FirstName"}}
	got := FindComplex(src, tgt, matched, ComplexConfig{})
	if len(got) != 0 {
		t.Fatalf("complex over consumed targets = %v", got)
	}
	// And a consumed source never appears.
	matched = []Correspondence{{Source: "Record/AuthorName", Target: "Entry/BookNumber"}}
	if got := FindComplex(src, tgt, matched, ComplexConfig{}); len(got) != 0 {
		t.Fatalf("consumed source reported = %v", got)
	}
}

func TestFindComplexNoFalsePositives(t *testing.T) {
	// Unrelated target siblings must not combine into a phantom split.
	src := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.New("AuthorName", xmltree.Elem("string")),
	)
	tgt := xmltree.NewTree("S", xmltree.Elem(""),
		xmltree.New("ZipCode", xmltree.Elem("string")),
		xmltree.New("Telephone", xmltree.Elem("string")),
	)
	if got := FindComplex(src, tgt, nil, ComplexConfig{}); len(got) != 0 {
		t.Fatalf("phantom complex = %v", got)
	}
}

func TestFindComplexPartialSiblingSet(t *testing.T) {
	// The target parent has an extra sibling (MiddleName relates,
	// Affiliation does not): the combination must include only the
	// related leaves.
	src := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.New("FullName", xmltree.Elem("string")),
	)
	tgt := xmltree.NewTree("S", xmltree.Elem(""),
		xmltree.New("FirstName", xmltree.Elem("string")),
		xmltree.New("LastName", xmltree.Elem("string")),
		xmltree.New("Salary", xmltree.Elem("decimal")),
	)
	got := FindComplex(src, tgt, nil, ComplexConfig{})
	if len(got) != 1 {
		t.Fatalf("complex = %v", got)
	}
	for _, target := range got[0].Targets {
		if strings.Contains(target, "Salary") {
			t.Fatalf("unrelated sibling joined: %v", got[0])
		}
	}
}

func TestFindComplexAddressSplit(t *testing.T) {
	// A second classic: Address ↔ Street + City (+ ZipCode is "zip
	// code", unrelated to "address" tokens, so it stays out unless the
	// thesaurus relates it).
	src := xmltree.NewTree("R", xmltree.Elem(""),
		xmltree.New("StreetCityAddress", xmltree.Elem("string")),
	)
	tgt := xmltree.NewTree("S", xmltree.Elem(""),
		xmltree.New("StreetAddress", xmltree.Elem("string")),
		xmltree.New("CityAddress", xmltree.Elem("string")),
	)
	got := FindComplex(src, tgt, nil, ComplexConfig{})
	if len(got) != 1 || len(got[0].Targets) != 2 {
		t.Fatalf("address split = %v", got)
	}
}
