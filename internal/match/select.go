package match

import (
	"sort"

	"qmatch/internal/obs"
	"qmatch/internal/xmltree"
)

// ScoredPair is one entry of a matcher's pair table, ready for selection.
type ScoredPair struct {
	Source, Target *xmltree.Node
	Score          float64
}

// Select derives a one-to-one correspondence set from a scored pair table:
// pairs are considered in descending score order (ties broken by source
// then target path for determinism) and accepted greedily when both
// endpoints are still unmatched and the score clears the threshold. The
// result is a partial injective mapping — the stable selection strategy
// CUPID-family matchers use (DESIGN.md §5.5).
func Select(pairs []ScoredPair, threshold float64) []Correspondence {
	sorted := make([]ScoredPair, 0, len(pairs))
	for _, p := range pairs {
		if p.Score >= threshold && p.Source != nil && p.Target != nil {
			sorted = append(sorted, p)
		}
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score > sorted[j].Score
		}
		si, sj := sorted[i].Source.Path(), sorted[j].Source.Path()
		if si != sj {
			return si < sj
		}
		return sorted[i].Target.Path() < sorted[j].Target.Path()
	})
	usedS := map[*xmltree.Node]bool{}
	usedT := map[*xmltree.Node]bool{}
	var out []Correspondence
	for _, p := range sorted {
		if usedS[p.Source] || usedT[p.Target] {
			continue
		}
		usedS[p.Source], usedT[p.Target] = true, true
		out = append(out, Correspondence{
			Source: p.Source.Path(),
			Target: p.Target.Path(),
			Score:  p.Score,
		})
	}
	return out
}

// SelectTraced is Select with a selection-phase span recorded into tr:
// candidate pair count (Cells), accepted correspondence count (Selected)
// and wall time. A nil trace reduces to plain Select.
func SelectTraced(pairs []ScoredPair, threshold float64, tr *obs.Trace) []Correspondence {
	sp := tr.StartSpan(obs.PhaseSelect)
	out := Select(pairs, threshold)
	if sp != nil {
		sp.SetCells(int64(len(pairs)))
		sp.SetSelected(len(out))
	}
	sp.End()
	return out
}

// SelectAll accepts every pair above the threshold without the one-to-one
// constraint — the ablation counterpart of Select.
func SelectAll(pairs []ScoredPair, threshold float64) []Correspondence {
	var out []Correspondence
	for _, p := range pairs {
		if p.Score >= threshold && p.Source != nil && p.Target != nil {
			out = append(out, Correspondence{
				Source: p.Source.Path(),
				Target: p.Target.Path(),
				Score:  p.Score,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Target < out[j].Target
	})
	return out
}
