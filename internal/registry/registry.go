// Package registry implements the persistent compiled-schema store behind
// the matching service's /v1/schemas and /v1/search endpoints: a
// goroutine-safe map of caller-named CompiledSchema artifacts, optionally
// mirrored to a directory of encoded artifact blobs so a restarted service
// reloads its corpus, plus the top-K corpus search that combines the
// vocabulary-overlap prefilter with full QoM ranking of the survivors.
package registry

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"qmatch"
)

// ext is the on-disk artifact file extension.
const ext = ".qma"

// ErrNotFound is returned by operations naming an id the registry does
// not hold.
var ErrNotFound = errors.New("registry: schema not found")

// maxIDLen bounds registry ids; they become file names and URL path
// segments.
const maxIDLen = 128

// ValidateID checks a caller-chosen registry id: 1–128 characters of
// [A-Za-z0-9._-], starting with a letter or digit. Ids become file names
// (<id>.qma) and URL path segments, so path separators, dot-prefixes and
// exotic bytes are all rejected rather than escaped.
func ValidateID(id string) error {
	if id == "" {
		return fmt.Errorf("registry: empty id")
	}
	if len(id) > maxIDLen {
		return fmt.Errorf("registry: id longer than %d bytes", maxIDLen)
	}
	for i := 0; i < len(id); i++ {
		b := id[i]
		switch {
		case 'a' <= b && b <= 'z' || 'A' <= b && b <= 'Z' || '0' <= b && b <= '9':
		case (b == '.' || b == '_' || b == '-') && i > 0:
		default:
			return fmt.Errorf("registry: id %q: byte %q at position %d (want [A-Za-z0-9._-], leading alphanumeric)", id, b, i)
		}
	}
	return nil
}

// Entry is one registered schema's metadata, as reported by List.
type Entry struct {
	// ID is the caller-chosen registry key.
	ID string `json:"id"`
	// ContentID is the artifact's content address (hex SHA-256 of its
	// canonical encoding).
	ContentID string `json:"contentId"`
	// Name is the schema's root element label.
	Name string `json:"name"`
	// Size is the schema's node count.
	Size int `json:"size"`
	// Terms is the size of the prefilter vocabulary.
	Terms int `json:"terms"`
}

// Registry is a goroutine-safe store of compiled schemas keyed by
// caller-chosen id. With a backing directory every Put/Delete is mirrored
// to disk before the in-memory map changes, so the map never claims state
// the disk does not hold.
type Registry struct {
	dir string // "" = memory-only

	mu      sync.RWMutex
	schemas map[string]*qmatch.CompiledSchema
	// matches caches pair-match reports between registered schemas, keyed
	// by id pair. The reports carry their pair-table state (Engines built
	// WithRematchState), so a Put replacing one side refreshes them
	// incrementally via Engine.Rematch instead of recomputing from scratch.
	matches map[matchKey]*qmatch.Report
}

// matchKey identifies one cached pair match by registry ids.
type matchKey struct{ src, tgt string }

// maxCachedMatches bounds the reports the registry retains for incremental
// refresh — each pins a pair table of O(srcSize·tgtSize) memory. Beyond the
// bound matches are still served, just not cached.
const maxCachedMatches = 512

// Open returns a registry backed by dir, creating the directory if needed
// and loading every artifact blob (*.qma) already present — a restarted
// service resumes with its full corpus. An empty dir selects a
// memory-only registry. A blob that fails to decode aborts Open with an
// error naming the file: a corrupt store is a condition to surface, not
// to silently shrink.
func Open(dir string) (*Registry, error) {
	r := &Registry{
		dir:     dir,
		schemas: make(map[string]*qmatch.CompiledSchema),
		matches: make(map[matchKey]*qmatch.Report),
	}
	if dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: open %s: %w", dir, err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*"+ext))
	if err != nil {
		return nil, fmt.Errorf("registry: open %s: %w", dir, err)
	}
	for _, path := range names {
		id := strings.TrimSuffix(filepath.Base(path), ext)
		if ValidateID(id) != nil {
			continue // not a blob this registry wrote
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("registry: load %s: %w", path, err)
		}
		cs, err := qmatch.DecodeCompiled(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("registry: load %s: %w", path, err)
		}
		r.schemas[id] = cs
	}
	return r, nil
}

// Dir returns the backing directory ("" for memory-only).
func (r *Registry) Dir() string { return r.dir }

// Len returns the number of registered schemas.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.schemas)
}

// Has reports whether id is registered.
func (r *Registry) Has(id string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.schemas[id]
	return ok
}

// EntryOf builds the List-style metadata view of one compiled schema.
func EntryOf(id string, cs *qmatch.CompiledSchema) Entry {
	return Entry{
		ID:        id,
		ContentID: cs.ID(),
		Name:      cs.Name(),
		Size:      cs.Size(),
		Terms:     len(cs.Terms()),
	}
}

// Put registers a compiled schema under id, replacing any previous entry.
// With a backing directory the artifact is written atomically (temp file +
// rename) before the in-memory map is updated.
func (r *Registry) Put(id string, cs *qmatch.CompiledSchema) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	if cs == nil {
		return fmt.Errorf("registry: put %s: nil schema", id)
	}
	if r.dir != "" {
		var buf bytes.Buffer
		if err := cs.Encode(&buf); err != nil {
			return fmt.Errorf("registry: put %s: %w", id, err)
		}
		tmp, err := os.CreateTemp(r.dir, ".put-*")
		if err != nil {
			return fmt.Errorf("registry: put %s: %w", id, err)
		}
		_, werr := tmp.Write(buf.Bytes())
		cerr := tmp.Close()
		if werr == nil {
			werr = cerr
		}
		if werr == nil {
			werr = os.Rename(tmp.Name(), filepath.Join(r.dir, id+ext))
		}
		if werr != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("registry: put %s: %w", id, werr)
		}
	}
	r.mu.Lock()
	r.schemas[id] = cs
	r.dropMatchesLocked(id)
	r.mu.Unlock()
	return nil
}

// dropMatchesLocked invalidates every cached match involving id. Callers
// hold the write lock.
func (r *Registry) dropMatchesLocked(id string) {
	for k := range r.matches {
		if k.src == id || k.tgt == id {
			delete(r.matches, k)
		}
	}
}

// Get returns the compiled schema registered under id, or ErrNotFound.
func (r *Registry) Get(id string) (*qmatch.CompiledSchema, error) {
	r.mu.RLock()
	cs, ok := r.schemas[id]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return cs, nil
}

// Delete removes the schema registered under id (and its blob, when disk
// backed). Deleting an absent id returns ErrNotFound.
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.schemas[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if r.dir != "" {
		if err := os.Remove(filepath.Join(r.dir, id+ext)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("registry: delete %s: %w", id, err)
		}
	}
	delete(r.schemas, id)
	r.dropMatchesLocked(id)
	return nil
}

// Match matches two registered schemas through the engine's compiled path
// and caches the report, so a later PutRematch of either side refreshes it
// incrementally. The second return reports a cache hit. Matching an id
// against itself is allowed. Reports come straight from the cache when
// present — callers must treat them as immutable.
func (r *Registry) Match(ctx context.Context, e *qmatch.Engine, srcID, tgtID string) (*qmatch.Report, bool, error) {
	r.mu.RLock()
	src, sok := r.schemas[srcID]
	tgt, tok := r.schemas[tgtID]
	rep, hit := r.matches[matchKey{srcID, tgtID}]
	r.mu.RUnlock()
	if !sok {
		return nil, false, fmt.Errorf("%w: %s", ErrNotFound, srcID)
	}
	if !tok {
		return nil, false, fmt.Errorf("%w: %s", ErrNotFound, tgtID)
	}
	if hit {
		return rep, true, nil
	}
	rep, err := e.MatchCompiledContext(ctx, src, tgt)
	if err != nil {
		return nil, false, err
	}
	r.mu.Lock()
	// Cache only while both ids still name the versions we matched — a
	// racing Put must not be shadowed by a stale report.
	if len(r.matches) < maxCachedMatches && r.schemas[srcID] == src && r.schemas[tgtID] == tgt {
		r.matches[matchKey{srcID, tgtID}] = rep
	}
	r.mu.Unlock()
	return rep, false, nil
}

// RefreshStat describes one cached match refreshed incrementally by
// PutRematch: the pair's registry ids and the copied-vs-rescored breakdown.
type RefreshStat struct {
	Source  string              `json:"source"`
	Target  string              `json:"target"`
	Rematch qmatch.RematchStats `json:"rematch"`
}

// PutRematch registers a schema like Put, but instead of just dropping the
// cached matches involving id's previous version it re-matches each of
// them incrementally through e (Engine.Rematch): unchanged regions of the
// evolved schema are copied from the retained pair tables, only changed
// subtrees are rescored. Refreshes are reported per pair, sorted by id.
// A cached report the engine cannot rematch (e.g. it carries no pair-table
// state because e was not built WithRematchState) is simply dropped — the
// registry never serves a stale match.
func (r *Registry) PutRematch(id string, cs *qmatch.CompiledSchema, e *qmatch.Engine) ([]RefreshStat, error) {
	type seed struct {
		key   matchKey
		rep   *qmatch.Report
		other *qmatch.CompiledSchema // the non-evolved side at seed time
	}
	r.mu.RLock()
	old := r.schemas[id]
	var seeds []seed
	for k, rep := range r.matches {
		if k.src != id && k.tgt != id {
			continue
		}
		other := r.schemas[k.src]
		if k.src == id {
			other = r.schemas[k.tgt]
		}
		seeds = append(seeds, seed{k, rep, other})
	}
	r.mu.RUnlock()

	if err := r.Put(id, cs); err != nil { // drops the stale cache entries
		return nil, err
	}
	if old == nil || e == nil {
		return nil, nil
	}
	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].key.src != seeds[j].key.src {
			return seeds[i].key.src < seeds[j].key.src
		}
		return seeds[i].key.tgt < seeds[j].key.tgt
	})
	var out []RefreshStat
	for _, sd := range seeds {
		rep, err := e.Rematch(sd.rep, old, cs)
		if err == nil && sd.key.src == sd.key.tgt {
			// Self-match: the first rematch replaced the target side, the
			// second replaces the source side of the chained report.
			rep, err = e.Rematch(rep, old, cs)
		}
		if err != nil || rep.Rematch == nil {
			continue
		}
		r.mu.Lock()
		if len(r.matches) < maxCachedMatches &&
			r.schemas[id] == cs && r.schemas[sd.key.src] != nil && r.schemas[sd.key.tgt] != nil &&
			(sd.key.src == id || r.schemas[sd.key.src] == sd.other) &&
			(sd.key.tgt == id || r.schemas[sd.key.tgt] == sd.other) {
			r.matches[sd.key] = rep
		}
		r.mu.Unlock()
		out = append(out, RefreshStat{Source: sd.key.src, Target: sd.key.tgt, Rematch: *rep.Rematch})
	}
	return out, nil
}

// CachedMatches returns the number of pair-match reports currently cached.
func (r *Registry) CachedMatches() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.matches)
}

// List returns the metadata of every registered schema, sorted by id.
func (r *Registry) List() []Entry {
	r.mu.RLock()
	out := make([]Entry, 0, len(r.schemas))
	for id, cs := range r.schemas {
		out = append(out, EntryOf(id, cs))
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Result is one corpus-search hit: a registered schema ranked against the
// query by full QoM, with the prefilter overlap that admitted it.
type Result struct {
	// ID is the schema's registry key.
	ID string `json:"id"`
	// Score is the query→schema tree QoM.
	Score float64 `json:"score"`
	// Overlap is the prefilter vocabulary overlap in [0,1].
	Overlap float64 `json:"overlap"`
	// Correspondences are the element mappings found for this schema.
	Correspondences []qmatch.Correspondence `json:"correspondences"`
}

// SearchStats reports how one corpus search spent its time: the corpus
// size, how many candidates survived the prefilter, and the wall time of
// the prefilter and full-rank stages (the service renders these as
// "prefilter"/"pairtable"-style trace spans).
type SearchStats struct {
	Corpus      int   `json:"corpus"`
	Candidates  int   `json:"candidates"`
	PrefilterNs int64 `json:"prefilterNs"`
	RankNs      int64 `json:"rankNs"`
}

// Search ranks the registered corpus against a query schema: the
// vocabulary-overlap prefilter selects the k most promising candidates
// (k <= 0 considers every schema), and only those pay for a full QoM match
// through the engine. Results arrive sorted by descending QoM; because
// the prefilter only selects candidates and the order comes from the full
// match, k >= Len() reproduces the exhaustive ranking exactly. The corpus
// is snapshotted at entry; concurrent Put/Delete affect later searches
// only.
func (r *Registry) Search(ctx context.Context, e *qmatch.Engine, query *qmatch.CompiledSchema, k int) ([]Result, SearchStats, error) {
	r.mu.RLock()
	ids := make([]string, 0, len(r.schemas))
	for id := range r.schemas {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	corpus := make([]*qmatch.CompiledSchema, len(ids))
	for i, id := range ids {
		corpus[i] = r.schemas[id]
	}
	r.mu.RUnlock()

	stats := SearchStats{Corpus: len(corpus)}
	start := time.Now()
	keep := qmatch.PrefilterTopK(query, corpus, k)
	stats.PrefilterNs = time.Since(start).Nanoseconds()
	stats.Candidates = len(keep)
	sort.Ints(keep)
	sub := make([]*qmatch.CompiledSchema, len(keep))
	for i, ci := range keep {
		sub[i] = corpus[ci]
	}

	start = time.Now()
	ranked, err := e.RankCompiled(ctx, query, sub, 0)
	stats.RankNs = time.Since(start).Nanoseconds()
	if err != nil {
		return nil, stats, err
	}
	out := make([]Result, len(ranked))
	for i, rk := range ranked {
		ci := keep[rk.Index]
		out[i] = Result{
			ID:              ids[ci],
			Score:           rk.Score,
			Overlap:         query.Overlap(corpus[ci]),
			Correspondences: rk.Correspondences,
		}
	}
	return out, stats, nil
}
