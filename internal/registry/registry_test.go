package registry

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"qmatch"
	"qmatch/internal/dataset"
	"qmatch/internal/xmltree"
)

func compileT(t *testing.T, root *xmltree.Node) *qmatch.CompiledSchema {
	t.Helper()
	cs, err := qmatch.Compile(qmatch.FromTree(root))
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestValidateID(t *testing.T) {
	for _, ok := range []string{"po1", "PO-2.v3", "a", "x_y", "0start"} {
		if err := ValidateID(ok); err != nil {
			t.Errorf("ValidateID(%q) = %v, want nil", ok, err)
		}
	}
	long := make([]byte, maxIDLen+1)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", ".hidden", "-lead", "a/b", "a b", "a\x00b", "ü", string(long)} {
		if err := ValidateID(bad); err == nil {
			t.Errorf("ValidateID(%q) accepted an invalid id", bad)
		}
	}
}

func TestMemoryPutGetDeleteList(t *testing.T) {
	reg, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	po1 := compileT(t, dataset.PO1())
	po2 := compileT(t, dataset.PO2())

	if err := reg.Put("po1", po1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put("po2", po2); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put("bad/id", po1); err == nil {
		t.Error("Put accepted an invalid id")
	}
	if reg.Len() != 2 || !reg.Has("po1") || reg.Has("nope") {
		t.Errorf("unexpected registry state: len=%d", reg.Len())
	}

	got, err := reg.Get("po1")
	if err != nil || got != po1 {
		t.Errorf("Get(po1) = (%v, %v), want the stored schema", got, err)
	}
	if _, err := reg.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(nope) err = %v, want ErrNotFound", err)
	}

	list := reg.List()
	if len(list) != 2 || list[0].ID != "po1" || list[1].ID != "po2" {
		t.Errorf("List = %+v, want po1, po2 in order", list)
	}
	if list[0].ContentID != po1.ID() || list[0].Size != po1.Size() || list[0].Name != po1.Name() {
		t.Errorf("entry metadata wrong: %+v", list[0])
	}

	if err := reg.Delete("po1"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Delete("po1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v, want ErrNotFound", err)
	}
	if reg.Len() != 1 {
		t.Errorf("Len after delete = %d, want 1", reg.Len())
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	reg, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Put("po1", compileT(t, dataset.PO1())); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put("book", compileT(t, dataset.Book())); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put("gone", compileT(t, dataset.Human())); err != nil {
		t.Fatal(err)
	}
	if err := reg.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	want := reg.List()

	// A fresh Open over the same directory must resume the full corpus.
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.List(); !reflect.DeepEqual(got, want) {
		t.Errorf("reopened registry lists %+v, want %+v", got, want)
	}
	if reopened.Has("gone") {
		t.Error("deleted entry survived reopen")
	}

	// Replacing an entry keeps exactly one blob per id on disk.
	if err := reopened.Put("po1", compileT(t, dataset.PO2())); err != nil {
		t.Fatal(err)
	}
	blobs, err := filepath.Glob(filepath.Join(dir, "*"+ext))
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 2 {
		t.Errorf("found %d blobs on disk, want 2: %v", len(blobs), blobs)
	}
}

func TestOpenRejectsCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "broken"+ext), []byte("QMSC garbage garbage garbage garbage garbage garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open loaded a corrupt blob without error")
	}
}

func TestSearch(t *testing.T) {
	reg, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	for id, tree := range map[string]*xmltree.Node{
		"po2":     dataset.PO2(),
		"book":    dataset.Book(),
		"article": dataset.Article(),
		"human":   dataset.Human(),
	} {
		if err := reg.Put(id, compileT(t, tree)); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := qmatch.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	query := compileT(t, dataset.PO1())

	results, stats, err := reg.Search(context.Background(), eng, query, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Corpus != 4 || stats.Candidates != 4 {
		t.Errorf("stats = %+v, want corpus=4 candidates=4", stats)
	}
	if len(results) != 4 || results[0].ID != "po2" {
		t.Fatalf("results = %+v, want po2 first of 4", results)
	}
	for i := 1; i < len(results); i++ {
		if results[i-1].Score < results[i].Score {
			t.Errorf("results out of order at %d", i)
		}
	}
	if results[0].Overlap <= 0 || results[0].Overlap > 1 {
		t.Errorf("winner overlap %v outside (0,1]", results[0].Overlap)
	}

	// k=1: only the strongest prefilter candidate is ranked, and on this
	// corpus that is also the best full-QoM match.
	top, stats, err := reg.Search(context.Background(), eng, query, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Candidates != 1 || len(top) != 1 || top[0].ID != "po2" {
		t.Errorf("k=1 search: results %+v stats %+v, want the single po2 hit", top, stats)
	}
	if top[0].Score != results[0].Score || !reflect.DeepEqual(top[0].Correspondences, results[0].Correspondences) {
		t.Error("top-1 result differs from the exhaustive winner")
	}

	// Empty registry searches cleanly.
	empty, _ := Open("")
	none, stats, err := empty.Search(context.Background(), eng, query, 0)
	if err != nil || len(none) != 0 || stats.Corpus != 0 {
		t.Errorf("empty search = (%v, %+v, %v)", none, stats, err)
	}
}
