package registry

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"qmatch"
	"qmatch/internal/dataset"
)

func rematchEngine(t *testing.T) *qmatch.Engine {
	t.Helper()
	e, err := qmatch.NewEngine(qmatch.WithRematchState())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMatchCache(t *testing.T) {
	reg, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	eng := rematchEngine(t)
	if err := reg.Put("a", compileT(t, dataset.PO1())); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put("b", compileT(t, dataset.PO2())); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	rep, cached, err := reg.Match(ctx, eng, "a", "b")
	if err != nil || cached {
		t.Fatalf("first match: cached=%v err=%v", cached, err)
	}
	again, cached, err := reg.Match(ctx, eng, "a", "b")
	if err != nil || !cached || again != rep {
		t.Fatalf("second match should serve the cached report: cached=%v err=%v", cached, err)
	}
	if reg.CachedMatches() != 1 {
		t.Fatalf("cached matches = %d, want 1", reg.CachedMatches())
	}
	if _, _, err := reg.Match(ctx, eng, "a", "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown target: %v", err)
	}

	// A plain Put of either side invalidates the cached match.
	if err := reg.Put("b", compileT(t, dataset.PO2())); err != nil {
		t.Fatal(err)
	}
	if reg.CachedMatches() != 0 {
		t.Fatalf("Put left %d cached matches", reg.CachedMatches())
	}
	if _, cached, _ := reg.Match(ctx, eng, "a", "b"); cached {
		t.Fatal("match served from a cache Put should have dropped")
	}
	if err := reg.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if reg.CachedMatches() != 0 {
		t.Fatalf("Delete left %d cached matches", reg.CachedMatches())
	}
}

// PutRematch refreshes cached matches incrementally: the refreshed report
// equals a from-scratch match of the new pair, with copied cells > 0.
func TestPutRematchRefreshesCache(t *testing.T) {
	reg, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	eng := rematchEngine(t)
	if err := reg.Put("dc", compileT(t, dataset.DCMDPair().Source)); err != nil {
		t.Fatal(err)
	}
	oldTgt := dataset.DCMDPair().Target
	if err := reg.Put("md", compileT(t, oldTgt)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := reg.Match(ctx, eng, "dc", "md"); err != nil {
		t.Fatal(err)
	}

	evolved := dataset.DCMDPair().Target
	evolved.Leaves()[1].Label = "EvolvedLeaf"
	newCS := compileT(t, evolved)
	refreshed, err := reg.PutRematch("md", newCS, eng)
	if err != nil {
		t.Fatal(err)
	}
	if len(refreshed) != 1 {
		t.Fatalf("refreshed %d matches, want 1: %+v", len(refreshed), refreshed)
	}
	st := refreshed[0]
	if st.Source != "dc" || st.Target != "md" || st.Rematch.Side != "target" {
		t.Fatalf("wrong refresh: %+v", st)
	}
	if st.Rematch.Full || st.Rematch.CopiedCells == 0 || st.Rematch.RescoredCells == 0 {
		t.Fatalf("refresh was not incremental: %+v", st.Rematch)
	}

	rep, cached, err := reg.Match(ctx, eng, "dc", "md")
	if err != nil || !cached {
		t.Fatalf("refreshed match not served from cache: cached=%v err=%v", cached, err)
	}
	want := eng.MatchCompiled(compileT(t, dataset.DCMDPair().Source), newCS)
	if !reflect.DeepEqual(rep.Correspondences, want.Correspondences) || rep.TreeQoM != want.TreeQoM {
		t.Fatal("refreshed cached report differs from a from-scratch match")
	}
}

// A schema matched against itself refreshes both sides of the cached
// report on PutRematch.
func TestPutRematchSelfMatch(t *testing.T) {
	reg, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	eng := rematchEngine(t)
	if err := reg.Put("po", compileT(t, dataset.PO1())); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := reg.Match(ctx, eng, "po", "po"); err != nil {
		t.Fatal(err)
	}

	evolved := dataset.PO1()
	evolved.Leaves()[0].Label = "RenamedField"
	newCS := compileT(t, evolved)
	refreshed, err := reg.PutRematch("po", newCS, eng)
	if err != nil {
		t.Fatal(err)
	}
	if len(refreshed) != 1 {
		t.Fatalf("refreshed %d matches, want 1", len(refreshed))
	}
	rep, cached, err := reg.Match(ctx, eng, "po", "po")
	if err != nil || !cached {
		t.Fatalf("cached=%v err=%v", cached, err)
	}
	want := eng.MatchCompiled(newCS, newCS)
	if !reflect.DeepEqual(rep.Correspondences, want.Correspondences) || rep.TreeQoM != want.TreeQoM {
		t.Fatal("self-match refresh differs from a from-scratch match")
	}
}

// An engine without rematch state attaches no pair tables; PutRematch then
// drops the stale entries rather than refreshing them.
func TestPutRematchStatelessEngineDrops(t *testing.T) {
	reg, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := qmatch.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Put("a", compileT(t, dataset.PO1())); err != nil {
		t.Fatal(err)
	}
	if err := reg.Put("b", compileT(t, dataset.PO2())); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Match(context.Background(), eng, "a", "b"); err != nil {
		t.Fatal(err)
	}
	refreshed, err := reg.PutRematch("b", compileT(t, dataset.PO2()), eng)
	if err != nil {
		t.Fatal(err)
	}
	if len(refreshed) != 0 || reg.CachedMatches() != 0 {
		t.Fatalf("stateless engine should drop, not refresh: %+v, cached=%d",
			refreshed, reg.CachedMatches())
	}
}
