// Package linguistic implements the standalone linguistic match algorithm
// the paper evaluates QMatch against (§5: "we developed linguistic and
// structural algorithms based on the algorithms presented as part of
// CUPID"). It scores every source/target node pair purely on label
// similarity — thesaurus relations, acronym/abbreviation detection and
// string metrics via lingo.NameMatcher — and ignores structure, properties
// and levels entirely.
package linguistic

import (
	"qmatch/internal/lingo"
	"qmatch/internal/match"
	"qmatch/internal/xmltree"
)

// Matcher is the linguistic-only baseline.
type Matcher struct {
	// Names scores label pairs.
	Names *lingo.NameMatcher
	// SelectionThreshold is the minimum label similarity for a pair to
	// be reported as a correspondence. Default 0.8.
	SelectionThreshold float64
}

// New returns a linguistic matcher over the given thesaurus (nil selects
// the built-in default).
func New(th *lingo.Thesaurus) *Matcher {
	if th == nil {
		th = lingo.Default()
	}
	return &Matcher{
		Names:              lingo.NewNameMatcher(th),
		SelectionThreshold: 0.8,
	}
}

// Name implements match.Algorithm.
func (m *Matcher) Name() string { return "linguistic" }

// Pairs returns the full label-similarity table between the two schemas in
// deterministic pre-order.
func (m *Matcher) Pairs(src, tgt *xmltree.Node) []match.ScoredPair {
	srcs, tgts := src.Nodes(), tgt.Nodes()
	out := make([]match.ScoredPair, 0, len(srcs)*len(tgts))
	for _, s := range srcs {
		for _, t := range tgts {
			out = append(out, match.ScoredPair{
				Source: s,
				Target: t,
				Score:  m.Names.Score(s.Label, t.Label),
			})
		}
	}
	return out
}

// Match implements match.Algorithm: one-to-one selection over the label
// similarity table.
func (m *Matcher) Match(src, tgt *xmltree.Node) []match.Correspondence {
	return match.Select(m.Pairs(src, tgt), m.SelectionThreshold)
}

// TreeScore implements match.Algorithm: the overall linguistic match value
// of the schemas, defined as the mean over source nodes of their best label
// similarity in the target — how linguistically "coverable" the source is.
func (m *Matcher) TreeScore(src, tgt *xmltree.Node) float64 {
	srcs := src.Nodes()
	if len(srcs) == 0 {
		return 0
	}
	tgts := tgt.Nodes()
	total := 0.0
	for _, s := range srcs {
		best := 0.0
		for _, t := range tgts {
			if v := m.Names.Score(s.Label, t.Label); v > best {
				best = v
			}
		}
		total += best
	}
	return total / float64(len(srcs))
}

var _ match.Algorithm = (*Matcher)(nil)
