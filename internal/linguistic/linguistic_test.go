package linguistic

import (
	"testing"

	"qmatch/internal/dataset"
	"qmatch/internal/lingo"
	"qmatch/internal/xmltree"
)

func TestName(t *testing.T) {
	if New(nil).Name() != "linguistic" {
		t.Fatal("name")
	}
}

func TestMatchPOPair(t *testing.T) {
	p := dataset.POPair()
	m := New(nil)
	cs := m.Match(p.Source, p.Target)
	if len(cs) == 0 {
		t.Fatal("no correspondences")
	}
	has := func(s, tgt string) bool {
		for _, c := range cs {
			if c.Source == s && c.Target == tgt {
				return true
			}
		}
		return false
	}
	if !has("PO/OrderNo", "PurchaseOrder/OrderNo") {
		t.Error("exact label pair missed")
	}
	if !has("PO/PurchaseInfo/Lines/Quantity", "PurchaseOrder/Items/Qty") {
		t.Error("acronym pair missed")
	}
	// 1:1: no source or target repeats.
	seenS, seenT := map[string]bool{}, map[string]bool{}
	for _, c := range cs {
		if seenS[c.Source] || seenT[c.Target] {
			t.Fatalf("selection not 1:1 at %v", c)
		}
		seenS[c.Source], seenT[c.Target] = true, true
	}
}

func TestMatchIgnoresStructure(t *testing.T) {
	// Two single-node schemas with matching labels: structure plays no
	// role, the pair is still found.
	s := xmltree.New("Writer", xmltree.Elem("string"))
	tn := xmltree.New("Author", xmltree.Elem("date")) // type mismatch irrelevant
	cs := New(nil).Match(s, tn)
	if len(cs) != 1 || cs[0].Score != 1 {
		t.Fatalf("cs = %v", cs)
	}
}

func TestTreeScoreDisjointVsIdentical(t *testing.T) {
	m := New(nil)
	p := dataset.LibraryHumanPair()
	low := m.TreeScore(p.Source, p.Target)
	if low >= 0.5 {
		t.Fatalf("disjoint vocabulary tree score = %v", low)
	}
	po := dataset.PO1()
	if got := m.TreeScore(po, dataset.PO1()); got != 1 {
		t.Fatalf("identical tree score = %v", got)
	}
}

func TestTreeScoreEmptyIshTrees(t *testing.T) {
	m := New(nil)
	a := xmltree.New("A", xmltree.Elem(""))
	b := xmltree.New("B", xmltree.Elem(""))
	v := m.TreeScore(a, b)
	if v < 0 || v > 1 {
		t.Fatalf("score out of range: %v", v)
	}
}

func TestPairsTableComplete(t *testing.T) {
	p := dataset.BookPair()
	pairs := New(nil).Pairs(p.Source, p.Target)
	if len(pairs) != p.Source.Size()*p.Target.Size() {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for _, sp := range pairs {
		if sp.Score < 0 || sp.Score > 1 {
			t.Fatalf("score out of range: %v", sp.Score)
		}
	}
}

func TestCustomThesaurus(t *testing.T) {
	th := lingo.NewThesaurus()
	th.AddSynonym("foo", "bar")
	m := New(th)
	s := xmltree.New("Foo", xmltree.Elem("string"))
	tn := xmltree.New("Bar", xmltree.Elem("string"))
	if cs := m.Match(s, tn); len(cs) != 1 {
		t.Fatalf("custom thesaurus not used: %v", cs)
	}
}

func TestSelectionThreshold(t *testing.T) {
	m := New(nil)
	m.SelectionThreshold = 1.01 // nothing can pass
	p := dataset.POPair()
	if cs := m.Match(p.Source, p.Target); len(cs) != 0 {
		t.Fatalf("threshold ignored: %v", cs)
	}
}
