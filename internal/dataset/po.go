// Package dataset provides the evaluation corpus of the QMatch paper
// (Table 1): the PO1/PO2 purchase-order schemas of Figures 1–2, the Article
// and Book schemas, the Dublin-Core-style DCMDItem/DCMDOrd schemas, the
// synthetic PIR/PDB protein schemas, XBench-style catalog schemas, and the
// Library/Human schemas of Figures 7–8 — together with the manually curated
// gold standards ("manually determined real matches", §5.1) used by the
// quality experiments. All builders are deterministic and return fresh
// trees on every call. Element counts and maximum depths are pinned to
// Table 1 by the package tests; see DESIGN.md §2 for the substitutions.
package dataset

import (
	"qmatch/internal/match"
	"qmatch/internal/xmltree"
)

// PO1 returns the PO schema of paper Figure 1: 10 elements, max depth 3.
func PO1() *xmltree.Node {
	lines := xmltree.NewTree("Lines", xmltree.Elem(""),
		xmltree.New("Item", xmltree.Elem("string")),
		xmltree.New("Quantity", xmltree.Elem("integer")),
		xmltree.New("UnitOfMeasure", xmltree.Elem("string")),
	)
	info := xmltree.NewTree("PurchaseInfo", xmltree.Elem(""),
		xmltree.New("BillingAddr", xmltree.Elem("string")),
		xmltree.New("ShippingAddr", xmltree.Elem("string")),
		lines,
	)
	return xmltree.NewTree("PO", xmltree.Elem(""),
		xmltree.New("OrderNo", xmltree.Elem("integer")),
		info,
		xmltree.New("PurchaseDate", xmltree.Elem("date")),
	)
}

// PO2 returns the Purchase Order schema of paper Figure 2: 9 elements.
// Note: Table 1 lists max depth 3 for PO2, but the paper's own running
// example (§2.1–2.2, on which every worked QoM value depends) describes a
// tree of depth 2 — Items' children Item#, Qty and UOM are its deepest
// leaves. We follow the example trees; the discrepancy is the paper's.
func PO2() *xmltree.Node {
	items := xmltree.NewTree("Items", xmltree.Elem(""),
		xmltree.New("Item#", xmltree.Elem("string")),
		xmltree.New("Qty", xmltree.Elem("integer")),
		xmltree.New("UOM", xmltree.Elem("string")),
	)
	return xmltree.NewTree("PurchaseOrder", xmltree.Elem(""),
		xmltree.New("OrderNo", xmltree.Elem("integer")),
		xmltree.New("BillTo", xmltree.Elem("string")),
		xmltree.New("ShipTo", xmltree.Elem("string")),
		items,
		xmltree.New("Date", xmltree.Elem("date")),
	)
}

// POGold returns the real matches between PO1 and PO2, following the
// paper's worked example: every PO1 element has a counterpart.
func POGold() *match.Gold {
	return match.NewGold(
		[2]string{"PO", "PurchaseOrder"},
		[2]string{"PO/OrderNo", "PurchaseOrder/OrderNo"},
		[2]string{"PO/PurchaseInfo", "PurchaseOrder"},
		[2]string{"PO/PurchaseInfo/BillingAddr", "PurchaseOrder/BillTo"},
		[2]string{"PO/PurchaseInfo/ShippingAddr", "PurchaseOrder/ShipTo"},
		[2]string{"PO/PurchaseInfo/Lines", "PurchaseOrder/Items"},
		[2]string{"PO/PurchaseInfo/Lines/Item", "PurchaseOrder/Items/Item#"},
		[2]string{"PO/PurchaseInfo/Lines/Quantity", "PurchaseOrder/Items/Qty"},
		[2]string{"PO/PurchaseInfo/Lines/UnitOfMeasure", "PurchaseOrder/Items/UOM"},
		[2]string{"PO/PurchaseDate", "PurchaseOrder/Date"},
	)
}
